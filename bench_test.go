package hiddensky

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"hiddensky/internal/bench"
	"hiddensky/internal/skyline"
)

// benchConfig selects the experiment scale: quick by default so the whole
// suite is CI-friendly; set SKYBENCH_FULL=1 to regenerate every figure at
// the paper's published scale (Blue Nile at 209,666 tuples, DOT sweeps to
// 400,000, ...).
func benchConfig() bench.Config {
	return bench.Config{Quick: os.Getenv("SKYBENCH_FULL") == "", Seed: 1}
}

// benchFigure regenerates one paper figure per iteration and reports the
// total interface queries of its first discovery series as a metric.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	r, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	cfg := benchConfig()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(fig.Series) > 0 && len(fig.Series[0].Points) > 0 {
		last := fig.Series[0].Points[len(fig.Series[0].Points)-1]
		b.ReportMetric(last.Y, "queries")
	}
}

// One benchmark per figure of the paper's evaluation section.

func BenchmarkFig04AnalyticBounds(b *testing.B)    { benchFigure(b, "fig4") }
func BenchmarkFig06SQvsRQSimulation(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig13RangeImpactOfK(b *testing.B)    { benchFigure(b, "fig13") }
func BenchmarkFig14RangeImpactOfN(b *testing.B)    { benchFigure(b, "fig14") }
func BenchmarkFig15RangeImpactOfM(b *testing.B)    { benchFigure(b, "fig15") }
func BenchmarkFig16PointImpactOfN(b *testing.B)    { benchFigure(b, "fig16") }
func BenchmarkFig17PointDomainSize(b *testing.B)   { benchFigure(b, "fig17") }
func BenchmarkFig18MixedImpactOfN(b *testing.B)    { benchFigure(b, "fig18") }
func BenchmarkFig19MixedVaryingAttrs(b *testing.B) { benchFigure(b, "fig19") }
func BenchmarkFig20AnytimeRange(b *testing.B)      { benchFigure(b, "fig20") }
func BenchmarkFig21AnytimePoint(b *testing.B)      { benchFigure(b, "fig21") }
func BenchmarkFig22BlueNile(b *testing.B)          { benchFigure(b, "fig22") }
func BenchmarkFig23GoogleFlights(b *testing.B)     { benchFigure(b, "fig23") }
func BenchmarkFig24YahooAutos(b *testing.B)        { benchFigure(b, "fig24") }

// Library micro-benchmarks.

func BenchmarkHiddenQueryBroad(b *testing.B) {
	d := Flights(1, 50000).Project(0, 1, 2, 5)
	db := d.DB(10, SumRank{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHiddenQueryNarrow(b *testing.B) {
	d := Flights(1, 50000).Project(0, 1, 2, 5)
	db := d.DB(10, SumRank{})
	q := Q{{Attr: 0, Op: LT, Value: 10}, {Attr: 1, Op: LT, Value: 10}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalSkylineSFS(b *testing.B) {
	d := Flights(1, 50000).Project(0, 1, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.SFS(d.Data)
	}
}

func BenchmarkDominates(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tuples := make([][]int, 1024)
	for i := range tuples {
		tuples[i] = []int{rng.Intn(100), rng.Intn(100), rng.Intn(100), rng.Intn(100)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dominates(tuples[i%1024], tuples[(i+1)%1024])
	}
}

func BenchmarkDiscoverRQDiamonds(b *testing.B) {
	d := BlueNile(1, 20000)
	db := d.DB(50, AttrRank{Attr: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ResetCounter()
		res, err := Discover(db, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Queries), "queries")
			b.ReportMetric(float64(len(res.Skyline)), "skyline")
		}
	}
}

func BenchmarkDiscoverPQFlights(b *testing.B) {
	d := Flights(1, 20000).Project(6, 7, 10) // three PQ group attributes
	db := d.DB(10, SumRank{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ResetCounter()
		if _, err := PQDBSky(db, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrawlBaseline(b *testing.B) {
	d := Flights(1, 5000).Project(0, 1, 2).WithCaps(RQ)
	db := d.DB(10, SumRank{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ResetCounter()
		res, err := Crawl(db, CrawlOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Queries), "queries")
		}
	}
}

// Sanity check so `go test` (not just -bench) exercises the figure list.
func TestFigureRegistry(t *testing.T) {
	all := bench.All()
	if len(all) != 16 { // 14 paper figures + the engine and answer figures
		t.Fatalf("expected 16 figures, have %d", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Fatalf("duplicate figure id %s", r.ID)
		}
		seen[r.ID] = true
		if _, ok := bench.ByID(r.ID); !ok {
			t.Fatalf("ByID cannot find %s", r.ID)
		}
	}
	for _, alias := range []string{"13", "Fig13", " fig13 "} {
		if r, ok := bench.ByID(alias); !ok || r.ID != "fig13" {
			t.Fatalf("alias %q not resolved", alias)
		}
	}
	if _, ok := bench.ByID("fig99"); ok {
		t.Fatal("fig99 should not resolve")
	}
	_ = fmt.Sprint() // keep fmt for future debugging edits
}
