package hiddensky

import (
	"errors"
	"fmt"
	"testing"
)

// TestFacadeQuickstart walks the README flow end to end through the public
// facade only.
func TestFacadeQuickstart(t *testing.T) {
	catalog := [][]int{
		{899, 2}, {749, 5}, {999, 1}, {649, 7}, {1099, 1},
	}
	db, err := New(Config{
		Data: catalog,
		Caps: []Capability{RQ, RQ},
		K:    2,
		Rank: AttrRank{Attr: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := ComputeSkylineTuples(catalog)
	if len(res.Skyline) != len(want) {
		t.Fatalf("facade skyline %d tuples, ground truth %d", len(res.Skyline), len(want))
	}
	if res.Queries != db.QueriesIssued() {
		t.Fatal("query accounting mismatch through facade")
	}
}

func TestFacadeInterfaceTaxonomy(t *testing.T) {
	d := GoogleFlightsRoute(3)
	db := d.DB(1, AttrRank{Attr: 1})
	// Stops is SQ: > must be rejected; DepartureTime is RQ: > accepted.
	if _, err := db.Query(Q{{Attr: 0, Op: GT, Value: 0}}); !errors.Is(err, ErrUnsupportedPredicate) {
		t.Fatalf("SQ attribute accepted >: %v", err)
	}
	if _, err := db.Query(Q{{Attr: 3, Op: GT, Value: 100}}); err != nil {
		t.Fatalf("RQ attribute rejected >: %v", err)
	}
}

func TestFacadeBaselineComparison(t *testing.T) {
	d := YahooAutos(9, 1200)
	db := d.DB(10, AttrRank{Attr: 0})
	res, err := Discover(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2 := d.DB(10, AttrRank{Attr: 0})
	cres, sky, err := CrawlSkyline(db2, CrawlOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) != len(res.Skyline) {
		t.Fatalf("BASELINE skyline %d, discovery %d", len(sky), len(res.Skyline))
	}
	if cres.Queries <= res.Queries {
		t.Fatalf("BASELINE (%d queries) should cost more than discovery (%d)", cres.Queries, res.Queries)
	}
}

func TestFacadeAnalysis(t *testing.T) {
	if AvgCostRecurrence(2, 3) != 7 {
		t.Error("recurrence m=2 should be 2s+1")
	}
	if WorstCaseCost(2, 3) != 2*27 { // m·s^(m+1) = 2·3³
		t.Error("worst case m*s^(m+1)")
	}
	if AvgCostExpBound(4, 10) <= 0 {
		t.Error("exp bound must be positive")
	}
	cost, err := PQ2DCost([][]int{{1, 3}, {3, 1}}, 0, 5, 0, 5)
	if err != nil || cost <= 0 {
		t.Errorf("PQ2DCost: %d, %v", cost, err)
	}
}

func TestFacadeSkyband(t *testing.T) {
	d := YahooAutos(4, 600)
	db := d.DB(10, AttrRank{Attr: 0})
	band, err := RQBandSky(db, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := ComputeSkyband(d.Data, 2)
	want := map[string]bool{}
	for _, i := range wantIdx {
		want[fmt.Sprint(d.Data[i])] = true
	}
	got := map[string]bool{}
	for _, tup := range band.Tuples {
		got[fmt.Sprint(tup)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("2-skyband %d distinct values, want %d", len(got), len(want))
	}
}

// TestFacadeParallelEngine exercises the execution layer through the
// public facade: parallel discovery with a shared query cache returns the
// sequential skyline, and the fleet orchestration merges stores under a
// global budget.
func TestFacadeParallelEngine(t *testing.T) {
	d := YahooAutos(21, 1500)
	seqDB := d.DB(10, AttrRank{Attr: 0})
	seq, err := Discover(seqDB, Options{})
	if err != nil {
		t.Fatal(err)
	}

	cache := NewQueryCache(QueryCacheConfig{MaxEntries: 4096})
	parDB := d.DB(10, AttrRank{Attr: 0})
	par, err := Discover(parDB, Options{Parallelism: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tup := range par.Skyline {
		seen[fmt.Sprint(tup)] = true
	}
	for _, tup := range seq.Skyline {
		if !seen[fmt.Sprint(tup)] {
			t.Fatalf("parallel facade skyline misses %v", tup)
		}
	}
	if len(par.Skyline) != len(seq.Skyline) {
		t.Fatalf("parallel skyline %d tuples, sequential %d", len(par.Skyline), len(seq.Skyline))
	}

	// Warm-cache re-run: answered from memory, dedup ratio > 0.
	if _, err := Discover(parDB, Options{Parallelism: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.DedupRatio() <= 0 {
		t.Fatalf("facade cache never deduplicated: %+v", s)
	}

	stores := []FederatedStore{
		{Name: "alpha", DB: d.DB(10, AttrRank{Attr: 0})},
		{Name: "beta", DB: d.DB(10, SumRank{})},
	}
	fleet, err := FederatedDiscoverFleet(stores, Options{Parallelism: 2}, FleetOptions{
		MaxStores:    2,
		GlobalBudget: 100000,
		Cache:        NewQueryCache(QueryCacheConfig{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fleet.Complete || len(fleet.Frontier) == 0 {
		t.Fatalf("fleet result implausible: complete=%v frontier=%d", fleet.Complete, len(fleet.Frontier))
	}
}
