package hiddensky_test

import (
	"bytes"
	"errors"
	"fmt"

	"hiddensky"
)

// The catalog used by the examples: price, delivery days, weight — lower
// is better everywhere.
func exampleDB(k int) *hiddensky.DB {
	return hiddensky.MustNew(hiddensky.Config{
		Data: [][]int{
			{899, 2, 1200},
			{749, 5, 1100},
			{999, 1, 1250},
			{649, 7, 1500},
			{849, 3, 1000},
		},
		Caps: []hiddensky.Capability{hiddensky.RQ, hiddensky.RQ, hiddensky.RQ},
		K:    k,
		Rank: hiddensky.AttrRank{Attr: 0},
	})
}

// Discover retrieves the complete skyline through the top-k interface.
func ExampleDiscover() {
	db := exampleDB(2)
	res, err := hiddensky.Discover(db, hiddensky.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("skyline size:", len(res.Skyline))
	fmt.Println("complete:", res.Complete)
	// Output:
	// skyline size: 5
	// complete: true
}

// DiscoverWhere restricts discovery to a filtered subset (§2.1): here,
// only products delivered within three days.
func ExampleDiscoverWhere() {
	db := exampleDB(2)
	res, err := hiddensky.DiscoverWhere(db, hiddensky.Q{
		{Attr: 1, Op: hiddensky.LE, Value: 3},
	}, hiddensky.Options{})
	if err != nil {
		panic(err)
	}
	for _, t := range res.Skyline {
		fmt.Println(t[0], t[1])
	}
	// Output:
	// 849 3
	// 899 2
	// 999 1
}

// A query budget turns any run into an anytime run: the partial result
// contains only genuine skyline tuples.
func ExampleOptions_maxQueries() {
	db := exampleDB(1)
	res, err := hiddensky.Discover(db, hiddensky.Options{MaxQueries: 2})
	fmt.Println("budget hit:", errors.Is(err, hiddensky.ErrBudget))
	fmt.Println("complete:", res.Complete)
	fmt.Println("queries:", res.Queries)
	// Output:
	// budget hit: true
	// complete: false
	// queries: 2
}

// RQBandSky discovers the K-skyband, which answers top-K queries for any
// monotonic ranking function.
func ExampleRQBandSky() {
	db := exampleDB(3)
	band, err := hiddensky.RQBandSky(db, 2, hiddensky.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("2-skyband size:", len(band.Tuples))
	fmt.Println("complete:", band.Complete)
	// Output:
	// 2-skyband size: 5
	// complete: true
}

// A Session checkpoints discovery across daily query quotas: serialize it
// after today's budget, restore and resume tomorrow.
func ExampleSession() {
	s := hiddensky.NewSession(exampleDB(1))

	// Day one: five queries, then persist.
	_, err := s.Resume(exampleDB(1), hiddensky.Options{MaxQueries: 5})
	fmt.Println("day one budget hit:", errors.Is(err, hiddensky.ErrBudget))
	var checkpoint bytes.Buffer
	if err := s.Save(&checkpoint); err != nil {
		panic(err)
	}

	// Day two: restore and finish.
	restored, err := hiddensky.ReadSession(&checkpoint)
	if err != nil {
		panic(err)
	}
	res, err := restored.Resume(exampleDB(1), hiddensky.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("complete:", res.Complete)
	fmt.Println("skyline size:", len(res.Skyline))
	// Output:
	// day one budget hit: true
	// complete: true
	// skyline size: 5
}

// Record captures the query stream of a discovery run; the transcript
// replays it offline with no database behind it.
func ExampleRecord() {
	tr := hiddensky.Record(exampleDB(2))
	live, err := hiddensky.Discover(tr, hiddensky.Options{})
	if err != nil {
		panic(err)
	}

	// Replay the identical run against the recorded answers only.
	replayed, err := hiddensky.Discover(tr.Replay(), hiddensky.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("exchanges recorded:", len(tr.Entries))
	fmt.Println("same skyline:", len(live.Skyline) == len(replayed.Skyline))
	fmt.Println("same cost:", live.Queries == replayed.Queries)
	// Output:
	// exchanges recorded: 13
	// same skyline: true
	// same cost: true
}

// ComputeSkylineTuples is the local (non-hidden) skyline, used as ground
// truth throughout the library's tests.
func ExampleComputeSkylineTuples() {
	sky := hiddensky.ComputeSkylineTuples([][]int{
		{1, 9}, {5, 5}, {9, 1}, {6, 6},
	})
	fmt.Println(len(sky))
	// Output:
	// 3
}
