package hiddensky_test

import (
	"net/http/httptest"
	"testing"

	"hiddensky"
)

// testWebServer bundles an httptest server around a hidden database with a
// dialed client, for facade-level integration tests.
type testWebServer struct {
	srv    *httptest.Server
	client *hiddensky.WebClient
}

func newTestWebServer(t *testing.T, db *hiddensky.DB) *testWebServer {
	t.Helper()
	srv := httptest.NewServer(hiddensky.NewWebServer(db, nil))
	client, err := hiddensky.DialWeb(srv.URL, srv.Client())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return &testWebServer{srv: srv, client: client}
}

func (s *testWebServer) close() { s.srv.Close() }

// Remote discovery through the facade end to end.
func TestFacadeWebDiscovery(t *testing.T) {
	db := hiddensky.MustNew(hiddensky.Config{
		Data: [][]int{{1, 9}, {5, 5}, {9, 1}, {7, 7}},
		Caps: []hiddensky.Capability{hiddensky.RQ, hiddensky.RQ},
		K:    2,
	})
	s := newTestWebServer(t, db)
	defer s.close()
	res, err := hiddensky.Discover(s.client, hiddensky.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 3 {
		t.Fatalf("remote skyline %v", res.Skyline)
	}
	if s.client.QueriesIssued() != res.Queries {
		t.Fatal("remote query accounting mismatch")
	}
}
