package hiddensky_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hiddensky"
)

func randCatalog(rng *rand.Rand, n, m, domain int) [][]int {
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		data[i] = t
	}
	return data
}

// Record a full discovery over every interface type, persist the
// transcript, and replay it offline: results and costs must be identical,
// and the replayer must need no queries beyond the recorded set.
func TestRecordPersistReplayAllInterfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		name string
		caps []hiddensky.Capability
	}{
		{"sq", []hiddensky.Capability{hiddensky.SQ, hiddensky.SQ, hiddensky.SQ}},
		{"rq", []hiddensky.Capability{hiddensky.RQ, hiddensky.RQ, hiddensky.RQ}},
		{"pq", []hiddensky.Capability{hiddensky.PQ, hiddensky.PQ, hiddensky.PQ}},
		{"mixed", []hiddensky.Capability{hiddensky.SQ, hiddensky.RQ, hiddensky.PQ}},
	} {
		data := randCatalog(rng, 150, 3, 6)
		db := hiddensky.MustNew(hiddensky.Config{Data: data, Caps: tc.caps, K: 2})
		tr := hiddensky.Record(db)
		live, err := hiddensky.Discover(tr, hiddensky.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatal(err)
		}
		rp, err := hiddensky.ReadReplayer(&buf)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := hiddensky.Discover(rp, hiddensky.Options{})
		if err != nil {
			t.Fatalf("%s replay: %v", tc.name, err)
		}
		if len(replayed.Skyline) != len(live.Skyline) || replayed.Queries != live.Queries {
			t.Fatalf("%s: replay diverged: %d/%d tuples, %d/%d queries",
				tc.name, len(replayed.Skyline), len(live.Skyline), replayed.Queries, live.Queries)
		}
		lset := map[string]bool{}
		for _, s := range live.Skyline {
			lset[fmt.Sprint(s)] = true
		}
		for _, s := range replayed.Skyline {
			if !lset[fmt.Sprint(s)] {
				t.Fatalf("%s: replay invented tuple %v", tc.name, s)
			}
		}
	}
}

// A replayer cannot answer a different workload: the error must identify
// the unsupported query rather than fabricate an answer.
func TestReplayRefusesForeignWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randCatalog(rng, 80, 2, 6)
	caps := []hiddensky.Capability{hiddensky.RQ, hiddensky.RQ}

	tr := hiddensky.Record(hiddensky.MustNew(hiddensky.Config{Data: data, Caps: caps, K: 2}))
	if _, err := hiddensky.Discover(tr, hiddensky.Options{}); err != nil {
		t.Fatal(err)
	}
	rp := tr.Replay()
	// The K-skyband run issues strict lower-bound queries that a skyline
	// run never needs.
	_, err := hiddensky.RQBandSky(rp, 2, hiddensky.Options{})
	if err == nil || !errors.Is(err, hiddensky.ErrNotRecorded) {
		t.Fatalf("foreign workload answered from transcript: %v", err)
	}
}

// The web client and the in-process simulator must be observationally
// identical: record both query streams for the same discovery and compare
// exchange by exchange.
func TestWebAndLocalTranscriptsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := randCatalog(rng, 200, 3, 8)
	caps := []hiddensky.Capability{hiddensky.RQ, hiddensky.SQ, hiddensky.PQ}
	mk := func() *hiddensky.DB {
		return hiddensky.MustNew(hiddensky.Config{Data: data, Caps: caps, K: 3})
	}

	local := hiddensky.Record(mk())
	lres, err := hiddensky.Discover(local, hiddensky.Options{})
	if err != nil {
		t.Fatal(err)
	}

	srv := newTestWebServer(t, mk())
	defer srv.close()
	remote := hiddensky.Record(srv.client)
	rres, err := hiddensky.Discover(remote, hiddensky.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lres.Queries != rres.Queries || len(lres.Skyline) != len(rres.Skyline) {
		t.Fatalf("local %d/%d vs remote %d/%d", lres.Queries, len(lres.Skyline), rres.Queries, len(rres.Skyline))
	}
	if len(local.Entries) != len(remote.Entries) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(local.Entries), len(remote.Entries))
	}
	for i := range local.Entries {
		if fmt.Sprint(local.Entries[i].Tuples) != fmt.Sprint(remote.Entries[i].Tuples) {
			t.Fatalf("exchange %d diverges:\nlocal  %v\nremote %v",
				i, local.Entries[i], remote.Entries[i])
		}
	}
}
