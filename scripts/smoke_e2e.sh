#!/usr/bin/env bash
# End-to-end smoke: build every command, boot skyserve + skylined,
# submit a job over HTTP, poll it to completion, and verify the result
# endpoint answers. Also exercises skyquery's -resume checkpoint path
# against the same server.
#
# With -chaos, runs the chaos flow instead: skyserve boots with the
# hostile fault-injection profile (429 bursts, 5xx, connection resets,
# truncated bodies, latency jitter), skylined's upstream retry policy
# absorbs every fault, and the job must still finish complete with
# faults provably injected. Set CHAOS_LOG_OUT to export the fault
# injection log as a build artifact.
set -euo pipefail

SERVE_ADDR=127.0.0.1:18080
DAEMON_ADDR=127.0.0.1:18090
WORK=$(mktemp -d)
BIN="$WORK/bin"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "smoke: $*"; }

# Readiness, not liveness: /readyz answers 503 until the daemon can
# actually serve (skylined: snapshots replayed and answer indexes
# rebuilt), so waiting on it replaces any fixed sleep.
wait_ready() {
  local url=$1
  for _ in $(seq 1 100); do
    if curl -sf "$url/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "smoke: $url/readyz never turned ready" >&2
  return 1
}

# poll_done <job-id> — poll a job until done (asserting completeness);
# fail on failed/cancelled/timeout. Leaves the final status in $status.
poll_done() {
  local job=$1 state
  for i in $(seq 1 300); do
    status=$(curl -sf "http://$DAEMON_ADDR/v1/jobs/$job")
    state=$(echo "$status" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$state" in
      done)
        echo "$status" | grep -q '"complete":true' || {
          echo "smoke: job finished incomplete: $status" >&2; exit 1; }
        return 0
        ;;
      failed|cancelled)
        echo "smoke: job ended $state: $status" >&2; exit 1
        ;;
    esac
    sleep 0.2
    [ "$i" -lt 300 ] || { echo "smoke: job never finished: $status" >&2; exit 1; }
  done
}

say "building commands"
go build -o "$BIN/" ./cmd/...

say "generating dataset"
"$BIN/datagen" -dataset anticorrelated -n 800 -m 3 -domain 50 -o "$WORK/data.csv"

if [ "${1:-}" = "-chaos" ]; then
  # ---------------- chaos flow ----------------
  # The exact-parity assertions of the normal flow do not hold here by
  # design: injected truncations replay the inner handler, so skyserve's
  # served-search counter legitimately exceeds the job's counted
  # queries. What must hold instead: the job finishes complete, faults
  # were provably injected, and the answer tier serves.
  say "CHAOS: booting skyserve with the hostile profile on $SERVE_ADDR"
  "$BIN/skyserve" -in "$WORK/data.csv" -k 5 -addr "$SERVE_ADDR" -sample-interval 250ms \
    -chaos "hostile,seed=42" 2>"$WORK/chaos_serve.log" &
  PIDS+=($!)
  wait_ready "http://$SERVE_ADDR"

  say "CHAOS: booting skylined with a fast hardened retry policy on $DAEMON_ADDR"
  "$BIN/skylined" -addr "$DAEMON_ADDR" -snapshots "$WORK/snapshots" \
    -max-jobs 2 -checkpoint-every 4 -sample-interval 250ms \
    -upstream-retries 10 -upstream-backoff 10ms -upstream-backoff-max 100ms \
    -retry-max-delay 2s -breaker-threshold 3 -breaker-cooldown 2s \
    -store smoke="http://$SERVE_ADDR" 2>"$WORK/chaos_lined.log" &
  PIDS+=($!)
  wait_ready "http://$DAEMON_ADDR"

  say "CHAOS: submitting a resumable job through the fault schedule"
  created=$(curl -sf -XPOST "http://$DAEMON_ADDR/v1/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"store":"smoke","resumable":true}')
  job=$(echo "$created" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
  [ -n "$job" ] || { echo "smoke: no job id in: $created" >&2; exit 1; }
  poll_done "$job"
  queries=$(echo "$status" | sed -n 's/.*"queries":\([0-9]*\).*/\1/p')
  [ -n "$queries" ] && [ "$queries" -gt 0 ] || {
    echo "smoke: chaos job reported no queries: $status" >&2; exit 1; }
  say "CHAOS: job $job done complete with $queries queries"

  curl -sf "http://$DAEMON_ADDR/v1/jobs/$job/result" | grep -q '"tuples"' || {
    echo "smoke: chaos job result endpoint gave no tuples" >&2; exit 1; }

  # Faults must actually have been injected, and the retry layer must
  # show absorbed attempts — a chaos run with zero faults proves nothing.
  faults=$(curl -sf "http://$SERVE_ADDR/metrics" | \
    awk '$1 ~ /^chaos_faults_injected_total/ { s += $2 } END { print s + 0 }')
  [ "$faults" -gt 0 ] || {
    echo "smoke: chaos_faults_injected_total is 0 — no faults injected" >&2; exit 1; }
  retried=$(curl -sf "http://$DAEMON_ADDR/metrics" | \
    awk '$1 == "upstream_unavailable_total{store=\"smoke\"}" { print $2 }')
  say "CHAOS: $faults faults injected, upstream_unavailable_total=${retried:-0}"

  grep -q 'fault injected' "$WORK/chaos_serve.log" || {
    echo "smoke: skyserve logged no injected faults" >&2; exit 1; }
  if [ -n "${CHAOS_LOG_OUT:-}" ]; then
    grep 'chaos' "$WORK/chaos_serve.log" > "$CHAOS_LOG_OUT" || true
    say "CHAOS: exported fault log to $CHAOS_LOG_OUT ($(wc -l < "$CHAOS_LOG_OUT") lines)"
  fi

  say "CHAOS: querying the answer index built under faults"
  answer=$(curl -sf -XPOST "http://$DAEMON_ADDR/v1/answer/topk" \
    -H 'Content-Type: application/json' \
    -d '{"store":"smoke","weights":[1,0.5,2],"k":5}')
  echo "$answer" | grep -q '"tuples":\[\[' || {
    echo "smoke: chaos answer topk gave no tuples: $answer" >&2; exit 1; }

  say "CHAOS OK"
  exit 0
fi

say "booting skyserve on $SERVE_ADDR"
"$BIN/skyserve" -in "$WORK/data.csv" -k 5 -addr "$SERVE_ADDR" -sample-interval 250ms &
PIDS+=($!)
wait_ready "http://$SERVE_ADDR"

say "booting skylined on $DAEMON_ADDR"
"$BIN/skylined" -addr "$DAEMON_ADDR" -snapshots "$WORK/snapshots" \
  -max-jobs 2 -checkpoint-every 4 -sample-interval 250ms \
  -store smoke="http://$SERVE_ADDR" &
PIDS+=($!)
wait_ready "http://$DAEMON_ADDR"

# The first job runs uncached so its counted queries are exactly the
# upstream HTTP searches — the metrics parity check below depends on it.
say "submitting a resumable job"
created=$(curl -sf -XPOST "http://$DAEMON_ADDR/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"store":"smoke","resumable":true}')
job=$(echo "$created" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$job" ] || { echo "smoke: no job id in: $created" >&2; exit 1; }
say "job $job submitted"

say "polling $job to completion"
for i in $(seq 1 300); do
  status=$(curl -sf "http://$DAEMON_ADDR/v1/jobs/$job")
  state=$(echo "$status" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  case "$state" in
    done)
      echo "$status" | grep -q '"complete":true' || {
        echo "smoke: job finished incomplete: $status" >&2; exit 1; }
      break
      ;;
    failed|cancelled)
      echo "smoke: job ended $state: $status" >&2; exit 1
      ;;
  esac
  sleep 0.2
  [ "$i" -lt 300 ] || { echo "smoke: job never finished: $status" >&2; exit 1; }
done
say "job done: $(echo "$status" | sed -n 's/.*"queries":\([0-9]*\).*/queries=\1/p')"

echo "$status" | grep -q '"trace_id":"' || {
  echo "smoke: job status carries no trace id: $status" >&2; exit 1; }

curl -sf "http://$DAEMON_ADDR/v1/jobs/$job/result" | grep -q '"tuples"' || {
  echo "smoke: result endpoint gave no tuples" >&2; exit 1; }

# Observability parity: the job ran uncached, so its counted queries,
# skylined's per-store upstream counter, and skyserve's served-search
# counter must agree exactly — one number, three vantage points.
say "scraping /metrics on both daemons"
queries=$(echo "$status" | sed -n 's/.*"queries":\([0-9]*\).*/\1/p')
[ -n "$queries" ] && [ "$queries" -gt 0 ] || {
  echo "smoke: job reported no queries: $status" >&2; exit 1; }
upstream=$(curl -sf "http://$DAEMON_ADDR/metrics" | \
  awk '$1 == "upstream_queries_total{store=\"smoke\"}" { print $2 }')
[ "$upstream" = "$queries" ] || {
  echo "smoke: skylined upstream_queries_total=$upstream, job reported $queries" >&2; exit 1; }
served=$(curl -sf "http://$SERVE_ADDR/metrics" | \
  awk '$1 == "search_requests_total" { print $2 }')
[ "$served" = "$queries" ] || {
  echo "smoke: skyserve search_requests_total=$served, job reported $queries" >&2; exit 1; }
say "metrics agree: job=$queries upstream=$upstream served=$served"

# Trace parity: the job ran uncached, so its span trace must carry
# exactly one web.query span per counted query — the fourth vantage
# point on the same number.
say "fetching the job trace"
trace=$(curl -sf "http://$DAEMON_ADDR/v1/jobs/$job/trace")
spans=$(echo "$trace" | grep -o '"name":"web.query"' | wc -l | tr -d ' ')
[ "$spans" = "$queries" ] || {
  echo "smoke: trace has $spans web.query spans, job reported $queries" >&2; exit 1; }
chrome=$(curl -sf "http://$DAEMON_ADDR/v1/jobs/$job/trace?format=chrome")
echo "$chrome" | grep -q '"traceEvents"' || {
  echo "smoke: chrome trace export lacks traceEvents: ${chrome:0:200}" >&2; exit 1; }
say "trace agrees: $spans web.query spans"
# CI archives one real exported trace as a build artifact.
if [ -n "${TRACE_OUT:-}" ]; then
  echo "$chrome" > "$TRACE_OUT"
  say "exported chrome trace to $TRACE_OUT"
fi

say "summarizing the trace with skytrace"
"$BIN/skytrace" -url "http://$DAEMON_ADDR" -job "$job" | grep -q "slowest" || {
  echo "smoke: skytrace gave no summary" >&2; exit 1; }
"$BIN/skytrace" -url "http://$DAEMON_ADDR" -job "$job" -chrome "$WORK/trace.json"
grep -q '"traceEvents"' "$WORK/trace.json" || {
  echo "smoke: skytrace -chrome wrote no traceEvents" >&2; exit 1; }

curl -sf "http://$DAEMON_ADDR/v1/stats" | grep -q '"metrics":\[' || {
  echo "smoke: skylined /v1/stats gave no metrics" >&2; exit 1; }
curl -sf "http://$SERVE_ADDR/v1/stats" | grep -q '"name":"search_requests_total"' || {
  echo "smoke: skyserve /v1/stats gave no metrics" >&2; exit 1; }

# Time-series history: both daemons sampled at 250ms through the job,
# so the rings hold real samples and the 1m windowed rates are nonzero
# — the job's upstream queries just happened.
say "checking /v1/history on both daemons"
for url in "http://$DAEMON_ADDR" "http://$SERVE_ADDR"; do
  hist=$(curl -sf "$url/v1/history?last=64")
  samples=$(echo "$hist" | sed -n 's/.*"times_unix_ms":\[\([^]]*\)\].*/\1/p' | awk -F, '{print NF}')
  [ -n "$samples" ] && [ "$samples" -ge 2 ] || {
    echo "smoke: $url/v1/history has $samples samples, want >=2" >&2; exit 1; }
  nonzero=$(echo "$hist" | grep -o '"rate_1m":[0-9.eE+-]*' | cut -d: -f2 | awk '$1 > 0 { c++ } END { print c + 0 }')
  [ "$nonzero" -ge 1 ] || {
    echo "smoke: $url/v1/history shows no nonzero rate_1m" >&2; exit 1; }
  say "$url history: $samples samples, $nonzero series with nonzero 1m rate"
done

say "rendering the ops console against both daemons"
top=$("$BIN/skytop" -once -url "http://$DAEMON_ADDR" -url "http://$SERVE_ADDR")
echo "$top" | grep -q "skylined" || {
  echo "smoke: skytop shows no skylined panel: $top" >&2; exit 1; }
echo "$top" | grep -q "skyserve" || {
  echo "smoke: skytop shows no skyserve panel: $top" >&2; exit 1; }
[ "$(echo "$top" | grep -c "ready")" -ge 2 ] || {
  echo "smoke: skytop panels not both ready: $top" >&2; exit 1; }
echo "$top" | grep -q "goroutines=" || {
  echo "smoke: skytop shows no runtime telemetry: $top" >&2; exit 1; }

say "submitting a filtered job (-where composes with an explicit algo end-to-end)"
bad=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "http://$DAEMON_ADDR/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"store":"smoke","where":"A0!!nonsense"}')
[ "$bad" = "400" ] || { echo "smoke: bad where answered $bad, want 400" >&2; exit 1; }
fcreated=$(curl -sf -XPOST "http://$DAEMON_ADDR/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"store":"smoke","algo":"sq","where":"A0<25","use_cache":true}')
fjob=$(echo "$fcreated" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$fjob" ] || { echo "smoke: no job id in: $fcreated" >&2; exit 1; }
for i in $(seq 1 300); do
  fstatus=$(curl -sf "http://$DAEMON_ADDR/v1/jobs/$fjob")
  fstate=$(echo "$fstatus" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  case "$fstate" in
    done)
      echo "$fstatus" | grep -q '"complete":true' || {
        echo "smoke: filtered job finished incomplete: $fstatus" >&2; exit 1; }
      break
      ;;
    failed|cancelled)
      echo "smoke: filtered job ended $fstate: $fstatus" >&2; exit 1
      ;;
  esac
  sleep 0.2
  [ "$i" -lt 300 ] || { echo "smoke: filtered job never finished: $fstatus" >&2; exit 1; }
done
# Every returned tuple must satisfy A0 < 25: check the first coordinate
# of each tuple in the result payload (which must be non-empty, or the
# awk filter below would pass vacuously).
fresult=$(curl -sf "http://$DAEMON_ADDR/v1/jobs/$fjob/result")
echo "$fresult" | grep -q '"tuples":\[\[' || {
  echo "smoke: filtered job returned no tuples: $fresult" >&2; exit 1; }
echo "$fresult" | \
  sed -n 's/.*"tuples":\[\[\(.*\)\]\].*/\1/p' | tr -d ' ' | \
  awk -F'],[[]' 'BEGIN{RS="\n"} { n = split($0, rows, /\],\[/); for (i = 1; i <= n; i++) { split(rows[i], vals, ","); if (vals[1] + 0 >= 25) exit 1 } }' || {
  echo "smoke: filtered job returned a tuple violating A0<25" >&2; exit 1; }
say "filtered job $fjob done, every tuple honors A0<25"

say "querying the answer index materialized from $job"
answer=$(curl -sf -XPOST "http://$DAEMON_ADDR/v1/answer/topk" \
  -H 'Content-Type: application/json' \
  -d '{"store":"smoke","weights":[1,0.5,2],"k":5}')
echo "$answer" | grep -q '"tuples":\[\[' || {
  echo "smoke: answer topk gave no tuples: $answer" >&2; exit 1; }
# Scores must come back best-first (non-decreasing).
echo "$answer" | sed -n 's/.*"scores":\[\([^]]*\)\].*/\1/p' | tr ',' '\n' | \
  awk 'NR > 1 && $1 < prev { exit 1 } { prev = $1 }' || {
  echo "smoke: answer scores out of order: $answer" >&2; exit 1; }
say "answer topk ordered: $(echo "$answer" | sed -n 's/.*"scores":\[\([^]]*\)\].*/scores=[\1]/p')"

"$BIN/skyanswer" -url "http://$DAEMON_ADDR" -list | grep -q smoke || {
  echo "smoke: skyanswer -list does not show the store" >&2; exit 1; }
"$BIN/skyanswer" -url "http://$DAEMON_ADDR" -store smoke -topk -w 1,1,1 -k 3 | \
  grep -q "top-3" || { echo "smoke: skyanswer -topk failed" >&2; exit 1; }

say "answering a batch of weight vectors in one POST"
batch=$(curl -sf -XPOST "http://$DAEMON_ADDR/v1/answer/topk_batch" \
  -H 'Content-Type: application/json' \
  -d '{"store":"smoke","queries":[{"weights":[1,0.5,2],"k":5},{"weights":[2,1,1],"k":3}]}')
members=$(echo "$batch" | grep -o '"scores":\[' | wc -l | tr -d ' ')
[ "$members" = "2" ] || {
  echo "smoke: batch answered $members members, want 2: $batch" >&2; exit 1; }
single_scores=$(echo "$answer" | sed -n 's/.*"scores":\[\([^]]*\)\].*/\1/p')
batch_scores=$(echo "$batch" | grep -o '"scores":\[[^]]*\]' | head -1 | sed 's/"scores":\[\(.*\)\]/\1/')
[ "$batch_scores" = "$single_scores" ] || {
  echo "smoke: batch member 0 scores [$batch_scores] diverge from the single endpoint [$single_scores]" >&2; exit 1; }
say "batch member 0 matches the single topk endpoint"

# Kill and restart skylined over the same snapshot directory: /readyz
# must flip down and back up, and the answer index must come back from
# the binary columnar snapshot (not a JSON re-index) with identical
# answers — no upstream query spent.
say "killing skylined and restarting over $WORK/snapshots"
kill "${PIDS[1]}"
wait "${PIDS[1]}" 2>/dev/null || true
curl -sf "http://$DAEMON_ADDR/readyz" >/dev/null 2>&1 && {
  echo "smoke: readyz still answers after skylined was killed" >&2; exit 1; }
"$BIN/skylined" -addr "$DAEMON_ADDR" -snapshots "$WORK/snapshots" \
  -max-jobs 2 -checkpoint-every 4 -sample-interval 250ms \
  -store smoke="http://$SERVE_ADDR" 2>"$WORK/skylined2.log" &
PIDS+=($!)
wait_ready "http://$DAEMON_ADDR"
say "readyz flipped back to 200 after restart"

grep -q 'source=binary' "$WORK/skylined2.log" || {
  echo "smoke: restarted skylined did not recover the answer index from the binary snapshot:" >&2
  cat "$WORK/skylined2.log" >&2; exit 1; }
recovered=$(curl -sf "http://$DAEMON_ADDR/metrics" | \
  awk '$1 == "answer_recover_source_total{source=\"binary\"}" { print $2 }')
[ "$recovered" = "1" ] || {
  echo "smoke: answer_recover_source_total{source=binary}=$recovered, want 1" >&2; exit 1; }
answer2=$(curl -sf -XPOST "http://$DAEMON_ADDR/v1/answer/topk" \
  -H 'Content-Type: application/json' \
  -d '{"store":"smoke","weights":[1,0.5,2],"k":5}')
scores2=$(echo "$answer2" | sed -n 's/.*"scores":\[\([^]]*\)\].*/\1/p')
[ "$scores2" = "$single_scores" ] || {
  echo "smoke: binary-recovered answers diverge: [$scores2] vs [$single_scores]" >&2; exit 1; }
say "answer index recovered from the binary snapshot, answers identical"

say "exercising skyquery -resume against the same server"
set +e
"$BIN/skyquery" -url "http://$SERVE_ADDR" -budget 25 -resume "$WORK/session.json" -tuples=false
set -e
[ -f "$WORK/session.json" ] || { echo "smoke: no checkpoint written" >&2; exit 1; }
for _ in $(seq 1 200); do
  [ -f "$WORK/session.json" ] || break
  "$BIN/skyquery" -url "http://$SERVE_ADDR" -budget 200 -resume "$WORK/session.json" -tuples=false
done
[ ! -f "$WORK/session.json" ] || { echo "smoke: session never completed" >&2; exit 1; }

say "OK"
