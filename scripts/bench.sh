#!/usr/bin/env bash
# Regenerate the repository's perf baseline (BENCH_PR9.json): run the
# named micro-benchmarks with -benchmem, then drive the serving read
# stack under concurrent load with cmd/skyperf and emit the JSON
# trajectory file the README's Performance section quotes.
#
# Usage:
#   scripts/bench.sh            # full scale, writes BENCH_PR9.json
#   scripts/bench.sh -quick     # reduced scale (CI smoke), writes
#                               # BENCH_PR9.quick.json so the committed
#                               # full-scale baseline is never clobbered
#   BENCH_OUT=other.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DEFAULT_OUT=BENCH_PR9.json
for arg in "$@"; do
  if [ "$arg" = "-quick" ]; then
    DEFAULT_OUT=BENCH_PR9.quick.json
  fi
done
OUT=${BENCH_OUT:-$DEFAULT_OUT}

echo "bench: named micro-benchmarks (-benchmem)" >&2
go test -run=NONE -benchmem \
  -bench='StoreTopK|CacheLookupParallel|CanonKey' \
  -benchtime=1000x \
  ./internal/answer ./internal/qcache

echo "bench: serving load harness -> $OUT" >&2
go run ./cmd/skyperf -out "$OUT" "$@" >/dev/null

echo "bench: wrote $OUT" >&2
