#!/usr/bin/env bash
# slo_gate.sh — evaluate a committed benchmark report against the
# repository's performance SLOs (scripts/slo.json) and fail loudly on
# any broken bound. CI runs it against the -quick bench it just
# regenerated, so a perf regression fails the build with the exact
# number that moved.
#
# Usage:  scripts/slo_gate.sh [BENCH_FILE]        (default BENCH_PR9.quick.json)
#         SLO_SPEC=path/to/spec.json scripts/slo_gate.sh BENCH_PR9.json
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-BENCH_PR9.quick.json}"
SLO="${SLO_SPEC:-scripts/slo.json}"

if [ ! -f "$BENCH" ]; then
    echo "slo_gate: benchmark report $BENCH not found" >&2
    exit 1
fi

exec go run ./cmd/skyperf -check "$BENCH" -slo "$SLO"
