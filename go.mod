module hiddensky

go 1.24
