// Package hiddensky is a Go implementation of "Discovering the Skyline of
// Web Databases" (Asudeh, Thirumuruganathan, Zhang, Das — VLDB 2016): a
// library for retrieving all skyline tuples from a hidden web database
// that is only reachable through a top-k conjunctive search interface with
// an unknown (but domination-consistent) ranking function.
//
// The package is a facade re-exporting the library surface:
//
//   - the query model (Predicate, Q, operators),
//   - the hidden-database simulator (DB, Config, rankings, the SQ/RQ/PQ
//     interface taxonomy),
//   - the discovery algorithms (SQDBSky, RQDBSky, PQ2DSky, PQDBSky,
//     MQDBSky / Discover, and the K-skyband variants),
//   - the crawling baseline (Crawl, CrawlSkyline),
//   - the serving layer (JobManager, the HTTP job API behind
//     cmd/skylined, and its Go client) for long-running, resumable,
//     checkpointed discovery jobs,
//   - the answer read path (AnswerStore / BuildAnswerStore, hot-swapped
//     per store by the job manager and queried through cmd/skyanswer):
//     a materialized skyline/K-skyband index answering top-k under any
//     client weight vector, subspace skylines and dominance tests
//     without touching the upstream database,
//   - local skyline computation, data generators, the closed-form cost
//     analysis, and the benchmark harness regenerating every figure of the
//     paper's evaluation.
//
// Quickstart:
//
//	d := hiddensky.BlueNile(1, 50000)
//	db := d.DB(50, hiddensky.AttrRank{Attr: 0}) // ranked by price
//	res, err := hiddensky.Discover(db, hiddensky.Options{})
//	// res.Skyline now holds every Pareto-optimal diamond;
//	// res.Queries is what it cost through the top-50 interface.
package hiddensky

import (
	"hiddensky/internal/analysis"
	"hiddensky/internal/answer"
	"hiddensky/internal/bench"
	"hiddensky/internal/core"
	"hiddensky/internal/crawl"
	"hiddensky/internal/datagen"
	"hiddensky/internal/engine"
	"hiddensky/internal/federate"
	"hiddensky/internal/hidden"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
	"hiddensky/internal/service"
	"hiddensky/internal/skyline"
	"hiddensky/internal/web"
)

// Query model.
type (
	// Op is a predicate comparison operator.
	Op = query.Op
	// Predicate is one comparison on one ranking attribute.
	Predicate = query.Predicate
	// Q is a conjunctive query (nil = SELECT *).
	Q = query.Q
	// Interval is a closed integer interval.
	Interval = query.Interval
)

// Predicate operators.
const (
	LT = query.LT
	LE = query.LE
	EQ = query.EQ
	GE = query.GE
	GT = query.GT
)

// Hidden-database simulator.
type (
	// Capability is the per-attribute interface taxonomy (SQ/RQ/PQ).
	Capability = hidden.Capability
	// DB is a simulated hidden web database behind a top-k interface.
	DB = hidden.DB
	// Config describes a hidden database to construct.
	Config = hidden.Config
	// Result is a top-k query answer.
	QueryResult = hidden.Result
	// Ranking is a domination-consistent ranking function.
	Ranking = hidden.Ranking
	// SumRank ranks by ascending attribute sum.
	SumRank = hidden.SumRank
	// WeightedRank ranks by an ascending positive-weighted sum.
	WeightedRank = hidden.WeightedRank
	// AttrRank ranks by one attribute (e.g. price low-to-high).
	AttrRank = hidden.AttrRank
	// LexRank ranks lexicographically.
	LexRank = hidden.LexRank
	// RandomWeightRank ranks by a seeded random positive weighting.
	RandomWeightRank = hidden.RandomWeightRank
	// RandomExtensionRank is the paper's average-case random ranking.
	RandomExtensionRank = hidden.RandomExtensionRank
	// AdversarialRank is a worst-case-leaning ranking.
	AdversarialRank = hidden.AdversarialRank
)

// Interface capabilities.
const (
	// SQ supports one-ended ranges (<, <=, =).
	SQ = hidden.SQ
	// RQ supports two-ended ranges (adds >=, >).
	RQ = hidden.RQ
	// PQ supports point predicates only (=).
	PQ = hidden.PQ
)

// Errors surfaced by the simulator and algorithms.
var (
	// ErrUnsupportedPredicate: the interface rejects the operator.
	ErrUnsupportedPredicate = hidden.ErrUnsupportedPredicate
	// ErrRateLimited: the per-client query budget is exhausted.
	ErrRateLimited = hidden.ErrRateLimited
	// ErrBudget: discovery stopped early with a partial (anytime) result.
	ErrBudget = core.ErrBudget
)

// New constructs a hidden database; MustNew panics on config errors.
var (
	New     = hidden.New
	MustNew = hidden.MustNew
	// ParseQuery parses a textual filter like "A0<500,A2>=3".
	ParseQuery = query.Parse
	// MustParseQuery is ParseQuery panicking on malformed input, for
	// fixed literals.
	MustParseQuery = query.MustParse
)

// Discovery algorithms.
type (
	// Options tunes a discovery run.
	Options = core.Options
	// DiscoveryResult is the outcome of a discovery run.
	DiscoveryResult = core.Result
	// TraceEvent is one anytime-discovery event.
	TraceEvent = core.TraceEvent
	// BandResult is the outcome of a K-skyband run.
	BandResult = core.BandResult
	// HiddenDB is the minimal interface the algorithms require.
	HiddenDB = core.Interface
	// Request declaratively describes one discovery run for the
	// capability-driven planner (algorithm, K-skyband level, filter,
	// resumability); the zero value is a full auto-dispatched skyline.
	Request = core.Request
	// Algo names a discovery algorithm family for Request.Algo.
	Algo = core.Algo
	// QueryPlan is a compiled Request, ready to execute.
	QueryPlan = core.QueryPlan
	// PlanError reports why a Request cannot run on an interface; it
	// matches ErrUnsupported under errors.Is.
	PlanError = core.PlanError
)

// Algorithm families a Request may name.
const (
	AlgoAuto = core.AlgoAuto
	AlgoSQ   = core.AlgoSQ
	AlgoRQ   = core.AlgoRQ
	AlgoPQ   = core.AlgoPQ
	AlgoMQ   = core.AlgoMQ
)

// The planner: every layer of the repository (the job service, the
// federated fleet, the CLIs) dispatches discovery through Plan/Run.
var (
	// Plan compiles a Request against an interface's capabilities,
	// returning a typed error for unsatisfiable combinations.
	Plan = core.Plan
	// Run compiles and executes a Request in one call.
	Run = core.Run
	// ParseAlgo normalizes a textual algorithm name ("" = auto).
	ParseAlgo = core.ParseAlgo
	// ErrUnsupported is the errors.Is target for request combinations
	// the interface cannot satisfy.
	ErrUnsupported = core.ErrUnsupported
)

// Algorithm entry points (see the paper sections in parentheses) —
// retained for paper fidelity. They are the points of Request space the
// planner dispatches to; new code that wants features to compose
// (filter × band × explicit algorithm × resume) should go through Run.
var (
	// SQDBSky discovers the skyline via one-ended ranges (Algorithm 1, §3).
	SQDBSky = core.SQDBSky
	// RQDBSky discovers the skyline via two-ended ranges (Algorithm 2, §4).
	RQDBSky = core.RQDBSky
	// PQ2DSky is the instance-optimal 2D point-predicate algorithm (§5.1).
	PQ2DSky = core.PQ2DSky
	// PQDBSky handles higher-dimensional point predicates (§5.3).
	PQDBSky = core.PQDBSky
	// MQDBSky handles arbitrary SQ/RQ/PQ mixtures (Algorithm 6, §6).
	MQDBSky = core.MQDBSky
	// Discover dispatches to the right algorithm for the interface.
	Discover = core.Discover
	// DiscoverWhere discovers the skyline of a filtered subset (§2.1).
	DiscoverWhere = core.DiscoverWhere
	// RQBandSky, PQBandSky, SQBandSky discover the K-skyband (§7.2).
	RQBandSky = core.RQBandSky
	PQBandSky = core.PQBandSky
	SQBandSky = core.SQBandSky
)

// Execution layer: the shared memoizing query cache and the bounded
// parallel engine. Discover runs them via Options.Cache / Options
// .Parallelism; the primitives are exported for direct composition.
type (
	// QueryCache is the concurrency-safe canonicalizing memo cache: equal
	// queries (under predicate normalization) are answered once, in-flight
	// duplicates are coalesced, and entries are LRU-bounded. One cache may
	// front many databases and many runs.
	QueryCache = qcache.Cache
	// QueryCacheConfig tunes a QueryCache.
	QueryCacheConfig = qcache.Config
	// QueryCacheStats snapshots hit/miss/dedup/eviction counters.
	QueryCacheStats = qcache.Stats
	// CachedDB is one database's cached view (implements HiddenDB).
	CachedDB = qcache.DB
	// QueryBudget is a shared atomic web-query allowance for fleets.
	QueryBudget = engine.Budget
	// WorkerPool is the bounded-worker executor behind Options.Parallelism.
	WorkerPool = engine.Pool
)

var (
	// NewQueryCache builds an empty shared query cache.
	NewQueryCache = qcache.New
	// NewQueryBudget builds a shared budget of n queries (n <= 0: unlimited).
	NewQueryBudget = engine.NewBudget
	// LimitQueries gates a database behind a shared budget; exhaustion
	// surfaces as ErrRateLimited and discovery degrades to its anytime
	// partial result.
	LimitQueries = engine.Limit
	// NewWorkerPool builds a bounded task pool (advanced use; Discover
	// manages its own pool via Options.Parallelism).
	NewWorkerPool = engine.NewPool
)

// Multi-session discovery under daily quotas, and query transcripts.
type (
	// Session is a serializable checkpoint of an SQ-DB-SKY run.
	Session = core.Session
	// Transcript records query/answer exchanges through any backend.
	Transcript = hidden.Transcript
	// TranscriptEntry is one recorded exchange.
	TranscriptEntry = hidden.TranscriptEntry
	// Replayer serves recorded answers with no database behind it.
	Replayer = hidden.Replayer
	// Backend is the querying surface transcripts wrap.
	Backend = hidden.Backend
)

var (
	// NewSession starts a checkpointable discovery run.
	NewSession = core.NewSession
	// ReadSession loads a serialized checkpoint.
	ReadSession = core.ReadSession
	// Record wraps a backend to capture its query stream.
	Record = hidden.Record
	// ReadReplayer loads a persisted transcript for offline replay.
	ReadReplayer = hidden.ReadReplayer
	// ErrNotRecorded is returned when replaying an unrecorded query.
	ErrNotRecorded = hidden.ErrNotRecorded
)

// HTTP layer: serve a hidden database as a JSON search API and discover
// skylines across a real network boundary.
type (
	// WebServer serves a hidden database over HTTP (package web).
	WebServer = web.Server
	// WebClient implements the discovery interface against a remote
	// endpoint.
	WebClient = web.Client
	// WebRateLimitError is returned when the remote endpoint answers 429
	// even after the client's single backoff-and-retry; it errors.Is-matches
	// ErrRateLimited.
	WebRateLimitError = web.RateLimitError
)

var (
	// NewWebServer wraps a database for HTTP serving.
	NewWebServer = web.NewServer
	// DialWeb connects to a remote hidden-database endpoint.
	DialWeb = web.Dial
)

// Serving layer: the discovery job manager behind cmd/skylined —
// long-running, resumable, progress-streaming discovery jobs over named
// stores, with a max-concurrent-jobs FIFO gate and a file-backed
// snapshot store that survives daemon restarts.
type (
	// JobManager runs discovery jobs against named stores.
	JobManager = service.Manager
	// JobManagerConfig tunes a JobManager (concurrency gate, snapshot
	// directory, shared cache, checkpoint interval).
	JobManagerConfig = service.Config
	// JobSpec describes one discovery job (store(s), algorithm, budget,
	// parallelism, cache, resumability).
	JobSpec = service.JobSpec
	// JobStatus is a job's externally visible state.
	JobStatus = service.JobStatus
	// JobState is a job's lifecycle state.
	JobState = service.JobState
	// ServiceHandler serves a JobManager over HTTP (the skylined API).
	ServiceHandler = service.Handler
	// ServiceClient is the Go client for a skylined daemon.
	ServiceClient = service.Client
	// ServiceHealth is the daemon's health summary.
	ServiceHealth = service.Health
	// DiscoveryProgress is one live progress event of a discovery run
	// (Options.Progress).
	DiscoveryProgress = core.ProgressEvent
)

// Job lifecycle states.
const (
	JobQueued    = service.StateQueued
	JobRunning   = service.StateRunning
	JobDone      = service.StateDone
	JobFailed    = service.StateFailed
	JobCancelled = service.StateCancelled
)

var (
	// NewJobManager builds a discovery job manager.
	NewJobManager = service.NewManager
	// NewServiceHandler wraps a JobManager in the HTTP job API.
	NewServiceHandler = service.NewHandler
	// DialService connects to a running skylined daemon.
	DialService = service.Dial
)

// Answer serving: the materialized read path built from a discovered
// skyline or K-skyband. A store answers every user's monotone ranking
// without spending one upstream query; a Handle hot-swaps fresh indexes
// under live traffic (lock-free readers).
type (
	// AnswerStore is the immutable materialized answer index.
	AnswerStore = answer.Store
	// AnswerOptions tunes BuildAnswerStore (band level, shard size).
	AnswerOptions = answer.Options
	// AnswerHandle is the atomic hot-swap publication point of a store.
	AnswerHandle = answer.Handle
	// AnswerInfo summarizes a store (tuples, attrs, band level, levels).
	AnswerInfo = answer.Info
	// AnswerTopKQuery is one top-k request (weights, k, filter).
	AnswerTopKQuery = answer.TopKQuery
	// AnswerTopKResult is a top-k answer with its exactness verdict.
	AnswerTopKResult = answer.TopKResult
	// AnswerRanked is one answered tuple with score and skyline level.
	AnswerRanked = answer.Ranked
	// AnswerRange is one per-attribute constraint of a filtered request.
	AnswerRange = answer.Range
)

var (
	// BuildAnswerStore materializes an answer index from tuples.
	BuildAnswerStore = answer.Build
	// ErrNoAnswer: a store has no materialized answer index yet.
	ErrNoAnswer = service.ErrNoAnswer
)

// Federated multi-store meta-search (the paper's motivating application).
type (
	// FederatedStore is one participating hidden database.
	FederatedStore = federate.Store
	// FederatedResult is the merged multi-store frontier.
	FederatedResult = federate.Result
	// FleetOptions tunes a federated fleet run (store concurrency, global
	// budget, shared cache).
	FleetOptions = federate.FleetOptions
	// Offer is one frontier tuple with its origin store.
	Offer = federate.Offer
	// Scorer is a user-defined monotonic scoring function.
	Scorer = federate.Scorer
)

var (
	// FederatedDiscover discovers and merges the skylines of many stores.
	FederatedDiscover = federate.Discover
	// FederatedDiscoverParallel queries the stores concurrently.
	FederatedDiscoverParallel = federate.DiscoverParallel
	// FederatedDiscoverFleet orchestrates stores on the bounded engine
	// executor with a global budget and shared cache.
	FederatedDiscoverFleet = federate.DiscoverFleet
	// WeightedScorer builds a linear monotonic scorer from positive weights.
	WeightedScorer = federate.WeightedScorer
)

// Crawling baseline.
type (
	// CrawlOptions tunes the BASELINE crawler.
	CrawlOptions = crawl.Options
	// CrawlResult is the outcome of a crawl.
	CrawlResult = crawl.Result
)

var (
	// Crawl retrieves the entire database via two-ended ranges.
	Crawl = crawl.Crawl
	// CrawlSkyline is the full BASELINE: crawl, then local skyline.
	CrawlSkyline = crawl.CrawlSkyline
)

// Local skyline computation.
var (
	// Dominates reports whether tuple a dominates tuple b.
	Dominates = skyline.Dominates
	// ComputeSkyline returns the skyline indices of an in-memory table.
	ComputeSkyline = skyline.Compute
	// ComputeSkylineTuples returns the skyline tuples themselves.
	ComputeSkylineTuples = skyline.ComputeTuples
	// ComputeSkyband returns the K-skyband indices.
	ComputeSkyband = skyline.Skyband
)

// Data generation.
type (
	// Dataset is a generated database plus interface metadata.
	Dataset = datagen.Dataset
	// DataAttr describes one generated ranking attribute.
	DataAttr = datagen.Attr
)

var (
	// Independent, Correlated, AntiCorrelated, CorrelationSweep generate
	// the classic synthetic skyline workloads.
	Independent      = datagen.Independent
	Correlated       = datagen.Correlated
	AntiCorrelated   = datagen.AntiCorrelated
	CorrelationSweep = datagen.CorrelationSweep
	// Flights synthesizes the DOT on-time database stand-in.
	Flights = datagen.Flights
	// BlueNile, YahooAutos, GoogleFlightsRoute synthesize the online
	// experiment databases at their published scales.
	BlueNile           = datagen.BlueNile
	YahooAutos         = datagen.YahooAutos
	GoogleFlightsRoute = datagen.GoogleFlightsRoute
	// ReadDatasetCSV / (Dataset).WriteCSV round-trip datasets as CSV.
	ReadDatasetCSV = datagen.ReadCSV
)

// Cost analysis (closed forms from §3-§5).
var (
	// AvgCostRecurrence is E(C_s) via equation (4).
	AvgCostRecurrence = analysis.AvgCostRecurrence
	// AvgCostClosedForm is equation (5).
	AvgCostClosedForm = analysis.AvgCostClosedForm
	// AvgCostExpBound is the (e + e·s/m)^m bound of equation (10).
	AvgCostExpBound = analysis.AvgCostExpBound
	// WorstCaseCost is the O(m·s^{m+1}) SQ worst case.
	WorstCaseCost = analysis.WorstCaseCost
	// PQ2DCost is the instance-optimal 2D cost of equation (11).
	PQ2DCost = analysis.PQ2DCost
)

// Benchmark harness.
type (
	// BenchConfig scales the experiment harness.
	BenchConfig = bench.Config
	// BenchFigure is a regenerated paper figure.
	BenchFigure = bench.Figure
	// BenchRunner regenerates one figure.
	BenchRunner = bench.Runner
)

var (
	// Figures returns a runner per paper figure.
	Figures = bench.All
	// FigureByID looks a runner up by id ("fig13").
	FigureByID = bench.ByID
)
