package hiddensky

import (
	"testing"
)

// Ablation benchmarks: quantify the design choices DESIGN.md calls out.
// Run with `go test -bench=Ablation -benchmem`; the "queries" metric is
// the interesting output (wall time just measures the simulator).

// UseOverflowFlag: trusting the interface's result count indicator versus
// the paper's |T| = k observation model. The flag saves the confirmation
// queries on answers that happen to carry exactly k matches.
func BenchmarkAblationOverflowFlag(b *testing.B) {
	d := Flights(1, 20000).Project(7, 0, 8, 1, 2) // DistGroup, delays, taxi times
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"paper-model", Options{}},
		{"overflow-flag", Options{UseOverflowFlag: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := d.WithCaps(RQ).DB(10, SumRank{})
			b.ResetTimer()
			var queries int
			for i := 0; i < b.N; i++ {
				db.ResetCounter()
				res, err := RQDBSky(db, tc.opt)
				if err != nil {
					b.Fatal(err)
				}
				queries = res.Queries
			}
			b.ReportMetric(float64(queries), "queries")
		})
	}
}

// SkipProvablyEmpty: reading the advertised domains off the search form
// versus issuing queries whose boxes are provably empty (the paper's cost
// model issues them).
func BenchmarkAblationSkipEmpty(b *testing.B) {
	d := Flights(1, 20000).Project(7, 0, 8, 1, 2)
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"issue-empty", Options{}},
		{"skip-empty", Options{SkipProvablyEmpty: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := d.WithCaps(SQ).DB(10, SumRank{})
			b.ResetTimer()
			var queries int
			for i := 0; i < b.N; i++ {
				db.ResetCounter()
				res, err := SQDBSky(db, tc.opt)
				if err != nil {
					b.Fatal(err)
				}
				queries = res.Queries
			}
			b.ReportMetric(float64(queries), "queries")
		})
	}
}

// Ranking sensitivity (§3.2): a benign ranking (sum) versus a random
// linear extension versus the adversarial peel ranking, on identical
// data — the practical spread between best, average and worst case.
func BenchmarkAblationRanking(b *testing.B) {
	d := CorrelationSweep(3, 1500, 4, 8, -0.4)
	for _, tc := range []struct {
		name string
		rank Ranking
	}{
		{"sum", SumRank{}},
		{"random-extension", RandomExtensionRank{Seed: 5}},
		{"adversarial", AdversarialRank{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := d.WithCaps(SQ).DB(1, tc.rank)
			b.ResetTimer()
			var queries int
			for i := 0; i < b.N; i++ {
				db.ResetCounter()
				res, err := SQDBSky(db, Options{})
				if err != nil {
					b.Fatal(err)
				}
				queries = res.Queries
			}
			b.ReportMetric(float64(queries), "queries")
		})
	}
}

// Interface power (the paper's central comparison): identical data behind
// progressively weaker interfaces.
func BenchmarkAblationInterfacePower(b *testing.B) {
	d := Flights(1, 20000).Project(7, 9, 11) // three small-domain group attrs
	for _, tc := range []struct {
		name string
		cap  Capability
	}{
		{"rq", RQ},
		{"sq", SQ},
		{"pq", PQ},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := d.WithCaps(tc.cap).DB(10, SumRank{})
			b.ResetTimer()
			var queries int
			for i := 0; i < b.N; i++ {
				db.ResetCounter()
				res, err := Discover(db, Options{})
				if err != nil {
					b.Fatal(err)
				}
				queries = res.Queries
			}
			b.ReportMetric(float64(queries), "queries")
		})
	}
}
