// Quickstart: discover the complete skyline of a hidden web database you
// can only reach through a top-k search interface.
//
// We build a small product catalog (price, delivery days, weight — lower is
// better on all three), put it behind a simulated top-5 interface with
// two-ended range predicates and a proprietary price-first ranking, and let
// RQ-DB-SKY retrieve every Pareto-optimal product while counting the
// queries it needed — the metric that matters when a website rate-limits
// you.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hiddensky"
)

func main() {
	// A third-party's view of some shop's inventory: we do NOT get this
	// table; it lives behind the search form. It's declared here only to
	// build the simulator.
	catalog := [][]int{
		// price, deliveryDays, weightGrams
		{899, 2, 1200},
		{749, 5, 1100},
		{999, 1, 1250},
		{649, 7, 1500},
		{1099, 1, 900},
		{699, 4, 1400},
		{849, 3, 1000},
		{799, 6, 950},
		{1199, 2, 800},
		{599, 9, 1600},
	}

	db, err := hiddensky.New(hiddensky.Config{
		Data: catalog,
		Caps: []hiddensky.Capability{hiddensky.RQ, hiddensky.RQ, hiddensky.RQ},
		K:    5,                           // the site shows at most 5 results
		Rank: hiddensky.AttrRank{Attr: 0}, // and sorts them by price
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := hiddensky.Discover(db, hiddensky.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("discovered %d skyline products with %d search queries:\n\n",
		len(res.Skyline), res.Queries)
	fmt.Println("price  delivery  weight")
	for _, t := range res.Skyline {
		fmt.Printf("%5d  %8d  %6d\n", t[0], t[1], t[2])
	}

	// Every returned tuple is Pareto-optimal: no product is cheaper AND
	// faster AND lighter. Verify against the local ground truth.
	want := hiddensky.ComputeSkylineTuples(catalog)
	fmt.Printf("\nground truth agrees: %v (%d tuples)\n",
		len(want) == len(res.Skyline), len(want))
}
