// Stores: the paper's full motivating scenario (§1) end to end. Three
// diamond retailers each hide their catalog behind a top-k search form
// with its own proprietary ranking — one ranks by price, one by a secret
// weighting, one lexicographically by quality grades. A meta-search
// service discovers each store's skyline through its public interface,
// merges them into one global Pareto frontier, and then serves shoppers
// with arbitrary personal ranking functions without issuing another web
// query.
//
// Run with: go run ./examples/stores
package main

import (
	"fmt"
	"log"

	"hiddensky"
)

func main() {
	// Three independent retailers (different inventories, k limits and
	// ranking functions — all unknown to the meta-search service).
	mk := func(name string, seed int64, n, k int, rank hiddensky.Ranking) hiddensky.FederatedStore {
		d := hiddensky.BlueNile(seed, n)
		return hiddensky.FederatedStore{Name: name, DB: d.DB(k, rank)}
	}
	stores := []hiddensky.FederatedStore{
		mk("sparkle.example", 11, 30000, 50, hiddensky.AttrRank{Attr: 0}),
		mk("gemhut.example", 22, 18000, 25, hiddensky.RandomWeightRank{Seed: 99}),
		mk("stonesroyale.example", 33, 24000, 40, hiddensky.LexRank{Priority: []int{2, 3, 4, 0, 1}}),
	}

	res, err := hiddensky.FederatedDiscover(stores, hiddensky.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-store discovery:")
	for _, st := range res.PerStore {
		fmt.Printf("  %-22s %5d skyline diamonds in %5d queries\n", st.Store, st.Skyline, st.Queries)
	}
	fmt.Printf("global frontier: %d offers across %d stores (%d web queries total)\n\n",
		len(res.Frontier), len(stores), res.Queries)

	// Serve shoppers with their own ranking functions — locally.
	shoppers := []struct {
		name    string
		weights []float64
	}{
		{"price-first", []float64{1, 0.01, 1, 1, 1}},
		{"carat-first", []float64{0.001, 1, 0.2, 0.2, 0.2}},
		{"balanced", []float64{0.002, 0.6, 40, 30, 30}},
	}
	for _, sh := range shoppers {
		score, err := hiddensky.WeightedScorer(sh.weights)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("best offers for %q:\n", sh.name)
		for _, o := range res.Rank(score, 3) {
			t := o.Tuple
			fmt.Printf("  %-22s $%-8d %.2fct cut=%d color=%d clarity=%d\n",
				o.Store, t[0], float64(509-t[1])/100, t[2], t[3], t[4])
		}
	}
	fmt.Println("\n(every shopper served from the one-time frontier — zero extra queries)")
}
