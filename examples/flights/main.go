// Flights: skyline discovery under a hard query budget. Google Flights'
// QPX API allowed 50 free queries per day; the paper shows its algorithms
// find every skyline itinerary within that limit. This example runs the
// mixed-interface algorithm (SQ on Stops/Price/ConnectionDuration, RQ on
// DepartureTime) against simulated route databases with a 50-query rate
// limit and demonstrates the anytime property: even when the budget stops
// a run, every tuple already returned is a genuine skyline flight.
//
// Run with: go run ./examples/flights
package main

import (
	"errors"
	"fmt"
	"log"

	"hiddensky"
)

func main() {
	const dailyBudget = 50

	routes := []struct {
		name string
		seed int64
	}{
		{"JFK -> SFO  2026-06-19", 100},
		{"ORD -> LAX  2026-06-20", 117},
		{"BOS -> SEA  2026-06-21", 303},
		{"LGA -> MIA  2026-06-22", 104},
	}
	for _, route := range routes {
		d := hiddensky.GoogleFlightsRoute(route.seed)
		db, err := hiddensky.New(hiddensky.Config{
			Data:       d.Data,
			Caps:       d.Caps(),
			K:          20,                          // one QPX page of itineraries
			Rank:       hiddensky.AttrRank{Attr: 1}, // price low-to-high
			QueryLimit: dailyBudget,                 // per-API-key daily limit
			Filters:    d.Filters,
		})
		if err != nil {
			log.Fatal(err)
		}

		// QPX responses carry result counts, so the client can trust the
		// overflow indicator instead of re-confirming full pages.
		res, err := hiddensky.Discover(db, hiddensky.Options{Trace: true, UseOverflowFlag: true})
		switch {
		case err == nil:
			fmt.Printf("%s: all %d skyline flights in %d queries (budget %d)\n",
				route.name, len(res.Skyline), res.Queries, dailyBudget)
		case errors.Is(err, hiddensky.ErrBudget):
			fmt.Printf("%s: budget hit after %d queries — %d skyline flights so far (anytime result)\n",
				route.name, res.Queries, len(res.Skyline))
		default:
			log.Fatal(err)
		}

		for _, t := range res.Skyline {
			dep := (23*60 + 59) - t[3]
			fmt.Printf("    $%-4d stops=%d connection=%dmin departs=%02d:%02d\n",
				t[1], t[0], t[2], dep/60, dep%60)
		}
	}
}
