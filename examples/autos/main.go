// Autos: K-skyband discovery for top-k answering. A used-car meta-search
// wants to answer "show me the 3 best cars" for any monotonic user-defined
// scoring of price, mileage and year. The top-3 of every such scoring lies
// inside the 3-skyband (tuples dominated by at most 2 others), so the
// service discovers the 3-skyband once through the site's top-k interface
// and answers all future queries locally.
//
// Run with: go run ./examples/autos
package main

import (
	"fmt"
	"log"
	"sort"

	"hiddensky"
)

func main() {
	d := hiddensky.YahooAutos(7, 4000)
	db := d.DB(25, hiddensky.AttrRank{Attr: 0}) // site ranks by price

	const K = 3
	band, err := hiddensky.Run(db, hiddensky.Request{Band: K}, hiddensky.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inventory: %d cars; %d-skyband: %d cars in %d queries\n\n",
		db.Size(), band.Band, len(band.Skyline), band.Queries)

	// Answer three different "top 3" requests locally.
	type car struct {
		t         []int
		dominated int
	}
	inventory := make([]car, len(band.Skyline))
	for i, t := range band.Skyline {
		inventory[i] = car{t: t, dominated: band.BandCounts[i]}
	}
	score := func(w []float64) func(t []int) float64 {
		return func(t []int) float64 {
			return w[0]*float64(t[0]) + w[1]*float64(t[1]) + w[2]*float64(t[2])
		}
	}
	asks := []struct {
		name string
		fn   func(t []int) float64
	}{
		{"cheapest overall", score([]float64{1, 0.001, 1})},
		{"low mileage", score([]float64{0.01, 1, 10})},
		{"newest", score([]float64{0.001, 0.0001, 1000})},
	}
	for _, ask := range asks {
		cars := append([]car(nil), inventory...)
		sort.SliceStable(cars, func(a, b int) bool { return ask.fn(cars[a].t) < ask.fn(cars[b].t) })
		fmt.Printf("top 3 by %q:\n", ask.name)
		for i := 0; i < 3 && i < len(cars); i++ {
			t := cars[i].t
			fmt.Printf("    $%-6d %6d miles, %d years old (dominated by %d)\n",
				t[0], t[1], t[2], cars[i].dominated)
		}
	}
	fmt.Println("\n(all answered from the one-time skyband, zero extra web queries)")
}
