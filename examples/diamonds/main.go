// Diamonds: the paper's motivating third-party application. A meta-search
// service wants to rank another site's diamonds with ITS OWN weighting of
// price, carat, cut, color and clarity — but the store only exposes a
// top-50 search form ranked by price. Discovering the skyline first makes
// this possible: the top-1 under ANY monotonic ranking function is always
// a skyline tuple, so the service only needs the skyline, not the whole
// 200k-row catalog.
//
// Run with: go run ./examples/diamonds
package main

import (
	"fmt"
	"log"
	"sort"

	"hiddensky"
)

func main() {
	// Simulated Blue Nile-style store: 60k diamonds behind a top-50,
	// price-ranked, two-ended-range interface.
	store := hiddensky.BlueNile(2024, 60000)
	db := store.DB(50, hiddensky.AttrRank{Attr: 0})

	res, err := hiddensky.Discover(db, hiddensky.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store size: %d diamonds\n", db.Size())
	fmt.Printf("skyline: %d diamonds, found with %d queries (%.1f per tuple)\n\n",
		len(res.Skyline), res.Queries, float64(res.Queries)/float64(len(res.Skyline)))

	// Now serve three customers with very different tastes WITHOUT issuing
	// another query: rank the skyline locally. Weights apply to the
	// integer-coded attributes where smaller is always better.
	customers := []struct {
		name    string
		weights []float64
	}{
		{"bargain hunter (price above all)", []float64{1, 0.001, 0.01, 0.01, 0.01}},
		{"size matters (carat first)", []float64{0.0005, 1, 0.05, 0.05, 0.05}},
		{"connoisseur (cut/color/clarity)", []float64{0.0002, 0.01, 1, 1, 1}},
	}
	for _, cst := range customers {
		best := top3(res.Skyline, cst.weights)
		fmt.Printf("%s:\n", cst.name)
		for _, t := range best {
			fmt.Printf("  $%-8d %.2fct  cut=%d color=%d clarity=%d\n",
				t[0], float64(509-t[1])/100, t[2], t[3], t[4])
		}
	}

	// The skyline answers any such query exactly: the global optimum of a
	// monotonic score always sits on the skyline.
	fmt.Println("\n(no additional web queries were needed for any customer)")
}

// top3 returns the three best skyline tuples under a positive weighting.
func top3(sky [][]int, w []float64) [][]int {
	ranked := append([][]int(nil), sky...)
	score := func(t []int) float64 {
		s := 0.0
		for i, v := range t {
			s += w[i] * float64(v)
		}
		return s
	}
	sort.SliceStable(ranked, func(a, b int) bool { return score(ranked[a]) < score(ranked[b]) })
	if len(ranked) > 3 {
		ranked = ranked[:3]
	}
	return ranked
}
