// Command skytop is a live terminal ops console for the hiddensky
// daemons. It polls one or more skylined / skyserve endpoints over
// their public telemetry surface — GET /v1/history for the sampled
// time series, GET /healthz for the health rollup, GET /v1/stats for
// cache counters, GET /v1/jobs for the running-jobs table — and
// renders a refreshing dashboard: sparkline QPS and p99, cache hit
// ratio, goroutine/heap pressure and per-job progress. Nothing here
// has privileged access; everything skytop shows, curl shows too.
//
// Usage:
//
//	skytop -url http://127.0.0.1:8090 -url http://127.0.0.1:8080
//	skytop -url http://127.0.0.1:8090 -once        # one snapshot, no ANSI
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hiddensky/internal/obs"
)

// sparkWidth bounds the trailing samples a sparkline shows.
const sparkWidth = 32

// urlFlags collects repeated -url flags.
type urlFlags []string

func (u *urlFlags) String() string { return strings.Join(*u, ",") }

func (u *urlFlags) Set(v string) error {
	*u = append(*u, strings.TrimRight(v, "/"))
	return nil
}

func main() {
	var urls urlFlags
	flag.Var(&urls, "url", "daemon base URL (repeatable; default http://127.0.0.1:8090)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval in live mode")
	once := flag.Bool("once", false, "print one plain-text snapshot and exit (no ANSI, scriptable)")
	last := flag.Int("last", 120, "history samples to fetch per refresh")
	flag.Parse()
	if len(urls) == 0 {
		urls = urlFlags{"http://127.0.0.1:8090"}
	}

	client := &http.Client{Timeout: 5 * time.Second}
	if *once {
		failed := 0
		for _, u := range urls {
			v := fetch(client, u, *last)
			render(os.Stdout, v)
			if v.err != nil {
				failed++
			}
		}
		if failed == len(urls) {
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		var b strings.Builder
		fmt.Fprintf(&b, "skytop  %s  %d target(s), %s refresh — Ctrl-C to quit\n\n",
			time.Now().Format("15:04:05"), len(urls), interval)
		for _, u := range urls {
			render(&b, fetch(client, u, *last))
		}
		// Home + clear-to-end, not clear-screen: no flicker on redraw.
		fmt.Print("\x1b[H\x1b[2J" + b.String())
		select {
		case <-ctx.Done():
			fmt.Println("skytop: bye")
			return
		case <-t.C:
		}
	}
}

// view is everything one refresh learned about one daemon.
type view struct {
	url     string
	err     error // history fetch failed: daemon down or too old
	history obs.HistorySnapshot
	health  obs.HealthReport
	stats   *statsDoc
	jobs    []jobRow
	hasJobs bool // /v1/jobs exists (skylined); skyserve 404s
}

// statsDoc is the slice of skylined's GET /v1/stats this console uses.
// skyserve answers a bare metrics array there; cache/health stay nil.
type statsDoc struct {
	Health struct {
		Jobs    int `json:"jobs"`
		Running int `json:"running"`
		Queued  int `json:"queued"`
	} `json:"health"`
	Cache *struct {
		Lookups    int     `json:"lookups"`
		Hits       int     `json:"hits"`
		DedupRatio float64 `json:"dedup_ratio"`
		Entries    int     `json:"entries"`
	} `json:"cache"`
}

// jobRow is the slice of a JobStatus the table shows.
type jobRow struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Phase   string `json:"phase"`
	Queries int    `json:"queries"`
	Skyline int    `json:"skyline"`
	Spec    struct {
		Store string `json:"store"`
		Algo  string `json:"algo"`
	} `json:"spec"`
}

func fetch(c *http.Client, url string, last int) view {
	v := view{url: url}
	v.err = getJSON(c, fmt.Sprintf("%s/v1/history?last=%d", url, last), &v.history)
	if v.err != nil {
		return v
	}
	_ = getJSON(c, url+"/healthz", &v.health)
	var raw json.RawMessage
	if getJSON(c, url+"/v1/stats", &raw) == nil && len(raw) > 0 && raw[0] == '{' {
		v.stats = &statsDoc{}
		_ = json.Unmarshal(raw, v.stats)
	}
	var jobs struct {
		Jobs []jobRow `json:"jobs"`
	}
	if getJSON(c, url+"/v1/jobs", &jobs) == nil {
		v.hasJobs = true
		v.jobs = jobs.Jobs
	}
	return v
}

func getJSON(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// render writes one daemon's panel.
func render(w io.Writer, v view) {
	if v.err != nil {
		fmt.Fprintf(w, "%s  UNREACHABLE: %v\n\n", v.url, v.err)
		return
	}
	state := string(v.health.State)
	if state == "" {
		state = "unknown"
	}
	fmt.Fprintf(w, "%s  [%s]  %s", v.url, kindOf(v), state)
	if v.health.Reason != "" {
		fmt.Fprintf(w, " (%s)", v.health.Reason)
	}
	for _, c := range v.health.Checks {
		if c.Breached {
			fmt.Fprintf(w, "  !%s=%.1f/s>%.1f", c.Name, c.RatePerSec, c.Threshold)
		}
	}
	fmt.Fprintln(w)

	h := v.history
	if qpsName, qps := qpsSeries(h); qpsName != "" {
		fmt.Fprintf(w, "  qps   %s  %6.1f/s (1m)  %s\n", spark(qps), sumRate1m(h, qpsName), qpsName)
	}
	if vecs := batchSeries(h); vecs != nil {
		fmt.Fprintf(w, "  batch %s  %6.1f/s (1m)  answer vectors (%.1f sweeps/s)\n",
			spark(vecs), sumRate1m(h, "answer_batch_vectors_total"), sumRate1m(h, "answer_batch_sweeps_total"))
	}
	if p99Name, p99 := p99Series(h); p99Name != "" {
		fmt.Fprintf(w, "  p99   %s  %8s       %s\n", spark(p99), fmtMicros(lastVal(p99)), p99Name)
	}
	fmt.Fprintf(w, "  go    goroutines=%.0f  heap=%s  gc_pause_p99=%s\n",
		lastOf(h, "go_goroutines"), fmtBytes(lastOf(h, "go_heap_live_bytes")), fmtMicros(lastOf(h, "go_gc_pause_p99_us")))
	if s := v.stats; s != nil {
		if s.Cache != nil && s.Cache.Lookups > 0 {
			fmt.Fprintf(w, "  cache hit=%.1f%%  dedup=%.1f%%  entries=%d\n",
				100*float64(s.Cache.Hits)/float64(s.Cache.Lookups), 100*s.Cache.DedupRatio, s.Cache.Entries)
		}
		fmt.Fprintf(w, "  jobs  total=%d running=%d queued=%d\n", s.Health.Jobs, s.Health.Running, s.Health.Queued)
	}
	if v.hasJobs && len(v.jobs) > 0 {
		fmt.Fprintf(w, "  %-10s %-10s %-10s %-10s %-8s %8s %8s\n", "JOB", "STATE", "PHASE", "STORE", "ALGO", "QUERIES", "SKYLINE")
		rows := v.jobs
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
		for _, j := range rows {
			fmt.Fprintf(w, "  %-10s %-10s %-10s %-10s %-8s %8d %8d\n",
				j.ID, j.State, j.Phase, j.Spec.Store, j.Spec.Algo, j.Queries, j.Skyline)
		}
	}
	fmt.Fprintln(w)
}

// kindOf guesses the daemon flavor from its API surface.
func kindOf(v view) string {
	if v.hasJobs {
		return "skylined"
	}
	return "skyserve"
}

// family strips the label set from a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// qpsSeries picks the panel's primary request counter and turns its
// cumulative ring into per-second rates, summed across the family's
// labeled series (skyserve has no upstream counters, skylined has no
// search counters — the preference order lands on whichever exists).
func qpsSeries(h obs.HistorySnapshot) (string, []float64) {
	for _, want := range []string{"search_requests_total", "upstream_queries_total", "jobs_submitted_total"} {
		var sum []float64
		for _, s := range h.Series {
			if family(s.Name) != want || len(s.Values) == 0 {
				continue
			}
			if sum == nil {
				sum = make([]float64, len(s.Values))
			}
			for i := range s.Values {
				if i < len(sum) {
					sum[i] += s.Values[i]
				}
			}
		}
		if sum != nil {
			return want, deltas(sum, h.IntervalSeconds)
		}
	}
	return "", nil
}

// batchSeries returns the answer batch-vector counter's per-second
// rates once the daemon has scored any batched vectors; idle panels
// (and daemons without an answer path) skip the line entirely.
func batchSeries(h obs.HistorySnapshot) []float64 {
	var sum []float64
	for _, s := range h.Series {
		if family(s.Name) != "answer_batch_vectors_total" || len(s.Values) == 0 {
			continue
		}
		if sum == nil {
			sum = make([]float64, len(s.Values))
		}
		for i := range s.Values {
			if i < len(sum) {
				sum[i] += s.Values[i]
			}
		}
	}
	if sum == nil || sum[len(sum)-1] <= 0 {
		return nil
	}
	return deltas(sum, h.IntervalSeconds)
}

// p99Series picks a latency histogram and returns its p99 ring
// (element-wise max across a labeled family).
func p99Series(h obs.HistorySnapshot) (string, []float64) {
	prefer := []string{"search_seconds", "upstream_query_seconds", "job_seconds"}
	pick := func(match func(string) bool) (string, []float64) {
		var name string
		var out []float64
		for _, s := range h.Series {
			if !match(family(s.Name)) || len(s.P99) == 0 {
				continue
			}
			name = family(s.Name)
			if out == nil {
				out = make([]float64, len(s.P99))
			}
			for i := range s.P99 {
				if i < len(out) && s.P99[i] > out[i] {
					out[i] = s.P99[i]
				}
			}
		}
		return name, out
	}
	for _, want := range prefer {
		if name, out := pick(func(f string) bool { return f == want }); out != nil {
			return name, out
		}
	}
	// Fall back to any histogram that is not the runtime's own.
	return pick(func(f string) bool { return !strings.HasPrefix(f, "go_") })
}

// deltas converts a cumulative ring to per-second rates. Negative
// deltas (counter reset) clamp to zero; the first slot has no
// predecessor and reports zero.
func deltas(vals []float64, intervalSec float64) []float64 {
	if intervalSec <= 0 {
		intervalSec = 1
	}
	out := make([]float64, len(vals))
	for i := 1; i < len(vals); i++ {
		if d := vals[i] - vals[i-1]; d > 0 {
			out[i] = d / intervalSec
		}
	}
	return out
}

// sumRate1m sums the server-computed 1m windowed rate across a family.
func sumRate1m(h obs.HistorySnapshot, fam string) float64 {
	var sum float64
	for _, s := range h.Series {
		if family(s.Name) == fam {
			sum += s.Rate1m
		}
	}
	return sum
}

// lastOf returns a series' most recent sample (zero when absent).
func lastOf(h obs.HistorySnapshot, name string) float64 {
	for _, s := range h.Series {
		if s.Name == name {
			return lastVal(s.Values)
		}
	}
	return 0
}

func lastVal(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)-1]
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders the trailing samples as a fixed-width sparkline scaled
// to the window's own max (an all-zero window is a flat baseline).
func spark(vals []float64) string {
	if len(vals) > sparkWidth {
		vals = vals[len(vals)-sparkWidth:]
	}
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i := len(vals); i < sparkWidth; i++ {
		b.WriteByte(' ') // right-align a short history
	}
	for _, v := range vals {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx < 1 {
				idx = 1 // nonzero never renders as the zero glyph
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

func fmtMicros(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.1fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fus", us)
	}
}
