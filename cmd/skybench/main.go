// Command skybench regenerates the paper's evaluation figures.
//
// Usage:
//
//	skybench [-quick] [-seed N] [-csv DIR] [fig13 fig14 ...]
//
// With no figure arguments every figure is regenerated in order. Each
// figure prints as an aligned table of the series the paper plots; -csv
// additionally writes one CSV per figure into DIR.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hiddensky/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	seed := flag.Int64("seed", 1, "generator seed")
	csvDir := flag.String("csv", "", "also write per-figure CSVs into this directory")
	list := flag.Bool("list", false, "list available figures and exit")
	parallel := flag.Int("parallel", 0, "worker cap for the engine figure's parallelism sweep (0 = 8)")
	cacheSize := flag.Int("cache", 0, "entry bound of the engine figure's query cache (0 = default)")
	flag.Parse()

	if *list {
		for _, r := range bench.All() {
			fmt.Printf("%-6s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Parallelism: *parallel, CacheEntries: *cacheSize}
	runners := bench.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, a := range args {
			r, ok := bench.ByID(a)
			if !ok {
				fmt.Fprintf(os.Stderr, "skybench: unknown figure %q (try -list)\n", a)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
	}

	exit := 0
	for _, r := range runners {
		start := time.Now()
		fig, err := r.Run(cfg)
		elapsed := time.Since(start).Round(time.Millisecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %s failed after %v: %v\n", r.ID, elapsed, err)
			exit = 1
			continue
		}
		fmt.Print(fig.String())
		fmt.Printf("(%s regenerated in %v)\n\n", fig.ID, elapsed)
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, fig.ID+".csv"))
			if err == nil {
				err = fig.WriteCSV(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "skybench: writing %s.csv: %v\n", fig.ID, err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
