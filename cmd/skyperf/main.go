// Command skyperf measures the serving read stack under load and emits
// the repository's benchmark trajectory file (BENCH_*.json).
//
// It drives three hot paths with the internal/perf closed-loop harness,
// each in its "before" (retained reference / single lock domain) and
// "after" (arena-columnar / sharded) form on the same data and machine:
//
//   - answer.Store top-k: the seed's row-major allocating implementation
//     (Store.ReferenceTopK) vs. the arena/columnar zero-allocation path
//     (Store.TopKAppend), unfiltered and range-filtered;
//   - qcache lookups: a warmed cache hammered by concurrent readers with
//     one shard (the old single-global-mutex design) vs. the default
//     sharded layout;
//   - the HTTP search wire: /v1/meta (pre-encoded static body) and
//     /v1/search (pooled response encoding) served through the real
//     handler stack;
//   - batch top-k: Store.TopKBatchInto scoring B weight vectors per
//     fused column sweep (B = 1, 16, 256) against the single-vector
//     arena path, with a derived per-vector view gated relative to it;
//   - recovery: rebuilding the answer index from the JSON job snapshot
//     (unmarshal + Build) vs. loading the binary columnar snapshot
//     (answer.LoadBinary), the cold-start choice Recover makes.
//
// Usage:
//
//	skyperf [-quick] [-out BENCH_PR9.json] [-label text] [-n N] [-conc C]
//
// scripts/bench.sh wraps it to regenerate the committed BENCH_PR9.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"hiddensky/internal/answer"
	"hiddensky/internal/chaos"
	"hiddensky/internal/hidden"
	"hiddensky/internal/perf"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
	"hiddensky/internal/skyline"
	"hiddensky/internal/web"
)

func main() {
	out := flag.String("out", "", "write the JSON report here (default: stdout only)")
	label := flag.String("label", "PR9 batch scoring and binary snapshots", "report label")
	quick := flag.Bool("quick", false, "reduced scale (CI smoke)")
	n := flag.Int("n", 20000, "dataset size for the answer-store scenarios")
	conc := flag.Int("conc", 8, "concurrency of the parallel scenarios")
	seed := flag.Int64("seed", 1, "generator seed")
	check := flag.String("check", "", "gate mode: evaluate this BENCH_*.json against -slo and exit (no scenarios run)")
	slo := flag.String("slo", "scripts/slo.json", "SLO spec for -check")
	flag.Parse()

	if *check != "" {
		os.Exit(gate(*check, *slo))
	}

	scale := 1
	if *quick {
		scale = 10
		if *n > 5000 {
			*n = 5000
		}
	}

	// A serving measurement needs at least -conc schedulable threads:
	// on a 1-CPU CI container GOMAXPROCS defaults to 1 and every lock
	// looks uncontended (goroutines take turns instead of colliding).
	// Production servers run with GOMAXPROCS >= the request concurrency,
	// so that is the shape we measure; the report records the setting.
	if gmp := runtime.GOMAXPROCS(0); gmp < *conc {
		runtime.GOMAXPROCS(*conc)
	}

	r := perf.NewReport(*label)
	fmt.Fprintf(os.Stderr, "skyperf: %s, %s/%s, %d CPUs\n", r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)

	s, band, ws := answerScenarios(r, *n, *conc, scale, *seed)
	batchScenarios(r, s, ws, scale)
	recoverScenarios(r, s, band, scale)
	cacheScenarios(r, *conc, scale, *seed)
	webScenarios(r, *conc, scale, *seed)
	chaosScenarios(r, *conc, scale, *seed)

	note := func(format string, args ...any) {
		s := fmt.Sprintf(format, args...)
		r.Notes = append(r.Notes, s)
		fmt.Fprintln(os.Stderr, "note: "+s)
	}
	if ref, ok := r.Find("answer_topk_unfiltered_reference_c1"); ok {
		if arena, ok := r.Find("answer_topk_unfiltered_arena_c1"); ok {
			ratio := ref.AllocsPerOp
			if arena.AllocsPerOp > 0 {
				ratio = ref.AllocsPerOp / arena.AllocsPerOp
			}
			note("unfiltered TopK allocs/op: reference %.2f -> arena %.2f (%.0fx fewer; arena path is allocation-free at steady state)",
				ref.AllocsPerOp, arena.AllocsPerOp, ratio)
		}
	}
	if ref, ok := r.Find(fmt.Sprintf("answer_topk_unfiltered_reference_c%d", *conc)); ok {
		if arena, ok := r.Find(fmt.Sprintf("answer_topk_unfiltered_arena_c%d", *conc)); ok {
			note("unfiltered TopK at c=%d: %.0f -> %.0f qps (%.2fx), p99 %.1fus -> %.1fus",
				*conc, ref.QPS, arena.QPS, arena.QPS/ref.QPS, ref.P99Micros, arena.P99Micros)
		}
	}
	if ref, ok := r.Find(fmt.Sprintf("qcache_lookup_reference_c%d", *conc)); ok {
		if sh, ok := r.Find(fmt.Sprintf("qcache_lookup_sharded_c%d", *conc)); ok {
			note("qcache parallel lookups at c=%d: %.0f -> %.0f qps (%.2fx) from the seed single-mutex cache to %d shards with binary keys and copy-outside-lock",
				*conc, ref.QPS, sh.QPS, sh.QPS/ref.QPS, qcache.DefaultShards)
		}
	}
	if single, ok := r.Find("answer_topk_unfiltered_arena_c1"); ok {
		if batch, ok := r.Find("answer_batch_topk_b16_vectors_c1"); ok {
			note("batch TopK at B=16: %.0f vectors/s vs %.0f single-vector qps (%.2fx) from the fused per-column sweep",
				batch.QPS, single.QPS, batch.QPS/single.QPS)
		}
	}
	if j, ok := r.Find("recover_json_c1"); ok {
		if b, ok := r.Find("recover_binary_c1"); ok {
			note("answer recovery p50: JSON re-index %.0fus -> binary snapshot load %.0fus (%.0fx faster cold start)",
				j.P50Micros, b.P50Micros, j.P50Micros/b.P50Micros)
		}
	}

	ri := r.CaptureRuntime()
	fmt.Fprintf(os.Stderr, "skyperf: runtime peak_heap=%.1fMB gc_cycles=%d goroutines=%d\n",
		float64(ri.PeakHeapBytes)/(1<<20), ri.GCCycles, ri.Goroutines)

	if err := r.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "skyperf: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := r.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "skyperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "skyperf: wrote %s\n", *out)
	}
}

// gate evaluates a committed report against the SLO spec and reports
// every broken bound. scripts/slo_gate.sh wraps it for CI.
func gate(benchPath, sloPath string) int {
	spec, err := perf.ReadSLOSpec(sloPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyperf: %v\n", err)
		return 1
	}
	r, err := perf.ReadReport(benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyperf: %v\n", err)
		return 1
	}
	violations := spec.Evaluate(r)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "skyperf: %s violates %d SLO bound(s) from %s:\n", benchPath, len(violations), sloPath)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  FAIL %s\n", v)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "skyperf: %s meets all %d SLOs from %s\n", benchPath, len(spec.SLOs), sloPath)
	return 0
}

// genData generates n random m-wide tuples.
func genData(rng *rand.Rand, n, m, domain int) [][]int {
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		data[i] = t
	}
	return data
}

// weightSet builds a deterministic rotation of weight vectors so the
// measured loop is not one constant request.
func weightSet(rng *rand.Rand, m int) [][]float64 {
	ws := make([][]float64, 16)
	for i := range ws {
		w := make([]float64, m)
		for a := range w {
			w[a] = rng.Float64() * 3
		}
		w[rng.Intn(m)] += 0.25
		ws[i] = w
	}
	return ws
}

// answerScenarios measures the single-vector top-k paths and hands the
// built store, band and weight rotation to the batch and recovery
// scenarios so every answer measurement shares one data shape.
func answerScenarios(r *perf.Report, n, conc, scale int, seed int64) (*answer.Store, [][]int, [][]float64) {
	const m, bandK, k = 4, 10, 10
	rng := rand.New(rand.NewSource(seed))
	data := genData(rng, n, m, 1000)
	var band [][]int
	for _, i := range skyline.Skyband(data, bandK) {
		band = append(band, data[i])
	}
	s, err := answer.Build(band, answer.Options{BandK: bandK})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyperf: build answer store: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "skyperf: answer store holds %d band tuples of %d rows\n", s.Len(), n)
	ws := weightSet(rng, m)
	filter := []answer.Range{{Attr: 0, Lo: 0, Hi: 500}}

	ops := 40000 / scale
	for _, c := range []int{1, conc} {
		c := c
		r.Add(os.Stderr, perf.Options{
			Name: fmt.Sprintf("answer_topk_unfiltered_reference_c%d", c), Concurrency: c, Ops: ops,
		}, func(w, i int) {
			if _, err := s.ReferenceTopK(answer.TopKQuery{Weights: ws[i%len(ws)], K: k}); err != nil {
				panic(err)
			}
		})
		// One retained []Ranked per worker: the arena path's contract is
		// that a caller reusing its result buffer allocates nothing.
		dst := make([][]answer.Ranked, c)
		r.Add(os.Stderr, perf.Options{
			Name: fmt.Sprintf("answer_topk_unfiltered_arena_c%d", c), Concurrency: c, Ops: ops,
		}, func(w, i int) {
			res, err := s.TopKAppend(answer.TopKQuery{Weights: ws[i%len(ws)], K: k}, dst[w][:0])
			if err != nil {
				panic(err)
			}
			if res.Items != nil {
				dst[w] = res.Items
			}
		})
	}

	fops := 20000 / scale
	r.Add(os.Stderr, perf.Options{
		Name: "answer_topk_filtered_reference_c1", Concurrency: 1, Ops: fops,
	}, func(w, i int) {
		if _, err := s.ReferenceTopK(answer.TopKQuery{Weights: ws[i%len(ws)], K: k, Filter: filter}); err != nil {
			panic(err)
		}
	})
	var fdst []answer.Ranked
	r.Add(os.Stderr, perf.Options{
		Name: "answer_topk_filtered_arena_c1", Concurrency: 1, Ops: fops,
	}, func(w, i int) {
		res, err := s.TopKAppend(answer.TopKQuery{Weights: ws[i%len(ws)], K: k, Filter: filter}, fdst[:0])
		if err != nil {
			panic(err)
		}
		if res.Items != nil {
			fdst = res.Items
		}
	})
	return s, band, ws
}

// batchScenarios measures TopKBatchInto at increasing batch widths. One
// op is one fused sweep over all B vectors, so the raw sweep scenarios
// report sweeps/sec; the derived *_vectors result restates the B=16
// sweep per vector (QPS x16, latency and allocs /16) — that is the
// number comparable to, and SLO-gated against, the single-vector path.
func batchScenarios(r *perf.Report, s *answer.Store, ws [][]float64, scale int) {
	const k = 10
	for _, b := range []int{1, 16, 256} {
		qs := make([]answer.TopKQuery, b)
		for i := range qs {
			qs[i] = answer.TopKQuery{Weights: ws[i%len(ws)], K: k}
		}
		var out []answer.TopKResult
		sweeps := 40000 / scale / b
		if sweeps < 400 {
			sweeps = 400
		}
		res := r.Add(os.Stderr, perf.Options{
			Name: fmt.Sprintf("answer_batch_sweep_b%d_c1", b), Concurrency: 1, Ops: sweeps,
		}, func(w, i int) {
			var err error
			out, err = s.TopKBatchInto(qs, out[:0])
			if err != nil {
				panic(err)
			}
		})
		if b == 16 {
			derived := res
			derived.Name = "answer_batch_topk_b16_vectors_c1"
			derived.Ops = res.Ops * b
			derived.QPS = res.QPS * float64(b)
			derived.P50Micros = res.P50Micros / float64(b)
			derived.P99Micros = res.P99Micros / float64(b)
			derived.AllocsPerOp = res.AllocsPerOp / float64(b)
			derived.BytesPerOp = res.BytesPerOp / float64(b)
			derived.Latency = nil
			r.Results = append(r.Results, derived)
		}
	}
}

// recoverScenarios measures the two cold-start paths service.Recover
// chooses between: re-indexing from the JSON job snapshot (unmarshal
// the tuples, answer.Build) vs. loading the binary columnar snapshot
// (one checksum pass, then the bytes are the arena). Op counts differ
// because Build is milliseconds and LoadBinary is microseconds; the
// SLO gate compares their p50s, which op count does not move.
func recoverScenarios(r *perf.Report, s *answer.Store, band [][]int, scale int) {
	const bandK = 10
	jsonSnap, err := json.Marshal(band)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyperf: marshal band: %v\n", err)
		os.Exit(1)
	}
	binSnap := s.AppendBinary(nil)
	fmt.Fprintf(os.Stderr, "skyperf: recovery snapshots: json %d bytes, binary %d bytes\n", len(jsonSnap), len(binSnap))

	jops := 200 / scale
	if jops < 20 {
		jops = 20
	}
	r.Add(os.Stderr, perf.Options{
		Name: "recover_json_c1", Concurrency: 1, Ops: jops,
	}, func(w, i int) {
		var tuples [][]int
		if err := json.Unmarshal(jsonSnap, &tuples); err != nil {
			panic(err)
		}
		if _, err := answer.Build(tuples, answer.Options{BandK: bandK}); err != nil {
			panic(err)
		}
	})
	r.Add(os.Stderr, perf.Options{
		Name: "recover_binary_c1", Concurrency: 1, Ops: 20000 / scale,
	}, func(w, i int) {
		if _, err := answer.LoadBinary(binSnap); err != nil {
			panic(err)
		}
	})
}

func cacheScenarios(r *perf.Report, conc, scale int, seed int64) {
	const m = 3
	rng := rand.New(rand.NewSource(seed + 1))
	// Domain 1000 keeps all 512 query boxes distinct after domain
	// clamping (the misses==len(qs) check below depends on it).
	data := genData(rng, 2000, m, 1000)
	caps := make([]hidden.Capability, m)
	for i := range caps {
		caps[i] = hidden.RQ
	}
	db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: 10})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyperf: build hidden db: %v\n", err)
		os.Exit(1)
	}
	// A fixed universe of distinct canonical boxes, all resident after
	// warmup: the measured window is pure hit traffic, which is exactly
	// where lock contention (not backend latency) is the bottleneck.
	qs := make([]query.Q, 512)
	for i := range qs {
		qs[i] = query.Q{
			{Attr: i % m, Op: query.LE, Value: 5 + i/m},
			{Attr: (i + 1) % m, Op: query.GE, Value: i % 7},
		}
	}
	ops := 400000 / scale

	// queryable abstracts the three measured cache builds: the retained
	// seed reference (one global mutex, strconv keys, copy-under-lock),
	// the new code pinned to one shard (isolating the shard win from the
	// key/copy wins), and the default sharded layout.
	type queryable interface {
		Query(q query.Q) (hidden.Result, error)
	}
	for _, cfg := range []struct {
		name  string
		build func() (queryable, func() qcache.Stats)
	}{
		{fmt.Sprintf("qcache_lookup_reference_c%d", conc), func() (queryable, func() qcache.Stats) {
			c := qcache.NewRef(qcache.Config{MaxEntries: 1 << 16})
			return c.Wrap(db), c.Stats
		}},
		{fmt.Sprintf("qcache_lookup_1shard_c%d", conc), func() (queryable, func() qcache.Stats) {
			c := qcache.New(qcache.Config{MaxEntries: 1 << 16, Shards: 1})
			return c.Wrap(db), c.Stats
		}},
		{fmt.Sprintf("qcache_lookup_sharded_c%d", conc), func() (queryable, func() qcache.Stats) {
			c := qcache.New(qcache.Config{MaxEntries: 1 << 16, Shards: qcache.DefaultShards})
			return c.Wrap(db), c.Stats
		}},
	} {
		v, stats := cfg.build()
		for _, q := range qs {
			if _, err := v.Query(q); err != nil {
				fmt.Fprintf(os.Stderr, "skyperf: warm cache: %v\n", err)
				os.Exit(1)
			}
		}
		r.Add(os.Stderr, perf.Options{Name: cfg.name, Concurrency: conc, Ops: ops}, func(w, i int) {
			if _, err := v.Query(qs[(w*131+i)%len(qs)]); err != nil {
				panic(err)
			}
		})
		if st := stats(); st.Misses != len(qs) {
			fmt.Fprintf(os.Stderr, "skyperf: %s: %d misses for %d distinct boxes — measured window was not pure hits\n",
				cfg.name, st.Misses, len(qs))
			os.Exit(1)
		}
	}
}

// chaosScenarios measures p99 under injected faults: the same query
// traffic served clean and through the chaos layer behind the hardened
// retry wrapper, one scenario per recoverable preset. Each op is one
// logical query — injected 429s, 5xx and resets are absorbed inside the
// op, so the latency distribution prices the retries the profile forces.
// The retry policy uses microsecond backoff (the schedule, not the
// sleeping, is what is being measured), and the scenarios run
// single-threaded: the fault schedule is a pure function of the global
// attempt counter, so c=1 makes every run — and the worst consecutive
// fault streak — deterministic. These scenarios chart the fault overhead
// in BENCH files and are deliberately not SLO-gated.
func chaosScenarios(r *perf.Report, conc, scale int, seed int64) {
	const m = 3
	rng := rand.New(rand.NewSource(seed + 3))
	data := genData(rng, 5000, m, 100)
	caps := make([]hidden.Capability, m)
	for i := range caps {
		caps[i] = hidden.RQ
	}
	qs := make([]query.Q, 256)
	for i := range qs {
		qs[i] = query.Q{
			{Attr: i % m, Op: query.LE, Value: 10 + i/m},
			{Attr: (i + 1) % m, Op: query.GE, Value: i % 9},
		}
	}
	policy := retry.Policy{
		Attempts:      12,
		BaseBackoff:   50 * time.Microsecond,
		MaxBackoff:    500 * time.Microsecond,
		RetryAfterCap: 500 * time.Microsecond,
		NoJitter:      true,
	}
	ops := 40000 / scale
	for _, name := range []string{"off", "bursty", "flaky", "hostile"} {
		profile := chaos.Profile{Name: "off"}
		if name != "off" {
			profile = chaos.Presets()[name]
			// The preset's millisecond latency floor belongs to smoke
			// runs; here it would drown the retry overhead being charted.
			profile.Latency, profile.LatencyJitter = 0, 0
		}
		db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: 10})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyperf: build hidden db: %v\n", err)
			os.Exit(1)
		}
		in := chaos.New(profile)
		hardened := chaos.Harden(in.Wrap(db), policy, seed)
		r.Add(os.Stderr, perf.Options{
			Name: fmt.Sprintf("chaos_query_%s_c1", name), Concurrency: 1, Ops: ops,
		}, func(w, i int) {
			if _, err := hardened.Query(qs[i%len(qs)]); err != nil {
				panic(err)
			}
		})
		if name != "off" {
			var faults int64
			for _, v := range in.Counts() {
				faults += v
			}
			fmt.Fprintf(os.Stderr, "skyperf: chaos %s: %d faults absorbed over %d attempts (%d retries)\n",
				name, faults, in.Attempts(), hardened.Retries())
		}
	}
}

func webScenarios(r *perf.Report, conc, scale int, seed int64) {
	const m = 3
	rng := rand.New(rand.NewSource(seed + 2))
	data := genData(rng, 5000, m, 100)
	caps := make([]hidden.Capability, m)
	for i := range caps {
		caps[i] = hidden.RQ
	}
	db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: 10})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyperf: build hidden db: %v\n", err)
		os.Exit(1)
	}
	srv := web.NewServer(db, nil)
	body := []byte(`{"preds":[{"attr":0,"op":"<=","value":50},{"attr":1,"op":">=","value":10}]}`)

	ops := 100000 / scale
	r.Add(os.Stderr, perf.Options{
		Name: fmt.Sprintf("web_meta_c%d", conc), Concurrency: conc, Ops: ops,
	}, func(w, i int) {
		req := httptest.NewRequest(http.MethodGet, "/v1/meta", nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			panic(fmt.Sprintf("meta answered %d", rec.Code))
		}
	})
	sops := 40000 / scale
	r.Add(os.Stderr, perf.Options{
		Name: fmt.Sprintf("web_search_c%d", conc), Concurrency: conc, Ops: sops,
	}, func(w, i int) {
		req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			panic(fmt.Sprintf("search answered %d: %s", rec.Code, rec.Body.String()))
		}
	})
}
