// Command skylined is the discovery job daemon: a long-running HTTP
// service that accepts skyline-discovery jobs against named stores,
// runs them behind a max-concurrent-jobs FIFO gate, streams progress
// over polling and SSE endpoints, and checkpoints resumable jobs into a
// snapshot directory — kill the daemon mid-job and the restarted
// process resumes every in-flight job without repeating a counted
// query.
//
// Stores are named targets: a remote skyserve endpoint (http:// URL) or
// a local CSV dataset served through the in-process simulator.
//
// Usage:
//
//	skylined -addr 127.0.0.1:8090 -snapshots ./snapshots -max-jobs 4 \
//	         -store diamonds=http://127.0.0.1:8080 -store autos=autos.csv
//
// Submit and watch jobs with the HTTP API (see internal/service). A
// job spec composes algo, band, a "where" filter and resumability
// freely; combinations the store's interface cannot satisfy are
// rejected at submit with the planner's reason:
//
//	curl -XPOST localhost:8090/v1/jobs -d '{"store":"diamonds","resumable":true}'
//	curl -XPOST localhost:8090/v1/jobs -d '{"store":"diamonds","algo":"sq","where":"A0<500"}'
//	curl localhost:8090/v1/jobs/j000001
//	curl -N localhost:8090/v1/jobs/j000001/events
package main

import (
	"context"

	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/retry"
	"hiddensky/internal/service"
	"hiddensky/internal/web"
)

// storeFlags collects repeated -store name=target flags.
type storeFlags []string

func (s *storeFlags) String() string { return strings.Join(*s, ",") }

func (s *storeFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	snapshots := flag.String("snapshots", "", "snapshot directory (empty = no persistence, jobs die with the daemon)")
	maxJobs := flag.Int("max-jobs", 2, "max concurrently running jobs; further jobs queue FIFO")
	cacheSize := flag.Int("cache", 4096, "shared query-cache entries (0 = no cache, -1 = unbounded)")
	checkpointEvery := flag.Int("checkpoint-every", 8, "queries between snapshot writes for resumable jobs")
	k := flag.Int("k", 10, "top-k limit for CSV-backed stores")
	rankName := flag.String("rank", "sum", "ranking for CSV-backed stores: sum | attrN | lex | random")
	debugAddr := flag.String("debug-addr", "", "optional separate listen address for net/http/pprof (empty = profiling off)")
	spanBuffer := flag.Int("span-buffer", 0, "span ring-buffer capacity shared by all jobs (0 = default 8192; rounded up to a power of two)")
	sampleInterval := flag.Duration("sample-interval", 0, "time-series sampling interval for /v1/history and the health rollup (0 = 1s)")
	sampleRetention := flag.Int("sample-retention", 0, "samples retained per series (0 = 512; rounded up to a power of two)")
	maxFailureRate := flag.Float64("health-max-failure-rate", 0, "failed jobs/sec (1m window) before /healthz reports degraded (0 = 0.1, negative = disabled)")
	max429Rate := flag.Float64("health-max-429-rate", 0, "upstream 429s/sec (1m window) before degraded (0 = 1.0, negative = disabled)")
	maxEvictionRate := flag.Float64("health-max-eviction-rate", 0, "cache evictions/sec (1m window) before degraded (0 = 100, negative = disabled)")
	batchWindow := flag.Duration("batch-window", 0, "coalesce concurrent /v1/answer/topk calls per store for up to this long and answer them in one fused batch sweep (0 = off)")
	batchMax := flag.Int("batch-max", 0, "max coalesced vectors per batch sweep; the batch flushes early when reached (0 = 16)")
	upstreamRetries := flag.Int("upstream-retries", 0, "attempts per upstream query for remote stores, transparently absorbing 429s and transient faults (0 = 4, 1 = no retries)")
	upstreamBackoff := flag.Duration("upstream-backoff", 0, "base upstream retry backoff, doubled per attempt with jitter (0 = 250ms)")
	upstreamBackoffMax := flag.Duration("upstream-backoff-max", 0, "upstream retry backoff cap; Retry-After hints are honored up to this long (0 = 5s)")
	upstreamTimeout := flag.Duration("upstream-timeout", 0, "per-attempt timeout for remote store queries (0 = no per-attempt deadline)")
	retryMaxDelay := flag.Duration("retry-max-delay", 0, "cap on the escalating park-and-retry delay for interrupted resumable jobs (0 = 8x the base delay)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive upstream-failure job endings before a store's circuit opens and runs park without querying (0 = 3, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "base circuit cooldown before half-open probes; doubles per consecutive open (0 = 30s)")
	var stores storeFlags
	flag.Var(&stores, "store", "name=target store (repeatable); target is a skyserve URL (http://...) or a CSV path")
	flag.Parse()

	if len(stores) == 0 {
		fmt.Fprintln(os.Stderr, "skylined: at least one -store is required")
		flag.Usage()
		os.Exit(2)
	}

	mgr, err := service.NewManager(service.Config{
		MaxConcurrent:    *maxJobs,
		SnapshotDir:      *snapshots,
		CacheSize:        *cacheSize,
		CheckpointEvery:  *checkpointEvery,
		SpanBuffer:       *spanBuffer,
		SampleInterval:   *sampleInterval,
		SampleRetention:  *sampleRetention,
		BatchWindow:      *batchWindow,
		BatchMax:         *batchMax,
		MaxRetryDelay:    *retryMaxDelay,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Health: service.HealthThresholds{
			MaxFailureRate:     *maxFailureRate,
			MaxRateLimitedRate: *max429Rate,
			MaxEvictionRate:    *maxEvictionRate,
		},
		Logger: obs.NewLogger(os.Stderr, "skylined"),
	})
	if err != nil {
		fatal(err)
	}
	// Any upstream flag set installs an explicit retry policy on remote
	// stores; unset fields fall back to the policy defaults (4 attempts,
	// 250ms base, 5s cap, jittered).
	upstreamPolicy := retry.Policy{
		Attempts:          *upstreamRetries,
		BaseBackoff:       *upstreamBackoff,
		MaxBackoff:        *upstreamBackoffMax,
		PerAttemptTimeout: *upstreamTimeout,
	}
	tuneUpstream := *upstreamRetries != 0 || *upstreamBackoff != 0 ||
		*upstreamBackoffMax != 0 || *upstreamTimeout != 0
	for _, s := range stores {
		name, target, ok := strings.Cut(s, "=")
		if !ok || name == "" || target == "" {
			fatal(fmt.Errorf("bad -store %q (want name=target)", s))
		}
		db, desc, err := openStore(target, *k, *rankName)
		if err != nil {
			fatal(fmt.Errorf("store %q: %w", name, err))
		}
		if wc, ok := db.(*web.Client); ok && tuneUpstream {
			wc.SetRetryPolicy(upstreamPolicy)
		}
		if err := mgr.AddStore(name, db); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "skylined: store %q = %s\n", name, desc)
	}
	resumed, err := mgr.Recover()
	if err != nil {
		fatal(err)
	}
	if resumed > 0 {
		fmt.Fprintf(os.Stderr, "skylined: resumed %d unfinished job(s) from %s\n", resumed, *snapshots)
	}

	// Requests inherit baseCtx so open SSE streams (which otherwise live
	// until their job is terminal) end when shutdown begins — without
	// that, srv.Shutdown would wait its full timeout on every watcher.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     service.NewHandler(mgr),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	if *debugAddr != "" {
		// pprof lives on its own opt-in listener, never the API port.
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugMux()}
		go func() { errc <- dbg.ListenAndServe() }()
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "skylined: pprof on http://%s/debug/pprof/\n", *debugAddr)
	}
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "skylined: serving %d store(s) on http://%s (max-jobs=%d, snapshots=%q)\n",
		len(stores), *addr, *maxJobs, *snapshots)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "skylined: shutting down (checkpointing jobs, draining connections)")
	// Park and checkpoint the jobs first — their budget should not be
	// shared with (or starved by) the HTTP drain.
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelClose()
	if err := mgr.Close(closeCtx); err != nil {
		fmt.Fprintf(os.Stderr, "skylined: manager shutdown: %v\n", err)
	}
	baseCancel() // end the SSE streams so the drain below is quick
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "skylined: http shutdown: %v\n", err)
	}
}

// openStore resolves a -store target: a URL dials a remote skyserve, a
// path loads a CSV dataset into the in-process simulator.
func openStore(target string, k int, rankName string) (db core.Interface, desc string, err error) {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		client, err := web.Dial(target, nil)
		if err != nil {
			return nil, "", err
		}
		return client, fmt.Sprintf("remote %s (%d attrs, k=%d)", target, client.NumAttrs(), client.K()), nil
	}
	f, err := os.Open(target)
	if err != nil {
		return nil, "", err
	}
	d, err := datagen.ReadCSV(f)
	f.Close()
	if err != nil {
		return nil, "", err
	}
	rank, err := hidden.ParseRanking(rankName)
	if err != nil {
		return nil, "", err
	}
	hdb, err := hidden.New(d.Config(k, rank))
	if err != nil {
		return nil, "", err
	}
	return hdb, fmt.Sprintf("local %s (%d tuples, %d attrs, k=%d)", target, hdb.Size(), hdb.NumAttrs(), k), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skylined: %v\n", err)
	os.Exit(1)
}
