package main

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"hiddensky/internal/core"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

// These tests pin the CLI's request building to the planner: before the
// refactor, skyquery silently dropped -where whenever -band or an
// explicit -algo sq/rq/pq was set (each mode had its own dispatch that
// never looked at the filter). Every combination below routes through
// one core.Run and must honor the filter.

// filteredGroundTruth computes the value-level filtered skyline (or
// K-skyband) straight from the dataset rows.
func filteredGroundTruth(d datagen.Dataset, filter query.Q, band int) [][]int {
	seen := map[string]bool{}
	var rows [][]int
	for _, t := range d.Data {
		if !filter.Matches(t) {
			continue
		}
		key := fmt.Sprint(t)
		if seen[key] {
			continue // discovery is value-level: duplicates collapse
		}
		seen[key] = true
		rows = append(rows, t)
	}
	if band <= 1 {
		return skyline.ComputeTuples(rows)
	}
	var out [][]int
	for _, i := range skyline.Skyband(rows, band) {
		out = append(out, rows[i])
	}
	return out
}

func sortedTuples(ts [][]int) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = fmt.Sprint(t)
	}
	sort.Strings(out)
	return out
}

func TestWhereComposesWithAlgoAndBand(t *testing.T) {
	const where = "A0<9,A1>=2"
	rqData := datagen.Independent(11, 80, 2, 14).WithCaps(hidden.RQ)
	pqData := rqData.WithCaps(hidden.PQ)

	cases := []struct {
		name  string
		algo  string
		band  int
		where string
		data  datagen.Dataset
	}{
		{"auto+where", "auto", 1, where, rqData},
		{"sq+where", "sq", 1, where, rqData}, // previously: -where silently ignored
		{"rq+where", "rq", 1, where, rqData}, // previously: -where silently ignored
		{"mq+where", "mq", 1, where, rqData},
		{"band+where", "auto", 3, where, rqData}, // previously: -where silently ignored
		{"rq-band+where", "rq", 2, where, rqData},
		// A PQ interface only expresses equality, so its filter does too.
		{"pq-band+where", "pq", 2, "A0=4", pqData},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			filter := query.MustParse(tc.where)
			req, err := buildRequest(tc.algo, tc.band, tc.where, false)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(tc.data.DB(5, hidden.SumRank{}), req, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, tuple := range res.Skyline {
				if !filter.Matches(tuple) {
					t.Fatalf("tuple %v violates filter %s", tuple, tc.where)
				}
			}
			want := filteredGroundTruth(tc.data, filter, tc.band)
			if got, expect := sortedTuples(res.Skyline), sortedTuples(want); fmt.Sprint(got) != fmt.Sprint(expect) {
				t.Fatalf("filtered result mismatch:\n got  %v\n want %v", got, expect)
			}
		})
	}
}

// TestWhereComposesWithResume: a filtered checkpointable session
// discovers exactly the filtered skyline across interrupted slices.
func TestWhereComposesWithResume(t *testing.T) {
	const where = "A0<9"
	d := datagen.Independent(7, 60, 2, 12).WithCaps(hidden.RQ)
	db := d.DB(4, hidden.SumRank{})

	req, err := buildRequest("auto", 1, where, true)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Plan(db, req)
	if err != nil {
		t.Fatal(err)
	}
	sess := plan.Session()
	var res core.Result
	for i := 0; i < 100 && !sess.Done(); i++ {
		// Resume in slices of 5 queries, re-planning each slice the way
		// consecutive CLI invocations do.
		req.Session = sess
		res, err = core.Run(db, req, core.Options{MaxQueries: 5})
		if err != nil && !errors.Is(err, core.ErrBudget) {
			t.Fatal(err)
		}
	}
	if !res.Complete {
		t.Fatalf("session never completed: %d pending", len(sess.Pending))
	}
	want := filteredGroundTruth(d, query.MustParse(where), 1)
	if got, expect := sortedTuples(res.Skyline), sortedTuples(want); fmt.Sprint(got) != fmt.Sprint(expect) {
		t.Fatalf("resumed filtered skyline mismatch:\n got  %v\n want %v", got, expect)
	}
}

func TestBuildRequestErrors(t *testing.T) {
	if _, err := buildRequest("quantum", 1, "", false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := buildRequest("auto", 1, "A0!!3", false); err == nil {
		t.Error("malformed filter accepted")
	}
	// Unsupported combinations surface the planner's typed error.
	db := datagen.Independent(3, 20, 2, 8).WithCaps(hidden.RQ).DB(3, hidden.SumRank{})
	req, err := buildRequest("mq", 2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(db, req, core.Options{}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("mq band: got %v, want ErrUnsupported", err)
	}
	req, err = buildRequest("pq", 1, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(db, req, core.Options{}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("resumable pq: got %v, want ErrUnsupported", err)
	}
}
