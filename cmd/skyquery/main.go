// Command skyquery discovers the skyline (or K-skyband) of a hidden
// database — either a local CSV dataset served through the in-process
// top-k simulator, or a remote endpoint served by cmd/skyserve — and
// reports the number of interface queries the discovery needed, the
// paper's central cost metric.
//
// Usage:
//
//	skyquery -in data.csv [-k 10] [-rank sum|attr0|lex|random] \
//	         [-algo auto|sq|rq|pq|mq] [-band K] [-budget N] [-baseline] \
//	         [-parallel P] [-cache N]
//	skyquery -url http://127.0.0.1:8080 [-algo auto] [-band K] [-budget N] \
//	         [-parallel P] [-cache N]
//
// -parallel P runs the independent branches of the discovery cascade on P
// bounded workers; -cache N memoizes up to N answered queries (canonically
// equal and concurrent duplicate queries are answered once) and prints the
// cache's dedup statistics after the run.
//
// -resume FILE makes the run checkpointable (the paper's per-day-quota
// reality, §8): discovery runs as a serializable session, and when the
// budget (local -budget or the site's own rate limit) interrupts it the
// session is saved to FILE; rerunning with the same -resume continues
// exactly where it stopped, repeating no counted query. The file is
// removed once the skyline is complete. Requires an interface whose
// attributes support one-ended ranges (SQ/RQ).
//
// The CSV format is the one cmd/datagen emits: a name header row, a
// capability row (SQ/RQ/PQ per ranking attribute, "-" for #filter
// columns), then data rows.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"hiddensky/internal/core"
	"hiddensky/internal/crawl"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
	"hiddensky/internal/web"
)

func main() {
	in := flag.String("in", "", "input CSV (local mode)")
	url := flag.String("url", "", "remote hidden-database endpoint (remote mode; see cmd/skyserve)")
	k := flag.Int("k", 10, "top-k limit of the simulated interface (local mode)")
	rankName := flag.String("rank", "sum", "ranking function: sum | attrN (e.g. attr0) | lex | random (local mode)")
	algo := flag.String("algo", "auto", "algorithm: auto|sq|rq|pq|mq")
	band := flag.Int("band", 1, "discover the K-skyband instead of the skyline (K>1, uniform SQ/RQ/PQ interfaces)")
	budget := flag.Int("budget", 0, "query budget (0 = unlimited); discovery returns a partial anytime result when hit")
	parallel := flag.Int("parallel", 1, "run independent discovery branches on this many workers (1 = the paper's sequential execution)")
	cacheSize := flag.Int("cache", 0, "memoize up to this many query answers in the shared query cache (0 = no cache, -1 = unbounded)")
	baseline := flag.Bool("baseline", false, "also run the crawling BASELINE for comparison (needs an all-RQ interface)")
	resume := flag.String("resume", "", "session checkpoint file: save on budget exhaustion, continue on the next run")
	where := flag.String("where", "", "conjunctive filter, e.g. \"A0<500,A2>=3\": discover the skyline of the matching subset only")
	showTuples := flag.Bool("tuples", true, "print the discovered tuples")
	flag.Parse()

	var db core.Interface
	var names []string
	switch {
	case *in != "" && *url != "":
		fatal(fmt.Errorf("-in and -url are mutually exclusive"))
	case *url != "":
		client, err := web.Dial(*url, nil)
		if err != nil {
			fatal(err)
		}
		for i := 0; i < client.NumAttrs(); i++ {
			names = append(names, client.AttrName(i))
		}
		db = client
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		d, err := datagen.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rank, err := hidden.ParseRanking(*rankName)
		if err != nil {
			fatal(err)
		}
		hdb, err := hidden.New(d.Config(*k, rank))
		if err != nil {
			fatal(err)
		}
		for _, a := range d.Attrs {
			names = append(names, a.Name)
		}
		db = hdb
	default:
		fmt.Fprintln(os.Stderr, "skyquery: one of -in or -url is required")
		flag.Usage()
		os.Exit(2)
	}

	opt := core.Options{MaxQueries: *budget, Parallelism: *parallel}
	var cache *qcache.Cache
	if *cacheSize != 0 {
		cache = qcache.New(qcache.Config{MaxEntries: *cacheSize})
		opt.Cache = cache
	}
	defer func() {
		if cache != nil {
			s := cache.Stats()
			fmt.Printf("cache: %d lookups, %d hits, %d coalesced, %d misses (dedup ratio %.2f)\n",
				s.Lookups, s.Hits, s.Coalesced, s.Misses, s.DedupRatio())
		}
	}()
	if *resume != "" {
		if *band > 1 || *baseline || *where != "" {
			fatal(fmt.Errorf("-resume is incompatible with -band, -baseline and -where"))
		}
		if a := strings.ToLower(*algo); a != "auto" && a != "sq" {
			fatal(fmt.Errorf("-resume runs the checkpointable SQ session walk; -algo %s is not resumable", *algo))
		}
		runResume(db, *resume, opt, names, *showTuples)
		return
	}
	if *band > 1 {
		runBand(db, *band, opt, names, *showTuples)
		return
	}

	filter, err := query.Parse(*where)
	if err != nil {
		fatal(err)
	}

	var res core.Result
	switch strings.ToLower(*algo) {
	case "auto", "mq":
		res, err = core.DiscoverWhere(db, filter, opt)
	case "sq":
		res, err = core.SQDBSky(db, opt)
	case "rq":
		res, err = core.RQDBSky(db, opt)
	case "pq":
		res, err = core.PQDBSky(db, opt)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil && !errors.Is(err, core.ErrBudget) {
		fatal(err)
	}
	if *showTuples {
		printTuples(names, res.Skyline)
	}
	fmt.Printf("skyline tuples: %d\nqueries issued: %d\ncomplete: %v\n",
		len(res.Skyline), res.Queries, res.Complete)

	if *baseline {
		runBaseline(db, *budget)
	}
}

// runResume drives a checkpointable discovery session: load (or start)
// the session in path, spend this run's budget, and either finish the
// skyline or save the checkpoint for the next invocation.
func runResume(db core.Interface, path string, opt core.Options, names []string, show bool) {
	var s *core.Session
	if f, err := os.Open(path); err == nil {
		s, err = core.ReadSession(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "skyquery: continuing session %s (%d queries spent, %d nodes pending)\n",
			path, s.Queries, len(s.Pending))
	} else if os.IsNotExist(err) {
		s = core.NewSession(db)
	} else {
		fatal(err)
	}

	res, rerr := s.Resume(db, opt)
	if rerr != nil && !errors.Is(rerr, core.ErrBudget) {
		// Even a hard failure (network blip, server restart) leaves the
		// session consistent: save it so the queries this slice already
		// paid for are not re-issued on the next run.
		saveSession(s, path)
		fatal(rerr)
	}
	if show {
		printTuples(names, res.Skyline)
	}
	fmt.Printf("skyline tuples: %d\nqueries issued: %d\ncomplete: %v\n",
		len(res.Skyline), res.Queries, res.Complete)

	if res.Complete {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "skyquery: session complete, checkpoint %s removed\n", path)
		return
	}
	saveSession(s, path)
	fmt.Fprintf(os.Stderr, "skyquery: budget exhausted, session saved to %s — rerun with -resume %s to continue\n", path, path)
}

func saveSession(s *core.Session, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := s.Save(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func runBaseline(db core.Interface, budget int) {
	// Reset cost accounting where possible so the comparison is fair.
	if hdb, ok := db.(*hidden.DB); ok {
		hdb.ResetCounter()
	}
	cres, sky, err := crawl.CrawlSkyline(db, crawl.Options{MaxQueries: budget})
	if err != nil && !errors.Is(err, crawl.ErrBudget) {
		fatal(err)
	}
	fmt.Printf("BASELINE: crawled %d tuples in %d queries (complete: %v, skyline %d)\n",
		len(cres.Tuples), cres.Queries, cres.Complete, len(sky))
}

func runBand(db core.Interface, band int, opt core.Options, names []string, show bool) {
	allOf := func(c hidden.Capability) bool {
		for i := 0; i < db.NumAttrs(); i++ {
			if db.Cap(i) != c {
				return false
			}
		}
		return true
	}
	var res core.BandResult
	var err error
	switch {
	case allOf(hidden.RQ):
		res, err = core.RQBandSky(db, band, opt)
	case allOf(hidden.PQ):
		res, err = core.PQBandSky(db, band, opt)
	case allOf(hidden.SQ):
		res, err = core.SQBandSky(db, band, opt)
	default:
		fatal(fmt.Errorf("K-skyband discovery needs a uniform SQ, RQ or PQ interface"))
	}
	if err != nil && !errors.Is(err, core.ErrBudget) {
		fatal(err)
	}
	if show {
		printTuples(names, res.Tuples)
	}
	fmt.Printf("%d-skyband tuples: %d\nqueries issued: %d\ncomplete: %v\n",
		band, len(res.Tuples), res.Queries, res.Complete)
}

func printTuples(names []string, tuples [][]int) {
	fmt.Println(strings.Join(names, "\t"))
	for _, t := range tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
	os.Exit(1)
}
