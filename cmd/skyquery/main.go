// Command skyquery discovers the skyline (or K-skyband) of a hidden
// database — either a local CSV dataset served through the in-process
// top-k simulator, or a remote endpoint served by cmd/skyserve — and
// reports the number of interface queries the discovery needed, the
// paper's central cost metric.
//
// Usage:
//
//	skyquery -in data.csv [-k 10] [-rank sum|attr0|lex|random] \
//	         [-algo auto|sq|rq|pq|mq] [-band K] [-budget N] [-baseline] \
//	         [-parallel P] [-cache N]
//	skyquery -url http://127.0.0.1:8080 [-algo auto] [-band K] [-budget N] \
//	         [-parallel P] [-cache N]
//
// -parallel P runs the independent branches of the discovery cascade on P
// bounded workers; -cache N memoizes up to N answered queries (canonically
// equal and concurrent duplicate queries are answered once) and prints the
// cache's dedup statistics after the run.
//
// -resume FILE makes the run checkpointable (the paper's per-day-quota
// reality, §8): discovery runs as a serializable session, and when the
// budget (local -budget or the site's own rate limit) interrupts it the
// session is saved to FILE; rerunning with the same -resume continues
// exactly where it stopped, repeating no counted query. The file is
// removed once the skyline is complete. Requires an interface whose
// attributes support one-ended ranges (SQ/RQ).
//
// Every flag combination routes through one core.Run call: -where
// composes with -band, with an explicit -algo, and with -resume (pass
// the same -where on every resumed run). Combinations the interface
// cannot satisfy (e.g. -algo mq -band 2) fail up front with the
// planner's explanation instead of being silently dropped.
//
// The CSV format is the one cmd/datagen emits: a name header row, a
// capability row (SQ/RQ/PQ per ranking attribute, "-" for #filter
// columns), then data rows.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"hiddensky/internal/core"
	"hiddensky/internal/crawl"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
	"hiddensky/internal/web"
)

func main() {
	in := flag.String("in", "", "input CSV (local mode)")
	url := flag.String("url", "", "remote hidden-database endpoint (remote mode; see cmd/skyserve)")
	k := flag.Int("k", 10, "top-k limit of the simulated interface (local mode)")
	rankName := flag.String("rank", "sum", "ranking function: sum | attrN (e.g. attr0) | lex | random (local mode)")
	algo := flag.String("algo", "auto", "algorithm: auto|sq|rq|pq|mq")
	band := flag.Int("band", 1, "discover the K-skyband instead of the skyline (K>1, uniform SQ/RQ/PQ interfaces)")
	budget := flag.Int("budget", 0, "query budget (0 = unlimited); discovery returns a partial anytime result when hit")
	parallel := flag.Int("parallel", 1, "run independent discovery branches on this many workers (1 = the paper's sequential execution)")
	cacheSize := flag.Int("cache", 0, "memoize up to this many query answers in the shared query cache (0 = no cache, -1 = unbounded)")
	baseline := flag.Bool("baseline", false, "also run the crawling BASELINE for comparison (needs an all-RQ interface)")
	resume := flag.String("resume", "", "session checkpoint file: save on budget exhaustion, continue on the next run")
	where := flag.String("where", "", "conjunctive filter, e.g. \"A0<500,A2>=3\": discover the skyline of the matching subset only")
	showTuples := flag.Bool("tuples", true, "print the discovered tuples")
	flag.Parse()

	var db core.Interface
	var names []string
	switch {
	case *in != "" && *url != "":
		fatal(fmt.Errorf("-in and -url are mutually exclusive"))
	case *url != "":
		client, err := web.Dial(*url, nil)
		if err != nil {
			fatal(err)
		}
		for i := 0; i < client.NumAttrs(); i++ {
			names = append(names, client.AttrName(i))
		}
		db = client
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		d, err := datagen.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rank, err := hidden.ParseRanking(*rankName)
		if err != nil {
			fatal(err)
		}
		hdb, err := hidden.New(d.Config(*k, rank))
		if err != nil {
			fatal(err)
		}
		for _, a := range d.Attrs {
			names = append(names, a.Name)
		}
		db = hdb
	default:
		fmt.Fprintln(os.Stderr, "skyquery: one of -in or -url is required")
		flag.Usage()
		os.Exit(2)
	}

	opt := core.Options{MaxQueries: *budget, Parallelism: *parallel}
	var cache *qcache.Cache
	if *cacheSize != 0 {
		cache = qcache.New(qcache.Config{MaxEntries: *cacheSize})
		opt.Cache = cache
	}
	defer func() {
		if cache != nil {
			s := cache.Stats()
			fmt.Printf("cache: %d lookups, %d hits, %d coalesced, %d misses (dedup ratio %.2f)\n",
				s.Lookups, s.Hits, s.Coalesced, s.Misses, s.DedupRatio())
		}
	}()

	req, err := buildRequest(*algo, *band, *where, *resume != "")
	if err != nil {
		fatal(err)
	}
	if *resume != "" {
		if *band > 1 || *baseline {
			fatal(fmt.Errorf("-resume is incompatible with -band and -baseline"))
		}
		runResume(db, *resume, req, opt, names, *showTuples)
		return
	}

	res, err := core.Run(db, req, opt)
	if err != nil && !errors.Is(err, core.ErrBudget) {
		fatal(err)
	}
	if *showTuples {
		printTuples(names, res.Skyline)
	}
	printSummary(res)

	if *baseline {
		runBaseline(db, *budget)
	}
}

// buildRequest turns the CLI's discovery flags into one planner
// request. Every combination flows through it, so -where composes with
// -band, an explicit -algo, and -resume instead of being dropped by
// per-mode dispatch.
func buildRequest(algo string, band int, where string, resumable bool) (core.Request, error) {
	filter, err := query.Parse(where)
	if err != nil {
		return core.Request{}, err
	}
	a, err := core.ParseAlgo(algo)
	if err != nil {
		return core.Request{}, err
	}
	req := core.Request{Algo: a, Filter: filter, Resumable: resumable}
	if band > 1 {
		req.Band = band
	}
	return req, nil
}

// printSummary reports the run's outcome; band runs are labeled by
// their K-skyband level.
func printSummary(res core.Result) {
	kind := "skyline"
	if res.Band > 1 {
		kind = fmt.Sprintf("%d-skyband", res.Band)
	}
	fmt.Printf("%s tuples: %d\nqueries issued: %d\ncomplete: %v\n",
		kind, len(res.Skyline), res.Queries, res.Complete)
}

// runResume drives a checkpointable discovery session: load (or start)
// the session in path, spend this run's budget, and either finish the
// skyline or save the checkpoint for the next invocation. The session
// rides through the planner (Request.Session), so a -where filter
// composes: resume with the same filter and no counted query repeats.
func runResume(db core.Interface, path string, req core.Request, opt core.Options, names []string, show bool) {
	var s *core.Session
	if f, err := os.Open(path); err == nil {
		s, err = core.ReadSession(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "skyquery: continuing session %s (%d queries spent, %d nodes pending)\n",
			path, s.Queries, len(s.Pending))
		req.Session = s
	} else if !os.IsNotExist(err) {
		fatal(err)
	}

	plan, err := core.Plan(db, req)
	if err != nil {
		fatal(err)
	}
	s = plan.Session() // the fresh session when no checkpoint existed
	res, rerr := plan.Run(opt)
	if rerr != nil && !errors.Is(rerr, core.ErrBudget) {
		// Even a hard failure (network blip, server restart) leaves the
		// session consistent: save it so the queries this slice already
		// paid for are not re-issued on the next run.
		saveSession(s, path)
		fatal(rerr)
	}
	if show {
		printTuples(names, res.Skyline)
	}
	printSummary(res)

	if res.Complete {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "skyquery: session complete, checkpoint %s removed\n", path)
		return
	}
	saveSession(s, path)
	fmt.Fprintf(os.Stderr, "skyquery: budget exhausted, session saved to %s — rerun with -resume %s to continue\n", path, path)
}

func saveSession(s *core.Session, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := s.Save(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func runBaseline(db core.Interface, budget int) {
	// Reset cost accounting where possible so the comparison is fair.
	if hdb, ok := db.(*hidden.DB); ok {
		hdb.ResetCounter()
	}
	cres, sky, err := crawl.CrawlSkyline(db, crawl.Options{MaxQueries: budget})
	if err != nil && !errors.Is(err, crawl.ErrBudget) {
		fatal(err)
	}
	fmt.Printf("BASELINE: crawled %d tuples in %d queries (complete: %v, skyline %d)\n",
		len(cres.Tuples), cres.Queries, cres.Complete, len(sky))
}

func printTuples(names []string, tuples [][]int) {
	fmt.Println(strings.Join(names, "\t"))
	for _, t := range tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
	os.Exit(1)
}
