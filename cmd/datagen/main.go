// Command datagen emits the repository's synthetic datasets as CSV, in the
// format cmd/skyquery consumes (two header rows: names, capabilities).
//
// Usage:
//
//	datagen -dataset bluenile -n 50000 -seed 1 -o diamonds.csv
//
// Datasets: independent, correlated, anticorrelated, flights, bluenile,
// autos, gflights.
package main

import (
	"flag"
	"fmt"
	"os"

	"hiddensky/internal/datagen"
)

func main() {
	name := flag.String("dataset", "flights", "dataset to generate: independent|correlated|anticorrelated|flights|bluenile|autos|gflights")
	n := flag.Int("n", 10000, "number of tuples (ignored by gflights, which sizes its route)")
	m := flag.Int("m", 4, "attributes (synthetic distributions only)")
	domain := flag.Int("domain", 100, "attribute domain size (synthetic distributions only)")
	rho := flag.Float64("rho", 0.8, "correlation strength (correlated only)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var d datagen.Dataset
	switch *name {
	case "independent":
		d = datagen.Independent(*seed, *n, *m, *domain)
	case "correlated":
		d = datagen.Correlated(*seed, *n, *m, *domain, *rho)
	case "anticorrelated":
		d = datagen.AntiCorrelated(*seed, *n, *m, *domain)
	case "flights":
		d = datagen.Flights(*seed, *n)
	case "bluenile":
		d = datagen.BlueNile(*seed, *n)
	case "autos":
		d = datagen.YahooAutos(*seed, *n)
	case "gflights":
		d = datagen.GoogleFlightsRoute(*seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d tuples, %d ranking attributes (%s)\n",
		len(d.Data), len(d.Attrs), d.Name)
}
