// Command skyserve exposes a CSV dataset as a live hidden web database: a
// JSON search API with top-k truncation, per-attribute predicate
// capabilities, a proprietary ranking and an optional per-client query
// budget — everything a third-party skyline discoverer has to contend
// with. Pair it with "skyquery -url" (or any HTTP client) to run the
// paper's algorithms across a real network boundary.
//
// Usage:
//
//	skyserve -in diamonds.csv -k 50 -rank attr0 -limit 10000 -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hiddensky/internal/chaos"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/web"
)

func main() {
	in := flag.String("in", "", "input CSV (required; see cmd/datagen)")
	k := flag.Int("k", 10, "top-k limit of the interface")
	rankName := flag.String("rank", "sum", "ranking function: sum | attrN | lex | random")
	limit := flag.Int("limit", 0, "per-client query budget (0 = unlimited)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional separate listen address for net/http/pprof (empty = profiling off)")
	sampleInterval := flag.Duration("sample-interval", 0, "time-series sampling interval for /v1/history and the health rollup (0 = 1s)")
	sampleRetention := flag.Int("sample-retention", 0, "samples retained per series (0 = 512; rounded up to a power of two)")
	max429Rate := flag.Float64("health-max-429-rate", web.DefaultMax429Rate, "search 429s/sec (1m window) before /healthz reports degraded (negative = disabled)")
	chaosSpec := flag.String("chaos", "", "fault-injection profile shaping /v1/search: a preset ("+strings.Join(chaos.PresetNames(), " | ")+"), a field spec like rl=7:2,err=13,lat=2ms, or off")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "skyserve: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	d, err := datagen.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	rank, err := hidden.ParseRanking(*rankName)
	if err != nil {
		fatal(err)
	}
	cfg := d.Config(*k, rank)
	cfg.QueryLimit = *limit
	db, err := hidden.New(cfg)
	if err != nil {
		fatal(err)
	}
	names := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		names[i] = a.Name
	}
	handler := web.NewServer(db, names)
	// Access log on stderr: every search answered, with the caller's
	// X-Trace-Id so a skylined job's trace can be joined to the
	// upstream's view of the same queries.
	handler.SetLogger(obs.NewLogger(os.Stderr, "skyserve"))
	handler.ConfigureSampler(obs.SamplerConfig{Interval: *sampleInterval, Retention: *sampleRetention})
	if *max429Rate != web.DefaultMax429Rate {
		// Negative values feed through as ≤0 thresholds, which the
		// rollup treats as "check disabled".
		handler.Health().SetThreshold("search_429_rate", *max429Rate)
	}
	stopSampling := handler.StartSampler()
	defer stopSampling()

	// -chaos places the fault injector in front of /v1/search only: meta,
	// metrics and health endpoints stay clean so operators can watch the
	// chaos they asked for. Injection counters join the server's registry
	// as chaos_faults_injected_total{kind=...}.
	var root http.Handler = handler
	if *chaosSpec != "" {
		profile, err := chaos.ParseProfile(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		if profile.Active() {
			in := chaos.New(profile)
			in.SetLogger(obs.NewLogger(os.Stderr, "chaos"))
			in.Instrument(handler.Registry())
			if profile.DriftEvery > 0 {
				// Default drift rotation: cycle domination-consistent
				// rankings so answers change while skylines do not.
				weights := make([]float64, db.NumAttrs())
				for i := range weights {
					weights[i] = float64(len(weights) - i)
				}
				in.SetDrift(db, hidden.AttrRank{}, hidden.WeightedRank{Weights: weights}, hidden.SumRank{})
			}
			root = in.Middleware(handler)
			fmt.Fprintf(os.Stderr, "skyserve: chaos profile active: %s\n", profile.String())
		}
	}
	fmt.Fprintf(os.Stderr, "skyserve: serving %d tuples x %d attributes on http://%s (k=%d, limit=%d)\n",
		db.Size(), db.NumAttrs(), *addr, *k, *limit)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests instead
	// of dying mid-response: discovery clients see complete answers (or
	// clean connection refusals), never truncated JSON.
	srv := &http.Server{Addr: *addr, Handler: root}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	if *debugAddr != "" {
		// pprof lives on its own opt-in listener, never the API port.
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugMux()}
		go func() { errc <- dbg.ListenAndServe() }()
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "skyserve: pprof on http://%s/debug/pprof/\n", *debugAddr)
	}
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "skyserve: shutting down (draining connections)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
	os.Exit(1)
}
