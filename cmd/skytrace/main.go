// Command skytrace inspects a skylined job's span trace: fetch it from
// the daemon, summarize where the time and the counted queries went,
// and export it for Perfetto.
//
// Usage:
//
//	skytrace -job j000001 [-url http://127.0.0.1:8090] [-top 10]
//	skytrace -job j000001 -chrome trace.json    # export for Perfetto
//	skytrace -job j000001 -json                 # raw TraceResponse
//
// The default output is an analyst's summary:
//
//   - the top-N slowest spans (the discovery's critical suspects);
//   - counted upstream queries per lifecycle phase;
//   - the cache hit ratio per subtree (which parent span's lookups
//     were answered from memory vs. paid an upstream round trip).
//
// Traces are in-memory only: a job that predates the daemon's restart
// answers with an empty span list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"hiddensky/internal/obs"
	"hiddensky/internal/service"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8090", "skylined base URL")
	job := flag.String("job", "", "job id (required)")
	top := flag.Int("top", 10, "how many slowest spans to list")
	chrome := flag.String("chrome", "", "write the Chrome trace-event export here and exit")
	raw := flag.Bool("json", false, "print the raw TraceResponse JSON and exit")
	flag.Parse()
	if *job == "" {
		fmt.Fprintln(os.Stderr, "skytrace: -job is required")
		flag.Usage()
		os.Exit(2)
	}

	c, err := service.Dial(*url, nil)
	if err != nil {
		fatal(err)
	}

	if *chrome != "" {
		blob, err := c.TraceChrome(*job)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*chrome, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("skytrace: wrote %s (%d bytes) — open it at https://ui.perfetto.dev\n", *chrome, len(blob))
		return
	}

	t, err := c.Trace(*job)
	if err != nil {
		fatal(err)
	}
	if *raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t); err != nil {
			fatal(err)
		}
		return
	}
	summarize(t, *top)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skytrace: %v\n", err)
	os.Exit(1)
}

func summarize(t service.TraceResponse, top int) {
	fmt.Printf("job %s  trace %s  state %s", t.JobID, t.TraceID, t.State)
	if t.Phase != "" {
		fmt.Printf("  phase %s", t.Phase)
	}
	fmt.Printf("  spans %d\n", len(t.Spans))
	if t.Truncated {
		fmt.Printf("  (ring buffer wrapped: %d spans recorded, oldest %d dropped)\n",
			t.Recorded, t.Recorded-int64(len(t.Spans)))
	}
	if len(t.Spans) == 0 {
		fmt.Println("no spans — the job has not started, or predates the daemon's restart")
		return
	}

	// Top-N slowest spans.
	byDur := make([]*obs.SpanRecord, len(t.Spans))
	for i := range t.Spans {
		byDur[i] = &t.Spans[i]
	}
	sort.Slice(byDur, func(i, j int) bool { return byDur[i].Duration > byDur[j].Duration })
	if top > len(byDur) {
		top = len(byDur)
	}
	fmt.Printf("\nslowest %d spans:\n", top)
	for _, rec := range byDur[:top] {
		fmt.Printf("  %s\n", obs.SummarizeSpan(rec))
	}

	// Counted upstream queries per lifecycle phase. Only "web.query"
	// spans are counted queries; rate-limited and failed attempts carry
	// other names by design.
	queries := map[string]int{}
	total := 0
	for i := range t.Spans {
		if t.Spans[i].Name == "web.query" {
			queries[t.Spans[i].Phase]++
			total++
		}
	}
	if total > 0 {
		fmt.Printf("\nupstream queries per phase (%d total):\n", total)
		for _, phase := range sortedKeys(queries) {
			fmt.Printf("  %-10s %d\n", phase, queries[phase])
		}
	}

	// Cache hit ratio per subtree: group qcache.lookup spans by the
	// name of their parent span, so "which part of the run was served
	// from memory" is one glance.
	names := map[uint64]string{}
	for i := range t.Spans {
		names[t.Spans[i].ID] = t.Spans[i].Name
	}
	type ratio struct{ hits, lookups int }
	subtrees := map[string]*ratio{}
	for i := range t.Spans {
		rec := &t.Spans[i]
		if rec.Name != "qcache.lookup" {
			continue
		}
		parent := names[rec.Parent]
		if parent == "" {
			parent = "(root)"
		}
		r := subtrees[parent]
		if r == nil {
			r = &ratio{}
			subtrees[parent] = r
		}
		r.lookups++
		if o, _ := rec.AttrStr("outcome"); o == "hit" || o == "coalesced" {
			r.hits++
		}
	}
	if len(subtrees) > 0 {
		fmt.Println("\ncache hit ratio per subtree:")
		keys := make([]string, 0, len(subtrees))
		for k := range subtrees {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r := subtrees[k]
			fmt.Printf("  under %-12s %d/%d hits (%.0f%%)\n",
				k, r.hits, r.lookups, 100*float64(r.hits)/float64(r.lookups))
		}
	}
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
