// Command skyanswer queries a skylined daemon's materialized answer
// indexes: the read path of the system. Where skyquery spends upstream
// queries to *discover* a skyline, skyanswer spends none — it asks the
// daemon's answer store, built from a completed discovery job, for
// personalized top-k rankings, subspace skylines and dominance
// verdicts at memory speed.
//
// Usage:
//
//	skyanswer -url http://127.0.0.1:8090 -list
//	skyanswer -url http://127.0.0.1:8090 -store diamonds -topk -w 1,0.5,2 -k 10
//	skyanswer -url http://127.0.0.1:8090 -store diamonds -topk -w 1,1,1 -normalized \
//	          -where "A0<=500,A2>=3"
//	skyanswer -url http://127.0.0.1:8090 -store diamonds -skyline -attrs 0,2
//	skyanswer -url http://127.0.0.1:8090 -store diamonds -dominates -tuple 320,4,7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"hiddensky/internal/query"
	"hiddensky/internal/service"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8090", "skylined daemon base URL")
	store := flag.String("store", "", "store whose answer index to query")
	list := flag.Bool("list", false, "list the daemon's answer indexes")
	topk := flag.Bool("topk", false, "top-k under a weight vector (-w, -k)")
	skylineQ := flag.Bool("skyline", false, "(subspace) skyline (-attrs)")
	dominates := flag.Bool("dominates", false, "dominance test for -tuple")
	weights := flag.String("w", "", "comma-separated non-negative weights, one per attribute")
	k := flag.Int("k", 10, "how many tuples to return")
	normalized := flag.Bool("normalized", false, "score unit-scaled columns instead of raw values")
	where := flag.String("where", "", "range filter like \"A0<=500,A2>=3\" (best-effort: answers are never exact under a filter)")
	attrs := flag.String("attrs", "", "comma-separated attribute subspace for -skyline (empty = all)")
	tuple := flag.String("tuple", "", "comma-separated candidate tuple for -dominates")
	asJSON := flag.Bool("json", false, "print the raw JSON response")
	flag.Parse()

	c, err := service.Dial(*url, nil)
	if err != nil {
		fatal(err)
	}

	modes := 0
	for _, b := range []bool{*list, *topk, *skylineQ, *dominates} {
		if b {
			modes++
		}
	}
	if modes != 1 {
		fatal(fmt.Errorf("pick exactly one of -list, -topk, -skyline, -dominates"))
	}
	if !*list && *store == "" {
		fatal(fmt.Errorf("-store is required"))
	}

	switch {
	case *list:
		answers, err := c.Answers()
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emit(service.AnswersResponse{Answers: answers})
			return
		}
		names := make([]string, 0, len(answers))
		for n := range answers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			st := answers[n]
			if !st.Loaded {
				fmt.Printf("%-16s (no answer index yet — run a discovery job)\n", n)
				continue
			}
			fmt.Printf("%-16s %d tuples, %d attrs, band K=%d, %d skyline levels (job %s)\n",
				n, st.Info.Tuples, st.Info.Attrs, st.Info.BandK, st.Info.Levels, st.Job)
		}

	case *topk:
		w, err := parseFloats(*weights)
		if err != nil {
			fatal(fmt.Errorf("-w: %w", err))
		}
		filter, err := parseWhere(*where)
		if err != nil {
			fatal(fmt.Errorf("-where: %w", err))
		}
		resp, err := c.AnswerTopK(service.AnswerTopKRequest{
			Store: *store, Weights: w, K: *k, Normalized: *normalized, Filter: filter,
		})
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emit(resp)
			return
		}
		exactness := fmt.Sprintf("exact (band K=%d)", resp.BandK)
		if !resp.Exact {
			exactness = fmt.Sprintf("best-effort over the band (K=%d)", resp.BandK)
		}
		fmt.Printf("top-%d of %q, %s:\n", resp.K, *store, exactness)
		for i, tu := range resp.Tuples {
			fmt.Printf("%3d. %v  score=%g  level=%d\n", i+1, tu, resp.Scores[i], resp.Levels[i])
		}

	case *skylineQ:
		as, err := parseInts(*attrs)
		if err != nil {
			fatal(fmt.Errorf("-attrs: %w", err))
		}
		resp, err := c.AnswerSkyline(service.AnswerSkylineRequest{Store: *store, Attrs: as})
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emit(resp)
			return
		}
		scope := "full-space"
		if len(as) > 0 {
			scope = fmt.Sprintf("subspace %v", as)
		}
		fmt.Printf("%s skyline of %q: %d tuples\n", scope, *store, len(resp.Tuples))
		for _, tu := range resp.Tuples {
			fmt.Printf("  %v\n", tu)
		}

	case *dominates:
		tu, err := parseInts(*tuple)
		if err != nil || len(tu) == 0 {
			fatal(fmt.Errorf("-tuple: want comma-separated integers, got %q", *tuple))
		}
		resp, err := c.AnswerDominates(service.AnswerDominatesRequest{Store: *store, Tuple: tu})
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emit(resp)
			return
		}
		if resp.Dominated {
			fmt.Printf("%v is dominated by discovered tuple %v\n", tu, resp.Witness)
		} else {
			fmt.Printf("%v is not dominated: it would join the skyline\n", tu)
		}
	}
}

// parseWhere converts a textual filter ("A0<=500,A2>=3") into wire
// ranges, translating strict comparisons into closed integer bounds.
func parseWhere(s string) ([]service.AnswerRange, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	q, err := query.Parse(s)
	if err != nil {
		return nil, err
	}
	var out []service.AnswerRange
	for _, p := range q {
		r := service.AnswerRange{Attr: p.Attr}
		v := p.Value
		switch p.Op {
		case query.LT:
			hi := v - 1
			r.Hi = &hi
		case query.LE:
			r.Hi = &v
		case query.EQ:
			lo, hi := v, v
			r.Lo, r.Hi = &lo, &hi
		case query.GE:
			r.Lo = &v
		case query.GT:
			lo := v + 1
			r.Lo = &lo
		}
		out = append(out, r)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty weight vector")
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skyanswer: %v\n", err)
	os.Exit(1)
}
