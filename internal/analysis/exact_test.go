package analysis

import (
	"math"
	"math/big"
	"testing"
)

func TestExactMatchesFloatInSafeRange(t *testing.T) {
	for m := 1; m <= 6; m++ {
		for s := 0; s <= 20; s++ {
			exact, _ := AvgCostExact(m, s).Float64()
			approx := AvgCostRecurrence(m, s)
			if math.Abs(exact-approx) > 1e-6*math.Max(1, exact) {
				t.Errorf("m=%d s=%d: exact %v vs float %v", m, s, exact, approx)
			}
		}
	}
}

func TestExactKnownValues(t *testing.T) {
	// m=2: E(C_s) = 2s+1 exactly.
	for s := 0; s <= 64; s++ {
		want := big.NewRat(int64(2*s+1), 1)
		if got := AvgCostExact(2, s); got.Cmp(want) != 0 {
			t.Fatalf("m=2 s=%d: %v, want %v", s, got, want)
		}
	}
	// E(C_1) = m+1 for every m.
	for m := 1; m <= 30; m++ {
		if got := AvgCostExact(m, 1); got.Cmp(big.NewRat(int64(m+1), 1)) != 0 {
			t.Fatalf("m=%d: E(C_1)=%v", m, got)
		}
	}
	if AvgCostExact(0, 1) != nil || AvgCostExact(2, -1) != nil {
		t.Fatal("invalid arguments accepted")
	}
}

func TestExactBeyondFloatRange(t *testing.T) {
	// At m=12, s=60 the float recurrence overflows toward +Inf-ish
	// magnitudes; the rational form stays exact and finite.
	v := AvgCostExact(12, 60)
	if !v.IsInt() && v.Sign() <= 0 {
		t.Fatal("exact value degenerate")
	}
	f, _ := v.Float64()
	if math.IsNaN(f) || f <= 0 {
		t.Fatalf("exact value unusable: %v", f)
	}
	// Bound check: E(C_s) <= binomial(s+m, m) + 1 in exact arithmetic.
	bound := new(big.Rat).SetInt(AvgCostBoundExact(12, 60))
	bound.Add(bound, big.NewRat(1, 1))
	if v.Cmp(bound) > 0 {
		t.Fatalf("recurrence %v exceeds exact eq.(9) bound %v", v, bound)
	}
}

func TestBinomialExact(t *testing.T) {
	if BinomialExact(5, 2).Int64() != 10 {
		t.Fatal("C(5,2)")
	}
	if BinomialExact(5, 9).Sign() != 0 || BinomialExact(5, -1).Sign() != 0 {
		t.Fatal("out-of-range binomials must be zero")
	}
}

func TestWorstCaseExactMatchesFloat(t *testing.T) {
	for m := 1; m <= 6; m++ {
		for s := 1; s <= 12; s++ {
			exact := new(big.Int).Set(WorstCaseExact(m, s))
			f, _ := new(big.Rat).SetInt(exact).Float64()
			if math.Abs(f-WorstCaseCost(m, s)) > 1e-6*f {
				t.Errorf("m=%d s=%d: exact %v vs float %v", m, s, f, WorstCaseCost(m, s))
			}
		}
	}
}
