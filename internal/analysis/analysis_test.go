package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAvgCostBaseCases(t *testing.T) {
	// C_0 = 1 and C_1 = m + 1 for every m (§3.2).
	for m := 1; m <= 12; m++ {
		if got := AvgCostRecurrence(m, 0); got != 1 {
			t.Errorf("m=%d: E(C_0)=%v, want 1", m, got)
		}
		if got := AvgCostRecurrence(m, 1); got != float64(m+1) {
			t.Errorf("m=%d: E(C_1)=%v, want %d", m, got, m+1)
		}
	}
}

func TestAvgCostM2Is2sPlus1(t *testing.T) {
	// The recurrence gives 2s+1 for m=2; the paper's closed form prints 2s
	// (it drops the root query).
	for s := 0; s <= 40; s++ {
		if got := AvgCostRecurrence(2, s); got != float64(2*s+1) {
			t.Errorf("s=%d: recurrence %v, want %d", s, got, 2*s+1)
		}
	}
}

func TestClosedFormMatchesRecurrenceMinusOne(t *testing.T) {
	for m := 2; m <= 8; m++ {
		for s := 1; s <= 25; s++ {
			rec := AvgCostRecurrence(m, s)
			cf := AvgCostClosedForm(m, s)
			if math.Abs(rec-1-cf) > 1e-6*rec {
				t.Errorf("m=%d s=%d: recurrence-1=%v, closed form=%v", m, s, rec-1, cf)
			}
		}
	}
}

func TestBinomialBoundDominatesAverage(t *testing.T) {
	// Equation (9): E(C_s) <= binomial(s+m, m) (after the paper's -1
	// normalization the bound still holds for the full recurrence at s>=1).
	for m := 2; m <= 8; m++ {
		for s := 1; s <= 30; s++ {
			if rec, b := AvgCostRecurrence(m, s), AvgCostBinomialBound(m, s); rec > b*(1+1e-9)+1 {
				t.Errorf("m=%d s=%d: recurrence %v exceeds binomial bound %v", m, s, rec, b)
			}
		}
	}
}

func TestExpBoundDominatesBinomialBound(t *testing.T) {
	// Equation (10): binomial(s+m, m) <= ((s+m)e/m)^m.
	for m := 1; m <= 10; m++ {
		for s := 0; s <= 50; s++ {
			if b, e := AvgCostBinomialBound(m, s), AvgCostExpBound(m, s); b > e*(1+1e-9) {
				t.Errorf("m=%d s=%d: binomial %v exceeds exp bound %v", m, s, b, e)
			}
		}
	}
}

func TestWorstDominatesAverageEventually(t *testing.T) {
	// Figure 4's visual: worst-case explodes past the average as s grows.
	for _, m := range []int{4, 8} {
		pts := Fig4Series(m, 19)
		if len(pts) != 19 {
			t.Fatalf("m=%d: %d points", m, len(pts))
		}
		last := pts[len(pts)-1]
		if last.Worst <= last.Average {
			t.Errorf("m=%d s=19: worst %v <= average %v", m, last.Worst, last.Average)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Average < pts[i-1].Average {
				t.Errorf("m=%d: average cost not monotone at s=%d", m, pts[i].Skylines)
			}
		}
	}
}

func TestTheorem1LowerBound(t *testing.T) {
	if got := Theorem1LowerBound(2, 4); math.Abs(got-6) > 1e-9 {
		t.Errorf("C(4,2)=%v, want 6", got)
	}
	if got := Theorem1LowerBound(3, 3); math.Abs(got-1) > 1e-9 {
		t.Errorf("C(3,3)=%v, want 1", got)
	}
	if got := Theorem1LowerBound(5, 3); got != 0 {
		t.Errorf("s<m should be 0, got %v", got)
	}
}

func TestPQ2DCostStaircase(t *testing.T) {
	// Skyline staircase {(1,5), (3,2), (6,1)} in [0,8]x[0,8]:
	// segments: (0,8)->(1,5): min(1,3)=1; (1,5)->(3,2): min(2,3)=2;
	// (3,2)->(6,1): min(3,1)=1; (6,1)->(8,0): min(2,1)=1. Total 5.
	cost, err := PQ2DCost([][]int{{3, 2}, {1, 5}, {6, 1}}, 0, 8, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 {
		t.Errorf("cost %d, want 5", cost)
	}
}

func TestPQ2DCostRejectsNonStaircase(t *testing.T) {
	if _, err := PQ2DCost([][]int{{1, 1}, {2, 2}}, 0, 5, 0, 5); err == nil {
		t.Error("dominated pair accepted as staircase")
	}
	if _, err := PQ2DCost([][]int{{1, 2, 3}}, 0, 5, 0, 5); err == nil {
		t.Error("3-attribute tuple accepted")
	}
}

func TestPQ2DCostBounds(t *testing.T) {
	// The paper's immediate corollaries of eq (11): C <= t_1[A2],
	// C <= t_|S|[A1] and C <= min_i (t_i[A1]+t_i[A2]) for 0-anchored domains.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		sky := randomStaircase(rng, 1+rng.Intn(10), 40)
		cost, err := PQ2DCost(sky, 0, 40, 0, 40)
		if err != nil {
			t.Fatal(err)
		}
		minSum := math.MaxInt
		for _, p := range sky {
			if s := p[0] + p[1]; s < minSum {
				minSum = s
			}
		}
		if cost > minSum {
			t.Fatalf("cost %d exceeds min(t[x]+t[y]) = %d for %v", cost, minSum, sky)
		}
	}
}

// randomStaircase generates a strictly decreasing 2D staircase.
func randomStaircase(rng *rand.Rand, n, domain int) [][]int {
	xs := rng.Perm(domain)[:n]
	ys := rng.Perm(domain)[:n]
	sortInts(xs)
	sortInts(ys)
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		out[i] = []int{xs[i], ys[n-1-i]}
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestPQDBCostBound(t *testing.T) {
	if got := PQDBCostBound([]int{10, 20, 3, 2}); got != float64((20+10)*3*2) {
		t.Errorf("bound %v, want %v", got, (20+10)*3*2)
	}
	if !math.IsNaN(PQDBCostBound([]int{5})) {
		t.Error("single-domain bound should be NaN")
	}
}

func TestRecurrencePropertyMonotone(t *testing.T) {
	// Property: E(C_s) is monotone in both m and s.
	f := func(mRaw, sRaw uint8) bool {
		m := int(mRaw%8) + 1
		s := int(sRaw % 30)
		return AvgCostRecurrence(m, s+1) >= AvgCostRecurrence(m, s) &&
			AvgCostRecurrence(m+1, s) >= AvgCostRecurrence(m, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
