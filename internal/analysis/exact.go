package analysis

import (
	"math/big"
)

// AvgCostExact evaluates the equation (4) recurrence in exact rational
// arithmetic. Floating point drifts once m and s push the intermediate
// sums past 2^53; downstream consumers that compare measured integer costs
// against the expectation (the Monte-Carlo fidelity tests) use this form.
//
//	E(C_0) = 1,   E(C_s) = 1 + (m/s)·Σ_{i=0}^{s-1} E(C_i)
func AvgCostExact(m, s int) *big.Rat {
	if m < 1 || s < 0 {
		return nil
	}
	e := make([]*big.Rat, s+1)
	e[0] = big.NewRat(1, 1)
	sum := new(big.Rat).Set(e[0])
	for i := 1; i <= s; i++ {
		term := new(big.Rat).Mul(big.NewRat(int64(m), int64(i)), sum)
		e[i] = term.Add(term, big.NewRat(1, 1))
		sum.Add(sum, e[i])
	}
	return e[s]
}

// BinomialExact returns C(n, k) exactly.
func BinomialExact(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// AvgCostBoundExact is the eq. (9) bound binomial(s+m, m) in exact form.
func AvgCostBoundExact(m, s int) *big.Int {
	return BinomialExact(s+m, m)
}

// WorstCaseExact is m·s^{m+1} in exact form — the counting bound behind
// the O(m·|S|^{m+1}) worst case of §3.2.
func WorstCaseExact(m, s int) *big.Int {
	out := new(big.Int).Exp(big.NewInt(int64(s)), big.NewInt(int64(m+1)), nil)
	return out.Mul(out, big.NewInt(int64(m)))
}
