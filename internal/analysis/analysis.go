// Package analysis provides the closed-form query-cost results of
// "Discovering the Skyline of Web Databases": the average-case recurrence
// and closed form for SQ-DB-SKY (equations 4 and 5), the worst-case bounds,
// the (e + e·|S|/m)^m bound of equation 10, the instance-optimal 2D point-
// query cost of equation 11, the PQ-DB-SKY bound of equation 14 and the
// Theorem 1 lower bound. These regenerate the paper's Figure 4 and the
// "Average Cost" series of Figure 15.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// AvgCostRecurrence returns E(C_s) for SQ-DB-SKY under the random-ranking
// average-case model via the paper's equation (4):
//
//	E(C_0) = 1,   E(C_s) = 1 + (m/s) · Σ_{i=0}^{s-1} E(C_i).
//
// The cost depends only on m and the skyline size s — not on the data
// distribution — which is the paper's key average-case insight.
func AvgCostRecurrence(m, s int) float64 {
	if m < 1 || s < 0 {
		return math.NaN()
	}
	e := make([]float64, s+1)
	e[0] = 1
	sum := e[0]
	for i := 1; i <= s; i++ {
		e[i] = 1 + float64(m)/float64(i)*sum
		sum += e[i]
	}
	return e[s]
}

// AvgCostClosedForm evaluates the paper's equation (5):
//
//	E(C_s) = m·((m+s-1)! − (m-1)!·s!) / ((m-1)·(m-1)!·s!).
//
// As printed it equals AvgCostRecurrence minus the single root query (for
// m = 2 it yields 2s where the recurrence yields 2s+1); both shapes are
// identical. Computed with log-gamma to stay finite for large arguments.
func AvgCostClosedForm(m, s int) float64 {
	if m < 2 || s < 0 {
		return math.NaN()
	}
	if s == 0 {
		return 0
	}
	// m/(m-1) · ( (m+s-1)! / ((m-1)!·s!) − 1 )
	lg := func(n int) float64 {
		v, _ := math.Lgamma(float64(n + 1))
		return v
	}
	ratio := math.Exp(lg(m+s-1) - lg(m-1) - lg(s))
	return float64(m) / float64(m-1) * (ratio - 1)
}

// WorstCaseCost returns the paper's worst-case bound for SQ-DB-SKY,
// O(m·|S|^{m+1}), evaluated without the hidden constant.
func WorstCaseCost(m, s int) float64 {
	if m < 1 || s < 0 {
		return math.NaN()
	}
	return float64(m) * math.Pow(float64(s), float64(m+1))
}

// WorstCaseCostRQ returns the RQ-DB-SKY worst-case bound
// O(m·min(|S|^{m+1}, n)).
func WorstCaseCostRQ(m, s, n int) float64 {
	w := math.Pow(float64(s), float64(m+1))
	if fn := float64(n); fn < w {
		w = fn
	}
	return float64(m) * w
}

// AvgCostBinomialBound returns the F_s bound of equation (9):
// binomial(s+m, m), an upper bound on the average-case cost.
func AvgCostBinomialBound(m, s int) float64 {
	lg := func(n int) float64 {
		v, _ := math.Lgamma(float64(n + 1))
		return v
	}
	return math.Exp(lg(s+m) - lg(s) - lg(m))
}

// AvgCostExpBound returns the (e + e·s/m)^m bound of equation (10) — the
// headline result that average-case growth in |S| is orders of magnitude
// slower than the worst case.
func AvgCostExpBound(m, s int) float64 {
	return math.Pow(math.E+math.E*float64(s)/float64(m), float64(m))
}

// Theorem1LowerBound returns binomial(|S|, m): the number of fully
// specified queries any SQ skyline-discovery algorithm must issue on the
// Theorem 1 adversarial construction.
func Theorem1LowerBound(m, s int) float64 {
	if s < m {
		return 0
	}
	lg := func(n int) float64 {
		v, _ := math.Lgamma(float64(n + 1))
		return v
	}
	return math.Exp(lg(s) - lg(m) - lg(s-m))
}

// PQ2DCost evaluates equation (11): the exact query cost of the
// instance-optimal PQ-2D-SKY on a two-attribute database whose skyline is
// sky (any order; deduplicated by value), with attribute domains
// [0,xmax] × [0,ymax] anchored at loX/loY.
//
//	C = Σ_{i=0}^{|S|} min(t_{i+1}[x] − t_i[x], t_i[y] − t_{i+1}[y])
//
// where t_0 = (loX, ymax+1-ish sentinel) ... the paper's virtual corners
// t_0 = (0, max Dom(y)) and t_{|S|+1} = (max Dom(x), 0).
func PQ2DCost(sky [][]int, loX, hiX, loY, hiY int) (int, error) {
	for _, t := range sky {
		if len(t) != 2 {
			return 0, fmt.Errorf("analysis: PQ2DCost needs 2-attribute tuples, got %d", len(t))
		}
	}
	s := make([][]int, len(sky))
	copy(s, sky)
	sort.Slice(s, func(a, b int) bool { return s[a][0] < s[b][0] })
	// Chain with virtual corners.
	chain := make([][]int, 0, len(s)+2)
	chain = append(chain, []int{loX, hiY})
	chain = append(chain, s...)
	chain = append(chain, []int{hiX, loY})
	cost := 0
	for i := 0; i+1 < len(chain); i++ {
		dx := chain[i+1][0] - chain[i][0]
		dy := chain[i][1] - chain[i+1][1]
		if dx < 0 || dy < 0 {
			return 0, fmt.Errorf("analysis: tuples %v, %v are not a valid 2D skyline staircase", chain[i], chain[i+1])
		}
		if dx < dy {
			cost += dx
		} else {
			cost += dy
		}
	}
	return cost, nil
}

// PQDBCostBound evaluates the order of equation (14)'s bound for
// PQ-DB-SKY: (|Dom1| + |Dom2|) · Π |Dom_other| where Dom1 and Dom2 are the
// two largest attribute domains.
func PQDBCostBound(domainSizes []int) float64 {
	if len(domainSizes) < 2 {
		return math.NaN()
	}
	d := append([]int(nil), domainSizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	out := float64(d[0] + d[1])
	for _, v := range d[2:] {
		out *= float64(v)
	}
	return out
}

// Fig4Point is one x/y pair of the paper's Figure 4 series.
type Fig4Point struct {
	Skylines int
	Average  float64
	Worst    float64
}

// Fig4Series regenerates Figure 4 for a given m: average (recurrence) vs
// worst-case cost for |S| = 1..maxS.
func Fig4Series(m, maxS int) []Fig4Point {
	out := make([]Fig4Point, 0, maxS)
	for s := 1; s <= maxS; s++ {
		out = append(out, Fig4Point{
			Skylines: s,
			Average:  AvgCostRecurrence(m, s),
			Worst:    WorstCaseCost(m, s),
		})
	}
	return out
}
