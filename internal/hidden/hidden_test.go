package hidden

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

func capsOf(s string) []Capability {
	out := make([]Capability, len(s))
	for i, c := range s {
		switch c {
		case 'S':
			out[i] = SQ
		case 'R':
			out[i] = RQ
		case 'P':
			out[i] = PQ
		}
	}
	return out
}

func randData(rng *rand.Rand, n, m, domain int) [][]int {
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		data[i] = t
	}
	return data
}

func TestConfigValidation(t *testing.T) {
	good := Config{Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1}
	if _, err := New(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for name, cfg := range map[string]Config{
		"empty":         {Caps: capsOf("R"), K: 1},
		"zero-attrs":    {Data: [][]int{{}}, Caps: nil, K: 1},
		"ragged":        {Data: [][]int{{1, 2}, {1}}, Caps: capsOf("RR"), K: 1},
		"caps-mismatch": {Data: [][]int{{1, 2}}, Caps: capsOf("R"), K: 1},
		"bad-k":         {Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 0},
		"filter-rows":   {Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1, Filters: [][]string{{"a"}, {"b"}}},
		"bad-weights":   {Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1, Rank: WeightedRank{Weights: []float64{1, -1}}},
		"weights-arity": {Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1, Rank: WeightedRank{Weights: []float64{1}}},
		"lex-bad-attr":  {Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1, Rank: LexRank{Priority: []int{5}}},
		"lex-dup-attr":  {Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1, Rank: LexRank{Priority: []int{0, 0}}},
		"attr-rank-oob": {Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1, Rank: AttrRank{Attr: 9}},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

func TestCapabilityEnforcement(t *testing.T) {
	db := MustNew(Config{Data: [][]int{{1, 2, 3}}, Caps: capsOf("SRP"), K: 1})
	ok := []query.Q{
		{{Attr: 0, Op: query.LT, Value: 2}},
		{{Attr: 0, Op: query.LE, Value: 2}},
		{{Attr: 0, Op: query.EQ, Value: 1}},
		{{Attr: 1, Op: query.GT, Value: 0}},
		{{Attr: 1, Op: query.GE, Value: 0}},
		{{Attr: 2, Op: query.EQ, Value: 3}},
	}
	for _, q := range ok {
		if _, err := db.Query(q); err != nil {
			t.Errorf("%v rejected: %v", q, err)
		}
	}
	bad := []query.Q{
		{{Attr: 0, Op: query.GT, Value: 0}},    // SQ: no >
		{{Attr: 0, Op: query.GE, Value: 0}},    // SQ: no >=
		{{Attr: 2, Op: query.LT, Value: 9}},    // PQ: no <
		{{Attr: 2, Op: query.GE, Value: 0}},    // PQ: no >=
		{{Attr: 7, Op: query.EQ, Value: 0}},    // unknown attribute
		{{Attr: 0, Op: query.Op(9), Value: 0}}, // invalid op
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("%v accepted", q)
		}
	}
	// A rejected query must not consume budget.
	if got := db.QueriesIssued(); got != len(ok) {
		t.Errorf("counter %d, want %d (rejections must not count)", got, len(ok))
	}
}

func TestTopKSemantics(t *testing.T) {
	data := [][]int{{1, 9}, {2, 8}, {3, 7}, {4, 6}, {5, 5}}
	db := MustNew(Config{Data: data, Caps: capsOf("RR"), K: 2, Rank: AttrRank{Attr: 0}})

	res, err := db.Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overflow || len(res.Tuples) != 2 {
		t.Fatalf("top-2 of 5: overflow=%v len=%d", res.Overflow, len(res.Tuples))
	}
	if res.Tuples[0][0] != 1 || res.Tuples[1][0] != 2 {
		t.Fatalf("ranking violated: %v", res.Tuples)
	}
	if res.Top()[0] != 1 {
		t.Fatal("Top() mismatch")
	}

	res, err = db.Query(query.Q{{Attr: 0, Op: query.GE, Value: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow || len(res.Tuples) != 2 {
		t.Fatalf("exact-2 match: overflow=%v len=%d", res.Overflow, len(res.Tuples))
	}

	res, err = db.Query(query.Q{{Attr: 0, Op: query.GT, Value: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 || res.Overflow || res.Top() != nil {
		t.Fatal("empty answer misreported")
	}
}

func TestReturnedTuplesAreCopies(t *testing.T) {
	data := [][]int{{1, 2}}
	db := MustNew(Config{Data: data, Caps: capsOf("RR"), K: 1})
	res, _ := db.Query(nil)
	res.Tuples[0][0] = 99
	res2, _ := db.Query(nil)
	if res2.Tuples[0][0] != 1 {
		t.Fatal("caller mutation leaked into the database")
	}
}

func TestRateLimit(t *testing.T) {
	db := MustNew(Config{Data: [][]int{{1}}, Caps: capsOf("R"), K: 1, QueryLimit: 2})
	for i := 0; i < 2; i++ {
		if _, err := db.Query(nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query(nil); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	db.SetQueryLimit(0)
	if _, err := db.Query(nil); err != nil {
		t.Fatalf("unlimited after reset: %v", err)
	}
	db.ResetCounter()
	if db.QueriesIssued() != 0 {
		t.Fatal("counter not reset")
	}
}

func TestDomainsObserved(t *testing.T) {
	db := MustNew(Config{Data: [][]int{{3, 10}, {7, -2}, {5, 4}}, Caps: capsOf("RR"), K: 1})
	if db.Domain(0) != (query.Interval{Lo: 3, Hi: 7}) || db.Domain(1) != (query.Interval{Lo: -2, Hi: 10}) {
		t.Fatalf("domains: %v %v", db.Domain(0), db.Domain(1))
	}
	doms := db.Domains()
	doms[0] = query.Interval{}
	if db.Domain(0).Lo != 3 {
		t.Fatal("Domains() exposed internal slice")
	}
	caps := db.Caps()
	caps[0] = PQ
	if db.Cap(0) != RQ {
		t.Fatal("Caps() exposed internal slice")
	}
}

func TestFiltersReturned(t *testing.T) {
	db := MustNew(Config{
		Data:    [][]int{{1}, {2}},
		Caps:    capsOf("R"),
		K:       5,
		Filters: [][]string{{"AA", "123"}, {"DL", "456"}},
	})
	res, filters, err := db.QueryFull(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(filters) != 2 || filters[0][0] != "AA" || filters[1][1] != "456" {
		t.Fatalf("filters misaligned: %v (tuples %v)", filters, res.Tuples)
	}
}

// The two evaluation plans (selective-column scan and rank-order scan)
// must agree exactly with a naive reference evaluation.
func TestEvaluatePlansAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randData(rng, 2000, 3, 30)
	db := MustNew(Config{Data: data, Caps: capsOf("RRR"), K: 4})
	ops := []query.Op{query.LT, query.LE, query.EQ, query.GE, query.GT}
	for trial := 0; trial < 500; trial++ {
		var q query.Q
		for p := 0; p < rng.Intn(4); p++ {
			q = append(q, query.Predicate{Attr: rng.Intn(3), Op: ops[rng.Intn(5)], Value: rng.Intn(31)})
		}
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		// Reference evaluation.
		var match [][]int
		for _, tup := range data {
			if q.Matches(tup) {
				match = append(match, tup)
			}
		}
		wantOverflow := len(match) > 4
		if res.Overflow != wantOverflow {
			t.Fatalf("q=%v overflow=%v want %v", q, res.Overflow, wantOverflow)
		}
		wantLen := len(match)
		if wantLen > 4 {
			wantLen = 4
		}
		if len(res.Tuples) != wantLen {
			t.Fatalf("q=%v returned %d tuples want %d", q, len(res.Tuples), wantLen)
		}
		// Domination consistency within the answer (SumRank).
		for i := 0; i < len(res.Tuples); i++ {
			for j := i + 1; j < len(res.Tuples); j++ {
				if skyline.Dominates(res.Tuples[j], res.Tuples[i]) {
					t.Fatalf("q=%v: later tuple dominates earlier: %v before %v", q, res.Tuples[i], res.Tuples[j])
				}
			}
		}
	}
}

// Every shipped ranking must be domination-consistent: a dominating tuple
// always ranks higher.
func TestRankingsDominationConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randData(rng, 300, 3, 8)
	rankings := map[string]Ranking{
		"sum":         SumRank{},
		"weighted":    WeightedRank{Weights: []float64{1, 2.5, 0.5}},
		"attr":        AttrRank{Attr: 1},
		"lex":         LexRank{Priority: []int{2, 0, 1}},
		"randweight":  RandomWeightRank{Seed: 5},
		"randext":     RandomExtensionRank{Seed: 5},
		"adversarial": AdversarialRank{},
	}
	for name, r := range rankings {
		order, err := r.Order(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pos := make([]int, len(data))
		for p, i := range order {
			pos[i] = p
		}
		for i := range data {
			for j := range data {
				if skyline.Dominates(data[i], data[j]) && pos[i] > pos[j] {
					t.Fatalf("%s: %v dominates %v but ranks below", name, data[i], data[j])
				}
			}
		}
	}
}

// RandomExtensionRank must vary with the seed but stay deterministic.
func TestRandomExtensionSeeding(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randData(rng, 100, 2, 10)
	a1, _ := RandomExtensionRank{Seed: 1}.Order(data)
	a2, _ := RandomExtensionRank{Seed: 1}.Order(data)
	b, _ := RandomExtensionRank{Seed: 2}.Order(data)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatal("same seed, different order")
	}
	if fmt.Sprint(a1) == fmt.Sprint(b) {
		t.Fatal("different seeds produced identical orders (suspicious)")
	}
}

func TestCapabilityStrings(t *testing.T) {
	if SQ.String() != "SQ" || RQ.String() != "RQ" || PQ.String() != "PQ" {
		t.Error("capability names wrong")
	}
	if !RQ.Allows(query.GT) || SQ.Allows(query.GT) || PQ.Allows(query.LT) {
		t.Error("Allows matrix wrong")
	}
	if Capability(7).Allows(query.EQ) {
		t.Error("unknown capability should allow nothing")
	}
}

func TestGroundTruthIsCopy(t *testing.T) {
	db := MustNew(Config{Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1})
	g := db.GroundTruth()
	g[0][0] = 99
	if db.GroundTruth()[0][0] != 1 {
		t.Fatal("GroundTruth exposed internals")
	}
}

func TestAdvertisedDomainOverrides(t *testing.T) {
	data := [][]int{{3, 5}, {7, 6}}
	db, err := New(Config{
		Data:    data,
		Caps:    capsOf("RR"),
		K:       1,
		Domains: []query.Interval{{Lo: 0, Hi: 10}, {Lo: 5, Hi: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Domain(0) != (query.Interval{Lo: 0, Hi: 10}) {
		t.Fatalf("override not applied: %v", db.Domain(0))
	}
	if db.Domain(1) != (query.Interval{Lo: 5, Hi: 6}) {
		t.Fatalf("tight override mangled: %v", db.Domain(1))
	}
	// Overrides must contain the observed range.
	if _, err := New(Config{
		Data:    data,
		Caps:    capsOf("RR"),
		K:       1,
		Domains: []query.Interval{{Lo: 4, Hi: 10}, {Lo: 5, Hi: 6}},
	}); err == nil {
		t.Fatal("override excluding data accepted")
	}
	// Arity must match.
	if _, err := New(Config{
		Data:    data,
		Caps:    capsOf("RR"),
		K:       1,
		Domains: []query.Interval{{Lo: 0, Hi: 10}},
	}); err == nil {
		t.Fatal("wrong-arity override accepted")
	}
}

func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := MustNew(Config{Data: randData(rng, 500, 2, 20), Caps: capsOf("RR"), K: 3})
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				q := query.Q{{Attr: r.Intn(2), Op: query.LE, Value: r.Intn(20)}}
				if _, err := db.Query(q); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.QueriesIssued(); got != workers*perWorker {
		t.Fatalf("counter %d, want %d", got, workers*perWorker)
	}
}

func TestConcurrentRateLimitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const limit = 37
	db := MustNew(Config{Data: randData(rng, 100, 2, 10), Caps: capsOf("RR"), K: 1, QueryLimit: limit})
	var wg sync.WaitGroup
	var served, rejected int64
	var mu sync.Mutex
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := db.Query(nil)
				mu.Lock()
				if err == nil {
					served++
				} else if errors.Is(err, ErrRateLimited) {
					rejected++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if served != limit {
		t.Fatalf("served %d queries under limit %d (rejected %d)", served, limit, rejected)
	}
}
