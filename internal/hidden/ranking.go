package hidden

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"hiddensky/internal/skyline"
)

// Ranking is the proprietary ranking function of a hidden database. Order
// returns a permutation of tuple indices, best-ranked first. The paper
// requires only domination-consistency: if tuple t dominates tuple u, then
// t must appear before u. Every Ranking shipped here satisfies it (see the
// per-type comments for the argument) and TestRankingsDominationConsistent
// checks it empirically.
type Ranking interface {
	Order(data [][]int) ([]int, error)
}

// scoreOrder sorts tuple indices by ascending score with ascending attribute
// sum, then index, as deterministic tie-breaks.
func scoreOrder(data [][]int, score func(t []int) float64) []int {
	order := make([]int, len(data))
	sums := make([]int, len(data))
	scores := make([]float64, len(data))
	for i, t := range data {
		order[i] = i
		s := 0
		for _, v := range t {
			s += v
		}
		sums[i] = s
		scores[i] = score(t)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] < scores[ib]
		}
		if sums[ia] != sums[ib] {
			return sums[ia] < sums[ib]
		}
		return ia < ib
	})
	return order
}

// SumRank ranks by ascending attribute sum — the ranking function used for
// the paper's offline DOT experiments ("SUM of attributes for which smaller
// values are preferred"). Domination-consistent: a dominating tuple has a
// strictly smaller sum, and the sum tie-break leaves only mutually
// non-dominated tuples tied.
type SumRank struct{}

// Order implements Ranking.
func (SumRank) Order(data [][]int) ([]int, error) {
	return scoreOrder(data, func(t []int) float64 {
		s := 0.0
		for _, v := range t {
			s += float64(v)
		}
		return s
	}), nil
}

// WeightedRank ranks by ascending positive-weighted sum. Domination-
// consistent for strictly positive weights: dominating lowers every term.
type WeightedRank struct {
	Weights []float64
}

// Order implements Ranking.
func (r WeightedRank) Order(data [][]int) ([]int, error) {
	if len(data) > 0 && len(r.Weights) != len(data[0]) {
		return nil, fmt.Errorf("hidden: %d weights for %d attributes", len(r.Weights), len(data[0]))
	}
	for _, w := range r.Weights {
		if w <= 0 {
			return nil, fmt.Errorf("hidden: weights must be positive for domination consistency, got %v", w)
		}
	}
	return scoreOrder(data, func(t []int) float64 {
		s := 0.0
		for i, v := range t {
			s += r.Weights[i] * float64(v)
		}
		return s
	}), nil
}

// AttrRank ranks by a single attribute ascending (e.g., "Price low to
// high", the default order of Blue Nile, Google Flights and Yahoo! Autos),
// with attribute sum breaking ties. Domination-consistent: a dominating
// tuple is no worse on the primary attribute, and when equal there its sum
// is strictly smaller.
type AttrRank struct {
	Attr int
}

// Order implements Ranking.
func (r AttrRank) Order(data [][]int) ([]int, error) {
	if len(data) > 0 && (r.Attr < 0 || r.Attr >= len(data[0])) {
		return nil, fmt.Errorf("hidden: rank attribute A%d out of range", r.Attr)
	}
	return scoreOrder(data, func(t []int) float64 { return float64(t[r.Attr]) }), nil
}

// LexRank ranks lexicographically by the given attribute priority order
// (first attribute most significant, ascending). Domination-consistent: at
// the first differing priority attribute the dominating tuple is smaller.
type LexRank struct {
	Priority []int
}

// Order implements Ranking.
func (r LexRank) Order(data [][]int) ([]int, error) {
	if len(data) == 0 {
		return nil, nil
	}
	m := len(data[0])
	prio := r.Priority
	if prio == nil {
		prio = make([]int, m)
		for i := range prio {
			prio[i] = i
		}
	}
	seen := make([]bool, m)
	for _, a := range prio {
		if a < 0 || a >= m || seen[a] {
			return nil, fmt.Errorf("hidden: bad lexicographic priority %v", r.Priority)
		}
		seen[a] = true
	}
	full := append([]int(nil), prio...)
	for a := 0; a < m; a++ {
		if !seen[a] {
			full = append(full, a)
		}
	}
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		tx, ty := data[order[x]], data[order[y]]
		for _, a := range full {
			if tx[a] != ty[a] {
				return tx[a] < ty[a]
			}
		}
		return order[x] < order[y]
	})
	return order, nil
}

// RandomWeightRank draws strictly positive random weights once and ranks by
// the weighted sum. This models an unknown proprietary weighting; it is
// domination-consistent like WeightedRank and cheap enough for databases of
// hundreds of thousands of tuples.
type RandomWeightRank struct {
	Seed int64
}

// Order implements Ranking.
func (r RandomWeightRank) Order(data [][]int) ([]int, error) {
	if len(data) == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(r.Seed))
	w := make([]float64, len(data[0]))
	for i := range w {
		w[i] = 0.05 + rng.Float64()
	}
	return WeightedRank{Weights: w}.Order(data)
}

// RandomExtensionRank produces a uniformly random linear extension of the
// dominance partial order (Kahn's algorithm selecting uniformly among the
// currently non-dominated tuples). This is exactly the paper's average-case
// model: at every step — hence for every query — the top-ranked matching
// tuple is a uniformly random element of the matching skyline.
//
// Cost is O(n^2 · m); use it for simulation-scale databases (the paper's
// Figure 6 uses n = 2000).
type RandomExtensionRank struct {
	Seed int64
}

// Order implements Ranking.
func (r RandomExtensionRank) Order(data [][]int) ([]int, error) {
	return peelOrder(data, func(candidates []int, rng *rand.Rand) int {
		return candidates[rng.Intn(len(candidates))]
	}, r.Seed)
}

// AdversarialRank is an intentionally ill-behaved but still domination-
// consistent ranking: among the currently non-dominated remaining tuples it
// always surfaces the one with the largest attribute sum, i.e., the
// "locally worst" skyline tuple. It exercises the worst-case branches of
// SQ-DB-SKY. O(n^2 · m); simulation scale only.
type AdversarialRank struct{}

// Order implements Ranking.
func (AdversarialRank) Order(data [][]int) ([]int, error) {
	return peelOrder(data, func(candidates []int, _ *rand.Rand) int {
		best, bestSum := candidates[0], -1
		for _, i := range candidates {
			s := 0
			for _, v := range data[i] {
				s += v
			}
			_ = s
			if s > bestSum {
				best, bestSum = i, s
			}
		}
		return best
	}, 0)
}

// peelOrder repeatedly selects one tuple from the current maxima (the
// non-dominated set among remaining tuples) — any such sequence is a linear
// extension of the dominance order.
func peelOrder(data [][]int, pick func(candidates []int, rng *rand.Rand) int, seed int64) ([]int, error) {
	n := len(data)
	rng := rand.New(rand.NewSource(seed))
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	// indegree[i] = number of remaining tuples dominating i.
	indeg := make([]int, n)
	dominatedBy := make([][]int32, n) // edges u -> v where u dominates v
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && skyline.Dominates(data[i], data[j]) {
				dominatedBy[i] = append(dominatedBy[i], int32(j))
				indeg[j]++
			}
		}
	}
	var frontier []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	order := make([]int, 0, n)
	for len(frontier) > 0 {
		chosen := pick(frontier, rng)
		// Remove chosen from frontier.
		next := frontier[:0]
		for _, i := range frontier {
			if i != chosen {
				next = append(next, i)
			}
		}
		frontier = next
		remaining[chosen] = false
		order = append(order, chosen)
		for _, v := range dominatedBy[chosen] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, int(v))
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("hidden: dominance order has a cycle (data corrupted)")
	}
	return order, nil
}

// ParseRanking resolves the CLI ranking names shared by the commands:
// "sum", "lex", "random", or "attrN" (e.g. "attr0").
func ParseRanking(name string) (Ranking, error) {
	switch {
	case name == "sum":
		return SumRank{}, nil
	case name == "lex":
		return LexRank{}, nil
	case name == "random":
		return RandomWeightRank{Seed: 42}, nil
	case strings.HasPrefix(name, "attr"):
		var a int
		if _, err := fmt.Sscanf(name, "attr%d", &a); err != nil {
			return nil, fmt.Errorf("hidden: bad rank %q", name)
		}
		return AttrRank{Attr: a}, nil
	}
	return nil, fmt.Errorf("hidden: unknown ranking %q", name)
}
