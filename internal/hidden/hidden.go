// Package hidden simulates a hidden web database: an in-memory table served
// exclusively through a top-k conjunctive search interface with
// per-attribute capability restrictions (one-ended range, two-ended range,
// or point predicates) and a domination-consistent proprietary ranking
// function, exactly as modeled in "Discovering the Skyline of Web
// Databases" (Asudeh et al., 2016).
//
// Clients — the discovery algorithms in internal/core and the crawler in
// internal/crawl — may only call Query; they never see the raw tuples.
package hidden

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hiddensky/internal/query"
)

// Capability describes which predicates the interface supports on one
// attribute (the paper's SQ / RQ / PQ taxonomy).
type Capability uint8

const (
	// SQ supports one-ended ranges: <, <=, = (better-than queries).
	SQ Capability = iota
	// RQ supports two-ended ranges: <, <=, =, >=, >.
	RQ
	// PQ supports point predicates only: =.
	PQ
)

// String names the capability as in the paper.
func (c Capability) String() string {
	switch c {
	case SQ:
		return "SQ"
	case RQ:
		return "RQ"
	case PQ:
		return "PQ"
	}
	return fmt.Sprintf("Capability(%d)", uint8(c))
}

// Allows reports whether the capability admits the operator.
func (c Capability) Allows(op query.Op) bool {
	switch c {
	case SQ:
		return op == query.LT || op == query.LE || op == query.EQ
	case RQ:
		return true
	case PQ:
		return op == query.EQ
	}
	return false
}

// Errors returned by DB.Query.
var (
	// ErrUnsupportedPredicate is returned when a query uses an operator the
	// attribute's capability does not allow (the website would reject it).
	ErrUnsupportedPredicate = errors.New("hidden: predicate not supported by search interface")
	// ErrRateLimited is returned once the per-client query budget is
	// exhausted (the paper's per-IP / per-API-key limits).
	ErrRateLimited = errors.New("hidden: query rate limit exceeded")
	// ErrBadQuery is returned for malformed queries (unknown attribute...).
	ErrBadQuery = errors.New("hidden: malformed query")
)

// Result is the answer to a top-k query.
type Result struct {
	// Tuples holds at most k matching tuples in ranking order (best first).
	// Each tuple is a copy; callers may retain them.
	Tuples [][]int
	// Overflow is true when more than k tuples matched and the answer was
	// truncated. Real interfaces expose this as "showing k of many".
	Overflow bool
}

// Top returns the best-ranked returned tuple, or nil when empty.
func (r Result) Top() []int {
	if len(r.Tuples) == 0 {
		return nil
	}
	return r.Tuples[0]
}

// Config describes a hidden database to construct.
type Config struct {
	// Data holds the ranking-attribute values of each tuple; Data[i][j] is
	// tuple i's value on attribute j, smaller preferred.
	Data [][]int
	// Caps gives the interface capability per attribute. len(Caps) must
	// equal the attribute count.
	Caps []Capability
	// K is the top-k output limit (k >= 1).
	K int
	// Rank orders the tuples; it must be domination-consistent. When nil,
	// SumRank is used.
	Rank Ranking
	// QueryLimit, when positive, bounds the number of Query calls before
	// ErrRateLimited; zero means unlimited.
	QueryLimit int
	// Filters optionally carries per-tuple filtering-attribute values
	// (e.g., strings such as flight numbers). Filtering attributes have no
	// preferential order and no effect on the skyline; they are returned
	// alongside tuples by QueryFull for application use.
	Filters [][]string
	// Domains optionally overrides the advertised per-attribute value
	// ranges. Real search forms often advertise looser ranges than the
	// data occupies (a price slider starting at $0); each override must
	// contain the observed value range. Nil advertises the observed
	// ranges exactly.
	Domains []query.Interval
}

// rankState bundles the two views of one ranking — pos[i] is tuple i's
// position (smaller = ranked higher), byRank lists tuple indices
// best-ranked first. They must always swap together, so evaluate reads
// them through a single atomic pointer: Rerank publishes a complete
// replacement state and in-flight queries keep the one they loaded.
type rankState struct {
	pos    []int
	byRank []int32
}

// DB is the hidden database simulator.
type DB struct {
	data    [][]int
	filters [][]string
	caps    []Capability
	k       int
	domains []query.Interval

	// ranking is the current rankState; queries load it once and never
	// see a torn mix of old positions with a new by-rank order, which is
	// what lets Rerank drift the proprietary ranking mid-crawl without a
	// lock on the query path.
	ranking atomic.Pointer[rankState]

	// Query-evaluation indexes (behavioural no-ops; they only speed up
	// the simulator): colIdx[a] lists tuple indices sorted by attribute
	// a's value, so narrow queries scan only one value range. The
	// ranking-order index lives in rankState so it drifts atomically.
	colIdx [][]int32

	// mu guards the mutable counters so one DB can serve concurrent
	// clients (the HTTP layer in internal/web does exactly that).
	mu         sync.Mutex
	queries    int
	queryLimit int
}

// New builds a hidden database from cfg. It validates the configuration and
// precomputes the ranking order.
func New(cfg Config) (*DB, error) {
	if len(cfg.Data) == 0 {
		return nil, fmt.Errorf("hidden: empty database")
	}
	m := len(cfg.Data[0])
	if m == 0 {
		return nil, fmt.Errorf("hidden: tuples need at least one attribute")
	}
	for i, t := range cfg.Data {
		if len(t) != m {
			return nil, fmt.Errorf("hidden: tuple %d has %d attributes, want %d", i, len(t), m)
		}
	}
	if len(cfg.Caps) != m {
		return nil, fmt.Errorf("hidden: %d capabilities for %d attributes", len(cfg.Caps), m)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("hidden: k must be >= 1, got %d", cfg.K)
	}
	if cfg.Filters != nil && len(cfg.Filters) != len(cfg.Data) {
		return nil, fmt.Errorf("hidden: %d filter rows for %d tuples", len(cfg.Filters), len(cfg.Data))
	}
	rank := cfg.Rank
	if rank == nil {
		rank = SumRank{}
	}
	db := &DB{
		data:       cfg.Data,
		filters:    cfg.Filters,
		caps:       append([]Capability(nil), cfg.Caps...),
		k:          cfg.K,
		queryLimit: cfg.QueryLimit,
	}
	if err := db.Rerank(rank); err != nil {
		return nil, err
	}
	db.domains = make([]query.Interval, m)
	for j := 0; j < m; j++ {
		lo, hi := cfg.Data[0][j], cfg.Data[0][j]
		for _, t := range cfg.Data {
			if t[j] < lo {
				lo = t[j]
			}
			if t[j] > hi {
				hi = t[j]
			}
		}
		db.domains[j] = query.Interval{Lo: lo, Hi: hi}
	}
	if cfg.Domains != nil {
		if len(cfg.Domains) != m {
			return nil, fmt.Errorf("hidden: %d domain overrides for %d attributes", len(cfg.Domains), m)
		}
		for j, adv := range cfg.Domains {
			obs := db.domains[j]
			if adv.Lo > obs.Lo || adv.Hi < obs.Hi {
				return nil, fmt.Errorf("hidden: advertised domain %v of A%d does not contain the data range %v", adv, j, obs)
			}
			db.domains[j] = adv
		}
	}
	db.buildIndexes()
	return db, nil
}

// Rerank swaps the database's ranking function mid-flight — the paper's
// "proprietary ranking may change under the crawler" scenario, injected
// by the chaos layer as a recoverable fault. r must be
// domination-consistent like any Ranking (nil means SumRank); discovery
// stays exact because skyline membership never depends on the ranking,
// only query counts drift. Concurrent queries are safe: each loads one
// complete rank state.
func (db *DB) Rerank(r Ranking) error {
	if r == nil {
		r = SumRank{}
	}
	order, err := r.Order(db.data)
	if err != nil {
		return err
	}
	if len(order) != len(db.data) {
		return fmt.Errorf("hidden: ranking returned %d positions for %d tuples", len(order), len(db.data))
	}
	pos := make([]int, len(order))
	seen := make([]bool, len(order))
	for p, i := range order {
		if i < 0 || i >= len(order) || seen[i] {
			return fmt.Errorf("hidden: ranking order is not a permutation")
		}
		seen[i] = true
		pos[i] = p
	}
	byRank := make([]int32, len(order))
	for p, i := range order {
		byRank[p] = int32(i)
	}
	db.ranking.Store(&rankState{pos: pos, byRank: byRank})
	return nil
}

func (db *DB) buildIndexes() {
	n, m := len(db.data), len(db.caps)
	db.colIdx = make([][]int32, m)
	for a := 0; a < m; a++ {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.Slice(idx, func(x, y int) bool {
			return db.data[idx[x]][a] < db.data[idx[y]][a]
		})
		db.colIdx[a] = idx
	}
}

// MustNew is New that panics on error; convenient in tests and examples.
func MustNew(cfg Config) *DB {
	db, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// NumAttrs returns the number of ranking attributes m.
func (db *DB) NumAttrs() int { return len(db.caps) }

// Size returns the number of tuples n. A real hidden database would not
// reveal this; it is exposed for experiment bookkeeping only.
func (db *DB) Size() int { return len(db.data) }

// K returns the top-k output limit of the interface.
func (db *DB) K() int { return db.k }

// Cap returns the capability of attribute i.
func (db *DB) Cap(i int) Capability { return db.caps[i] }

// Caps returns a copy of all attribute capabilities.
func (db *DB) Caps() []Capability { return append([]Capability(nil), db.caps...) }

// Domain returns the observed domain of attribute i. Web interfaces
// advertise selectable value ranges in their search forms, so exposing this
// is faithful to practice.
func (db *DB) Domain(i int) query.Interval { return db.domains[i] }

// Domains returns a copy of all attribute domains.
func (db *DB) Domains() []query.Interval {
	return append([]query.Interval(nil), db.domains...)
}

// QueriesIssued returns the number of Query calls served so far (including
// rejected ones counts only successful executions).
func (db *DB) QueriesIssued() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.queries
}

// ResetCounter zeroes the query counter (between experiment runs).
func (db *DB) ResetCounter() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.queries = 0
}

// SetQueryLimit installs a per-client budget; 0 disables the limit.
func (db *DB) SetQueryLimit(limit int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.queryLimit = limit
}

// Query executes a conjunctive top-k query against the interface. It
// enforces per-attribute capabilities and the rate limit, then returns the
// k best-ranked matching tuples.
func (db *DB) Query(q query.Q) (Result, error) {
	res, _, err := db.queryInternal(q)
	return res, err
}

// QueryFull is Query but also returns the filtering-attribute rows aligned
// with the returned tuples (nil when the database has no filter columns).
func (db *DB) QueryFull(q query.Q) (Result, [][]string, error) {
	return db.queryInternal(q)
}

func (db *DB) queryInternal(q query.Q) (Result, [][]string, error) {
	for _, p := range q {
		if p.Attr < 0 || p.Attr >= len(db.caps) {
			return Result{}, nil, fmt.Errorf("%w: attribute A%d out of range", ErrBadQuery, p.Attr)
		}
		if !p.Op.Valid() {
			return Result{}, nil, fmt.Errorf("%w: bad operator", ErrBadQuery)
		}
		if !db.caps[p.Attr].Allows(p.Op) {
			return Result{}, nil, fmt.Errorf("%w: A%d is %s, operator %s",
				ErrUnsupportedPredicate, p.Attr, db.caps[p.Attr], p.Op)
		}
	}
	db.mu.Lock()
	if db.queryLimit > 0 && db.queries >= db.queryLimit {
		db.mu.Unlock()
		return Result{}, nil, ErrRateLimited
	}
	db.queries++
	db.mu.Unlock()

	matched, overflow := db.evaluate(q)
	out := Result{Overflow: overflow}
	var filters [][]string
	for _, i := range matched {
		out.Tuples = append(out.Tuples, append([]int(nil), db.data[i]...))
		if db.filters != nil {
			filters = append(filters, db.filters[i])
		}
	}
	return out, filters, nil
}

// evaluate returns the indices of the top-k matching tuples (rank order)
// and whether the match set overflowed k. Two plans, identical semantics:
// a narrow query scans only its most selective attribute's value range; a
// broad query scans tuples best-rank-first and stops at the k+1-st match.
func (db *DB) evaluate(q query.Q) ([]int32, bool) {
	rs := db.ranking.Load()
	box := q.Canonicalize(db.domains)
	if box.Empty() {
		return nil, false
	}
	n := len(db.data)
	bestAttr, bestLo, bestHi := -1, 0, n
	for a, iv := range box.Dims {
		dom := db.domains[a]
		if iv.Lo <= dom.Lo && iv.Hi >= dom.Hi {
			continue // unconstrained attribute
		}
		col := db.colIdx[a]
		lo := sort.Search(n, func(i int) bool { return db.data[col[i]][a] >= iv.Lo })
		hi := sort.Search(n, func(i int) bool { return db.data[col[i]][a] > iv.Hi })
		if hi-lo < bestHi-bestLo {
			bestAttr, bestLo, bestHi = a, lo, hi
		}
	}
	if bestAttr >= 0 && bestHi-bestLo <= n/4 {
		var matched []int32
		for _, i := range db.colIdx[bestAttr][bestLo:bestHi] {
			if box.Contains(db.data[i]) {
				matched = append(matched, i)
			}
		}
		overflow := len(matched) > db.k
		sort.Slice(matched, func(a, b int) bool { return rs.pos[matched[a]] < rs.pos[matched[b]] })
		if overflow {
			matched = matched[:db.k]
		}
		return matched, overflow
	}
	var matched []int32
	for _, i := range rs.byRank {
		if box.Contains(db.data[i]) {
			matched = append(matched, i)
			if len(matched) > db.k {
				return matched[:db.k], true
			}
		}
	}
	return matched, false
}

// GroundTruth exposes a copy of the raw data for offline verification in
// experiments and tests. Discovery algorithms must not call it.
func (db *DB) GroundTruth() [][]int {
	out := make([][]int, len(db.data))
	for i, t := range db.data {
		out[i] = append([]int(nil), t...)
	}
	return out
}
