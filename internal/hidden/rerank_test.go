package hidden

import (
	"math/rand"
	"sync"
	"testing"

	"hiddensky/internal/query"
)

// TestRerankChangesOrder verifies a mid-flight ranking swap takes effect:
// the same broad query returns its tuples in the new proprietary order.
func TestRerankChangesOrder(t *testing.T) {
	db := MustNew(Config{
		Data: [][]int{{1, 9}, {9, 1}, {5, 5}},
		Caps: capsOf("RR"),
		K:    1,
	})
	top := func() []int {
		res, err := db.Query(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Top()
	}
	// SumRank ties all three at 10; it breaks ties by index → tuple 0.
	if got := top(); got[0] != 1 || got[1] != 9 {
		t.Fatalf("SumRank top = %v", got)
	}
	if err := db.Rerank(AttrRank{Attr: 1}); err != nil {
		t.Fatal(err)
	}
	if got := top(); got[0] != 9 || got[1] != 1 {
		t.Fatalf("AttrRank{1} top = %v, want [9 1]", got)
	}
	if err := db.Rerank(nil); err != nil { // nil falls back to SumRank
		t.Fatal(err)
	}
	if got := top(); got[0] != 1 || got[1] != 9 {
		t.Fatalf("top after Rerank(nil) = %v", got)
	}
}

// TestRerankRejectsBadRanking ensures a broken ranking cannot corrupt the
// installed state: the error surfaces and queries keep the old order.
func TestRerankRejectsBadRanking(t *testing.T) {
	db := MustNew(Config{
		Data: [][]int{{1, 2}, {3, 4}},
		Caps: capsOf("RR"),
		K:    2,
	})
	if err := db.Rerank(badRank{}); err == nil {
		t.Fatal("Rerank accepted a non-permutation order")
	}
	res, err := db.Query(nil)
	if err != nil || len(res.Tuples) != 2 {
		t.Fatalf("query after rejected Rerank: %v, %v", res, err)
	}
}

type badRank struct{}

func (badRank) Order(data [][]int) ([]int, error) {
	out := make([]int, len(data))
	return out, nil // all zeros: not a permutation for n > 1
}

// TestRerankConcurrentWithQueries hammers Query from many goroutines
// while the ranking drifts underneath — the race detector proves the
// atomic state swap, and every answer must be internally consistent
// (top-1 of the loaded ranking, never a torn mix).
func TestRerankConcurrentWithQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := MustNew(Config{
		Data: randData(rng, 300, 3, 50),
		Caps: capsOf("RRR"),
		K:    5,
	})
	rankings := []Ranking{SumRank{}, AttrRank{Attr: 0}, AttrRank{Attr: 2},
		LexRank{Priority: []int{1, 0, 2}}, WeightedRank{Weights: []float64{1, 2, 3}}}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := query.Q{{Attr: r.Intn(3), Op: query.LE, Value: r.Intn(50)}}
				res, err := db.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				for _, tup := range res.Tuples {
					if len(tup) != 3 {
						t.Errorf("torn tuple %v", tup)
						return
					}
				}
			}
		}(int64(g))
	}
	for i := 0; i < 200; i++ {
		if err := db.Rerank(rankings[i%len(rankings)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
