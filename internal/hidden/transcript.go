package hidden

import (
	"encoding/json"
	"fmt"
	"io"

	"hiddensky/internal/query"
)

// Backend is the querying surface a Transcript wraps — satisfied by *DB,
// the web client, and any core.Interface implementation.
type Backend interface {
	Query(q query.Q) (Result, error)
	NumAttrs() int
	K() int
	Cap(i int) Capability
	Domain(i int) query.Interval
}

// TranscriptEntry is one recorded exchange.
type TranscriptEntry struct {
	Query    query.Q `json:"query"`
	Tuples   [][]int `json:"tuples"`
	Overflow bool    `json:"overflow"`
}

// Transcript records every query and answer flowing through it. Since the
// paper's algorithms are deterministic given the interface's answers, a
// transcript makes any discovery run reproducible offline: replay it with
// Replayer, inspect it for debugging, or persist it as evidence of what a
// live site answered (the paper's online experiments hinge on exactly such
// logs). Transcript itself implements Backend, so it drops in anywhere.
type Transcript struct {
	backend Backend
	Entries []TranscriptEntry
}

// Record wraps a backend for recording.
func Record(b Backend) *Transcript { return &Transcript{backend: b} }

// Query implements Backend, recording successful exchanges.
func (t *Transcript) Query(q query.Q) (Result, error) {
	res, err := t.backend.Query(q)
	if err != nil {
		return res, err
	}
	entry := TranscriptEntry{Query: q.Clone(), Overflow: res.Overflow}
	for _, tup := range res.Tuples {
		entry.Tuples = append(entry.Tuples, append([]int(nil), tup...))
	}
	t.Entries = append(t.Entries, entry)
	return res, nil
}

// NumAttrs implements Backend.
func (t *Transcript) NumAttrs() int { return t.backend.NumAttrs() }

// K implements Backend.
func (t *Transcript) K() int { return t.backend.K() }

// Cap implements Backend.
func (t *Transcript) Cap(i int) Capability { return t.backend.Cap(i) }

// Domain implements Backend.
func (t *Transcript) Domain(i int) query.Interval { return t.backend.Domain(i) }

// transcriptFile is the serialized form: schema plus exchanges.
type transcriptFile struct {
	K       int               `json:"k"`
	Caps    []string          `json:"caps"`
	Domains []query.Interval  `json:"domains"`
	Entries []TranscriptEntry `json:"entries"`
}

// Save persists the transcript (schema included) as JSON.
func (t *Transcript) Save(w io.Writer) error {
	f := transcriptFile{K: t.K(), Entries: t.Entries}
	for i := 0; i < t.NumAttrs(); i++ {
		f.Caps = append(f.Caps, t.Cap(i).String())
		f.Domains = append(f.Domains, t.Domain(i))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// Replayer serves previously recorded answers: a Backend with no database
// behind it. Queries are matched by their canonical box (predicate order
// and redundant bounds do not matter); an unrecorded query errors.
type Replayer struct {
	k       int
	caps    []Capability
	domains []query.Interval
	answers map[string]TranscriptEntry
}

// Replay builds a Replayer from a live transcript.
func (t *Transcript) Replay() *Replayer {
	r := &Replayer{k: t.K(), answers: map[string]TranscriptEntry{}}
	for i := 0; i < t.NumAttrs(); i++ {
		r.caps = append(r.caps, t.Cap(i))
		r.domains = append(r.domains, t.Domain(i))
	}
	for _, e := range t.Entries {
		r.answers[r.key(e.Query)] = e
	}
	return r
}

// ReadReplayer loads a persisted transcript into a Replayer.
func ReadReplayer(rd io.Reader) (*Replayer, error) {
	var f transcriptFile
	if err := json.NewDecoder(rd).Decode(&f); err != nil {
		return nil, fmt.Errorf("hidden: decoding transcript: %w", err)
	}
	if f.K < 1 || len(f.Caps) == 0 || len(f.Caps) != len(f.Domains) {
		return nil, fmt.Errorf("hidden: implausible transcript schema")
	}
	r := &Replayer{k: f.K, domains: f.Domains, answers: map[string]TranscriptEntry{}}
	for _, c := range f.Caps {
		switch c {
		case "SQ":
			r.caps = append(r.caps, SQ)
		case "RQ":
			r.caps = append(r.caps, RQ)
		case "PQ":
			r.caps = append(r.caps, PQ)
		default:
			return nil, fmt.Errorf("hidden: unknown capability %q in transcript", c)
		}
	}
	for _, e := range f.Entries {
		r.answers[r.key(e.Query)] = e
	}
	return r, nil
}

// ErrNotRecorded is returned when a replayed query was never recorded.
var ErrNotRecorded = fmt.Errorf("hidden: query not in transcript")

func (r *Replayer) key(q query.Q) string {
	box := q.Canonicalize(r.domains)
	return fmt.Sprint(box.Dims)
}

// Query implements Backend from the recorded answers.
func (r *Replayer) Query(q query.Q) (Result, error) {
	e, ok := r.answers[r.key(q)]
	if !ok {
		return Result{}, fmt.Errorf("%w: %s", ErrNotRecorded, q)
	}
	out := Result{Overflow: e.Overflow}
	for _, tup := range e.Tuples {
		out.Tuples = append(out.Tuples, append([]int(nil), tup...))
	}
	return out, nil
}

// NumAttrs implements Backend.
func (r *Replayer) NumAttrs() int { return len(r.caps) }

// K implements Backend.
func (r *Replayer) K() int { return r.k }

// Cap implements Backend.
func (r *Replayer) Cap(i int) Capability { return r.caps[i] }

// Domain implements Backend.
func (r *Replayer) Domain(i int) query.Interval { return r.domains[i] }

// Len reports how many distinct exchanges the replayer can answer.
func (r *Replayer) Len() int { return len(r.answers) }
