package hidden

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hiddensky/internal/query"
)

func TestTranscriptRecordsExchanges(t *testing.T) {
	db := MustNew(Config{Data: [][]int{{1, 2}, {3, 4}}, Caps: capsOf("RR"), K: 1})
	tr := Record(db)
	if _, err := tr.Query(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Query(query.Q{{Attr: 0, Op: query.GE, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 2 {
		t.Fatalf("%d entries", len(tr.Entries))
	}
	if tr.Entries[0].Query != nil && len(tr.Entries[0].Query) != 0 {
		t.Fatalf("first entry query %v", tr.Entries[0].Query)
	}
	if !tr.Entries[0].Overflow || tr.Entries[1].Overflow {
		t.Fatal("overflow flags misrecorded")
	}
	// Schema passthrough.
	if tr.K() != 1 || tr.NumAttrs() != 2 || tr.Cap(0) != RQ {
		t.Fatal("backend schema lost")
	}
	// Failed queries are not recorded.
	if _, err := tr.Query(query.Q{{Attr: 9, Op: query.EQ, Value: 0}}); err == nil {
		t.Fatal("bad query accepted")
	}
	if len(tr.Entries) != 2 {
		t.Fatal("failed query recorded")
	}
}

func TestReplayerAnswersEquivalentQueries(t *testing.T) {
	db := MustNew(Config{Data: [][]int{{1, 2}, {3, 4}, {5, 0}}, Caps: capsOf("RR"), K: 2})
	tr := Record(db)
	orig, err := tr.Query(query.Q{{Attr: 0, Op: query.LE, Value: 4}})
	if err != nil {
		t.Fatal(err)
	}
	rp := tr.Replay()
	// Same box, different spelling: A0 <= 4 is A0 < 5 over this domain.
	res, err := rp.Query(query.Q{{Attr: 0, Op: query.LT, Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Tuples) != fmt.Sprint(orig.Tuples) || res.Overflow != orig.Overflow {
		t.Fatalf("replay mismatch: %v vs %v", res, orig)
	}
	// Unrecorded queries error.
	if _, err := rp.Query(query.Q{{Attr: 1, Op: query.GE, Value: 3}}); !errors.Is(err, ErrNotRecorded) {
		t.Fatalf("want ErrNotRecorded, got %v", err)
	}
	if rp.Len() != 1 {
		t.Fatalf("replayer holds %d answers", rp.Len())
	}
}

func TestTranscriptPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := MustNew(Config{Data: randData(rng, 60, 3, 8), Caps: capsOf("SRP"), K: 3})
	tr := Record(db)
	queries := []query.Q{
		nil,
		{{Attr: 0, Op: query.LT, Value: 5}},
		{{Attr: 2, Op: query.EQ, Value: 2}},
		{{Attr: 1, Op: query.GE, Value: 4}, {Attr: 0, Op: query.LE, Value: 6}},
	}
	want := make([]Result, len(queries))
	for i, q := range queries {
		res, err := tr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rp, err := ReadReplayer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.K() != 3 || rp.NumAttrs() != 3 || rp.Cap(2) != PQ {
		t.Fatal("schema lost in round trip")
	}
	for i, q := range queries {
		res, err := rp.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if fmt.Sprint(res.Tuples) != fmt.Sprint(want[i].Tuples) {
			t.Fatalf("query %d: %v vs %v", i, res.Tuples, want[i].Tuples)
		}
	}
}

func TestReadReplayerValidation(t *testing.T) {
	for _, bad := range []string{
		``,
		`{}`,
		`{"k":1,"caps":["XX"],"domains":[{"Lo":0,"Hi":1}],"entries":[]}`,
		`{"k":1,"caps":["RQ","RQ"],"domains":[{"Lo":0,"Hi":1}],"entries":[]}`,
	} {
		if _, err := ReadReplayer(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("transcript %q accepted", bad)
		}
	}
}

func TestReplayerAnswersAreCopies(t *testing.T) {
	db := MustNew(Config{Data: [][]int{{1, 2}}, Caps: capsOf("RR"), K: 1})
	tr := Record(db)
	if _, err := tr.Query(nil); err != nil {
		t.Fatal(err)
	}
	rp := tr.Replay()
	a, _ := rp.Query(nil)
	a.Tuples[0][0] = 99
	b, _ := rp.Query(nil)
	if b.Tuples[0][0] != 1 {
		t.Fatal("replayer leaked shared storage")
	}
}
