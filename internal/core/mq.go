package core

import (
	"sort"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// MQDBSky discovers the complete skyline of a database whose interface
// mixes one-ended range (SQ), two-ended range (RQ) and point (PQ)
// attributes — the paper's Algorithm 6. Pure interfaces dispatch to the
// specialized algorithms. For genuine mixtures it proceeds in two phases:
//
//  1. a range phase running the SQ/RQ query tree over the range attributes
//     with the point attributes unconstrained (every tuple it returns is a
//     global skyline tuple);
//  2. a point phase that finds the tuples the range phase must miss — those
//     range-dominated by a discovered tuple but superior on some point
//     attribute. The search space is pruned by appending
//     "A_j >= min_{t in S} t[A_j]" for each two-ended range attribute
//     (eq. 17), point-value combinations are enumerated hierarchically so
//     that one empty probe discards a whole sub-lattice (MIXED-DB-SKY's
//     premise), combinations weakly point-dominated by every discovered
//     tuple are skipped outright, and each surviving cell is resolved by
//     re-running the range-phase tree inside the cell (a tuple dominated
//     within its cell is dominated globally, so the cell skyline suffices).
func MQDBSky(db Interface, opt Options) (Result, error) {
	db, opt = prepare(db, opt)
	sqA, rqA, pqA := attrsByCap(db)
	switch {
	case len(pqA) == 0 && len(rqA) == 0:
		return SQDBSky(db, opt)
	case len(pqA) == 0:
		return RQDBSky(db, opt)
	case len(sqA) == 0 && len(rqA) == 0:
		return PQDBSky(db, opt)
	}

	c := newCtx(db, opt)
	pool := c.newPool()
	if pool != nil {
		defer pool.Close()
	}
	rangeAttrs := append(append([]int(nil), sqA...), rqA...)
	sort.Ints(rangeAttrs)
	me := make([]bool, len(rangeAttrs))
	anyRQ := false
	for j, a := range rangeAttrs {
		me[j] = db.Cap(a) == hidden.RQ
		anyRQ = anyRQ || me[j]
	}

	// Phase 1: range-attribute skyline (point attributes set to "*"). The
	// pruning bound of phase 2 needs the complete phase-1 skyline, so the
	// parallel run drains the pool (a barrier) before moving on.
	w := newTreeWalker(c, nil, rangeAttrs, me, anyRQ)
	if pool != nil {
		w.runOn(pool)
		if err := pool.Wait(); err != nil {
			return c.result(err)
		}
	} else if err := w.run(); err != nil {
		return c.result(err)
	}
	phase1 := c.skySnapshot()
	if len(phase1) == 0 {
		return c.result(nil) // empty database
	}

	// eq. 17: prune the point phase to the region range-dominated by the
	// union of discovered tuples, expressible only on two-ended attributes.
	var pruneP query.Q
	for _, a := range rqA {
		min := phase1[0][a]
		for _, t := range phase1[1:] {
			if t[a] < min {
				min = t[a]
			}
		}
		if min > c.domains[a].Lo {
			pruneP = append(pruneP, query.Predicate{Attr: a, Op: query.GE, Value: min})
		}
	}

	err := mqPointPhase(c, pruneP, pqA, rangeAttrs, me, anyRQ, phase1)
	if pool != nil {
		// The probe loop schedules cell trees asynchronously; drain them.
		if werr := pool.Wait(); err == nil {
			err = werr
		}
	}
	return c.result(err)
}

// mqPointPhase hierarchically enumerates point-attribute value
// combinations: a probe query pinning a prefix (deeper point attributes
// free) that returns empty discards the entire completion sub-lattice. At
// full depth the cell is explored with the range-phase tree walker, seeded
// with the probe's answer to avoid re-issuing the cell's root query.
func mqPointPhase(c *ctx, pruneP query.Q, pqA, rangeAttrs []int, me []bool, anyRQ bool, phase1 [][]int) error {
	prefix := make(query.Q, 0, len(pqA))
	var rec func(d int) error
	rec = func(d int) error {
		dom := c.domains[pqA[d]]
		for v := dom.Lo; v <= dom.Hi; v++ {
			if c.pool != nil {
				if err := c.pool.Err(); err != nil {
					return err // a cell tree hit the budget: stop probing
				}
			}
			pfx := append(prefix, query.Predicate{Attr: pqA[d], Op: query.EQ, Value: v})
			if d == len(pqA)-1 && mqSkippableCombo(pfx, pqA, phase1) {
				continue
			}
			probe := append(pruneP.Clone(), pfx...)
			res, err := c.issue(probe)
			if err != nil {
				return err
			}
			if len(res.Tuples) == 0 {
				continue // nothing in this sub-lattice
			}
			c.mergeAll(res.Tuples)
			if d < len(pqA)-1 {
				prefix = pfx
				if err := rec(d + 1); err != nil {
					return err
				}
				prefix = pfx[:len(pfx)-1]
				continue
			}
			if !c.overflowed(res) {
				continue // probe returned the whole cell
			}
			// Resolve the overflowing cell with the range-phase tree,
			// reusing the probe answer as the root node's result. Cells are
			// independent, so the parallel run lets their trees resolve on
			// the pool while probing continues.
			w := newTreeWalker(c, probe, rangeAttrs, me, anyRQ)
			if c.pool != nil {
				w.runSeededOn(c.pool, res)
				continue
			}
			if err := w.runSeeded(res); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// mqSkippableCombo reports whether the full point-value combination is
// weakly point-dominated by every phase-1 tuple: any undiscovered tuple
// with these point values would be range-dominated by some phase-1 tuple
// that is also no worse on every point attribute, hence dominated globally.
func mqSkippableCombo(combo query.Q, pqA []int, phase1 [][]int) bool {
	for _, t := range phase1 {
		worse := false
		for i, a := range pqA {
			if t[a] > combo[i].Value {
				worse = true
				break
			}
		}
		if worse {
			return false
		}
	}
	return true
}
