package core

import (
	"math"
	"math/rand"
	"testing"

	"hiddensky/internal/analysis"
	"hiddensky/internal/hidden"
)

// TestAverageCaseRecurrenceMonteCarlo validates the paper's central
// average-case result empirically: for a database whose tuples are all on
// the skyline (an antichain with tie-free attributes), the expected
// SQ-DB-SKY query cost under a uniformly random domination-consistent
// ranking is E(C_s) of equation (4) — a function of m and |S| only.
//
// On an antichain the dominance order has no constraints, so a random
// linear extension is a uniform permutation and every query's top-1 is
// uniform over its matching skyline tuples — exactly the model of §3.2.
func TestAverageCaseRecurrenceMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo simulation skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct {
		m, s, trials int
		tol          float64
	}{
		{2, 1, 200, 0.02}, // deterministic: every ranking costs m+1
		{2, 4, 400, 0.10},
		{2, 9, 300, 0.10},
		{3, 5, 400, 0.12},
		{4, 4, 400, 0.12},
	} {
		data := antichain(rng, tc.s, tc.m)
		want := analysis.AvgCostRecurrence(tc.m, tc.s)
		sum := 0.0
		for trial := 0; trial < tc.trials; trial++ {
			db, err := hidden.New(hidden.Config{
				Data: data,
				Caps: capsAll(tc.m, hidden.SQ),
				K:    1,
				Rank: hidden.RandomExtensionRank{Seed: int64(trial + 1)},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := SQDBSky(db, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Skyline) != tc.s {
				t.Fatalf("m=%d s=%d: discovered %d skyline tuples", tc.m, tc.s, len(res.Skyline))
			}
			sum += float64(res.Queries)
		}
		mean := sum / float64(tc.trials)
		if rel := math.Abs(mean-want) / want; rel > tc.tol {
			t.Errorf("m=%d s=%d: mean cost %.2f vs E(C_s)=%.2f (rel err %.1f%% > %.0f%%)",
				tc.m, tc.s, mean, want, 100*rel, 100*tc.tol)
		}
	}
}

// antichain builds s mutually non-dominated tuples over m attributes with
// distinct values on every attribute: attribute 0 ascends while attribute
// 1 descends (guaranteeing incomparability), and any further attributes
// carry random distinct values.
func antichain(rng *rand.Rand, s, m int) [][]int {
	data := make([][]int, s)
	perms := make([][]int, m)
	for a := 2; a < m; a++ {
		perms[a] = rng.Perm(s)
	}
	for i := 0; i < s; i++ {
		tup := make([]int, m)
		tup[0] = i
		if m > 1 {
			tup[1] = s - 1 - i
		}
		for a := 2; a < m; a++ {
			tup[a] = perms[a][i]
		}
		data[i] = tup
	}
	return data
}

// TestRealRankingBeatsAverageCase checks the paper's final §3.2 claim: a
// "reasonable" ranking function (here: sum of attributes) costs less than
// the random-ranking average, because top-ranked tuples tend to win on
// many attributes at once, emptying more branches.
func TestRealRankingBeatsAverageCase(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	worse := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		s := 5 + rng.Intn(8)
		data := antichain(rng, s, 3)
		db := mkDB(t, data, capsAll(3, hidden.SQ), 1, hidden.SumRank{})
		res, err := SQDBSky(db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Queries) > analysis.AvgCostRecurrence(3, s) {
			worse++
		}
	}
	if worse > trials/4 {
		t.Errorf("sum ranking exceeded the average-case cost in %d of %d trials", worse, trials)
	}
}
