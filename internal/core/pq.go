package core

import (
	"sort"

	"hiddensky/internal/query"
)

// PQDBSky discovers the complete skyline of a point-predicate database of
// any dimensionality — the paper's Algorithm 5. It spans a 2D subspace on
// the two attributes with the largest domains (their cost is additive; the
// remaining attributes' is multiplicative), enumerates the value
// combinations of the remaining attributes in preferential order, and runs
// the pruned-subspace routine PQ-2DSUB-SKY (Algorithm 4) on each plane.
func PQDBSky(db Interface, opt Options) (Result, error) {
	db, opt = prepare(db, opt)
	c := newCtx(db, opt)
	if p := c.newPool(); p != nil {
		defer p.Close()
		err := pqdbRun(c)
		if werr := p.Wait(); err == nil {
			err = werr
		}
		return c.result(err)
	}
	return c.result(pqdbRun(c))
}

func pqdbRun(c *ctx) error {
	switch c.m {
	case 1:
		return pq1dRun(c)
	case 2:
		// One plane is one inherently sequential shorter-side sweep; the
		// parallel executor gains nothing below three dimensions.
		return pq2dRun(c)
	}
	res, err := c.issue(nil) // SELECT *
	if err != nil {
		return err
	}
	if len(res.Tuples) == 0 {
		return nil
	}
	c.mergeAll(res.Tuples)
	if !c.overflowed(res) {
		return nil // the whole database fit in one answer
	}
	seed := res.Tuples // rule (a) pruning source: SELECT * contains every subspace

	d1, d2 := widestAttrs(c)
	var others []int
	for a := 0; a < c.m; a++ {
		if a != d1 && a != d2 {
			others = append(others, a)
		}
	}
	if c.pool != nil {
		// Each 2D subspace is an independent branch of Algorithm 5: spawn
		// one plane sweep per value combination of the pinned attributes.
		// The rule-(b) pruning inside each sweep reads a snapshot of the
		// shared candidate skyline — sound under any schedule, since every
		// snapshot tuple is a real database tuple.
		return enumerateCombos(c, others, func(vc []int) error {
			if err := c.pool.Err(); err != nil {
				return err // budget gone: stop scheduling doomed sweeps
			}
			vcc := append([]int(nil), vc...)
			c.pool.Spawn(func() error {
				return pqSubspaceRun(c, d1, d2, others, vcc, seed)
			})
			return nil
		})
	}
	return enumerateCombos(c, others, func(vc []int) error {
		return pqSubspaceRun(c, d1, d2, others, vc, seed)
	})
}

// pq1dRun handles the degenerate single-attribute case: the SELECT * top
// answer is the minimum, and under the general positioning assumption it is
// the unique skyline tuple.
func pq1dRun(c *ctx) error {
	res, err := c.issue(nil)
	if err != nil {
		return err
	}
	if len(res.Tuples) == 0 {
		return nil
	}
	c.mergeAll(res.Tuples)
	if c.overflowed(res) {
		// Fetch possible ties on the minimum explicitly.
		eq, err := c.issue(query.Q{{Attr: 0, Op: query.EQ, Value: res.Tuples[0][0]}})
		if err != nil {
			return err
		}
		c.mergeAll(eq.Tuples)
	}
	return nil
}

// widestAttrs returns the two attributes with the largest domains, the
// paper's dimension-selection heuristic for Algorithm 5.
func widestAttrs(c *ctx) (int, int) {
	idx := allAttrs(c.m)
	sort.SliceStable(idx, func(a, b int) bool {
		return c.domains[idx[a]].Len() > c.domains[idx[b]].Len()
	})
	d1, d2 := idx[0], idx[1]
	if d1 > d2 {
		d1, d2 = d2, d1
	}
	return d1, d2
}

// enumerateCombos visits every value combination of the given attributes in
// ascending lexicographic order — a linear extension of the product
// preferential order, which underpins the anytime property of Algorithm 5.
func enumerateCombos(c *ctx, attrs []int, visit func(vc []int) error) error {
	vc := make([]int, len(attrs))
	var rec func(d int) error
	rec = func(d int) error {
		if d == len(attrs) {
			return visit(vc)
		}
		dom := c.domains[attrs[d]]
		for v := dom.Lo; v <= dom.Hi; v++ {
			vc[d] = v
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// pqSubspaceRun is PQ-2DSUB-SKY (Algorithm 4): explore the 2D subspace at
// fixed other-attribute values vc, first injecting both pruning rules:
//
//   - rule (a): a tuple t answered by a query containing this subspace with
//     t[other] >= vc everywhere proves the lower-left rectangle
//     (0,0)-(t[d1],t[d2]) holds no subspace tuple (it would have outranked
//     t in that answer);
//   - rule (b): a discovered tuple t with t[other] <= vc everywhere
//     dominates the upper-right rectangle (t[d1],t[d2])-(max,max).
func pqSubspaceRun(c *ctx, d1, d2 int, others []int, vc []int, seed [][]int) error {
	fixed := make(query.Q, len(others))
	for i, a := range others {
		fixed[i] = query.Predicate{Attr: a, Op: query.EQ, Value: vc[i]}
	}
	p := newPlane(c, d1, d2, fixed)

	geq := func(t []int) bool { // t[other] >= vc componentwise
		for i, a := range others {
			if t[a] < vc[i] {
				return false
			}
		}
		return true
	}
	leq := func(t []int) bool { // t[other] <= vc componentwise
		for i, a := range others {
			if t[a] > vc[i] {
				return false
			}
		}
		return true
	}
	for _, t := range seed {
		if geq(t) {
			p.pruneEmptyRect(t[d1], t[d2])
		}
	}
	for _, t := range c.skySnapshot() {
		if leq(t) {
			p.pruneDominatedRect(t[d1], t[d2])
		}
	}
	return p.run()
}
