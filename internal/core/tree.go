package core

import (
	"sync"

	"hiddensky/internal/engine"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// treeWalker implements the divide-and-conquer query tree shared by
// SQ-DB-SKY (Algorithm 1) and RQ-DB-SKY (Algorithm 2). Each node is a
// conjunctive query; a node that overflows branches into one child per
// branching attribute, appending "A_i < t[A_i]" for the node's branching
// tuple t. RQ mode additionally maintains the mutually-exclusive
// counterpart R(q) of each node (lower bounds from earlier branches) and
// the Seen set enabling early termination.
type treeWalker struct {
	c     *ctx
	base  query.Q // predicates appended to every issued query (cell phase)
	attrs []int   // branching attribute indices, in branch order
	me    []bool  // me[j]: attrs[j] supports ">=" and participates in R(q)
	rq    bool    // Algorithm 2 mode (Seen check + R(q)); false = Algorithm 1

	mu       sync.Mutex // guards seen/seenKeys when sibling subtrees run in parallel
	seen     [][]int    // every tuple returned so far (RQ mode), oldest first
	seenKeys map[string]bool
}

// node is one query-tree node. ub[j] is the exclusive upper bound on
// attrs[j] accumulated from "<" predicates (domain.Hi+1 when unbounded);
// lb[j] is the inclusive lower bound of R(q) accumulated from ">="
// predicates (domain.Lo when unbounded).
type node struct {
	ub []int
	lb []int
}

func newTreeWalker(c *ctx, base query.Q, attrs []int, me []bool, rqMode bool) *treeWalker {
	return &treeWalker{c: c, base: base, attrs: attrs, me: me, rq: rqMode, seenKeys: map[string]bool{}}
}

func (w *treeWalker) root() node {
	ub := make([]int, len(w.attrs))
	lb := make([]int, len(w.attrs))
	for j, a := range w.attrs {
		ub[j] = w.c.domains[a].Hi + 1
		lb[j] = w.c.domains[a].Lo
	}
	return node{ub: ub, lb: lb}
}

// buildQ renders the node's SQ-form query: base plus one "<" predicate per
// bounded branching attribute.
func (w *treeWalker) buildQ(n node) query.Q {
	q := w.base.Clone()
	for j, a := range w.attrs {
		if n.ub[j] <= w.c.domains[a].Hi {
			q = append(q, query.Predicate{Attr: a, Op: query.LT, Value: n.ub[j]})
		}
	}
	return q
}

// buildR renders R(q): the SQ-form query plus the ">=" lower bounds that
// make sibling subtrees mutually exclusive.
func (w *treeWalker) buildR(n node) query.Q {
	q := w.buildQ(n)
	for j, a := range w.attrs {
		if w.me[j] && n.lb[j] > w.c.domains[a].Lo {
			q = append(q, query.Predicate{Attr: a, Op: query.GE, Value: n.lb[j]})
		}
	}
	return q
}

// children expands a node using branching tuple b: child j appends
// "A_j < b[A_j]" to q, and (in RQ mode) "A_i >= b[A_i]" for earlier
// branches i < j to R(q).
func (w *treeWalker) children(n node, b []int) []node {
	kids := make([]node, 0, len(w.attrs))
	for j := range w.attrs {
		ub := append([]int(nil), n.ub...)
		lb := append([]int(nil), n.lb...)
		if v := b[w.attrs[j]]; v < ub[j] {
			ub[j] = v
		}
		for i := 0; i < j; i++ {
			if w.me[i] {
				if v := b[w.attrs[i]]; v > lb[i] {
					lb[i] = v
				}
			}
		}
		kids = append(kids, node{ub: ub, lb: lb})
	}
	return kids
}

// matchesQ reports whether tuple t satisfies the node's SQ-form query,
// including the base predicates.
func (w *treeWalker) matchesQ(n node, t []int) bool {
	if !w.base.Matches(t) {
		return false
	}
	for j, a := range w.attrs {
		if t[a] >= n.ub[j] {
			return false
		}
	}
	return true
}

// anySeenMatches implements Algorithm 2's early-termination test. Newest
// tuples are checked first: a node's query space usually overlaps what its
// recently-explored siblings returned, so the scan exits early in practice.
func (w *treeWalker) anySeenMatches(n node) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := len(w.seen) - 1; i >= 0; i-- {
		if w.matchesQ(n, w.seen[i]) {
			return true
		}
	}
	return false
}

// run traverses the whole tree. SQ mode uses the FIFO queue of Algorithm 1;
// RQ mode uses the depth-first preorder of Algorithm 2 (required for the
// post-order mapping that defines R(q)).
func (w *treeWalker) run() error {
	if w.rq {
		return w.walkRQ(w.root())
	}
	return w.runQueue([]node{w.root()})
}

// runSeeded is run with the root node's answer already in hand (the mixed
// algorithm's cell probe doubles as the cell tree's root query).
func (w *treeWalker) runSeeded(root hidden.Result) error {
	n := w.root()
	w.noteSeen(root.Tuples)
	if !w.c.overflowed(root) {
		return nil
	}
	kids := w.children(n, root.Tuples[0])
	if w.rq {
		for _, kid := range kids {
			if err := w.walkRQ(kid); err != nil {
				return err
			}
		}
		return nil
	}
	return w.runQueue(kids)
}

func (w *treeWalker) runQueue(queue []node) error {
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		q := w.buildQ(n)
		if w.c.opt.SkipProvablyEmpty && w.c.provablyEmpty(q) {
			continue
		}
		res, err := w.c.issue(q)
		if err != nil {
			return err
		}
		w.c.mergeAll(res.Tuples)
		if w.c.overflowed(res) {
			queue = append(queue, w.children(n, res.Tuples[0])...)
		}
	}
	return nil
}

// walkRQ is the recursive body of Algorithm 2.
func (w *treeWalker) walkRQ(n node) error {
	var branch []int
	if !w.anySeenMatches(n) {
		q := w.buildQ(n)
		if w.c.opt.SkipProvablyEmpty && w.c.provablyEmpty(q) {
			return nil
		}
		res, err := w.c.issue(q)
		if err != nil {
			return err
		}
		w.noteSeen(res.Tuples)
		w.c.mergeAll(res.Tuples)
		if !w.c.overflowed(res) {
			return nil
		}
		branch = res.Tuples[0]
	} else {
		rq := w.buildR(n)
		if w.c.opt.SkipProvablyEmpty && w.c.provablyEmpty(rq) {
			return nil
		}
		res, err := w.c.issue(rq)
		if err != nil {
			return err
		}
		if len(res.Tuples) == 0 {
			return nil // no undiscovered tuple below this subtree: abandon
		}
		t0 := res.Tuples[0]
		branch = t0
		if s := w.c.findDominator(t0); s != nil {
			branch = s
		}
		w.noteSeen(res.Tuples)
		w.c.mergeAll(res.Tuples)
		if !w.c.overflowed(res) {
			return nil
		}
	}
	for _, kid := range w.children(n, branch) {
		if err := w.walkRQ(kid); err != nil {
			return err
		}
	}
	return nil
}

// runOn schedules the whole traversal as tasks on the bounded worker pool
// and returns immediately; the caller drains the pool with Wait. Sibling
// subtrees are independent branches of the divide-and-conquer cascade, so
// each becomes its own task. Correctness is schedule-independent: the
// R(q)-empty early termination is a ground-truth statement about the
// database (no tuple of q's region lies outside the sibling cover), and
// the branch-tuple corner cut only ever removes tuples dominated by an
// already-merged tuple — neither depends on which subtree finishes first.
// Query counts may differ from the sequential run (the Seen set fills in a
// different order) but the discovered skyline is the same set.
func (w *treeWalker) runOn(p *engine.Pool) {
	p.Spawn(w.task(p, w.root()))
}

// runSeededOn is runOn with the root node's answer already in hand (the
// mixed algorithm's cell probe doubles as the cell tree's root query).
func (w *treeWalker) runSeededOn(p *engine.Pool, root hidden.Result) {
	n := w.root()
	w.noteSeen(root.Tuples)
	if !w.c.overflowed(root) {
		return
	}
	for _, kid := range w.children(n, root.Tuples[0]) {
		p.Spawn(w.task(p, kid))
	}
}

// task returns the pool task processing one tree node: issue the node's
// query (or its R(q) counterpart in RQ mode) and spawn one task per child
// subtree. It mirrors runQueue's body (SQ mode) and walkRQ's body (RQ
// mode) exactly, with recursion replaced by Spawn.
func (w *treeWalker) task(p *engine.Pool, n node) func() error {
	return func() error {
		var branch []int
		if !w.rq || !w.anySeenMatches(n) {
			q := w.buildQ(n)
			if w.c.opt.SkipProvablyEmpty && w.c.provablyEmpty(q) {
				return nil
			}
			res, err := w.c.issue(q)
			if err != nil {
				return err
			}
			w.noteSeen(res.Tuples)
			w.c.mergeAll(res.Tuples)
			if !w.c.overflowed(res) {
				return nil
			}
			branch = res.Tuples[0]
		} else {
			rq := w.buildR(n)
			if w.c.opt.SkipProvablyEmpty && w.c.provablyEmpty(rq) {
				return nil
			}
			res, err := w.c.issue(rq)
			if err != nil {
				return err
			}
			if len(res.Tuples) == 0 {
				return nil // no undiscovered tuple below this subtree: abandon
			}
			t0 := res.Tuples[0]
			branch = t0
			if s := w.c.findDominator(t0); s != nil {
				branch = s
			}
			w.noteSeen(res.Tuples)
			w.c.mergeAll(res.Tuples)
			if !w.c.overflowed(res) {
				return nil
			}
		}
		for _, kid := range w.children(n, branch) {
			p.Spawn(w.task(p, kid))
		}
		return nil
	}
}

func (w *treeWalker) noteSeen(ts [][]int) {
	if !w.rq {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, t := range ts {
		key := tupleKey(t)
		if !w.seenKeys[key] {
			w.seenKeys[key] = true
			w.seen = append(w.seen, append([]int(nil), t...))
		}
	}
}

// allAttrs returns [0, m).
func allAttrs(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// SQDBSky discovers the complete skyline through a one-ended-range (SQ)
// interface — the paper's Algorithm 1. It also runs unchanged on RQ
// interfaces (a strictly stronger capability).
func SQDBSky(db Interface, opt Options) (Result, error) {
	db, opt = prepare(db, opt)
	c := newCtx(db, opt)
	attrs := allAttrs(c.m)
	w := newTreeWalker(c, nil, attrs, make([]bool, len(attrs)), false)
	if p := c.newPool(); p != nil {
		defer p.Close()
		w.runOn(p)
		return c.result(p.Wait())
	}
	return c.result(w.run())
}

// RQDBSky discovers the complete skyline through a two-ended-range (RQ)
// interface — the paper's Algorithm 2, which prunes subtrees whose
// mutually-exclusive counterpart R(q) proves empty. Attributes that only
// support one-ended ranges are handled by omitting their ">=" bounds from
// R(q), which keeps the traversal correct (R(q) only grows, so no subtree
// is abandoned wrongly) at some loss of pruning power.
func RQDBSky(db Interface, opt Options) (Result, error) {
	db, opt = prepare(db, opt)
	c := newCtx(db, opt)
	attrs := allAttrs(c.m)
	me := make([]bool, len(attrs))
	for j, a := range attrs {
		me[j] = db.Cap(a) == hidden.RQ
	}
	w := newTreeWalker(c, nil, attrs, me, true)
	if p := c.newPool(); p != nil {
		defer p.Close()
		w.runOn(p)
		return c.result(p.Wait())
	}
	return c.result(w.run())
}
