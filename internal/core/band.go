package core

import (
	"fmt"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

// BandResult is the outcome of a K-skyband discovery run (§7.2). Band
// discovery assumes the paper's general positioning: tuples with identical
// ranking-attribute values are indistinguishable through a value-level
// interface, so duplicate rows would make domination counts undercount.
type BandResult struct {
	// Tuples holds the K-skyband: every tuple dominated by fewer than K
	// others, in discovery order.
	Tuples [][]int
	// Counts[i] is the number of database tuples dominating Tuples[i]
	// (exact for complete runs: every dominator of a band tuple sits in a
	// lower band level and is therefore itself discovered).
	Counts []int
	// Queries is the number of interface queries issued.
	Queries int
	// Complete is false when the run was interrupted by the budget or ran
	// in the SQ interface's inherently partial mode.
	Complete bool
}

// bandCollector accumulates every discovered tuple (deduplicated) during a
// band run; band membership is decided at the end by counting dominators
// inside the discovered set.
type bandCollector struct {
	tuples [][]int
}

func (bc *bandCollector) add(ts [][]int) {
	for _, t := range ts {
		dup := false
		for _, u := range bc.tuples {
			if skyline.Equal(u, t) {
				dup = true
				break
			}
		}
		if !dup {
			bc.tuples = append(bc.tuples, append([]int(nil), t...))
		}
	}
}

func (bc *bandCollector) finish(kBand, queries int, complete bool) BandResult {
	counts := skyline.DominationCount(bc.tuples)
	res := BandResult{Queries: queries, Complete: complete}
	for i, t := range bc.tuples {
		if counts[i] < kBand {
			res.Tuples = append(res.Tuples, t)
			res.Counts = append(res.Counts, counts[i])
		}
	}
	return res
}

// RQBandSky discovers the K-skyband through a two-ended-range interface.
// Following §7.2, it first discovers the skyline with RQ-DB-SKY, then for
// each band tuple t of level h-1 re-runs the discovery inside t's strict
// domination subspace, which is covered by m mutually exclusive branches
// "A_i = t[A_i] (i < j), A_j > t[A_j], A_i >= t[A_i] (i > j)". The number
// of re-runs is |top-(K-1) band| plus one, exactly as the paper argues.
func RQBandSky(db Interface, kBand int, opt Options) (BandResult, error) {
	if kBand < 1 {
		return BandResult{}, fmt.Errorf("core: band level must be >= 1, got %d", kBand)
	}
	for i := 0; i < db.NumAttrs(); i++ {
		if db.Cap(i) != hidden.RQ {
			return BandResult{}, fmt.Errorf("core: RQBandSky needs two-ended ranges on every attribute; A%d is %s", i, db.Cap(i))
		}
	}
	db, opt = prepare(db, opt)
	c := newCtx(db, opt)
	var bc bandCollector

	runTree := func(base query.Q) error {
		c.sky = nil // each sub-run keeps its own candidate skyline
		c.merged = map[string]bool{}
		attrs := allAttrs(c.m)
		me := make([]bool, c.m)
		for j := range me {
			me[j] = true
		}
		w := newTreeWalker(c, base, attrs, me, true)
		err := w.run()
		bc.add(c.sky)
		return err
	}

	if err := runTree(nil); err != nil {
		return bc.finish(kBand, c.queries, false), err
	}
	frontier := append([][]int(nil), bc.tuples...)
	explored := map[string]bool{}
	for level := 2; level <= kBand; level++ {
		var next [][]int
		for _, t := range frontier {
			key := fmt.Sprint(t)
			if explored[key] {
				continue
			}
			explored[key] = true
			before := len(bc.tuples)
			// Cover {u : t dominates u} with m disjoint branches.
			for j := 0; j < c.m; j++ {
				base := make(query.Q, 0, c.m)
				for i := 0; i < j; i++ {
					base = append(base, query.Predicate{Attr: i, Op: query.EQ, Value: t[i]})
				}
				base = append(base, query.Predicate{Attr: j, Op: query.GT, Value: t[j]})
				for i := j + 1; i < c.m; i++ {
					base = append(base, query.Predicate{Attr: i, Op: query.GE, Value: t[i]})
				}
				if err := runTree(base); err != nil {
					return bc.finish(kBand, c.queries, false), err
				}
			}
			next = append(next, bc.tuples[before:]...)
		}
		frontier = next
	}
	return bc.finish(kBand, c.queries, true), nil
}

// PQBandSky discovers the K-skyband through a point-predicate interface.
// The plane engine runs at band level K: a line query keeps its K best
// answers (falling back to fully-specified cell queries when the
// interface's k is smaller, as §7.2 prescribes) and prunes only cells with
// K proven dominators.
func PQBandSky(db Interface, kBand int, opt Options) (BandResult, error) {
	if kBand < 1 {
		return BandResult{}, fmt.Errorf("core: band level must be >= 1, got %d", kBand)
	}
	for i := 0; i < db.NumAttrs(); i++ {
		if db.Cap(i) != hidden.PQ {
			return BandResult{}, fmt.Errorf("core: PQBandSky needs point predicates; A%d is %s", i, db.Cap(i))
		}
	}
	db, opt = prepare(db, opt)
	c := newCtx(db, opt)
	var bc bandCollector
	err := pqBandRun(c, kBand, &bc)
	return bc.finish(kBand, c.queries, err == nil), err
}

func pqBandRun(c *ctx, kBand int, bc *bandCollector) error {
	res, err := c.issue(nil) // SELECT *
	if err != nil {
		return err
	}
	if len(res.Tuples) == 0 {
		return nil
	}
	bc.add(res.Tuples)
	c.mergeAll(res.Tuples)
	if !c.overflowed(res) {
		return nil
	}
	seed := res.Tuples

	runPlane := func(d1, d2 int, fixed query.Q, pruneA func(p *plane)) error {
		p := newPlane(c, d1, d2, fixed)
		p.h = kBand
		if pruneA != nil {
			pruneA(p)
		}
		if err := p.run(); err != nil {
			bc.add(p.found)
			return err
		}
		bc.add(p.found)
		return nil
	}

	if c.m == 1 {
		// Enumerate values best-first until K tuples or domain exhausted.
		dom := c.domains[0]
		found := 0
		for v := dom.Lo; v <= dom.Hi && found < kBand; v++ {
			r, err := c.issue(query.Q{{Attr: 0, Op: query.EQ, Value: v}})
			if err != nil {
				return err
			}
			if len(r.Tuples) > 0 {
				bc.add(r.Tuples)
				found += len(r.Tuples)
			}
		}
		return nil
	}
	if c.m == 2 {
		return runPlane(0, 1, nil, func(p *plane) {
			// Rule (a): anything dominating a SELECT * answer would have
			// been answered too.
			for _, t := range seed {
				p.pruneEmptyRect(t[0], t[1])
			}
		})
	}
	d1, d2 := widestAttrs(c)
	var others []int
	for a := 0; a < c.m; a++ {
		if a != d1 && a != d2 {
			others = append(others, a)
		}
	}
	return enumerateCombos(c, others, func(vc []int) error {
		fixed := make(query.Q, len(others))
		for i, a := range others {
			fixed[i] = query.Predicate{Attr: a, Op: query.EQ, Value: vc[i]}
		}
		return runPlane(d1, d2, fixed, func(p *plane) {
			for _, t := range seed {
				ge := true
				for i, a := range others {
					if t[a] < vc[i] {
						ge = false
						break
					}
				}
				if ge {
					p.pruneEmptyRect(t[d1], t[d2])
				}
			}
		})
	})
}

// SQBandSky discovers the K-skyband through a one-ended-range interface —
// the paper's hardest case (§7.2 proves completeness may require crawling).
// The tree branches on an answered tuple provably dominated by K-1 others;
// when an overflowing node has no such tuple the subtree is abandoned and
// the result is marked partial (Complete=false). With k >= K this rarely
// triggers near the top of the tree, matching the paper's observation.
func SQBandSky(db Interface, kBand int, opt Options) (BandResult, error) {
	if kBand < 1 {
		return BandResult{}, fmt.Errorf("core: band level must be >= 1, got %d", kBand)
	}
	db, opt = prepare(db, opt)
	c := newCtx(db, opt)
	var bc bandCollector
	complete := true

	type bnode struct{ ub []int }
	rootUB := make([]int, c.m)
	for a := 0; a < c.m; a++ {
		rootUB[a] = c.domains[a].Hi + 1
	}
	queue := []bnode{{ub: rootUB}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		var q query.Q
		for a := 0; a < c.m; a++ {
			if n.ub[a] <= c.domains[a].Hi {
				q = append(q, query.Predicate{Attr: a, Op: query.LT, Value: n.ub[a]})
			}
		}
		if c.opt.SkipProvablyEmpty && c.provablyEmpty(q) {
			continue
		}
		res, err := c.issue(q)
		if err != nil {
			return bc.finish(kBand, c.queries, false), err
		}
		bc.add(res.Tuples)
		if !c.overflowed(res) {
			continue
		}
		// Domination counts within the answer are exact for answered
		// tuples: every dominator matches the (downward-closed) query and
		// outranks its dominee, so it appears earlier in the same answer.
		branch := -1
		for i := range res.Tuples {
			cnt := 0
			for j := 0; j < i; j++ {
				if skyline.Dominates(res.Tuples[j], res.Tuples[i]) {
					cnt++
				}
			}
			if cnt >= kBand-1 {
				branch = i
				break
			}
		}
		if branch < 0 {
			complete = false // cannot branch without risking missed band tuples
			continue
		}
		b := res.Tuples[branch]
		for a := 0; a < c.m; a++ {
			ub := append([]int(nil), n.ub...)
			if b[a] < ub[a] {
				ub[a] = b[a]
			}
			queue = append(queue, bnode{ub: ub})
		}
	}
	return bc.finish(kBand, c.queries, complete), nil
}
