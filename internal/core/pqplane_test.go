package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/skyline"
)

// planeFixture builds a plane over a small 2D PQ database.
func planeFixture(t *testing.T, data [][]int, k int) (*plane, *ctx, *hidden.DB) {
	t.Helper()
	db := mkDB(t, data, capsAll(2, hidden.PQ), k, hidden.SumRank{})
	c := newCtx(db, Options{})
	return newPlane(c, 0, 1, nil), c, db
}

func TestPlaneBands(t *testing.T) {
	data := [][]int{{0, 0}, {5, 5}} // domains [0,5] x [0,5]
	p, _, _ := planeFixture(t, data, 1)
	bs := p.bands()
	if len(bs) != 1 || bs[0].xa != 0 || bs[0].xb != 5 || bs[0].lo != 0 || bs[0].hi != 5 {
		t.Fatalf("initial bands %+v", bs)
	}
	// Pruning the lower-left corner splits the column intervals.
	p.pruneEmptyRect(2, 3)
	bs = p.bands()
	if len(bs) != 2 {
		t.Fatalf("bands after prune: %+v", bs)
	}
	if bs[0].xa != 0 || bs[0].xb != 2 || bs[0].lo != 4 {
		t.Fatalf("left band %+v", bs[0])
	}
	if bs[1].xa != 3 || bs[1].lo != 0 {
		t.Fatalf("right band %+v", bs[1])
	}
	// Dominated pruning caps the right band's rows.
	p.pruneDominatedRect(4, 2)
	bs = p.bands()
	last := bs[len(bs)-1]
	if last.xa != 4 || last.hi != 1 {
		t.Fatalf("dominated band %+v", last)
	}
}

func TestPlaneBandGeometry(t *testing.T) {
	b := band{xa: 2, xb: 5, lo: 1, hi: 3}
	if b.width() != 4 || b.height() != 3 {
		t.Fatalf("band geometry %d x %d", b.width(), b.height())
	}
}

func TestPlaneColumnQueryResolves(t *testing.T) {
	data := [][]int{{0, 4}, {1, 2}, {2, 0}, {4, 4}}
	p, c, db := planeFixture(t, data, 1)
	if err := p.columnQuery(1); err != nil {
		t.Fatal(err)
	}
	// Column 1 resolved; tuple (1,2) found; cells x>=2, y>=2 dominated.
	if lo, hi := p.candLo[p.col(1)], p.candHi[p.col(1)]; lo <= hi {
		t.Fatalf("column 1 not resolved: [%d,%d]", lo, hi)
	}
	if p.candHi[p.col(3)] != 1 {
		t.Fatalf("domination prune missing: candHi[3]=%d", p.candHi[p.col(3)])
	}
	if len(p.found) != 1 || fmt.Sprint(p.found[0]) != "[1 2]" {
		t.Fatalf("found %v", p.found)
	}
	if db.QueriesIssued() != 1 || c.queries != 1 {
		t.Fatal("query accounting")
	}

	// Empty column: resolves with no other effect.
	before := append([]int(nil), p.candHi...)
	if err := p.columnQuery(3); err != nil {
		t.Fatal(err)
	}
	if p.candLo[p.col(3)] <= p.candHi[p.col(3)] {
		t.Fatal("empty column not resolved")
	}
	for x := 0; x <= 2; x++ {
		if p.candHi[p.col(x)] != before[p.col(x)] {
			t.Fatal("empty column changed other columns")
		}
	}
}

func TestPlaneRowQueryResolvesRow(t *testing.T) {
	data := [][]int{{3, 0}, {1, 2}, {4, 1}}
	p, _, _ := planeFixture(t, data, 1)
	if err := p.rowQuery(0); err != nil {
		t.Fatal(err)
	}
	// Row 0's minimum x is 3: cells (x<3, 0) provably empty, row resolved,
	// and (x>=3, y>=1) dominated.
	for x := p.x0; x <= p.x1; x++ {
		if p.candLo[p.col(x)] == 0 && p.candHi[p.col(x)] >= 0 && p.candLo[p.col(x)] == 0 {
			// Row 0 must no longer be the candidate bottom of any column
			// unless the whole column was already resolved.
			if p.candLo[p.col(x)] == 0 && p.candLo[p.col(x)] <= p.candHi[p.col(x)] {
				t.Fatalf("row 0 still candidate in column %d", x)
			}
		}
	}
	if p.candHi[p.col(4)] != 0 {
		t.Fatalf("dominated prune after row query: candHi[4]=%d", p.candHi[p.col(4)])
	}
}

func TestPlaneDropRowBoundary(t *testing.T) {
	data := [][]int{{0, 0}, {3, 3}}
	p, _, _ := planeFixture(t, data, 1)
	p.dropRowBoundary(1, 0) // at candLo: shrink
	if p.candLo[p.col(1)] != 1 {
		t.Fatal("boundary drop at lo failed")
	}
	p.dropRowBoundary(1, 3) // at candHi: shrink
	if p.candHi[p.col(1)] != 2 {
		t.Fatal("boundary drop at hi failed")
	}
	p.dropRowBoundary(1, 2) // interior: representable only as no-op... 2 == candHi now
	if p.candHi[p.col(1)] != 1 {
		t.Fatal("second hi drop failed")
	}
	p.dropRowBoundary(1, 1) // interval collapses
	p.dropRowBoundary(1, 1) // empty: no-op, no panic
}

func TestPlaneCellFallback(t *testing.T) {
	// k=1 interface but band level 3: the fallback must enumerate cells.
	data := [][]int{{2, 0}, {2, 1}, {2, 4}, {2, 6}, {0, 7}, {4, 7}}
	db := mkDB(t, data, capsAll(2, hidden.PQ), 1, hidden.SumRank{})
	c := newCtx(db, Options{})
	p := newPlane(c, 0, 1, nil)
	p.h = 3
	if err := p.columnQuery(2); err != nil {
		t.Fatal(err)
	}
	// Column 2 holds rows 0,1,4,6; the 3 best are 0,1,4.
	keys := tupleSet(p.found)
	for _, want := range [][]int{{2, 0}, {2, 1}, {2, 4}} {
		if !keys[fmt.Sprint(want)] {
			t.Fatalf("fallback missed %v; found %v", want, p.found)
		}
	}
	if keys[fmt.Sprint([]int{2, 6})] {
		t.Fatalf("fallback fetched beyond band level: %v", p.found)
	}
	// Cross-column pruning uses the 3rd best row (y=4).
	if p.candHi[p.col(4)] != 3 {
		t.Fatalf("band prune wrong: candHi[4]=%d", p.candHi[p.col(4)])
	}
}

func TestPlaneRunTerminatesOnEmptyDomain(t *testing.T) {
	data := [][]int{{0, 0}}
	p, _, _ := planeFixture(t, data, 1)
	p.pruneDominatedRect(0, 0) // prune everything
	if err := p.run(); err != nil {
		t.Fatal(err)
	}
	if len(p.found) != 0 {
		t.Fatalf("found %v in fully pruned plane", p.found)
	}
}

// Exhaustive safety net: on every tiny 2D database, pq2dRun finds the full
// skyline with any k and never issues unsupported predicates.
func TestPQ2DExhaustiveTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(12)
		domain := 1 + rng.Intn(5)
		data := make([][]int, n)
		for i := range data {
			data[i] = []int{rng.Intn(domain), rng.Intn(domain)}
		}
		k := 1 + rng.Intn(3)
		db := mkDB(t, data, capsAll(2, hidden.PQ), k, hidden.SumRank{})
		res, err := PQ2DSky(db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := sameTupleSet(res.Skyline, skyline.ComputeTuples(data)); !ok {
			t.Fatalf("trial %d (n=%d dom=%d k=%d): %s", trial, n, domain, k, diff)
		}
	}
}

// The subspace pruning rules must never delete a cell that holds an
// undiscovered skyline tuple: exercised through full PQDBSky runs on 3D
// grids with every ranking.
func TestPQSubspacePruningSound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, rk := range testRankings {
		for trial := 0; trial < 10; trial++ {
			data := randData(rng, 60+rng.Intn(100), 3, 4)
			db := mkDB(t, data, capsAll(3, hidden.PQ), 2, rk.rank)
			res, err := PQDBSky(db, Options{})
			if err != nil {
				t.Fatalf("%s: %v", rk.name, err)
			}
			if ok, diff := sameTupleSet(res.Skyline, skyline.ComputeTuples(data)); !ok {
				t.Fatalf("%s trial %d: %s", rk.name, trial, diff)
			}
		}
	}
}

func TestWidestAttrsSelection(t *testing.T) {
	data := [][]int{{0, 0, 0, 0}, {2, 9, 4, 1}}
	db := mkDB(t, data, capsAll(4, hidden.PQ), 1, hidden.SumRank{})
	c := newCtx(db, Options{})
	d1, d2 := widestAttrs(c)
	// Domains: 3, 10, 5, 2 -> widest are attributes 1 and 2.
	if d1 != 1 || d2 != 2 {
		t.Fatalf("widest attrs (%d,%d), want (1,2)", d1, d2)
	}
}

func TestEnumerateCombosOrder(t *testing.T) {
	data := [][]int{{0, 0, 0}, {1, 2, 1}}
	db := mkDB(t, data, capsAll(3, hidden.PQ), 1, hidden.SumRank{})
	c := newCtx(db, Options{})
	var seen [][]int
	err := enumerateCombos(c, []int{1, 2}, func(vc []int) error {
		seen = append(seen, append([]int(nil), vc...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A1 in [0,2], A2 in [0,1]: 6 combos in ascending lexicographic order.
	want := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}
	if len(seen) != len(want) {
		t.Fatalf("%d combos, want %d", len(seen), len(want))
	}
	for i := range want {
		if fmt.Sprint(seen[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("combo %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestPQ1D(t *testing.T) {
	data := [][]int{{7}, {3}, {9}, {3}}
	db := mkDB(t, data, capsAll(1, hidden.PQ), 1, hidden.SumRank{})
	res, err := PQDBSky(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 1 || res.Skyline[0][0] != 3 {
		t.Fatalf("1D skyline %v", res.Skyline)
	}
}

func TestPQ2DRejectsWrongDims(t *testing.T) {
	data := [][]int{{1, 2, 3}}
	db := mkDB(t, data, capsAll(3, hidden.PQ), 1, hidden.SumRank{})
	if _, err := PQ2DSky(db, Options{}); err == nil {
		t.Fatal("3-attribute database accepted by the 2D algorithm")
	}
}

func TestPlaneFixedPredicatesIncluded(t *testing.T) {
	// In a 3D subspace, every plane query must pin the third attribute.
	data := randData(rand.New(rand.NewSource(44)), 80, 3, 4)
	spy := &spyDB{DB: mkDB(t, data, capsAll(3, hidden.PQ), 1, hidden.SumRank{})}
	if _, err := PQDBSky(spy, Options{}); err != nil {
		t.Fatal(err)
	}
	for i, q := range spy.queries {
		if len(q) == 0 {
			continue // the SELECT * seed
		}
		if len(q) < 2 {
			t.Fatalf("query %d under-specified: %v", i, q)
		}
	}
}

// TestPaperSection52Construction encodes the paper's §5.2 example that
// proves no instance-optimal higher-dimensional PQ algorithm exists: five
// tuples (1,1,1), (2,2,2), (2,0,0), (0,2,0), (0,0,2) behind a top-2
// interface. Whatever query plan our (necessarily suboptimal) algorithm
// chooses, it must still discover the exact four-tuple skyline under every
// ranking function.
func TestPaperSection52Construction(t *testing.T) {
	base := [][]int{
		{1, 1, 1},
		{2, 2, 2},
		{2, 0, 0},
		{0, 2, 0},
		{0, 0, 2},
	}
	// Pad with dominated background tuples so the space is inhabited.
	rng := rand.New(rand.NewSource(52))
	data := append([][]int(nil), base...)
	for i := 0; i < 40; i++ {
		data = append(data, []int{1 + rng.Intn(2), 1 + rng.Intn(2), 1 + rng.Intn(2)})
	}
	want := skyline.ComputeTuples(data) // {(1,1,1),(2,0,0),(0,2,0),(0,0,2)}
	if len(tupleSet(want)) != 4 {
		t.Fatalf("construction broken: skyline %v", want)
	}
	for _, rk := range testRankings {
		db := mkDB(t, data, capsAll(3, hidden.PQ), 2, rk.rank)
		res, err := PQDBSky(db, Options{})
		if err != nil {
			t.Fatalf("%s: %v", rk.name, err)
		}
		if ok, diff := sameTupleSet(res.Skyline, want); !ok {
			t.Fatalf("%s: %s", rk.name, diff)
		}
	}
}

// TestPaperSection52SubspaceShapes reproduces the Figure 10 scenario: a 3D
// space where the SELECT * answer prunes a lower-left rectangle of the
// z = 0 plane without covering its upper-right counterpart. The subspace
// routine must still find the plane's skyline.
func TestPaperSection52SubspaceShapes(t *testing.T) {
	// Domains x in [0,6], y in [0,9], z in [0,1]; tuples modeled on the
	// paper's example: (4,6,1) is the global top answer, (0,9,0) tops the
	// z=0 plane, (5,0,0) hides deep in the plane.
	data := [][]int{
		{4, 6, 1},
		{0, 9, 0},
		{5, 0, 0},
		{6, 9, 1}, // fills out the domains
		{6, 9, 0},
	}
	want := skyline.ComputeTuples(data)
	for _, k := range []int{1, 2} {
		db := mkDB(t, data, capsAll(3, hidden.PQ), k, hidden.LexRank{Priority: []int{2, 0, 1}})
		res, err := PQDBSky(db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := sameTupleSet(res.Skyline, want); !ok {
			t.Fatalf("k=%d: %s", k, diff)
		}
	}
}
