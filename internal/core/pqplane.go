package core

import (
	"fmt"

	"hiddensky/internal/query"
)

// plane drives skyline discovery inside one two-dimensional (sub)space of a
// point-predicate database — the engine behind PQ-2D-SKY (Algorithm 3) and
// PQ-2DSUB-SKY (Algorithm 4).
//
// The subspace spans attributes d1 (columns, "x") and d2 (rows, "y"),
// optionally with every other attribute pinned by the fixed predicates.
// Unexplored candidate cells are tracked as one interval of rows per
// column: cand[x] = [candLo[x], candHi[x]]. Every pruning step below is a
// proof (cells are removed only when provably empty or provably dominated
// by a known tuple with fixed-attribute values no worse than the
// subspace's), so completeness never depends on the traversal heuristics.
//
// Because every issued query pins all attributes except one, its matching
// tuples are totally ordered by dominance, so the top-ranked answer is the
// minimum of the free attribute — the paper's "guaranteed single skyline
// return" property that makes 1D answers authoritative.
type plane struct {
	c      *ctx
	d1, d2 int
	fixed  query.Q // EQ predicates pinning the remaining attributes
	x0, x1 int     // domain of d1
	y0, y1 int     // domain of d2
	h      int     // sky-band level: 1 = skyline (§7.2 extension when > 1)

	candLo []int // per column (index x-x0): lowest unexplored row
	candHi []int // per column: highest unexplored row

	found [][]int // tuples returned by queries in this plane
}

func newPlane(c *ctx, d1, d2 int, fixed query.Q) *plane {
	p := &plane{
		c:     c,
		d1:    d1,
		d2:    d2,
		fixed: fixed,
		h:     1,
		x0:    c.domains[d1].Lo,
		x1:    c.domains[d1].Hi,
		y0:    c.domains[d2].Lo,
		y1:    c.domains[d2].Hi,
	}
	n := p.x1 - p.x0 + 1
	p.candLo = make([]int, n)
	p.candHi = make([]int, n)
	for i := range p.candLo {
		p.candLo[i] = p.y0
		p.candHi[i] = p.y1
	}
	return p
}

func (p *plane) col(x int) int { return x - p.x0 }

// pruneEmptyRect marks every cell with x <= ex and y <= ey as proven empty
// (Algorithm 4's lower-left pruning: a tuple there would dominate — and so
// outrank — a tuple returned by a query containing this subspace).
func (p *plane) pruneEmptyRect(ex, ey int) {
	for x := p.x0; x <= ex && x <= p.x1; x++ {
		if lo := ey + 1; lo > p.candLo[p.col(x)] {
			p.candLo[p.col(x)] = lo
		}
	}
}

// pruneDominatedRect marks every cell with x >= dx and y >= dy as dominated
// (Algorithm 4's upper-right pruning from a discovered tuple whose other
// attributes are no worse than the subspace's).
func (p *plane) pruneDominatedRect(dx, dy int) {
	for x := dx; x <= p.x1; x++ {
		if x < p.x0 {
			continue
		}
		if hi := dy - 1; hi < p.candHi[p.col(x)] {
			p.candHi[p.col(x)] = hi
		}
	}
}

// resolveColumn empties column x's candidate interval.
func (p *plane) resolveColumn(x int) {
	p.candLo[p.col(x)] = p.y1 + 1
	p.candHi[p.col(x)] = p.y1
}

// dropRowBoundary removes row y from column x's interval when y sits on the
// interval boundary; interior holes cannot be represented and are skipped
// (a sound over-approximation: the cell merely stays explorable).
func (p *plane) dropRowBoundary(x, y int) {
	i := p.col(x)
	if p.candLo[i] > p.candHi[i] {
		return
	}
	switch y {
	case p.candLo[i]:
		p.candLo[i]++
	case p.candHi[i]:
		p.candHi[i]--
	}
}

// band is a maximal run of consecutive columns sharing one non-empty
// candidate interval — Algorithm 4's rectangle decomposition of the pruned
// subspace.
type band struct {
	xa, xb int // first and last column
	lo, hi int // shared row interval
}

func (b band) width() int  { return b.xb - b.xa + 1 }
func (b band) height() int { return b.hi - b.lo + 1 }

// bands returns the current rectangle decomposition, left to right.
func (p *plane) bands() []band {
	var out []band
	for x := p.x0; x <= p.x1; x++ {
		i := p.col(x)
		if p.candLo[i] > p.candHi[i] {
			continue
		}
		if len(out) > 0 && out[len(out)-1].xb == x-1 &&
			out[len(out)-1].lo == p.candLo[i] && out[len(out)-1].hi == p.candHi[i] {
			out[len(out)-1].xb = x
			continue
		}
		out = append(out, band{xa: x, xb: x, lo: p.candLo[i], hi: p.candHi[i]})
	}
	return out
}

// columnQuery issues "d1 = x" (plus the fixed predicates) and applies every
// pruning consequence. It always resolves column x. Matching tuples differ
// only on d2, so the answer lists the column's best-h rows (band mode needs
// the h best; when the interface's k is smaller, cellFallback enumerates
// the remaining cells with fully-specified 0D queries, as §7.2 prescribes).
func (p *plane) columnQuery(x int) error {
	q := p.fixed.With(query.Predicate{Attr: p.d1, Op: query.EQ, Value: x})
	res, err := p.c.issue(q)
	if err != nil {
		return err
	}
	if len(res.Tuples) == 0 {
		p.resolveColumn(x)
		return nil
	}
	p.noteFound(res.Tuples)
	tuples := res.Tuples
	if p.c.overflowed(res) && len(tuples) < p.h {
		tuples, err = p.cellFallback(tuples, p.d2, func(y int) query.Q {
			return q.With(query.Predicate{Attr: p.d2, Op: query.EQ, Value: y})
		}, func(t []int) int { return t[p.d2] })
		if err != nil {
			return err
		}
	}
	p.resolveColumn(x)
	// With c >= h column tuples known, every cell (x' > x, y >= y_h) is
	// dominated by at least h tuples (the column's h best all dominate it).
	if len(tuples) >= p.h && x+1 <= p.x1 {
		p.pruneDominatedRect(x+1, tuples[p.h-1][p.d2])
	}
	return nil
}

// rowQuery issues "d2 = y" and applies its pruning consequences; callers
// must ensure y is the shared candLo of the issuing band so an empty answer
// still makes progress. The whole row is resolved by the answer.
func (p *plane) rowQuery(y int) error {
	q := p.fixed.With(query.Predicate{Attr: p.d2, Op: query.EQ, Value: y})
	res, err := p.c.issue(q)
	if err != nil {
		return err
	}
	if len(res.Tuples) == 0 {
		for x := p.x0; x <= p.x1; x++ {
			p.dropRowBoundary(x, y)
		}
		return nil
	}
	p.noteFound(res.Tuples)
	tuples := res.Tuples
	if p.c.overflowed(res) && len(tuples) < p.h {
		tuples, err = p.cellFallback(tuples, p.d1, func(x int) query.Q {
			return q.With(query.Predicate{Attr: p.d1, Op: query.EQ, Value: x})
		}, func(t []int) int { return t[p.d1] })
		if err != nil {
			return err
		}
	}
	// Cells left of the smallest returned x are proven empty; returned
	// cells are occupied and recorded; cells beyond the h-th returned x
	// are dominated by >= h row tuples. Either way the row is resolved.
	for x := p.x0; x <= p.x1; x++ {
		p.dropRowBoundary(x, y)
	}
	if len(tuples) >= p.h {
		xh := tuples[p.h-1][p.d1]
		if y+1 <= p.y1 {
			p.pruneDominatedRect(xh, y+1)
		}
	}
	return nil
}

// cellFallback recovers the h best line tuples when the top-k answer was
// truncated below the band level: starting just past the last returned
// value of the free attribute, it issues fully-specified point queries cell
// by cell until h tuples are known or the domain is exhausted.
func (p *plane) cellFallback(tuples [][]int, freeAttr int, mkQuery func(v int) query.Q, free func(t []int) int) ([][]int, error) {
	out := append([][]int(nil), tuples...)
	v := free(out[len(out)-1]) + 1
	hi := p.c.domains[freeAttr].Hi
	for len(out) < p.h && v <= hi {
		res, err := p.c.issue(mkQuery(v))
		if err != nil {
			return out, err
		}
		if len(res.Tuples) > 0 {
			p.noteFound(res.Tuples)
			out = append(out, res.Tuples[0])
		}
		v++
	}
	return out, nil
}

// noteFound records returned tuples as discovery candidates. With k > 1 a
// query may return deeper (dominated-within-the-line) tuples; Merge
// discards them.
func (p *plane) noteFound(ts [][]int) {
	for _, t := range ts {
		p.found = append(p.found, append([]int(nil), t...))
		p.c.merge(t)
	}
}

// run explores the plane to exhaustion: repeatedly pick the leftmost band
// and follow Algorithm 3's shorter-side rule — query the band's left column
// when it is narrower than tall, otherwise its best (lowest-value) row.
func (p *plane) run() error {
	for {
		bs := p.bands()
		if len(bs) == 0 {
			return nil
		}
		b := bs[0]
		if b.width() < b.height() {
			if err := p.columnQuery(b.xa); err != nil {
				return err
			}
		} else {
			if err := p.rowQuery(b.lo); err != nil {
				return err
			}
		}
	}
}

// PQ2DSky discovers the complete skyline of a two-attribute point-predicate
// database — the paper's instance-optimal Algorithm 3. The initial
// SELECT * answer seeds the two diagonal rectangles of Figure 7; the rest
// is the shorter-side sweep.
func PQ2DSky(db Interface, opt Options) (Result, error) {
	db, opt = prepare(db, opt)
	c := newCtx(db, opt)
	if c.m != 2 {
		return Result{}, errBadDims(c.m, 2)
	}
	err := pq2dRun(c)
	return c.result(err)
}

func pq2dRun(c *ctx) error {
	res, err := c.issue(nil) // SELECT *
	if err != nil {
		return err
	}
	p := newPlane(c, 0, 1, nil)
	if len(res.Tuples) == 0 {
		return nil // empty database: nothing beyond SELECT *
	}
	p.noteFound(res.Tuples)
	t0 := res.Tuples[0]
	// No tuple can dominate t0 (it would outrank it), and everything in the
	// upper-right quadrant is dominated by t0.
	p.pruneEmptyRect(t0[0], t0[1])
	p.pruneDominatedRect(t0[0], t0[1])
	if !c.overflowed(res) {
		// Every matching tuple was returned; the database is fully known.
		return nil
	}
	return p.run()
}

func errBadDims(got, want int) error {
	return fmt.Errorf("core: database has %d attributes, algorithm requires %d", got, want)
}
