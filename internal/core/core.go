// Package core implements the skyline-discovery algorithms of "Discovering
// the Skyline of Web Databases" (Asudeh, Thirumuruganathan, Zhang, Das,
// 2016) over top-k hidden web interfaces:
//
//   - SQDBSky  — Algorithm 1, one-ended range interfaces (SQ)
//   - RQDBSky  — Algorithm 2, two-ended range interfaces (RQ)
//   - PQ2DSky  — Algorithm 3, point-predicate interfaces, two attributes
//   - PQDBSky  — Algorithm 5 (with the Algorithm 4 subspace subroutine),
//     point-predicate interfaces, any dimensionality
//   - MQDBSky  — Algorithm 6, arbitrary mixtures of SQ, RQ and PQ
//   - the K-skyband extensions of §7.2 (RQBandSky, PQBandSky, SQBandSky)
//
// All algorithms interact with the database only through the Interface
// type, count every query they issue, and feature the paper's anytime
// property: when the query budget runs out mid-run they return the
// skyline tuples discovered so far together with ErrBudget.
package core

import (
	"errors"
	"fmt"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

// Interface is the minimal view of a hidden web database the discovery
// algorithms need. *hidden.DB implements it; tests wrap it to instrument
// query streams.
type Interface interface {
	// Query executes a top-k conjunctive query.
	Query(q query.Q) (hidden.Result, error)
	// NumAttrs returns the number of ranking attributes.
	NumAttrs() int
	// K returns the top-k output limit.
	K() int
	// Cap returns the predicate capability of attribute i.
	Cap(i int) hidden.Capability
	// Domain returns the advertised value range of attribute i.
	Domain(i int) query.Interval
}

// ErrBudget is wrapped into the error returned when the database's rate
// limit interrupts discovery; the accompanying Result still carries every
// skyline tuple found so far (the anytime property).
var ErrBudget = errors.New("core: query budget exhausted (partial result)")

// Options tunes a discovery run. The zero value reproduces the paper's
// algorithms faithfully.
type Options struct {
	// Trace records a TraceEvent each time the candidate skyline set gains
	// a tuple, enabling the paper's anytime plots (Figures 20-23).
	Trace bool
	// UseOverflowFlag trusts the interface's overflow indicator ("showing
	// k of many") to decide whether a node needs expanding. The paper's
	// model only observes the returned tuples and must treat every full
	// answer (|T| = k) as potentially truncated, so the default is false;
	// enabling this saves queries on interfaces that expose result counts.
	UseOverflowFlag bool
	// SkipProvablyEmpty suppresses issuing queries whose canonical box is
	// empty given the advertised attribute domains (a real client can read
	// those off the search form). The paper's cost model issues them, so
	// the default is false.
	SkipProvablyEmpty bool
	// MaxQueries, when positive, stops discovery after that many queries
	// with a partial (anytime) result and ErrBudget.
	MaxQueries int
}

// TraceEvent records that Tuple joined the candidate skyline after Queries
// queries had been issued.
type TraceEvent struct {
	Queries int
	Tuple   []int
}

// Result is the outcome of a discovery run.
type Result struct {
	// Skyline holds the discovered skyline tuples (exact and complete when
	// err == nil), in discovery order after final dominance filtering.
	Skyline [][]int
	// Queries is the number of queries issued to the interface.
	Queries int
	// Trace carries discovery events when Options.Trace was set.
	Trace []TraceEvent
	// Complete is false when the run ended early (budget) or the algorithm
	// ran in an explicitly partial mode (SQ sky band).
	Complete bool
}

// ctx carries the shared per-run state of every algorithm.
type ctx struct {
	db      Interface
	opt     Options
	m       int
	k       int
	domains []query.Interval

	queries int
	sky     [][]int // current candidate skyline (mutually non-dominated)
	merged  map[string]bool
	trace   []TraceEvent
}

func newCtx(db Interface, opt Options) *ctx {
	c := &ctx{db: db, opt: opt, m: db.NumAttrs(), k: db.K(), merged: map[string]bool{}}
	c.domains = make([]query.Interval, c.m)
	for i := 0; i < c.m; i++ {
		c.domains[i] = db.Domain(i)
	}
	return c
}

// issue sends q to the database, enforcing the local budget, and returns
// the result. A budget stop or rate limit surfaces as ErrBudget.
func (c *ctx) issue(q query.Q) (hidden.Result, error) {
	if c.opt.MaxQueries > 0 && c.queries >= c.opt.MaxQueries {
		return hidden.Result{}, ErrBudget
	}
	res, err := c.db.Query(q)
	if err != nil {
		if errors.Is(err, hidden.ErrRateLimited) {
			return hidden.Result{}, fmt.Errorf("%w: %v", ErrBudget, err)
		}
		return hidden.Result{}, err
	}
	c.queries++
	return res, nil
}

// overflowed reports whether a query answer must be treated as truncated:
// under the paper's model any answer carrying k tuples may hide more;
// with UseOverflowFlag the interface's own indicator decides.
func (c *ctx) overflowed(res hidden.Result) bool {
	if c.opt.UseOverflowFlag {
		return res.Overflow
	}
	return len(res.Tuples) >= c.k
}

// provablyEmpty reports whether q cannot match any tuple given the
// advertised domains.
func (c *ctx) provablyEmpty(q query.Q) bool {
	return q.Canonicalize(c.domains).Empty()
}

// merge folds tuple t into the candidate skyline, tracing additions. A
// value combination is only processed once: re-merging an already-seen
// tuple cannot change the candidate set (if it was kept it is present or
// was displaced by a dominator; if rejected it stays dominated).
func (c *ctx) merge(t []int) {
	key := tupleKey(t)
	if c.merged[key] {
		return
	}
	c.merged[key] = true
	var kept bool
	c.sky, kept = skyline.Merge(c.sky, t)
	if kept && c.opt.Trace {
		c.trace = append(c.trace, TraceEvent{Queries: c.queries, Tuple: append([]int(nil), t...)})
	}
}

// tupleKey renders a tuple as a compact map key.
func tupleKey(t []int) string {
	buf := make([]byte, 0, len(t)*4)
	for _, v := range t {
		buf = appendInt(buf, v)
		buf = append(buf, ',')
	}
	return string(buf)
}

func appendInt(buf []byte, v int) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

// mergeAll folds every returned tuple into the candidate skyline.
func (c *ctx) mergeAll(ts [][]int) {
	for _, t := range ts {
		c.merge(t)
	}
}

// result packages the context into a Result; err distinguishes the anytime
// partial case from hard failures.
func (c *ctx) result(err error) (Result, error) {
	res := Result{
		Skyline:  append([][]int(nil), c.sky...),
		Queries:  c.queries,
		Trace:    c.trace,
		Complete: err == nil,
	}
	if err != nil && !errors.Is(err, ErrBudget) {
		return res, err
	}
	return res, err
}

// attrsByCap partitions attribute indices by their interface capability.
func attrsByCap(db Interface) (sq, rq, pq []int) {
	for i := 0; i < db.NumAttrs(); i++ {
		switch db.Cap(i) {
		case hidden.SQ:
			sq = append(sq, i)
		case hidden.RQ:
			rq = append(rq, i)
		case hidden.PQ:
			pq = append(pq, i)
		}
	}
	return sq, rq, pq
}

// Discover runs the most appropriate algorithm for the database's
// interface mixture (MQDBSky's dispatch): SQ-, RQ-, PQ- or MQ-DB-SKY.
func Discover(db Interface, opt Options) (Result, error) {
	return MQDBSky(db, opt)
}
