// Package core implements the skyline-discovery algorithms of "Discovering
// the Skyline of Web Databases" (Asudeh, Thirumuruganathan, Zhang, Das,
// 2016) over top-k hidden web interfaces:
//
//   - SQDBSky  — Algorithm 1, one-ended range interfaces (SQ)
//   - RQDBSky  — Algorithm 2, two-ended range interfaces (RQ)
//   - PQ2DSky  — Algorithm 3, point-predicate interfaces, two attributes
//   - PQDBSky  — Algorithm 5 (with the Algorithm 4 subspace subroutine),
//     point-predicate interfaces, any dimensionality
//   - MQDBSky  — Algorithm 6, arbitrary mixtures of SQ, RQ and PQ
//   - the K-skyband extensions of §7.2 (RQBandSky, PQBandSky, SQBandSky)
//
// All algorithms interact with the database only through the Interface
// type, count every query they issue, and feature the paper's anytime
// property: when the query budget runs out mid-run they return the
// skyline tuples discovered so far together with ErrBudget.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"hiddensky/internal/engine"
	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

// Interface is the minimal view of a hidden web database the discovery
// algorithms need. *hidden.DB implements it; tests wrap it to instrument
// query streams.
type Interface interface {
	// Query executes a top-k conjunctive query.
	Query(q query.Q) (hidden.Result, error)
	// NumAttrs returns the number of ranking attributes.
	NumAttrs() int
	// K returns the top-k output limit.
	K() int
	// Cap returns the predicate capability of attribute i.
	Cap(i int) hidden.Capability
	// Domain returns the advertised value range of attribute i.
	Domain(i int) query.Interval
}

// ErrBudget is wrapped into the error returned when the database's rate
// limit interrupts discovery; the accompanying Result still carries every
// skyline tuple found so far (the anytime property).
var ErrBudget = errors.New("core: query budget exhausted (partial result)")

// Options tunes a discovery run. The zero value reproduces the paper's
// algorithms faithfully.
type Options struct {
	// Trace records a TraceEvent each time the candidate skyline set gains
	// a tuple, enabling the paper's anytime plots (Figures 20-23).
	Trace bool
	// UseOverflowFlag trusts the interface's overflow indicator ("showing
	// k of many") to decide whether a node needs expanding. The paper's
	// model only observes the returned tuples and must treat every full
	// answer (|T| = k) as potentially truncated, so the default is false;
	// enabling this saves queries on interfaces that expose result counts.
	UseOverflowFlag bool
	// SkipProvablyEmpty suppresses issuing queries whose canonical box is
	// empty given the advertised attribute domains (a real client can read
	// those off the search form). The paper's cost model issues them, so
	// the default is false.
	SkipProvablyEmpty bool
	// MaxQueries, when positive, stops discovery after that many queries
	// with a partial (anytime) result and ErrBudget. It bounds the
	// queries the algorithm issues — the paper's cost metric — so a
	// query answered by Cache still counts; to bound only the queries
	// that reach the backend, gate the backend itself (engine.Limit /
	// federate.FleetOptions.GlobalBudget, which sit beneath the cache).
	MaxQueries int
	// Parallelism, when > 1, runs the independent branches of the
	// divide-and-conquer cascades (sibling subtrees of SQ/RQ-DB-SKY, the
	// 2D subspaces of PQ-DB-SKY, the cell trees of MQ-DB-SKY's point
	// phase) on a bounded worker pool with at most that many interface
	// queries in flight. The discovered skyline is the same set as the
	// sequential run's and is returned in deterministic (lexicographic)
	// order; query accounting stays exact under a shared atomic budget.
	// Values <= 1 reproduce the paper's sequential execution bit for bit.
	Parallelism int
	// Cache, when non-nil, routes every interface query through the shared
	// memoizing query cache: canonically equal queries are answered once,
	// concurrent duplicates are coalesced, and cached hits never reach
	// the backend (so they consume none of its rate limit; they do still
	// count toward MaxQueries and Result.Queries, which measure the
	// algorithm's own query cost). The same Cache may be shared across
	// runs and across databases.
	Cache *qcache.Cache
	// Ctx, when non-nil, aborts discovery when the context is cancelled:
	// no further interface queries are issued (the check happens before
	// every query, and parallel runs additionally drop their unstarted
	// pool tasks), and the run returns its partial anytime result with an
	// error that errors.Is-matches both ErrBudget and the context's error.
	// A cancelled job therefore stops hitting the upstream service
	// promptly but still surfaces everything it discovered.
	Ctx context.Context
	// Progress, when non-nil, is invoked after every counted query with
	// the run's live cost and candidate-skyline size — the hook a serving
	// layer uses to stream job progress. Under Parallelism > 1 it is
	// called concurrently from worker goroutines and must be
	// concurrency-safe; events may then arrive out of order (consumers
	// publishing a live counter should drop stale events). It must not
	// call back into the running discovery.
	Progress func(ProgressEvent)
	// PoolMetrics, when non-nil, instruments the run's worker pool
	// (parallel runs only — a sequential run has no pool). One bundle
	// is safely shared by many concurrent runs; a serving daemon passes
	// the same bundle to every job so the series aggregate fleet-wide.
	PoolMetrics *engine.PoolMetrics
	// Tracer, when non-nil, records spans for this run: a "core.run"
	// phase span around the whole execution plus one "engine.task" span
	// per pool task (and whatever the interface beneath — cache, web
	// client — records under the same tracer). Nil costs nothing.
	Tracer *obs.Tracer
	// TraceParent is the span id new root-level spans of this run hang
	// under (0: top of the trace). Set by the serving layer to the
	// job's root span.
	TraceParent uint64
}

// ProgressEvent is a live snapshot of a discovery run, delivered through
// Options.Progress.
type ProgressEvent struct {
	// Queries is the number of queries counted so far in this run (for a
	// Session.Resume call: in this slice).
	Queries int
	// Skyline is the current candidate-skyline size.
	Skyline int
}

// TraceEvent records that Tuple joined the candidate skyline after Queries
// queries had been issued.
type TraceEvent struct {
	Queries int
	Tuple   []int
}

// Result is the outcome of a discovery run.
type Result struct {
	// Skyline holds the discovered skyline tuples (exact and complete when
	// err == nil), in discovery order after final dominance filtering.
	Skyline [][]int
	// Queries is the number of queries issued to the interface.
	Queries int
	// Trace carries discovery events when Options.Trace was set.
	Trace []TraceEvent
	// Complete is false when the run ended early (budget) or the algorithm
	// ran in an explicitly partial mode (SQ sky band).
	Complete bool
	// Band is the K-skyband level the run discovered (0: a plain
	// skyline run). Set by planner-driven band runs (Request.Band > 0);
	// Skyline then holds the band tuples.
	Band int
	// BandCounts[i] is the number of database tuples dominating
	// Skyline[i]. Populated only for band runs (exact when Complete).
	BandCounts []int
}

// ctx carries the shared per-run state of every algorithm. A mutex guards
// the mutable pieces (query accounting, candidate skyline, trace) so that
// the parallel executors can share one ctx across workers; the sequential
// paths take the same uncontended locks, which costs nothing next to a
// query.
type ctx struct {
	db      Interface
	opt     Options
	m       int
	k       int
	domains []query.Interval

	pool *engine.Pool // non-nil only while a parallel entry point runs

	mu       sync.Mutex
	queries  int     // successfully issued queries
	inflight int     // reserved but not yet answered (parallel budget exactness)
	sky      [][]int // current candidate skyline (mutually non-dominated)
	merged   map[string]bool
	trace    []TraceEvent
}

func newCtx(db Interface, opt Options) *ctx {
	c := &ctx{db: db, opt: opt, m: db.NumAttrs(), k: db.K(), merged: map[string]bool{}}
	c.domains = make([]query.Interval, c.m)
	for i := 0; i < c.m; i++ {
		c.domains[i] = db.Domain(i)
	}
	return c
}

// prepare applies the Options that change what the algorithms talk to:
// a non-nil Cache wraps the database in the shared memoizing view. Every
// public entry point calls it exactly once (the Cache field is cleared so
// nested dispatch cannot double-wrap).
func prepare(db Interface, opt Options) (Interface, Options) {
	if opt.Cache != nil {
		db = opt.Cache.Wrap(db)
		opt.Cache = nil
	}
	return db, opt
}

// newPool returns the bounded worker pool for this run, or nil when the
// run is sequential. Callers own the pool and must Close it.
func (c *ctx) newPool() *engine.Pool {
	if c.opt.Parallelism <= 1 {
		return nil
	}
	if c.opt.Ctx != nil {
		c.pool = engine.NewPoolContext(c.opt.Ctx, c.opt.Parallelism)
	} else {
		c.pool = engine.NewPool(c.opt.Parallelism)
	}
	if c.opt.PoolMetrics != nil {
		c.pool.Instrument(c.opt.PoolMetrics)
	}
	if c.opt.Tracer != nil {
		c.pool.Trace(c.opt.Tracer, c.opt.TraceParent)
	}
	return c.pool
}

// issue sends q to the database, enforcing the local budget, and returns
// the result. A budget stop or rate limit surfaces as ErrBudget. The
// budget is enforced by reservation: a slot is taken before the query and
// refunded if the query fails, so even with many workers in flight at most
// MaxQueries backend queries are ever issued and every success is counted
// exactly once.
func (c *ctx) issue(q query.Q) (hidden.Result, error) {
	if c.opt.Ctx != nil {
		if cerr := c.opt.Ctx.Err(); cerr != nil {
			return hidden.Result{}, fmt.Errorf("%w: %w", ErrBudget, cerr)
		}
	}
	c.mu.Lock()
	if c.opt.MaxQueries > 0 && c.queries+c.inflight >= c.opt.MaxQueries {
		c.mu.Unlock()
		return hidden.Result{}, ErrBudget
	}
	c.inflight++
	c.mu.Unlock()

	res, err := c.db.Query(q)

	c.mu.Lock()
	c.inflight--
	var prog ProgressEvent
	if err == nil {
		c.queries++
		prog = ProgressEvent{Queries: c.queries, Skyline: len(c.sky)}
	}
	c.mu.Unlock()
	if err == nil && c.opt.Progress != nil {
		c.opt.Progress(prog)
	}

	if err != nil {
		if errors.Is(err, hidden.ErrRateLimited) {
			// Both conditions stay matchable: ErrBudget for the anytime
			// contract, ErrRateLimited so a serving layer can tell an
			// upstream quota from a caller-requested budget stop.
			return hidden.Result{}, fmt.Errorf("%w: %w", ErrBudget, err)
		}
		return hidden.Result{}, err
	}
	return res, nil
}

// overflowed reports whether a query answer must be treated as truncated:
// under the paper's model any answer carrying k tuples may hide more;
// with UseOverflowFlag the interface's own indicator decides.
func (c *ctx) overflowed(res hidden.Result) bool {
	if c.opt.UseOverflowFlag {
		return res.Overflow
	}
	return len(res.Tuples) >= c.k
}

// provablyEmpty reports whether q cannot match any tuple given the
// advertised domains.
func (c *ctx) provablyEmpty(q query.Q) bool {
	return q.Canonicalize(c.domains).Empty()
}

// merge folds tuple t into the candidate skyline, tracing additions. A
// value combination is only processed once: re-merging an already-seen
// tuple cannot change the candidate set (if it was kept it is present or
// was displaced by a dominator; if rejected it stays dominated).
func (c *ctx) merge(t []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := tupleKey(t)
	if c.merged[key] {
		return
	}
	c.merged[key] = true
	var kept bool
	c.sky, kept = skyline.Merge(c.sky, t)
	if kept && c.opt.Trace {
		c.trace = append(c.trace, TraceEvent{Queries: c.queries, Tuple: append([]int(nil), t...)})
	}
}

// findDominator returns a current candidate-skyline tuple dominating t, or
// nil. Used by the RQ walker to pick a stronger branching tuple; under
// parallelism the snapshot semantics are sound (any returned dominator is
// a real database tuple).
func (c *ctx) findDominator(t []int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.sky {
		if skyline.Dominates(s, t) {
			return s
		}
	}
	return nil
}

// skySnapshot returns the current candidate skyline. The tuples themselves
// are never mutated after discovery, so sharing them is safe.
func (c *ctx) skySnapshot() [][]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]int(nil), c.sky...)
}

// tupleKey renders a tuple as a compact map key.
func tupleKey(t []int) string {
	buf := make([]byte, 0, len(t)*4)
	for _, v := range t {
		buf = appendInt(buf, v)
		buf = append(buf, ',')
	}
	return string(buf)
}

func appendInt(buf []byte, v int) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

// mergeAll folds every returned tuple into the candidate skyline.
func (c *ctx) mergeAll(ts [][]int) {
	for _, t := range ts {
		c.merge(t)
	}
}

// result packages the context into a Result; err distinguishes the anytime
// partial case from hard failures. Parallel runs sort the skyline
// lexicographically — worker scheduling makes discovery order
// nondeterministic, and a deterministic merge order is part of the
// parallel contract; sequential runs keep the paper's discovery order.
func (c *ctx) result(err error) (Result, error) {
	// Normalize cancellation (a dropped pool task's raw context error, or
	// a context-bound backend aborted mid-request) to the anytime budget
	// shape: callers see a partial result plus an error matching both
	// ErrBudget and the context error.
	if err != nil && !errors.Is(err, ErrBudget) &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		err = fmt.Errorf("%w: %w", ErrBudget, err)
	}
	res := Result{
		Skyline:  append([][]int(nil), c.sky...),
		Queries:  c.queries,
		Trace:    c.trace,
		Complete: err == nil,
	}
	if c.pool != nil {
		sortTuples(res.Skyline)
	}
	if err != nil && !errors.Is(err, ErrBudget) {
		return res, err
	}
	return res, err
}

// sortTuples orders tuples lexicographically in place.
func sortTuples(ts [][]int) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for x := range a {
			if x >= len(b) || a[x] != b[x] {
				return x < len(b) && a[x] < b[x]
			}
		}
		return false
	})
}

// attrsByCap partitions attribute indices by their interface capability.
func attrsByCap(db Interface) (sq, rq, pq []int) {
	for i := 0; i < db.NumAttrs(); i++ {
		switch db.Cap(i) {
		case hidden.SQ:
			sq = append(sq, i)
		case hidden.RQ:
			rq = append(rq, i)
		case hidden.PQ:
			pq = append(pq, i)
		}
	}
	return sq, rq, pq
}

// Discover runs the most appropriate algorithm for the database's
// interface mixture (MQDBSky's dispatch): SQ-, RQ-, PQ- or MQ-DB-SKY.
// It is the zero-Request point of the planner: Run(db, Request{}, opt).
func Discover(db Interface, opt Options) (Result, error) {
	return MQDBSky(db, opt)
}
