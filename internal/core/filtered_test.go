package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

func TestDiscoverWhereMatchesFilteredGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(3)
		data := randData(rng, 100+rng.Intn(200), m, 10)
		caps := capsAll(m, hidden.RQ)
		db := mkDB(t, data, caps, 1+rng.Intn(4), hidden.SumRank{})

		// Random two-ended filter on one attribute.
		attr := rng.Intn(m)
		lo, hi := rng.Intn(5), 5+rng.Intn(5)
		filter := query.Q{
			{Attr: attr, Op: query.GE, Value: lo},
			{Attr: attr, Op: query.LE, Value: hi},
		}
		res, err := DiscoverWhere(db, filter, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var subset [][]int
		for _, tup := range data {
			if filter.Matches(tup) {
				subset = append(subset, tup)
			}
		}
		want := skyline.ComputeTuples(subset)
		if ok, diff := sameTupleSet(res.Skyline, want); !ok {
			t.Fatalf("trial %d filter %v: %s (got %d want %d)", trial, filter, diff, len(res.Skyline), len(want))
		}
	}
}

func TestDiscoverWhereEmptySubset(t *testing.T) {
	data := [][]int{{1, 1}, {2, 2}}
	db := mkDB(t, data, capsAll(2, hidden.RQ), 1, hidden.SumRank{})
	res, err := DiscoverWhere(db, query.Q{{Attr: 0, Op: query.GE, Value: 100}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 0 {
		t.Fatalf("empty subset produced skyline %v", res.Skyline)
	}
}

func TestDiscoverWhereRejectsUnsupportedFilter(t *testing.T) {
	data := [][]int{{1, 1}}
	db := mkDB(t, data, []hidden.Capability{hidden.SQ, hidden.PQ}, 1, hidden.SumRank{})
	if _, err := DiscoverWhere(db, query.Q{{Attr: 0, Op: query.GE, Value: 0}}, Options{}); err == nil {
		t.Fatal(">= filter on an SQ attribute accepted")
	}
	if _, err := DiscoverWhere(db, query.Q{{Attr: 1, Op: query.LT, Value: 5}}, Options{}); err == nil {
		t.Fatal("< filter on a PQ attribute accepted")
	}
	if _, err := DiscoverWhere(db, query.Q{{Attr: 7, Op: query.EQ, Value: 0}}, Options{}); err == nil {
		t.Fatal("out-of-range filter attribute accepted")
	}
}

func TestDiscoverWhereNilFilterIsDiscover(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := randData(rng, 120, 2, 8)
	a, err := DiscoverWhere(mkDB(t, data, capsAll(2, hidden.RQ), 2, hidden.SumRank{}), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Discover(mkDB(t, data, capsAll(2, hidden.RQ), 2, hidden.SumRank{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := sameTupleSet(a.Skyline, b.Skyline); !ok {
		t.Fatal(diff)
	}
	if a.Queries != b.Queries {
		t.Fatalf("nil filter changed cost: %d vs %d", a.Queries, b.Queries)
	}
}

func TestDiscoverWherePointInterface(t *testing.T) {
	// Pin one PQ attribute with an equality filter: the view becomes a
	// lower-dimensional discovery problem; results must match ground truth.
	rng := rand.New(rand.NewSource(62))
	data := randData(rng, 250, 3, 5)
	db := mkDB(t, data, capsAll(3, hidden.PQ), 2, hidden.SumRank{})
	filter := query.Q{{Attr: 2, Op: query.EQ, Value: 3}}
	res, err := DiscoverWhere(db, filter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var subset [][]int
	for _, tup := range data {
		if tup[2] == 3 {
			subset = append(subset, tup)
		}
	}
	want := skyline.ComputeTuples(subset)
	if ok, diff := sameTupleSet(res.Skyline, want); !ok {
		t.Fatalf("%s; skyline=%d want=%d", diff, len(res.Skyline), len(want))
	}
}

func TestFilteredViewDomains(t *testing.T) {
	data := [][]int{{0, 0}, {9, 9}}
	db := mkDB(t, data, capsAll(2, hidden.RQ), 1, hidden.SumRank{})
	fv := &filteredView{db: db, filter: query.Q{
		{Attr: 0, Op: query.GE, Value: 3},
		{Attr: 0, Op: query.LE, Value: 7},
	}}
	if got := fv.Domain(0); got != (query.Interval{Lo: 3, Hi: 7}) {
		t.Fatalf("filtered domain %v", got)
	}
	if got := fv.Domain(1); got != (query.Interval{Lo: 0, Hi: 9}) {
		t.Fatalf("unfiltered domain %v", got)
	}
	if fv.NumAttrs() != 2 || fv.K() != 1 || fv.Cap(0) != hidden.RQ {
		t.Fatal("passthroughs broken")
	}
}

func TestDiscoverWhereCostNoWorseThanFull(t *testing.T) {
	// A narrow filter should usually cost far less than full discovery;
	// at minimum it must never return tuples outside the filter.
	rng := rand.New(rand.NewSource(63))
	data := randData(rng, 400, 3, 20)
	db := mkDB(t, data, capsAll(3, hidden.RQ), 5, hidden.SumRank{})
	filter := query.Q{{Attr: 0, Op: query.LE, Value: 3}}
	res, err := DiscoverWhere(db, filter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Skyline {
		if !filter.Matches(s) {
			t.Fatalf("tuple %v escapes the filter", s)
		}
	}
	_ = fmt.Sprint()
}
