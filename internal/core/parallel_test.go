package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
)

// instrumentedDB wraps a backend with mutating shared state (a query log
// and counters guarded by one mutex) so that `go test -race` observes the
// engine's access pattern, and so tests can assert exact query accounting:
// no query lost, none double-counted.
type instrumentedDB struct {
	db    Interface
	delay time.Duration // per-query latency (lets overlap shows up on 1 CPU)

	mu       sync.Mutex
	served   int
	log      []string
	inUse    int // queries currently inside Query
	maxInUse int
}

func (i *instrumentedDB) Query(q query.Q) (hidden.Result, error) {
	i.mu.Lock()
	i.inUse++
	if i.inUse > i.maxInUse {
		i.maxInUse = i.inUse
	}
	i.log = append(i.log, q.String())
	i.mu.Unlock()

	if i.delay > 0 {
		time.Sleep(i.delay)
	}
	res, err := i.db.Query(q)

	i.mu.Lock()
	i.inUse--
	if err == nil {
		i.served++
	}
	i.mu.Unlock()
	return res, err
}
func (i *instrumentedDB) NumAttrs() int               { return i.db.NumAttrs() }
func (i *instrumentedDB) K() int                      { return i.db.K() }
func (i *instrumentedDB) Cap(a int) hidden.Capability { return i.db.Cap(a) }
func (i *instrumentedDB) Domain(a int) query.Interval { return i.db.Domain(a) }

func (i *instrumentedDB) stats() (served, maxInUse int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.served, i.maxInUse
}

// parallelWorkloads mirrors the seed datasets/rankings of the sequential
// tests: every capability mixture, several rankings, several shapes.
func parallelWorkloads(t *testing.T) []struct {
	name string
	mk   func() *hidden.DB
	algo func(Interface, Options) (Result, error)
} {
	rng := rand.New(rand.NewSource(11))
	type wl = struct {
		name string
		mk   func() *hidden.DB
		algo func(Interface, Options) (Result, error)
	}
	var out []wl
	for _, r := range testRankings {
		rank := r.rank
		data3 := randData(rng, 400, 3, 40)
		data4 := randData(rng, 300, 4, 25)
		pqData := randData(rng, 250, 3, 9)
		out = append(out,
			wl{"sq-" + r.name, func() *hidden.DB { return mkDB(t, data3, capsAll(3, hidden.SQ), 5, rank) }, SQDBSky},
			wl{"rq-" + r.name, func() *hidden.DB { return mkDB(t, data4, capsAll(4, hidden.RQ), 5, rank) }, RQDBSky},
			wl{"pq-" + r.name, func() *hidden.DB { return mkDB(t, pqData, capsAll(3, hidden.PQ), 4, rank) }, PQDBSky},
			wl{"mq-" + r.name, func() *hidden.DB {
				return mkDB(t, data3, []hidden.Capability{hidden.RQ, hidden.SQ, hidden.PQ}, 5, rank)
			}, MQDBSky},
		)
	}
	return out
}

// TestParallelMatchesSequential is the core acceptance property: for every
// workload, Discover with Parallelism > 1 (with and without the cache)
// returns a skyline identical as a set to the sequential run, with exact
// query accounting against the instrumented backend.
func TestParallelMatchesSequential(t *testing.T) {
	for _, w := range parallelWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			seq, err := w.algo(w.mk(), Options{})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}

			inst := &instrumentedDB{db: w.mk()}
			par, err := w.algo(inst, Options{Parallelism: 4})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if ok, diff := sameTupleSet(par.Skyline, seq.Skyline); !ok {
				t.Fatalf("parallel skyline differs from sequential: %s", diff)
			}
			if !par.Complete {
				t.Fatal("parallel run not marked complete")
			}
			served, _ := inst.stats()
			if par.Queries != served {
				t.Fatalf("accounting: reported %d queries, backend served %d", par.Queries, served)
			}

			cache := qcache.New(qcache.Config{})
			cached, err := w.algo(w.mk(), Options{Parallelism: 4, Cache: cache})
			if err != nil {
				t.Fatalf("parallel+cache: %v", err)
			}
			if ok, diff := sameTupleSet(cached.Skyline, seq.Skyline); !ok {
				t.Fatalf("parallel+cache skyline differs: %s", diff)
			}
			if s := cache.Stats(); s.Lookups != cached.Queries {
				t.Fatalf("cache saw %d lookups, algorithm issued %d", s.Lookups, cached.Queries)
			}
		})
	}
}

// TestParallelSkylineOrderIsDeterministic: the parallel contract includes
// a deterministic merge — same skyline in the same (lexicographic) order
// on every run, whatever the scheduler does.
func TestParallelSkylineOrderIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := randData(rng, 500, 3, 30)
	var prev Result
	for run := 0; run < 4; run++ {
		res, err := RQDBSky(mkDB(t, data, capsAll(3, hidden.RQ), 5, hidden.SumRank{}), Options{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			prev = res
			continue
		}
		if len(res.Skyline) != len(prev.Skyline) {
			t.Fatalf("run %d: %d skyline tuples, previous run had %d", run, len(res.Skyline), len(prev.Skyline))
		}
		for i := range res.Skyline {
			for j := range res.Skyline[i] {
				if res.Skyline[i][j] != prev.Skyline[i][j] {
					t.Fatalf("run %d: skyline order diverged at tuple %d", run, i)
				}
			}
		}
	}
}

// TestParallelBudgetIsExact: with many workers racing one MaxQueries
// budget, never more than MaxQueries backend queries are issued, the
// count is exact, and the anytime contract (partial skyline + ErrBudget)
// holds.
func TestParallelBudgetIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := randData(rng, 800, 4, 100)
	const k = 5
	full, err := RQDBSky(mkDB(t, data, capsAll(4, hidden.RQ), k, hidden.SumRank{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 7, full.Queries / 3} {
		inst := &instrumentedDB{db: mkDB(t, data, capsAll(4, hidden.RQ), k, hidden.SumRank{})}
		res, err := RQDBSky(inst, Options{Parallelism: 8, MaxQueries: budget})
		// budget*k answered tuples cannot even contain the full skyline ⇒
		// completion is provably impossible and ErrBudget mandatory; for
		// looser budgets a (nondeterministically cheaper) parallel run may
		// legitimately finish.
		if budget*k < len(full.Skyline) && !errors.Is(err, ErrBudget) {
			t.Fatalf("budget %d: err = %v, want ErrBudget", budget, err)
		}
		if err != nil && !errors.Is(err, ErrBudget) {
			t.Fatalf("budget %d: unexpected error %v", budget, err)
		}
		served, _ := inst.stats()
		if served > budget {
			t.Fatalf("budget %d: backend served %d queries", budget, served)
		}
		if res.Queries != served {
			t.Fatalf("budget %d: reported %d, served %d", budget, res.Queries, served)
		}
		if errors.Is(err, ErrBudget) && res.Complete {
			t.Fatalf("budget %d: truncated run marked complete", budget)
		}
	}
}

// TestParallelActuallyRunsConcurrently guards against the executor
// silently degrading to sequential: with 8 workers the instrumented
// backend must observe overlapping queries.
func TestParallelActuallyRunsConcurrently(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := randData(rng, 2000, 4, 60)
	inst := &instrumentedDB{db: mkDB(t, data, capsAll(4, hidden.RQ), 5, hidden.SumRank{}), delay: time.Millisecond}
	if _, err := RQDBSky(inst, Options{Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
	if _, maxInUse := inst.stats(); maxInUse < 2 {
		t.Fatalf("max concurrent backend queries = %d; the pool never overlapped work", maxInUse)
	}
}

// TestCacheDedupAcrossRuns: re-running a discovery against the same cache
// answers (nearly) everything from memory — the dedup ratio the engine
// figure reports must be strictly positive on RQ and PQ workloads.
func TestCacheDedupAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, tc := range []struct {
		name string
		caps []hidden.Capability
		algo func(Interface, Options) (Result, error)
	}{
		{"rq", capsAll(3, hidden.RQ), RQDBSky},
		{"pq", capsAll(3, hidden.PQ), PQDBSky},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := randData(rng, 300, 3, 12)
			db := mkDB(t, data, tc.caps, 5, hidden.SumRank{})
			cache := qcache.New(qcache.Config{})
			first, err := tc.algo(db, Options{Cache: cache, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			second, err := tc.algo(db, Options{Cache: cache, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if ok, diff := sameTupleSet(first.Skyline, second.Skyline); !ok {
				t.Fatalf("cached re-run changed the skyline: %s", diff)
			}
			s := cache.Stats()
			if s.DedupRatio() <= 0 {
				t.Fatalf("dedup ratio %v, want > 0 (stats %+v)", s.DedupRatio(), s)
			}
			if db.QueriesIssued() != s.Misses {
				t.Fatalf("backend served %d, cache recorded %d misses", db.QueriesIssued(), s.Misses)
			}
		})
	}
}

// TestDiscoverThreadsParallelismAndCache: the façade-level Discover must
// honor both options for every interface mixture (it dispatches to all
// the specialized algorithms).
func TestDiscoverThreadsParallelismAndCache(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	data := randData(rng, 300, 3, 15)
	for _, caps := range [][]hidden.Capability{
		capsAll(3, hidden.SQ),
		capsAll(3, hidden.RQ),
		capsAll(3, hidden.PQ),
		{hidden.SQ, hidden.RQ, hidden.PQ},
	} {
		seq, err := Discover(mkDB(t, data, caps, 5, hidden.LexRank{}), Options{})
		if err != nil {
			t.Fatal(err)
		}
		cache := qcache.New(qcache.Config{})
		par, err := Discover(mkDB(t, data, caps, 5, hidden.LexRank{}), Options{Parallelism: 6, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := sameTupleSet(par.Skyline, seq.Skyline); !ok {
			t.Fatalf("caps %v: parallel skyline differs: %s", caps, diff)
		}
		if cache.Stats().Lookups == 0 {
			t.Fatalf("caps %v: cache was never consulted", caps)
		}
	}
}
