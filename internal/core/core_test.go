package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/skyline"
)

// mkDB builds a hidden database for tests.
func mkDB(t testing.TB, data [][]int, caps []hidden.Capability, k int, rank hidden.Ranking) *hidden.DB {
	t.Helper()
	db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: k, Rank: rank})
	if err != nil {
		t.Fatalf("hidden.New: %v", err)
	}
	return db
}

func capsAll(m int, c hidden.Capability) []hidden.Capability {
	out := make([]hidden.Capability, m)
	for i := range out {
		out[i] = c
	}
	return out
}

// randData draws n tuples over m attributes uniformly in [0, domain).
func randData(rng *rand.Rand, n, m, domain int) [][]int {
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		data[i] = t
	}
	return data
}

// uniqueData draws n distinct tuples (general positioning, as the paper
// assumes for sky-band discovery: duplicates are indistinguishable through
// a value-level interface).
func uniqueData(rng *rand.Rand, n, m, domain int) [][]int {
	seen := map[string]bool{}
	var data [][]int
	for len(data) < n {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		k := fmt.Sprint(t)
		if !seen[k] {
			seen[k] = true
			data = append(data, t)
		}
	}
	return data
}

// tupleSet canonicalizes a tuple collection to a set of printable keys.
func tupleSet(ts [][]int) map[string]bool {
	set := make(map[string]bool, len(ts))
	for _, t := range ts {
		set[fmt.Sprint(t)] = true
	}
	return set
}

func sameTupleSet(a, b [][]int) (bool, string) {
	sa, sb := tupleSet(a), tupleSet(b)
	for k := range sa {
		if !sb[k] {
			return false, "extra tuple " + k
		}
	}
	for k := range sb {
		if !sa[k] {
			return false, "missing tuple " + k
		}
	}
	return true, ""
}

// checkSkyline runs algo on db and compares against the local ground truth.
func checkSkyline(t *testing.T, db *hidden.DB, algo func(Interface, Options) (Result, error), name string) Result {
	t.Helper()
	res, err := algo(db, Options{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	want := skyline.ComputeTuples(db.GroundTruth())
	if ok, diff := sameTupleSet(res.Skyline, want); !ok {
		t.Fatalf("%s: wrong skyline (%s); got %d want %d tuples", name, diff, len(res.Skyline), len(want))
	}
	if !res.Complete {
		t.Fatalf("%s: result not marked complete", name)
	}
	if res.Queries != db.QueriesIssued() {
		t.Fatalf("%s: reported %d queries, interface served %d", name, res.Queries, db.QueriesIssued())
	}
	return res
}

var testRankings = []struct {
	name string
	rank hidden.Ranking
}{
	{"sum", hidden.SumRank{}},
	{"lex", hidden.LexRank{}},
	{"attr0", hidden.AttrRank{Attr: 0}},
	{"randext", hidden.RandomExtensionRank{Seed: 7}},
	{"adversarial", hidden.AdversarialRank{}},
}

func TestSQDBSkyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{1, 2, 3, 4} {
		for _, k := range []int{1, 3, 10} {
			for _, domain := range []int{4, 50} {
				for _, rk := range testRankings {
					n := 10 + rng.Intn(150)
					data := randData(rng, n, m, domain)
					db := mkDB(t, data, capsAll(m, hidden.SQ), k, rk.rank)
					name := fmt.Sprintf("SQ m=%d k=%d dom=%d rank=%s", m, k, domain, rk.name)
					checkSkyline(t, db, SQDBSky, name)
				}
			}
		}
	}
}

func TestRQDBSkyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int{1, 2, 3, 4} {
		for _, k := range []int{1, 3, 10} {
			for _, domain := range []int{4, 50} {
				for _, rk := range testRankings {
					n := 10 + rng.Intn(150)
					data := randData(rng, n, m, domain)
					db := mkDB(t, data, capsAll(m, hidden.RQ), k, rk.rank)
					name := fmt.Sprintf("RQ m=%d k=%d dom=%d rank=%s", m, k, domain, rk.name)
					checkSkyline(t, db, RQDBSky, name)
				}
			}
		}
	}
}

func TestRQDBSkyMixedSQRQ(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(3)
		caps := make([]hidden.Capability, m)
		for i := range caps {
			if rng.Intn(2) == 0 {
				caps[i] = hidden.SQ
			} else {
				caps[i] = hidden.RQ
			}
		}
		data := randData(rng, 20+rng.Intn(120), m, 12)
		db := mkDB(t, data, caps, 1+rng.Intn(5), hidden.SumRank{})
		checkSkyline(t, db, RQDBSky, fmt.Sprintf("RQ-mixed trial=%d caps=%v", trial, caps))
	}
}

func TestPQ2DSkyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 2, 5} {
		for _, domain := range []int{3, 10, 40} {
			for _, rk := range testRankings {
				n := 5 + rng.Intn(150)
				data := randData(rng, n, 2, domain)
				db := mkDB(t, data, capsAll(2, hidden.PQ), k, rk.rank)
				name := fmt.Sprintf("PQ2D k=%d dom=%d rank=%s", k, domain, rk.name)
				checkSkyline(t, db, PQ2DSky, name)
			}
		}
	}
}

func TestPQDBSkyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range []int{1, 2, 3, 4} {
		for _, k := range []int{1, 3} {
			for _, rk := range testRankings {
				n := 10 + rng.Intn(200)
				data := randData(rng, n, m, 5)
				db := mkDB(t, data, capsAll(m, hidden.PQ), k, rk.rank)
				name := fmt.Sprintf("PQDB m=%d k=%d rank=%s", m, k, rk.name)
				checkSkyline(t, db, PQDBSky, name)
			}
		}
	}
}

func TestMQDBSkyRandomMixtures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	allCaps := []hidden.Capability{hidden.SQ, hidden.RQ, hidden.PQ}
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(3)
		caps := make([]hidden.Capability, m)
		for i := range caps {
			caps[i] = allCaps[rng.Intn(3)]
		}
		domain := 4 + rng.Intn(8)
		data := randData(rng, 20+rng.Intn(180), m, domain)
		rk := testRankings[rng.Intn(len(testRankings))]
		db := mkDB(t, data, caps, 1+rng.Intn(6), rk.rank)
		checkSkyline(t, db, MQDBSky, fmt.Sprintf("MQ trial=%d caps=%v rank=%s", trial, caps, rk.name))
	}
}

func TestDiscoverDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, caps := range [][]hidden.Capability{
		{hidden.SQ, hidden.SQ},
		{hidden.RQ, hidden.RQ},
		{hidden.PQ, hidden.PQ},
		{hidden.SQ, hidden.RQ},
		{hidden.RQ, hidden.PQ},
		{hidden.SQ, hidden.PQ},
		{hidden.SQ, hidden.RQ, hidden.PQ},
	} {
		data := randData(rng, 80, len(caps), 8)
		db := mkDB(t, data, caps, 3, hidden.SumRank{})
		checkSkyline(t, db, Discover, fmt.Sprintf("Discover caps=%v", caps))
	}
}

func TestPaperRunningExample(t *testing.T) {
	// Figure 2's dummy example: t4 dominates nothing and is dominated by
	// nobody; skyline = {t3, t4} ∪ {t1? t2?} — verify against ground truth
	// and check all algorithms agree on every interface type.
	data := [][]int{
		{5, 1, 9},
		{4, 4, 8},
		{1, 3, 7},
		{3, 2, 3},
	}
	want := skyline.ComputeTuples(data)
	for _, tc := range []struct {
		name string
		caps []hidden.Capability
		algo func(Interface, Options) (Result, error)
	}{
		{"SQ", capsAll(3, hidden.SQ), SQDBSky},
		{"RQ", capsAll(3, hidden.RQ), RQDBSky},
		{"PQ", capsAll(3, hidden.PQ), PQDBSky},
		{"MQ", []hidden.Capability{hidden.SQ, hidden.RQ, hidden.PQ}, MQDBSky},
	} {
		db := mkDB(t, data, tc.caps, 1, hidden.SumRank{})
		res, err := tc.algo(db, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ok, diff := sameTupleSet(res.Skyline, want); !ok {
			t.Errorf("%s: %s", tc.name, diff)
		}
	}
}

func TestAnytimeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := randData(rng, 400, 4, 30)
	full := skyline.ComputeTuples(data)
	fullSet := tupleSet(full)

	db := mkDB(t, data, capsAll(4, hidden.SQ), 2, hidden.SumRank{})
	ref, err := SQDBSky(db, Options{})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for _, budget := range []int{1, 3, ref.Queries / 2} {
		db := mkDB(t, data, capsAll(4, hidden.SQ), 2, hidden.SumRank{})
		res, err := SQDBSky(db, Options{MaxQueries: budget})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("budget %d: want ErrBudget, got %v", budget, err)
		}
		if res.Complete {
			t.Fatalf("budget %d: partial result marked complete", budget)
		}
		if res.Queries > budget {
			t.Fatalf("budget %d: issued %d queries", budget, res.Queries)
		}
		// Anytime property: every returned tuple is a true skyline tuple.
		for _, s := range res.Skyline {
			if !fullSet[fmt.Sprint(s)] {
				t.Fatalf("budget %d: partial result contains non-skyline tuple %v", budget, s)
			}
		}
	}
}

func TestRateLimitedInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := randData(rng, 300, 3, 20)
	db, err := hidden.New(hidden.Config{
		Data: data, Caps: capsAll(3, hidden.RQ), K: 1, QueryLimit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RQDBSky(db, Options{})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget from rate limit, got %v", err)
	}
	if res.Complete {
		t.Fatal("rate-limited result marked complete")
	}
}

func TestTraceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := randData(rng, 250, 3, 25)
	db := mkDB(t, data, capsAll(3, hidden.RQ), 5, hidden.SumRank{})
	res, err := RQDBSky(db, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace empty")
	}
	last := 0
	for _, ev := range res.Trace {
		if ev.Queries < last {
			t.Fatalf("trace not monotone: %d after %d", ev.Queries, last)
		}
		last = ev.Queries
		if len(ev.Tuple) != 3 {
			t.Fatalf("trace tuple has %d attrs", len(ev.Tuple))
		}
	}
	// Every final skyline tuple must appear in the trace.
	tr := make([][]int, len(res.Trace))
	for i, ev := range res.Trace {
		tr[i] = ev.Tuple
	}
	trSet := tupleSet(tr)
	for _, s := range res.Skyline {
		if !trSet[fmt.Sprint(s)] {
			t.Fatalf("skyline tuple %v missing from trace", s)
		}
	}
}

func TestSkipProvablyEmptyCostsNoMore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randData(rng, 150, 3, 10)
	run := func(skip bool) int {
		db := mkDB(t, data, capsAll(3, hidden.SQ), 1, hidden.SumRank{})
		res, err := SQDBSky(db, Options{SkipProvablyEmpty: skip})
		if err != nil {
			t.Fatal(err)
		}
		want := skyline.ComputeTuples(data)
		if ok, diff := sameTupleSet(res.Skyline, want); !ok {
			t.Fatalf("skip=%v: %s", skip, diff)
		}
		return res.Queries
	}
	with, without := run(true), run(false)
	if with > without {
		t.Fatalf("SkipProvablyEmpty increased cost: %d > %d", with, without)
	}
}

func TestBandAgainstGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, kBand := range []int{1, 2, 3} {
		for trial := 0; trial < 8; trial++ {
			m := 2 + rng.Intn(2)
			data := uniqueData(rng, 20+rng.Intn(40), m, 8)
			wantIdx := skyline.Skyband(data, kBand)
			want := make([][]int, len(wantIdx))
			for i, j := range wantIdx {
				want[i] = data[j]
			}

			// RQ band.
			db := mkDB(t, data, capsAll(m, hidden.RQ), 5, hidden.SumRank{})
			res, err := RQBandSky(db, kBand, Options{})
			if err != nil {
				t.Fatalf("RQBandSky: %v", err)
			}
			if !res.Complete {
				t.Fatal("RQBandSky: not complete")
			}
			if ok, diff := sameTupleSet(res.Tuples, want); !ok {
				t.Fatalf("RQBandSky K=%d m=%d: %s", kBand, m, diff)
			}

			// PQ band, k >= K fast path.
			db = mkDB(t, data, capsAll(m, hidden.PQ), 5, hidden.SumRank{})
			pres, err := PQBandSky(db, kBand, Options{})
			if err != nil {
				t.Fatalf("PQBandSky: %v", err)
			}
			if ok, diff := sameTupleSet(pres.Tuples, want); !ok {
				t.Fatalf("PQBandSky K=%d m=%d: %s", kBand, m, diff)
			}

			// PQ band with k < K exercises the 0D cell fallback.
			if kBand > 1 {
				db = mkDB(t, data, capsAll(m, hidden.PQ), kBand-1, hidden.SumRank{})
				pres, err = PQBandSky(db, kBand, Options{})
				if err != nil {
					t.Fatalf("PQBandSky fallback: %v", err)
				}
				if ok, diff := sameTupleSet(pres.Tuples, want); !ok {
					t.Fatalf("PQBandSky fallback K=%d m=%d: %s", kBand, m, diff)
				}
			}

			// SQ band: complete runs must match; partial runs must be a
			// subset with honest flagging.
			db = mkDB(t, data, capsAll(m, hidden.SQ), kBand+2, hidden.SumRank{})
			sres, err := SQBandSky(db, kBand, Options{})
			if err != nil {
				t.Fatalf("SQBandSky: %v", err)
			}
			wantSet := tupleSet(want)
			for _, u := range sres.Tuples {
				if !wantSet[fmt.Sprint(u)] {
					t.Fatalf("SQBandSky: non-band tuple %v", u)
				}
			}
			if sres.Complete {
				if ok, diff := sameTupleSet(sres.Tuples, want); !ok {
					t.Fatalf("SQBandSky claims complete but %s", diff)
				}
			}
		}
	}
}

func TestBandCountsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := uniqueData(rng, 120, 3, 8)
	db := mkDB(t, data, capsAll(3, hidden.RQ), 4, hidden.SumRank{})
	res, err := RQBandSky(db, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := skyline.DominationCount(data)
	byKey := map[string]int{}
	for i, tup := range data {
		byKey[fmt.Sprint(tup)] = counts[i]
	}
	for i, tup := range res.Tuples {
		if want, ok := byKey[fmt.Sprint(tup)]; ok && res.Counts[i] != want {
			t.Fatalf("tuple %v: count %d, ground truth %d", tup, res.Counts[i], want)
		}
		if res.Counts[i] >= 3 {
			t.Fatalf("tuple %v: count %d not in 3-band", tup, res.Counts[i])
		}
	}
	if sort.SliceIsSorted(res.Counts, func(a, b int) bool { return false }) {
		// no-op use of sort to keep the import honest for future edits
		_ = res.Counts
	}
}
