package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

// TestMQRangeOnlyPhaseWouldMissTuples reproduces §6.1's motivating
// counterexample: applying the range algorithm alone (point attributes set
// to "*") misses skyline tuples that are range-dominated but superior on a
// point attribute — and MQ-DB-SKY's point phase recovers exactly those.
func TestMQRangeOnlyPhaseWouldMissTuples(t *testing.T) {
	// A0 is RQ, A1 is PQ. u = (5, 0) is range-dominated by s = (1, 3)
	// (1 < 5) but beats it on the point attribute, so u is on the skyline.
	data := [][]int{
		{1, 3},
		{5, 0},
		{7, 5},
	}
	caps := []hidden.Capability{hidden.RQ, hidden.PQ}
	db := mkDB(t, data, caps, 1, hidden.AttrRank{Attr: 0})
	res, err := MQDBSky(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := skyline.ComputeTuples(data) // {1,3} and {5,0}
	if ok, diff := sameTupleSet(res.Skyline, want); !ok {
		t.Fatalf("%s", diff)
	}

	// The pure range phase alone (RQ over A0 with A1 free) returns only
	// the range-minimal tuple: demonstrate the gap the point phase closes.
	spy := &spyDB{DB: mkDB(t, data, caps, 1, hidden.AttrRank{Attr: 0})}
	c := newCtx(spy, Options{})
	w := newTreeWalker(c, nil, []int{0}, []bool{true}, true)
	if err := w.run(); err != nil {
		t.Fatal(err)
	}
	if len(c.sky) != 1 || fmt.Sprint(c.sky[0]) != "[1 3]" {
		t.Fatalf("range phase found %v, expected only [1 3]", c.sky)
	}
}

func TestMQSkippableCombo(t *testing.T) {
	pqA := []int{1, 2}
	phase1 := [][]int{
		{0, 2, 3},
		{1, 1, 4},
	}
	combo := func(v1, v2 int) query.Q {
		return query.Q{
			{Attr: 1, Op: query.EQ, Value: v1},
			{Attr: 2, Op: query.EQ, Value: v2},
		}
	}
	// (2,4): every phase-1 tuple is <= on both point attributes: skip.
	if !mqSkippableCombo(combo(2, 4), pqA, phase1) {
		t.Error("(2,4) should be skippable")
	}
	// (0,9): beats both phase-1 tuples on A1: must be explored.
	if mqSkippableCombo(combo(0, 9), pqA, phase1) {
		t.Error("(0,9) must not be skipped")
	}
	// (1,3): beats {1,1,4} on A2 (3 < 4): must be explored.
	if mqSkippableCombo(combo(1, 3), pqA, phase1) {
		t.Error("(1,3) must not be skipped")
	}
}

// TestMQEq17Pruning verifies that the point-phase probes carry the
// "A_j >= min_S t[A_j]" bounds on two-ended range attributes (eq. 17) and
// never use ">=" on one-ended ones. The bound only bites when the
// advertised domain is looser than the data (as real search forms are):
// against tight observed domains, min_S t[A_j] IS the advertised minimum.
func TestMQEq17Pruning(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	data := randData(rng, 150, 3, 6)
	for i := range data {
		data[i][0] += 2 // data occupies [2,7] while the form advertises [0,9]
	}
	inner, err := hidden.New(hidden.Config{
		Data: data,
		Caps: []hidden.Capability{hidden.RQ, hidden.SQ, hidden.PQ},
		K:    2,
		Domains: []query.Interval{
			{Lo: 0, Hi: 9}, {Lo: 0, Hi: 9}, {Lo: 0, Hi: 9},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	spy := &spyDB{DB: inner}
	res, err := MQDBSky(spy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst := skyline.ComputeTuples(data)
	if ok, diff := sameTupleSet(res.Skyline, checkAgainst); !ok {
		t.Fatal(diff)
	}
	sawEq17 := false
	for _, q := range spy.queries {
		hasPointEq := false
		for _, p := range q {
			if p.Attr == 2 && p.Op == query.EQ {
				hasPointEq = true
			}
		}
		for _, p := range q {
			if p.Attr == 1 && (p.Op == query.GE || p.Op == query.GT) {
				t.Fatalf("illegal >= on SQ attribute: %v", q)
			}
			if hasPointEq && p.Attr == 0 && p.Op == query.GE {
				sawEq17 = true
			}
		}
	}
	if !sawEq17 {
		t.Error("no point-phase probe carried the eq. 17 range bound")
	}
}

// TestMQHierarchicalProbePruning: an empty prefix probe must prune the
// entire completion sub-lattice — verified by counting probes on a
// database where one point value is unoccupied.
func TestMQHierarchicalProbePruning(t *testing.T) {
	// A1 (PQ) takes values {0, 2} only; value 1 is a hole. A2 (PQ) has 4
	// values. The probe A1=1 returns empty, so no A1=1 ∧ A2=v probe may
	// ever be issued.
	rng := rand.New(rand.NewSource(81))
	var data [][]int
	for i := 0; i < 120; i++ {
		v1 := []int{0, 2}[rng.Intn(2)]
		data = append(data, []int{rng.Intn(8), v1, rng.Intn(4)})
	}
	caps := []hidden.Capability{hidden.RQ, hidden.PQ, hidden.PQ}
	spy := &spyDB{DB: mkDB(t, data, caps, 2, hidden.SumRank{})}
	if _, err := MQDBSky(spy, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, q := range spy.queries {
		pinsHole := false
		pinsDeeper := false
		for _, p := range q {
			if p.Attr == 1 && p.Op == query.EQ && p.Value == 1 {
				pinsHole = true
			}
			if p.Attr == 2 && p.Op == query.EQ {
				pinsDeeper = true
			}
		}
		if pinsHole && pinsDeeper {
			t.Fatalf("probe below an empty prefix was issued: %v", q)
		}
	}
}

// TestMQCellResolution: a cell whose probe overflows is resolved by the
// range-phase tree restricted to the cell; all its skyline tuples must
// surface.
func TestMQCellResolution(t *testing.T) {
	// One point value (A1=0) hosts many mutually incomparable tuples on
	// the range attribute pair — the cell must be fully resolved.
	var data [][]int
	for i := 0; i < 12; i++ {
		data = append(data, []int{i, 0, 11 - i})
	}
	data = append(data, []int{0, 1, 0}) // range-phase favourite
	caps := []hidden.Capability{hidden.RQ, hidden.PQ, hidden.RQ}
	db := mkDB(t, data, caps, 1, hidden.LexRank{Priority: []int{1, 0, 2}})
	res, err := MQDBSky(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := sameTupleSet(res.Skyline, skyline.ComputeTuples(data)); !ok {
		t.Fatal(diff)
	}
}

// TestMQDegenerateDispatch: every pure interface goes to its specialist.
func TestMQDegenerateDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	data := randData(rng, 100, 2, 8)
	for _, tc := range []struct {
		caps []hidden.Capability
	}{
		{capsAll(2, hidden.SQ)},
		{capsAll(2, hidden.RQ)},
		{capsAll(2, hidden.PQ)},
	} {
		a, err := MQDBSky(mkDB(t, data, tc.caps, 3, hidden.SumRank{}), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := skyline.ComputeTuples(data)
		if ok, diff := sameTupleSet(a.Skyline, want); !ok {
			t.Fatalf("caps %v: %s", tc.caps, diff)
		}
	}
}

// TestMQStress: larger randomized mixes across every ranking, checked
// against ground truth — the MQ integration safety net.
func TestMQStress(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	allCaps := []hidden.Capability{hidden.SQ, hidden.RQ, hidden.PQ}
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(4)
		caps := make([]hidden.Capability, m)
		hasPQ, hasRange := false, false
		for i := range caps {
			caps[i] = allCaps[rng.Intn(3)]
			if caps[i] == hidden.PQ {
				hasPQ = true
			} else {
				hasRange = true
			}
		}
		if !hasPQ || !hasRange {
			continue // pure cases covered elsewhere
		}
		domain := 3 + rng.Intn(6)
		data := randData(rng, 50+rng.Intn(250), m, domain)
		rk := testRankings[rng.Intn(len(testRankings))]
		db := mkDB(t, data, caps, 1+rng.Intn(4), rk.rank)
		res, err := MQDBSky(db, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ok, diff := sameTupleSet(res.Skyline, skyline.ComputeTuples(data)); !ok {
			t.Fatalf("trial %d caps=%v rank=%s: %s", trial, caps, rk.name, diff)
		}
	}
}

// TestMQBudgetAnytime: interrupting MQ-DB-SKY mid-run yields only genuine
// skyline tuples.
func TestMQBudgetAnytime(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	data := randData(rng, 400, 3, 8)
	caps := []hidden.Capability{hidden.RQ, hidden.RQ, hidden.PQ}
	truth := tupleSet(skyline.ComputeTuples(data))
	for _, budget := range []int{2, 10, 50} {
		db := mkDB(t, data, caps, 2, hidden.SumRank{})
		res, _ := MQDBSky(db, Options{MaxQueries: budget})
		for _, s := range res.Skyline {
			if !truth[fmt.Sprint(s)] {
				t.Fatalf("budget %d: non-skyline tuple %v in partial result", budget, s)
			}
		}
	}
}
