package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// The parity suite: core.Run must be *exactly* the legacy entry points
// — same skyline set, same query count — for every point of Request
// space that has a legacy equivalent. The planner only selects and
// wires; it must never add, drop or reorder a query. Sequential runs
// are bit-for-bit deterministic, so those cells assert exact query
// counts; parallel cells assert the set contract plus exact accounting
// (reported count == queries the backend served), since worker
// scheduling legitimately varies the traversal between any two
// parallel runs — legacy ones included.

// planParityDB builds one deterministic database per cell so the legacy
// and planner runs each get a fresh query counter over identical data.
func planParityDB(t *testing.T, caps []hidden.Capability, seed int64) func() *hidden.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := uniqueData(rng, 70, len(caps), 12)
	return func() *hidden.DB {
		return mkDB(t, data, caps, 4, hidden.SumRank{})
	}
}

func TestRunMatchesLegacySkyline(t *testing.T) {
	sq, rq, pq := hidden.SQ, hidden.RQ, hidden.PQ
	cells := []struct {
		name   string
		caps   []hidden.Capability
		req    Request
		legacy func(Interface, Options) (Result, error)
	}{
		{"auto/sq-caps", []hidden.Capability{sq, sq}, Request{}, Discover},
		{"auto/rq-caps", []hidden.Capability{rq, rq}, Request{}, Discover},
		{"auto/pq-caps", []hidden.Capability{pq, pq}, Request{}, Discover},
		{"auto/mixed", []hidden.Capability{sq, rq, pq}, Request{}, Discover},
		{"sq/explicit", []hidden.Capability{sq, sq}, Request{Algo: AlgoSQ}, SQDBSky},
		{"sq/on-rq", []hidden.Capability{rq, rq}, Request{Algo: AlgoSQ}, SQDBSky},
		{"rq/explicit", []hidden.Capability{rq, rq}, Request{Algo: AlgoRQ}, RQDBSky},
		{"rq/mixed-sq", []hidden.Capability{sq, rq}, Request{Algo: AlgoRQ}, RQDBSky},
		{"pq/explicit", []hidden.Capability{pq, pq}, Request{Algo: AlgoPQ}, PQDBSky},
		{"mq/explicit", []hidden.Capability{sq, rq, pq}, Request{Algo: AlgoMQ}, MQDBSky},
		{"filter/auto", []hidden.Capability{rq, rq},
			Request{Filter: query.MustParse("A0<8,A1>=2")},
			func(db Interface, opt Options) (Result, error) {
				return DiscoverWhere(db, query.MustParse("A0<8,A1>=2"), opt)
			}},
		{"filter/pq-eq", []hidden.Capability{pq, pq},
			Request{Filter: query.MustParse("A0=3")},
			func(db Interface, opt Options) (Result, error) {
				return DiscoverWhere(db, query.MustParse("A0=3"), opt)
			}},
	}
	for _, cell := range cells {
		for _, par := range []int{1, 3} {
			name := cell.name
			if par > 1 {
				name += "/parallel"
			}
			t.Run(name, func(t *testing.T) {
				fresh := planParityDB(t, cell.caps, 42)
				opt := Options{Parallelism: par}

				legacyDB := fresh()
				want, err := cell.legacy(legacyDB, opt)
				if err != nil {
					t.Fatalf("legacy: %v", err)
				}
				plannedDB := fresh()
				got, err := Run(plannedDB, cell.req, opt)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}

				if ok, diff := sameTupleSet(got.Skyline, want.Skyline); !ok {
					t.Fatalf("skyline mismatch: %s (got %d, want %d tuples)",
						diff, len(got.Skyline), len(want.Skyline))
				}
				if got.Complete != want.Complete {
					t.Fatalf("Complete: got %v, want %v", got.Complete, want.Complete)
				}
				if got.Queries != plannedDB.QueriesIssued() {
					t.Fatalf("accounting: Run reported %d queries, backend served %d",
						got.Queries, plannedDB.QueriesIssued())
				}
				if par == 1 && got.Queries != want.Queries {
					t.Fatalf("cost: Run spent %d queries, legacy %d", got.Queries, want.Queries)
				}
			})
		}
	}
}

func TestRunMatchesLegacyBand(t *testing.T) {
	sq, rq, pq := hidden.SQ, hidden.RQ, hidden.PQ
	cells := []struct {
		name   string
		caps   []hidden.Capability
		req    Request
		legacy func(Interface, int, Options) (BandResult, error)
	}{
		{"band/auto-rq", []hidden.Capability{rq, rq}, Request{Band: 2}, RQBandSky},
		{"band/auto-pq", []hidden.Capability{pq, pq}, Request{Band: 2}, PQBandSky},
		{"band/auto-sq", []hidden.Capability{sq, sq}, Request{Band: 2}, SQBandSky},
		{"band/auto-sqrq", []hidden.Capability{sq, rq}, Request{Band: 2}, SQBandSky},
		{"band/explicit-rq", []hidden.Capability{rq, rq}, Request{Algo: AlgoRQ, Band: 3}, RQBandSky},
		{"band/explicit-pq", []hidden.Capability{pq, pq}, Request{Algo: AlgoPQ, Band: 3}, PQBandSky},
		{"band/explicit-sq-on-rq", []hidden.Capability{rq, rq}, Request{Algo: AlgoSQ, Band: 2}, SQBandSky},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			fresh := planParityDB(t, cell.caps, 99)
			legacyDB := fresh()
			want, err := cell.legacy(legacyDB, cell.req.Band, Options{})
			if err != nil {
				t.Fatalf("legacy: %v", err)
			}
			plannedDB := fresh()
			got, err := Run(plannedDB, cell.req, Options{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if ok, diff := sameTupleSet(got.Skyline, want.Tuples); !ok {
				t.Fatalf("band mismatch: %s (got %d, want %d tuples)",
					diff, len(got.Skyline), len(want.Tuples))
			}
			if got.Queries != want.Queries {
				t.Fatalf("cost: Run spent %d queries, legacy %d", got.Queries, want.Queries)
			}
			if got.Complete != want.Complete {
				t.Fatalf("Complete: got %v, want %v", got.Complete, want.Complete)
			}
			if got.Band != cell.req.Band {
				t.Fatalf("Result.Band = %d, want %d", got.Band, cell.req.Band)
			}
			if len(got.BandCounts) != len(got.Skyline) {
				t.Fatalf("BandCounts has %d entries for %d tuples", len(got.BandCounts), len(got.Skyline))
			}
		})
	}
}

// TestRunMatchesLegacyResume: the planner's resumable path is the same
// checkpointed session walk, slice for slice — identical skyline set
// and identical cumulative query count under an interrupting budget.
func TestRunMatchesLegacyResume(t *testing.T) {
	fresh := planParityDB(t, capsAll(2, hidden.RQ), 7)

	legacyDB := fresh()
	ls := NewSession(legacyDB)
	var want Result
	for i := 0; i < 200 && !ls.Done(); i++ {
		var err error
		want, err = ls.Resume(legacyDB, Options{MaxQueries: 5})
		if err != nil && !errors.Is(err, ErrBudget) {
			t.Fatalf("legacy resume: %v", err)
		}
	}

	plannedDB := fresh()
	req := Request{Resumable: true}
	plan, err := Plan(plannedDB, req)
	if err != nil {
		t.Fatal(err)
	}
	sess := plan.Session()
	if sess == nil {
		t.Fatal("resumable plan has no session")
	}
	var got Result
	for i := 0; i < 200 && !sess.Done(); i++ {
		req.Session = sess
		got, err = Run(plannedDB, req, Options{MaxQueries: 5})
		if err != nil && !errors.Is(err, ErrBudget) {
			t.Fatalf("planned resume: %v", err)
		}
	}

	if !want.Complete || !got.Complete {
		t.Fatalf("runs incomplete: legacy %v, planned %v", want.Complete, got.Complete)
	}
	if ok, diff := sameTupleSet(got.Skyline, want.Skyline); !ok {
		t.Fatalf("skyline mismatch: %s", diff)
	}
	if got.Queries != want.Queries {
		t.Fatalf("cost: planned sessions spent %d queries, legacy %d", got.Queries, want.Queries)
	}
}

// TestResumeFilterPinned: a checkpoint records the filter it was
// planned with, and resuming it under a different (or dropped) filter
// is a typed error — the frontier would be neither the filtered nor
// the full skyline.
func TestResumeFilterPinned(t *testing.T) {
	fresh := planParityDB(t, capsAll(2, hidden.RQ), 8)
	db := fresh()
	filter := query.MustParse("A0<6")
	plan, err := Plan(db, Request{Resumable: true, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	sess := plan.Session()
	if sess.Filter == "" {
		t.Fatal("filtered plan's session carries no filter pin")
	}

	// The same filter replans (the CLI's next-day invocation).
	if _, err := Plan(db, Request{Resumable: true, Filter: filter, Session: sess}); err != nil {
		t.Fatalf("same-filter resume rejected: %v", err)
	}
	// The pin survives serialization.
	var buf bytes.Buffer
	if err := sess.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(db, Request{Resumable: true, Filter: filter, Session: loaded}); err != nil {
		t.Fatalf("same-filter resume of reloaded session rejected: %v", err)
	}
	// A different filter, or forgetting it, is caught.
	if _, err := Plan(db, Request{Resumable: true, Filter: query.MustParse("A0<9"), Session: loaded}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("changed-filter resume: got %v, want ErrUnsupported", err)
	}
	if _, err := Plan(db, Request{Resumable: true, Session: loaded}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("dropped-filter resume: got %v, want ErrUnsupported", err)
	}
	// Pre-planner checkpoints (no pin) still resume unfiltered.
	legacy := NewSession(db)
	if _, err := Plan(db, Request{Resumable: true, Session: legacy}); err != nil {
		t.Errorf("legacy unfiltered session rejected: %v", err)
	}
}

func TestPlanResolvesAuto(t *testing.T) {
	sq, rq, pq := hidden.SQ, hidden.RQ, hidden.PQ
	cases := []struct {
		caps []hidden.Capability
		req  Request
		want Algo
	}{
		{[]hidden.Capability{sq, sq}, Request{}, AlgoSQ},
		{[]hidden.Capability{sq, rq}, Request{}, AlgoRQ},
		{[]hidden.Capability{rq, rq}, Request{}, AlgoRQ},
		{[]hidden.Capability{pq, pq}, Request{}, AlgoPQ},
		{[]hidden.Capability{sq, pq}, Request{}, AlgoMQ},
		{[]hidden.Capability{rq, rq}, Request{Band: 2}, AlgoRQ},
		{[]hidden.Capability{pq, pq}, Request{Band: 2}, AlgoPQ},
		{[]hidden.Capability{sq, rq}, Request{Band: 2}, AlgoSQ},
		{[]hidden.Capability{rq, rq}, Request{Resumable: true}, AlgoSQ},
		{[]hidden.Capability{rq, rq}, Request{Algo: "SQ"}, AlgoSQ}, // case-insensitive
	}
	for _, tc := range cases {
		db := planParityDB(t, tc.caps, 1)()
		plan, err := Plan(db, tc.req)
		if err != nil {
			t.Errorf("Plan(%v caps, %+v): %v", tc.caps, tc.req, err)
			continue
		}
		if plan.Algo != tc.want {
			t.Errorf("Plan(%v caps, %+v) resolved %q, want %q", tc.caps, tc.req, plan.Algo, tc.want)
		}
	}
}

func TestPlanTypedErrors(t *testing.T) {
	sq, rq, pq := hidden.SQ, hidden.RQ, hidden.PQ
	unsupported := []struct {
		name string
		caps []hidden.Capability
		req  Request
	}{
		{"mq-band", []hidden.Capability{sq, rq, pq}, Request{Algo: AlgoMQ, Band: 2}},
		{"auto-band-mixed", []hidden.Capability{rq, pq}, Request{Band: 2}},
		{"rq-band-on-sq", []hidden.Capability{sq, sq}, Request{Algo: AlgoRQ, Band: 2}},
		{"pq-band-on-rq", []hidden.Capability{rq, rq}, Request{Algo: AlgoPQ, Band: 2}},
		{"sq-band-on-pq", []hidden.Capability{pq, pq}, Request{Algo: AlgoSQ, Band: 2}},
		{"resumable-rq", []hidden.Capability{rq, rq}, Request{Algo: AlgoRQ, Resumable: true}},
		{"resumable-band", []hidden.Capability{rq, rq}, Request{Band: 2, Resumable: true}},
		{"resumable-on-pq", []hidden.Capability{pq, pq}, Request{Resumable: true}},
		{"sq-on-pq", []hidden.Capability{pq, pq}, Request{Algo: AlgoSQ}},
		{"rq-on-pq", []hidden.Capability{rq, pq}, Request{Algo: AlgoRQ}},
		{"filter-range-on-pq", []hidden.Capability{pq, pq}, Request{Filter: query.MustParse("A0<5")}},
		{"filter-ge-on-sq", []hidden.Capability{sq, sq}, Request{Filter: query.MustParse("A1>=3")}},
		{"filter-attr-oob", []hidden.Capability{rq, rq}, Request{Filter: query.MustParse("A7=1")}},
	}
	for _, tc := range unsupported {
		t.Run(tc.name, func(t *testing.T) {
			db := planParityDB(t, tc.caps, 2)()
			_, err := Plan(db, tc.req)
			if !errors.Is(err, ErrUnsupported) {
				t.Fatalf("got %v, want ErrUnsupported", err)
			}
			var pe *PlanError
			if !errors.As(err, &pe) || pe.Reason == "" {
				t.Fatalf("error %v carries no *PlanError reason", err)
			}
			if served := db.QueriesIssued(); served != 0 {
				t.Fatalf("planning issued %d queries", served)
			}
		})
	}

	db := planParityDB(t, capsAll(2, rq), 3)()
	if _, err := Plan(db, Request{Algo: "quantum"}); err == nil || errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown algorithm: got %v, want a plain parse error", err)
	}
	if _, err := Plan(db, Request{Band: -1}); err == nil {
		t.Error("negative band accepted")
	}
	if _, err := Plan(db, Request{Resumable: true, Session: &Session{Attrs: 5}}); err == nil {
		t.Error("session schema mismatch accepted")
	}
}
