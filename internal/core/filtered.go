package core

import (
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// DiscoverWhere discovers the skyline of the subset of the database
// matching the given conjunctive filter — §2.1's observation that
// constrained skylines need no new machinery: "simply append the filtering
// conditions as conjunctive predicates to all queries issued". The filter
// must only use predicates the interface supports on the respective
// attributes; the algorithm choice then follows the interface mixture as
// in Discover. It is the Filter-only point of the planner's Request
// space, which keeps the validation rules in one place (Plan).
//
// Example: the skyline of nonstop flights only —
//
//	DiscoverWhere(db, query.Q{{Attr: stops, Op: query.EQ, Value: 0}}, opt)
func DiscoverWhere(db Interface, filter query.Q, opt Options) (Result, error) {
	return Run(db, Request{Filter: filter}, opt)
}

// filteredView presents the subset of a hidden database matching a
// conjunctive filter as a database of its own: every query silently
// carries the filter, and the advertised domains shrink to the filter's
// box. All discovery algorithms work through it unchanged.
type filteredView struct {
	db     Interface
	filter query.Q
}

func (f *filteredView) Query(q query.Q) (hidden.Result, error) {
	merged := f.filter.Clone()
	merged = append(merged, q...)
	return f.db.Query(merged)
}

func (f *filteredView) NumAttrs() int { return f.db.NumAttrs() }

func (f *filteredView) K() int { return f.db.K() }

func (f *filteredView) Cap(i int) hidden.Capability { return f.db.Cap(i) }

func (f *filteredView) Domain(i int) query.Interval {
	dom := f.db.Domain(i)
	domains := make([]query.Interval, f.db.NumAttrs())
	for a := range domains {
		domains[a] = f.db.Domain(a)
	}
	return f.filter.Canonicalize(domains).Dims[i].Intersect(dom)
}
