package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hiddensky/internal/analysis"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

// spyDB wraps a hidden database and records every query and answer.
type spyDB struct {
	*hidden.DB
	queries []query.Q
	answers []hidden.Result
}

func (s *spyDB) Query(q query.Q) (hidden.Result, error) {
	res, err := s.DB.Query(q)
	if err == nil {
		s.queries = append(s.queries, q.Clone())
		s.answers = append(s.answers, res)
	}
	return res, err
}

// SQ-DB-SKY §3.2: the top-1 answer of every issued query is a skyline
// tuple, because SQ queries are downward-closed under dominance.
func TestSQTopAnswersAreSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		data := randData(rng, 150, 3, 12)
		truth := tupleSet(skyline.ComputeTuples(data))
		spy := &spyDB{DB: mkDB(t, data, capsAll(3, hidden.SQ), 3, hidden.SumRank{})}
		if _, err := SQDBSky(spy, Options{}); err != nil {
			t.Fatal(err)
		}
		for i, res := range spy.answers {
			if len(res.Tuples) == 0 {
				continue
			}
			if !truth[fmt.Sprint(res.Tuples[0])] {
				t.Fatalf("query %v returned non-skyline top-1 %v", spy.queries[i], res.Tuples[0])
			}
		}
	}
}

// SQ-DB-SKY only ever issues predicates its interface supports.
func TestAlgorithmsRespectCapabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		caps []hidden.Capability
		algo func(Interface, Options) (Result, error)
	}{
		{capsAll(3, hidden.SQ), SQDBSky},
		{capsAll(3, hidden.RQ), RQDBSky},
		{capsAll(3, hidden.PQ), PQDBSky},
		{[]hidden.Capability{hidden.SQ, hidden.RQ, hidden.PQ}, MQDBSky},
	}
	for _, tc := range cases {
		data := randData(rng, 120, 3, 6)
		spy := &spyDB{DB: mkDB(t, data, tc.caps, 2, hidden.SumRank{})}
		if _, err := tc.algo(spy, Options{}); err != nil {
			t.Fatal(err)
		}
		for _, q := range spy.queries {
			for _, p := range q {
				if !tc.caps[p.Attr].Allows(p.Op) {
					t.Fatalf("caps %v: issued %v", tc.caps, q)
				}
			}
		}
	}
}

// RQ-DB-SKY §4: sibling branches are mutually exclusive, so no two issued
// R(q) answers can return the same previously-unseen tuple... more simply,
// the early-termination detection must never leave RQ costing more than a
// small factor of SQ on identical data, and with large skylines it must be
// strictly cheaper (Figure 6's claim).
func TestRQBeatsSQOnLargeSkylines(t *testing.T) {
	// Anti-correlated 4D data: large skyline. In two dimensions the SQ
	// branches partition the skyline exactly, so the gap only opens at
	// higher dimensionality, where a skyline tuple matches several
	// branches and SQ-DB-SKY re-returns it; RQ-DB-SKY's mutually
	// exclusive R(q) queries are immune — the Figure 6 gap.
	d := make([][]int, 400)
	rng := rand.New(rand.NewSource(22))
	for i := range d {
		a, c := rng.Intn(32), rng.Intn(32)
		d[i] = []int{
			a, 31 - a + rng.Intn(5),
			c, 31 - c + rng.Intn(5),
		}
	}
	sqRes, err := SQDBSky(mkDB(t, d, capsAll(4, hidden.SQ), 1, hidden.AdversarialRank{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rqRes, err := RQDBSky(mkDB(t, d, capsAll(4, hidden.RQ), 1, hidden.AdversarialRank{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rqRes.Skyline) < 40 {
		t.Fatalf("test data should have a large skyline, got %d", len(rqRes.Skyline))
	}
	if rqRes.Queries >= sqRes.Queries {
		t.Fatalf("RQ (%d) should beat SQ (%d) when |S|=%d", rqRes.Queries, sqRes.Queries, len(rqRes.Skyline))
	}
}

// The paper's k-effect (§3.1, Figure 13): a larger k never hurts and
// eventually helps, because answers carry more tuples and nodes become
// leaves earlier.
func TestLargerKReducesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := randData(rng, 600, 3, 40)
	prev := -1
	for _, k := range []int{1, 5, 25, 100} {
		res, err := RQDBSky(mkDB(t, data, capsAll(3, hidden.RQ), k, hidden.SumRank{}), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && res.Queries > prev*2 {
			t.Fatalf("k=%d cost %d regressed badly from %d", k, res.Queries, prev)
		}
		prev = res.Queries
	}
	small, _ := RQDBSky(mkDB(t, data, capsAll(3, hidden.RQ), 1, hidden.SumRank{}), Options{})
	large, _ := RQDBSky(mkDB(t, data, capsAll(3, hidden.RQ), 100, hidden.SumRank{}), Options{})
	if large.Queries > small.Queries {
		t.Fatalf("k=100 (%d queries) should not cost more than k=1 (%d)", large.Queries, small.Queries)
	}
}

// PQ-2D-SKY §5.1: equation (11) — the sum of per-gap minima along the
// skyline staircase — lower-bounds any complete discovery, and the
// rectangle-level shorter-side rule stays within a small factor of it
// (it can pay the longer side of a gap whose orientation disagrees with
// the enclosing rectangle's, hence not always exactly eq. 11).
func TestPQ2DCostMatchesEquation11(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 40; trial++ {
		domain := 6 + rng.Intn(30)
		n := 5 + rng.Intn(120)
		data := make([][]int, n)
		for i := range data {
			data[i] = []int{rng.Intn(domain), rng.Intn(domain)}
		}
		db := mkDB(t, data, capsAll(2, hidden.PQ), 1, hidden.SumRank{})
		res, err := PQ2DSky(db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sky := skyline.ComputeTuples(data)
		// Deduplicate values for the staircase formula.
		uniq := map[string][]int{}
		for _, s := range sky {
			uniq[fmt.Sprint(s)] = s
		}
		stairs := make([][]int, 0, len(uniq))
		for _, s := range uniq {
			stairs = append(stairs, s)
		}
		lo0, hi0 := db.Domain(0).Lo, db.Domain(0).Hi
		lo1, hi1 := db.Domain(1).Lo, db.Domain(1).Hi
		want, err := analysis.PQ2DCost(stairs, lo0, hi0, lo1, hi1)
		if err != nil {
			t.Fatalf("trial %d: %v (skyline %v)", trial, err, stairs)
		}
		got := res.Queries - 1 // exclude the SELECT * seed
		if got < want {
			t.Fatalf("trial %d (domain=%d n=%d |S|=%d): %d queries beat the eq(11) lower bound %d",
				trial, domain, n, len(stairs), got, want)
		}
		if got > 2*want+2 {
			t.Fatalf("trial %d (domain=%d n=%d |S|=%d): %d queries, eq(11) optimum %d",
				trial, domain, n, len(stairs), got, want)
		}
	}
}

// Theorem 1's adversarial construction: m spoiler tuples force
// fully-specified queries. Verify our SQ algorithm still discovers the
// skyline (cost may be large; correctness is what matters here).
func TestTheorem1Construction(t *testing.T) {
	const m, h = 3, 4
	var data [][]int
	// Spoilers t0_i: 0 everywhere except h+1 at position i.
	for i := 0; i < m; i++ {
		tup := make([]int, m)
		tup[i] = h + 1
		data = append(data, tup)
	}
	// Interior tuples with values in [1, h].
	rng := rand.New(rand.NewSource(25))
	for len(data) < 20 {
		tup := make([]int, m)
		for j := range tup {
			tup[j] = 1 + rng.Intn(h)
		}
		data = append(data, tup)
	}
	db := mkDB(t, data, capsAll(m, hidden.SQ), 1, hidden.AdversarialRank{})
	checkSkyline(t, db, SQDBSky, "theorem1-construction")
}

// Filtering attributes (§2.1): appending a filter predicate to every query
// discovers the skyline of the filtered subset. We emulate by projecting —
// the library treats filter columns as pass-through strings, so here we
// check they do not perturb discovery.
func TestFilterColumnsDoNotPerturbDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	data := randData(rng, 150, 3, 10)
	filters := make([][]string, len(data))
	for i := range filters {
		filters[i] = []string{fmt.Sprintf("F%d", rng.Intn(5))}
	}
	db, err := hidden.New(hidden.Config{
		Data: data, Caps: capsAll(3, hidden.RQ), K: 3, Filters: filters,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSkyline(t, db, RQDBSky, "with-filters")
}

// The SkipProvablyEmpty optimization must never change the result set.
func TestSkipEmptyPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 10; trial++ {
		data := randData(rng, 100, 3, 6)
		caps := capsAll(3, hidden.PQ)
		a, err := PQDBSky(mkDB(t, data, caps, 2, hidden.SumRank{}), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := PQDBSky(mkDB(t, data, caps, 2, hidden.SumRank{}), Options{SkipProvablyEmpty: true})
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := sameTupleSet(a.Skyline, b.Skyline); !ok {
			t.Fatalf("trial %d: %s", trial, diff)
		}
	}
}
