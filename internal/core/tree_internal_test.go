package core

import (
	"fmt"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// fig2DB builds the paper's running example (Figure 2): four 3-attribute
// tuples t1..t4 served through a top-1 interface ranked by attribute sum.
func fig2DB(t *testing.T, caps []hidden.Capability) *hidden.DB {
	t.Helper()
	data := [][]int{
		{5, 1, 9}, // t1
		{4, 4, 8}, // t2
		{1, 3, 7}, // t3
		{3, 2, 3}, // t4
	}
	return mkDB(t, data, caps, 1, hidden.SumRank{})
}

func TestWalkerRootBounds(t *testing.T) {
	db := fig2DB(t, capsAll(3, hidden.SQ))
	c := newCtx(db, Options{})
	w := newTreeWalker(c, nil, allAttrs(3), make([]bool, 3), false)
	root := w.root()
	// Domains: A0 in [1,5], A1 in [1,4], A2 in [3,9]; ub is exclusive.
	wantUB := []int{6, 5, 10}
	wantLB := []int{1, 1, 3}
	for j := range wantUB {
		if root.ub[j] != wantUB[j] || root.lb[j] != wantLB[j] {
			t.Fatalf("root bounds %v/%v, want %v/%v", root.ub, root.lb, wantUB, wantLB)
		}
	}
	if q := w.buildQ(root); len(q) != 0 {
		t.Fatalf("root query should be SELECT *, got %v", q)
	}
}

func TestWalkerChildrenMatchPaperExample(t *testing.T) {
	// Figure 3: the root of the SQ tree returns t4 = (3,2,3) under the sum
	// ranking; its three branches append A0<3, A1<2, A2<3.
	db := fig2DB(t, capsAll(3, hidden.SQ))
	c := newCtx(db, Options{})
	w := newTreeWalker(c, nil, allAttrs(3), make([]bool, 3), false)
	root := w.root()
	res, err := db.Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Tuples[0]
	if fmt.Sprint(top) != fmt.Sprint([]int{3, 2, 3}) {
		t.Fatalf("sum ranking should surface t4, got %v", top)
	}
	kids := w.children(root, top)
	if len(kids) != 3 {
		t.Fatalf("%d children", len(kids))
	}
	wantQ := []string{
		"WHERE A0 < 3",
		"WHERE A1 < 2",
		"WHERE A2 < 3",
	}
	for j, kid := range kids {
		if got := w.buildQ(kid).String(); got != wantQ[j] {
			t.Errorf("child %d query %q, want %q", j, got, wantQ[j])
		}
	}
}

func TestWalkerMutuallyExclusiveRQ(t *testing.T) {
	// In RQ mode, branch j of a node excludes branches i < j via ">="
	// bounds; verify R(q) renders the paper's Figure 5 construction.
	db := fig2DB(t, capsAll(3, hidden.RQ))
	c := newCtx(db, Options{})
	me := []bool{true, true, true}
	w := newTreeWalker(c, nil, allAttrs(3), me, true)
	root := w.root()
	kids := w.children(root, []int{3, 2, 3})
	wantR := []string{
		"WHERE A0 < 3",
		"WHERE A1 < 2 AND A0 >= 3",
		"WHERE A2 < 3 AND A0 >= 3 AND A1 >= 2",
	}
	for j, kid := range kids {
		if got := w.buildR(kid).String(); got != wantR[j] {
			t.Errorf("child %d R(q) %q, want %q", j, got, wantR[j])
		}
	}
	// The three R(q) spaces are pairwise disjoint and cover q's space
	// minus the dominated region: check on the full value grid.
	for a0 := 1; a0 <= 5; a0++ {
		for a1 := 1; a1 <= 4; a1++ {
			for a2 := 3; a2 <= 9; a2++ {
				tuple := []int{a0, a1, a2}
				matches := 0
				for _, kid := range kids {
					if w.buildR(kid).Matches(tuple) {
						matches++
					}
				}
				if matches > 1 {
					t.Fatalf("tuple %v matched %d mutually exclusive branches", tuple, matches)
				}
				// A tuple not dominated-or-equal to the branching tuple
				// must be covered by exactly one branch.
				dominated := a0 >= 3 && a1 >= 2 && a2 >= 3
				if !dominated && matches != 1 {
					t.Fatalf("tuple %v covered by %d branches, want 1", tuple, matches)
				}
			}
		}
	}
}

func TestWalkerPartialMEOnlyUsesGEWhereAllowed(t *testing.T) {
	// Attribute 1 is SQ: its ">=" bound must be omitted from R(q).
	db := mkDB(t, [][]int{{1, 1, 1}, {2, 2, 2}},
		[]hidden.Capability{hidden.RQ, hidden.SQ, hidden.RQ}, 1, hidden.SumRank{})
	c := newCtx(db, Options{})
	me := []bool{true, false, true}
	w := newTreeWalker(c, nil, allAttrs(3), me, true)
	kids := w.children(w.root(), []int{1, 1, 1})
	r := w.buildR(kids[2]) // branch on A2: should carry A0 >= 1 but not A1 >= 1
	for _, p := range r {
		if p.Attr == 1 && (p.Op == query.GE || p.Op == query.GT) {
			t.Fatalf("R(q) uses >= on an SQ attribute: %v", r)
		}
	}
}

func TestWalkerSeenMatching(t *testing.T) {
	db := fig2DB(t, capsAll(3, hidden.RQ))
	c := newCtx(db, Options{})
	w := newTreeWalker(c, nil, allAttrs(3), []bool{true, true, true}, true)
	root := w.root()
	if w.anySeenMatches(root) {
		t.Fatal("empty seen set matched")
	}
	w.noteSeen([][]int{{3, 2, 3}})
	if !w.anySeenMatches(root) {
		t.Fatal("seen tuple should match SELECT *")
	}
	kids := w.children(root, []int{3, 2, 3})
	for j, kid := range kids {
		if w.anySeenMatches(kid) {
			t.Fatalf("branch %d excludes the branching tuple yet matched", j)
		}
	}
	// Duplicates are not re-recorded.
	w.noteSeen([][]int{{3, 2, 3}, {3, 2, 3}})
	if len(w.seen) != 1 {
		t.Fatalf("seen has %d entries, want 1", len(w.seen))
	}
}

func TestChildrenWithDominatorOutsideQ(t *testing.T) {
	// Branching on a tuple b whose values exceed the node's bounds must
	// clamp, not widen, the child bounds.
	db := fig2DB(t, capsAll(3, hidden.RQ))
	c := newCtx(db, Options{})
	w := newTreeWalker(c, nil, allAttrs(3), []bool{true, true, true}, true)
	n := node{ub: []int{3, 3, 3}, lb: []int{1, 1, 3}}
	kids := w.children(n, []int{5, 1, 9})
	if kids[0].ub[0] != 3 { // min(3, 5) = 3
		t.Fatalf("child widened ub: %v", kids[0].ub)
	}
	if kids[1].ub[1] != 1 { // min(3, 1) = 1
		t.Fatalf("child did not tighten ub: %v", kids[1].ub)
	}
}

func TestTupleKey(t *testing.T) {
	a := tupleKey([]int{1, -2, 30})
	b := tupleKey([]int{1, -2, 30})
	cKey := tupleKey([]int{1, 2, 30})
	if a != b || a == cKey {
		t.Fatalf("tupleKey broken: %q %q %q", a, b, cKey)
	}
	// No ambiguity between {12, 3} and {1, 23}.
	if tupleKey([]int{12, 3}) == tupleKey([]int{1, 23}) {
		t.Fatal("tupleKey ambiguous")
	}
	if tupleKey([]int{0}) != "0," {
		t.Fatalf("zero encoding %q", tupleKey([]int{0}))
	}
}

func TestCtxMergeDedup(t *testing.T) {
	db := fig2DB(t, capsAll(3, hidden.SQ))
	c := newCtx(db, Options{Trace: true})
	c.merge([]int{3, 2, 3})
	c.merge([]int{3, 2, 3}) // duplicate: no new trace event
	if len(c.trace) != 1 {
		t.Fatalf("%d trace events, want 1", len(c.trace))
	}
	c.merge([]int{1, 3, 7}) // incomparable: kept
	if len(c.sky) != 2 {
		t.Fatalf("sky %v", c.sky)
	}
	c.merge([]int{5, 9, 9}) // dominated: rejected, no trace
	if len(c.trace) != 2 || len(c.sky) != 2 {
		t.Fatalf("dominated merge recorded: %v / %v", c.trace, c.sky)
	}
}

func TestProvablyEmpty(t *testing.T) {
	db := fig2DB(t, capsAll(3, hidden.SQ))
	c := newCtx(db, Options{})
	if !c.provablyEmpty(query.Q{{Attr: 0, Op: query.LT, Value: 1}}) {
		t.Error("A0 < 1 is empty over domain [1,5]")
	}
	if c.provablyEmpty(query.Q{{Attr: 0, Op: query.LT, Value: 2}}) {
		t.Error("A0 < 2 is satisfiable")
	}
}
