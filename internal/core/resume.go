package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hiddensky/internal/query"
)

// Session is a checkpoint of an interrupted SQ-DB-SKY run, designed for
// the paper's operating reality: per-day query quotas (Google's QPX
// allowed 50 free queries per day). Algorithm 1's state is just its FIFO
// queue of pending node queries plus the tuples confirmed so far — both
// plain data — so discovery can stop at the quota, serialize, and resume
// tomorrow without repeating a single query.
//
// Sessions apply to the SQ algorithm (which also runs on RQ interfaces);
// its queue-based traversal makes the checkpoint exact.
type Session struct {
	// Pending holds the exclusive per-attribute upper-bound vectors of the
	// unexplored tree nodes, FIFO order.
	Pending [][]int `json:"pending"`
	// Skyline holds the candidate skyline confirmed so far.
	Skyline [][]int `json:"skyline"`
	// Queries accumulates the cost of all completed sessions.
	Queries int `json:"queries"`
	// Attrs pins the schema for sanity checks at resume time.
	Attrs int `json:"attrs"`
}

// NewSession starts a fresh checkpointable run for db.
func NewSession(db Interface) *Session {
	m := db.NumAttrs()
	root := make([]int, m)
	for a := 0; a < m; a++ {
		root[a] = db.Domain(a).Hi + 1
	}
	return &Session{Pending: [][]int{root}, Attrs: m}
}

// Done reports whether discovery has finished (nothing left to explore).
func (s *Session) Done() bool { return len(s.Pending) == 0 }

// Save serializes the checkpoint as JSON.
func (s *Session) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSession loads a checkpoint.
func ReadSession(r io.Reader) (*Session, error) {
	var s Session
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding session: %w", err)
	}
	if s.Attrs < 1 {
		return nil, fmt.Errorf("core: implausible session (attrs=%d)", s.Attrs)
	}
	for _, ub := range s.Pending {
		if len(ub) != s.Attrs {
			return nil, fmt.Errorf("core: session node has %d bounds, want %d", len(ub), s.Attrs)
		}
	}
	return &s, nil
}

// Resume continues an SQ-DB-SKY run from the checkpoint, spending at most
// opt.MaxQueries queries in this session (0 = run to completion). It
// returns the cumulative result so far; Result.Complete (equivalently
// s.Done()) tells whether the skyline is final. The session is updated in
// place and stays serializable between calls.
func (s *Session) Resume(db Interface, opt Options) (Result, error) {
	if db.NumAttrs() != s.Attrs {
		return Result{}, fmt.Errorf("core: session has %d attributes, database %d", s.Attrs, db.NumAttrs())
	}
	db, opt = prepare(db, opt) // sessions honor the cache; the FIFO replay itself stays sequential
	c := newCtx(db, opt)
	for _, t := range s.Skyline {
		c.merge(t)
	}
	c.trace = nil // seeding is not discovery

	budgetErr := error(nil)
	for len(s.Pending) > 0 {
		ub := s.Pending[0]
		q := sessionQuery(c, ub)
		if opt.SkipProvablyEmpty && c.provablyEmpty(q) {
			s.Pending = s.Pending[1:]
			continue
		}
		res, err := c.issue(q)
		if errors.Is(err, ErrBudget) {
			budgetErr = err
			break // the node stays pending for the next session
		}
		if err != nil {
			return s.snapshot(c, err), err
		}
		s.Pending = s.Pending[1:]
		c.mergeAll(res.Tuples)
		if c.overflowed(res) {
			top := res.Tuples[0]
			for a := 0; a < s.Attrs; a++ {
				kid := append([]int(nil), ub...)
				if top[a] < kid[a] {
					kid[a] = top[a]
				}
				s.Pending = append(s.Pending, kid)
			}
		}
	}
	out := s.snapshot(c, budgetErr)
	return out, budgetErr
}

// snapshot folds the context back into the session and builds the
// cumulative result.
func (s *Session) snapshot(c *ctx, err error) Result {
	s.Skyline = append([][]int(nil), c.sky...)
	s.Queries += c.queries
	return Result{
		Skyline:  append([][]int(nil), s.Skyline...),
		Queries:  s.Queries,
		Trace:    c.trace,
		Complete: err == nil && len(s.Pending) == 0,
	}
}

func sessionQuery(c *ctx, ub []int) query.Q {
	var q query.Q
	for a, v := range ub {
		if v <= c.domains[a].Hi {
			q = append(q, query.Predicate{Attr: a, Op: query.LT, Value: v})
		}
	}
	return q
}
