package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hiddensky/internal/query"
)

// Session is a checkpoint of an interrupted SQ-DB-SKY run, designed for
// the paper's operating reality: per-day query quotas (Google's QPX
// allowed 50 free queries per day). Algorithm 1's state is just its FIFO
// queue of pending node queries plus the tuples confirmed so far — both
// plain data — so discovery can stop at the quota, serialize, and resume
// tomorrow without repeating a single query.
//
// Sessions apply to the SQ algorithm (which also runs on RQ interfaces);
// its queue-based traversal makes the checkpoint exact.
type Session struct {
	// Pending holds the exclusive per-attribute upper-bound vectors of the
	// unexplored tree nodes, FIFO order.
	Pending [][]int `json:"pending"`
	// Skyline holds the candidate skyline confirmed so far.
	Skyline [][]int `json:"skyline"`
	// Queries accumulates the cost of all completed sessions.
	Queries int `json:"queries"`
	// Attrs pins the schema for sanity checks at resume time.
	Attrs int `json:"attrs"`
	// Filter pins the conjunctive filter the session was planned with
	// ("" = unfiltered; see Request.Filter). The planner refuses to
	// resume a checkpoint under a different filter — the frontier would
	// be neither the filtered nor the full skyline. Sessions from
	// checkpoints older than the planner carry "" and resume as
	// unfiltered runs.
	Filter string `json:"filter,omitempty"`

	// OnCheckpoint, when non-nil, is invoked during Resume — after every
	// CheckpointEvery completed queries, and once more before Resume
	// returns — with the session synchronized to a consistent,
	// serializable state (Pending, Skyline and Queries all reflect
	// exactly the queries answered so far). A daemon installs a hook that
	// persists the session so a crash between Resume calls loses at most
	// CheckpointEvery-1 queries of work. A hook error aborts the Resume
	// call; the session stays consistent and resumable. The hook is not
	// serialized and must be re-installed after ReadSession.
	OnCheckpoint func(*Session) error `json:"-"`
	// CheckpointEvery is the number of completed queries between
	// OnCheckpoint invocations; values <= 0 mean after every query.
	CheckpointEvery int `json:"-"`
}

// NewSession starts a fresh checkpointable run for db.
func NewSession(db Interface) *Session {
	m := db.NumAttrs()
	root := make([]int, m)
	for a := 0; a < m; a++ {
		root[a] = db.Domain(a).Hi + 1
	}
	return &Session{Pending: [][]int{root}, Attrs: m}
}

// Done reports whether discovery has finished (nothing left to explore).
func (s *Session) Done() bool { return len(s.Pending) == 0 }

// Save serializes the checkpoint as JSON.
func (s *Session) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSession loads a checkpoint.
func ReadSession(r io.Reader) (*Session, error) {
	var s Session
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding session: %w", err)
	}
	if s.Attrs < 1 {
		return nil, fmt.Errorf("core: implausible session (attrs=%d)", s.Attrs)
	}
	for _, ub := range s.Pending {
		if len(ub) != s.Attrs {
			return nil, fmt.Errorf("core: session node has %d bounds, want %d", len(ub), s.Attrs)
		}
	}
	return &s, nil
}

// Resume continues an SQ-DB-SKY run from the checkpoint, spending at most
// opt.MaxQueries queries in this session (0 = run to completion). It
// returns the cumulative result so far; Result.Complete (equivalently
// s.Done()) tells whether the skyline is final. The session is updated in
// place and stays serializable between calls.
func (s *Session) Resume(db Interface, opt Options) (Result, error) {
	if db.NumAttrs() != s.Attrs {
		return Result{}, fmt.Errorf("core: session has %d attributes, database %d", s.Attrs, db.NumAttrs())
	}
	db, opt = prepare(db, opt) // sessions honor the cache; the FIFO replay itself stays sequential
	c := newCtx(db, opt)
	for _, t := range s.Skyline {
		c.merge(t)
	}
	c.trace = nil // seeding is not discovery

	base := s.Queries // cost of previous sessions; c.queries counts this slice
	every := s.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	sinceCheckpoint := 0

	budgetErr := error(nil)
	for len(s.Pending) > 0 {
		ub := s.Pending[0]
		q := sessionQuery(c, ub)
		if opt.SkipProvablyEmpty && c.provablyEmpty(q) {
			s.Pending = s.Pending[1:]
			continue
		}
		res, err := c.issue(q)
		if errors.Is(err, ErrBudget) {
			budgetErr = err
			break // the node stays pending for the next session
		}
		if err != nil {
			// A cancellation that surfaced from the backend itself (e.g.
			// an aborted in-flight HTTP request) is normalized to the
			// same anytime shape as the pre-query ctx check: the node
			// stays pending and the session remains resumable.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				budgetErr = fmt.Errorf("%w: %w", ErrBudget, err)
				break
			}
			out := s.snapshot(c, base, err)
			if s.OnCheckpoint != nil { // the promised final hook, even on hard failures
				if herr := s.OnCheckpoint(s); herr != nil {
					err = errors.Join(fmt.Errorf("core: checkpoint hook: %w", herr), err)
				}
			}
			return out, err
		}
		s.Pending = s.Pending[1:]
		c.mergeAll(res.Tuples)
		if c.overflowed(res) {
			top := res.Tuples[0]
			for a := 0; a < s.Attrs; a++ {
				kid := append([]int(nil), ub...)
				if top[a] < kid[a] {
					kid[a] = top[a]
				}
				s.Pending = append(s.Pending, kid)
			}
		}
		if s.OnCheckpoint != nil {
			if sinceCheckpoint++; sinceCheckpoint >= every {
				sinceCheckpoint = 0
				s.sync(c, base)
				if err := s.OnCheckpoint(s); err != nil {
					herr := fmt.Errorf("core: checkpoint hook: %w", err)
					return s.snapshot(c, base, herr), herr
				}
			}
		}
	}
	out := s.snapshot(c, base, budgetErr)
	if s.OnCheckpoint != nil {
		if err := s.OnCheckpoint(s); err != nil {
			// Surface the failed final checkpoint even on a budget stop —
			// the caller must not believe the tail of the run was
			// persisted. errors.Join keeps both conditions matchable.
			return out, errors.Join(fmt.Errorf("core: checkpoint hook: %w", err), budgetErr)
		}
	}
	return out, budgetErr
}

// sync folds the context back into the session: after it returns the
// session is a consistent, serializable checkpoint of the run so far.
// It is idempotent (Queries is recomputed from the slice base, not
// accumulated), so mid-run checkpoints and the final fold compose.
func (s *Session) sync(c *ctx, base int) {
	s.Skyline = c.skySnapshot()
	s.Queries = base + c.queries
}

// snapshot is sync plus the cumulative Result.
func (s *Session) snapshot(c *ctx, base int, err error) Result {
	s.sync(c, base)
	return Result{
		Skyline:  append([][]int(nil), s.Skyline...),
		Queries:  s.Queries,
		Trace:    c.trace,
		Complete: err == nil && len(s.Pending) == 0,
	}
}

func sessionQuery(c *ctx, ub []int) query.Q {
	var q query.Q
	for a, v := range ub {
		if v <= c.domains[a].Hi {
			q = append(q, query.Predicate{Attr: a, Op: query.LT, Value: v})
		}
	}
	return q
}
