package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/qcache"
	"hiddensky/internal/skyline"
)

func TestSessionResumeMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 10; trial++ {
		data := randData(rng, 100+rng.Intn(200), 3, 10)
		k := 1 + rng.Intn(4)

		oneShot, err := SQDBSky(mkDB(t, data, capsAll(3, hidden.SQ), k, hidden.SumRank{}), Options{})
		if err != nil {
			t.Fatal(err)
		}

		// Resume in daily slices of 7 queries against a fresh interface
		// each day (as a new API key would be).
		s := NewSession(mkDB(t, data, capsAll(3, hidden.SQ), k, hidden.SumRank{}))
		var last Result
		days := 0
		for !s.Done() {
			db := mkDB(t, data, capsAll(3, hidden.SQ), k, hidden.SumRank{})
			res, err := s.Resume(db, Options{MaxQueries: 7})
			if err != nil && !errors.Is(err, ErrBudget) {
				t.Fatal(err)
			}
			last = res
			days++
			if days > 10000 {
				t.Fatal("resume does not converge")
			}
		}
		if !last.Complete {
			t.Fatal("finished session not complete")
		}
		if ok, diff := sameTupleSet(last.Skyline, oneShot.Skyline); !ok {
			t.Fatalf("trial %d: resumed skyline differs: %s", trial, diff)
		}
		if last.Queries != oneShot.Queries {
			t.Fatalf("trial %d: resumed cost %d, one-shot %d (no query may be repeated or skipped)",
				trial, last.Queries, oneShot.Queries)
		}
	}
}

func TestSessionSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := randData(rng, 300, 3, 12)
	mk := func() *hidden.DB { return mkDB(t, data, capsAll(3, hidden.SQ), 2, hidden.SumRank{}) }

	s := NewSession(mk())
	if _, err := s.Resume(mk(), Options{MaxQueries: 5}); !errors.Is(err, ErrBudget) {
		t.Fatalf("expected budget stop, got %v", err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(restored.Pending) != fmt.Sprint(s.Pending) ||
		fmt.Sprint(restored.Skyline) != fmt.Sprint(s.Skyline) ||
		restored.Queries != s.Queries {
		t.Fatal("round trip lost state")
	}
	// Drive the restored session to completion and verify.
	var last Result
	for !restored.Done() {
		last, err = restored.Resume(mk(), Options{MaxQueries: 20})
		if err != nil && !errors.Is(err, ErrBudget) {
			t.Fatal(err)
		}
	}
	want := skyline.ComputeTuples(data)
	if ok, diff := sameTupleSet(last.Skyline, want); !ok {
		t.Fatal(diff)
	}
}

func TestSessionPartialResultsAreSound(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	data := randData(rng, 400, 3, 15)
	truth := tupleSet(skyline.ComputeTuples(data))
	s := NewSession(mkDB(t, data, capsAll(3, hidden.SQ), 3, hidden.SumRank{}))
	res, err := s.Resume(mkDB(t, data, capsAll(3, hidden.SQ), 3, hidden.SumRank{}), Options{MaxQueries: 9})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res.Complete || s.Done() {
		t.Fatal("budgeted session claims completion")
	}
	for _, tup := range res.Skyline {
		if !truth[fmt.Sprint(tup)] {
			t.Fatalf("non-skyline tuple %v in checkpoint", tup)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	data := [][]int{{1, 2}, {2, 1}}
	db2 := mkDB(t, data, capsAll(2, hidden.SQ), 1, hidden.SumRank{})
	db3 := mkDB(t, [][]int{{1, 2, 3}}, capsAll(3, hidden.SQ), 1, hidden.SumRank{})
	s := NewSession(db2)
	if _, err := s.Resume(db3, Options{}); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	for _, bad := range []string{
		``,
		`{"attrs":0}`,
		`{"attrs":2,"pending":[[1,2,3]]}`,
	} {
		if _, err := ReadSession(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("session %q accepted", bad)
		}
	}
}

func TestSessionWorksOnRateLimitedInterface(t *testing.T) {
	// The realistic loop: the site enforces the quota, not the client.
	rng := rand.New(rand.NewSource(73))
	data := randData(rng, 250, 2, 20)
	s := NewSession(mkDB(t, data, capsAll(2, hidden.SQ), 2, hidden.SumRank{}))
	days := 0
	var last Result
	for !s.Done() {
		db, err := hidden.New(hidden.Config{
			Data: data, Caps: capsAll(2, hidden.SQ), K: 2, QueryLimit: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		last, err = s.Resume(db, Options{})
		if err != nil && !errors.Is(err, ErrBudget) {
			t.Fatal(err)
		}
		if days++; days > 1000 {
			t.Fatal("no convergence under site-side rate limit")
		}
	}
	want := skyline.ComputeTuples(data)
	if ok, diff := sameTupleSet(last.Skyline, want); !ok {
		t.Fatal(diff)
	}
}

// TestSessionResumeWithParallelismAndCache: sessions accept the full
// Options surface — Parallelism > 1 (the FIFO replay itself stays
// sequential, so the checkpoint stays exact) and a shared Cache — and
// still reproduce the uninterrupted run's skyline and exact query
// accounting across save/resume round-trips.
func TestSessionResumeWithParallelismAndCache(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 5; trial++ {
		data := randData(rng, 150+rng.Intn(250), 3, 10)
		k := 1 + rng.Intn(4)
		mk := func() *hidden.DB { return mkDB(t, data, capsAll(3, hidden.SQ), k, hidden.SumRank{}) }

		oneShot, err := SQDBSky(mk(), Options{})
		if err != nil {
			t.Fatal(err)
		}

		cache := qcache.New(qcache.Config{MaxEntries: 256})
		s := NewSession(mk())
		var last Result
		for rounds := 0; !s.Done(); rounds++ {
			if rounds > 10000 {
				t.Fatal("resume does not converge")
			}
			// Serialize and reload between every slice: the options must
			// not leak unserializable state into the checkpoint.
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if s, err = ReadSession(&buf); err != nil {
				t.Fatal(err)
			}
			res, err := s.Resume(mk(), Options{MaxQueries: 9, Parallelism: 4, Cache: cache})
			if err != nil && !errors.Is(err, ErrBudget) {
				t.Fatal(err)
			}
			last = res
		}
		if !last.Complete {
			t.Fatal("finished session not complete")
		}
		if ok, diff := sameTupleSet(last.Skyline, oneShot.Skyline); !ok {
			t.Fatalf("trial %d: resumed skyline differs: %s", trial, diff)
		}
		if last.Queries != oneShot.Queries {
			t.Fatalf("trial %d: resumed cost %d, one-shot %d (exact accounting required)",
				trial, last.Queries, oneShot.Queries)
		}
	}
}

// TestSessionCheckpointHook: the hook fires on its interval with the
// session in a consistent, serializable state — a checkpoint taken
// mid-run restores into a session that finishes with the one-shot
// skyline and exact cumulative query count.
func TestSessionCheckpointHook(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	data := randData(rng, 800, 4, 40)
	mk := func() *hidden.DB { return mkDB(t, data, capsAll(4, hidden.SQ), 1, hidden.SumRank{}) }

	oneShot, err := SQDBSky(mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const stopAt = 25
	if oneShot.Queries <= stopAt+5 {
		t.Fatalf("dataset too easy for the test: one-shot cost %d", oneShot.Queries)
	}

	errStop := errors.New("simulated crash")
	s := NewSession(mk())
	s.CheckpointEvery = 1
	var hookCalls int
	var lastCkpt []byte
	s.OnCheckpoint = func(sess *Session) error {
		hookCalls++
		var buf bytes.Buffer
		if err := sess.Save(&buf); err != nil {
			return err
		}
		lastCkpt = buf.Bytes()
		if hookCalls == stopAt {
			return errStop
		}
		return nil
	}
	if _, err := s.Resume(mk(), Options{}); !errors.Is(err, errStop) {
		t.Fatalf("Resume = %v, want the hook's error", err)
	}
	if hookCalls != stopAt {
		t.Fatalf("hook fired %d times, want %d", hookCalls, stopAt)
	}

	restored, err := ReadSession(bytes.NewReader(lastCkpt))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Queries != stopAt {
		t.Fatalf("checkpoint recorded %d queries, want %d (every=1)", restored.Queries, stopAt)
	}
	var fired int
	restored.CheckpointEvery = 10
	restored.OnCheckpoint = func(*Session) error { fired++; return nil }
	last, err := restored.Resume(mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("re-installed hook never fired")
	}
	if ok, diff := sameTupleSet(last.Skyline, oneShot.Skyline); !ok {
		t.Fatal(diff)
	}
	if last.Queries != oneShot.Queries {
		t.Fatalf("crash-restored cost %d, one-shot %d", last.Queries, oneShot.Queries)
	}
}
