package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/skyline"
)

// TestDiscoverContextCancellation: cancelling Options.Ctx mid-run stops
// further queries promptly and surfaces a sound partial result whose
// error matches both ErrBudget (the anytime contract) and the context
// error (the cause).
func TestDiscoverContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	data := randData(rng, 2000, 4, 30)
	truth := tupleSet(skyline.ComputeTuples(data))

	for _, par := range []int{1, 4} {
		db := mkDB(t, data, capsAll(4, hidden.RQ), 5, hidden.SumRank{})
		ctx, cancel := context.WithCancel(context.Background())
		const stopAt = 10
		var events atomic.Int64
		opt := Options{
			Parallelism: par,
			Ctx:         ctx,
			Progress: func(ev ProgressEvent) {
				if events.Add(1) == stopAt {
					cancel()
				}
			},
		}
		res, err := Discover(db, opt)
		cancel()
		if !errors.Is(err, ErrBudget) || !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%d: err = %v, want ErrBudget wrapping context.Canceled", par, err)
		}
		if res.Complete {
			t.Fatalf("parallel=%d: cancelled run claims completion", par)
		}
		// At most the in-flight queries finish after the cancel.
		if res.Queries > stopAt+par {
			t.Fatalf("parallel=%d: %d queries issued after cancelling at %d", par, res.Queries, stopAt)
		}
		for _, tup := range res.Skyline {
			if !truth[fmt.Sprint(tup)] {
				t.Fatalf("parallel=%d: non-skyline tuple %v in partial result", par, tup)
			}
		}
	}
}

// TestDiscoverProgressEvents: the Progress hook sees one event per
// counted query, ending at the run's final accounting.
func TestDiscoverProgressEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	data := randData(rng, 400, 3, 12)
	db := mkDB(t, data, capsAll(3, hidden.SQ), 3, hidden.SumRank{})
	var events, last atomic.Int64
	res, err := SQDBSky(db, Options{Progress: func(ev ProgressEvent) {
		events.Add(1)
		last.Store(int64(ev.Queries))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if int(events.Load()) != res.Queries {
		t.Fatalf("%d progress events for %d queries", events.Load(), res.Queries)
	}
	if int(last.Load()) != res.Queries {
		t.Fatalf("last event reported %d queries, run counted %d", last.Load(), res.Queries)
	}
}
