package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hiddensky/internal/query"
)

// This file is the capability-driven planner: the single dispatch layer
// that turns a declarative Request (which algorithm, which K-skyband
// level, which conjunctive filter, checkpointable or not) into an
// executable plan for a concrete interface. The paper keys each of its
// six algorithms to the interface's predicate capabilities; Plan is
// where that keying lives, once, instead of per-call-site switches in
// every layer above. Combinations the interface genuinely cannot
// satisfy (an MQ K-skyband, a ">=" filter on an SQ attribute, a
// checkpointed PQ walk) fail at plan time with a typed error that
// errors.Is-matches ErrUnsupported — never by silently dropping a
// request field.
//
// The legacy entry points (SQDBSky, RQDBSky, PQDBSky, MQDBSky, the
// *BandSky family, DiscoverWhere, Session.Resume) remain for paper
// fidelity; each is now reachable as one point in Request space.

// Algo names a discovery algorithm family. The zero value ("") means
// AlgoAuto: dispatch on the interface's capability mixture.
type Algo string

// Algorithm families a Request may name.
const (
	// AlgoAuto picks the algorithm from the interface's SQ/RQ/PQ
	// capability mixture, exactly as MQ-DB-SKY's dispatch does.
	AlgoAuto Algo = "auto"
	// AlgoSQ is the one-ended-range tree walk (Algorithm 1); it also
	// runs on RQ attributes (a strictly stronger capability).
	AlgoSQ Algo = "sq"
	// AlgoRQ is the two-ended-range walk with emptiness pruning
	// (Algorithm 2); SQ attributes lose pruning power but stay correct.
	AlgoRQ Algo = "rq"
	// AlgoPQ is the point-predicate cascade (Algorithms 3-5); point
	// queries run on every capability.
	AlgoPQ Algo = "pq"
	// AlgoMQ is the mixed-interface two-phase algorithm (Algorithm 6).
	AlgoMQ Algo = "mq"
)

// ParseAlgo normalizes a textual algorithm name. The empty string and
// "auto" (any case) parse to AlgoAuto.
func ParseAlgo(s string) (Algo, error) {
	switch a := Algo(strings.ToLower(strings.TrimSpace(s))); a {
	case "", AlgoAuto:
		return AlgoAuto, nil
	case AlgoSQ, AlgoRQ, AlgoPQ, AlgoMQ:
		return a, nil
	default:
		return "", fmt.Errorf("core: unknown algorithm %q", s)
	}
}

// Request declaratively describes one discovery run. The zero value
// asks for the full skyline under automatic algorithm dispatch — what
// Discover has always done. Execution tuning (budget, parallelism,
// cache, context, progress) stays in Options; the Request is only
// *what* to discover, so one Request can be planned against many
// stores.
type Request struct {
	// Algo picks the algorithm family ("" = AlgoAuto).
	Algo Algo
	// Band, when > 0, discovers the K-skyband of §7.2 at that level
	// instead of the skyline. Requires a uniform interface with a band
	// variant (RQ, PQ, or one-ended ranges everywhere for the partial
	// SQ walk); AlgoMQ has none.
	Band int
	// Filter restricts discovery to the matching subset (§2.1): every
	// issued query silently carries these conjunctive predicates, and
	// the advertised domains shrink to the filter's box. Each
	// predicate's operator must be supported by its attribute's
	// capability.
	Filter query.Q
	// Resumable runs the checkpointable SQ session walk so the run can
	// stop at a quota, serialize, and continue later without repeating
	// a counted query. Requires one-ended ranges on every attribute and
	// Algo auto or sq; composes with Filter (resume with the same
	// filter), not with Band.
	Resumable bool
	// Session, for resumable requests, is the checkpoint to continue
	// from (nil: a fresh session is started; retrieve it through
	// QueryPlan.Session to persist it).
	Session *Session
}

// ErrUnsupported is the errors.Is target for request combinations the
// interface genuinely cannot satisfy. The accompanying *PlanError
// carries the reason.
var ErrUnsupported = errors.New("core: unsupported request")

// PlanError reports why a Request cannot be compiled for an interface.
// It matches ErrUnsupported under errors.Is.
type PlanError struct {
	// Reason is the human-readable explanation.
	Reason string
}

func (e *PlanError) Error() string { return "core: cannot plan request: " + e.Reason }

// Unwrap makes every plan error match ErrUnsupported.
func (e *PlanError) Unwrap() error { return ErrUnsupported }

func planErrf(format string, args ...any) error {
	return &PlanError{Reason: fmt.Sprintf(format, args...)}
}

// QueryPlan is a compiled Request: the concrete algorithm the planner
// selected for the interface, ready to execute. Plans are cheap (no
// queries are issued until Run) and single-use state-free except for a
// resumable plan's Session.
type QueryPlan struct {
	// Algo is the resolved concrete algorithm (never AlgoAuto).
	Algo Algo
	// Band is the K-skyband level the run discovers (0: plain skyline).
	Band int
	// Filter is the conjunctive filter every issued query will carry.
	Filter query.Q
	// Resumable marks the checkpointed SQ session walk.
	Resumable bool

	db      Interface // filter view already applied
	session *Session
}

// Session returns the checkpoint a resumable plan runs (creating it on
// first use), or nil for non-resumable plans. Install OnCheckpoint
// hooks here before Run; serialize it after. A fresh session is rooted
// at the plan's view — the filter-shrunk domains for filtered plans,
// so the walk never explores outside the filter box — and stamped with
// the plan's filter so a later resume under a different one is caught.
func (p *QueryPlan) Session() *Session {
	if !p.Resumable {
		return nil
	}
	if p.session == nil {
		p.session = NewSession(p.db)
		p.session.Filter = filterKey(p.Filter)
	}
	return p.session
}

// filterKey canonicalizes a filter for checkpoint pinning ("" when
// unfiltered, so pre-planner checkpoints keep resuming). Predicates
// are sorted so a reordered but identical filter pins the same key.
func filterKey(q query.Q) string {
	if len(q) == 0 {
		return ""
	}
	sorted := q.Clone()
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Value < b.Value
	})
	return sorted.String()
}

// String renders the plan compactly ("rq band=3 filter=A0<5") for logs
// and error messages.
func (p *QueryPlan) String() string {
	var b strings.Builder
	b.WriteString(string(p.Algo))
	if p.Band > 0 {
		fmt.Fprintf(&b, " band=%d", p.Band)
	}
	if len(p.Filter) > 0 {
		fmt.Fprintf(&b, " filter=%s", p.Filter)
	}
	if p.Resumable {
		b.WriteString(" resumable")
	}
	return b.String()
}

// Plan compiles a Request against an interface: it validates the
// filter against the per-attribute capabilities, resolves AlgoAuto
// from the capability mixture, checks the band / resumable constraints,
// and returns the executable plan. Unsatisfiable combinations return a
// *PlanError (errors.Is ErrUnsupported); no query is issued.
func Plan(db Interface, req Request) (*QueryPlan, error) {
	algo, err := ParseAlgo(string(req.Algo))
	if err != nil {
		return nil, err
	}
	if req.Band < 0 {
		return nil, fmt.Errorf("core: band level must be >= 0, got %d", req.Band)
	}
	if req.Session != nil && !req.Resumable {
		// Refuse rather than silently restart from scratch: a caller
		// handing over a checkpoint means to continue it.
		return nil, planErrf("a session checkpoint requires Resumable: true")
	}
	m := db.NumAttrs()
	for _, p := range req.Filter {
		if p.Attr < 0 || p.Attr >= m {
			return nil, planErrf("filter attribute A%d out of range (database has %d attributes)", p.Attr, m)
		}
		if !db.Cap(p.Attr).Allows(p.Op) {
			return nil, planErrf("filter predicate %v not supported by the %s interface of A%d",
				p, db.Cap(p.Attr), p.Attr)
		}
	}

	sqA, rqA, pqA := attrsByCap(db)
	oneEnded := func() (int, bool) { // every attribute supports "<"?
		for i := 0; i < m; i++ {
			if !db.Cap(i).Allows(query.LT) {
				return i, false
			}
		}
		return 0, true
	}

	switch {
	case req.Resumable:
		if req.Band > 0 {
			return nil, planErrf("resumable runs discover the skyline; the K-skyband walk is not checkpointable")
		}
		if algo != AlgoAuto && algo != AlgoSQ {
			return nil, planErrf("resumable runs use the checkpointable SQ session walk; algo %q is not resumable", algo)
		}
		if i, ok := oneEnded(); !ok {
			return nil, planErrf("the SQ session walk needs one-ended ranges on every attribute; A%d is %s", i, db.Cap(i))
		}
		algo = AlgoSQ
		if req.Session != nil {
			if req.Session.Attrs != m {
				return nil, fmt.Errorf("core: session has %d attributes, database %d", req.Session.Attrs, m)
			}
			if req.Session.Filter != filterKey(req.Filter) {
				return nil, planErrf("session was checkpointed with filter %q, this request carries %q — resume with the same filter",
					req.Session.Filter, filterKey(req.Filter))
			}
		}
	case req.Band > 0:
		switch algo {
		case AlgoMQ:
			return nil, planErrf("MQ-DB-SKY has no K-skyband variant")
		case AlgoAuto:
			switch {
			case len(sqA) == 0 && len(pqA) == 0:
				algo = AlgoRQ
			case len(sqA) == 0 && len(rqA) == 0:
				algo = AlgoPQ
			case len(pqA) == 0:
				algo = AlgoSQ // SQ/RQ mixture: the partial one-ended band walk
			default:
				return nil, planErrf("mixed point/range interfaces have no K-skyband algorithm")
			}
		case AlgoRQ:
			if len(sqA)+len(pqA) > 0 {
				return nil, planErrf("the RQ K-skyband needs two-ended ranges on every attribute")
			}
		case AlgoPQ:
			if len(sqA)+len(rqA) > 0 {
				return nil, planErrf("the PQ K-skyband needs point predicates on every attribute")
			}
		case AlgoSQ:
			if i, ok := oneEnded(); !ok {
				return nil, planErrf("the SQ K-skyband needs one-ended ranges on every attribute; A%d is %s", i, db.Cap(i))
			}
		}
	default:
		switch algo {
		case AlgoAuto: // MQ-DB-SKY's dispatch, resolved at plan time
			switch {
			case len(pqA) == 0 && len(rqA) == 0:
				algo = AlgoSQ
			case len(pqA) == 0:
				algo = AlgoRQ
			case len(sqA) == 0 && len(rqA) == 0:
				algo = AlgoPQ
			default:
				algo = AlgoMQ
			}
		case AlgoSQ, AlgoRQ:
			// Both walks are range-tree traversals; a point-only
			// attribute cannot express their "<" node bounds.
			if i, ok := oneEnded(); !ok {
				return nil, planErrf("%s-DB-SKY needs one-ended ranges on every attribute; A%d is %s",
					strings.ToUpper(string(algo)), i, db.Cap(i))
			}
		case AlgoPQ, AlgoMQ: // point queries run on every capability
		}
	}

	view := db
	if len(req.Filter) > 0 {
		view = &filteredView{db: db, filter: req.Filter.Clone()}
	}
	return &QueryPlan{
		Algo:      algo,
		Band:      req.Band,
		Filter:    req.Filter.Clone(),
		Resumable: req.Resumable,
		db:        view,
		session:   req.Session,
	}, nil
}

// Run executes the compiled plan under the given execution options and
// returns the unified Result (Band and BandCounts populated for band
// plans). It owns the budget / progress / trace / checkpoint plumbing:
// every path reports cost through Result.Queries and degrades to the
// anytime partial result with ErrBudget.
//
// When opt.Tracer is set, the whole execution is recorded as one
// "core.run" span (algorithm, band, final query count and skyline
// size) and every span the layers beneath record — pool tasks, cache
// lookups, upstream queries — hangs under it via opt.TraceParent.
func (p *QueryPlan) Run(opt Options) (Result, error) {
	if opt.Tracer == nil {
		return p.run(opt)
	}
	sp := opt.Tracer.Start("core.run", opt.TraceParent)
	sp.SetStr("algo", string(p.Algo))
	if p.Band > 0 {
		sp.SetInt("band", int64(p.Band))
	}
	if p.Resumable {
		sp.SetStr("mode", "resumable")
	}
	opt.TraceParent = sp.ID()
	res, err := p.run(opt)
	sp.SetInt("queries", int64(res.Queries))
	sp.SetInt("skyline", int64(len(res.Skyline)))
	sp.End()
	return res, err
}

// run is Run without the span envelope.
func (p *QueryPlan) run(opt Options) (Result, error) {
	if p.Resumable {
		return p.Session().Resume(p.db, opt)
	}
	if p.Band > 0 {
		var (
			bres BandResult
			err  error
		)
		switch p.Algo {
		case AlgoRQ:
			bres, err = RQBandSky(p.db, p.Band, opt)
		case AlgoPQ:
			bres, err = PQBandSky(p.db, p.Band, opt)
		default: // AlgoSQ (Plan admits no other band algorithm)
			bres, err = SQBandSky(p.db, p.Band, opt)
		}
		return Result{
			Skyline:    bres.Tuples,
			Queries:    bres.Queries,
			Complete:   bres.Complete,
			Band:       p.Band,
			BandCounts: bres.Counts,
		}, err
	}
	switch p.Algo {
	case AlgoSQ:
		return SQDBSky(p.db, opt)
	case AlgoRQ:
		return RQDBSky(p.db, opt)
	case AlgoPQ:
		return PQDBSky(p.db, opt)
	default: // AlgoMQ
		return MQDBSky(p.db, opt)
	}
}

// Run compiles req against db and executes it — the single entry point
// every layer above core (service, federate, the CLIs, the facade)
// dispatches through. Unsupported combinations fail fast with a typed
// error; supported ones compose freely (filtered band discovery,
// filtered explicit-algorithm runs, filtered resumable sessions).
func Run(db Interface, req Request, opt Options) (Result, error) {
	planSpan := opt.Tracer.Start("core.plan", opt.TraceParent)
	p, err := Plan(db, req)
	if err != nil {
		planSpan.Rename("core.plan_error")
		planSpan.End()
		return Result{}, err
	}
	if opt.Tracer != nil {
		// p.String() allocates; build the attr only on traced runs.
		planSpan.SetStr("plan", p.String())
	}
	planSpan.End()
	return p.Run(opt)
}
