package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

func TestBandCollectorDedup(t *testing.T) {
	var bc bandCollector
	bc.add([][]int{{1, 2}, {3, 4}})
	bc.add([][]int{{1, 2}, {5, 6}})
	if len(bc.tuples) != 3 {
		t.Fatalf("collector holds %d tuples, want 3", len(bc.tuples))
	}
}

func TestBandCollectorFinish(t *testing.T) {
	var bc bandCollector
	bc.add([][]int{
		{0, 0}, // dominates the others
		{1, 1}, // dominated by 1
		{2, 2}, // dominated by 2
	})
	res := bc.finish(2, 42, true)
	if res.Queries != 42 || !res.Complete {
		t.Fatal("metadata lost")
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("2-band of chain has %d tuples", len(res.Tuples))
	}
	for i, c := range res.Counts {
		if c != i {
			t.Fatalf("counts %v", res.Counts)
		}
	}
}

func TestBandLevelOneEqualsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	data := uniqueData(rng, 80, 3, 9)
	want := skyline.ComputeTuples(data)

	rq, err := RQBandSky(mkDB(t, data, capsAll(3, hidden.RQ), 3, hidden.SumRank{}), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := sameTupleSet(rq.Tuples, want); !ok {
		t.Fatalf("RQ band-1: %s", diff)
	}
	pq, err := PQBandSky(mkDB(t, data, capsAll(3, hidden.PQ), 3, hidden.SumRank{}), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := sameTupleSet(pq.Tuples, want); !ok {
		t.Fatalf("PQ band-1: %s", diff)
	}
	sq, err := SQBandSky(mkDB(t, data, capsAll(3, hidden.SQ), 3, hidden.SumRank{}), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sq.Complete {
		t.Fatal("SQ band-1 must always complete (it is SQ-DB-SKY)")
	}
	if ok, diff := sameTupleSet(sq.Tuples, want); !ok {
		t.Fatalf("SQ band-1: %s", diff)
	}
}

func TestBandValidation(t *testing.T) {
	data := [][]int{{1, 2}, {2, 1}}
	rqDB := mkDB(t, data, capsAll(2, hidden.RQ), 1, hidden.SumRank{})
	if _, err := RQBandSky(rqDB, 0, Options{}); err == nil {
		t.Error("K=0 accepted")
	}
	mixed := mkDB(t, data, []hidden.Capability{hidden.RQ, hidden.SQ}, 1, hidden.SumRank{})
	if _, err := RQBandSky(mixed, 2, Options{}); err == nil {
		t.Error("RQBandSky accepted a non-RQ attribute")
	}
	if _, err := PQBandSky(rqDB, 2, Options{}); err == nil {
		t.Error("PQBandSky accepted a non-PQ interface")
	}
	pqDB := mkDB(t, data, capsAll(2, hidden.PQ), 1, hidden.SumRank{})
	if _, err := PQBandSky(pqDB, 0, Options{}); err == nil {
		t.Error("PQ K=0 accepted")
	}
	if _, err := SQBandSky(rqDB, 0, Options{}); err == nil {
		t.Error("SQ K=0 accepted")
	}
}

// The RQ band queries must honour the domination-subspace construction:
// every issued query in a level >= 2 sub-run pins a prefix with equality
// and bounds the pivot attribute from below strictly.
func TestRQBandSubspaceQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	data := uniqueData(rng, 40, 2, 7)
	spy := &spyDB{DB: mkDB(t, data, capsAll(2, hidden.RQ), 2, hidden.SumRank{})}
	if _, err := RQBandSky(spy, 2, Options{}); err != nil {
		t.Fatal(err)
	}
	sawStrict := false
	for _, q := range spy.queries {
		for _, p := range q {
			if p.Op == query.GT {
				sawStrict = true
			}
		}
	}
	if !sawStrict {
		t.Error("no strict lower bound issued: domination subspaces not visited")
	}
}

// A 1D PQ band enumerates values best-first and stops at K tuples.
func TestPQBand1D(t *testing.T) {
	data := [][]int{{4}, {1}, {7}, {2}, {9}}
	db := mkDB(t, data, capsAll(1, hidden.PQ), 1, hidden.SumRank{})
	res, err := PQBandSky(db, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1}, {2}, {4}}
	if ok, diff := sameTupleSet(res.Tuples, want); !ok {
		t.Fatalf("%s (got %v)", diff, res.Tuples)
	}
}

// Budget interruptions surface ErrBudget with partial-but-sound content.
func TestBandBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	data := uniqueData(rng, 120, 3, 8)
	counts := skyline.DominationCount(data)
	inBand := map[string]bool{}
	for i, c := range counts {
		if c < 2 {
			inBand[fmt.Sprint(data[i])] = true
		}
	}
	for name, run := range map[string]func() (BandResult, error){
		"rq": func() (BandResult, error) {
			return RQBandSky(mkDB(t, data, capsAll(3, hidden.RQ), 3, hidden.SumRank{}), 2, Options{MaxQueries: 6})
		},
		"pq": func() (BandResult, error) {
			return PQBandSky(mkDB(t, data, capsAll(3, hidden.PQ), 3, hidden.SumRank{}), 2, Options{MaxQueries: 6})
		},
	} {
		res, err := run()
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("%s: want ErrBudget, got %v", name, err)
		}
		if res.Complete {
			t.Fatalf("%s: budgeted run marked complete", name)
		}
		for _, tup := range res.Tuples {
			if !inBand[fmt.Sprint(tup)] {
				t.Fatalf("%s: partial result has non-band tuple %v", name, tup)
			}
		}
	}
}

// SQ band completeness improves with k, as §7.2 argues: with k >= K the
// top of the tree can always branch; with k = 1 the run must immediately
// mark itself partial on any non-trivial database.
func TestSQBandCompletenessVsK(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	data := uniqueData(rng, 100, 2, 12)
	lowK, err := SQBandSky(mkDB(t, data, capsAll(2, hidden.SQ), 1, hidden.SumRank{}), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lowK.Complete {
		t.Fatal("k=1 three-band claims completeness (cannot prove domination counts)")
	}
	highK, err := SQBandSky(mkDB(t, data, capsAll(2, hidden.SQ), 25, hidden.SumRank{}), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(highK.Tuples) < len(lowK.Tuples) {
		t.Fatalf("larger k found fewer band tuples: %d < %d", len(highK.Tuples), len(lowK.Tuples))
	}
}

// The PQ band at K=2 must find second-layer tuples hidden directly behind
// skyline tuples in the same column — the pruning-rule relaxation at work.
func TestPQBandSecondLayerBehindSkyline(t *testing.T) {
	data := [][]int{
		{0, 5}, {1, 3}, {3, 0}, // skyline staircase
		{1, 4}, // directly behind (1,3): band-2
		{3, 1}, // directly behind (3,0): band-2
		{4, 4}, // dominated by (1,3) and (1,4): band-3
	}
	db := mkDB(t, data, capsAll(2, hidden.PQ), 2, hidden.SumRank{})
	res, err := PQBandSky(db, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := tupleSet(res.Tuples)
	for _, want := range [][]int{{0, 5}, {1, 3}, {3, 0}, {1, 4}, {3, 1}} {
		if !got[fmt.Sprint(want)] {
			t.Fatalf("missing band tuple %v: %v", want, res.Tuples)
		}
	}
	if got[fmt.Sprint([]int{4, 4})] {
		t.Fatalf("band-3 tuple leaked into 2-band: %v", res.Tuples)
	}
}
