package chaos

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
)

// Hardened retries transient faults from a hostile core.Interface under
// a retry.Policy — the in-process analogue of web.Client's retry loop,
// sitting between core (which treats every Query error as terminal for
// the run) and a faulty upstream. Injected rate limits and transient
// faults are retried with backoff, honoring Retry-After hints; once the
// policy's attempts are spent the final error passes through unchanged,
// so errors.Is(err, hidden.ErrRateLimited) still reaches the anytime
// machinery.
type Hardened struct {
	inner  core.Interface
	policy retry.Policy

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Int64
}

// Harden wraps db with p (normalized; zero value = defaults). The seed
// fixes the jitter stream so hardened runs are reproducible.
func Harden(db core.Interface, p retry.Policy, seed int64) *Hardened {
	if seed == 0 {
		seed = 1
	}
	return &Hardened{inner: db, policy: p.Normalize(), rng: rand.New(rand.NewSource(seed))}
}

// Retries reports the total number of retry waits taken.
func (h *Hardened) Retries() int64 { return h.retries.Load() }

func (h *Hardened) rnd() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rng.Float64()
}

// Query implements core.Interface with policy-driven retries. Retrying
// is sound because a failed attempt returned no data: the eventual
// answer is byte-identical to the one a clean upstream would have given,
// which is what keeps discovery's skyline and counted query total exact
// under every recoverable profile.
func (h *Hardened) Query(q query.Q) (hidden.Result, error) {
	p := h.policy
	for attempt := 1; ; attempt++ {
		res, err := h.inner.Query(q)
		if err == nil {
			return res, nil
		}
		transient := retry.Transient(err) || errors.Is(err, hidden.ErrRateLimited)
		if !transient || attempt >= p.Attempts {
			return res, err
		}
		h.retries.Add(1)
		time.Sleep(p.Backoff(attempt, retry.AfterHint(err), h.rnd))
	}
}

// NumAttrs implements core.Interface.
func (h *Hardened) NumAttrs() int { return h.inner.NumAttrs() }

// K implements core.Interface.
func (h *Hardened) K() int { return h.inner.K() }

// Cap implements core.Interface.
func (h *Hardened) Cap(i int) hidden.Capability { return h.inner.Cap(i) }

// Domain implements core.Interface.
func (h *Hardened) Domain(i int) query.Interval { return h.inner.Domain(i) }
