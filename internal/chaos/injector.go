package chaos

import (
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
)

// maxEvents bounds the in-memory injection log; tests asserting exact
// schedules stay far below it, long chaos soaks just lose the oldest
// entries (the per-kind counters never lose anything).
const maxEvents = 8192

// Event records one injected fault for schedule assertions and the
// fault log artifact.
type Event struct {
	// Attempt is the 1-based global attempt number the fault hit (0 for
	// drift events, which are keyed to served queries instead).
	Attempt int64
	// Kind is the injected fault class.
	Kind Kind
	// Detail carries kind-specific context (advertised Retry-After, the
	// ranking drifted to, the quota wait).
	Detail string
}

// Injector drives one Profile's fault schedule. It is safe for
// concurrent use; a single Injector can sit behind both an in-process
// wrapper and HTTP middleware, sharing one attempt counter.
type Injector struct {
	profile Profile

	attempts atomic.Int64 // upstream attempts seen (1-based)
	served   atomic.Int64 // attempts that passed through clean
	counts   map[Kind]*atomic.Int64

	mu     sync.Mutex
	rng    *rand.Rand // latency jitter stream (seeded)
	events []Event
	// token bucket for quota shaping (guarded by mu)
	quotaTokens float64
	quotaLast   time.Time

	// ranking drift target (nil = drift disabled even when scheduled)
	drift     *hidden.DB
	rotation  []hidden.Ranking
	driftNext int

	log *slog.Logger

	metrics map[Kind]*obs.Counter // nil until Instrument
}

// New builds an injector for p.
func New(p Profile) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	in := &Injector{
		profile: p,
		rng:     rand.New(rand.NewSource(seed)),
		counts:  make(map[Kind]*atomic.Int64, len(Kinds)),
		log:     obs.Nop(),
	}
	for _, k := range Kinds {
		in.counts[k] = new(atomic.Int64)
	}
	if p.QuotaBurst > 0 {
		in.quotaTokens = float64(p.QuotaBurst)
	}
	return in
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.profile }

// SetLogger routes the fault log (one line per injection) to l.
func (in *Injector) SetLogger(l *slog.Logger) {
	if l != nil {
		in.log = l
	}
}

// Instrument registers chaos_faults_injected_total{kind=...} on r, one
// series per fault kind, fed by the injector's own counters.
func (in *Injector) Instrument(r *obs.Registry) {
	for _, k := range Kinds {
		c := in.counts[k]
		r.CounterFunc(`chaos_faults_injected_total{kind="`+obs.EscapeLabel(string(k))+`"}`,
			"faults injected by the chaos layer", func() float64 { return float64(c.Load()) })
	}
}

// SetDrift arms ranking drift: every Profile.DriftEvery served queries
// the injector calls db.Rerank with the next ranking in rotation (round
// robin). Rankings must be domination-consistent — drift is recoverable
// precisely because skyline membership does not depend on the ranking.
func (in *Injector) SetDrift(db *hidden.DB, rotation ...hidden.Ranking) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.drift = db
	in.rotation = rotation
}

// Attempts returns the number of upstream attempts observed so far.
func (in *Injector) Attempts() int64 { return in.attempts.Load() }

// Served returns the number of attempts that passed through clean.
func (in *Injector) Served() int64 { return in.served.Load() }

// Count returns how many faults of kind k were injected.
func (in *Injector) Count(k Kind) int64 { return in.counts[k].Load() }

// Counts snapshots all non-zero per-kind injection counts.
func (in *Injector) Counts() map[Kind]int64 {
	out := make(map[Kind]int64)
	for _, k := range Kinds {
		if v := in.counts[k].Load(); v > 0 {
			out[k] = v
		}
	}
	return out
}

// Events returns a copy of the injection log (oldest first).
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// record counts, logs and journals one injected fault.
func (in *Injector) record(n int64, k Kind, detail string) {
	in.counts[k].Add(1)
	in.mu.Lock()
	if len(in.events) < maxEvents {
		in.events = append(in.events, Event{Attempt: n, Kind: k, Detail: detail})
	}
	in.mu.Unlock()
	if detail != "" {
		in.log.Info("chaos: fault injected", "attempt", n, "kind", string(k), "detail", detail)
	} else {
		in.log.Info("chaos: fault injected", "attempt", n, "kind", string(k))
	}
}

// delay returns the latency to add to the current attempt: the profile's
// base latency plus a seeded uniform draw from [0, LatencyJitter).
func (in *Injector) delay() time.Duration {
	p := in.profile
	d := p.Latency
	if p.LatencyJitter > 0 {
		in.mu.Lock()
		d += time.Duration(in.rng.Int63n(int64(p.LatencyJitter)))
		in.mu.Unlock()
	}
	return d
}

// quotaWait consumes one token when available (returning 0) or reports
// how long until the next token refills. Called only for attempts the
// pure schedule left clean, so scheduled counts stay exact.
func (in *Injector) quotaWait(now time.Time) time.Duration {
	p := in.profile
	if p.QuotaBurst <= 0 || p.QuotaRefill <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.quotaLast.IsZero() {
		in.quotaLast = now
	}
	refilled := float64(now.Sub(in.quotaLast)) / float64(p.QuotaRefill)
	if refilled > 0 {
		in.quotaTokens += refilled
		if in.quotaTokens > float64(p.QuotaBurst) {
			in.quotaTokens = float64(p.QuotaBurst)
		}
		in.quotaLast = now
	}
	if in.quotaTokens >= 1 {
		in.quotaTokens--
		return 0
	}
	wait := time.Duration((1 - in.quotaTokens) * float64(p.QuotaRefill))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// maybeDrift rotates the target database's ranking when the served-query
// schedule says so. Serving and drifting are decoupled on purpose: a
// drifted ranking changes which tuples overflow future answers, never
// the correctness of any single answer.
func (in *Injector) maybeDrift() {
	p := in.profile
	if p.DriftEvery <= 0 {
		return
	}
	n := in.served.Load()
	if n == 0 || n%int64(p.DriftEvery) != 0 {
		return
	}
	in.mu.Lock()
	db, rot := in.drift, in.rotation
	if db == nil || len(rot) == 0 {
		in.mu.Unlock()
		return
	}
	r := rot[in.driftNext%len(rot)]
	in.driftNext++
	in.mu.Unlock()
	if err := db.Rerank(r); err != nil {
		in.log.Warn("chaos: drift rerank failed", "err", err)
		return
	}
	in.record(0, KindDrift, rankingName(r))
}

func rankingName(r hidden.Ranking) string {
	type namer interface{ Name() string }
	if n, ok := r.(namer); ok {
		return n.Name()
	}
	switch r.(type) {
	case hidden.SumRank:
		return "sum"
	case hidden.AttrRank:
		return "attr"
	case hidden.LexRank:
		return "lex"
	case hidden.WeightedRank:
		return "weighted"
	}
	return "ranking"
}
