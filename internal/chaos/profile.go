// Package chaos is a deterministic, seed-driven fault injector for the
// discovery and serving stack. It wraps a hidden database at either
// boundary — core.Interface in-process, or the HTTP search endpoint via
// middleware on web.Server — and injects the failure modes a real hostile
// upstream exhibits: bursty 429s with and without Retry-After, transient
// 5xx answers, connection resets, truncated bodies, latency jitter and
// stalls, per-client quota shaping, and mid-crawl ranking drift.
//
// Faults are scheduled by a global attempt counter, not by probability:
// "every Nth attempt begins a burst of B". Retries advance the counter,
// so the exact injection schedule is a pure function of the profile and
// the number of attempts — tests assert injected-fault counts to the
// unit, even under parallel discovery. The one invariant every fault
// obeys: a fault is an error or a delay, never a silently wrong answer,
// which is why discovery under chaos must return the identical skyline
// with the exact same counted query total.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names one injectable fault class; it is the {kind=...} label on
// the chaos_faults_injected_total metric.
type Kind string

const (
	// KindRateLimit is an injected 429 (wrapping hidden.ErrRateLimited).
	KindRateLimit Kind = "rate_limit"
	// KindServerError is a transient 5xx answer.
	KindServerError Kind = "server_error"
	// KindReset is a dropped connection / transport error.
	KindReset Kind = "reset"
	// KindTruncate is a partial answer body cut mid-payload.
	KindTruncate Kind = "truncate"
	// KindStall is a long pause before a correct answer (not an error).
	KindStall Kind = "stall"
	// KindQuota is a token-bucket rejection (429 with a precise hint).
	KindQuota Kind = "quota"
	// KindDrift is a mid-crawl swap of the proprietary ranking.
	KindDrift Kind = "drift"
)

// Kinds lists every fault kind in metric/registration order.
var Kinds = []Kind{KindRateLimit, KindServerError, KindReset, KindTruncate, KindStall, KindQuota, KindDrift}

// Profile describes one fault schedule. The zero value injects nothing.
// Schedules are counter-based: attempt numbers are 1-based and global
// across all clients of the injector.
type Profile struct {
	// Name labels the profile in logs and BENCH scenario names.
	Name string
	// Seed drives the latency-jitter stream (0 = 1). Two injectors with
	// the same profile inject identical schedules and jitter sequences.
	Seed int64

	// RateLimitEvery > 0 starts a burst of RateLimitBurst consecutive
	// 429s at every multiple of RateLimitEvery (attempt n is limited
	// when n >= Every and n mod Every < Burst).
	RateLimitEvery int
	// RateLimitBurst is the burst length (0 means 1).
	RateLimitBurst int
	// RetryAfter is the hint advertised with injected 429s (0 = none,
	// exercising the client's own backoff schedule).
	RetryAfter time.Duration

	// ErrorEvery > 0 answers every Nth attempt with a transient 5xx.
	ErrorEvery int
	// ResetEvery > 0 drops the connection on every Nth attempt.
	ResetEvery int
	// TruncateEvery > 0 cuts every Nth answer body mid-payload.
	TruncateEvery int

	// StallEvery > 0 delays every Nth answer by Stall before serving it.
	StallEvery int
	// Stall is the stall duration (0 disables StallEvery).
	Stall time.Duration
	// Latency is added to every attempt; LatencyJitter widens it by a
	// seeded uniform draw from [0, LatencyJitter).
	Latency       time.Duration
	LatencyJitter time.Duration

	// QuotaBurst > 0 enables token-bucket quota shaping: the bucket
	// holds QuotaBurst tokens and refills one per QuotaRefill. An empty
	// bucket answers 429 with a Retry-After hint equal to the wait for
	// the next token.
	QuotaBurst  int
	QuotaRefill time.Duration

	// DriftEvery > 0 rotates the target database's ranking function
	// after every Nth served (answered) query — see Injector.SetDrift.
	DriftEvery int

	// Down fails every attempt (alternating resets and 5xx) — a full
	// upstream outage for degradation drills. Not recoverable by
	// retrying; consumers are expected to park and serve stale.
	Down bool
}

// Active reports whether the profile injects anything at all.
func (p Profile) Active() bool {
	return p.Down || p.RateLimitEvery > 0 || p.ErrorEvery > 0 || p.ResetEvery > 0 ||
		p.TruncateEvery > 0 || (p.StallEvery > 0 && p.Stall > 0) || p.Latency > 0 ||
		p.LatencyJitter > 0 || p.QuotaBurst > 0 || p.DriftEvery > 0
}

// FaultAt returns the scheduled fault for 1-based attempt n, or "" when
// the attempt passes through clean. It is a pure function — tests
// compute expected injection counts by summing FaultAt over 1..N.
// Quota shaping is time-based and therefore not part of the pure
// schedule; it applies only to attempts FaultAt leaves clean.
// Precedence when schedules collide on one attempt: rate limit, reset,
// server error, truncation, stall.
func (p Profile) FaultAt(n int64) Kind {
	if n < 1 {
		return ""
	}
	if p.Down {
		if n%2 == 1 {
			return KindReset
		}
		return KindServerError
	}
	if p.RateLimitEvery > 0 && n >= int64(p.RateLimitEvery) {
		burst := int64(p.RateLimitBurst)
		if burst < 1 {
			burst = 1
		}
		if n%int64(p.RateLimitEvery) < burst {
			return KindRateLimit
		}
	}
	if p.ResetEvery > 0 && n%int64(p.ResetEvery) == 0 {
		return KindReset
	}
	if p.ErrorEvery > 0 && n%int64(p.ErrorEvery) == 0 {
		return KindServerError
	}
	if p.TruncateEvery > 0 && n%int64(p.TruncateEvery) == 0 {
		return KindTruncate
	}
	if p.StallEvery > 0 && p.Stall > 0 && n%int64(p.StallEvery) == 0 {
		return KindStall
	}
	return ""
}

// ScheduledCounts sums FaultAt over attempts 1..n — the exact number of
// injections per scheduled kind an injector must report after serving n
// attempts (quota and drift are stateful and excluded).
func (p Profile) ScheduledCounts(n int64) map[Kind]int64 {
	out := make(map[Kind]int64)
	for i := int64(1); i <= n; i++ {
		if k := p.FaultAt(i); k != "" {
			out[k]++
		}
	}
	return out
}

// String renders the profile as a spec parseable by ParseProfile.
func (p Profile) String() string {
	if !p.Active() {
		return "off"
	}
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if p.Down {
		add("down")
	}
	if p.RateLimitEvery > 0 {
		b := p.RateLimitBurst
		if b < 1 {
			b = 1
		}
		add(fmt.Sprintf("rl=%d:%d", p.RateLimitEvery, b))
	}
	if p.RetryAfter > 0 {
		add("ra=" + p.RetryAfter.String())
	}
	if p.ErrorEvery > 0 {
		add(fmt.Sprintf("err=%d", p.ErrorEvery))
	}
	if p.ResetEvery > 0 {
		add(fmt.Sprintf("reset=%d", p.ResetEvery))
	}
	if p.TruncateEvery > 0 {
		add(fmt.Sprintf("trunc=%d", p.TruncateEvery))
	}
	if p.StallEvery > 0 && p.Stall > 0 {
		add(fmt.Sprintf("stall=%d:%s", p.StallEvery, p.Stall))
	}
	if p.Latency > 0 {
		add("lat=" + p.Latency.String())
	}
	if p.LatencyJitter > 0 {
		add("jit=" + p.LatencyJitter.String())
	}
	if p.QuotaBurst > 0 {
		add(fmt.Sprintf("quota=%d:%s", p.QuotaBurst, p.QuotaRefill))
	}
	if p.DriftEvery > 0 {
		add(fmt.Sprintf("drift=%d", p.DriftEvery))
	}
	if p.Seed != 0 {
		add(fmt.Sprintf("seed=%d", p.Seed))
	}
	return strings.Join(parts, ",")
}

// Presets returns the named built-in profiles, the vocabulary shared by
// skyserve -chaos, smoke_e2e -chaos and the BENCH chaos scenarios.
func Presets() map[string]Profile {
	return map[string]Profile{
		// bursty: the paper's canonical adversary — periodic 429 bursts,
		// no Retry-After, so the client's own backoff does the work.
		"bursty": {Name: "bursty", RateLimitEvery: 7, RateLimitBurst: 2},
		// polite: 429 bursts that advertise Retry-After 1s, the
		// well-behaved rate limiter clients must honor exactly.
		"polite": {Name: "polite", RateLimitEvery: 9, RateLimitBurst: 2, RetryAfter: time.Second},
		// flaky: transient 5xx and connection resets, no rate limiting.
		"flaky": {Name: "flaky", ErrorEvery: 11, ResetEvery: 17},
		// hostile: everything at once — bursty 429s, 5xx, resets,
		// truncated bodies and latency jitter. The smoke profile.
		"hostile": {Name: "hostile", RateLimitEvery: 6, RateLimitBurst: 2, ErrorEvery: 13,
			ResetEvery: 17, TruncateEvery: 23, Latency: time.Millisecond, LatencyJitter: time.Millisecond},
		// down: full outage; only parking and stale serving survive it.
		"down": {Name: "down", Down: true},
	}
}

// PresetNames lists the built-in profile names, sorted.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseProfile resolves spec into a Profile: a preset name ("hostile"),
// "off"/"" for the zero profile, or a comma-separated field spec such as
// "rl=7:2,ra=1s,err=13,reset=17,trunc=29,stall=97:50ms,lat=2ms,jit=1ms,
// quota=20:100ms,drift=50,seed=42,down". A spec may also start with a
// preset name and override fields: "hostile,seed=9".
func ParseProfile(spec string) (Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return Profile{}, nil
	}
	var p Profile
	fields := strings.Split(spec, ",")
	if base, ok := Presets()[strings.TrimSpace(fields[0])]; ok {
		p = base
		fields = fields[1:]
	} else {
		p.Name = spec
	}
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key, val, hasVal := strings.Cut(f, "=")
		if !hasVal {
			if key == "down" {
				p.Down = true
				continue
			}
			return Profile{}, fmt.Errorf("chaos: unknown profile field %q (presets: %s)", f, strings.Join(PresetNames(), ", "))
		}
		var err error
		switch key {
		case "rl":
			p.RateLimitEvery, p.RateLimitBurst, err = parseEveryBurst(val)
		case "ra":
			p.RetryAfter, err = time.ParseDuration(val)
		case "err":
			p.ErrorEvery, err = parsePositive(val)
		case "reset":
			p.ResetEvery, err = parsePositive(val)
		case "trunc":
			p.TruncateEvery, err = parsePositive(val)
		case "stall":
			var d time.Duration
			p.StallEvery, d, err = parseEveryDuration(val)
			p.Stall = d
		case "lat":
			p.Latency, err = time.ParseDuration(val)
		case "jit":
			p.LatencyJitter, err = time.ParseDuration(val)
		case "quota":
			var d time.Duration
			p.QuotaBurst, d, err = parseEveryDuration(val)
			p.QuotaRefill = d
		case "drift":
			p.DriftEvery, err = parsePositive(val)
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return Profile{}, fmt.Errorf("chaos: unknown profile field %q", key)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("chaos: bad %s value %q: %v", key, val, err)
		}
	}
	return p, nil
}

func parsePositive(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v < 1 {
		return 0, fmt.Errorf("must be >= 1")
	}
	return v, nil
}

func parseEveryBurst(s string) (every, burst int, err error) {
	ev, b, has := strings.Cut(s, ":")
	if every, err = parsePositive(ev); err != nil {
		return 0, 0, err
	}
	burst = 1
	if has {
		if burst, err = parsePositive(b); err != nil {
			return 0, 0, err
		}
	}
	return every, burst, nil
}

func parseEveryDuration(s string) (every int, d time.Duration, err error) {
	ev, ds, has := strings.Cut(s, ":")
	if every, err = parsePositive(ev); err != nil {
		return 0, 0, err
	}
	if !has {
		return 0, 0, fmt.Errorf("want N:duration")
	}
	if d, err = time.ParseDuration(ds); err != nil {
		return 0, 0, err
	}
	return every, d, nil
}
