package chaos

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
)

func capsAll(m int, c hidden.Capability) []hidden.Capability {
	out := make([]hidden.Capability, m)
	for i := range out {
		out[i] = c
	}
	return out
}

func testDB(t *testing.T, n, m, domain, k int) *hidden.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	data := make([][]int, n)
	for i := range data {
		row := make([]int, m)
		for j := range row {
			row[j] = rng.Intn(domain)
		}
		data[i] = row
	}
	return hidden.MustNew(hidden.Config{Data: data, Caps: capsAll(m, hidden.RQ), K: k})
}

func TestFaultAtBurstSchedule(t *testing.T) {
	p := Profile{RateLimitEvery: 5, RateLimitBurst: 2}
	limited := []int64{5, 6, 10, 11, 15, 16}
	idx := 0
	for n := int64(1); n <= 17; n++ {
		want := Kind("")
		if idx < len(limited) && limited[idx] == n {
			want = KindRateLimit
			idx++
		}
		if got := p.FaultAt(n); got != want {
			t.Fatalf("FaultAt(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFaultAtPrecedence(t *testing.T) {
	p := Profile{RateLimitEvery: 6, ErrorEvery: 6, ResetEvery: 6}
	if got := p.FaultAt(6); got != KindRateLimit {
		t.Fatalf("collision resolved to %q, want rate_limit", got)
	}
	p.RateLimitEvery = 0
	if got := p.FaultAt(6); got != KindReset {
		t.Fatalf("collision resolved to %q, want reset", got)
	}
}

func TestFaultAtDown(t *testing.T) {
	p := Profile{Down: true}
	if p.FaultAt(1) != KindReset || p.FaultAt(2) != KindServerError || p.FaultAt(3) != KindReset {
		t.Fatal("down profile must alternate reset / server_error")
	}
}

// TestInjectedScheduleExact drives the in-process wrapper with a plain
// pass-through consumer and asserts the injector's per-kind counts match
// the pure schedule to the unit.
func TestInjectedScheduleExact(t *testing.T) {
	db := testDB(t, 50, 2, 20, 3)
	p := Profile{RateLimitEvery: 4, RateLimitBurst: 2, ErrorEvery: 9, TruncateEvery: 13}
	in := New(p)
	wrapped := in.Wrap(db)
	const attempts = 200
	var failures int64
	for i := 0; i < attempts; i++ {
		_, err := wrapped.Query(query.Q{{Attr: 0, Op: query.LE, Value: 10}})
		if err != nil {
			failures++
		}
	}
	if got := in.Attempts(); got != attempts {
		t.Fatalf("Attempts = %d, want %d", got, attempts)
	}
	want := p.ScheduledCounts(attempts)
	got := in.Counts()
	var scheduled int64
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("count[%s] = %d, want %d (all: %v)", k, got[k], w, got)
		}
		scheduled += w
	}
	if failures != scheduled {
		t.Fatalf("observed %d failures, schedule says %d", failures, scheduled)
	}
	if served := in.Served(); served != attempts-scheduled {
		t.Fatalf("Served = %d, want %d", served, attempts-scheduled)
	}
	if evs := in.Events(); int64(len(evs)) != scheduled {
		t.Fatalf("event log has %d entries, want %d", len(evs), scheduled)
	}
}

func TestInjectedErrorsUnwrap(t *testing.T) {
	rl := &RateLimitedError{After: 2 * time.Second}
	if !errors.Is(rl, hidden.ErrRateLimited) {
		t.Fatal("injected 429 must unwrap to hidden.ErrRateLimited")
	}
	if retry.AfterHint(rl) != 2*time.Second {
		t.Fatal("injected 429 lost its Retry-After hint")
	}
	fe := &FaultError{Kind: KindReset}
	if !errors.Is(fe, retry.ErrUnavailable) {
		t.Fatal("injected reset must unwrap to retry.ErrUnavailable")
	}
	if errors.Is(fe, hidden.ErrRateLimited) {
		t.Fatal("injected reset must not look like a rate limit")
	}
}

// TestHardenedAbsorbsScheduledFaults proves the retry wrapper turns a
// hostile interface back into a clean one: every query eventually
// succeeds and the answers match a fault-free twin exactly.
func TestHardenedAbsorbsScheduledFaults(t *testing.T) {
	clean := testDB(t, 80, 2, 25, 3)
	faulty := testDB(t, 80, 2, 25, 3)
	in := New(Profile{RateLimitEvery: 5, RateLimitBurst: 2, ErrorEvery: 13, ResetEvery: 17})
	h := Harden(in.Wrap(faulty), retry.Policy{
		BaseBackoff: 50 * time.Microsecond, MaxBackoff: time.Millisecond, Attempts: 8, NoJitter: true,
	}, 1)
	for v := 0; v < 25; v++ {
		q := query.Q{{Attr: 0, Op: query.LE, Value: v}}
		want, err := clean.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Query(q)
		if err != nil {
			t.Fatalf("hardened query failed: %v", err)
		}
		if len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow {
			t.Fatalf("answer diverged under faults: got %d tuples (overflow=%v), want %d (%v)",
				len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
		}
	}
	if h.Retries() == 0 {
		t.Fatal("no retries recorded despite scheduled faults")
	}
	// Both databases served exactly the same number of real queries.
	if clean.QueriesIssued() != faulty.QueriesIssued() {
		t.Fatalf("underlying query counts diverged: clean %d, faulty %d",
			clean.QueriesIssued(), faulty.QueriesIssued())
	}
}

// TestHardenedGivesUpUnderOutage: a Down profile exhausts the policy and
// the final error surfaces unchanged (transient, not a rate limit).
func TestHardenedGivesUpUnderOutage(t *testing.T) {
	db := testDB(t, 10, 2, 10, 2)
	in := New(Profile{Down: true})
	h := Harden(in.Wrap(db), retry.Policy{BaseBackoff: 10 * time.Microsecond, Attempts: 3, NoJitter: true}, 1)
	_, err := h.Query(nil)
	if !errors.Is(err, retry.ErrUnavailable) {
		t.Fatalf("outage error = %v, want retry.ErrUnavailable", err)
	}
	if in.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", in.Attempts())
	}
}

func TestQuotaShaping(t *testing.T) {
	db := testDB(t, 20, 2, 10, 2)
	in := New(Profile{QuotaBurst: 5, QuotaRefill: time.Hour}) // never refills in-test
	wrapped := in.Wrap(db)
	for i := 0; i < 5; i++ {
		if _, err := wrapped.Query(nil); err != nil {
			t.Fatalf("query %d within quota failed: %v", i, err)
		}
	}
	_, err := wrapped.Query(nil)
	if !errors.Is(err, hidden.ErrRateLimited) {
		t.Fatalf("over-quota error = %v, want rate limited", err)
	}
	if hint := retry.AfterHint(err); hint <= 0 {
		t.Fatal("quota rejection must carry a Retry-After hint")
	}
	if in.Count(KindQuota) != 1 {
		t.Fatalf("quota count = %d", in.Count(KindQuota))
	}
}

func TestDriftRotatesRanking(t *testing.T) {
	db := hidden.MustNew(hidden.Config{
		Data: [][]int{{1, 9}, {9, 1}, {5, 5}},
		Caps: capsAll(2, hidden.RQ),
		K:    1,
	})
	in := New(Profile{DriftEvery: 2})
	in.SetDrift(db, hidden.AttrRank{Attr: 1}, hidden.SumRank{})
	wrapped := in.Wrap(db)
	top := func() []int {
		res, err := wrapped.Query(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Top()
	}
	if got := top(); got[0] != 1 { // SumRank initial: tuple {1,9}
		t.Fatalf("initial top = %v", got)
	}
	// Second serve trips the drift to AttrRank{1}.
	top()
	if got := top(); got[0] != 9 {
		t.Fatalf("post-drift top = %v, want [9 1]", got)
	}
	if in.Count(KindDrift) < 1 {
		t.Fatal("drift not counted")
	}
}

func TestParseProfilePresetsAndOverrides(t *testing.T) {
	p, err := ParseProfile("hostile,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "hostile" || p.Seed != 9 || p.RateLimitEvery != 6 {
		t.Fatalf("preset override parsed wrong: %+v", p)
	}
	p, err = ParseProfile("rl=7:2,ra=1s,err=13,stall=97:50ms,quota=20:100ms,drift=50,down")
	if err != nil {
		t.Fatal(err)
	}
	if p.RateLimitEvery != 7 || p.RateLimitBurst != 2 || p.RetryAfter != time.Second ||
		p.ErrorEvery != 13 || p.StallEvery != 97 || p.Stall != 50*time.Millisecond ||
		p.QuotaBurst != 20 || p.QuotaRefill != 100*time.Millisecond || p.DriftEvery != 50 || !p.Down {
		t.Fatalf("field spec parsed wrong: %+v", p)
	}
	if _, err := ParseProfile("bogus=1"); err == nil {
		t.Fatal("unknown field accepted")
	}
	off, err := ParseProfile("off")
	if err != nil || off.Active() {
		t.Fatalf("off profile: %+v, %v", off, err)
	}
	// String round-trips through ParseProfile.
	spec := p.String()
	p2, err := ParseProfile(spec)
	if err != nil {
		t.Fatalf("round-trip of %q: %v", spec, err)
	}
	p.Name, p2.Name = "", ""
	if p != p2 {
		t.Fatalf("round-trip drifted:\n  %+v\n  %+v", p, p2)
	}
}

func TestInstrumentRegistersPerKindCounters(t *testing.T) {
	in := New(Profile{RateLimitEvery: 2})
	reg := obs.NewRegistry()
	in.Instrument(reg)
	db := testDB(t, 10, 2, 10, 2)
	w := in.Wrap(db)
	w.Query(nil)
	w.Query(nil) // attempt 2: injected 429
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `chaos_faults_injected_total{kind="rate_limit"} 1`) {
		t.Fatalf("metric missing:\n%s", sb.String())
	}
}
