package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
)

// The exactness-under-failure suite: for every algorithm family and
// request shape, a discovery run against a chaos-wrapped, hardened
// interface must return the identical skyline set and exact query
// accounting a fault-free twin produces, under every recoverable fault
// profile — injected faults are errors or latency only, never silently
// wrong answers, so absorbing them by retry restores the clean run bit
// for bit.

// exactPolicy absorbs every recoverable profile's worst consecutive
// fault run quickly: microsecond backoff, Retry-After hints capped so
// the polite preset's 1s advertisements do not slow the suite down.
func exactPolicy() retry.Policy {
	return retry.Policy{
		Attempts:      10,
		BaseBackoff:   50 * time.Microsecond,
		MaxBackoff:    500 * time.Microsecond,
		RetryAfterCap: 500 * time.Microsecond,
		NoJitter:      true,
	}
}

// mkTwin returns a builder of identical databases: every call compiles
// the same seeded data, so a clean and a fault-injected run see twins.
func mkTwin(seed int64, n, m, domain, k int, caps []hidden.Capability) func() *hidden.DB {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int, n)
	for i := range data {
		row := make([]int, m)
		for j := range row {
			row[j] = rng.Intn(domain)
		}
		data[i] = row
	}
	return func() *hidden.DB {
		return hidden.MustNew(hidden.Config{Data: data, Caps: caps, K: k})
	}
}

// exactConfig is one cell of the request matrix.
type exactConfig struct {
	name string
	mk   func() *hidden.DB
	req  core.Request
	opt  core.Options
	// parallel runs may legitimately spend a different (scheduler-
	// dependent) number of queries than another run; for them the suite
	// asserts exact accounting (reported count == backend-served count)
	// instead of count equality with the clean twin.
	parallel bool
}

func exactConfigs() []exactConfig {
	sq := capsAll(3, hidden.SQ)
	rq := capsAll(3, hidden.RQ)
	pq := capsAll(3, hidden.PQ)
	mixed := []hidden.Capability{hidden.RQ, hidden.SQ, hidden.PQ}
	// Every dataset is sized so its clean run issues comfortably more
	// queries than the largest first-fault attempt across the profiles
	// (flaky's error at attempt 11): a cell whose run finishes before
	// the schedule's first fault would prove nothing.
	return []exactConfig{
		{name: "sq", mk: mkTwin(101, 150, 3, 30, 4, sq), req: core.Request{Algo: core.AlgoSQ}},
		{name: "rq", mk: mkTwin(102, 300, 3, 40, 2, rq), req: core.Request{Algo: core.AlgoRQ}},
		{name: "pq", mk: mkTwin(103, 200, 3, 16, 4, pq), req: core.Request{Algo: core.AlgoPQ}},
		{name: "mq", mk: mkTwin(104, 150, 3, 25, 4, mixed), req: core.Request{Algo: core.AlgoMQ}},
		{name: "band", mk: mkTwin(105, 150, 3, 30, 5, rq), req: core.Request{Band: 3}},
		{name: "filter", mk: mkTwin(106, 300, 3, 40, 2, rq),
			req: core.Request{Filter: query.Q{{Attr: 0, Op: query.LE, Value: 25}}}},
		{name: "parallel", mk: mkTwin(107, 300, 3, 40, 2, rq),
			req: core.Request{Algo: core.AlgoRQ}, opt: core.Options{Parallelism: 4}, parallel: true},
	}
}

// recoverableProfiles is every preset a hardened consumer must fully
// absorb (the down preset is the deliberate exception: it never lets a
// query through), plus a quota-shaping profile with a fast refill.
func recoverableProfiles() []Profile {
	var out []Profile
	for _, name := range []string{"bursty", "polite", "flaky", "hostile"} {
		p := Presets()[name]
		if !p.Active() {
			panic("missing preset " + name)
		}
		// The hostile preset's millisecond latency jitter is the
		// production smoke default; dial it down so the full matrix
		// stays fast without changing the fault schedule.
		p.Latency, p.LatencyJitter = 20*time.Microsecond, 20*time.Microsecond
		out = append(out, p)
	}
	out = append(out, Profile{Name: "quota", QuotaBurst: 40, QuotaRefill: 50 * time.Microsecond})
	return out
}

func skylineSet(ts [][]int) []string {
	out := make([]string, len(ts))
	for i, tu := range ts {
		out[i] = fmt.Sprint(tu)
	}
	sort.Strings(out)
	return out
}

func sameSkyline(t *testing.T, got, want [][]int) {
	t.Helper()
	g, w := skylineSet(got), skylineSet(want)
	if len(g) != len(w) {
		t.Fatalf("skyline size diverged under faults: got %d tuples, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("skyline sets differ at %d: %s vs %s", i, g[i], w[i])
		}
	}
}

func TestExactnessUnderRecoverableProfiles(t *testing.T) {
	for _, cfg := range exactConfigs() {
		for _, p := range recoverableProfiles() {
			t.Run(cfg.name+"/"+p.Name, func(t *testing.T) {
				t.Parallel()
				clean := cfg.mk()
				want, err := core.Run(clean, cfg.req, cfg.opt)
				if err != nil {
					t.Fatalf("clean run: %v", err)
				}
				faulty := cfg.mk()
				in := New(p)
				hardened := Harden(in.Wrap(faulty), exactPolicy(), 1)
				got, err := core.Run(hardened, cfg.req, cfg.opt)
				if err != nil {
					t.Fatalf("run under %s: %v", p.Name, err)
				}
				if got.Complete != want.Complete {
					t.Fatalf("Complete = %v under faults, clean run %v", got.Complete, want.Complete)
				}
				sameSkyline(t, got.Skyline, want.Skyline)
				if got.Band != want.Band {
					t.Fatalf("band level = %d under faults, want %d", got.Band, want.Band)
				}
				if cfg.parallel {
					// Exact accounting: every counted query reached the
					// backend exactly once — no injected fault counted, no
					// absorbed retry double-counted.
					if got.Queries != faulty.QueriesIssued() {
						t.Fatalf("accounting: reported %d queries, backend served %d",
							got.Queries, faulty.QueriesIssued())
					}
				} else {
					if got.Queries != want.Queries {
						t.Fatalf("query count = %d under faults, clean run %d", got.Queries, want.Queries)
					}
					if faulty.QueriesIssued() != clean.QueriesIssued() {
						t.Fatalf("backend served %d queries under faults, clean twin %d",
							faulty.QueriesIssued(), clean.QueriesIssued())
					}
				}
				// The injection schedule is exact even when retries and
				// parallel workers interleave: per-kind counts are a pure
				// function of the total attempt number.
				counts := in.Counts()
				var scheduled int64
				for k, w := range p.ScheduledCounts(in.Attempts()) {
					if counts[k] != w {
						t.Fatalf("injected %s = %d, schedule says %d (attempts %d)",
							k, counts[k], w, in.Attempts())
					}
					scheduled += w
				}
				if p.Name != "quota" && scheduled == 0 {
					t.Fatal("profile injected no faults; the matrix cell proved nothing")
				}
			})
		}
	}
}

// TestExactnessUnderRankingDrift: mid-crawl ranking drift is the one
// recoverable fault that changes answers (each reply is a valid top-k
// under the ranking of the moment) without ever corrupting the result:
// skyline membership is ranking-independent, so the discovered set must
// match the clean twin exactly. Query counts may legitimately differ —
// truncated answers surface different witnesses under different
// rankings — so the suite asserts exact accounting instead.
func TestExactnessUnderRankingDrift(t *testing.T) {
	mk := mkTwin(108, 150, 3, 30, 4, capsAll(3, hidden.RQ))
	want, err := core.Run(mk(), core.Request{Algo: core.AlgoRQ}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	faulty := mk()
	in := New(Profile{DriftEvery: 20})
	in.SetDrift(faulty,
		hidden.AttrRank{Attr: 1},
		hidden.WeightedRank{Weights: []float64{3, 1, 0.5}},
		hidden.SumRank{})
	got, err := core.Run(Harden(in.Wrap(faulty), exactPolicy(), 1), core.Request{Algo: core.AlgoRQ}, core.Options{})
	if err != nil {
		t.Fatalf("run under drift: %v", err)
	}
	if !got.Complete {
		t.Fatal("drifted run not complete")
	}
	sameSkyline(t, got.Skyline, want.Skyline)
	if got.Queries != faulty.QueriesIssued() {
		t.Fatalf("accounting under drift: reported %d, backend served %d", got.Queries, faulty.QueriesIssued())
	}
	if in.Count(KindDrift) == 0 {
		t.Fatal("ranking never drifted; the run proved nothing")
	}
}
