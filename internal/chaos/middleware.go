package chaos

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Middleware places the injector's fault schedule in front of an HTTP
// hidden-database server. Only POST /v1/search attempts are shaped —
// meta, metrics and health endpoints stay clean so operators can watch
// the chaos they asked for. Injected faults never reach the inner
// handler: an injected 429 is not a served query, exactly like a real
// rate limiter rejecting at the edge.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/search" {
			next.ServeHTTP(w, r)
			return
		}
		if delay := in.delay(); delay > 0 {
			time.Sleep(delay)
		}
		n := in.attempts.Add(1)
		switch k := in.profile.FaultAt(n); k {
		case KindRateLimit:
			in.record(n, k, "")
			writeFaultStatus(w, http.StatusTooManyRequests, in.profile.RetryAfter, "chaos: injected rate limit")
			return
		case KindServerError:
			in.record(n, k, "")
			writeFaultStatus(w, http.StatusServiceUnavailable, 0, "chaos: injected 503")
			return
		case KindReset:
			in.record(n, k, "")
			// net/http recovers ErrAbortHandler by closing the
			// connection without a response — the client sees a reset.
			panic(http.ErrAbortHandler)
		case KindTruncate:
			in.record(n, k, "")
			in.truncate(next, w, r)
			return
		case KindStall:
			in.record(n, k, in.profile.Stall.String())
			time.Sleep(in.profile.Stall)
		}
		if wait := in.quotaWait(time.Now()); wait > 0 {
			in.record(n, KindQuota, wait.String())
			writeFaultStatus(w, http.StatusTooManyRequests, wait, "chaos: quota exhausted")
			return
		}
		next.ServeHTTP(w, r)
		in.served.Add(1)
		in.maybeDrift()
	})
}

// writeFaultStatus emits an injected JSON error answer. Retry-After is
// advertised in whole seconds (rounded up), matching what HTTP allows.
func writeFaultStatus(w http.ResponseWriter, status int, retryAfter time.Duration, msg string) {
	if retryAfter > 0 {
		secs := int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// truncate serves the inner handler into a buffer, then replays the
// status and headers with the full Content-Length but writes only half
// the body before dropping the connection — the client reads a partial
// payload and hits an unexpected EOF mid-decode.
func (in *Injector) truncate(next http.Handler, w http.ResponseWriter, r *http.Request) {
	rec := &bufferingWriter{header: make(http.Header), status: http.StatusOK}
	next.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	body := rec.body.Bytes()
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.status)
	if len(body) > 1 {
		_, _ = w.Write(body[:len(body)/2])
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// bufferingWriter captures a handler's full response for truncation.
type bufferingWriter struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferingWriter) Header() http.Header         { return b.header }
func (b *bufferingWriter) WriteHeader(status int)      { b.status = status }
func (b *bufferingWriter) Write(p []byte) (int, error) { return b.body.Write(p) }
