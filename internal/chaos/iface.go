package chaos

import (
	"fmt"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
)

// RateLimitedError is an injected 429. It unwraps to
// hidden.ErrRateLimited — consumers treat it exactly like a real budget
// rejection — and carries the profile's Retry-After hint for
// retry.AfterHint.
type RateLimitedError struct {
	// After is the advertised Retry-After (0 = none).
	After time.Duration
}

func (e *RateLimitedError) Error() string {
	if e.After > 0 {
		return fmt.Sprintf("chaos: injected rate limit (retry after %v)", e.After)
	}
	return "chaos: injected rate limit"
}

func (e *RateLimitedError) Unwrap() error                 { return hidden.ErrRateLimited }
func (e *RateLimitedError) RetryAfterHint() time.Duration { return e.After }

// FaultError is an injected transient failure (5xx, reset, truncation).
// It unwraps to retry.ErrUnavailable, so hardened consumers retry it.
type FaultError struct {
	// Kind is the injected fault class.
	Kind Kind
}

func (e *FaultError) Error() string {
	switch e.Kind {
	case KindServerError:
		return "chaos: injected 503 service unavailable"
	case KindReset:
		return "chaos: injected connection reset"
	case KindTruncate:
		return "chaos: injected truncated answer"
	}
	return "chaos: injected " + string(e.Kind)
}

func (e *FaultError) Unwrap() error { return retry.ErrUnavailable }

// DB wraps a core.Interface with the injector's fault schedule — the
// in-process twin of the HTTP middleware. Metadata calls (NumAttrs, K,
// Cap, Domain) pass through untouched; only Query is hostile.
type DB struct {
	inner core.Interface
	in    *Injector
}

// Wrap places the injector in front of db.
func (in *Injector) Wrap(db core.Interface) *DB {
	return &DB{inner: db, in: in}
}

// Query implements core.Interface: it advances the global attempt
// counter, injects the scheduled fault (as an error — never a wrong
// answer), applies latency shaping, and otherwise delegates.
func (d *DB) Query(q query.Q) (hidden.Result, error) {
	in := d.in
	if delay := in.delay(); delay > 0 {
		time.Sleep(delay)
	}
	n := in.attempts.Add(1)
	switch k := in.profile.FaultAt(n); k {
	case KindRateLimit:
		in.record(n, k, "")
		return hidden.Result{}, &RateLimitedError{After: in.profile.RetryAfter}
	case KindServerError, KindReset, KindTruncate:
		in.record(n, k, "")
		return hidden.Result{}, &FaultError{Kind: k}
	case KindStall:
		in.record(n, k, in.profile.Stall.String())
		time.Sleep(in.profile.Stall)
	}
	if wait := in.quotaWait(time.Now()); wait > 0 {
		in.record(n, KindQuota, wait.String())
		return hidden.Result{}, &RateLimitedError{After: wait}
	}
	res, err := d.inner.Query(q)
	if err == nil {
		in.served.Add(1)
		in.maybeDrift()
	}
	return res, err
}

// NumAttrs implements core.Interface.
func (d *DB) NumAttrs() int { return d.inner.NumAttrs() }

// K implements core.Interface.
func (d *DB) K() int { return d.inner.K() }

// Cap implements core.Interface.
func (d *DB) Cap(i int) hidden.Capability { return d.inner.Cap(i) }

// Domain implements core.Interface.
func (d *DB) Domain(i int) query.Interval { return d.inner.Domain(i) }
