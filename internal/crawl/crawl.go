// Package crawl implements complete extraction of a hidden database
// through its top-k interface — the paper's BASELINE competitor, standing
// in for the rank-shrink crawler of Sheng et al. (VLDB 2012, reference
// [22]). The crawler recursively partitions the data space with two-ended
// range predicates: a query that overflows splits its box on the k-th
// answer's value along a chosen attribute, guaranteeing each side matches
// strictly fewer unseen tuples. The query cost carries the O(m·n) flavour
// the paper cites for complete crawling, which is what makes skyline-aware
// discovery orders of magnitude cheaper.
package crawl

import (
	"errors"
	"fmt"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

// ErrBudget is wrapped into the error returned when the crawl is cut short
// by a rate limit or MaxQueries; the partial tuple set is still returned.
var ErrBudget = errors.New("crawl: query budget exhausted (partial crawl)")

// Interface is the view of the hidden database the crawler needs; it is
// satisfied by *hidden.DB.
type Interface interface {
	Query(q query.Q) (hidden.Result, error)
	NumAttrs() int
	K() int
	Cap(i int) hidden.Capability
	Domain(i int) query.Interval
}

// Options tunes a crawl.
type Options struct {
	// MaxQueries, when positive, aborts the crawl after that many queries
	// with ErrBudget and the tuples collected so far.
	MaxQueries int
	// OnBatch, when set, observes every non-empty answer: the cumulative
	// query count and the batch of returned tuples. The experiment harness
	// uses it to trace when each eventual skyline tuple was first crawled.
	OnBatch func(queries int, tuples [][]int)
}

// Result is the outcome of a crawl.
type Result struct {
	// Tuples holds every distinct tuple value combination retrieved.
	Tuples [][]int
	// Queries is the number of interface queries issued.
	Queries int
	// Complete reports whether the whole database was provably covered.
	Complete bool
}

// Crawl retrieves the entire database. Every ranking attribute must
// support two-ended ranges (the baseline's requirement, as the paper notes
// when excluding BASELINE from SQ-only comparisons).
func Crawl(db Interface, opt Options) (Result, error) {
	m := db.NumAttrs()
	for i := 0; i < m; i++ {
		if db.Cap(i) != hidden.RQ {
			return Result{}, fmt.Errorf("crawl: BASELINE needs two-ended ranges on every attribute; A%d is %s", i, db.Cap(i))
		}
	}
	c := &crawler{db: db, opt: opt, seen: map[string]bool{}}
	root := make([]query.Interval, m)
	for i := 0; i < m; i++ {
		root[i] = db.Domain(i)
	}
	err := c.crawlBox(root)
	res := Result{Tuples: c.tuples, Queries: c.queries, Complete: err == nil}
	return res, err
}

// CrawlSkyline runs the full BASELINE pipeline: crawl everything, then
// extract the skyline locally.
func CrawlSkyline(db Interface, opt Options) (Result, [][]int, error) {
	res, err := Crawl(db, opt)
	if err != nil {
		return res, nil, err
	}
	return res, skyline.ComputeTuples(res.Tuples), nil
}

type crawler struct {
	db      Interface
	opt     Options
	queries int
	tuples  [][]int
	seen    map[string]bool
}

func (c *crawler) issue(q query.Q) (hidden.Result, error) {
	if c.opt.MaxQueries > 0 && c.queries >= c.opt.MaxQueries {
		return hidden.Result{}, ErrBudget
	}
	res, err := c.db.Query(q)
	if err != nil {
		if errors.Is(err, hidden.ErrRateLimited) {
			return hidden.Result{}, fmt.Errorf("%w: %v", ErrBudget, err)
		}
		return hidden.Result{}, err
	}
	c.queries++
	return res, nil
}

func (c *crawler) record(ts [][]int) {
	for _, t := range ts {
		k := fmt.Sprint(t)
		if !c.seen[k] {
			c.seen[k] = true
			c.tuples = append(c.tuples, append([]int(nil), t...))
		}
	}
}

// boxQuery renders a box as a conjunctive two-ended range query.
func (c *crawler) boxQuery(box []query.Interval) query.Q {
	var q query.Q
	for i, iv := range box {
		dom := c.db.Domain(i)
		if iv.Lo > dom.Lo {
			q = append(q, query.Predicate{Attr: i, Op: query.GE, Value: iv.Lo})
		}
		if iv.Hi < dom.Hi {
			q = append(q, query.Predicate{Attr: i, Op: query.LE, Value: iv.Hi})
		}
	}
	return q
}

// crawlBox retrieves every tuple inside box. On overflow it splits the box
// along the attribute where the k-th (worst returned) answer leaves the
// most room, using that answer's value as the pivot: the "lower" side is
// strictly smaller in one dimension and the recursion therefore
// terminates; tuples straddling the pivot value are covered by both
// halves' closed intervals being disjoint at integer granularity.
func (c *crawler) crawlBox(box []query.Interval) error {
	for _, iv := range box {
		if iv.Empty() {
			return nil
		}
	}
	res, err := c.issue(c.boxQuery(box))
	if err != nil {
		return err
	}
	c.record(res.Tuples)
	if c.opt.OnBatch != nil && len(res.Tuples) > 0 {
		c.opt.OnBatch(c.queries, res.Tuples)
	}
	if !res.Overflow {
		return nil
	}
	pivotTuple := res.Tuples[len(res.Tuples)-1]
	// Choose the split attribute: the one whose box interval is largest,
	// preferring splits that make both halves non-trivial.
	attr, pivot := -1, 0
	bestSpan := 0
	for i, iv := range box {
		if iv.Len() < 2 {
			continue
		}
		p := pivotTuple[i]
		// Candidate split: [lo, p-1] and [p, hi]; fall back to the middle
		// when the pivot value sits on the lower edge.
		if p <= iv.Lo {
			p = iv.Lo + iv.Len()/2
		}
		if p > iv.Hi {
			p = iv.Hi
		}
		if iv.Len() > bestSpan {
			bestSpan = iv.Len()
			attr, pivot = i, p
		}
	}
	if attr < 0 {
		// The box is a single point yet overflows: more than k tuples
		// share one value combination. Points cannot be subdivided; the
		// interface physically cannot reveal the hidden duplicates, so
		// record what we have (the top-k of the point) and move on.
		return nil
	}
	lower := cloneBox(box)
	lower[attr].Hi = pivot - 1
	upper := cloneBox(box)
	upper[attr].Lo = pivot
	// Recurse lower half first: it holds the better-ranked values, which
	// preserves a useful anytime-ish bias even though BASELINE cannot
	// certify skyline membership before completion.
	if err := c.crawlBox(lower); err != nil {
		return err
	}
	return c.crawlBox(upper)
}

func cloneBox(box []query.Interval) []query.Interval {
	return append([]query.Interval(nil), box...)
}
