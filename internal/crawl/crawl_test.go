package crawl

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/skyline"
)

func capsRQ(m int) []hidden.Capability {
	out := make([]hidden.Capability, m)
	for i := range out {
		out[i] = hidden.RQ
	}
	return out
}

func randData(rng *rand.Rand, n, m, domain int) [][]int {
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		data[i] = t
	}
	return data
}

func valueSet(ts [][]int) map[string]bool {
	s := map[string]bool{}
	for _, t := range ts {
		s[fmt.Sprint(t)] = true
	}
	return s
}

func TestCrawlComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{1, 2, 3, 4} {
		for _, k := range []int{1, 5, 20} {
			for _, domain := range []int{3, 17, 100} {
				n := 10 + rng.Intn(300)
				data := randData(rng, n, m, domain)
				db, err := hidden.New(hidden.Config{Data: data, Caps: capsRQ(m), K: k})
				if err != nil {
					t.Fatal(err)
				}
				res, err := Crawl(db, Options{})
				if err != nil {
					t.Fatalf("m=%d k=%d dom=%d: %v", m, k, domain, err)
				}
				if !res.Complete {
					t.Fatalf("m=%d k=%d dom=%d: not complete", m, k, domain)
				}
				want, got := valueSet(data), valueSet(res.Tuples)
				for v := range want {
					if !got[v] {
						t.Fatalf("m=%d k=%d dom=%d: missing tuple %s", m, k, domain, v)
					}
				}
				for v := range got {
					if !want[v] {
						t.Fatalf("m=%d k=%d dom=%d: phantom tuple %s", m, k, domain, v)
					}
				}
			}
		}
	}
}

func TestCrawlSkylineMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randData(rng, 400, 3, 30)
	db, err := hidden.New(hidden.Config{Data: data, Caps: capsRQ(3), K: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, sky, err := CrawlSkyline(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := valueSet(skyline.ComputeTuples(data))
	got := valueSet(sky)
	if len(want) != len(got) {
		t.Fatalf("skyline size %d, want %d", len(got), len(want))
	}
	for v := range want {
		if !got[v] {
			t.Fatalf("missing skyline tuple %s", v)
		}
	}
}

func TestCrawlRejectsWeakInterfaces(t *testing.T) {
	data := [][]int{{1, 2}, {2, 1}}
	for _, caps := range [][]hidden.Capability{
		{hidden.SQ, hidden.RQ},
		{hidden.RQ, hidden.PQ},
	} {
		db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Crawl(db, Options{}); err == nil {
			t.Fatalf("caps %v: crawl should refuse non-RQ interfaces", caps)
		}
	}
}

func TestCrawlBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randData(rng, 500, 3, 40)
	db, err := hidden.New(hidden.Config{Data: data, Caps: capsRQ(3), K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Crawl(db, Options{MaxQueries: 7})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res.Complete {
		t.Fatal("budget-cut crawl marked complete")
	}
	if res.Queries > 7 {
		t.Fatalf("issued %d queries under budget 7", res.Queries)
	}
	all := valueSet(data)
	for _, tup := range res.Tuples {
		if !all[fmt.Sprint(tup)] {
			t.Fatalf("phantom tuple %v", tup)
		}
	}
}

func TestCrawlRateLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randData(rng, 300, 2, 25)
	db, err := hidden.New(hidden.Config{Data: data, Caps: capsRQ(2), K: 1, QueryLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Crawl(db, Options{})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res.Complete {
		t.Fatal("rate-limited crawl marked complete")
	}
}

func TestCrawlDuplicateHeavy(t *testing.T) {
	// More than k tuples share one value combination; the crawl must
	// terminate and cover every distinct value combination.
	data := make([][]int, 0, 60)
	for i := 0; i < 40; i++ {
		data = append(data, []int{5, 5})
	}
	for i := 0; i < 20; i++ {
		data = append(data, []int{i, 20 - i})
	}
	db, err := hidden.New(hidden.Config{Data: data, Caps: capsRQ(2), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Crawl(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := valueSet(res.Tuples)
	for _, tup := range data {
		if !got[fmt.Sprint(tup)] {
			t.Fatalf("missing value combination %v", tup)
		}
	}
}

func TestCrawlOnBatchObservesEveryTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randData(rng, 200, 2, 15)
	db, err := hidden.New(hidden.Config{Data: data, Caps: capsRQ(2), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	lastQ := 0
	res, err := Crawl(db, Options{OnBatch: func(queries int, tuples [][]int) {
		if queries < lastQ {
			t.Fatalf("query counter went backwards: %d after %d", queries, lastQ)
		}
		lastQ = queries
		if len(tuples) == 0 {
			t.Fatal("OnBatch fired with no tuples")
		}
		for _, tup := range tuples {
			seen[fmt.Sprint(tup)] = true
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range res.Tuples {
		if !seen[fmt.Sprint(tup)] {
			t.Fatalf("tuple %v crawled but never observed by OnBatch", tup)
		}
	}
}
