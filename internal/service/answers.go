package service

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hiddensky/internal/answer"
)

// The answer side of the manager: every registered store owns an
// answer.Handle — a lock-free publication point for the materialized
// answer index built from the store's most recent complete discovery.
// The moment a single-store job finishes complete, its skyline (or
// K-skyband, for jobs with Band > 0) is compiled into an immutable
// answer.Store and hot-swapped in; queries in flight keep the snapshot
// they loaded. Recover republishes the latest complete result per
// store from the snapshot directory, so a restarted daemon serves
// answers again without issuing a single upstream query.

// ErrNoAnswer: the store exists but no completed discovery has
// materialized an answer index for it yet.
var ErrNoAnswer = errors.New("service: no answer index for store yet")

// answerEntry is one store's publication point: the hot-swapped index
// plus the id of the job it was built from. The two are swapped inside
// the job's terminal critical section, so observers that see a job
// done see its answers (and attribution) live.
type answerEntry struct {
	handle answer.Handle
	job    atomic.Value // string: source job id (mirrors jobID for readers)
	// co, when non-nil, coalesces concurrent single-vector top-k calls
	// against this store into shared fused sweeps (Config.BatchWindow).
	co *topkCoalescer

	mu    sync.Mutex // serializes publish; jobID is guarded by it
	jobID string
}

// publish swaps s in unless a newer job (higher id) already published —
// with concurrent jobs against one store, a slow older job must not
// overwrite a newer result it lost the race to (Recover applies the
// same highest-id-wins policy). Reports whether s was installed.
func (e *answerEntry) publish(s *answer.Store, jobID string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.jobID != "" && jobSeq(jobID) < jobSeq(e.jobID) {
		return false
	}
	e.jobID = jobID
	e.job.Store(jobID)
	e.handle.Swap(s)
	return true
}

// jobSeq extracts the numeric sequence of a "jNNNNNN" job id (-1 when
// unparseable).
func jobSeq(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return -1
	}
	return n
}

// AnswerStore returns the store's current answer index.
func (m *Manager) AnswerStore(name string) (*answer.Store, error) {
	m.mu.Lock()
	e := m.answers[name]
	m.mu.Unlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStore, name)
	}
	s := e.handle.Load()
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoAnswer, name)
	}
	return s, nil
}

// AnswerStatus describes one store's answer index for listings.
type AnswerStatus struct {
	Loaded bool         `json:"loaded"`
	Info   *answer.Info `json:"info,omitempty"`
	// Job is the id of the discovery job the index was built from.
	Job string `json:"job,omitempty"`
}

// Answers summarizes every store's answer index.
func (m *Manager) Answers() map[string]AnswerStatus {
	m.mu.Lock()
	entries := make(map[string]*answerEntry, len(m.answers))
	for n, e := range m.answers {
		entries[n] = e
	}
	m.mu.Unlock()
	out := make(map[string]AnswerStatus, len(entries))
	for n, e := range entries {
		st := AnswerStatus{}
		if s := e.handle.Load(); s != nil {
			info := s.Stats()
			st.Loaded = true
			st.Info = &info
			st.Job, _ = e.job.Load().(string)
		}
		out[n] = st
	}
	return out
}

// publishableAnswer reports whether a complete single-store result may
// feed the store-wide answer index. Filtered jobs are excluded — the
// index serves whole-store rankings, and a filtered subset would
// answer them wrong. Shared by live publication (finish) and restart
// recovery (rebuildAnswersLocked) so the two can never drift.
func publishableAnswer(spec JobSpec, tuples [][]int) bool {
	return spec.Store != "" && spec.Where == "" && len(tuples) > 0
}

// answerSource reports whether a terminal job status is a publishable
// answer source: a single-store job that finished done and complete
// with tuples.
func answerSource(st JobStatus) bool {
	return st.State == StateDone && st.Complete && publishableAnswer(st.Spec, st.Tuples)
}

// rebuildAnswers republishes answer indexes from recovered terminal
// jobs: for each store, the latest (highest job id) complete result
// wins. Each index is loaded from the job's binary columnar snapshot
// when one is present and intact — the on-disk layout is the arena
// layout, so recovery decodes slices instead of re-running Build — and
// falls back to re-indexing the JSON snapshot's tuples otherwise.
// Callers hold m.mu.
func (m *Manager) rebuildAnswersLocked() {
	latest := map[string]*job{}
	for _, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		st := j.status
		if answerSource(st) && m.answers[st.Spec.Store] != nil {
			latest[st.Spec.Store] = j
		}
	}
	for store, j := range latest {
		spec := j.status.Spec
		bandK := spec.Band
		if bandK <= 0 {
			bandK = 1
		}
		if s, ok := m.loadBinaryAnswer(j.status, bandK); ok {
			s.SetMetrics(m.met.answerShared)
			m.answers[store].publish(s, j.status.ID)
			continue
		}
		if s, err := answer.Build(j.status.Tuples, answer.Options{BandK: bandK}); err == nil {
			s.SetMetrics(m.met.answerShared)
			m.answers[store].publish(s, j.status.ID)
			m.met.recoverJSON.Inc()
			m.log.Info("answer index recovered",
				"source", "json", "store", store, "job_id", j.status.ID,
				"tuples", s.Len())
		}
	}
}

// loadBinaryAnswer tries to recover a job's answer index from its
// binary columnar snapshot. A missing file is the normal case for jobs
// that predate the format (no log noise); a corrupt or mismatched one
// is logged and rejected, costing only the fallback re-index.
func (m *Manager) loadBinaryAnswer(st JobStatus, bandK int) (*answer.Store, bool) {
	if m.snaps == nil {
		return nil, false
	}
	data, err := m.snaps.loadAnswer(st.ID)
	if err != nil {
		return nil, false
	}
	s, err := answer.LoadBinary(data)
	if err != nil {
		m.log.Warn("binary answer snapshot rejected; re-indexing from JSON",
			"job_id", st.ID, "store", st.Spec.Store, "error", err)
		return nil, false
	}
	// The JSON job snapshot is the source of truth: a binary block that
	// disagrees with it on shape (a stale file from a reused id, an
	// operator copy-paste) must lose to a re-index.
	if s.BandK() != bandK || (len(st.Tuples) > 0 && s.NumAttrs() != len(st.Tuples[0])) {
		m.log.Warn("binary answer snapshot shape mismatch; re-indexing from JSON",
			"job_id", st.ID, "store", st.Spec.Store)
		return nil, false
	}
	m.met.recoverBinary.Inc()
	m.log.Info("answer index recovered",
		"source", "binary", "store", st.Spec.Store, "job_id", st.ID,
		"tuples", s.Len())
	return s, true
}

// --- wire types of the /v1/answer endpoints ---

// AnswerRange is one per-attribute constraint of a filtered top-k
// request; a nil bound is unbounded on that side.
type AnswerRange struct {
	Attr int  `json:"attr"`
	Lo   *int `json:"lo,omitempty"`
	Hi   *int `json:"hi,omitempty"`
}

func (r AnswerRange) toRange() answer.Range {
	out := answer.Range{Attr: r.Attr, Lo: math.MinInt, Hi: math.MaxInt}
	if r.Lo != nil {
		out.Lo = *r.Lo
	}
	if r.Hi != nil {
		out.Hi = *r.Hi
	}
	return out
}

// AnswerTopKRequest is the body of POST /v1/answer/topk.
type AnswerTopKRequest struct {
	Store string `json:"store"`
	// Weights is the client's ranking: score(t) = Σ weights[a]·t[a],
	// lower is better; non-negative, at least one positive.
	Weights []float64 `json:"weights"`
	K       int       `json:"k"`
	// Normalized scores unit-scaled attribute columns instead of raw
	// values.
	Normalized bool `json:"normalized,omitempty"`
	// Filter restricts the answer to tuples inside every range
	// (best-effort over the materialized band; never marked exact).
	Filter []AnswerRange `json:"filter,omitempty"`
}

// AnswerTopKResponse is the matching answer: parallel tuple/score/level
// slices in ranking order (best first).
type AnswerTopKResponse struct {
	Store string `json:"store"`
	K     int    `json:"k"`
	// Exact reports the answer provably equals brute-force top-k over
	// the original database (unfiltered, k <= the band level the index
	// was built from; at value level — duplicate rows collapse, as they
	// do through any top-k value interface).
	Exact  bool      `json:"exact"`
	BandK  int       `json:"band_k"`
	Tuples [][]int   `json:"tuples"`
	Scores []float64 `json:"scores"`
	Levels []int     `json:"levels"`
}

// rankedPool recycles the intermediate []answer.Ranked between topk
// requests: the response only keeps the tuple views (immutable store
// rows) and copies of the scores/levels, so the buffer itself can be
// handed to the next request.
var rankedPool = sync.Pool{New: func() any { return new([]answer.Ranked) }}

// toQuery compiles the wire request's query fields.
func (req AnswerTopKRequest) toQuery() answer.TopKQuery {
	q := answer.TopKQuery{Weights: req.Weights, K: req.K, Normalized: req.Normalized}
	if len(req.Filter) > 0 {
		q.Filter = make([]answer.Range, 0, len(req.Filter))
		for _, r := range req.Filter {
			q.Filter = append(q.Filter, r.toRange())
		}
	}
	return q
}

// topkResponse copies one ranked result into the wire shape.
func topkResponse(store string, k, bandK int, res answer.TopKResult) AnswerTopKResponse {
	n := len(res.Items)
	resp := AnswerTopKResponse{
		Store:  store,
		K:      k,
		Exact:  res.Exact,
		BandK:  bandK,
		Tuples: make([][]int, 0, n),
		Scores: make([]float64, 0, n),
		Levels: make([]int, 0, n),
	}
	for _, it := range res.Items {
		resp.Tuples = append(resp.Tuples, it.Tuple)
		resp.Scores = append(resp.Scores, it.Score)
		resp.Levels = append(resp.Levels, it.Level)
	}
	return resp
}

// AnswerTopK answers a top-k request from the store's materialized
// index, without issuing any upstream query. With Config.BatchWindow
// set, concurrent calls against the same store share fused column
// sweeps through the per-store coalescer instead of sweeping alone.
func (m *Manager) AnswerTopK(req AnswerTopKRequest) (AnswerTopKResponse, error) {
	m.mu.Lock()
	e := m.answers[req.Store]
	m.mu.Unlock()
	if e == nil {
		return AnswerTopKResponse{}, fmt.Errorf("%w: %q", ErrUnknownStore, req.Store)
	}
	s := e.handle.Load()
	if s == nil {
		return AnswerTopKResponse{}, fmt.Errorf("%w: %q", ErrNoAnswer, req.Store)
	}
	q := req.toQuery()
	if e.co != nil {
		// Validate before joining the window: a malformed query answers
		// its own 400 without failing the batch it would have joined.
		if err := s.CheckQuery(q); err != nil {
			return AnswerTopKResponse{}, err
		}
		res, err := e.co.do(s, q)
		if err != nil {
			return AnswerTopKResponse{}, err
		}
		return topkResponse(req.Store, req.K, s.BandK(), res), nil
	}
	buf := rankedPool.Get().(*[]answer.Ranked)
	res, err := s.TopKAppend(q, (*buf)[:0])
	if err != nil {
		rankedPool.Put(buf)
		return AnswerTopKResponse{}, err
	}
	resp := topkResponse(req.Store, req.K, s.BandK(), res)
	if res.Items != nil {
		*buf = res.Items
	}
	rankedPool.Put(buf)
	return resp, nil
}

// AnswerTopKBatchRequest is the body of POST /v1/answer/topk_batch:
// many weight vectors against one store's index, scored in fused
// column sweeps (each attribute column is read once per cache-resident
// block for the whole batch, not once per vector).
type AnswerTopKBatchRequest struct {
	Store string `json:"store"`
	// Queries are the batch members; results come back in the same
	// order. One invalid member fails the whole batch (400), naming its
	// index.
	Queries []AnswerTopKBatchQuery `json:"queries"`
}

// AnswerTopKBatchQuery is one member of a batch top-k request — the
// per-query fields of AnswerTopKRequest without the store name.
type AnswerTopKBatchQuery struct {
	Weights    []float64     `json:"weights"`
	K          int           `json:"k"`
	Normalized bool          `json:"normalized,omitempty"`
	Filter     []AnswerRange `json:"filter,omitempty"`
}

func (q AnswerTopKBatchQuery) toQuery() answer.TopKQuery {
	return AnswerTopKRequest{Weights: q.Weights, K: q.K, Normalized: q.Normalized, Filter: q.Filter}.toQuery()
}

// AnswerTopKBatchResponse answers each batch member in request order.
type AnswerTopKBatchResponse struct {
	Store   string                  `json:"store"`
	BandK   int                     `json:"band_k"`
	Results []AnswerTopKBatchResult `json:"results"`
}

// AnswerTopKBatchResult is one member's ranking (the per-query fields
// of AnswerTopKResponse).
type AnswerTopKBatchResult struct {
	K      int       `json:"k"`
	Exact  bool      `json:"exact"`
	Tuples [][]int   `json:"tuples"`
	Scores []float64 `json:"scores"`
	Levels []int     `json:"levels"`
}

// AnswerTopKBatch answers a batch of top-k requests against one store
// in fused column sweeps.
func (m *Manager) AnswerTopKBatch(req AnswerTopKBatchRequest) (AnswerTopKBatchResponse, error) {
	s, err := m.AnswerStore(req.Store)
	if err != nil {
		return AnswerTopKBatchResponse{}, err
	}
	qs := make([]answer.TopKQuery, len(req.Queries))
	for i, q := range req.Queries {
		qs[i] = q.toQuery()
	}
	results, err := m.batchTopK(s, qs)
	if err != nil {
		return AnswerTopKBatchResponse{}, err
	}
	resp := AnswerTopKBatchResponse{
		Store:   req.Store,
		BandK:   s.BandK(),
		Results: make([]AnswerTopKBatchResult, len(results)),
	}
	for i, res := range results {
		n := len(res.Items)
		r := AnswerTopKBatchResult{
			K:      req.Queries[i].K,
			Exact:  res.Exact,
			Tuples: make([][]int, 0, n),
			Scores: make([]float64, 0, n),
			Levels: make([]int, 0, n),
		}
		for _, it := range res.Items {
			r.Tuples = append(r.Tuples, it.Tuple)
			r.Scores = append(r.Scores, it.Score)
			r.Levels = append(r.Levels, it.Level)
		}
		resp.Results[i] = r
	}
	return resp, nil
}

// batchTopK is the one funnel every batch sweep goes through (explicit
// batch requests and coalesced windows alike), so the sweep/vector
// counters mean the same thing everywhere.
func (m *Manager) batchTopK(s *answer.Store, qs []answer.TopKQuery) ([]answer.TopKResult, error) {
	results, err := s.TopKBatch(qs)
	if err == nil {
		m.met.batchSweeps.Inc()
		m.met.batchVectors.Add(int64(len(qs)))
	}
	return results, err
}

// AnswerSkylineRequest is the body of POST /v1/answer/skyline: the
// skyline of the store's materialized tuples restricted to the given
// attribute subspace (empty = every attribute).
type AnswerSkylineRequest struct {
	Store string `json:"store"`
	Attrs []int  `json:"attrs,omitempty"`
}

// AnswerSkylineResponse is the subspace skyline.
type AnswerSkylineResponse struct {
	Store  string  `json:"store"`
	Attrs  []int   `json:"attrs,omitempty"`
	Tuples [][]int `json:"tuples"`
}

// AnswerSkyline answers a subspace-skyline request from the index.
func (m *Manager) AnswerSkyline(req AnswerSkylineRequest) (AnswerSkylineResponse, error) {
	s, err := m.AnswerStore(req.Store)
	if err != nil {
		return AnswerSkylineResponse{}, err
	}
	tuples, err := s.SubspaceSkyline(req.Attrs)
	if err != nil {
		return AnswerSkylineResponse{}, err
	}
	if tuples == nil {
		tuples = [][]int{}
	}
	return AnswerSkylineResponse{Store: req.Store, Attrs: req.Attrs, Tuples: tuples}, nil
}

// AnswerDominatesRequest is the body of POST /v1/answer/dominates: "is
// my candidate tuple dominated by anything already discovered?"
type AnswerDominatesRequest struct {
	Store string `json:"store"`
	Tuple []int  `json:"tuple"`
}

// AnswerDominatesResponse carries the verdict and, when dominated, one
// dominating witness tuple.
type AnswerDominatesResponse struct {
	Store     string `json:"store"`
	Dominated bool   `json:"dominated"`
	Witness   []int  `json:"witness,omitempty"`
}

// AnswerDominates answers a dominance test from the index.
func (m *Manager) AnswerDominates(req AnswerDominatesRequest) (AnswerDominatesResponse, error) {
	s, err := m.AnswerStore(req.Store)
	if err != nil {
		return AnswerDominatesResponse{}, err
	}
	dominated, witness, err := s.Dominates(req.Tuple)
	if err != nil {
		return AnswerDominatesResponse{}, err
	}
	return AnswerDominatesResponse{Store: req.Store, Dominated: dominated, Witness: witness}, nil
}

// AnswersResponse is the body of GET /v1/answer.
type AnswersResponse struct {
	Answers map[string]AnswerStatus `json:"answers"`
}

// answerNames lists stores with a loaded answer index, sorted.
func (m *Manager) answerNames() []string {
	names := []string{}
	for n, st := range m.Answers() {
		if st.Loaded {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
