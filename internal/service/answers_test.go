package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"hiddensky/internal/answer"
	"hiddensky/internal/core"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

// answerDataset builds a small RQ-capable dataset with distinct value
// combinations (the skyband identity's general positioning).
func answerDataset(seed int64, n int) datagen.Dataset {
	d := datagen.AntiCorrelated(seed, n, 3, 80).WithCaps(hidden.RQ)
	seen := map[string]bool{}
	var rows [][]int
	for _, t := range d.Data {
		k := fmt.Sprint(t)
		if !seen[k] {
			seen[k] = true
			rows = append(rows, t)
		}
	}
	d.Data = rows
	return d
}

func newAnswerManager(t *testing.T, cfg Config, seed int64, n int) (*Manager, datagen.Dataset) {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := answerDataset(seed, n)
	db, err := hidden.New(d.Config(10, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("shop", db); err != nil {
		t.Fatal(err)
	}
	return m, d
}

// bruteScores returns the k best weighted-sum scores over all data.
func bruteScores(data [][]int, w []float64, k int) []float64 {
	scores := make([]float64, len(data))
	for i, tu := range data {
		for a, wa := range w {
			scores[i] += wa * float64(tu[a])
		}
	}
	sort.Float64s(scores)
	if k > len(scores) {
		k = len(scores)
	}
	return scores[:k]
}

// The flagship acceptance path: a band job completes, the answer index
// hot-swaps in, and /v1/answer/topk exactly matches brute-force top-k
// over the original dataset for arbitrary weight vectors.
func TestAnswerTopKMatchesBruteForceOverHTTP(t *testing.T) {
	m, d := newAnswerManager(t, Config{}, 31, 400)
	defer m.Close(context.Background())

	if _, err := m.AnswerStore("shop"); err == nil || !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("before any job: want ErrNoAnswer, got %v", err)
	}

	const bandK = 5
	st, err := m.Submit(JobSpec{Store: "shop", Band: bandK})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID, 30*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("band job ended %s complete=%v err=%q", final.State, final.Complete, final.Error)
	}

	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range [][]float64{
		{1, 1, 1},
		{3.5, 0.25, 1.75},
		{0, 2, 0.01},
		{10, 0, 0},
	} {
		for _, k := range []int{1, 3, bandK} {
			resp, err := c.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: w, K: k})
			if err != nil {
				t.Fatal(err)
			}
			if !resp.Exact || resp.BandK != bandK {
				t.Fatalf("w=%v k=%d: exact=%v bandK=%d", w, k, resp.Exact, resp.BandK)
			}
			want := bruteScores(d.Data, w, k)
			if len(resp.Scores) != len(want) {
				t.Fatalf("w=%v k=%d: %d answers, want %d", w, k, len(resp.Scores), len(want))
			}
			for i := range want {
				if math.Abs(resp.Scores[i]-want[i]) > 1e-9 {
					t.Fatalf("w=%v k=%d rank %d: answer %v, brute force %v",
						w, k, i, resp.Scores[i], want[i])
				}
			}
		}
	}

	// k beyond the band level is served best-effort, marked inexact.
	resp, err := c.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: []float64{1, 1, 1}, K: bandK + 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Exact {
		t.Fatal("k > bandK must not claim exactness")
	}

	// Subspace skyline and dominance over the same index.
	sky, err := c.AnswerSkyline(AnswerSkylineRequest{Store: "shop", Attrs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sky.Tuples) == 0 {
		t.Fatal("empty subspace skyline")
	}
	dom, err := c.AnswerDominates(AnswerDominatesRequest{Store: "shop", Tuple: []int{1000, 1000, 1000}})
	if err != nil || !dom.Dominated || !skyline.Dominates(dom.Witness, []int{1000, 1000, 1000}) {
		t.Fatalf("far-off tuple should be dominated: %+v err=%v", dom, err)
	}

	// Listings and health reflect the loaded index.
	answers, err := c.Answers()
	if err != nil {
		t.Fatal(err)
	}
	if st := answers["shop"]; !st.Loaded || st.Info == nil || st.Info.BandK != bandK || st.Job != final.ID {
		t.Fatalf("answer listing: %+v", answers["shop"])
	}
	h, err := c.Health()
	if err != nil || len(h.Answers) != 1 || h.Answers[0] != "shop" {
		t.Fatalf("health answers: %+v err=%v", h.Answers, err)
	}
}

// Answer HTTP error mapping: unknown store 404, no index yet 409, bad
// queries 400.
func TestAnswerHTTPErrors(t *testing.T) {
	m, _ := newAnswerManager(t, Config{}, 32, 60)
	defer m.Close(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.AnswerTopK(AnswerTopKRequest{Store: "nope", Weights: []float64{1, 1, 1}, K: 1}); err == nil {
		t.Fatal("unknown store accepted")
	}
	if _, err := c.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: []float64{1, 1, 1}, K: 1}); err == nil {
		t.Fatal("no index yet: should answer 409")
	}

	st, err := m.Submit(JobSpec{Store: "shop"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID, 30*time.Second)
	if _, err := c.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: []float64{-1, 1, 1}, K: 1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := c.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: []float64{1, 1, 1}, K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	// A plain skyline job serves exact top-1 answers.
	resp, err := c.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: []float64{1, 2, 3}, K: 1})
	if err != nil || !resp.Exact || resp.BandK != 1 {
		t.Fatalf("top-1 after skyline job: %+v err=%v", resp, err)
	}
}

// Band job validation.
func TestBandSpecValidation(t *testing.T) {
	m, _ := newAnswerManager(t, Config{}, 33, 40)
	defer m.Close(context.Background())
	for _, spec := range []JobSpec{
		{Store: "shop", Band: -1},
		{Store: "shop", Band: 2, Resumable: true},
		{Stores: []string{"shop"}, Band: 2},
		{Store: "shop", Band: 2, Algo: "mq"},
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

// A daemon restart rebuilds the answer index from the snapshot store:
// the new process serves identical answers without one upstream query.
func TestAnswerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1, d := newAnswerManager(t, Config{SnapshotDir: dir}, 34, 300)
	st, err := m1.Submit(JobSpec{Store: "shop", Band: 3})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m1, st.ID, 30*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("band job ended %s (%s)", final.State, final.Error)
	}
	w := []float64{2, 1, 0.5}
	before, err := m1.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: w, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// New process, same snapshots; the store backend would fail loudly if
	// queried, proving answers come from the snapshot alone.
	m2, err := NewManager(Config{SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db, err := hidden.New(d.Config(10, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.AddStore("shop", poisonDB{db}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	after, err := m2.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: w, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Exact || len(after.Scores) != len(before.Scores) {
		t.Fatalf("restart answer: %+v", after)
	}
	for i := range before.Scores {
		if before.Scores[i] != after.Scores[i] {
			t.Fatalf("rank %d: %v before restart, %v after", i, before.Scores[i], after.Scores[i])
		}
	}
	want := bruteScores(d.Data, w, 3)
	for i := range want {
		if math.Abs(after.Scores[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d after restart: %v, want %v", i, after.Scores[i], want[i])
		}
	}
}

// Hot-swap under fire: concurrent answer queries while fresh discovery
// jobs replace the index (run with -race).
func TestAnswerHotSwapUnderConcurrentQueries(t *testing.T) {
	m, _ := newAnswerManager(t, Config{}, 35, 200)
	defer m.Close(context.Background())
	st, err := m.Submit(JobSpec{Store: "shop", Band: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID, 30*time.Second)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := []float64{1, 2, 3}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := m.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: w, K: 2})
				if err != nil || len(resp.Tuples) == 0 {
					t.Errorf("answer during swap: %d tuples, err %v", len(resp.Tuples), err)
					return
				}
				if _, err := m.AnswerDominates(AnswerDominatesRequest{Store: "shop", Tuple: []int{500, 500, 500}}); err != nil {
					t.Errorf("dominates during swap: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		st, err := m.Submit(JobSpec{Store: "shop", Band: 2 + i%2})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, st.ID, 30*time.Second)
	}
	close(stop)
	wg.Wait()
}

// poisonDB fails every query: restart tests use it to prove answers
// are served from snapshots, never the upstream store.
type poisonDB struct{ core.Interface }

func (p poisonDB) Query(q query.Q) (hidden.Result, error) {
	return hidden.Result{}, fmt.Errorf("poisonDB: upstream query issued on the answer read path")
}

// With concurrent jobs against one store, a slow older job finishing
// after a newer one must not overwrite the newer index (highest job id
// wins, matching Recover's rebuild policy).
func TestAnswerPublishOrdering(t *testing.T) {
	older, err := answer.Build([][]int{{1, 1, 1}}, answer.Options{BandK: 1})
	if err != nil {
		t.Fatal(err)
	}
	newer, err := answer.Build([][]int{{2, 2, 2}}, answer.Options{BandK: 10})
	if err != nil {
		t.Fatal(err)
	}
	var e answerEntry
	if !e.publish(newer, "j000002") {
		t.Fatal("first publish refused")
	}
	if e.publish(older, "j000001") {
		t.Fatal("older job overwrote a newer index")
	}
	if got := e.handle.Load(); got.BandK() != 10 {
		t.Fatalf("serving bandK %d, want the newer index's 10", got.BandK())
	}
	if id, _ := e.job.Load().(string); id != "j000002" {
		t.Fatalf("attribution %q, want j000002", id)
	}
	// A re-run with the same id (Recover republish) still goes through.
	if !e.publish(newer, "j000002") {
		t.Fatal("same-id republish refused")
	}
}
