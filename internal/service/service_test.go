package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/datagen"
	"hiddensky/internal/federate"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// testDataset builds a small SQ-capable dataset (sessions need
// one-ended ranges). Anti-correlated data keeps the skyline — and the
// discovery cost — large enough to interrupt mid-run.
func testDataset(seed int64, n int) datagen.Dataset {
	return datagen.AntiCorrelated(seed, n, 3, 60).WithCaps(hidden.SQ)
}

// instrumentedDB wraps a store interface with a query-concurrency gauge
// and an optional per-query delay/notification, so tests can observe
// the manager's scheduling from the store's point of view.
type instrumentedDB struct {
	core.Interface
	delay   time.Duration
	cur     atomic.Int64
	max     atomic.Int64
	served  atomic.Int64
	reached chan struct{} // closed once notifyAt queries served
	notify  int64
	once    sync.Once
}

func (d *instrumentedDB) Query(q query.Q) (hidden.Result, error) {
	c := d.cur.Add(1)
	for {
		m := d.max.Load()
		if c <= m || d.max.CompareAndSwap(m, c) {
			break
		}
	}
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	res, err := d.Interface.Query(q)
	if err == nil {
		if n := d.served.Add(1); d.reached != nil && n >= d.notify {
			d.once.Do(func() { close(d.reached) })
		}
	}
	d.cur.Add(-1)
	return res, err
}

func waitTerminal(t *testing.T, m *Manager, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sortedTuples(ts [][]int) []string {
	out := make([]string, len(ts))
	for i, tup := range ts {
		out[i] = fmt.Sprint(tup)
	}
	sort.Strings(out)
	return out
}

func sameTuples(t *testing.T, got, want [][]int) {
	t.Helper()
	g, w := sortedTuples(got), sortedTuples(want)
	if len(g) != len(w) {
		t.Fatalf("got %d tuples, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("tuple sets differ at %d: %s vs %s", i, g[i], w[i])
		}
	}
}

// TestConcurrencyGate: N submitted jobs with max-concurrency M never
// run more than M discoveries at once, and all N complete. Each job
// runs sequentially (Parallelism 1), so the store's query-concurrency
// high-water mark equals the number of simultaneously running jobs.
func TestConcurrencyGate(t *testing.T) {
	const (
		jobs          = 8
		maxConcurrent = 2
	)
	d := testDataset(1, 150)
	store := &instrumentedDB{Interface: d.DB(5, hidden.SumRank{}), delay: 200 * time.Microsecond}
	m, err := NewManager(Config{MaxConcurrent: maxConcurrent})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, jobs)
	for i := range ids {
		st, err := m.Submit(JobSpec{Store: "s", Algo: "sq"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	want, err := core.SQDBSky(d.DB(5, hidden.SumRank{}), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st := waitTerminal(t, m, id, 60*time.Second)
		if st.State != StateDone || !st.Complete {
			t.Fatalf("job %s: state=%s complete=%v error=%q", id, st.State, st.Complete, st.Error)
		}
		sameTuples(t, st.Tuples, want.Skyline)
		if st.Queries != want.Queries {
			t.Fatalf("job %s counted %d queries, sequential run %d", id, st.Queries, want.Queries)
		}
	}
	if hw := store.max.Load(); hw > maxConcurrent {
		t.Fatalf("observed %d concurrent discoveries, gate allows %d", hw, maxConcurrent)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestKillRestartResumesExactly is the daemon's crash story end to end:
// a resumable job is interrupted mid-run (budget partially spent) by
// shutting the manager down, a second manager is built over the same
// snapshot directory, and the resumed job finishes with the same
// skyline set and a total query count equal to the sequential
// baseline's — no query repeated or lost across the kill.
func TestKillRestartResumesExactly(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(2, 400)
	mkdb := func() core.Interface { return d.DB(3, hidden.SumRank{}) }
	baseline, err := core.SQDBSky(mkdb(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Queries < 40 {
		t.Fatalf("dataset too easy to interrupt: baseline cost %d", baseline.Queries)
	}

	store := &instrumentedDB{
		Interface: mkdb(),
		delay:     2 * time.Millisecond,
		reached:   make(chan struct{}),
		notify:    10,
	}
	m1, err := NewManager(Config{MaxConcurrent: 1, SnapshotDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(JobSpec{Store: "s", Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-store.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("job never spent its first queries")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil { // the "kill": cancels the job mid-budget
		t.Fatal(err)
	}
	mid, ok := m1.Get(st.ID)
	if !ok || mid.State.Terminal() {
		t.Fatalf("interrupted job should be parked, got %+v", mid)
	}
	if mid.Queries <= 0 || mid.Queries >= baseline.Queries {
		t.Fatalf("kill did not land mid-budget: %d of %d queries spent", mid.Queries, baseline.Queries)
	}

	// "Restart": a fresh manager over the same snapshot directory and a
	// fresh, fast store interface.
	m2, err := NewManager(Config{MaxConcurrent: 1, SnapshotDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.AddStore("s", mkdb()); err != nil {
		t.Fatal(err)
	}
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("recovered %d jobs, want 1", resumed)
	}
	final := waitTerminal(t, m2, st.ID, 60*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("resumed job: state=%s complete=%v error=%q", final.State, final.Complete, final.Error)
	}
	if final.Restarts != 1 {
		t.Fatalf("job records %d restarts, want 1", final.Restarts)
	}
	sameTuples(t, final.Tuples, baseline.Skyline)
	if final.Queries != baseline.Queries {
		t.Fatalf("resumed job counted %d queries, sequential baseline %d (exact accounting across the kill)",
			final.Queries, baseline.Queries)
	}
	if err := m2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRunningJob: cancelling a running job stops it promptly with
// its partial skyline.
func TestCancelRunningJob(t *testing.T) {
	d := testDataset(3, 400)
	store := &instrumentedDB{
		Interface: d.DB(3, hidden.SumRank{}),
		delay:     2 * time.Millisecond,
		reached:   make(chan struct{}),
		notify:    5,
	}
	m, err := NewManager(Config{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Store: "s", Algo: "sq"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-store.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started querying")
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID, 30*time.Second)
	if final.State != StateCancelled || final.Complete {
		t.Fatalf("cancelled job: state=%s complete=%v", final.State, final.Complete)
	}
	served := store.served.Load()
	time.Sleep(50 * time.Millisecond)
	if after := store.served.Load(); after > served+2 {
		t.Fatalf("job kept querying after cancellation: %d -> %d", served, after)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCancelQueuedJob: a queued job cancels immediately without running.
func TestCancelQueuedJob(t *testing.T) {
	d := testDataset(4, 300)
	store := &instrumentedDB{
		Interface: d.DB(3, hidden.SumRank{}),
		delay:     time.Millisecond,
		reached:   make(chan struct{}),
		notify:    1,
	}
	m, err := NewManager(Config{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	first, err := m.Submit(JobSpec{Store: "s", Algo: "sq"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(JobSpec{Store: "s", Algo: "sq"})
	if err != nil {
		t.Fatal(err)
	}
	<-store.reached
	st, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job state after cancel: %s", st.State)
	}
	if _, err := m.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, first.ID, 30*time.Second)
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBudgetedJobEndsIncomplete: a budget-bounded job finishes as
// done-but-incomplete with the anytime partial skyline.
func TestBudgetedJobEndsIncomplete(t *testing.T) {
	d := testDataset(5, 400)
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", d.DB(3, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Store: "s", Algo: "sq", Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID, 30*time.Second)
	if final.State != StateDone || final.Complete {
		t.Fatalf("budgeted job: state=%s complete=%v", final.State, final.Complete)
	}
	if final.Queries != 12 || final.BudgetRemaining != 0 {
		t.Fatalf("budgeted job spent %d queries (remaining %d), want exactly 12 (0 left)",
			final.Queries, final.BudgetRemaining)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFleetJob: a multi-store job merges the per-store skylines into
// the same global frontier the federate layer computes directly.
func TestFleetJob(t *testing.T) {
	da := testDataset(6, 250)
	db := testDataset(7, 250)
	mk := func(d datagen.Dataset) core.Interface { return d.DB(4, hidden.SumRank{}) }
	want, err := federate.Discover([]federate.Store{
		{Name: "a", DB: mk(da)}, {Name: "b", DB: mk(db)},
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantTuples [][]int
	for _, o := range want.Frontier {
		wantTuples = append(wantTuples, o.Tuple)
	}

	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("a", mk(da)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("b", mk(db)); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Stores: []string{"a", "b"}, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID, 60*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("fleet job: state=%s complete=%v error=%q", final.State, final.Complete, final.Error)
	}
	sameTuples(t, final.Tuples, wantTuples)
	if final.Queries != want.Queries {
		t.Fatalf("fleet job counted %d queries, federate baseline %d", final.Queries, want.Queries)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitValidation: malformed specs are rejected up front.
func TestSubmitValidation(t *testing.T) {
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", testDataset(8, 50).DB(3, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []JobSpec{
		{},                                        // no store
		{Store: "nope"},                           // unknown store
		{Store: "s", Stores: []string{"s"}},       // both forms
		{Stores: []string{"s"}, Resumable: true},  // resumable fleet
		{Store: "s", Algo: "quantum"},             // unknown algorithm
		{Store: "s", Algo: "pq", Resumable: true}, // only the SQ walk checkpoints
		{Store: "s", Budget: -1},                  // negative budget
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCloseParksFreshlySubmittedJob: shutting down immediately after a
// submit must not let the job's just-spawned goroutine escape the park
// — Close returns promptly and the job stays queued (resumable by the
// next process), never running with an un-cancelled context.
func TestCloseParksFreshlySubmittedJob(t *testing.T) {
	d := testDataset(13, 400)
	store := &instrumentedDB{Interface: d.DB(3, hidden.SumRank{}), delay: time.Millisecond}
	m, err := NewManager(Config{MaxConcurrent: 1, SnapshotDir: t.TempDir(), CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Store: "s", Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("Close took %v; a job escaped the park", time.Since(start))
	}
	got, ok := m.Get(st.ID)
	if !ok || got.State.Terminal() {
		t.Fatalf("freshly submitted job ended %+v instead of parking", got)
	}
}

// TestSharedCacheAcrossJobs: two cached jobs against the same store
// share one keyspace — the second job's queries are answered from the
// warm cache instead of re-hitting the backend.
func TestSharedCacheAcrossJobs(t *testing.T) {
	d := testDataset(14, 200)
	store := &instrumentedDB{Interface: d.DB(4, hidden.SumRank{})}
	m, err := NewManager(Config{MaxConcurrent: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	run := func() JobStatus {
		st, err := m.Submit(JobSpec{Store: "s", Algo: "sq", UseCache: true})
		if err != nil {
			t.Fatal(err)
		}
		return waitTerminal(t, m, st.ID, 60*time.Second)
	}
	first := run()
	upstreamAfterFirst := store.served.Load()
	second := run()
	if first.State != StateDone || second.State != StateDone {
		t.Fatalf("jobs ended %s / %s", first.State, second.State)
	}
	sameTuples(t, second.Tuples, first.Tuples)
	if second.Queries != first.Queries {
		t.Fatalf("cached job counted %d queries, first %d (cache hits still count)", second.Queries, first.Queries)
	}
	if grew := store.served.Load() - upstreamAfterFirst; grew != 0 {
		t.Fatalf("second job sent %d queries upstream; the warm shared cache should answer all of them", grew)
	}
	if s := m.CacheStats(); s.Hits == 0 {
		t.Fatalf("shared cache recorded no hits: %+v", s)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// quotaDB rejects queries beyond a replenishable grant with the
// simulator's rate-limit error, emulating a per-day upstream quota.
type quotaDB struct {
	core.Interface
	grant    atomic.Int64
	served   atomic.Int64
	rejected atomic.Int64
}

func (d *quotaDB) Query(q query.Q) (hidden.Result, error) {
	if d.served.Load() >= d.grant.Load() {
		d.rejected.Add(1)
		return hidden.Result{}, fmt.Errorf("%w: daily quota", hidden.ErrRateLimited)
	}
	res, err := d.Interface.Query(q)
	if err == nil {
		d.served.Add(1)
	}
	return res, err
}

// TestRateLimitedResumableJobParksAndRetries: an upstream rate limit
// must not orphan a resumable job's checkpoint — the job parks, retries
// after RetryDelay, and once the quota replenishes it finishes with
// exact cumulative accounting.
func TestRateLimitedResumableJobParksAndRetries(t *testing.T) {
	d := testDataset(15, 300)
	mkdb := func() core.Interface { return d.DB(3, hidden.SumRank{}) }
	baseline, err := core.SQDBSky(mkdb(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Queries <= 30 {
		t.Fatalf("dataset too easy: baseline cost %d", baseline.Queries)
	}
	store := &quotaDB{Interface: mkdb()}
	store.grant.Store(25)
	m, err := NewManager(Config{
		MaxConcurrent: 1, SnapshotDir: t.TempDir(),
		CheckpointEvery: 1, RetryDelay: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Store: "s", Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for { // wait until the quota parks the job
		got, _ := m.Get(st.ID)
		if got.State.Terminal() {
			t.Fatalf("job went terminal (%s, %q) instead of parking on the quota", got.State, got.Error)
		}
		if got.State == StateQueued && got.Queries > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never parked; status %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	store.grant.Store(1 << 30) // the quota replenishes
	final := waitTerminal(t, m, st.ID, 60*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("retried job: state=%s complete=%v error=%q", final.State, final.Complete, final.Error)
	}
	sameTuples(t, final.Tuples, baseline.Skyline)
	if final.Queries != baseline.Queries {
		t.Fatalf("retried job counted %d queries, baseline %d", final.Queries, baseline.Queries)
	}
	if store.rejected.Load() == 0 {
		t.Fatal("the quota never rejected a query; the retry path was not exercised")
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
