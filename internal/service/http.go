package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"hiddensky/internal/jsonbuf"
	"hiddensky/internal/obs"
)

// HTTP API (versioned under /v1), served by cmd/skylined:
//
//	GET    /v1/health            -> {stores, jobs, running, queued}
//	GET    /v1/stats             -> StatsDetail: health + every metric
//	                                series as JSON + cache counters
//	                                with per-shard detail
//	GET    /v1/history           -> obs.HistorySnapshot: the retained
//	                                time-series rings (?last=N bounds
//	                                trailing samples per series)
//	GET    /healthz              -> obs.HealthReport, always 200
//	                                (liveness + full rollup detail)
//	GET    /readyz               -> obs.HealthReport; 503 while the
//	                                daemon is recovering or draining,
//	                                200 once it should receive traffic
//	GET    /metrics              -> the same registry in Prometheus
//	                                text exposition format
//	POST   /v1/jobs  {JobSpec}   -> JobStatus (201); 400 + the error
//	                                envelope when the spec is malformed
//	                                or the planner rejects the algo /
//	                                band / where / resumable combination
//	                                for the target store's interface
//	GET    /v1/jobs              -> {jobs: [JobStatus]}
//	GET    /v1/jobs/{id}         -> JobStatus
//	DELETE /v1/jobs/{id}         -> JobStatus (cancels the job)
//	GET    /v1/jobs/{id}/result  -> {tuples: [[...]]} (terminal jobs)
//	GET    /v1/jobs/{id}/trace   -> TraceResponse: the job's span tree
//	                                (?format=chrome renders Chrome
//	                                trace events for Perfetto)
//	GET    /v1/jobs/{id}/events  -> SSE stream of JobStatus updates:
//	                                "progress" events while the job
//	                                runs, one final "done" event.
//
// The answer read path (served from the per-store materialized answer
// index, no upstream queries; 409 until a discovery job has completed
// for the store):
//
//	GET  /v1/answer                     -> {answers: {store: {loaded, info, job}}}
//	POST /v1/answer/topk      {AnswerTopKRequest}      -> AnswerTopKResponse
//	POST /v1/answer/topk_batch {AnswerTopKBatchRequest} -> AnswerTopKBatchResponse
//	                                (many weight vectors against one
//	                                store, scored in fused column
//	                                sweeps; results in request order)
//	POST /v1/answer/skyline   {AnswerSkylineRequest}   -> AnswerSkylineResponse
//	POST /v1/answer/dominates {AnswerDominatesRequest} -> AnswerDominatesResponse

// JobsResponse is the body of GET /v1/jobs.
type JobsResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// ResultResponse is the body of GET /v1/jobs/{id}/result.
type ResultResponse struct {
	Tuples [][]int `json:"tuples"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler serves a Manager over HTTP.
type Handler struct {
	m   *Manager
	mux *http.ServeMux
}

// NewHandler wraps the manager in the /v1 job API.
func NewHandler(m *Manager) *Handler {
	h := &Handler{m: m, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /v1/health", h.handleHealth)
	h.mux.HandleFunc("GET /v1/stats", h.handleStats)
	h.mux.HandleFunc("GET /v1/history", h.handleHistory)
	h.mux.Handle("GET /healthz", obs.HealthzHandler(m.HealthRollup()))
	h.mux.Handle("GET /readyz", obs.ReadyzHandler(m.HealthRollup()))
	h.mux.Handle("GET /metrics", obs.MetricsHandler(m.Registry()))
	h.mux.HandleFunc("POST /v1/jobs", h.handleSubmit)
	h.mux.HandleFunc("GET /v1/jobs", h.handleList)
	h.mux.HandleFunc("GET /v1/jobs/{id}", h.handleGet)
	h.mux.HandleFunc("DELETE /v1/jobs/{id}", h.handleCancel)
	h.mux.HandleFunc("GET /v1/jobs/{id}/result", h.handleResult)
	h.mux.HandleFunc("GET /v1/jobs/{id}/trace", h.handleTrace)
	h.mux.HandleFunc("GET /v1/jobs/{id}/events", h.handleEvents)
	h.mux.HandleFunc("GET /v1/answer", h.handleAnswers)
	h.mux.HandleFunc("POST /v1/answer/topk", answerEndpoint(h.m.AnswerTopK))
	h.mux.HandleFunc("POST /v1/answer/topk_batch", answerEndpoint(h.m.AnswerTopKBatch))
	h.mux.HandleFunc("POST /v1/answer/skyline", answerEndpoint(h.m.AnswerSkyline))
	h.mux.HandleFunc("POST /v1/answer/dominates", answerEndpoint(h.m.AnswerDominates))
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.m.Stats())
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.m.StatsFull())
}

// handleHistory serves the retained time-series rings. ?last=N bounds
// the trailing samples per series.
func (h *Handler) handleHistory(w http.ResponseWriter, r *http.Request) {
	last := 0
	if v := r.URL.Query().Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("service: bad last=%q (want a non-negative integer)", v)})
			return
		}
		last = n
	}
	writeJSON(w, http.StatusOK, h.m.History(last))
}

func (h *Handler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed job spec: " + err.Error()})
		return
	}
	st, err := h.m.Submit(spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (h *Handler) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := h.m.List()
	if jobs == nil {
		jobs = []JobStatus{}
	}
	writeJSON(w, http.StatusOK, JobsResponse{Jobs: jobs})
}

func (h *Handler) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := h.m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *Handler) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := h.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *Handler) handleResult(w http.ResponseWriter, r *http.Request) {
	tuples, err := h.m.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrNotFinished):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if tuples == nil {
		tuples = [][]int{}
	}
	writeJSON(w, http.StatusOK, ResultResponse{Tuples: tuples})
}

// handleTrace serves a job's span tree: structured JSON by default,
// Chrome trace-event format with ?format=chrome (pipe it into a file
// and open it in Perfetto).
func (h *Handler) handleTrace(w http.ResponseWriter, r *http.Request) {
	t, err := h.m.Trace(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = obs.WriteChromeTrace(w, t.Spans)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

// handleEvents streams job status updates as server-sent events until
// the job is terminal or the client disconnects.
func (h *Handler) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, stop, err := h.m.Watch(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	defer stop()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	send := func(event string, st JobStatus) bool {
		data, err := json.Marshal(st)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case st, open := <-ch:
			if !open {
				// Terminal updates can outrun a full buffer; the final
				// status is always available from the manager. A closed
				// channel can also mean the job was parked by a manager
				// shutdown — that is not "done", so label honestly.
				if final, found := h.m.Get(id); found {
					event := "progress"
					if final.State.Terminal() {
						event = "done"
					}
					send(event, final)
				}
				return
			}
			event := "progress"
			if st.State.Terminal() {
				event = "done"
			}
			if !send(event, st) || event == "done" {
				return
			}
		}
	}
}

func (h *Handler) handleAnswers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, AnswersResponse{Answers: h.m.Answers()})
}

// answerEndpoint adapts one manager answer method into an HTTP handler:
// decode the request, map errors (unknown store 404, index not built
// yet 409, bad query 400), encode the answer.
func answerEndpoint[Req, Resp any](fn func(Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
			return
		}
		resp, err := fn(req)
		switch {
		case errors.Is(err, ErrUnknownStore):
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		case errors.Is(err, ErrNoAnswer):
			writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		case err != nil:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusOK, resp)
		}
	}
}

// writeJSON answers v through the shared pooled encoder — the answer
// read path (/v1/answer/topk) is served at memory speed, so encoding
// garbage is its dominant per-request cost.
func writeJSON(w http.ResponseWriter, status int, v any) {
	jsonbuf.Write(w, status, v)
}
