package service

import (
	"fmt"
	"io"

	"hiddensky/internal/obs"
)

// TraceResponse is the body of GET /v1/jobs/{id}/trace: the job's span
// tree as structured JSON, plus enough bookkeeping to judge it.
type TraceResponse struct {
	JobID   string   `json:"job_id"`
	TraceID string   `json:"trace_id"`
	State   JobState `json:"state"`
	Phase   string   `json:"phase,omitempty"`
	// Spans is the span tree, sorted by start time. Parent ids refer to
	// other spans' ids within the same trace (0: a root).
	Spans []obs.SpanRecord `json:"spans"`
	// Recorded counts every span the job ever recorded; when it exceeds
	// len(Spans), the ring buffer wrapped and the oldest spans are gone.
	Recorded  int64 `json:"spans_recorded"`
	Truncated bool  `json:"truncated,omitempty"`
}

// Trace returns a job's span tree. A job that has not started yet (or
// predates the manager's restart — spans are in-memory only) answers
// with an empty span list, not an error.
func (m *Manager) Trace(id string) (TraceResponse, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return TraceResponse{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	st := j.status.clone()
	tr := j.tracer
	j.mu.Unlock()
	out := TraceResponse{
		JobID:   st.ID,
		TraceID: st.TraceID,
		State:   st.State,
		Phase:   st.Phase,
		Spans:   []obs.SpanRecord{},
	}
	if tr != nil {
		out.Spans = m.spans.Collect(st.TraceID)
		out.Recorded = tr.Recorded()
		out.Truncated = out.Recorded > int64(len(out.Spans))
	}
	return out, nil
}

// WriteChromeTrace renders a job's span tree in Chrome trace-event
// format (open it in Perfetto or chrome://tracing).
func (m *Manager) WriteChromeTrace(w io.Writer, id string) error {
	t, err := m.Trace(id)
	if err != nil {
		return err
	}
	return obs.WriteChromeTrace(w, t.Spans)
}
