package service

import (
	"log/slog"
	"strconv"
	"time"

	"hiddensky/internal/answer"
	"hiddensky/internal/core"
	"hiddensky/internal/engine"
	"hiddensky/internal/obs"
	"hiddensky/internal/qcache"
	"hiddensky/internal/web"
)

// The manager's observability surface: one obs.Registry per Manager
// (explicit, so a test process can host many managers without series
// collisions), carrying every layer's telemetry — upstream clients,
// the shared query cache, the execution substrate, the answer indexes
// and the job lifecycle. NewHandler exposes it as Prometheus text on
// GET /metrics and as JSON on GET /v1/stats.

// managerMetrics holds the manager-owned series. Per-store upstream
// client series are registered by AddStore; cache series are
// scrape-time funcs over qcache's own exact atomics.
type managerMetrics struct {
	jobsSubmitted *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsCancelled *obs.Counter
	jobsRetried   *obs.Counter
	jobSeconds    *obs.Histogram
	jobQueries    *obs.Counter

	jobsParkedCircuit *obs.Counter
	circuitOpens      *obs.Counter

	indexSwaps   *obs.Counter
	indexBuild   *obs.Histogram
	answerShared *answer.Metrics

	batchSweeps   *obs.Counter
	batchVectors  *obs.Counter
	recoverBinary *obs.Counter
	recoverJSON   *obs.Counter

	pool       *engine.PoolMetrics
	budgetUsed *obs.Gauge
}

func newManagerMetrics(r *obs.Registry) *managerMetrics {
	return &managerMetrics{
		jobsSubmitted: r.Counter("jobs_submitted_total", "discovery jobs accepted by Submit"),
		jobsDone:      r.Counter("jobs_done_total", "jobs finished in state done (complete or anytime-partial)"),
		jobsFailed:    r.Counter("jobs_failed_total", "jobs finished in state failed"),
		jobsCancelled: r.Counter("jobs_cancelled_total", "jobs finished in state cancelled"),
		jobsRetried:   r.Counter("jobs_retried_total", "resumable jobs parked and requeued after an upstream rate limit"),
		jobSeconds:    r.Histogram("job_seconds", "wall-clock duration of terminal jobs (start to finish)"),
		jobQueries:    r.Counter("job_queries_total", "counted queries of terminal jobs (cache hits included)"),

		jobsParkedCircuit: r.Counter("jobs_parked_circuit_total", "job runs parked without querying because the store circuit was open"),
		circuitOpens:      r.Counter("circuit_opens_total", "store circuits opened after consecutive upstream failures"),

		indexSwaps: r.Counter("answer_index_swaps_total", "answer index hot-swaps published"),
		indexBuild: r.Histogram("answer_index_build_seconds", "answer.Build duration per published index"),
		answerShared: &answer.Metrics{
			TopKSeconds:      r.Histogram("answer_topk_seconds", "answer index top-k latency"),
			SkylineSeconds:   r.Histogram("answer_skyline_seconds", "answer index subspace-skyline latency"),
			DominatesSeconds: r.Histogram("answer_dominates_seconds", "answer index dominance-test latency"),
			BatchSeconds:     r.Histogram("answer_batch_seconds", "answer index batch top-k latency (whole batch, one observation per sweep)"),
			BatchSize:        r.Histogram("answer_batch_size", "weight vectors per batch top-k sweep (dimensionless; 1ns == 1 vector)"),
		},

		batchSweeps:   r.Counter("answer_batch_sweeps_total", "fused column sweeps issued by the batch top-k path (explicit batches and coalesced windows)"),
		batchVectors:  r.Counter("answer_batch_vectors_total", "weight vectors answered through the batch top-k path"),
		recoverBinary: r.Counter(`answer_recover_source_total{source="binary"}`, "answer indexes recovered from binary columnar snapshots"),
		recoverJSON:   r.Counter(`answer_recover_source_total{source="json"}`, "answer indexes recovered by re-indexing JSON job snapshots"),

		pool: &engine.PoolMetrics{
			Tasks:       r.Counter("engine_pool_tasks_total", "worker-pool tasks executed"),
			Dropped:     r.Counter("engine_pool_dropped_total", "worker-pool tasks dropped after an error or cancellation"),
			Depth:       r.Gauge("engine_pool_depth", "worker-pool tasks queued or executing, across every live run"),
			TaskSeconds: r.Histogram("engine_pool_task_seconds", "worker-pool task execution latency"),
		},
		budgetUsed: r.Gauge("fleet_budget_used", "upstream queries consumed by running fleet jobs' shared budgets"),
	}
}

// registerManagerFuncs wires the scrape-time series that read live
// manager state: job scheduling gauges and (when the manager has a
// cache) the cache's exact counters plus per-shard occupancy. The
// funcs run at scrape time without holding the registry lock, so
// taking m.mu inside them is safe.
func (m *Manager) registerManagerFuncs() {
	m.reg.GaugeFunc("jobs_running", "jobs running discovery right now", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.running)
	})
	m.reg.GaugeFunc("jobs_queued", "jobs waiting for a concurrency slot", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.queue))
	})
	if m.cache == nil {
		return
	}
	counter := func(name, help string, read func(qcache.Stats) int) {
		m.reg.CounterFunc(name, help, func() float64 {
			return float64(read(m.cache.Stats()))
		})
	}
	counter("qcache_lookups_total", "queries served through the shared cache", func(s qcache.Stats) int { return s.Lookups })
	counter("qcache_hits_total", "cache lookups answered from the memo store", func(s qcache.Stats) int { return s.Hits })
	counter("qcache_coalesced_total", "cache lookups that shared an in-flight backend query", func(s qcache.Stats) int { return s.Coalesced })
	counter("qcache_misses_total", "cache lookups that paid a backend query", func(s qcache.Stats) int { return s.Misses })
	counter("qcache_evictions_total", "cache entries dropped by the LRU bound", func(s qcache.Stats) int { return s.Evictions })
	m.reg.GaugeFunc("qcache_entries", "memoized answers currently held", func() float64 {
		return float64(m.cache.Len())
	})
	for i := 0; i < m.cache.NumShards(); i++ {
		shard := i
		l := `{shard="` + strconv.Itoa(shard) + `"}`
		// ShardStat (singular) locks exactly one shard and allocates
		// nothing — these funcs run on every sampler tick, where a
		// ShardStats slice per shard per tick would break the sampling
		// path's zero-allocation contract.
		m.reg.GaugeFunc("qcache_shard_entries"+l, "memoized answers held by the shard", func() float64 {
			return float64(m.cache.ShardStat(shard).Entries)
		})
		m.reg.CounterFunc("qcache_shard_evictions_total"+l, "entries the shard dropped over its lifetime", func() float64 {
			return float64(m.cache.ShardStat(shard).Evictions)
		})
	}
}

// registerHealthChecks builds the manager's rollup: the readiness gate
// (closed until Recover when a snapshot store is configured) plus one
// windowed-rate check per failure signal. The rate closures read the
// sampler, never m.mu, so Evaluate can run from any handler.
func (m *Manager) registerHealthChecks() {
	m.health = obs.NewHealthRollup("recovering: snapshot jobs not yet replayed")
	h := m.cfg.Health
	m.health.AddCheck("job_failure_rate", threshold(h.MaxFailureRate, DefaultMaxFailureRate), func() float64 {
		return m.sampler.Rate("jobs_failed_total", time.Minute)
	})
	m.health.AddCheck("upstream_429_rate", threshold(h.MaxRateLimitedRate, DefaultMaxRateLimitedRate), func() float64 {
		return m.sampler.Rate("upstream_rate_limited_total", time.Minute)
	})
	if m.cache != nil {
		m.health.AddCheck("qcache_eviction_rate", threshold(h.MaxEvictionRate, DefaultMaxEvictionRate), func() float64 {
			return m.sampler.Rate("qcache_evictions_total", time.Minute)
		})
	}
	// An open store circuit degrades the daemon (it is parked away from
	// that upstream) without making it unready: the answer tier keeps
	// serving the last published index, so /readyz stays 200. This
	// check reads live breaker state, not the sampler; taking m.mu here
	// is as safe as in the scrape-time gauge funcs (Evaluate never runs
	// under it).
	m.health.AddCheck("upstream_circuit_open", 0.5, func() float64 {
		now := time.Now()
		m.mu.Lock()
		defer m.mu.Unlock()
		open := 0
		for _, b := range m.breakers {
			if b.stateAt(now) == circuitOpen {
				open++
			}
		}
		return float64(open)
	})
}

// Sampler exposes the time-series layer (handlers, tests).
func (m *Manager) Sampler() *obs.Sampler { return m.sampler }

// HealthRollup exposes the rollup (handlers, flag wiring).
func (m *Manager) HealthRollup() *obs.HealthRollup { return m.health }

// History snapshots the retained time-series rings — the body of
// GET /v1/history. last bounds trailing samples (<= 0: everything).
func (m *Manager) History(last int) obs.HistorySnapshot { return m.sampler.History(last) }

// HealthReport evaluates the rollup — the body of GET /healthz.
func (m *Manager) HealthReport() obs.HealthReport { return m.health.Evaluate() }

// Registry exposes the manager's metrics registry. cmd/skylined uses
// it to serve /metrics; tests scrape it directly.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// logger returns the configured structured logger (a no-op logger
// when none was configured).
func (m *Manager) logger() *slog.Logger { return m.log }

// StatsDetail is the body of GET /v1/stats: the health summary plus
// every metric series (JSON rendering of the same registry /metrics
// exposes) and the cache's exact counters with per-shard detail.
type StatsDetail struct {
	Health  Health         `json:"health"`
	Metrics []obs.Snapshot `json:"metrics"`
	// Cache carries the shared query cache's counters (absent without
	// a cache).
	Cache *CacheDetail `json:"cache,omitempty"`
}

// CacheDetail is the cache section of StatsDetail.
type CacheDetail struct {
	qcache.Stats
	// DedupRatio is the fraction of lookups answered without a
	// backend query.
	DedupRatio float64 `json:"dedup_ratio"`
	// Entries is the number of memoized answers currently held.
	Entries int `json:"entries"`
	// Shards is the per-shard occupancy/eviction breakdown.
	Shards []qcache.ShardStat `json:"shards"`
}

// StatsFull returns the /v1/stats snapshot.
func (m *Manager) StatsFull() StatsDetail {
	d := StatsDetail{Health: m.Stats(), Metrics: m.reg.Snapshots()}
	if m.cache != nil {
		s := m.cache.Stats()
		d.Cache = &CacheDetail{
			Stats:      s,
			DedupRatio: s.DedupRatio(),
			Entries:    m.cache.Len(),
			Shards:     m.cache.ShardStats(),
		}
	}
	return d
}

// instrumentStore attaches the per-store upstream metrics to remote
// stores. Called by AddStore before the client is shared with jobs
// (WithContext views inherit the bundle).
func (m *Manager) instrumentStore(name string, db core.Interface) {
	if wc, ok := db.(*web.Client); ok {
		wc.SetMetrics(web.NewClientMetrics(m.reg, name))
		wc.SetName(name) // traced query spans carry the store label
	}
}
