package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
)

// TestJobLifecycleObservability drives one job end to end and checks
// the whole observability contract in one pass: the trace id appears
// at submit and survives to the terminal status, the lifecycle
// counters and job histograms move, the answer-index swap is counted,
// and the structured log carries the id chain.
func TestJobLifecycleObservability(t *testing.T) {
	var logBuf bytes.Buffer
	d := testDataset(3, 120)
	m, err := NewManager(Config{
		MaxConcurrent: 1,
		CacheSize:     256,
		Logger:        obs.NewLogger(&logBuf, "testd"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", d.DB(5, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Store: "s", Algo: "sq", UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TraceID) != 16 {
		t.Fatalf("submit gave no 16-char trace id: %q", st.TraceID)
	}
	final := waitTerminal(t, m, st.ID, 10*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("job ended %s complete=%v", final.State, final.Complete)
	}
	if final.TraceID != st.TraceID {
		t.Fatalf("trace id changed mid-job: %q -> %q", st.TraceID, final.TraceID)
	}

	// Counters: one submit, one done, one index swap; the job histogram
	// observed one job; job queries mirror the status.
	load := func(name string) float64 {
		t.Helper()
		for _, s := range m.Registry().Snapshots() {
			if s.Name == name {
				return s.Value
			}
		}
		t.Fatalf("series %q not registered", name)
		return 0
	}
	for name, want := range map[string]float64{
		"jobs_submitted_total":     1,
		"jobs_done_total":          1,
		"jobs_failed_total":        0,
		"answer_index_swaps_total": 1,
		"job_seconds":              1, // histogram count
		"job_queries_total":        float64(final.Queries),
	} {
		if got := load(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if load("qcache_lookups_total") == 0 {
		t.Error("cached job moved no qcache_lookups_total")
	}

	// The published index carries the shared metrics: an answer query
	// must move the topk histogram.
	if _, err := m.AnswerTopK(AnswerTopKRequest{Store: "s", Weights: []float64{1, 1, 1}, K: 3}); err != nil {
		t.Fatal(err)
	}
	if load("answer_topk_seconds") != 1 {
		t.Error("answer topk latency not observed")
	}

	// Structured log: submit/start/done lines carrying the id chain.
	log := logBuf.String()
	for _, want := range []string{
		"job submitted", "job started", "job done", "answer index published",
		"job_id=" + st.ID, "trace_id=" + st.TraceID, "component=testd",
		"store=s", "plan=", "algo=sq",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

// TestFailedJobLogsStructurally submits a job against a store whose
// queries always fail and checks the failure line carries job id,
// store and plan summary (the triage contract).
func TestFailedJobLogsStructurally(t *testing.T) {
	var logBuf bytes.Buffer
	m, err := NewManager(Config{MaxConcurrent: 1, Logger: obs.NewLogger(&logBuf, "testd")})
	if err != nil {
		t.Fatal(err)
	}
	d := testDataset(4, 60)
	if err := m.AddStore("bad", failingDB{d.DB(5, hidden.SumRank{})}); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Store: "bad", Algo: "sq", Budget: 50})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID, 10*time.Second)
	if final.State != StateFailed {
		t.Fatalf("job ended %s, want failed", final.State)
	}
	log := logBuf.String()
	for _, want := range []string{
		"job failed", "job_id=" + st.ID, "store=bad", "error=", "budget=50",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("failure log missing %q:\n%s", want, log)
		}
	}
	var found bool
	for _, s := range m.Registry().Snapshots() {
		if s.Name == "jobs_failed_total" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("jobs_failed_total did not reach 1")
	}
}

// TestStatsAndMetricsEndpoints checks the handler serves the registry
// on GET /metrics (Prometheus text) and GET /v1/stats (JSON with
// health, series and per-shard cache detail).
func TestStatsAndMetricsEndpoints(t *testing.T) {
	d := testDataset(5, 80)
	m, err := NewManager(Config{MaxConcurrent: 1, CacheSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("s", d.DB(5, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Store: "s", Algo: "sq", UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID, 10*time.Second)
	h := NewHandler(m)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("GET /metrics: code=%d type=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE jobs_submitted_total counter",
		"jobs_submitted_total 1",
		"jobs_running 0",
		"qcache_lookups_total",
		`qcache_shard_entries{shard="0"}`,
		"job_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /v1/stats: code=%d", rec.Code)
	}
	var detail StatsDetail
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if len(detail.Metrics) == 0 {
		t.Fatal("/v1/stats carries no metric series")
	}
	if detail.Cache == nil || len(detail.Cache.Shards) == 0 {
		t.Fatal("/v1/stats carries no per-shard cache detail")
	}
	entries := 0
	for _, sh := range detail.Cache.Shards {
		entries += sh.Entries
	}
	if entries != detail.Cache.Entries {
		t.Fatalf("shard entries sum to %d, cache reports %d", entries, detail.Cache.Entries)
	}
	if detail.Health.Jobs != 1 {
		t.Fatalf("health reports %d jobs, want 1", detail.Health.Jobs)
	}
}

// failingDB answers every query with an error.
type failingDB struct {
	core.Interface
}

func (failingDB) Query(query.Q) (hidden.Result, error) {
	return hidden.Result{}, errors.New("store exploded")
}
