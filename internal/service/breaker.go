package service

import (
	"sync"
	"time"
)

// circuitState is a store circuit's position, exported numerically
// through the circuit_state{store=...} gauge.
type circuitState int

const (
	circuitClosed   circuitState = 0 // store healthy, jobs run normally
	circuitHalfOpen circuitState = 1 // cooldown over: probes allowed through
	circuitOpen     circuitState = 2 // store failing: runs park without querying
)

func (s circuitState) String() string {
	switch s {
	case circuitHalfOpen:
		return "half-open"
	case circuitOpen:
		return "open"
	}
	return "closed"
}

// breakerEscalationCap bounds how far consecutive opens double the
// cooldown past its base (2^5 = 32x).
const breakerEscalationCap = 5

// breaker is a per-store circuit breaker over job outcomes. Every
// upstream-failure ending (rate limited, transiently unavailable)
// counts against the store; threshold consecutive failures open the
// circuit and further runs against the store park without spending a
// single upstream query. Once the cooldown elapses the circuit turns
// half-open and lets probe runs through: a success closes it, another
// failure re-opens it with a doubled cooldown (capped). All methods
// take the clock as an argument, so tests drive the lifecycle with
// synthetic times.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    circuitState
	failures int       // consecutive upstream failures since the last success
	trips    int       // consecutive opens without an intervening success
	until    time.Time // while open: when the cooldown ends
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a run against the store may proceed. While the
// circuit is open and cooling it returns false with the remaining
// cooldown; once the cooldown has elapsed the circuit moves to
// half-open and the run goes through as a probe.
func (b *breaker) allow(now time.Time) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == circuitOpen {
		if now.Before(b.until) {
			return false, b.until.Sub(now)
		}
		b.state = circuitHalfOpen
	}
	return true, 0
}

// onSuccess closes the circuit and resets the escalation.
func (b *breaker) onSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = circuitClosed
	b.failures = 0
	b.trips = 0
	b.until = time.Time{}
	b.mu.Unlock()
}

// onFailure records one upstream-failure job ending. A half-open
// probe failure re-opens immediately; in the closed state the
// threshold-th consecutive failure opens. Each consecutive open
// doubles the cooldown up to the escalation cap. Returns the cooldown
// when this call opened the circuit, 0 otherwise.
func (b *breaker) onFailure(now time.Time) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state != circuitHalfOpen && b.failures < b.threshold {
		return 0
	}
	shift := b.trips
	if shift > breakerEscalationCap {
		shift = breakerEscalationCap
	}
	d := b.cooldown << shift
	b.trips++
	b.failures = 0
	b.state = circuitOpen
	b.until = now.Add(d)
	return d
}

// stateAt reports the effective state without mutating it: an open
// circuit whose cooldown has elapsed reads as half-open.
func (b *breaker) stateAt(now time.Time) circuitState {
	if b == nil {
		return circuitClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == circuitOpen && !now.Before(b.until) {
		return circuitHalfOpen
	}
	return b.state
}
