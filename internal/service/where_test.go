package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// waitDone polls the manager until the job is terminal.
func waitDone(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// TestJobWhereFilter: a filtered job (skylined's previously missing
// capability) discovers exactly the filtered skyline, for plain,
// explicit-algorithm, band and resumable jobs alike.
func TestJobWhereFilter(t *testing.T) {
	const where = "A0<30,A1>=5"
	// Two-ended ranges everywhere: the filter's ">=" needs them, and the
	// resumable SQ walk runs on RQ (a strictly stronger capability).
	d := testDataset(21, 300).WithCaps(hidden.RQ)
	filter := query.MustParse(where)

	specs := []JobSpec{
		{Store: "s", Where: where},
		{Store: "s", Where: where, Algo: "sq"},
		{Store: "s", Where: where, Band: 2},
		{Store: "s", Where: where, Resumable: true},
	}
	for _, spec := range specs {
		t.Run(spec.Algo+"/band="+itoa(spec.Band)+"/resumable="+itoa(b2i(spec.Resumable)), func(t *testing.T) {
			m, err := NewManager(Config{MaxConcurrent: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close(context.Background())
			if err := m.AddStore("s", d.DB(5, hidden.SumRank{})); err != nil {
				t.Fatal(err)
			}
			st, err := m.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			final := waitDone(t, m, st.ID)
			if final.State != StateDone || !final.Complete {
				t.Fatalf("job ended %s (complete=%v, err=%q)", final.State, final.Complete, final.Error)
			}
			for _, tuple := range final.Tuples {
				if !filter.Matches(tuple) {
					t.Fatalf("tuple %v violates filter %s", tuple, where)
				}
			}
			want, err := core.Run(d.DB(5, hidden.SumRank{}),
				core.Request{Algo: core.Algo(spec.Algo), Band: spec.Band, Filter: filter}, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sameTuples(t, final.Tuples, want.Skyline)

			// Filtered jobs must not publish the store-wide answer index.
			if _, err := m.AnswerStore("s"); !errors.Is(err, ErrNoAnswer) {
				t.Fatalf("filtered job published an answer index (err=%v)", err)
			}
		})
	}
}

func itoa(n int) string { return string(rune('0' + n)) }
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestSubmitWhereValidation: malformed filters and filters the store's
// interface cannot express are client errors at submit, not failed
// jobs.
func TestSubmitWhereValidation(t *testing.T) {
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	// testDataset is SQ-capable: ">=" filters are inexpressible.
	if err := m.AddStore("s", testDataset(5, 50).DB(3, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(JobSpec{Store: "s", Where: "A0!!3"}); err == nil {
		t.Error("malformed where accepted")
	}
	if _, err := m.Submit(JobSpec{Store: "s", Where: "A0>=3"}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("inexpressible filter: got %v, want ErrUnsupported", err)
	}
	if _, err := m.Submit(JobSpec{Store: "s", Where: "A9<3"}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("out-of-range filter attr: got %v, want ErrUnsupported", err)
	}
	// Supported filters pass validation.
	st, err := m.Submit(JobSpec{Store: "s", Where: "A0<30"})
	if err != nil {
		t.Fatalf("valid filtered spec rejected: %v", err)
	}
	waitDone(t, m, st.ID)
}

// TestHTTPBadWhereIs400: the HTTP surface answers a malformed or
// unsatisfiable where expression with 400 and the JSON error envelope.
func TestHTTPBadWhereIs400(t *testing.T) {
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if err := m.AddStore("s", testDataset(6, 50).DB(3, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	for _, body := range []string{
		`{"store":"s","where":"A0!!3"}`,                     // unparsable expression
		`{"store":"s","where":"A0>=3"}`,                     // operator the SQ interface rejects
		`{"store":"s","where":"A0<3","algo":"mq","band":2}`, // unplannable combo
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("body of %s is not the JSON error envelope: %v", body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s answered %d, want 400", body, resp.StatusCode)
		}
		if envelope.Error == "" {
			t.Errorf("POST %s: empty error envelope", body)
		}
	}
}

// TestFleetWhereFilter: a fleet job applies the filter to every store
// and merges only matching offers.
func TestFleetWhereFilter(t *testing.T) {
	const where = "A0<35"
	filter := query.MustParse(where)
	m, err := NewManager(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if err := m.AddStore("a", testDataset(31, 200).DB(4, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("b", testDataset(32, 200).DB(4, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Stores: []string{"a", "b"}, Where: where, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, st.ID)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("fleet job ended %s (complete=%v, err=%q)", final.State, final.Complete, final.Error)
	}
	if len(final.Tuples) == 0 {
		t.Fatal("fleet job found nothing")
	}
	for _, tuple := range final.Tuples {
		if !filter.Matches(tuple) {
			t.Fatalf("fleet tuple %v violates filter %s", tuple, where)
		}
	}
}
