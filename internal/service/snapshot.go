package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hiddensky/internal/core"
)

// jobSnapshot is the persisted form of one job: its externally visible
// status plus, for resumable jobs, the checkpointed discovery session.
type jobSnapshot struct {
	Status  JobStatus     `json:"status"`
	Session *core.Session `json:"session,omitempty"`
}

// snapshotStore is the file-backed snapshot store: one JSON file per
// job, written atomically (temp file + rename) so a crash mid-write
// leaves the previous checkpoint intact.
type snapshotStore struct {
	dir string
}

func newSnapshotStore(dir string) (*snapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating snapshot dir: %w", err)
	}
	return &snapshotStore{dir: dir}, nil
}

func (s *snapshotStore) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// save atomically writes the snapshot. Compact encoding: snapshots are
// machine-read on the recovery path, and a band job's tuple list
// dominates the payload — indentation only inflates the write.
func (s *snapshotStore) save(snap jobSnapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("service: encoding snapshot: %w", err)
	}
	return s.write(snap.Status.ID+".json", snap.Status.ID, data)
}

// saveAnswer atomically writes a job's binary columnar answer snapshot
// (an answer.AppendBinary block) next to its JSON snapshot. The .ans
// suffix keeps it invisible to load's job scan.
func (s *snapshotStore) saveAnswer(id string, data []byte) error {
	return s.write(id+".ans", id, data)
}

// loadAnswer reads a job's binary answer snapshot (os.ErrNotExist when
// the job never published one).
func (s *snapshotStore) loadAnswer(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, id+".ans"))
}

// write commits data to name atomically and durably: the temp file is
// fsynced before the rename and the directory after it, so a crash at
// any point leaves either the previous file or the complete new one —
// never a rename that made a torn write visible.
func (s *snapshotStore) write(name, id string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, id+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: snapshot temp file: %w", err)
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: writing snapshot: %w", errors.Join(werr, serr, cerr))
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: committing snapshot: %w", err)
	}
	// Without a directory sync the rename itself can be lost on power
	// failure. Best-effort: not every filesystem supports fsync on a
	// directory handle, and the data file above is already durable.
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// load reads every job snapshot, in id order. Unreadable files are
// skipped (a crash can leave stray temp files behind) — recovery should
// resurrect everything it can rather than refuse to start.
func (s *snapshotStore) load() ([]jobSnapshot, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: reading snapshot dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var out []jobSnapshot
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var snap jobSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			continue
		}
		out = append(out, snap)
	}
	return out, nil
}
