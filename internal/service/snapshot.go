package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hiddensky/internal/core"
)

// jobSnapshot is the persisted form of one job: its externally visible
// status plus, for resumable jobs, the checkpointed discovery session.
type jobSnapshot struct {
	Status  JobStatus     `json:"status"`
	Session *core.Session `json:"session,omitempty"`
}

// snapshotStore is the file-backed snapshot store: one JSON file per
// job, written atomically (temp file + rename) so a crash mid-write
// leaves the previous checkpoint intact.
type snapshotStore struct {
	dir string
}

func newSnapshotStore(dir string) (*snapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating snapshot dir: %w", err)
	}
	return &snapshotStore{dir: dir}, nil
}

func (s *snapshotStore) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// save atomically writes the snapshot.
func (s *snapshotStore) save(snap jobSnapshot) error {
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("service: encoding snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, snap.Status.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: snapshot temp file: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: writing snapshot: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.path(snap.Status.ID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: committing snapshot: %w", err)
	}
	return nil
}

// load reads every job snapshot, in id order. Unreadable files are
// skipped (a crash can leave stray temp files behind) — recovery should
// resurrect everything it can rather than refuse to start.
func (s *snapshotStore) load() ([]jobSnapshot, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: reading snapshot dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var out []jobSnapshot
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var snap jobSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			continue
		}
		out = append(out, snap)
	}
	return out, nil
}
