package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
)

func newTestService(t *testing.T, cfg Config) (*Manager, *Client) {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
		srv.Close()
	})
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

// TestHTTPSubmitWatchResult drives the full client surface: health,
// submit, SSE watch to completion, result and listing.
func TestHTTPSubmitWatchResult(t *testing.T) {
	d := testDataset(10, 200)
	m, c := newTestService(t, Config{MaxConcurrent: 2})
	if err := m.AddStore("s", d.DB(4, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Stores) != 1 || h.Stores[0] != "s" {
		t.Fatalf("health stores = %v", h.Stores)
	}

	st, err := c.Submit(JobSpec{Store: "s", Algo: "sq"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("fresh job status %+v", st)
	}
	var updates int
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := c.Watch(ctx, st.ID, func(JobStatus) { updates++ })
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || !final.Complete {
		t.Fatalf("watched job ended %s (complete=%v, err=%q)", final.State, final.Complete, final.Error)
	}
	if updates == 0 {
		t.Fatal("watch saw no updates")
	}

	want, err := core.SQDBSky(d.DB(4, hidden.SumRank{}), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := c.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, tuples, want.Skyline)

	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("job listing = %+v", jobs)
	}
	got, err := c.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Queries != want.Queries {
		t.Fatalf("job reports %d queries, sequential run %d", got.Queries, want.Queries)
	}
}

// TestHTTPCancel: DELETE aborts a running job through the API.
func TestHTTPCancel(t *testing.T) {
	d := testDataset(11, 400)
	store := &instrumentedDB{
		Interface: d.DB(3, hidden.SumRank{}),
		delay:     2 * time.Millisecond,
		reached:   make(chan struct{}),
		notify:    5,
	}
	m, c := newTestService(t, Config{MaxConcurrent: 1})
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	st, err := c.Submit(JobSpec{Store: "s", Algo: "sq"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-store.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started querying")
	}
	if _, err := c.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("cancelled job ended %s", final.State)
	}
}

// TestHTTPErrors: the API answers bad requests with typed errors.
func TestHTTPErrors(t *testing.T) {
	d := testDataset(12, 100)
	store := &instrumentedDB{
		Interface: d.DB(3, hidden.SumRank{}),
		delay:     time.Millisecond,
		reached:   make(chan struct{}),
		notify:    1,
	}
	m, c := newTestService(t, Config{MaxConcurrent: 1})
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobSpec{Store: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown store") {
		t.Fatalf("unknown-store submit: %v", err)
	}
	if _, err := c.Job("j999999"); err == nil {
		t.Fatal("unknown job fetch succeeded")
	}
	if _, err := c.Result("j999999"); err == nil {
		t.Fatal("unknown job result succeeded")
	}
	st, err := c.Submit(JobSpec{Store: "s", Algo: "sq"})
	if err != nil {
		t.Fatal(err)
	}
	<-store.reached
	if _, err := c.Result(st.ID); err == nil || !strings.Contains(err.Error(), "not finished") {
		t.Fatalf("mid-run result: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
