package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
)

// healthManager builds a manager whose background sampler never fires
// (hour-long interval), so tests drive SampleNow with synthetic times
// and the windowed rates are fully deterministic.
func healthManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	cfg.SampleInterval = time.Hour
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close(context.Background()) })
	return m
}

// TestHealthRollupTransitions drives the manager's rate checks across
// their thresholds with real internal counters: every scenario starts
// ready, a burst degrades it, and sampling past the window heals it —
// ready → degraded → ready without any reset call.
func TestHealthRollupTransitions(t *testing.T) {
	for _, tc := range []struct {
		name    string
		cfg     Config
		counter string // bumped between the two close samples
		check   string // the check expected to breach
	}{
		{
			name:    "job failure burst",
			cfg:     Config{},
			counter: "jobs_failed_total",
			check:   "job_failure_rate",
		},
		{
			name:    "upstream 429 burst",
			cfg:     Config{},
			counter: `upstream_rate_limited_total{store="s"}`,
			check:   "upstream_429_rate",
		},
		{
			name:    "qcache eviction churn",
			cfg:     Config{CacheSize: 4},
			counter: "qcache_churn_probe_total", // see below: evictions need a cache write path
			check:   "qcache_eviction_rate",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := healthManager(t, tc.cfg)
			s := m.Sampler()
			base := time.Now().Add(-30 * time.Minute)

			s.SampleNow(base)
			s.SampleNow(base.Add(time.Second))
			if rep := m.HealthReport(); rep.State != obs.HealthReady {
				t.Fatalf("quiet manager state = %v (%+v), want ready", rep.State, rep)
			}

			// Burst: bump the counter hard between two samples 1s apart —
			// a windowed rate far over every default threshold.
			if tc.check == "qcache_eviction_rate" {
				// Eviction counters are scrape-time funcs over the cache;
				// drive real evictions by overflowing the 4-entry bound.
				fillCache(t, m, 500)
			} else {
				// The registry hands back the existing counter for a
				// known name: tests reach internal counters by name.
				m.Registry().Counter(tc.counter, "").Add(600)
			}
			s.SampleNow(base.Add(2 * time.Second))
			rep := m.HealthReport()
			if rep.State != obs.HealthDegraded {
				t.Fatalf("state after burst = %v (%+v), want degraded", rep.State, rep)
			}
			breached := ""
			for _, c := range rep.Checks {
				if c.Breached {
					breached = c.Name
				}
			}
			if breached != tc.check {
				t.Fatalf("breached check = %q, want %q (report %+v)", breached, tc.check, rep)
			}

			// Quiet minute: two samples past the 1m window age the burst
			// out and the rollup heals itself.
			s.SampleNow(base.Add(5 * time.Minute))
			s.SampleNow(base.Add(5*time.Minute + time.Second))
			if rep := m.HealthReport(); rep.State != obs.HealthReady {
				t.Fatalf("state after quiet window = %v (%+v), want ready", rep.State, rep)
			}
		})
	}
}

// fillCache pushes n distinct queries through the manager's shared
// cache so its 4-entry LRU evicts continuously.
func fillCache(t *testing.T, m *Manager, n int) {
	t.Helper()
	d := testDataset(77, 50)
	db, err := hidden.New(d.Config(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	cached := m.cache.Wrap(db)
	for i := 0; i < n; i++ {
		q := query.Q{{Attr: 0, Op: query.LE, Value: i % 40}, {Attr: 1, Op: query.LE, Value: i % 7}}
		if _, err := cached.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if m.cache.Evictions() == 0 {
		t.Fatal("cache fill produced no evictions")
	}
}

// TestHealthThresholdConfig: negative disables a check, a custom value
// replaces the default.
func TestHealthThresholdConfig(t *testing.T) {
	m := healthManager(t, Config{Health: HealthThresholds{MaxFailureRate: -1, MaxRateLimitedRate: 500}})
	s := m.Sampler()
	base := time.Now().Add(-30 * time.Minute)
	s.SampleNow(base)
	m.Registry().Counter("jobs_failed_total", "").Add(600)
	m.Registry().Counter(`upstream_rate_limited_total{store="s"}`, "").Add(100)
	s.SampleNow(base.Add(time.Second))
	rep := m.HealthReport()
	if rep.State != obs.HealthReady {
		t.Fatalf("state = %v (%+v), want ready: failures disabled, 100/s under the 500/s threshold", rep.State, rep)
	}
	for _, c := range rep.Checks {
		if c.Name == "job_failure_rate" && c.Threshold > 0 {
			t.Fatalf("negative MaxFailureRate kept threshold %v", c.Threshold)
		}
		if c.Name == "upstream_429_rate" && c.Threshold != 500 {
			t.Fatalf("upstream threshold = %v, want 500", c.Threshold)
		}
	}
}

// TestReadyzFlipsAtRecover: with a snapshot store, the daemon is
// unready (readyz 503) from construction until Recover has replayed
// the snapshots and rebuilt the answer index — and the index is
// already serving at the moment readiness flips.
func TestReadyzFlipsAtRecover(t *testing.T) {
	dir := t.TempDir()
	m1, d := newAnswerManager(t, Config{SnapshotDir: dir}, 91, 200)
	st, err := m1.Submit(JobSpec{Store: "shop"})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m1, st.ID, 30*time.Second); fin.State != StateDone {
		t.Fatalf("seed job ended %s (%s)", fin.State, fin.Error)
	}
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(Config{SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	db, err := hidden.New(d.Config(10, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.AddStore("shop", db); err != nil {
		t.Fatal(err)
	}

	h := NewHandler(m2)
	readyz := func() (int, obs.HealthReport) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		var rep obs.HealthReport
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("readyz body %q: %v", rec.Body.String(), err)
		}
		return rec.Code, rep
	}

	code, rep := readyz()
	if code != http.StatusServiceUnavailable || rep.State != obs.HealthUnready {
		t.Fatalf("before Recover: code=%d state=%v, want 503/unready", code, rep.State)
	}
	if rep.Reason == "" {
		t.Fatal("unready report carries no reason")
	}

	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	code, rep = readyz()
	if code != http.StatusOK || rep.State != obs.HealthReady {
		t.Fatalf("after Recover: code=%d state=%v, want 200/ready", code, rep.State)
	}
	// Readiness promised servable answers: the rebuilt index answers
	// without one upstream query.
	if _, err := m2.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: []float64{1, 1, 1}, K: 1}); err != nil {
		t.Fatalf("ready daemon cannot serve recovered answers: %v", err)
	}
}

// TestReadyWithoutSnapshots: no snapshot store means nothing to
// recover — ready from construction.
func TestReadyWithoutSnapshots(t *testing.T) {
	m := healthManager(t, Config{})
	if rep := m.HealthReport(); rep.State != obs.HealthReady {
		t.Fatalf("snapshot-less manager state = %v, want ready", rep.State)
	}
}

// TestCloseTurnsUnready: a draining manager reports unready so load
// balancers stop routing to it before its jobs are interrupted.
func TestCloseTurnsUnready(t *testing.T) {
	m := healthManager(t, Config{})
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := m.HealthReport()
	if rep.State != obs.HealthUnready || rep.Reason != "shutting down" {
		t.Fatalf("closed manager report = %+v, want unready/shutting down", rep)
	}
}

// TestServiceEndpointContentTypes pins the telemetry surface headers
// on the job daemon's handler.
func TestServiceEndpointContentTypes(t *testing.T) {
	m := healthManager(t, Config{})
	h := NewHandler(m)
	for _, tc := range []struct {
		path, want string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/v1/stats", "application/json; charset=utf-8"},
		{"/v1/history", "application/json; charset=utf-8"},
		{"/healthz", "application/json; charset=utf-8"},
		{"/readyz", "application/json; charset=utf-8"},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if got := rec.Header().Get("Content-Type"); got != tc.want {
			t.Errorf("%s Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestHistoryEndpointServesRates: the handler's /v1/history surfaces
// the sampler's rings and windowed rates end to end.
func TestHistoryEndpointServesRates(t *testing.T) {
	m := healthManager(t, Config{})
	s := m.Sampler()
	base := time.Now().Add(-30 * time.Minute)
	s.SampleNow(base)
	m.Registry().Counter("jobs_submitted_total", "").Add(10)
	s.SampleNow(base.Add(time.Second))

	h := NewHandler(m)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/history?last=2", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("history answered %d", rec.Code)
	}
	var hist obs.HistorySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.TimesUnixMS) != 2 {
		t.Fatalf("history has %d samples, want 2", len(hist.TimesUnixMS))
	}
	for _, sh := range hist.Series {
		if sh.Name == "jobs_submitted_total" {
			if sh.Rate1m < 9.9 || sh.Rate1m > 10.1 {
				t.Fatalf("jobs_submitted rate_1m = %v, want ~10", sh.Rate1m)
			}
			return
		}
	}
	t.Fatal("jobs_submitted_total missing from history")
}
