package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hiddensky/internal/obs"
)

// Client is the Go client for a skylined job service.
type Client struct {
	base string
	http *http.Client
}

// Dial checks the daemon's health endpoint and returns a ready client.
// httpClient may be nil (http.DefaultClient).
func Dial(baseURL string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
	var h Health
	if err := c.do(context.Background(), http.MethodGet, "/v1/health", nil, &h); err != nil {
		return nil, err
	}
	return c, nil
}

// Submit enqueues a job.
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(context.Background(), http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Jobs lists every job the daemon knows.
func (c *Client) Jobs() ([]JobStatus, error) {
	var resp JobsResponse
	err := c.do(context.Background(), http.MethodGet, "/v1/jobs", nil, &resp)
	return resp.Jobs, err
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(context.Background(), http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel aborts a job.
func (c *Client) Cancel(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(context.Background(), http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a terminal job's skyline tuples.
func (c *Client) Result(id string) ([][]int, error) {
	var resp ResultResponse
	err := c.do(context.Background(), http.MethodGet, "/v1/jobs/"+id+"/result", nil, &resp)
	return resp.Tuples, err
}

// Trace fetches a job's span tree.
func (c *Client) Trace(id string) (TraceResponse, error) {
	var t TraceResponse
	err := c.do(context.Background(), http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &t)
	return t, err
}

// TraceChrome fetches a job's trace in Chrome trace-event format —
// raw bytes, ready to save and open in Perfetto.
func (c *Client) TraceChrome(id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet,
		c.base+"/v1/jobs/"+id+"/trace?format=chrome", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: trace request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: trace endpoint answered %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Health fetches the daemon's health summary.
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.do(context.Background(), http.MethodGet, "/v1/health", nil, &h)
	return h, err
}

// StatsDetail fetches the daemon's /v1/stats snapshot: health, every
// metric series as JSON, and the query cache's counters with
// per-shard detail.
func (c *Client) StatsDetail() (StatsDetail, error) {
	var d StatsDetail
	err := c.do(context.Background(), http.MethodGet, "/v1/stats", nil, &d)
	return d, err
}

// History fetches the daemon's retained time-series rings. last bounds
// the trailing samples per series (<= 0: everything retained).
func (c *Client) History(last int) (obs.HistorySnapshot, error) {
	path := "/v1/history"
	if last > 0 {
		path += "?last=" + strconv.Itoa(last)
	}
	var h obs.HistorySnapshot
	err := c.do(context.Background(), http.MethodGet, path, nil, &h)
	return h, err
}

// Healthz fetches the daemon's health rollup (liveness view: the
// endpoint answers 200 in every state).
func (c *Client) Healthz() (obs.HealthReport, error) {
	var rep obs.HealthReport
	err := c.do(context.Background(), http.MethodGet, "/healthz", nil, &rep)
	return rep, err
}

// Readyz asks the routing question: ready reports whether the daemon
// should receive traffic (the endpoint's 200/503), rep carries the
// rollup detail either way.
func (c *Client) Readyz() (rep obs.HealthReport, ready bool, err error) {
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return rep, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return rep, false, fmt.Errorf("service: readyz request: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return rep, false, fmt.Errorf("service: readyz answered %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, false, fmt.Errorf("service: decoding readyz response: %w", err)
	}
	return rep, resp.StatusCode == http.StatusOK, nil
}

// Answers lists every store's answer-index status.
func (c *Client) Answers() (map[string]AnswerStatus, error) {
	var resp AnswersResponse
	err := c.do(context.Background(), http.MethodGet, "/v1/answer", nil, &resp)
	return resp.Answers, err
}

// AnswerTopK asks the daemon's materialized answer index for the top-k
// tuples under the request's weight vector. No upstream query is spent.
func (c *Client) AnswerTopK(req AnswerTopKRequest) (AnswerTopKResponse, error) {
	var resp AnswerTopKResponse
	err := c.do(context.Background(), http.MethodPost, "/v1/answer/topk", req, &resp)
	return resp, err
}

// TopKBatch answers many weight vectors against one store's answer
// index in fused column sweeps — one POST, results in request order.
func (c *Client) TopKBatch(req AnswerTopKBatchRequest) (AnswerTopKBatchResponse, error) {
	var resp AnswerTopKBatchResponse
	err := c.do(context.Background(), http.MethodPost, "/v1/answer/topk_batch", req, &resp)
	return resp, err
}

// AnswerSkyline asks the answer index for a (subspace) skyline.
func (c *Client) AnswerSkyline(req AnswerSkylineRequest) (AnswerSkylineResponse, error) {
	var resp AnswerSkylineResponse
	err := c.do(context.Background(), http.MethodPost, "/v1/answer/skyline", req, &resp)
	return resp, err
}

// AnswerDominates asks the answer index whether a candidate tuple is
// dominated by anything already discovered.
func (c *Client) AnswerDominates(req AnswerDominatesRequest) (AnswerDominatesResponse, error) {
	var resp AnswerDominatesResponse
	err := c.do(context.Background(), http.MethodPost, "/v1/answer/dominates", req, &resp)
	return resp, err
}

// Wait polls the job every interval until it reaches a terminal state
// (or ctx ends) and returns the final status.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (JobStatus, error) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		var st JobStatus
		// The poll itself runs under ctx, so a wedged daemon cannot make
		// Wait outlive the caller's deadline.
		err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Watch subscribes to the job's SSE stream, invoking fn (when non-nil)
// on every update, and returns the final status once the job is
// terminal. If the stream drops mid-job, Watch falls back to one status
// poll so callers still learn the latest state.
func (c *Client) Watch(ctx context.Context, id string, fn func(JobStatus)) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: events request: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, fmt.Errorf("service: events endpoint answered %s", resp.Status)
	}
	var last JobStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		case line == "" && len(data) > 0:
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return last, fmt.Errorf("service: decoding event: %w", err)
			}
			data = data[:0]
			last = st
			if fn != nil {
				fn(st)
			}
			if st.State.Terminal() {
				return st, nil
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() != nil {
		return last, ctx.Err()
	}
	// Stream ended without a terminal event: fetch the latest status.
	return c.Job(id)
}

// do performs one JSON round trip. Non-2xx answers surface the server's
// error envelope.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("service: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e errorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("service: %s %s: %s (%s)", method, path, e.Error, resp.Status)
		}
		return fmt.Errorf("service: %s %s answered %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
	}
	return nil
}
