package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hiddensky/internal/chaos"
	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
	"hiddensky/internal/web"
)

// TestBreakerLifecycle walks one circuit through its whole state
// machine with synthetic clocks: closed under the threshold, open at
// it, cooling refusals, half-open probes, escalating re-opens, and the
// full reset a success brings.
func TestBreakerLifecycle(t *testing.T) {
	t0 := time.Now()
	b := newBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if d := b.onFailure(t0); d != 0 {
			t.Fatalf("failure %d under the threshold opened the circuit", i+1)
		}
	}
	if ok, _ := b.allow(t0); !ok || b.stateAt(t0) != circuitClosed {
		t.Fatal("two failures under threshold 3 must leave the circuit closed")
	}
	if d := b.onFailure(t0); d != time.Second {
		t.Fatalf("threshold failure cooldown = %v, want the 1s base", d)
	}
	if ok, wait := b.allow(t0.Add(400 * time.Millisecond)); ok || wait != 600*time.Millisecond {
		t.Fatalf("cooling circuit: allowed=%v wait=%v, want refused with 600ms left", ok, wait)
	}
	if st := b.stateAt(t0.Add(500 * time.Millisecond)); st != circuitOpen {
		t.Fatalf("state while cooling = %v, want open", st)
	}
	t1 := t0.Add(time.Second)
	if st := b.stateAt(t1); st != circuitHalfOpen {
		t.Fatalf("state after the cooldown = %v, want half-open", st)
	}
	if ok, _ := b.allow(t1); !ok {
		t.Fatal("half-open circuit must let a probe through")
	}
	// A failed probe re-opens immediately with a doubled cooldown.
	if d := b.onFailure(t1); d != 2*time.Second {
		t.Fatalf("re-open cooldown = %v, want 2s (doubled)", d)
	}
	t2 := t1.Add(2 * time.Second)
	if ok, _ := b.allow(t2); !ok {
		t.Fatal("second probe refused after the doubled cooldown")
	}
	b.onSuccess()
	if st := b.stateAt(t2); st != circuitClosed {
		t.Fatalf("state after a successful probe = %v, want closed", st)
	}
	// The success reset the escalation: the next open is back at base.
	for i := 0; i < 2; i++ {
		b.onFailure(t2)
	}
	if d := b.onFailure(t2); d != time.Second {
		t.Fatalf("post-reset cooldown = %v, want the 1s base again", d)
	}
}

// TestBreakerEscalationCap: consecutive opens double the cooldown only
// up to the cap (32x base).
func TestBreakerEscalationCap(t *testing.T) {
	now := time.Now()
	b := newBreaker(1, time.Second)
	var last time.Duration
	for i := 0; i < breakerEscalationCap+3; i++ {
		last = b.onFailure(now)
		now = now.Add(last)
		if ok, _ := b.allow(now); !ok {
			t.Fatal("probe refused after full cooldown")
		}
	}
	if want := time.Second << breakerEscalationCap; last != want {
		t.Fatalf("capped cooldown = %v, want %v", last, want)
	}
}

// TestBreakerDisabled: a negative threshold turns the per-store
// breakers off entirely.
func TestBreakerDisabled(t *testing.T) {
	m, err := NewManager(Config{BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if err := m.AddStore("s", testDataset(41, 50).DB(3, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	if m.storeBreaker("s") != nil {
		t.Fatal("negative BreakerThreshold still built a breaker")
	}
}

// outageDB serves normally until switched down, then refuses every
// query with a connection-level transient error.
type outageDB struct {
	core.Interface
	down     atomic.Bool
	rejected atomic.Int64
}

func (d *outageDB) Query(q query.Q) (hidden.Result, error) {
	if d.down.Load() {
		d.rejected.Add(1)
		return hidden.Result{}, fmt.Errorf("connection refused: %w", retry.ErrUnavailable)
	}
	return d.Interface.Query(q)
}

// TestCircuitOpensAndAnswersServeWhileDown is the degradation
// acceptance path: a store publishes an answer index, then goes fully
// down. The resumable discovery job parks, consecutive failures open
// the store's circuit, and while discovery is parked the daemon is
// degraded — but /readyz stays 200 and the answer tier keeps serving
// the last published index with identical scores. Once the upstream
// recovers, the half-open probe finishes the job with exact
// accounting.
func TestCircuitOpensAndAnswersServeWhileDown(t *testing.T) {
	d := answerDataset(51, 250)
	db, err := hidden.New(d.Config(10, nil))
	if err != nil {
		t.Fatal(err)
	}
	store := &outageDB{Interface: db}
	baseline, err := core.SQDBSky(hidden.MustNew(d.Config(10, nil)), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{
		MaxConcurrent: 1,
		RetryDelay:    10 * time.Millisecond, MaxRetryDelay: 40 * time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if err := m.AddStore("shop", store); err != nil {
		t.Fatal(err)
	}

	// Publish an answer index with a quick band job while healthy.
	const bandK = 3
	seed, err := m.Submit(JobSpec{Store: "shop", Band: bandK})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m, seed.ID, 30*time.Second); fin.State != StateDone {
		t.Fatalf("seed band job ended %s (%s)", fin.State, fin.Error)
	}
	weights := []float64{1, 2, 0.5}
	before, err := m.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: weights, K: bandK})
	if err != nil {
		t.Fatal(err)
	}

	// The upstream goes fully down; a resumable job runs into it.
	store.down.Store(true)
	st, err := m.Submit(JobSpec{Store: "shop", Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for { // consecutive failures must open the circuit -> degraded
		rep := m.HealthReport()
		if rep.State == obs.HealthDegraded {
			breached := ""
			for _, c := range rep.Checks {
				if c.Breached {
					breached = c.Name
				}
			}
			if breached != "upstream_circuit_open" {
				t.Fatalf("degraded by %q, want upstream_circuit_open (%+v)", breached, rep)
			}
			break
		}
		if got, _ := m.Get(st.ID); got.State.Terminal() {
			t.Fatalf("job went terminal (%s, %q) instead of parking", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("circuit never opened; report %+v", m.HealthReport())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Degraded, not unready: /readyz stays 200 while discovery is
	// parked, and the circuit_state gauge reads open.
	h := NewHandler(m)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("readyz answered %d while degraded, want 200", rec.Code)
	}
	var rep obs.HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.State != obs.HealthDegraded {
		t.Fatalf("readyz state = %v, want degraded", rep.State)
	}
	var prom strings.Builder
	if err := m.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `circuit_state{store="shop"} 2`) {
		t.Fatalf("circuit_state gauge not open:\n%s", prom.String())
	}

	// The answer tier keeps serving the last published index with
	// identical scores while the upstream is fully down.
	after, err := m.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: weights, K: bandK})
	if err != nil {
		t.Fatalf("answers stopped serving during the outage: %v", err)
	}
	if len(after.Scores) != len(before.Scores) {
		t.Fatalf("outage changed the answer: %d scores vs %d", len(after.Scores), len(before.Scores))
	}
	for i := range after.Scores {
		if after.Scores[i] != before.Scores[i] {
			t.Fatalf("score %d drifted during the outage: %v vs %v", i, after.Scores[i], before.Scores[i])
		}
	}

	// Runs against the open circuit park without one upstream query.
	parkDeadline := time.Now().Add(30 * time.Second)
	for m.Registry().Counter("jobs_parked_circuit_total", "").Load() == 0 {
		if time.Now().After(parkDeadline) {
			t.Fatal("no run was parked by the open circuit")
		}
		time.Sleep(2 * time.Millisecond)
	}
	rejectedAtOpen := store.rejected.Load()
	time.Sleep(50 * time.Millisecond)
	if grew := store.rejected.Load() - rejectedAtOpen; grew != 0 {
		t.Fatalf("open circuit let %d queries through to the dead upstream", grew)
	}

	// Recovery: the half-open probe finds the store healthy, the job
	// finishes with exact accounting, and the rollup heals.
	store.down.Store(false)
	final := waitTerminal(t, m, st.ID, 60*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("recovered job: state=%s complete=%v error=%q", final.State, final.Complete, final.Error)
	}
	sameTuples(t, final.Tuples, baseline.Skyline)
	if final.Queries != baseline.Queries {
		t.Fatalf("recovered job counted %d queries, baseline %d", final.Queries, baseline.Queries)
	}
	if rep := m.HealthReport(); rep.State != obs.HealthReady {
		t.Fatalf("rollup did not heal after recovery: %+v", rep)
	}
}

// TestChaosKillRestartResumesExactly is the crash story under fire:
// the full stack (manager -> web.Client with retry policy -> HTTP ->
// chaos middleware -> web.Server) runs a resumable job while the
// upstream injects 429 bursts and connection resets, the daemon is
// killed mid-job, and a fresh manager over the same snapshot directory
// resumes it to the exact sequential baseline — same skyline set, same
// total query count, with every injected fault absorbed by retries.
func TestChaosKillRestartResumesExactly(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(22, 400)
	baseline, err := core.SQDBSky(d.DB(3, hidden.SumRank{}), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Queries < 40 {
		t.Fatalf("dataset too easy to interrupt: baseline cost %d", baseline.Queries)
	}

	serverDB, err := hidden.New(d.Config(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(chaos.Profile{RateLimitEvery: 6, RateLimitBurst: 2, ResetEvery: 17, Seed: 7})
	ts := httptest.NewServer(in.Middleware(web.NewServer(serverDB, nil)))
	defer ts.Close()
	dial := func() *web.Client {
		c, err := web.Dial(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.SetRetryPolicy(retry.Policy{
			Attempts: 8, BaseBackoff: 200 * time.Microsecond,
			MaxBackoff: 2 * time.Millisecond, NoJitter: true,
		})
		return c
	}

	m1, err := NewManager(Config{
		MaxConcurrent: 1, SnapshotDir: dir, CheckpointEvery: 1,
		RetryDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.AddStore("s", dial()); err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(JobSpec{Store: "s", Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for { // let the job spend part of its budget under fire
		got, _ := m1.Get(st.ID)
		if got.State.Terminal() {
			t.Fatalf("job finished before the kill (%s, %q)", got.State, got.Error)
		}
		if got.Queries >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never spent its first queries; status %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil { // the "kill", mid-chaos
		t.Fatal(err)
	}
	mid, ok := m1.Get(st.ID)
	if !ok || mid.State.Terminal() {
		t.Fatalf("interrupted job should be parked, got %+v", mid)
	}
	if mid.Queries <= 0 || mid.Queries >= baseline.Queries {
		t.Fatalf("kill did not land mid-budget: %d of %d queries spent", mid.Queries, baseline.Queries)
	}

	// Restart over the same snapshots; the chaos schedule keeps going.
	m2, err := NewManager(Config{
		MaxConcurrent: 1, SnapshotDir: dir, CheckpointEvery: 1,
		RetryDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	if err := m2.AddStore("s", dial()); err != nil {
		t.Fatal(err)
	}
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("recovered %d jobs, want 1", resumed)
	}
	final := waitTerminal(t, m2, st.ID, 120*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("resumed job: state=%s complete=%v error=%q", final.State, final.Complete, final.Error)
	}
	sameTuples(t, final.Tuples, baseline.Skyline)
	if final.Queries != baseline.Queries {
		t.Fatalf("resumed job counted %d queries, sequential baseline %d (exact accounting across the kill)",
			final.Queries, baseline.Queries)
	}
	if in.Count(chaos.KindRateLimit) == 0 {
		t.Fatal("no 429 bursts were injected; the chaos path was not exercised")
	}
}
