// Package service is the serving layer of the repository: a discovery
// job manager that turns the library into a long-running, multi-tenant
// system. Clients submit jobs naming a target store (an in-process
// hidden database or a remote skyserve endpoint dialed through
// web.Client), an algorithm, a query budget, parallelism and cache
// settings; the manager runs them on the shared execution substrate
// (bounded worker pools, one shared memoizing query cache), gates them
// behind a max-concurrent-jobs FIFO queue, streams live progress
// (queries issued, skyline size, budget remaining), and checkpoints
// resumable jobs through core.Session into a file-backed snapshot store
// so a killed daemon resumes every in-flight job on restart without
// repeating a single counted query.
//
// cmd/skylined wraps a Manager in the HTTP API of NewHandler; Client is
// the matching Go client.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hiddensky/internal/answer"
	"hiddensky/internal/core"
	"hiddensky/internal/engine"
	"hiddensky/internal/federate"
	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
	"hiddensky/internal/web"
)

// Errors surfaced by the manager.
var (
	// ErrUnknownJob: no job with that id.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrUnknownStore: the spec names a store the manager does not serve.
	ErrUnknownStore = errors.New("service: unknown store")
	// ErrNotFinished: the job has no final result yet.
	ErrNotFinished = errors.New("service: job not finished")
	// ErrClosed: the manager is shutting down.
	ErrClosed = errors.New("service: manager closed")
)

// Config tunes a Manager.
type Config struct {
	// MaxConcurrent bounds how many jobs run discovery at once; further
	// jobs wait in FIFO order. <= 0 means the default of 2.
	MaxConcurrent int
	// SnapshotDir, when non-empty, enables the file-backed snapshot
	// store: every job is persisted there (specs at submit, session
	// checkpoints while running, final results) and Recover re-enqueues
	// whatever a previous process left unfinished.
	SnapshotDir string
	// CacheSize, when non-zero, builds the manager's shared memoizing
	// query cache (entries; < 0 = unbounded). Jobs opt in per-spec.
	CacheSize int
	// CheckpointEvery is the default number of queries between snapshot
	// writes for resumable jobs (<= 0: after every query).
	CheckpointEvery int
	// RetryDelay is how long a resumable job parks before re-running
	// after an upstream rate limit or transient outage (as opposed to
	// its own Budget, which ends the job). <= 0 means the default of
	// 15s. Consecutive retries without progress double the delay up to
	// MaxRetryDelay; a job that makes no progress across several
	// consecutive retries gives up.
	RetryDelay time.Duration
	// MaxRetryDelay caps the escalating park-and-retry delay
	// (<= 0: 8x RetryDelay).
	MaxRetryDelay time.Duration
	// BreakerThreshold is how many consecutive upstream-failure job
	// endings (rate limited or transiently unavailable) a store absorbs
	// before its circuit opens: further runs against the store park
	// without spending a single upstream query until the cooldown
	// elapses, then probe half-open. 0 means the default of 3; negative
	// disables the per-store breakers.
	BreakerThreshold int
	// BreakerCooldown is the base open duration of a store circuit
	// (<= 0: 30s). Consecutive opens double it, up to 32x.
	BreakerCooldown time.Duration
	// Logger receives the manager's structured job-lifecycle log
	// (submit, start, park, terminal states, index publications), every
	// line carrying the job id and trace id. nil: logging is off.
	Logger *slog.Logger
	// SpanBuffer bounds the per-process span ring the job traces are
	// kept in (spans, rounded up to a power of two; <= 0 picks
	// obs.DefaultSpanCapacity). Once it wraps, the oldest spans are
	// overwritten and GET /v1/jobs/{id}/trace marks the trace
	// truncated.
	SpanBuffer int
	// SampleInterval is the time-series sampler's tick (<= 0:
	// obs.DefaultSampleInterval). Every registry series is ringed at
	// this cadence for GET /v1/history and the health rollup's
	// windowed rates.
	SampleInterval time.Duration
	// SampleRetention bounds how many samples each series keeps (<= 0:
	// obs.DefaultSampleRetention).
	SampleRetention int
	// Health tunes the rollup's degradation thresholds.
	Health HealthThresholds
	// BatchWindow, when > 0, coalesces concurrent single-vector
	// /v1/answer/topk calls against the same store: a call parks for up
	// to this long while others gather, then the window is answered in
	// one fused TopKBatch column sweep. ~200µs trades negligible added
	// latency for an amortized sweep under concurrent load. Zero
	// disables coalescing (every call sweeps alone, as before).
	BatchWindow time.Duration
	// BatchMax caps a coalescing window's batch: the BatchMax-th caller
	// flushes immediately instead of waiting out the window (<= 0:
	// DefaultBatchMax).
	BatchMax int
}

// HealthThresholds configures the manager's health rollup: a rate
// check degrades the daemon while its 1-minute windowed rate exceeds
// the threshold (events per second). Zero picks the default; negative
// disables the check.
type HealthThresholds struct {
	// MaxFailureRate bounds failed jobs per second (default 0.1).
	MaxFailureRate float64
	// MaxRateLimitedRate bounds upstream 429s per second across all
	// stores (default 1.0).
	MaxRateLimitedRate float64
	// MaxEvictionRate bounds shared-cache evictions per second
	// (default 100) — sustained eviction churn means the cache is
	// thrashing, not caching.
	MaxEvictionRate float64
}

// Default health thresholds (events/second over the trailing minute).
const (
	DefaultMaxFailureRate     = 0.1
	DefaultMaxRateLimitedRate = 1.0
	DefaultMaxEvictionRate    = 100.0
)

// threshold resolves the zero/negative convention.
func threshold(v, def float64) float64 {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0 // obs: <= 0 disables the check
	}
	return v
}

// JobSpec describes one discovery job. It is the JSON body of
// POST /v1/jobs.
type JobSpec struct {
	// Store names the target store (single-store discovery).
	Store string `json:"store,omitempty"`
	// Stores names several stores for a federated fleet job: each is
	// discovered and the skylines are merged into one global Pareto
	// frontier. Mutually exclusive with Store; fleet jobs are not
	// resumable.
	Stores []string `json:"stores,omitempty"`
	// Algo picks the algorithm: "auto" (default, dispatch on the
	// interface mixture), "sq", "rq", "pq" or "mq". Resumable jobs
	// always run the checkpointable SQ session walk.
	Algo string `json:"algo,omitempty"`
	// Budget bounds the job's total counted queries (0 = unlimited).
	// For resumable jobs it spans restarts; for fleet jobs it is the
	// fleet-wide upstream-query budget.
	Budget int `json:"budget,omitempty"`
	// Parallelism is the run's worker bound (single-store jobs) or the
	// number of concurrently discovered stores (fleet jobs).
	Parallelism int `json:"parallelism,omitempty"`
	// UseCache routes the job's queries through the manager's shared
	// memoizing cache (no-op when the manager has none).
	UseCache bool `json:"use_cache,omitempty"`
	// Resumable runs the job as a checkpointed core.Session: its state
	// is written to the snapshot store every CheckpointEvery queries, so
	// a killed daemon resumes it with exact query accounting. Requires
	// an interface whose attributes all support one-ended ranges (SQ or
	// RQ capabilities).
	Resumable bool `json:"resumable,omitempty"`
	// CheckpointEvery overrides the manager's checkpoint interval for
	// this job (<= 0: manager default).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Band, when > 0, discovers the K-skyband instead of the skyline
	// (§7.2): the job's answer index then serves exact top-k for any
	// monotone user ranking up to k = Band. Band jobs are single-store
	// and not resumable; Algo picks the band variant ("auto" dispatches
	// on the interface mixture).
	Band int `json:"band,omitempty"`
	// Where is a conjunctive filter ("A0<500,A2>=3"; see query.Parse):
	// the job discovers the skyline (or K-skyband) of the matching
	// subset only (§2.1). It composes with Algo, Band and Resumable
	// (resubmit a resumable job with the same filter), and fleet jobs
	// apply it to every store. Each predicate's operator must be
	// supported by the target interface; violations are rejected at
	// submit. Filtered jobs do not feed the store's materialized answer
	// index, which serves whole-store rankings.
	Where string `json:"where,omitempty"`
}

// request compiles the spec's discovery fields into the planner's
// input. The session (for resumable jobs) is attached by the executor.
func (spec JobSpec) request() (core.Request, error) {
	filter, err := query.Parse(spec.Where)
	if err != nil {
		return core.Request{}, fmt.Errorf("service: bad where filter: %w", err)
	}
	algo, err := core.ParseAlgo(spec.Algo)
	if err != nil {
		return core.Request{}, fmt.Errorf("service: %w", err)
	}
	return core.Request{Algo: algo, Band: spec.Band, Filter: filter, Resumable: spec.Resumable}, nil
}

// planSummary renders the spec's discovery plan for log lines: the
// algorithm and every option that shapes the run.
func (spec JobSpec) planSummary() string {
	var b strings.Builder
	algo := spec.Algo
	if algo == "" {
		algo = "auto"
	}
	fmt.Fprintf(&b, "algo=%s", algo)
	if spec.Band > 0 {
		fmt.Fprintf(&b, " band=%d", spec.Band)
	}
	if spec.Where != "" {
		fmt.Fprintf(&b, " where=%q", spec.Where)
	}
	if spec.Budget > 0 {
		fmt.Fprintf(&b, " budget=%d", spec.Budget)
	}
	if spec.Parallelism > 1 {
		fmt.Fprintf(&b, " parallelism=%d", spec.Parallelism)
	}
	if spec.Resumable {
		b.WriteString(" resumable")
	}
	if spec.UseCache {
		b.WriteString(" cached")
	}
	return b.String()
}

// storeLabel names the job's target for log lines (fleet jobs join
// their store list).
func (spec JobSpec) storeLabel() string {
	if len(spec.Stores) > 0 {
		return strings.Join(spec.Stores, ",")
	}
	return spec.Store
}

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle: queued -> running -> done | failed | cancelled. A
// manager shutdown moves running jobs back to queued in the snapshot
// store, from where Recover re-enqueues them.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is a job's externally visible state, as served by the HTTP
// API and streamed over SSE.
type JobStatus struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// TraceID is the job's correlation id, assigned at submit and
	// carried through every lifecycle log line, SSE progress event and
	// GET response — grep the daemon log for it to follow one job
	// submit → plan → discovery → index publish.
	TraceID string `json:"trace_id,omitempty"`
	// Phase is the job's current lifecycle phase (submit → start →
	// discover → publish → done / failed / cancelled, or queued while
	// parked). It rides every SSE event, so a stream consumer sees the
	// transitions in order; the same label stamps the spans recorded
	// during the phase.
	Phase string `json:"phase,omitempty"`
	// Queries counts the job's queries so far (cumulative across
	// restarts for resumable jobs; upstream queries for fleet jobs
	// until the final, algorithm-counted total replaces it).
	Queries int `json:"queries"`
	// Skyline is the current candidate-skyline (or fleet frontier) size.
	Skyline int `json:"skyline"`
	// BudgetRemaining is Spec.Budget minus Queries, or -1 when the job
	// is unbudgeted.
	BudgetRemaining int `json:"budget_remaining"`
	// Complete is true once the skyline is provably exact and complete.
	Complete bool `json:"complete"`
	// Restarts counts how many times the job was recovered from the
	// snapshot store.
	Restarts int    `json:"restarts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Tuples holds the final skyline once the job is terminal.
	Tuples [][]int `json:"tuples,omitempty"`

	SubmittedAt time.Time `json:"submitted_at,omitzero"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// clone returns a copy safe to hand out (tuples are never mutated after
// discovery, so sharing the slices is fine) with derived fields filled.
func (st JobStatus) clone() JobStatus {
	if st.Spec.Budget > 0 {
		st.BudgetRemaining = st.Spec.Budget - st.Queries
		if st.BudgetRemaining < 0 {
			st.BudgetRemaining = 0
		}
	} else {
		st.BudgetRemaining = -1
	}
	return st
}

// job is the manager-internal job record.
type job struct {
	mu         sync.Mutex
	status     JobStatus
	session    *core.Session // resumable jobs only
	cancel     context.CancelFunc
	cancelled  bool // Cancel was requested by a client
	parked     bool // manager shutdown: leave the job resumable
	retryMark  int  // query count at the last rate-limit park
	noProgress int  // consecutive rate-limit retries with no new queries
	subs       map[chan JobStatus]struct{}
	tracer     *obs.Tracer // created on first run; reused across retries
}

// set applies f under the job lock and notifies watchers. The fan-out
// happens inside the same critical section, so concurrent updates reach
// subscribers in mutation order (a live counter never appears to move
// backwards on the stream).
func (j *job) set(f func(*JobStatus)) {
	j.mu.Lock()
	f(&j.status)
	j.notifyLocked(j.status.clone())
	j.mu.Unlock()
}

// snapshotStatus returns the current status copy.
func (j *job) snapshotStatus() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.clone()
}

// notify fans st out to the subscribers (dropping updates a slow
// subscriber has no room for) and, when st is terminal, closes every
// subscription: a closed watch channel means "read the final status
// with Get".
func (j *job) notify(st JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.notifyLocked(st)
}

// notifyLocked is notify for callers already holding j.mu.
func (j *job) notifyLocked(st JobStatus) {
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
	if st.State.Terminal() {
		for ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
}

// Manager runs discovery jobs against named stores.
type Manager struct {
	cfg     Config
	cache   *qcache.Cache
	snaps   *snapshotStore // nil: no persistence
	reg     *obs.Registry
	met     *managerMetrics
	log     *slog.Logger
	spans   *obs.SpanStore    // per-job span trees, bounded ring
	sampler *obs.Sampler      // time-series rings over reg
	health  *obs.HealthRollup // ready/degraded/unready rollup

	mu       sync.Mutex
	stores   map[string]core.Interface
	breakers map[string]*breaker     // per-store circuit (nil entries: disabled)
	answers  map[string]*answerEntry // per-store hot-swapped answer index
	jobs     map[string]*job
	order    []string // listing order (ids, ascending)
	queue    []string // FIFO of queued job ids
	running  int
	seq      int
	closed   bool
	wg       sync.WaitGroup
}

// NewManager builds a manager (creating the snapshot directory when
// configured). Register stores with AddStore, then call Recover to
// re-enqueue what a previous process left behind.
func NewManager(cfg Config) (*Manager, error) {
	m := &Manager{
		cfg:      cfg,
		stores:   map[string]core.Interface{},
		breakers: map[string]*breaker{},
		answers:  map[string]*answerEntry{},
		jobs:     map[string]*job{},
		log:      cfg.Logger,
	}
	if m.log == nil {
		m.log = obs.Nop()
	}
	m.reg = obs.NewRegistry()
	m.met = newManagerMetrics(m.reg)
	m.spans = obs.NewSpanStore(cfg.SpanBuffer)
	if cfg.CacheSize != 0 {
		m.cache = qcache.New(qcache.Config{MaxEntries: cfg.CacheSize})
	}
	m.registerManagerFuncs()
	obs.RegisterRuntime(m.reg)
	m.sampler = obs.NewSampler(m.reg, obs.SamplerConfig{
		Interval:  cfg.SampleInterval,
		Retention: cfg.SampleRetention,
	})
	m.registerHealthChecks()
	if cfg.SnapshotDir != "" {
		s, err := newSnapshotStore(cfg.SnapshotDir)
		if err != nil {
			return nil, err
		}
		m.snaps = s
	} else {
		// Without a snapshot store there is nothing to recover: the
		// readiness gate opens immediately. With one, it stays closed
		// until Recover has replayed the snapshots and rebuilt the
		// answer indexes.
		m.health.SetReady()
	}
	m.sampler.Start()
	return m, nil
}

// CacheStats returns the shared cache's counters (zero when the manager
// has no cache).
func (m *Manager) CacheStats() qcache.Stats {
	if m.cache == nil {
		return qcache.Stats{}
	}
	return m.cache.Stats()
}

func (m *Manager) maxConcurrent() int {
	if m.cfg.MaxConcurrent > 0 {
		return m.cfg.MaxConcurrent
	}
	return 2
}

// AddStore registers a named store. Remote stores are *web.Client
// values: the manager hands each job a context-bound view so cancelling
// the job stops its upstream requests.
func (m *Manager) AddStore(name string, db core.Interface) error {
	if name == "" || db == nil {
		return fmt.Errorf("service: store needs a name and a database")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.stores[name]; dup {
		return fmt.Errorf("service: store %q already registered", name)
	}
	m.stores[name] = db
	if th := m.breakerThreshold(); th > 0 {
		b := newBreaker(th, m.breakerCooldown())
		m.breakers[name] = b
		m.reg.GaugeFunc(`circuit_state{store="`+name+`"}`,
			"store circuit state (0 closed, 1 half-open, 2 open)",
			func() float64 { return float64(b.stateAt(time.Now())) })
	}
	e := &answerEntry{}
	if m.cfg.BatchWindow > 0 {
		e.co = newTopkCoalescer(m)
	}
	m.answers[name] = e
	m.instrumentStore(name, db)
	return nil
}

func (m *Manager) breakerThreshold() int {
	switch {
	case m.cfg.BreakerThreshold > 0:
		return m.cfg.BreakerThreshold
	case m.cfg.BreakerThreshold < 0:
		return 0 // disabled
	}
	return 3
}

func (m *Manager) breakerCooldown() time.Duration {
	if m.cfg.BreakerCooldown > 0 {
		return m.cfg.BreakerCooldown
	}
	return 30 * time.Second
}

// storeBreaker returns the store's circuit (nil when breakers are
// disabled or the job is a fleet job, which aggregates many stores).
func (m *Manager) storeBreaker(store string) *breaker {
	if store == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.breakers[store]
}

// StoreNames lists the registered stores, sorted.
func (m *Manager) StoreNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.stores))
	for n := range m.stores {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (m *Manager) lookupStore(name string) (core.Interface, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	db, ok := m.stores[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStore, name)
	}
	return db, nil
}

// Submit validates and enqueues a job, starting it immediately when a
// concurrency slot is free.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	if err := m.validate(&spec); err != nil {
		return JobStatus{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("j%06d", m.seq)
	j := &job{status: JobStatus{
		ID:          id,
		Spec:        spec,
		State:       StateQueued,
		TraceID:     obs.NewTraceID(),
		Phase:       "submit",
		SubmittedAt: time.Now().UTC(),
	}}
	m.jobs[id] = j
	m.order = append(m.order, id)
	st := j.status.clone()
	m.mu.Unlock()
	m.met.jobsSubmitted.Inc()
	m.log.Info("job submitted",
		"job_id", id, "trace_id", st.TraceID,
		"store", spec.storeLabel(), "plan", spec.planSummary())
	// Persist outside the manager lock (snapshot writes hit the disk) but
	// before enqueueing: the run goroutine's snapshots must come later.
	m.persist(j)
	m.mu.Lock()
	m.queue = append(m.queue, id)
	m.schedule()
	m.mu.Unlock()
	return st, nil
}

func (m *Manager) validate(spec *JobSpec) error {
	if (spec.Store == "") == (len(spec.Stores) == 0) {
		return fmt.Errorf("service: a job names exactly one of store or stores")
	}
	if spec.Budget < 0 || spec.Parallelism < 0 || spec.Band < 0 {
		return fmt.Errorf("service: budget, parallelism and band must be >= 0")
	}
	if len(spec.Stores) > 0 {
		if spec.Resumable {
			return fmt.Errorf("service: fleet jobs are not resumable")
		}
		if spec.Band > 0 {
			return fmt.Errorf("service: band jobs target a single store")
		}
	}
	req, err := spec.request()
	if err != nil {
		return err
	}
	names := spec.Stores
	if spec.Store != "" {
		names = []string{spec.Store}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range names {
		db, ok := m.stores[n]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownStore, n)
		}
		// Compile (and discard) the plan at submit time: an algorithm /
		// band / filter combination the store's interface cannot satisfy
		// is a client error now, not a failed job later.
		if _, err := core.Plan(db, req); err != nil {
			return fmt.Errorf("service: store %q: %w", n, err)
		}
	}
	return nil
}

// Get returns a job's status.
func (m *Manager) Get(id string) (JobStatus, bool) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return JobStatus{}, false
	}
	return j.snapshotStatus(), true
}

// List returns every known job, in submission (id) order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshotStatus()
	}
	return out
}

// Result returns a terminal job's skyline tuples.
func (m *Manager) Result(id string) ([][]int, error) {
	st, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if !st.State.Terminal() {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotFinished, id, st.State)
	}
	return st.Tuples, nil
}

// Cancel aborts a job. A queued job is cancelled immediately; a running
// job stops issuing upstream queries promptly (its context is
// cancelled) and finishes with its partial skyline. Cancelling a
// terminal job is a no-op.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	st := j.status.State
	var cancel context.CancelFunc
	switch st {
	case StateQueued:
		j.cancelled = true
		j.status.State = StateCancelled
		j.status.Error = "cancelled while queued"
		j.status.FinishedAt = time.Now().UTC()
	case StateRunning:
		j.cancelled = true
		cancel = j.cancel
	}
	out := j.status.clone()
	j.mu.Unlock()
	if st == StateQueued {
		j.notify(out)
		m.persist(j)
	}
	if cancel != nil {
		cancel()
	}
	return out, nil
}

// Watch subscribes to a job's status updates. The returned channel
// receives the current status immediately, then every change; it is
// closed when the job reaches a terminal state (fetch the final status
// with Get). Call stop to unsubscribe early.
func (m *Manager) Watch(id string) (<-chan JobStatus, func(), error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	ch := make(chan JobStatus, 16)
	j.mu.Lock()
	st := j.status.clone()
	if st.State.Terminal() {
		j.mu.Unlock()
		ch <- st
		close(ch)
		return ch, func() {}, nil
	}
	if j.subs == nil {
		j.subs = map[chan JobStatus]struct{}{}
	}
	j.subs[ch] = struct{}{}
	ch <- st // under j.mu: the empty 16-slot buffer cannot block, and
	// notify (which closes ch on a terminal update) is serialized behind
	// the same lock, so the send cannot race the close.
	j.mu.Unlock()
	stop := func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
	return ch, stop, nil
}

// schedule starts queued jobs while concurrency slots are free. Callers
// hold m.mu.
func (m *Manager) schedule() {
	for !m.closed && m.running < m.maxConcurrent() && len(m.queue) > 0 {
		id := m.queue[0]
		m.queue = m.queue[1:]
		j := m.jobs[id]
		if j == nil || j.snapshotStatus().State != StateQueued {
			continue // cancelled while waiting
		}
		m.running++
		m.wg.Add(1)
		go m.run(j)
	}
}

// run executes one job to a terminal state (or parks it resumable when
// the manager shuts down mid-run).
func (m *Manager) run(j *job) {
	defer m.wg.Done()
	if m.gateCircuit(j) {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	j.mu.Lock()
	// Bail out if the job was cancelled in the gap, or the manager began
	// shutting down between schedule() and here (Close parks every
	// non-terminal job, including ones whose goroutine has not started).
	if j.status.State != StateQueued || j.parked {
		j.mu.Unlock()
		m.release()
		return
	}
	j.cancel = cancel
	j.status.State = StateRunning
	j.status.Error = "" // drop any retry note from a previous attempt
	j.status.StartedAt = time.Now().UTC()
	j.status.Phase = "start"
	if j.tracer == nil {
		// One tracer per job, created on the first attempt and reused
		// across rate-limit retries, so the whole multi-attempt history
		// lives under one trace id.
		j.tracer = m.spans.Tracer(j.status.TraceID)
	}
	tr := j.tracer
	st := j.status.clone()
	j.mu.Unlock()
	tr.SetPhase("start")
	j.notify(st)
	m.persist(j)
	m.log.Info("job started",
		"job_id", st.ID, "trace_id", st.TraceID,
		"store", st.Spec.storeLabel(), "plan", st.Spec.planSummary())

	// The root span covers one attempt end to end (a parked-and-retried
	// job records one root per attempt under the same trace).
	root := tr.Start("job", 0)
	root.SetStr("store", st.Spec.storeLabel())
	oc := m.execute(ctx, j, tr, root.ID())
	m.finish(j, oc, tr, root.ID())
	final := j.snapshotStatus()
	root.SetStr("state", string(final.State))
	root.SetInt("queries", int64(final.Queries))
	root.SetInt("skyline", int64(final.Skyline))
	root.End()
	m.release()
}

// gateCircuit parks a queued job while its store's circuit is open:
// the job stays queued without spending a single upstream query and is
// re-queued for when the cooldown ends. Returns true when the job was
// parked (the concurrency slot has been released).
func (m *Manager) gateCircuit(j *job) bool {
	st := j.snapshotStatus()
	if st.State != StateQueued {
		return false
	}
	b := m.storeBreaker(st.Spec.Store)
	if b == nil {
		return false
	}
	ok, wait := b.allow(time.Now())
	if ok {
		return false
	}
	j.set(func(s *JobStatus) { s.Error = "upstream circuit open; parked" })
	m.met.jobsParkedCircuit.Inc()
	m.log.Warn("job parked (store circuit open)",
		"job_id", st.ID, "trace_id", st.TraceID, "store", st.Spec.Store, "wait", wait)
	m.requeueAfter(st.ID, wait)
	m.release()
	return true
}

// setPhase publishes a lifecycle phase: new spans get stamped with it,
// and the job status (hence every SSE event) carries it.
func (m *Manager) setPhase(j *job, tr *obs.Tracer, phase string) {
	tr.SetPhase(phase)
	j.set(func(st *JobStatus) { st.Phase = phase })
}

// release returns a concurrency slot and pulls the next queued job.
func (m *Manager) release() {
	m.mu.Lock()
	m.running--
	m.schedule()
	m.mu.Unlock()
}

// outcome is what a job execution produced.
type outcome struct {
	tuples   [][]int
	queries  int
	complete bool
	// band is the skyband level of tuples (0 or 1: a plain skyline).
	band int
	err  error
}

// execute runs the job's discovery. While a job is running, only its
// own goroutine persists it (via the session checkpoint hook), so the
// serialized session is never read while being mutated. All algorithm
// dispatch lives in the core planner: the manager only compiles the
// spec into a core.Request and hands it to core.Run.
func (m *Manager) execute(ctx context.Context, j *job, tr *obs.Tracer, root uint64) outcome {
	spec := j.snapshotStatus().Spec
	m.setPhase(j, tr, "discover")
	if len(spec.Stores) > 0 {
		return m.executeFleet(ctx, j, spec, tr, root)
	}
	registered, err := m.lookupStore(spec.Store)
	if err != nil {
		return outcome{err: err}
	}
	db := registered
	if wc, ok := db.(*web.Client); ok {
		db = wc.WithContext(ctx).WithTrace(tr, root)
	}
	if spec.UseCache && m.cache != nil {
		// Key the shared cache by the registered store, not the per-job
		// context-bound view: every job (and every restart) against the
		// same store hits one warm keyspace. The traced handle shares
		// that keyspace — it only adds span recording.
		db = m.cache.WrapAs(registered, db).WithTracer(tr, root)
	}
	req, err := spec.request()
	if err != nil {
		return outcome{err: err}
	}
	opt := core.Options{Parallelism: spec.Parallelism, Ctx: ctx, PoolMetrics: m.met.pool,
		Tracer: tr, TraceParent: root}
	if req.Resumable {
		return m.executeSession(j, db, spec, req, opt)
	}
	opt.MaxQueries = spec.Budget
	opt.Progress = progressSink(j, 0)
	res, err := core.Run(db, req, opt)
	return outcome{tuples: res.Skyline, queries: res.Queries, complete: res.Complete, band: res.Band, err: err}
}

// executeSession runs (or continues) the job's checkpointed SQ session
// through the planner (req.Session carries the checkpoint into
// core.Run). The manager owns the cross-restart budget arithmetic and
// the persistence hooks; the walk itself is core's.
func (m *Manager) executeSession(j *job, db core.Interface, spec JobSpec, req core.Request, opt core.Options) outcome {
	j.mu.Lock()
	req.Session = j.session
	j.mu.Unlock()
	plan, err := core.Plan(db, req)
	if err != nil {
		return outcome{err: err}
	}
	// The plan owns session construction: a fresh session is rooted at
	// the (possibly filter-shrunk) view's domains and pinned to the
	// job's filter, so a filtered walk never explores the unfiltered
	// box and a recovered checkpoint cannot resume under the wrong
	// filter.
	sess := plan.Session()
	j.mu.Lock()
	j.session = sess
	j.mu.Unlock()

	base := sess.Queries
	if spec.Budget > 0 {
		remaining := spec.Budget - base
		if remaining <= 0 {
			return outcome{tuples: sess.Skyline, queries: base, complete: sess.Done(), err: core.ErrBudget}
		}
		opt.MaxQueries = remaining
	}
	every := spec.CheckpointEvery
	if every <= 0 {
		every = m.cfg.CheckpointEvery
	}
	sess.CheckpointEvery = every
	sess.OnCheckpoint = func(s *core.Session) error {
		j.set(func(st *JobStatus) { st.Queries = s.Queries; st.Skyline = len(s.Skyline) })
		m.persist(j)
		return nil
	}
	defer func() { sess.OnCheckpoint = nil }()
	opt.Progress = progressSink(j, base)
	res, err := plan.Run(opt)
	return outcome{tuples: res.Skyline, queries: res.Queries, complete: res.Complete, err: err}
}

// progressSink folds a run's progress events into the job status.
// Under Parallelism > 1 concurrent workers may deliver events out of
// order, so stale events (a lower query count than already recorded)
// are dropped — the published counter never goes backwards.
func progressSink(j *job, base int) func(core.ProgressEvent) {
	return func(ev core.ProgressEvent) {
		j.set(func(st *JobStatus) {
			if q := base + ev.Queries; q > st.Queries {
				st.Queries = q
				st.Skyline = ev.Skyline
			}
		})
	}
}

// countingDB bumps the job's query counter for every answered upstream
// query of a fleet job.
type countingDB struct {
	core.Interface
	j *job
}

func (c countingDB) Query(q query.Q) (hidden.Result, error) {
	res, err := c.Interface.Query(q)
	if err == nil {
		c.j.set(func(st *JobStatus) { st.Queries++ })
	}
	return res, err
}

// executeFleet runs a federated fleet job: every named store is
// discovered (at most Parallelism at once) under one fleet-wide budget,
// and the skylines merge into the global Pareto frontier.
func (m *Manager) executeFleet(ctx context.Context, j *job, spec JobSpec, tr *obs.Tracer, root uint64) outcome {
	req, err := spec.request()
	if err != nil {
		return outcome{err: err}
	}
	// The layering below mirrors DiscoverFleet's own Cache/GlobalBudget
	// handling (budget gate beneath the cache, so cached hits consume no
	// budget), but is built here so the cache keyspace is the registered
	// store — shared across jobs — instead of a per-job wrapper, and so
	// the counting wrapper sees exactly the queries that reach upstream.
	// The shared gauge tracks live consumption across concurrent fleet
	// jobs: this job's contribution is withdrawn once its run is over.
	budget := engine.NewBudget(spec.Budget).Instrument(m.met.budgetUsed)
	defer func() { m.met.budgetUsed.Add(-int64(budget.Used())) }()
	stores := make([]federate.Store, len(spec.Stores))
	for i, name := range spec.Stores {
		registered, err := m.lookupStore(name)
		if err != nil {
			return outcome{err: err}
		}
		db := registered
		if wc, ok := db.(*web.Client); ok {
			db = wc.WithContext(ctx).WithTrace(tr, root)
		}
		db = countingDB{Interface: db, j: j}
		if spec.Budget > 0 {
			db = engine.Limit(db, budget)
		}
		if spec.UseCache && m.cache != nil {
			db = m.cache.WrapAs(registered, db).WithTracer(tr, root)
		}
		stores[i] = federate.Store{Name: name, DB: db}
	}
	fo := federate.FleetOptions{
		MaxStores: spec.Parallelism,
		Request:   req,
		OnStoreDone: func(i int, st federate.StoreStats) {
			j.set(func(js *JobStatus) { js.Skyline += st.Skyline })
		},
	}
	fres, err := federate.DiscoverFleet(stores, core.Options{Ctx: ctx, PoolMetrics: m.met.pool,
		Tracer: tr, TraceParent: root}, fo)
	if err != nil {
		// Keep the live upstream-query count countingDB accumulated: a
		// hard store failure must not erase what the fleet already spent.
		return outcome{err: err, queries: j.snapshotStatus().Queries}
	}
	tuples := make([][]int, len(fres.Frontier))
	for i, o := range fres.Frontier {
		tuples[i] = o.Tuple
	}
	return outcome{tuples: tuples, queries: fres.Queries, complete: fres.Complete}
}

// maxNoProgressRetries bounds how many consecutive rate-limit retries
// may pass without a single new query before a resumable job gives up
// (the upstream quota is evidently not replenishing).
const maxNoProgressRetries = 5

// finish folds an execution outcome into the job's terminal (or parked)
// state and persists it.
func (m *Manager) finish(j *job, oc outcome, tr *obs.Tracer, root uint64) {
	m.setPhase(j, tr, "publish")
	// Compile the answer index before the job turns terminal and swap it
	// in inside the same critical section that publishes the terminal
	// state: any observer that sees the job done sees its answers live.
	// (The handle is fetched under m.mu first — m.mu is never taken
	// while holding j.mu.)
	var built *answer.Store
	var entry *answerEntry
	var buildDur time.Duration
	if spec := j.snapshotStatus().Spec; oc.err == nil && oc.complete &&
		publishableAnswer(spec, oc.tuples) {
		bandK := oc.band
		if bandK <= 0 {
			bandK = 1
		}
		// Building is best-effort: a failure leaves the previous index
		// serving.
		sp := tr.Start("answer.build", root)
		sp.SetInt("tuples", int64(len(oc.tuples)))
		t0 := time.Now()
		if s, err := answer.Build(oc.tuples, answer.Options{BandK: bandK}); err == nil {
			buildDur = time.Since(t0)
			s.SetMetrics(m.met.answerShared)
			built = s
			m.mu.Lock()
			entry = m.answers[spec.Store]
			m.mu.Unlock()
			sp.End()
		} else {
			sp.Rename("answer.build_failed")
			sp.End()
		}
	}
	j.mu.Lock()
	j.cancel = nil
	st := &j.status
	st.Queries = oc.queries
	st.Skyline = len(oc.tuples)
	st.Complete = oc.err == nil && oc.complete
	st.FinishedAt = time.Now().UTC()
	requeue := false
	var requeueDelay time.Duration
	switch {
	case oc.err == nil && oc.complete:
		st.State = StateDone
		st.Tuples = oc.tuples
	case j.cancelled:
		st.State = StateCancelled
		st.Tuples = oc.tuples
		st.Error = "cancelled"
	case j.parked:
		// Manager shutdown: back to queued so the snapshot store hands
		// the job to the next process. Resumable jobs continue from
		// their checkpoint; others restart from scratch.
		st.State = StateQueued
		st.FinishedAt = time.Time{}
		st.Error = ""
	case m.shouldRetry(j, oc):
		// Upstream quota or outage (not the job's own budget)
		// interrupted a resumable run: the checkpoint must not be
		// orphaned. Park the job and retry once the upstream has had
		// time to recover — the multi-day-quota story, daemon edition.
		// Consecutive no-progress retries back off exponentially.
		requeue = true
		requeueDelay = m.retryDelayFor(j.noProgress)
		st.State = StateQueued
		st.FinishedAt = time.Time{}
		if errors.Is(oc.err, hidden.ErrRateLimited) {
			st.Error = "upstream rate limited; retrying"
		} else {
			st.Error = "upstream unavailable; retrying"
		}
	case oc.err == nil || errors.Is(oc.err, core.ErrBudget):
		// The run ended cleanly but incompletely (a store or the job
		// itself exhausted its budget, or rate-limit retries stopped
		// making progress): the partial skyline is the paper's anytime
		// result, surfaced as done-but-incomplete. A resumable job's
		// session stays in the snapshot, so a resubmitted job could
		// still continue it by hand.
		st.State = StateDone
		st.Tuples = oc.tuples
		switch {
		case oc.err == nil:
		case errors.Is(oc.err, hidden.ErrRateLimited):
			st.Error = "upstream rate limited"
		default:
			st.Error = "query budget exhausted"
		}
	default:
		st.State = StateFailed
		st.Tuples = oc.tuples
		st.Error = oc.err.Error()
	}
	published := false
	if built != nil && entry != nil && st.State == StateDone {
		published = entry.publish(built, st.ID)
	}
	// The terminal phase is published in the same critical section as
	// the terminal state: an SSE consumer sees phase "done" exactly
	// when it sees state done.
	if st.State.Terminal() {
		st.Phase = string(st.State)
	} else {
		st.Phase = "queued" // parked (shutdown) or rate-limit retry
	}
	tr.SetPhase(st.Phase)
	out := j.status.clone()
	j.mu.Unlock()
	j.notify(out)
	m.recordCircuit(out, oc)
	m.persist(j)
	if published {
		m.persistAnswer(out, built)
	}
	m.observeFinish(out, requeue, published, buildDur)
	if requeue {
		m.requeueAfter(out.ID, requeueDelay)
	}
}

// recordCircuit folds a single-store job's ending into the store's
// circuit breaker: upstream failures (rate limited, transiently
// unavailable) count against it, clean endings close it. Jobs the
// client cancelled or the shutdown parked say nothing about the store.
func (m *Manager) recordCircuit(st JobStatus, oc outcome) {
	b := m.storeBreaker(st.Spec.Store)
	if b == nil {
		return
	}
	switch {
	case errors.Is(oc.err, hidden.ErrRateLimited) || errors.Is(oc.err, retry.ErrUnavailable):
		if d := b.onFailure(time.Now()); d > 0 {
			m.met.circuitOpens.Inc()
			m.log.Warn("store circuit opened",
				"job_id", st.ID, "trace_id", st.TraceID, "store", st.Spec.Store,
				"cooldown", d)
		}
	case oc.err == nil || errors.Is(oc.err, core.ErrBudget):
		b.onSuccess()
	}
}

// persistAnswer writes the freshly published index's binary columnar
// snapshot next to the job's JSON snapshot, so the next process
// recovers this store's answers by decoding arenas instead of
// re-running Build. Best-effort like persist: the JSON snapshot stays
// the durable source of truth, and a failed (or missing) binary only
// costs the fallback re-index at recovery.
func (m *Manager) persistAnswer(st JobStatus, built *answer.Store) {
	if m.snaps == nil || built == nil {
		return
	}
	if err := m.snaps.saveAnswer(st.ID, built.AppendBinary(nil)); err != nil {
		m.log.Warn("binary answer snapshot not written",
			"job_id", st.ID, "trace_id", st.TraceID, "store", st.Spec.Store, "error", err)
		return
	}
	m.log.Info("binary answer snapshot written",
		"job_id", st.ID, "trace_id", st.TraceID, "store", st.Spec.Store,
		"tuples", built.Len())
}

// observeFinish folds one execution's ending into the metrics and the
// structured log: terminal counters, job duration/queries, index-swap
// accounting, and one lifecycle line per ending (errors carry the job
// id, store and plan summary so a failure is diagnosable from the log
// alone).
func (m *Manager) observeFinish(st JobStatus, requeued, published bool, buildDur time.Duration) {
	attrs := []any{
		"job_id", st.ID, "trace_id", st.TraceID,
		"store", st.Spec.storeLabel(), "plan", st.Spec.planSummary(),
		"queries", st.Queries, "skyline", st.Skyline,
	}
	if st.State.Terminal() && !st.StartedAt.IsZero() {
		m.met.jobSeconds.Observe(st.FinishedAt.Sub(st.StartedAt))
		m.met.jobQueries.Add(int64(st.Queries))
		attrs = append(attrs, "duration", st.FinishedAt.Sub(st.StartedAt))
	}
	switch {
	case requeued:
		m.met.jobsRetried.Inc()
		m.log.Warn("job parked for retry (upstream interrupted)", append(attrs, "note", st.Error)...)
		return
	case st.State == StateDone:
		m.met.jobsDone.Inc()
		if st.Error != "" {
			attrs = append(attrs, "note", st.Error)
		}
		m.log.Info("job done", append(attrs, "complete", st.Complete)...)
	case st.State == StateFailed:
		m.met.jobsFailed.Inc()
		m.log.Error("job failed", append(attrs, "error", st.Error)...)
	case st.State == StateCancelled:
		m.met.jobsCancelled.Inc()
		m.log.Info("job cancelled", attrs...)
	default: // parked by shutdown, back to queued
		m.log.Info("job parked by shutdown", "job_id", st.ID, "trace_id", st.TraceID)
	}
	if published {
		m.met.indexSwaps.Inc()
		m.met.indexBuild.Observe(buildDur)
		m.log.Info("answer index published",
			"job_id", st.ID, "trace_id", st.TraceID, "store", st.Spec.Store,
			"tuples", st.Skyline, "build", buildDur)
	}
}

// shouldRetry reports whether the outcome is a recoverable upstream
// interruption (rate limit or transient outage) a resumable job should
// park-and-retry for. Caller holds j.mu.
func (m *Manager) shouldRetry(j *job, oc outcome) bool {
	st := &j.status
	if !st.Spec.Resumable {
		return false
	}
	if !errors.Is(oc.err, hidden.ErrRateLimited) && !errors.Is(oc.err, retry.ErrUnavailable) {
		return false
	}
	if st.Spec.Budget > 0 && oc.queries >= st.Spec.Budget {
		return false // the job's own budget is what ran out
	}
	if oc.queries > j.retryMark {
		j.noProgress = 0
	} else {
		j.noProgress++
	}
	j.retryMark = oc.queries
	return j.noProgress < maxNoProgressRetries
}

func (m *Manager) retryDelay() time.Duration {
	if m.cfg.RetryDelay > 0 {
		return m.cfg.RetryDelay
	}
	return 15 * time.Second
}

func (m *Manager) maxRetryDelay() time.Duration {
	if m.cfg.MaxRetryDelay > 0 {
		return m.cfg.MaxRetryDelay
	}
	return 8 * m.retryDelay()
}

// retryDelayFor escalates the park-and-retry delay with consecutive
// no-progress retries: base << n, capped at MaxRetryDelay.
func (m *Manager) retryDelayFor(noProgress int) time.Duration {
	d, lim := m.retryDelay(), m.maxRetryDelay()
	if noProgress > 16 {
		noProgress = 16
	}
	d <<= noProgress
	if d > lim || d <= 0 {
		d = lim
	}
	return d
}

// requeueAfter puts the job back on the FIFO queue once the retry delay
// has passed (no-op when the manager has closed — the snapshot already
// records the job as queued for the next process).
func (m *Manager) requeueAfter(id string, d time.Duration) {
	time.AfterFunc(d, func() {
		m.mu.Lock()
		if !m.closed {
			m.queue = append(m.queue, id)
			m.schedule()
		}
		m.mu.Unlock()
	})
}

// persist writes the job to the snapshot store (no-op without one).
// While a job runs, only its own goroutine calls persist, so the
// session is never serialized mid-mutation.
func (m *Manager) persist(j *job) {
	if m.snaps == nil {
		return
	}
	j.mu.Lock()
	snap := jobSnapshot{Status: j.status.clone(), Session: j.session}
	j.mu.Unlock()
	_ = m.snaps.save(snap) // persistence is best-effort; serving goes on
}

// Recover loads the snapshot store and re-enqueues every job a previous
// process left queued or running. Resumable jobs continue from their
// checkpointed session with exact query accounting; others restart from
// scratch. Terminal jobs are loaded for listing and result serving.
// Call it after registering the stores; it returns how many jobs were
// re-enqueued.
func (m *Manager) Recover() (int, error) {
	if m.snaps == nil {
		return 0, nil
	}
	snaps, err := m.snaps.load()
	if err != nil {
		return 0, err
	}
	resumed := 0
	m.mu.Lock()
	for _, sn := range snaps {
		st := sn.Status
		if st.ID == "" {
			continue
		}
		if _, dup := m.jobs[st.ID]; dup {
			continue
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(st.ID, "j")); err == nil && n > m.seq {
			m.seq = n
		}
		j := &job{status: st, session: sn.Session}
		m.jobs[st.ID] = j
		m.order = append(m.order, st.ID)
		if st.State.Terminal() {
			continue
		}
		j.status.State = StateQueued
		j.status.Restarts++
		j.status.Error = ""
		j.status.StartedAt = time.Time{}
		if sn.Session != nil {
			j.status.Queries = sn.Session.Queries
			j.status.Skyline = len(sn.Session.Skyline)
		} else {
			j.status.Queries = 0
			j.status.Skyline = 0
		}
		m.queue = append(m.queue, st.ID)
		resumed++
	}
	sort.Strings(m.order)
	// Serve answers again before any re-enqueued job runs: the latest
	// complete result per store is compiled straight from its snapshot.
	m.rebuildAnswersLocked()
	m.schedule()
	m.mu.Unlock()
	// The readiness gate opens exactly here: every snapshot has been
	// replayed and the last answer index rebuilt, so GET /readyz flips
	// from 503 to 200 the moment recovered results are servable.
	m.health.SetReady()
	return resumed, nil
}

// Health summarizes the manager for monitoring.
type Health struct {
	Stores []string `json:"stores"`
	// Answers lists the stores whose answer index is loaded and serving.
	Answers []string `json:"answers"`
	Jobs    int      `json:"jobs"`
	Running int      `json:"running"`
	Queued  int      `json:"queued"`
}

// Stats returns a health snapshot.
func (m *Manager) Stats() Health {
	names := m.StoreNames()
	answers := m.answerNames()
	m.mu.Lock()
	defer m.mu.Unlock()
	return Health{
		Stores:  names,
		Answers: answers,
		Jobs:    len(m.jobs),
		Running: m.running,
		Queued:  len(m.queue),
	}
}

// Close drains the manager for shutdown: no new submissions are
// accepted, queued jobs stay persisted as queued, and running jobs are
// interrupted — their contexts are cancelled so upstream queries stop
// promptly, resumable jobs write a final checkpoint, and their
// snapshots return to the queue for the next process. Close waits for
// the running jobs to park (or ctx to expire).
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	// A draining daemon must leave load-balancer rotation before its
	// jobs are interrupted, and the sampler loop must not outlive the
	// manager. (Stop waits for the in-flight tick; it must not run
	// under m.mu — sampled GaugeFuncs take m.mu themselves.)
	m.health.SetUnready("shutting down")
	m.sampler.Stop()
	m.mu.Lock()
	var open []*job
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.status.State.Terminal() {
			open = append(open, j)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	// Park every non-terminal job — including jobs whose run goroutine is
	// scheduled but has not transitioned to running yet (they check the
	// flag before starting) — and cancel the ones already discovering.
	for _, j := range open {
		j.mu.Lock()
		j.parked = !j.cancelled
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	// Parked jobs never reach a terminal state, so their Watch channels
	// would otherwise stay open forever: close every remaining
	// subscription (the Watch contract: a closed channel means "no more
	// updates here; read the final state with Get").
	closeWatchers := func() {
		for _, j := range open {
			j.mu.Lock()
			for ch := range j.subs {
				close(ch)
			}
			j.subs = nil
			j.mu.Unlock()
		}
	}
	select {
	case <-done:
		closeWatchers()
		return nil
	case <-ctx.Done():
		closeWatchers()
		return fmt.Errorf("service: shutdown interrupted: %w", ctx.Err())
	}
}
