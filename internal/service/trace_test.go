package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/web"
)

// TestTraceUpstreamSpanCountExact is the tentpole acceptance test: for
// a completed uncached job against a remote store, the exported trace's
// "web.query" span count exactly equals the job's counted queries and
// the upstream_queries_total metric, and the Chrome export is valid
// trace-event JSON.
func TestTraceUpstreamSpanCountExact(t *testing.T) {
	d := testDataset(7, 120)
	upstream := httptest.NewServer(web.NewServer(d.DB(5, hidden.SumRank{}), nil))
	defer upstream.Close()
	wc, err := web.Dial(upstream.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if err := m.AddStore("s", wc); err != nil {
		t.Fatal(err)
	}

	st, err := m.Submit(JobSpec{Store: "s", Algo: "sq"}) // uncached, sequential
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID, 60*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("job ended %s complete=%v err=%q", final.State, final.Complete, final.Error)
	}
	if final.Queries == 0 {
		t.Fatal("job counted no queries")
	}

	tr, err := m.Trace(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != final.TraceID || tr.JobID != st.ID {
		t.Fatalf("trace ids: %+v vs job %s/%s", tr, st.ID, final.TraceID)
	}
	if tr.Truncated {
		t.Fatalf("trace truncated: %d recorded, %d resident", tr.Recorded, len(tr.Spans))
	}

	// Count spans by name; web.query must match the counted queries
	// exactly.
	byName := map[string]int{}
	for i := range tr.Spans {
		byName[tr.Spans[i].Name]++
	}
	if got := byName["web.query"]; got != final.Queries {
		t.Fatalf("%d web.query spans, job counted %d queries (spans by name: %v)",
			got, final.Queries, byName)
	}
	if byName["job"] != 1 || byName["core.run"] != 1 || byName["core.plan"] != 1 {
		t.Fatalf("missing envelope spans: %v", byName)
	}

	// ... and the metric agrees.
	var metric float64
	for _, s := range m.Registry().Snapshots() {
		if s.Name == `upstream_queries_total{store="s"}` {
			metric = s.Value
		}
	}
	if int(metric) != final.Queries {
		t.Fatalf("upstream_queries_total = %v, job counted %d", metric, final.Queries)
	}

	// Every web.query span carries the store label and a 200 status.
	for i := range tr.Spans {
		rec := &tr.Spans[i]
		if rec.Name != "web.query" {
			continue
		}
		if s, _ := rec.AttrStr("store"); s != "s" {
			t.Fatalf("web.query span store = %q", s)
		}
		if n, _ := rec.AttrInt("status"); n != 200 {
			t.Fatalf("web.query span status = %d", n)
		}
		if rec.Phase != "discover" {
			t.Fatalf("web.query span phase = %q", rec.Phase)
		}
	}

	// The HTTP endpoint serves both formats; the Chrome one is valid
	// trace-event JSON with one event per span.
	h := NewHandler(m)
	hts := httptest.NewServer(h)
	defer hts.Close()

	resp, err := http.Get(hts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var overHTTP TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&overHTTP); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(overHTTP.Spans) != len(tr.Spans) {
		t.Fatalf("HTTP trace has %d spans, manager %d", len(overHTTP.Spans), len(tr.Spans))
	}

	resp, err = http.Get(hts.URL + "/v1/jobs/" + st.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   int64   `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &chrome); err != nil {
		t.Fatalf("chrome export is not valid trace-event JSON: %v", err)
	}
	if len(chrome.TraceEvents) != len(tr.Spans) {
		t.Fatalf("chrome export has %d events, trace %d spans", len(chrome.TraceEvents), len(tr.Spans))
	}
	webQueries := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event ph = %q", ev.Ph)
		}
		if ev.Name == "web.query" {
			webQueries++
		}
	}
	if webQueries != final.Queries {
		t.Fatalf("chrome export has %d web.query events, job counted %d", webQueries, final.Queries)
	}

	// The typed client fetches both shapes too.
	sc, err := Dial(hts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sc.Trace(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Spans) != len(tr.Spans) {
		t.Fatalf("client trace has %d spans", len(ct.Spans))
	}
	raw, err := sc.TraceChrome(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("client chrome export invalid: %v", err)
	}
}

// TestTraceCachedJobAnnotatesLookups: a cached job's trace carries one
// qcache.lookup span per lookup, with hit/miss outcomes that add up.
func TestTraceCachedJobAnnotatesLookups(t *testing.T) {
	d := testDataset(11, 80)
	m, err := NewManager(Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if err := m.AddStore("s", d.DB(5, hidden.SumRank{})); err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(JobSpec{Store: "s", Algo: "sq", UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	tr, err := m.Trace(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	lookups := map[string]int{}
	for i := range tr.Spans {
		if tr.Spans[i].Name != "qcache.lookup" {
			continue
		}
		o, _ := tr.Spans[i].AttrStr("outcome")
		lookups[o]++
	}
	stats := m.CacheStats()
	if got := lookups["hit"] + lookups["miss"] + lookups["coalesced"]; got != stats.Lookups {
		t.Fatalf("%d lookup spans (%v), cache counted %d lookups", got, lookups, stats.Lookups)
	}
	if lookups["miss"] != stats.Misses {
		t.Fatalf("%d miss spans, cache counted %d misses", lookups["miss"], stats.Misses)
	}
	if final.Queries != stats.Lookups {
		t.Fatalf("job counted %d queries, cache saw %d lookups", final.Queries, stats.Lookups)
	}
}

// TestSSEPhaseTransitionsInOrder is the SSE satellite: a watched job's
// event stream carries the trace id on every event and walks the
// lifecycle phases in order (submit → start → discover → publish →
// done), never backwards.
func TestSSEPhaseTransitionsInOrder(t *testing.T) {
	d := testDataset(13, 100)
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	// A small delay per query keeps the job alive long enough for the
	// stream to see mid-run events.
	store := &instrumentedDB{Interface: d.DB(5, hidden.SumRank{}), delay: time.Millisecond}
	if err := m.AddStore("s", store); err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(NewHandler(m))
	defer hts.Close()
	sc, err := Dial(hts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	st, err := m.Submit(JobSpec{Store: "s"})
	if err != nil {
		t.Fatal(err)
	}

	rank := map[string]int{"submit": 0, "start": 1, "discover": 2, "publish": 3, "done": 4}
	var phases []string
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := sc.Watch(ctx, st.ID, func(ev JobStatus) {
		if ev.TraceID != st.TraceID {
			t.Errorf("event trace_id = %q, want %q", ev.TraceID, st.TraceID)
		}
		if ev.Phase == "" {
			t.Error("event carries no phase")
		}
		if len(phases) == 0 || phases[len(phases)-1] != ev.Phase {
			phases = append(phases, ev.Phase)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	last := -1
	for _, p := range phases {
		r, known := rank[p]
		if !known {
			t.Fatalf("unknown phase %q in %v", p, phases)
		}
		if r < last {
			t.Fatalf("phase went backwards: %v", phases)
		}
		last = r
	}
	if phases[len(phases)-1] != "done" {
		t.Fatalf("stream ended on phase %q, want done (%v)", phases[len(phases)-1], phases)
	}
	seen := map[string]bool{}
	for _, p := range phases {
		seen[p] = true
	}
	if !seen["discover"] {
		t.Fatalf("stream never showed the discover phase: %v", phases)
	}
}
