package service

// The batch answer path end to end: the /v1/answer/topk_batch endpoint
// must agree with the single-vector endpoint member by member, the
// opt-in coalescer must merge concurrent single-vector calls into
// (provably, via the sweep counter) shared fused sweeps, and binary
// columnar snapshots must carry answer indexes across a restart — with
// a corrupt binary falling back to the JSON re-index, never failing
// recovery.

import (
	"context"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
)

// TestAnswerTopKBatchOverHTTP: one POST answers many weight vectors,
// each member identical to what the single endpoint answers for it.
func TestAnswerTopKBatchOverHTTP(t *testing.T) {
	m, d := newAnswerManager(t, Config{}, 41, 300)
	defer m.Close(context.Background())
	const bandK = 4
	st, err := m.Submit(JobSpec{Store: "shop", Band: bandK})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID, 30*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("band job ended %s (%s)", final.State, final.Error)
	}

	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	lo := 10
	batch := AnswerTopKBatchRequest{Store: "shop", Queries: []AnswerTopKBatchQuery{
		{Weights: []float64{1, 1, 1}, K: bandK},
		{Weights: []float64{3.5, 0.25, 1.75}, K: 2},
		{Weights: []float64{0, 2, 0.01}, K: 1, Normalized: true},
		{Weights: []float64{1, 0, 4}, K: 3, Filter: []AnswerRange{{Attr: 0, Lo: &lo}}},
	}}
	resp, err := c.TopKBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Store != "shop" || resp.BandK != bandK || len(resp.Results) != len(batch.Queries) {
		t.Fatalf("batch envelope: %+v", resp)
	}
	for i, q := range batch.Queries {
		single, err := c.AnswerTopK(AnswerTopKRequest{
			Store: "shop", Weights: q.Weights, K: q.K, Normalized: q.Normalized, Filter: q.Filter,
		})
		if err != nil {
			t.Fatalf("single member %d: %v", i, err)
		}
		got := resp.Results[i]
		if got.K != single.K || got.Exact != single.Exact ||
			!reflect.DeepEqual(got.Tuples, single.Tuples) ||
			!reflect.DeepEqual(got.Scores, single.Scores) ||
			!reflect.DeepEqual(got.Levels, single.Levels) {
			t.Fatalf("batch member %d diverges from the single endpoint:\nbatch:  %+v\nsingle: %+v", i, got, single)
		}
	}
	// The unfiltered members are exact; check the first against brute
	// force too, so the HTTP layer cannot be right by mutual error.
	want := bruteScores(d.Data, []float64{1, 1, 1}, bandK)
	for i := range want {
		if math.Abs(resp.Results[0].Scores[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d: batch %v, brute force %v", i, resp.Results[0].Scores[i], want[i])
		}
	}

	// Error mapping: a bad member fails the whole batch naming its index.
	bad := batch
	bad.Queries = append([]AnswerTopKBatchQuery{}, batch.Queries...)
	bad.Queries[2] = AnswerTopKBatchQuery{Weights: []float64{0, 0, 0}, K: 1}
	if _, err := c.TopKBatch(bad); err == nil || !strings.Contains(err.Error(), "query 2") {
		t.Fatalf("bad member: want an error naming query 2, got %v", err)
	}
	if _, err := c.TopKBatch(AnswerTopKBatchRequest{Store: "nope"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown store: want 404, got %v", err)
	}
}

// TestAnswerTopKCoalescing proves the shim batches: N concurrent
// single-vector calls against one store issue at most ceil(N/BatchMax)
// fused sweeps (read off answer_batch_sweeps_total), and every caller
// still gets the exact single-path answer.
func TestAnswerTopKCoalescing(t *testing.T) {
	const (
		N        = 16
		batchMax = 4
	)
	m, d := newAnswerManager(t, Config{BatchWindow: 50 * time.Millisecond, BatchMax: batchMax}, 42, 250)
	defer m.Close(context.Background())
	st, err := m.Submit(JobSpec{Store: "shop", Band: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID, 30*time.Second)

	w := []float64{2, 1, 0.5}
	want := bruteScores(d.Data, w, 3)
	sweeps0 := m.met.batchSweeps.Load()
	vectors0 := m.met.batchVectors.Load()

	var wg sync.WaitGroup
	errs := make([]error, N)
	resps := make([]AnswerTopKResponse, N)
	// Release every caller at once so they land in shared windows.
	start := make(chan struct{})
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resps[i], errs[i] = m.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: w, K: 3})
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !resps[i].Exact || len(resps[i].Scores) != len(want) {
			t.Fatalf("caller %d: %+v", i, resps[i])
		}
		for r := range want {
			if math.Abs(resps[i].Scores[r]-want[r]) > 1e-9 {
				t.Fatalf("caller %d rank %d: %v, want %v", i, r, resps[i].Scores[r], want[r])
			}
		}
	}
	sweeps := m.met.batchSweeps.Load() - sweeps0
	vectors := m.met.batchVectors.Load() - vectors0
	if vectors != N {
		t.Fatalf("answer_batch_vectors_total moved by %d, want %d", vectors, N)
	}
	if maxSweeps := int64((N + batchMax - 1) / batchMax); sweeps < 1 || sweeps > maxSweeps {
		t.Fatalf("%d concurrent calls issued %d sweeps, want 1..%d", N, sweeps, maxSweeps)
	}

	// A malformed query answers its own error without poisoning a window.
	if _, err := m.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: []float64{0, 0, 0}, K: 1}); err == nil {
		t.Fatal("all-zero weights accepted through the coalescer")
	}
}

// TestBinarySnapshotRecovery: a published index leaves a .ans binary
// snapshot behind; a restarted manager recovers the store from it
// (recover source "binary") and serves identical answers with zero
// upstream queries.
func TestBinarySnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	m1, d := newAnswerManager(t, Config{SnapshotDir: dir}, 43, 300)
	st, err := m1.Submit(JobSpec{Store: "shop", Band: 3})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m1, st.ID, 30*time.Second)
	if final.State != StateDone || !final.Complete {
		t.Fatalf("band job ended %s (%s)", final.State, final.Error)
	}
	w := []float64{2, 1, 0.5}
	before, err := m1.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: w, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	ans := filepath.Join(dir, final.ID+".ans")
	if _, err := os.Stat(ans); err != nil {
		t.Fatalf("no binary answer snapshot next to the job snapshot: %v", err)
	}

	m2 := restartAnswerManager(t, dir, d)
	defer m2.Close(context.Background())
	if n := m2.met.recoverBinary.Load(); n != 1 {
		t.Fatalf("binary recoveries: %d, want 1 (json: %d)", n, m2.met.recoverJSON.Load())
	}
	after, err := m2.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: w, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Exact || !reflect.DeepEqual(before.Scores, after.Scores) ||
		!reflect.DeepEqual(before.Tuples, after.Tuples) {
		t.Fatalf("binary-recovered answers diverge:\nbefore: %+v\nafter:  %+v", before, after)
	}

	// Corrupt the binary: recovery must fall back to the JSON re-index
	// (recover source "json"), still serving the same answers.
	data, err := os.ReadFile(ans)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(ans, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m3 := restartAnswerManager(t, dir, d)
	defer m3.Close(context.Background())
	if b, j := m3.met.recoverBinary.Load(), m3.met.recoverJSON.Load(); b != 0 || j != 1 {
		t.Fatalf("corrupt binary: recoveries binary=%d json=%d, want 0/1", b, j)
	}
	fallback, err := m3.AnswerTopK(AnswerTopKRequest{Store: "shop", Weights: w, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Scores, fallback.Scores) {
		t.Fatalf("JSON fallback answers diverge: %+v vs %+v", before.Scores, fallback.Scores)
	}

	// Remove it entirely: same fallback, no error.
	if err := os.Remove(ans); err != nil {
		t.Fatal(err)
	}
	m4 := restartAnswerManager(t, dir, d)
	defer m4.Close(context.Background())
	if b, j := m4.met.recoverBinary.Load(), m4.met.recoverJSON.Load(); b != 0 || j != 1 {
		t.Fatalf("missing binary: recoveries binary=%d json=%d, want 0/1", b, j)
	}
}

// restartAnswerManager spins up a fresh manager over the snapshot dir
// with a poisoned store backend: any upstream query on the recovery or
// answer path fails the test loudly.
func restartAnswerManager(t *testing.T, dir string, d datagen.Dataset) *Manager {
	t.Helper()
	m, err := NewManager(Config{SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db, err := hidden.New(d.Config(10, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddStore("shop", poisonDB{db}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	return m
}
