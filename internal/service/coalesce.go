package service

// Opt-in coalescing of the single-vector answer read path: with
// Config.BatchWindow set, a POST /v1/answer/topk call does not sweep
// the columns alone — it parks in the store's accumulation window, and
// the window flushes as one fused TopKBatch sweep when either the
// window elapses or BatchMax callers have gathered. Under concurrent
// load the per-vector cost drops toward the batch path's amortized
// sweep; an isolated call pays at most the window in added latency.
//
// The coalescer carries (store, query) pairs rather than store names:
// each caller pins the exact index snapshot it loaded, so a hot-swap
// mid-window splits the flush into per-snapshot groups instead of
// answering early callers from an index they never saw.

import (
	"sync"
	"time"

	"hiddensky/internal/answer"
)

// DefaultBatchMax bounds a coalescing window's batch when
// Config.BatchMax is unset.
const DefaultBatchMax = 16

// pendingTopK is one parked caller.
type pendingTopK struct {
	store *answer.Store
	query answer.TopKQuery
	done  chan struct{}
	res   answer.TopKResult
	err   error
}

// topkCoalescer is one store's accumulation window.
type topkCoalescer struct {
	m      *Manager
	window time.Duration
	max    int

	mu      sync.Mutex
	gen     uint64 // bumped at every flush; a timer for an older gen is stale
	pending []*pendingTopK
}

func newTopkCoalescer(m *Manager) *topkCoalescer {
	max := m.cfg.BatchMax
	if max <= 0 {
		max = DefaultBatchMax
	}
	return &topkCoalescer{m: m, window: m.cfg.BatchWindow, max: max}
}

// do parks one validated query in the window and blocks until its
// flush has answered it. The first caller of a window arms the flush
// timer; the BatchMax-th flushes immediately on its own goroutine (the
// timer then finds a newer generation and stands down).
func (c *topkCoalescer) do(s *answer.Store, q answer.TopKQuery) (answer.TopKResult, error) {
	p := &pendingTopK{store: s, query: q, done: make(chan struct{})}
	c.mu.Lock()
	c.pending = append(c.pending, p)
	if len(c.pending) >= c.max {
		batch := c.takeLocked()
		c.mu.Unlock()
		c.run(batch)
	} else {
		if len(c.pending) == 1 {
			gen := c.gen
			time.AfterFunc(c.window, func() { c.flush(gen) })
		}
		c.mu.Unlock()
	}
	<-p.done
	return p.res, p.err
}

// takeLocked claims the pending window. Callers hold c.mu.
func (c *topkCoalescer) takeLocked() []*pendingTopK {
	batch := c.pending
	c.pending = nil
	c.gen++
	return batch
}

// flush is the timer path: claim the window unless a max-flush beat it.
func (c *topkCoalescer) flush(gen uint64) {
	c.mu.Lock()
	if gen != c.gen || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.run(batch)
}

// run answers a claimed window: group by index snapshot, one fused
// sweep per group, results handed back in member order.
func (c *topkCoalescer) run(batch []*pendingTopK) {
	var order []*answer.Store
	groups := map[*answer.Store][]*pendingTopK{}
	for _, p := range batch {
		if _, seen := groups[p.store]; !seen {
			order = append(order, p.store)
		}
		groups[p.store] = append(groups[p.store], p)
	}
	for _, s := range order {
		members := groups[s]
		qs := make([]answer.TopKQuery, len(members))
		for i, p := range members {
			qs[i] = p.query
		}
		results, err := c.m.batchTopK(s, qs)
		for i, p := range members {
			if err != nil {
				p.err = err
			} else {
				p.res = results[i]
			}
			close(p.done)
		}
	}
}
