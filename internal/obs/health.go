package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// The health rollup: one coarse state — ready / degraded / unready —
// derived from a readiness gate plus a set of windowed-rate checks, so
// an operator (or a future cluster router deciding failover) gets a
// single answer instead of re-deriving it from forty series.
//
// The state machine:
//
//	unready  — the readiness gate is closed (the daemon is still
//	           recovering snapshots, or was never opened). GET /readyz
//	           answers 503: don't route traffic here.
//	degraded — the gate is open but at least one rate check is over
//	           its threshold (jobs failing, upstream 429ing, cache
//	           thrashing). /readyz stays 200 — the daemon still
//	           serves — but the state is visible on /healthz and the
//	           console.
//	ready    — the gate is open and every check is under threshold.
//
// Transitions are recomputed on every evaluation from live windowed
// rates, so degraded heals itself the moment the rate subsides out of
// the window — ready → degraded → ready with no manual reset.

// HealthState is the rollup verdict.
type HealthState string

// The three rollup states.
const (
	HealthReady    HealthState = "ready"
	HealthDegraded HealthState = "degraded"
	HealthUnready  HealthState = "unready"
)

// healthCheck is one windowed-rate rule.
type healthCheck struct {
	name      string
	threshold float64 // breach when rate > threshold; <= 0 disables
	rate      func() float64
}

// HealthRollup derives one state from a readiness gate and rate
// checks. Safe for concurrent use. The zero value is not usable; call
// NewHealthRollup.
type HealthRollup struct {
	mu     sync.Mutex
	ready  bool
	reason string
	checks []*healthCheck
}

// NewHealthRollup returns a rollup whose gate starts closed with the
// given reason (e.g. "recovering"). Open it with SetReady.
func NewHealthRollup(unreadyReason string) *HealthRollup {
	return &HealthRollup{reason: unreadyReason}
}

// SetReady opens the readiness gate.
func (h *HealthRollup) SetReady() {
	h.mu.Lock()
	h.ready = true
	h.reason = ""
	h.mu.Unlock()
}

// SetUnready closes the gate with a reason.
func (h *HealthRollup) SetUnready(reason string) {
	h.mu.Lock()
	h.ready = false
	h.reason = reason
	h.mu.Unlock()
}

// AddCheck registers a windowed-rate rule: the rollup reports degraded
// while rate() > threshold. A threshold <= 0 disables the rule (it
// still reports its rate for visibility). rate must be safe for
// concurrent use — typically a Sampler.Rate closure.
func (h *HealthRollup) AddCheck(name string, threshold float64, rate func() float64) {
	h.mu.Lock()
	h.checks = append(h.checks, &healthCheck{name: name, threshold: threshold, rate: rate})
	h.mu.Unlock()
}

// SetThreshold adjusts a registered check's threshold (flag wiring).
// Unknown names are ignored.
func (h *HealthRollup) SetThreshold(name string, threshold float64) {
	h.mu.Lock()
	for _, c := range h.checks {
		if c.name == name {
			c.threshold = threshold
		}
	}
	h.mu.Unlock()
}

// HealthCheckStatus is one rule's evaluation.
type HealthCheckStatus struct {
	Name       string  `json:"name"`
	RatePerSec float64 `json:"rate_per_sec"`
	Threshold  float64 `json:"threshold"`
	Breached   bool    `json:"breached"`
}

// HealthReport is the body of GET /healthz and GET /readyz.
type HealthReport struct {
	State  HealthState         `json:"state"`
	Ready  bool                `json:"ready"`
	Reason string              `json:"reason,omitempty"`
	Checks []HealthCheckStatus `json:"checks,omitempty"`
}

// Evaluate recomputes the rollup from the gate and every check's
// current rate.
func (h *HealthRollup) Evaluate() HealthReport {
	h.mu.Lock()
	ready, reason := h.ready, h.reason
	checks := append([]*healthCheck(nil), h.checks...)
	h.mu.Unlock()
	// Rates are read outside h.mu: a rate closure may take other locks
	// (the sampler's, a manager's) that must never nest inside ours.
	rep := HealthReport{State: HealthReady, Ready: ready, Reason: reason}
	for _, c := range checks {
		st := HealthCheckStatus{Name: c.name, RatePerSec: c.rate(), Threshold: c.threshold}
		st.Breached = c.threshold > 0 && st.RatePerSec > c.threshold
		if st.Breached {
			rep.State = HealthDegraded
		}
		rep.Checks = append(rep.Checks, st)
	}
	if !ready {
		rep.State = HealthUnready
	}
	return rep
}

// writeHealth renders a report (obs stays dependency-free, so this is
// plain encoding/json — these endpoints are polled, not hammered).
func writeHealth(w http.ResponseWriter, status int, rep HealthReport) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	data, err := json.Marshal(rep)
	if err != nil {
		return
	}
	data = append(data, '\n')
	_, _ = w.Write(data)
}

// HealthzHandler serves the liveness view: always 200 (the process is
// up and answering), body carrying the full rollup so one curl shows
// state, gate reason and every check's rate.
func HealthzHandler(h *HealthRollup) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeHealth(w, http.StatusOK, h.Evaluate())
	})
}

// ReadyzHandler serves the routing decision: 200 while the daemon
// should receive traffic (ready or degraded), 503 while unready —
// load balancers and the e2e smoke wait on this instead of sleeping.
func ReadyzHandler(h *HealthRollup) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := h.Evaluate()
		status := http.StatusOK
		if rep.State == HealthUnready {
			status = http.StatusServiceUnavailable
		}
		writeHealth(w, status, rep)
	})
}
