package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime introspection bridged from runtime/metrics: GC pause
// distribution, live heap bytes, goroutine count, scheduler latency.
// Everything is registered as scrape-time GaugeFunc/CounterFunc
// bridges on an ordinary Registry, so the series ride the same
// Sampler rings and History endpoint as the application's own
// telemetry — "goroutines over the last five minutes" costs the same
// machinery as "QPS over the last five minutes".
//
// All funcs of one registration share a collector that reads the
// whole sample batch at most once per collectInterval: a scrape (or a
// sampler tick) touching eight series costs one metrics.Read, not
// eight. metrics.Read reuses Float64Histogram buffers across calls,
// so after the first read the collector allocates nothing — the
// sampler's zero-allocation contract holds with runtime series
// registered (pinned by TestSamplerZeroAllocSteadyState).

// Preferred runtime/metrics names (fallbacks cover older toolchains).
const (
	rmGoroutines   = "/sched/goroutines:goroutines"
	rmHeapLive     = "/gc/heap/live:bytes"
	rmHeapObjects  = "/memory/classes/heap/objects:bytes"
	rmGCCycles     = "/gc/cycles/total:gc-cycles"
	rmGCPauses     = "/sched/pauses/total/gc:seconds"
	rmGCPausesOld  = "/gc/pauses:seconds"
	rmSchedLatency = "/sched/latencies:seconds"
)

// collectInterval is how stale a runtime sample batch may be before a
// value read triggers a fresh metrics.Read.
const collectInterval = 50 * time.Millisecond

// runtimeCollector owns the sample batch shared by every registered
// bridge func.
type runtimeCollector struct {
	mu      sync.Mutex
	samples []metrics.Sample
	idx     map[string]int
	last    time.Time
}

// newRuntimeCollector builds a collector over the subset of wanted
// names this toolchain supports.
func newRuntimeCollector(names []string) *runtimeCollector {
	supported := map[string]bool{}
	for _, d := range metrics.All() {
		supported[d.Name] = true
	}
	c := &runtimeCollector{idx: map[string]int{}}
	for _, n := range names {
		if !supported[n] {
			continue
		}
		c.idx[n] = len(c.samples)
		c.samples = append(c.samples, metrics.Sample{Name: n})
	}
	return c
}

// has reports whether the toolchain supports the named metric.
func (c *runtimeCollector) has(name string) bool {
	_, ok := c.idx[name]
	return ok
}

// refreshLocked re-reads the batch when stale. Caller holds c.mu.
func (c *runtimeCollector) refreshLocked() {
	if len(c.samples) == 0 || time.Since(c.last) < collectInterval {
		return
	}
	metrics.Read(c.samples)
	c.last = time.Now()
}

// value returns the named sample as a float64 (uint64 and float64
// kinds; 0 for anything else).
func (c *runtimeCollector) value(name string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshLocked()
	i, ok := c.idx[name]
	if !ok {
		return 0
	}
	switch v := c.samples[i].Value; v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	}
	return 0
}

// quantileMicros extracts the q-th quantile of the named
// Float64Histogram sample, in microseconds (runtime histograms are in
// seconds). Interpolation is bucket-midpoint — the same fidelity the
// fixed-bucket obs.Histogram offers.
func (c *runtimeCollector) quantileMicros(name string, q float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshLocked()
	i, ok := c.idx[name]
	if !ok {
		return 0
	}
	v := c.samples[i].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := v.Float64Histogram()
	if h == nil {
		return 0
	}
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for bi, n := range h.Counts {
		if n == 0 {
			continue
		}
		cum += float64(n)
		if cum >= rank {
			lo, hi := h.Buckets[bi], h.Buckets[bi+1]
			// Runtime histograms use +-Inf sentinel edges; clamp to the
			// finite neighbor so a tail observation reports a number.
			if lo < 0 || lo != lo {
				lo = 0
			}
			if hi > 1e12 || hi != hi {
				hi = lo
			}
			return (lo + hi) / 2 * 1e6
		}
	}
	return 0
}

// RegisterRuntime registers the runtime telemetry series on r:
//
//	go_goroutines            gauge    live goroutines
//	go_heap_live_bytes       gauge    bytes of live heap objects
//	go_gc_cycles_total       counter  completed GC cycles
//	go_gc_pause_p50_us       gauge    GC stop-the-world pause p50
//	go_gc_pause_p95_us       gauge    ... p95
//	go_gc_pause_p99_us       gauge    ... p99
//	go_sched_latency_p50_us  gauge    goroutine scheduling latency p50
//	go_sched_latency_p99_us  gauge    ... p99
//
// Series whose runtime metric the toolchain lacks are skipped, never
// registered as zeros.
func RegisterRuntime(r *Registry) {
	c := newRuntimeCollector([]string{
		rmGoroutines, rmHeapLive, rmHeapObjects, rmGCCycles,
		rmGCPauses, rmGCPausesOld, rmSchedLatency,
	})
	if c.has(rmGoroutines) {
		r.GaugeFunc("go_goroutines", "live goroutines", func() float64 {
			return c.value(rmGoroutines)
		})
	}
	heap := rmHeapLive
	if !c.has(heap) {
		heap = rmHeapObjects
	}
	if c.has(heap) {
		heap := heap
		r.GaugeFunc("go_heap_live_bytes", "bytes of live heap objects after the last GC", func() float64 {
			return c.value(heap)
		})
	}
	if c.has(rmGCCycles) {
		r.CounterFunc("go_gc_cycles_total", "completed GC cycles", func() float64 {
			return c.value(rmGCCycles)
		})
	}
	pauses := rmGCPauses
	if !c.has(pauses) {
		pauses = rmGCPausesOld
	}
	if c.has(pauses) {
		pauses := pauses
		for _, q := range []struct {
			name string
			q    float64
		}{
			{"go_gc_pause_p50_us", 0.50},
			{"go_gc_pause_p95_us", 0.95},
			{"go_gc_pause_p99_us", 0.99},
		} {
			q := q
			r.GaugeFunc(q.name, "GC stop-the-world pause quantile since process start", func() float64 {
				return c.quantileMicros(pauses, q.q)
			})
		}
	}
	if c.has(rmSchedLatency) {
		for _, q := range []struct {
			name string
			q    float64
		}{
			{"go_sched_latency_p50_us", 0.50},
			{"go_sched_latency_p99_us", 0.99},
		} {
			q := q
			r.GaugeFunc(q.name, "goroutine time-to-run scheduling latency quantile since process start", func() float64 {
				return c.quantileMicros(rmSchedLatency, q.q)
			})
		}
	}
}
