package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4). Series of one family are
// grouped under a single # HELP / # TYPE header; histograms emit the
// conventional _bucket{le=...} cumulative series plus _sum and _count
// (in seconds, per Prometheus convention).
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.snapshotMetrics()
	lastFamily := ""
	for _, m := range ms {
		if m.family != lastFamily {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.family, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.family, m.kind); err != nil {
				return err
			}
			lastFamily = m.family
		}
		if m.kind == kindHistogram {
			if err := writeHistogram(w, m); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.value())); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits one histogram's cumulative buckets, sum and
// count, splicing the le label into the series' own label set.
func writeHistogram(w io.Writer, m *metric) error {
	s := m.h.Snapshot()
	prefix := m.family + "_bucket{"
	if m.labels != "" {
		prefix += m.labels + ","
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		le := formatFloat(b.LeMicros / 1e6)
		if _, err := fmt.Fprintf(w, "%sle=%q} %d\n", prefix, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%sle=\"+Inf\"} %d\n", prefix, s.Count); err != nil {
		return err
	}
	suffix := ""
	if m.labels != "" {
		suffix = "{" + m.labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.family, suffix, formatFloat(s.SumMicros/1e6)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.family, suffix, s.Count)
	return err
}

// formatFloat renders v the way Prometheus expects: integral values
// without an exponent or trailing zeros.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves the registry as a Prometheus scrape target
// (the GET /metrics endpoint of both daemons).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = r.WritePrometheus(w)
	})
}
