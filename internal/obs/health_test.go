package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHealthRollupStateMachine(t *testing.T) {
	rate := 0.0
	h := NewHealthRollup("booting")
	h.AddCheck("err_rate", 1.0, func() float64 { return rate })

	// Gate closed: unready regardless of checks.
	rep := h.Evaluate()
	if rep.State != HealthUnready || rep.Ready || rep.Reason != "booting" {
		t.Fatalf("initial report = %+v, want unready/booting", rep)
	}

	// Gate open, check under threshold: ready.
	h.SetReady()
	if rep = h.Evaluate(); rep.State != HealthReady || !rep.Ready {
		t.Fatalf("after SetReady = %+v, want ready", rep)
	}

	// Check breaches: degraded, and the report names the culprit.
	rate = 2.5
	rep = h.Evaluate()
	if rep.State != HealthDegraded {
		t.Fatalf("state = %v, want degraded", rep.State)
	}
	if len(rep.Checks) != 1 || !rep.Checks[0].Breached || rep.Checks[0].RatePerSec != 2.5 {
		t.Fatalf("checks = %+v, want one breached at 2.5", rep.Checks)
	}

	// Rate subsides: self-heals to ready without a reset call.
	rate = 0.2
	if rep = h.Evaluate(); rep.State != HealthReady {
		t.Fatalf("state after subsiding = %v, want ready", rep.State)
	}

	// Unready overrides degraded.
	rate = 2.5
	h.SetUnready("draining")
	rep = h.Evaluate()
	if rep.State != HealthUnready || rep.Reason != "draining" {
		t.Fatalf("report = %+v, want unready/draining", rep)
	}
	if !rep.Checks[0].Breached {
		t.Fatal("breached check hidden while unready; the report must keep it visible")
	}
}

func TestHealthThresholds(t *testing.T) {
	rate := 10.0
	h := NewHealthRollup("")
	h.SetReady()
	h.AddCheck("a", 1.0, func() float64 { return rate })

	// Exactly at threshold is not a breach (rate > threshold).
	rate = 1.0
	if rep := h.Evaluate(); rep.State != HealthReady {
		t.Fatalf("at-threshold state = %v, want ready", rep.State)
	}

	// SetThreshold rewires a flag-configured limit.
	h.SetThreshold("a", 0.5)
	if rep := h.Evaluate(); rep.State != HealthDegraded {
		t.Fatal("tightened threshold did not degrade")
	}

	// threshold <= 0 disables the rule but keeps its rate visible.
	h.SetThreshold("a", -1)
	rep := h.Evaluate()
	if rep.State != HealthReady {
		t.Fatalf("disabled check state = %v, want ready", rep.State)
	}
	if rep.Checks[0].RatePerSec != 1.0 {
		t.Fatal("disabled check stopped reporting its rate")
	}

	// Unknown name is a no-op.
	h.SetThreshold("nope", 3)
}

func TestHealthHandlers(t *testing.T) {
	h := NewHealthRollup("recovering")

	get := func(handler http.Handler) (*httptest.ResponseRecorder, HealthReport) {
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, httptest.NewRequest("GET", "/", nil))
		var rep HealthReport
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			t.Fatalf("bad body %q: %v", w.Body.String(), err)
		}
		if got := w.Header().Get("Content-Type"); got != "application/json; charset=utf-8" {
			t.Fatalf("Content-Type = %q", got)
		}
		return w, rep
	}

	// Unready: healthz stays 200 (liveness), readyz answers 503.
	w, rep := get(HealthzHandler(h))
	if w.Code != http.StatusOK || rep.State != HealthUnready {
		t.Fatalf("healthz unready: code=%d state=%v", w.Code, rep.State)
	}
	w, rep = get(ReadyzHandler(h))
	if w.Code != http.StatusServiceUnavailable || rep.Reason != "recovering" {
		t.Fatalf("readyz unready: code=%d reason=%q", w.Code, rep.Reason)
	}

	// Ready: both 200.
	h.SetReady()
	if w, _ = get(ReadyzHandler(h)); w.Code != http.StatusOK {
		t.Fatalf("readyz ready code = %d", w.Code)
	}

	// Degraded: readyz still 200 — the daemon serves, routers keep it.
	h.AddCheck("err", 1, func() float64 { return 5 })
	w, rep = get(ReadyzHandler(h))
	if w.Code != http.StatusOK || rep.State != HealthDegraded {
		t.Fatalf("readyz degraded: code=%d state=%v", w.Code, rep.State)
	}
}
