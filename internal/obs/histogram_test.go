package obs

import (
	"math"
	"testing"
	"time"
)

// TestEmptyHistogramQuantilesZero is the regression test for the
// empty-snapshot edge case: a histogram that never saw an observation
// must report 0 for every quantile — not NaN, and not the last bucket
// bound that a zero-count bucket walk falls through to.
func TestEmptyHistogramQuantilesZero(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("Count = %d", s.Count)
	}
	for name, v := range map[string]float64{
		"mean": s.MeanMicros, "p50": s.P50Micros, "p95": s.P95Micros, "p99": s.P99Micros,
	} {
		if v != 0 {
			t.Fatalf("%s = %v on empty histogram, want 0", name, v)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v on empty histogram", name, v)
		}
	}
	if len(s.Buckets) != 0 {
		t.Fatalf("Buckets = %+v on empty histogram", s.Buckets)
	}
}

// TestQuantileFromZeroTotal pins the helper directly: callers passing
// total <= 0 (however they got there) get 0, never the terminal
// bucket's ~9-minute bound.
func TestQuantileFromZeroTotal(t *testing.T) {
	var counts [histBuckets]int64
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := quantileFrom(counts[:], 0, q); got != 0 {
			t.Fatalf("quantileFrom(empty, 0, %v) = %v, want 0", q, got)
		}
		if got := quantileFrom(counts[:], -1, q); got != 0 {
			t.Fatalf("quantileFrom(empty, -1, %v) = %v, want 0", q, got)
		}
	}
}

func TestHistogramQuantilesNonEmpty(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	// All observations land in one power-of-two bucket; quantiles must
	// interpolate inside it, not escape it.
	lo, hi := bucketBounds(int(math.Log2(float64(100*time.Microsecond))) + 1)
	for _, v := range []float64{s.P50Micros, s.P95Micros, s.P99Micros} {
		if v < float64(lo)/1e3 || v > float64(hi)/1e3 {
			t.Fatalf("quantile %v outside bucket [%v, %v]µs", v, float64(lo)/1e3, float64(hi)/1e3)
		}
	}
}
