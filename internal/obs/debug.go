package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux returns a mux serving the net/http/pprof profiling
// endpoints under /debug/pprof/. The daemons bind it to a separate
// listener only when -debug-addr is set, so profiling is opt-in and
// never shares a port with the public API. The handlers are wired
// explicitly; the daemons never serve http.DefaultServeMux, so the
// pprof package's side-effect registrations there stay unreachable.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
