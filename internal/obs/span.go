package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span layer: per-job distributed-style tracing built
// on the same constraint as the metrics core — recording a span on a
// serving hot path allocates nothing. A Tracer hands out value-type
// Span handles whose End copies the finished record into a bounded
// ring-buffer SpanStore slot, so the per-query cost is a time read,
// a few stores into a stack struct, and one short per-slot mutex
// hold. All rendering (JSON, Chrome trace events, summaries) happens
// at export time.
//
// The span tree answers the question the paper's cost model is built
// around: where did a job's counted queries and milliseconds actually
// go — which core.Run phase, which engine.Pool task, which cache miss,
// which upstream round trip.

// maxSpanAttrs is the fixed attribute capacity of a span. Setters
// beyond it are dropped silently — a span is a compact audit record,
// not a log line.
const maxSpanAttrs = 8

// SpanAttr is one span annotation: a string value when Str is
// non-empty, a numeric value otherwise.
type SpanAttr struct {
	Key string
	Str string
	Num int64
}

// SpanRecord is one finished span. It is a plain value (fixed-size
// attribute array, no pointers beyond string headers) so the record
// path can copy it into a pre-allocated ring slot without touching
// the heap.
type SpanRecord struct {
	TraceID  string
	ID       uint64
	Parent   uint64
	Name     string
	Phase    string
	Start    time.Time
	Duration time.Duration

	nattrs int
	attrs  [maxSpanAttrs]SpanAttr
}

// Attrs returns the span's annotations (aliasing the record's array;
// callers must not mutate).
func (r *SpanRecord) Attrs() []SpanAttr { return r.attrs[:r.nattrs] }

// AttrInt returns the named numeric annotation.
func (r *SpanRecord) AttrInt(key string) (int64, bool) {
	for i := 0; i < r.nattrs; i++ {
		if r.attrs[i].Key == key && r.attrs[i].Str == "" {
			return r.attrs[i].Num, true
		}
	}
	return 0, false
}

// AttrStr returns the named string annotation.
func (r *SpanRecord) AttrStr(key string) (string, bool) {
	for i := 0; i < r.nattrs; i++ {
		if r.attrs[i].Key == key && r.attrs[i].Str != "" {
			return r.attrs[i].Str, true
		}
	}
	return "", false
}

// spanWire is the JSON shape of a SpanRecord: timestamps in
// microseconds (matching the perf harness and Chrome trace events),
// attributes as one flat object.
type spanWire struct {
	TraceID string         `json:"trace_id"`
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Phase   string         `json:"phase,omitempty"`
	StartUs int64          `json:"start_us"`
	DurUs   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (r SpanRecord) MarshalJSON() ([]byte, error) {
	w := spanWire{
		TraceID: r.TraceID,
		ID:      r.ID,
		Parent:  r.Parent,
		Name:    r.Name,
		Phase:   r.Phase,
		StartUs: r.Start.UnixMicro(),
		DurUs:   float64(r.Duration) / 1e3,
	}
	if r.nattrs > 0 {
		w.Attrs = make(map[string]any, r.nattrs)
		for _, a := range r.attrs[:r.nattrs] {
			if a.Str != "" {
				w.Attrs[a.Key] = a.Str
			} else {
				w.Attrs[a.Key] = a.Num
			}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler (the skytrace CLI decodes
// exported traces back into records).
func (r *SpanRecord) UnmarshalJSON(data []byte) error {
	var w spanWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = SpanRecord{
		TraceID:  w.TraceID,
		ID:       w.ID,
		Parent:   w.Parent,
		Name:     w.Name,
		Phase:    w.Phase,
		Start:    time.UnixMicro(w.StartUs).UTC(),
		Duration: time.Duration(w.DurUs * 1e3),
	}
	keys := make([]string, 0, len(w.Attrs))
	for k := range w.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch v := w.Attrs[k].(type) {
		case string:
			r.setStr(k, v)
		case float64:
			r.setInt(k, int64(v))
		}
	}
	return nil
}

func (r *SpanRecord) setStr(key, v string) {
	if r.nattrs < maxSpanAttrs {
		r.attrs[r.nattrs] = SpanAttr{Key: key, Str: v}
		r.nattrs++
	}
}

func (r *SpanRecord) setInt(key string, v int64) {
	if r.nattrs < maxSpanAttrs {
		r.attrs[r.nattrs] = SpanAttr{Key: key, Num: v}
		r.nattrs++
	}
}

// Span is a live span handle. The zero value (what a nil Tracer's
// Start returns) is inert: every method no-ops, so instrumented code
// needs no nil checks. A Span is used by exactly one goroutine and
// must not be copied after the first setter.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// ID returns the span's id within its trace (0 for an inert span),
// for parenting child spans.
func (s *Span) ID() uint64 { return s.rec.ID }

// SetStr annotates the span with a string value. v should be a
// constant or an already-materialized string: the span keeps only the
// header, so no allocation happens here.
func (s *Span) SetStr(key, v string) {
	if s.t != nil {
		s.rec.setStr(key, v)
	}
}

// SetInt annotates the span with a numeric value.
func (s *Span) SetInt(key string, v int64) {
	if s.t != nil {
		s.rec.setInt(key, v)
	}
}

// Rename replaces the span's name before End — for paths that decide
// what a span was only at the end (a query that turned out to be a
// terminal rate limit is not an answered upstream query).
func (s *Span) Rename(name string) {
	if s.t != nil {
		s.rec.Name = name
	}
}

// End stamps the duration and commits the record to the store. A span
// that is never Ended is abandoned: it leaves no record and counts
// nothing. End must be called at most once.
func (s *Span) End() {
	t := s.t
	if t == nil {
		return
	}
	s.rec.Duration = time.Since(s.rec.Start)
	t.store.record(&s.rec)
	t.recorded.Add(1)
	s.t = nil
}

// Tracer mints spans for one trace (one job). All methods are safe on
// a nil receiver — untraced runs pay only a nil check — and safe for
// concurrent use, so one tracer is shared by every worker of a
// parallel run.
type Tracer struct {
	store    *SpanStore
	trace    string
	ids      atomic.Uint64
	recorded atomic.Int64
	phase    atomic.Pointer[string]
}

// TraceID returns the trace this tracer records under ("" for nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.trace
}

// Recorded returns how many spans this tracer has committed. Compared
// against the store's Collect result it detects ring truncation.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// SetPhase labels subsequently started spans with a lifecycle phase
// ("discover", "publish", ...). Phases change a handful of times per
// job, so the one string-pointer allocation here is irrelevant.
func (t *Tracer) SetPhase(phase string) {
	if t == nil {
		return
	}
	t.phase.Store(&phase)
}

// Phase returns the current phase label.
func (t *Tracer) Phase() string {
	if t == nil {
		return ""
	}
	if p := t.phase.Load(); p != nil {
		return *p
	}
	return ""
}

// Start begins a span under the given parent span id (0: a root
// span). The returned handle lives on the caller's stack; End commits
// it. Start on a nil tracer returns the inert zero Span.
func (t *Tracer) Start(name string, parent uint64) Span {
	if t == nil {
		return Span{}
	}
	s := Span{t: t}
	s.rec.TraceID = t.trace
	s.rec.ID = t.ids.Add(1)
	s.rec.Parent = parent
	s.rec.Name = name
	if p := t.phase.Load(); p != nil {
		s.rec.Phase = *p
	}
	s.rec.Start = time.Now()
	return s
}

// spanSlot is one ring position: its own mutex so Collect never
// blocks the whole store and record never blocks on a scan.
type spanSlot struct {
	mu   sync.Mutex
	used bool
	rec  SpanRecord
}

// DefaultSpanCapacity is the ring size used when NewSpanStore is
// given a non-positive capacity: enough for every span of a typical
// discovery job with room for several jobs' history.
const DefaultSpanCapacity = 8192

// SpanStore is a bounded per-process ring buffer of finished spans.
// Memory is fixed at construction; once the ring wraps, the oldest
// spans are overwritten (Tracer.Recorded vs. Collect length tells an
// exporter the trace was truncated). Safe for concurrent use.
type SpanStore struct {
	slots []spanSlot
	mask  uint64
	pos   atomic.Uint64
}

// NewSpanStore builds a ring holding capacity spans (rounded up to a
// power of two; <= 0 picks DefaultSpanCapacity).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	pow := 1
	for pow < capacity {
		pow <<= 1
	}
	return &SpanStore{slots: make([]spanSlot, pow), mask: uint64(pow - 1)}
}

// Capacity returns the ring size.
func (s *SpanStore) Capacity() int { return len(s.slots) }

// Tracer returns a tracer recording into this store under traceID.
func (s *SpanStore) Tracer(traceID string) *Tracer {
	return &Tracer{store: s, trace: traceID}
}

// record claims the next ring slot and copies rec into it. The claim
// is one atomic add; the copy happens under the slot's own mutex, so
// concurrent recorders only collide when the ring has fully wrapped
// onto the same slot.
func (s *SpanStore) record(rec *SpanRecord) {
	sl := &s.slots[(s.pos.Add(1)-1)&s.mask]
	sl.mu.Lock()
	sl.rec = *rec
	sl.used = true
	sl.mu.Unlock()
}

// Collect returns every span of the trace still resident in the ring,
// sorted by start time (span id breaking ties). Slots are locked one
// at a time: the scan is exact per slot but not an atomic cut of the
// whole ring — fine for trace export, which happens when the job is
// quiescent or the caller tolerates a live view.
func (s *SpanStore) Collect(traceID string) []SpanRecord {
	var out []SpanRecord
	for i := range s.slots {
		sl := &s.slots[i]
		sl.mu.Lock()
		if sl.used && sl.rec.TraceID == traceID {
			out = append(out, sl.rec)
		}
		sl.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteChromeTrace renders spans in Chrome trace-event format (the
// JSON object form: {"traceEvents": [...]}), which Perfetto and
// chrome://tracing open directly. Every span becomes one complete
// ("ph":"X") event; overlapping spans are spread across tids by
// greedy interval partitioning so concurrent work renders as parallel
// lanes instead of stacked slivers.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	ordered := append([]SpanRecord(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool {
		if !ordered[i].Start.Equal(ordered[j].Start) {
			return ordered[i].Start.Before(ordered[j].Start)
		}
		return ordered[i].ID < ordered[j].ID
	})
	// Greedy lane assignment: each span takes the lowest lane that is
	// free at its start time.
	var laneEnd []time.Time
	lane := func(rec *SpanRecord) int {
		end := rec.Start.Add(rec.Duration)
		for i, e := range laneEnd {
			if !e.After(rec.Start) {
				laneEnd[i] = end
				return i
			}
		}
		laneEnd = append(laneEnd, end)
		return len(laneEnd) - 1
	}

	type chromeEvent struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	events := make([]chromeEvent, 0, len(ordered))
	for i := range ordered {
		rec := &ordered[i]
		cat := rec.Phase
		if cat == "" {
			cat = "span"
		}
		args := make(map[string]any, rec.nattrs+2)
		args["span_id"] = rec.ID
		if rec.Parent != 0 {
			args["parent"] = rec.Parent
		}
		for _, a := range rec.Attrs() {
			if a.Str != "" {
				args[a.Key] = a.Str
			} else {
				args[a.Key] = a.Num
			}
		}
		events = append(events, chromeEvent{
			Name: rec.Name,
			Cat:  cat,
			Ph:   "X",
			Ts:   rec.Start.UnixMicro(),
			Dur:  float64(rec.Duration) / 1e3,
			Pid:  1,
			Tid:  lane(rec),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"})
}

// SummarizeSpan renders one span compactly for CLI output:
// "web.query 1.2ms [discover] store=smoke status=200".
func SummarizeSpan(rec *SpanRecord) string {
	out := rec.Name + " " + rec.Duration.Round(time.Microsecond).String()
	if rec.Phase != "" {
		out += " [" + rec.Phase + "]"
	}
	for _, a := range rec.Attrs() {
		if a.Str != "" {
			out += " " + a.Key + "=" + a.Str
		} else {
			out += " " + a.Key + "=" + strconv.FormatInt(a.Num, 10)
		}
	}
	return out
}
