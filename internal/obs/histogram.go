package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations
// whose nanosecond duration has bit length i, i.e. values in
// [2^(i-1), 2^i), with bucket 0 holding exactly 0. 40 buckets cover
// 1ns to ~9 minutes; longer observations clamp into the last bucket.
const histBuckets = 40

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use. Observe is wait-free and allocation-free: one bit
// scan and three atomic adds into memory laid out at construction, so
// it is safe to put on the zero-allocation serving paths. Quantiles
// are extracted at scrape time by interpolating within the
// power-of-two buckets — exact to well under the bucket width, which
// is plenty for p50/p95/p99 on latency distributions spanning decades.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations at most LeMicros microseconds.
type HistogramBucket struct {
	LeMicros float64 `json:"le_us"`
	Count    int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time distribution, with quantiles
// pre-extracted (microseconds, matching the perf harness).
type HistogramSnapshot struct {
	Count      int64   `json:"count"`
	SumMicros  float64 `json:"sum_us"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P95Micros  float64 `json:"p95_us"`
	P99Micros  float64 `json:"p99_us"`
	// Buckets is the non-cumulative distribution over the non-empty
	// bucket range (each entry counts observations <= its bound and
	// greater than the previous entry's).
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// bucketBounds returns the value range [lo, hi] (nanoseconds) bucket
// i covers.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	hi = int64(1)<<i - 1
	return lo, hi
}

// Snapshot captures the current distribution. Concurrent Observe
// calls may land between the bucket reads; totals are recomputed from
// the captured buckets so the snapshot is always self-consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, SumMicros: float64(h.sum.Load()) / 1e3}
	if total == 0 {
		return s
	}
	s.MeanMicros = s.SumMicros / float64(total)
	s.P50Micros = quantileFrom(counts[:], total, 0.50)
	s.P95Micros = quantileFrom(counts[:], total, 0.95)
	s.P99Micros = quantileFrom(counts[:], total, 0.99)
	first, last := -1, -1
	for i, c := range counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	for i := first; i <= last; i++ {
		_, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, HistogramBucket{LeMicros: float64(hi) / 1e3, Count: counts[i]})
	}
	return s
}

// quantiles extracts the observation count and p50/p95/p99 (micros)
// without building a Snapshot: the bucket capture lives on the stack,
// so the time-series sampling path — which calls this once per
// histogram per tick — stays allocation-free.
func (h *Histogram) quantiles() (count int64, p50, p95, p99 float64) {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0, 0, 0, 0
	}
	return total,
		quantileFrom(counts[:], total, 0.50),
		quantileFrom(counts[:], total, 0.95),
		quantileFrom(counts[:], total, 0.99)
}

// quantileFrom walks the captured buckets to the q-th rank and
// interpolates linearly inside the matching bucket. Returns
// microseconds. An empty distribution has no quantiles: without the
// guard the walk would find no bucket and fall through to the last
// bucket's bound (~9 minutes) — garbage for a histogram that never
// saw an observation.
func quantileFrom(counts []int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			return (float64(lo) + frac*float64(hi-lo)) / 1e3
		}
		cum = next
	}
	_, hi := bucketBounds(len(counts) - 1)
	return float64(hi) / 1e3
}
