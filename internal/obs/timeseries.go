package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// The time-series layer: a background Sampler that snapshots every
// series of a Registry at a fixed interval into power-of-two ring
// buffers with bounded retention. Since-boot aggregates (the /metrics
// surface) answer "how much, ever"; the rings answer the operator
// questions — "how fast right now", "trending up or down", "what did
// p99 look like two minutes ago" — without shipping raw samples
// anywhere: retention is bounded in-process, and rates/quantile
// histories are extracted on demand by GET /v1/history.
//
// The sampling path obeys the same contract as the record path: after
// steady state (every series seen once, rings allocated) a tick
// performs no allocation — ring writes are index stores into memory
// laid out when the series first appeared. This is pinned by
// TestSamplerZeroAllocSteadyState and raced by TestSamplerConcurrent.

// DefaultSampleInterval is the tick used when SamplerConfig.Interval
// is zero.
const DefaultSampleInterval = time.Second

// DefaultSampleRetention is the per-series sample count used when
// SamplerConfig.Retention is zero (~8.5 minutes at the default
// interval).
const DefaultSampleRetention = 512

// SamplerConfig tunes a Sampler.
type SamplerConfig struct {
	// Interval is the time between samples (default
	// DefaultSampleInterval).
	Interval time.Duration
	// Retention bounds how many samples each series keeps, rounded up
	// to a power of two (default DefaultSampleRetention). Older
	// samples are overwritten in ring order.
	Retention int
}

// sampleSeries is one registered series' ring. vals holds the scalar
// value per tick (counter cumulative total, gauge value, histogram
// observation count); histograms additionally ring their
// p50/p95/p99 so tail latency has a history, not just a current value.
type sampleSeries struct {
	m             *metric
	vals          []float64
	p50, p95, p99 []float64 // histogram series only
}

// Sampler periodically snapshots a Registry into bounded rings.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	size     int // ring capacity, power of two
	mask     int

	mu     sync.Mutex
	times  []int64 // unix nanos, shared by every series (one tick, one cut)
	head   int     // next write slot
	n      int     // samples recorded, <= size
	series []*sampleSeries
	seen   int // registry metrics already ringed (the registry only appends)

	started atomic.Bool
	stopc   chan struct{}
	donec   chan struct{}
}

// NewSampler builds a sampler over reg. It does not start sampling —
// call Start for the background loop, or SampleNow to drive ticks by
// hand (tests, one-shot tools).
func NewSampler(reg *Registry, cfg SamplerConfig) *Sampler {
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	retain := cfg.Retention
	if retain <= 0 {
		retain = DefaultSampleRetention
	}
	size := 1
	for size < retain {
		size <<= 1
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		size:     size,
		mask:     size - 1,
		times:    make([]int64, size),
		stopc:    make(chan struct{}),
		donec:    make(chan struct{}),
	}
}

// Interval returns the configured sampling interval.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start launches the background sampling loop (once; extra calls are
// no-ops). Stop ends it.
func (s *Sampler) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.loop()
}

func (s *Sampler) loop() {
	defer close(s.donec)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case now := <-t.C:
			s.SampleNow(now)
		}
	}
}

// Stop ends the background loop and waits for the in-flight tick.
// Safe to call whether or not Start ran; safe to call twice.
func (s *Sampler) Stop() {
	if !s.started.CompareAndSwap(true, false) {
		return
	}
	close(s.stopc)
	<-s.donec
}

// syncSeries picks up series registered since the last tick. The
// registry only ever appends, so comparing lengths is enough; ring
// allocation happens exactly once per new series. Caller holds s.mu.
func (s *Sampler) syncSeriesLocked() {
	s.reg.mu.Lock()
	if len(s.reg.metrics) > s.seen {
		for _, m := range s.reg.metrics[s.seen:] {
			ss := &sampleSeries{m: m, vals: make([]float64, s.size)}
			if m.kind == kindHistogram {
				ss.p50 = make([]float64, s.size)
				ss.p95 = make([]float64, s.size)
				ss.p99 = make([]float64, s.size)
			}
			s.series = append(s.series, ss)
		}
		s.seen = len(s.reg.metrics)
	}
	s.reg.mu.Unlock()
}

// SampleNow records one sample of every registered series, stamped
// now. The background loop calls it every interval; tests and
// snapshot tools may drive it directly (ticks must be handed
// monotonically increasing times). Allocation-free once every series
// has been seen.
func (s *Sampler) SampleNow(now time.Time) {
	s.mu.Lock()
	s.syncSeriesLocked()
	idx := s.head
	s.times[idx] = now.UnixNano()
	for _, ss := range s.series {
		if ss.m.kind == kindHistogram {
			count, p50, p95, p99 := ss.m.h.quantiles()
			ss.vals[idx] = float64(count)
			ss.p50[idx] = p50
			ss.p95[idx] = p95
			ss.p99[idx] = p99
			continue
		}
		ss.vals[idx] = ss.m.value()
	}
	s.head = (idx + 1) & s.mask
	if s.n < s.size {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns how many samples are currently retained.
func (s *Sampler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// idxBack returns the ring slot j steps behind the newest sample.
// Caller holds s.mu and guarantees j < s.n.
func (s *Sampler) idxBack(j int) int {
	return (s.head - 1 - j + 2*s.size) & s.mask
}

// windowStartLocked returns how many steps back the earliest sample
// within the window ending at the newest sample lies (0 when fewer
// than two samples fall inside it). Caller holds s.mu.
func (s *Sampler) windowStartLocked(window time.Duration) int {
	if s.n < 2 {
		return 0
	}
	cutoff := s.times[s.idxBack(0)] - window.Nanoseconds()
	j := 0
	for j+1 < s.n && s.times[s.idxBack(j+1)] >= cutoff {
		j++
	}
	return j
}

// rateable reports whether a series' value is a monotone total whose
// per-second derivative is meaningful: counters, counter funcs, and
// histogram observation counts (whose rate is the series' QPS).
func rateable(k kind) bool {
	return k == kindCounter || k == kindCounterFunc || k == kindHistogram
}

// rateSeriesLocked computes ss's per-second rate over the window
// ending at the newest sample. Counter resets (a decreasing value)
// clamp to zero. Caller holds s.mu.
func (s *Sampler) rateSeriesLocked(ss *sampleSeries, window time.Duration) float64 {
	j := s.windowStartLocked(window)
	if j == 0 {
		return 0
	}
	last, first := s.idxBack(0), s.idxBack(j)
	dt := float64(s.times[last]-s.times[first]) / 1e9
	if dt <= 0 {
		return 0
	}
	d := ss.vals[last] - ss.vals[first]
	if d < 0 {
		d = 0
	}
	return d / dt
}

// Rate returns the summed per-second rate over the trailing window of
// every rateable series in the named family (labeled series of one
// family — e.g. upstream_queries_total{store=...} — aggregate).
// Returns 0 until two samples fall inside the window. This is the
// primitive behind the health rollup's "X per second over the last
// minute" checks.
func (s *Sampler) Rate(family string, window time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total float64
	for _, ss := range s.series {
		if ss.m.family != family || !rateable(ss.m.kind) {
			continue
		}
		total += s.rateSeriesLocked(ss, window)
	}
	return total
}

// SeriesHistory is one series' retained samples, oldest first, aligned
// with HistorySnapshot.TimesUnixMS. Values carries the sampled scalar
// (cumulative total for counters, instantaneous value for gauges,
// observation count for histograms); histogram series also carry their
// quantile rings. Rate1m/Rate5m are the trailing per-second windowed
// rates of rateable series at the newest sample.
type SeriesHistory struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Values []float64 `json:"values"`
	P50    []float64 `json:"p50_us,omitempty"`
	P95    []float64 `json:"p95_us,omitempty"`
	P99    []float64 `json:"p99_us,omitempty"`
	Rate1m float64   `json:"rate_1m,omitempty"`
	Rate5m float64   `json:"rate_5m,omitempty"`
}

// HistorySnapshot is the body of GET /v1/history: the shared sample
// timestamps and every series' ring, oldest first.
type HistorySnapshot struct {
	IntervalSeconds float64         `json:"interval_seconds"`
	TimesUnixMS     []int64         `json:"times_unix_ms"`
	Series          []SeriesHistory `json:"series"`
}

// History snapshots the retained rings. last bounds how many trailing
// samples are returned per series (<= 0: everything retained). A
// series registered after sampling began reports zeros for ticks that
// predate it.
func (s *Sampler) History(last int) HistorySnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	if last > 0 && last < n {
		n = last
	}
	out := HistorySnapshot{
		IntervalSeconds: s.interval.Seconds(),
		TimesUnixMS:     make([]int64, n),
		Series:          make([]SeriesHistory, 0, len(s.series)),
	}
	for i := 0; i < n; i++ {
		out.TimesUnixMS[i] = s.times[s.idxBack(n-1-i)] / 1e6
	}
	copyRing := func(ring []float64) []float64 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = ring[s.idxBack(n-1-i)]
		}
		return vals
	}
	for _, ss := range s.series {
		sh := SeriesHistory{Name: ss.m.name, Kind: ss.m.kind.String(), Values: copyRing(ss.vals)}
		if ss.m.kind == kindHistogram {
			sh.P50 = copyRing(ss.p50)
			sh.P95 = copyRing(ss.p95)
			sh.P99 = copyRing(ss.p99)
		}
		if rateable(ss.m.kind) {
			sh.Rate1m = s.rateSeriesLocked(ss, time.Minute)
			sh.Rate5m = s.rateSeriesLocked(ss, 5*time.Minute)
		}
		out.Series = append(out.Series, sh)
	}
	return out
}
