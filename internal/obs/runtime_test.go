package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRegisterRuntimeSeries(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	runtime.GC() // make sure at least one cycle exists

	snaps := r.Snapshots()
	byName := map[string]Snapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	gor, ok := byName["go_goroutines"]
	if !ok {
		t.Fatal("go_goroutines not registered")
	}
	if gor.Value < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", gor.Value)
	}
	heap, ok := byName["go_heap_live_bytes"]
	if !ok {
		t.Fatal("go_heap_live_bytes not registered")
	}
	if heap.Value <= 0 {
		t.Fatalf("go_heap_live_bytes = %v, want > 0", heap.Value)
	}
	gc, ok := byName["go_gc_cycles_total"]
	if !ok {
		t.Fatal("go_gc_cycles_total not registered")
	}
	if gc.Value < 1 {
		t.Fatalf("go_gc_cycles_total = %v, want >= 1 after runtime.GC()", gc.Value)
	}
	for _, name := range []string{"go_gc_pause_p50_us", "go_gc_pause_p95_us", "go_gc_pause_p99_us"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		// After a forced GC the pause distribution is non-empty; the
		// quantile must be a sane pause (sub-second), not a +Inf bucket
		// edge leaking through.
		if s.Value < 0 || s.Value > 1e6 {
			t.Fatalf("%s = %v µs, want within [0, 1s]", name, s.Value)
		}
	}
	if _, ok := byName["go_sched_latency_p99_us"]; !ok {
		t.Fatal("go_sched_latency_p99_us not registered")
	}
}

func TestRuntimeSeriesRideSampler(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	s := NewSampler(r, SamplerConfig{Retention: 8})
	base := time.Now()
	s.SampleNow(base)
	s.SampleNow(base.Add(time.Second))
	h := s.History(0)
	var sawRuntime bool
	for _, sh := range h.Series {
		if strings.HasPrefix(sh.Name, "go_") {
			sawRuntime = true
			if len(sh.Values) != 2 {
				t.Fatalf("%s has %d samples, want 2", sh.Name, len(sh.Values))
			}
		}
	}
	if !sawRuntime {
		t.Fatal("no go_* series in sampler history")
	}
}

func TestRuntimeCollectorUnknownName(t *testing.T) {
	c := newRuntimeCollector([]string{"/definitely/not/a/metric:units"})
	if c.has("/definitely/not/a/metric:units") {
		t.Fatal("collector claims to support a bogus metric")
	}
	if got := c.value("/definitely/not/a/metric:units"); got != 0 {
		t.Fatalf("bogus metric value = %v, want 0", got)
	}
	if got := c.quantileMicros("/definitely/not/a/metric:units", 0.99); got != 0 {
		t.Fatalf("bogus metric quantile = %v, want 0", got)
	}
}
