package obs

import (
	"testing"
	"time"
)

// BenchmarkObsRecord is the record-path contract: one counter bump,
// one gauge set, and one histogram observation — the instrumentation
// cost added to a serving operation — must stay at 0 allocs/op, or
// the zero-allocation read stack (PR5) would silently regress the
// moment it was instrumented.
func BenchmarkObsRecord(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_seconds", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(time.Duration(i))
	}
}

// TestRecordZeroAlloc enforces the benchmark's contract in the
// regular test run, so `go test` alone catches an allocating record
// path.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_seconds", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f allocs/op, want 0", allocs)
	}
}
