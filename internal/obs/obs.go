// Package obs is the observability layer of the repository: a
// dependency-free metrics core (atomic counters, gauges, and
// fixed-bucket latency histograms with quantile extraction), a
// Prometheus-text and JSON exposition surface, structured logging
// helpers built on log/slog, and per-job trace IDs.
//
// The design constraint is the same one the read stack obeys: the
// record path allocates nothing. Counter.Inc, Gauge.Set and
// Histogram.Observe are a handful of atomic operations on memory that
// was laid out at registration time, so instrumenting the
// zero-allocation serving paths (answer.Store.TopK, the sharded query
// cache, the pooled JSON writer) does not reintroduce the garbage
// those paths were rebuilt to shed. All rendering cost (label
// formatting, bucket boundaries, quantile walks) is paid at scrape
// time, on the /metrics and /v1/stats endpoints, never per event.
//
// A Registry is an explicit, composable collection — there is no
// package-global default, so a test process can host many managers
// and servers without metric collisions. Components that own
// long-lived state (the query cache, the job manager) register
// scrape-time funcs (CounterFunc/GaugeFunc) so their existing atomics
// are exposed without double counting.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; the record path performs one atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// kind enumerates what a registered series is.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered series.
type metric struct {
	name   string // full series name, possibly with {labels}
	family string // name with the label set stripped
	labels string // `k="v",k2="v2"` (no braces), empty when unlabeled
	help   string
	kind   kind

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() float64
}

// value returns the series' scalar value (histograms are rendered
// separately).
func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.c.Load())
	case kindGauge:
		return float64(m.g.Load())
	case kindCounterFunc, kindGaugeFunc:
		return m.fn()
	}
	return 0
}

// Registry is an ordered, concurrency-safe collection of named
// series. Registration happens at component construction; the record
// path never touches the registry (callers hold the returned metric
// pointers).
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// splitName separates a series name like `queries_total{store="x"}`
// into its family and label set.
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// EscapeLabel renders v safely as a Prometheus label value (escaping
// backslashes and double quotes), for callers building labeled series
// names like `queries_total{store="` + obs.EscapeLabel(name) + `"}`.
func EscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// register adds (or returns the existing) series under name. A name
// collision with a different kind is a programming error and panics.
func (r *Registry) register(name, help string, k kind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: %q re-registered as %s (was %s)", name, k, m.kind))
		}
		return m
	}
	family, labels := splitName(name)
	m := &metric{name: name, family: family, labels: labels, help: help, kind: k}
	switch k {
	case kindCounter:
		m.c = new(Counter)
	case kindGauge:
		m.g = new(Gauge)
	case kindHistogram:
		m.h = new(Histogram)
	}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// Histogram returns the named latency histogram, creating it on first
// use. By convention the name ends in _seconds; values are rendered
// in seconds on /metrics and microseconds in JSON snapshots.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, kindHistogram).h
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — the bridge for components that already keep their own atomic
// totals (e.g. the query cache). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounterFunc).fn = fn
}

// GaugeFunc registers a gauge read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc).fn = fn
}

// snapshotMetrics returns a stable-sorted copy of the series list.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return ms[i].name < ms[j].name
	})
	return ms
}

// Snapshot is one series' point-in-time value, as served by JSON
// stats endpoints.
type Snapshot struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	// Histogram carries the distribution for histogram series (Value
	// is then the observation count).
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshots returns every registered series' current value, sorted by
// name.
func (r *Registry) Snapshots() []Snapshot {
	ms := r.snapshotMetrics()
	out := make([]Snapshot, 0, len(ms))
	for _, m := range ms {
		s := Snapshot{Name: m.name, Kind: m.kind.String()}
		if m.kind == kindHistogram {
			hs := m.h.Snapshot()
			s.Value = float64(hs.Count)
			s.Histogram = &hs
		} else {
			s.Value = m.value()
		}
		out = append(out, s)
	}
	return out
}
