package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "widgets made")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("widgets_total", "widgets made"); again != c {
		t.Fatal("re-registering a counter must return the same instance")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations spread 1..1000µs: quantiles should land near
	// their exact ranks, within the power-of-two bucket resolution
	// (bucket width is at most the value itself).
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	wantSum := float64(1000 * 1001 / 2) // µs
	if math.Abs(s.SumMicros-wantSum) > 1 {
		t.Fatalf("sum = %.1fµs, want %.1fµs", s.SumMicros, wantSum)
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if got < want/2 || got > want*2 {
			t.Errorf("%s = %.1fµs, want within 2x of %.1fµs", name, got, want)
		}
	}
	check("p50", s.P50Micros, 500)
	check("p95", s.P95Micros, 950)
	check("p99", s.P99Micros, 990)
	if s.P50Micros > s.P95Micros || s.P95Micros > s.P99Micros {
		t.Fatalf("quantiles not monotone: p50=%.1f p95=%.1f p99=%.1f", s.P50Micros, s.P95Micros, s.P99Micros)
	}
	var cum int64
	for i, b := range s.Buckets {
		if b.Count < 0 {
			t.Fatalf("bucket %d has negative count", i)
		}
		cum += b.Count
	}
	if cum != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", cum, s.Count)
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Fatalf("empty histogram snapshot not empty: %+v", s)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamps to 0
	h.Observe(24 * 365 * time.Hour)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
}

// TestConcurrentRecord hammers one registry's metrics from many
// goroutines; run under -race this is the data-race guard for the
// whole record path, and the final counts prove no update was lost.
func TestConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_seconds", "")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(w*per+i) * time.Nanosecond)
				if i%512 == 0 {
					// Scrapes race the records on purpose.
					_ = h.Snapshot()
					_ = r.Snapshots()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`queries_total{store="a"}`, "queries issued").Add(3)
	r.Counter(`queries_total{store="b"}`, "queries issued").Add(4)
	r.Gauge("jobs_running", "running jobs").Set(2)
	r.GaugeFunc("cache_entries", "entries", func() float64 { return 17 })
	h := r.Histogram(`rt_seconds{store="a"}`, "round trips")
	h.Observe(3 * time.Microsecond)
	h.Observe(900 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE queries_total counter",
		`queries_total{store="a"} 3`,
		`queries_total{store="b"} 4`,
		"# TYPE jobs_running gauge",
		"jobs_running 2",
		"cache_entries 17",
		"# TYPE rt_seconds histogram",
		`rt_seconds_count{store="a"} 2`,
		`rt_seconds_bucket{store="a",le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "# TYPE queries_total") != 1 {
		t.Errorf("family header repeated:\n%s", text)
	}

	// The HTTP handler serves the same body with the text content type.
	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics handler: code=%d type=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if rec.Body.String() != text {
		t.Fatal("handler body differs from WritePrometheus")
	}
}

func TestSnapshotsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Histogram("b_seconds", "").Observe(time.Millisecond)
	data, err := json.Marshal(r.Snapshots())
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	if err := json.Unmarshal(data, &snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Name != "a_total" || snaps[0].Value != 2 {
		t.Fatalf("unexpected snapshots: %s", data)
	}
	if snaps[1].Histogram == nil || snaps[1].Histogram.Count != 1 {
		t.Fatalf("histogram snapshot missing: %s", data)
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel(`a"b\c`); got != `a\"b\\c` {
		t.Fatalf("EscapeLabel = %q", got)
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Fatalf("trace ids not unique 16-char: %q %q", a, b)
	}
}

func TestLoggerCarriesComponent(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, "testd")
	log.Info("job failed", "job_id", "j000001", "trace_id", "abc")
	line := buf.String()
	for _, want := range []string{"component=testd", "job_id=j000001", "trace_id=abc", "job failed"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
	Nop().Info("discarded")
}
