package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// NewLogger returns a structured logger writing logfmt-style lines to
// w, tagged with the owning component ("skylined", "skyserve", ...).
// Every daemon log line carries key=value attributes — a crashed
// fleet member or a parked job is diagnosable by grepping the daemon
// log for its job_id or trace_id alone.
func NewLogger(w io.Writer, component string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return slog.New(h).With("component", component)
}

// Nop returns a logger that discards everything — the default for
// library callers that configured no logging.
func Nop() *slog.Logger { return slog.New(slog.DiscardHandler) }

// traceSeq makes fallback trace IDs unique within the process when
// the system's randomness source is unavailable.
var traceSeq atomic.Int64

// NewTraceID returns a 16-hex-char identifier for correlating one
// job's lifecycle — submit, plan, discovery progress, index publish —
// across log lines, SSE events, and job status responses.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", traceSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}
