package obs

import (
	"sync"
	"testing"
	"time"
)

// tick drives n samples one interval apart starting at base, returning
// the time of the last sample.
func tick(s *Sampler, base time.Time, n int, interval time.Duration) time.Time {
	now := base
	for i := 0; i < n; i++ {
		s.SampleNow(now)
		now = now.Add(interval)
	}
	return now.Add(-interval)
}

func TestSamplerHistoryAndRates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_seconds", "")
	s := NewSampler(r, SamplerConfig{Interval: time.Second, Retention: 64})

	base := time.Unix(1000, 0)
	// 10 ticks, counter +5/tick, gauge = tick index, one observation/tick.
	for i := 0; i < 10; i++ {
		c.Add(5)
		g.Set(int64(i))
		h.Observe(time.Millisecond)
		s.SampleNow(base.Add(time.Duration(i) * time.Second))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}

	// Counter rate: +5 per second.
	if got := s.Rate("reqs_total", time.Minute); got < 4.9 || got > 5.1 {
		t.Fatalf("counter rate = %v, want ~5", got)
	}
	// Histogram rate: +1 observation per second.
	if got := s.Rate("lat_seconds", time.Minute); got < 0.9 || got > 1.1 {
		t.Fatalf("histogram rate = %v, want ~1", got)
	}
	// Gauges are not rateable.
	if got := s.Rate("depth", time.Minute); got != 0 {
		t.Fatalf("gauge rate = %v, want 0", got)
	}
	// Unknown family.
	if got := s.Rate("nope", time.Minute); got != 0 {
		t.Fatalf("unknown family rate = %v, want 0", got)
	}

	hist := s.History(0)
	if hist.IntervalSeconds != 1 {
		t.Fatalf("IntervalSeconds = %v, want 1", hist.IntervalSeconds)
	}
	if len(hist.TimesUnixMS) != 10 {
		t.Fatalf("times len = %d, want 10", len(hist.TimesUnixMS))
	}
	for i := 1; i < len(hist.TimesUnixMS); i++ {
		if hist.TimesUnixMS[i]-hist.TimesUnixMS[i-1] != 1000 {
			t.Fatalf("times not 1s apart, oldest-first: %v", hist.TimesUnixMS)
		}
	}
	byName := map[string]SeriesHistory{}
	for _, sh := range hist.Series {
		byName[sh.Name] = sh
	}
	cs, ok := byName["reqs_total"]
	if !ok {
		t.Fatal("reqs_total missing from history")
	}
	if cs.Kind != "counter" {
		t.Fatalf("reqs_total kind = %q", cs.Kind)
	}
	if cs.Values[0] != 5 || cs.Values[9] != 50 {
		t.Fatalf("counter values = %v, want 5..50", cs.Values)
	}
	if cs.Rate1m < 4.9 || cs.Rate1m > 5.1 {
		t.Fatalf("counter Rate1m = %v, want ~5", cs.Rate1m)
	}
	gs := byName["depth"]
	if gs.Values[0] != 0 || gs.Values[9] != 9 {
		t.Fatalf("gauge values = %v, want 0..9", gs.Values)
	}
	if gs.Rate1m != 0 {
		t.Fatalf("gauge Rate1m = %v, want 0", gs.Rate1m)
	}
	hs := byName["lat_seconds"]
	if len(hs.P99) != 10 || hs.P99[9] <= 0 {
		t.Fatalf("histogram p99 ring = %v, want 10 positive-tailed samples", hs.P99)
	}
	if hs.Values[9] != 10 {
		t.Fatalf("histogram count series = %v, want ..10", hs.Values)
	}

	// last bounds trailing samples.
	tail := s.History(3)
	if len(tail.TimesUnixMS) != 3 {
		t.Fatalf("History(3) times len = %d", len(tail.TimesUnixMS))
	}
	for _, sh := range tail.Series {
		if len(sh.Values) != 3 {
			t.Fatalf("History(3) series %s len = %d", sh.Name, len(sh.Values))
		}
	}
	if got := tail.Series[0].Values; got[2] != byName[tail.Series[0].Name].Values[9] {
		t.Fatalf("History(3) does not end at newest sample: %v", got)
	}
}

func TestSamplerWindowExcludesOldSamples(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "")
	s := NewSampler(r, SamplerConfig{Retention: 64})

	base := time.Unix(1000, 0)
	c.Add(100)
	s.SampleNow(base)
	c.Add(100)
	s.SampleNow(base.Add(10 * time.Second))
	// Two samples 10s apart: both inside 1m, rate = 100/10 = 10/s.
	if got := s.Rate("reqs_total", time.Minute); got < 9.9 || got > 10.1 {
		t.Fatalf("rate = %v, want ~10", got)
	}
	// Third sample two minutes later with no increments: the 1m window
	// now holds only the newest sample — no pair, rate 0. The 5m window
	// still spans the burst but averages it down.
	s.SampleNow(base.Add(130 * time.Second))
	if got := s.Rate("reqs_total", time.Minute); got != 0 {
		t.Fatalf("rate after quiet 2m = %v, want 0", got)
	}
	if got := s.Rate("reqs_total", 5*time.Minute); got <= 0 || got >= 2 {
		t.Fatalf("5m rate = %v, want small positive", got)
	}
}

func TestSamplerCounterResetClampsToZero(t *testing.T) {
	r := NewRegistry()
	val := 1000.0
	r.CounterFunc("restarts_total", "", func() float64 { return val })
	s := NewSampler(r, SamplerConfig{Retention: 8})
	base := time.Unix(0, 0)
	s.SampleNow(base)
	val = 5 // simulated process restart: cumulative total went backwards
	s.SampleNow(base.Add(time.Second))
	if got := s.Rate("restarts_total", time.Minute); got != 0 {
		t.Fatalf("rate across reset = %v, want 0 (clamped)", got)
	}
}

func TestSamplerRetentionWraps(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "")
	s := NewSampler(r, SamplerConfig{Retention: 8}) // power of two already
	base := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		c.Inc()
		s.SampleNow(base.Add(time.Duration(i) * time.Second))
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (bounded)", s.Len())
	}
	h := s.History(0)
	if len(h.TimesUnixMS) != 8 {
		t.Fatalf("history len = %d, want 8", len(h.TimesUnixMS))
	}
	// Oldest retained sample is tick 12 (counter value 13), newest is
	// tick 19 (counter value 20).
	vals := h.Series[0].Values
	if vals[0] != 13 || vals[7] != 20 {
		t.Fatalf("wrapped ring = %v, want 13..20", vals)
	}
}

func TestSamplerPicksUpNewSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a_total", "")
	s := NewSampler(r, SamplerConfig{Retention: 8})
	base := time.Unix(0, 0)
	a.Inc()
	s.SampleNow(base)

	// A series registered after sampling began.
	b := r.Counter("b_total", "")
	b.Add(7)
	s.SampleNow(base.Add(time.Second))

	h := s.History(0)
	byName := map[string][]float64{}
	for _, sh := range h.Series {
		byName[sh.Name] = sh.Values
	}
	if got := byName["b_total"]; len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("late series = %v, want [0 7] (zero before first sight)", got)
	}
}

func TestSamplerLabeledFamilyAggregates(t *testing.T) {
	r := NewRegistry()
	ca := r.Counter(`up_total{store="a"}`, "")
	cb := r.Counter(`up_total{store="b"}`, "")
	s := NewSampler(r, SamplerConfig{Retention: 8})
	base := time.Unix(0, 0)
	s.SampleNow(base)
	ca.Add(3)
	cb.Add(7)
	s.SampleNow(base.Add(time.Second))
	if got := s.Rate("up_total", time.Minute); got < 9.9 || got > 10.1 {
		t.Fatalf("family rate = %v, want ~10 (3+7 over 1s)", got)
	}
}

func TestSamplerStartStop(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks_total", "")
	s := NewSampler(r, SamplerConfig{Interval: time.Millisecond, Retention: 64})
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for s.Len() < 3 && time.Now().Before(deadline) {
		c.Inc()
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if s.Len() < 3 {
		t.Fatalf("background loop recorded %d samples, want >= 3", s.Len())
	}
	n := s.Len()
	time.Sleep(5 * time.Millisecond)
	if s.Len() != n {
		t.Fatal("sampler still ticking after Stop")
	}
}

// TestSamplerZeroAllocSteadyState is the tentpole's alloc contract: a
// sampling tick over a populated registry — counters, gauges,
// histograms, labeled families, and the runtime bridges — performs no
// allocation once every series has a ring.
func TestSamplerZeroAllocSteadyState(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	c := r.Counter("reqs_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_seconds", "")
	r.Counter(`up_total{store="a"}`, "")
	s := NewSampler(r, SamplerConfig{Retention: 64})

	c.Add(10)
	g.Set(3)
	h.Observe(time.Millisecond)
	base := time.Unix(1000, 0)
	// Warmup: allocate every ring, and let the runtime collector size
	// its Float64Histogram buffers (metrics.Read reuses them afterward).
	now := tick(s, base, 4, time.Second)

	allocs := testing.AllocsPerRun(100, func() {
		now = now.Add(time.Second)
		s.SampleNow(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state sampling allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSamplerConcurrent races recording, sampling, and reading; run
// under -race it proves the lock discipline.
func TestSamplerConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "")
	h := r.Histogram("lat_seconds", "")
	s := NewSampler(r, SamplerConfig{Interval: 100 * time.Microsecond, Retention: 32})
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(time.Microsecond)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = s.History(16)
			_ = s.Rate("reqs_total", time.Minute)
			_ = s.Len()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			// New series appearing mid-flight.
			r.Gauge("late_depth", "").Set(int64(i))
			time.Sleep(50 * time.Microsecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// BenchmarkSamplerSample measures one tick over a registry shaped like
// a loaded daemon's (runtime bridges + a few dozen app series).
func BenchmarkSamplerSample(b *testing.B) {
	r := NewRegistry()
	RegisterRuntime(r)
	for i := 0; i < 16; i++ {
		r.Counter(string(rune('a'+i))+"_total", "").Add(int64(i))
	}
	h := r.Histogram("lat_seconds", "")
	h.Observe(time.Millisecond)
	s := NewSampler(r, SamplerConfig{Retention: 512})
	base := time.Unix(1000, 0)
	now := tick(s, base, 4, time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		s.SampleNow(now)
	}
}

// BenchmarkSamplerHistory measures the read side (the /v1/history
// handler's core) at default retention.
func BenchmarkSamplerHistory(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter(string(rune('a'+i))+"_total", "").Add(int64(i))
	}
	s := NewSampler(r, SamplerConfig{Retention: 512})
	tick(s, time.Unix(1000, 0), 512, time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.History(0)
	}
}
