package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanBasics(t *testing.T) {
	st := NewSpanStore(64)
	tr := st.Tracer("t1")
	if got := tr.TraceID(); got != "t1" {
		t.Fatalf("TraceID = %q", got)
	}
	tr.SetPhase("discover")
	root := tr.Start("job", 0)
	child := tr.Start("web.query", root.ID())
	child.SetStr("store", "s")
	child.SetInt("tuples", 7)
	child.End()
	root.End()

	spans := st.Collect("t1")
	if len(spans) != 2 {
		t.Fatalf("Collect returned %d spans, want 2", len(spans))
	}
	if tr.Recorded() != 2 {
		t.Fatalf("Recorded = %d, want 2", tr.Recorded())
	}
	// Sorted by start: root first.
	if spans[0].Name != "job" || spans[1].Name != "web.query" {
		t.Fatalf("order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent = %d, root id = %d", spans[1].Parent, spans[0].ID)
	}
	if spans[1].Phase != "discover" {
		t.Fatalf("phase = %q", spans[1].Phase)
	}
	if s, ok := spans[1].AttrStr("store"); !ok || s != "s" {
		t.Fatalf("store attr = %q, %v", s, ok)
	}
	if n, ok := spans[1].AttrInt("tuples"); !ok || n != 7 {
		t.Fatalf("tuples attr = %d, %v", n, ok)
	}
	if spans[0].Duration <= 0 {
		t.Fatalf("root duration = %v", spans[0].Duration)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.TraceID() != "" || tr.Recorded() != 0 || tr.Phase() != "" {
		t.Fatal("nil tracer accessors should be zero")
	}
	tr.SetPhase("x")
	sp := tr.Start("noop", 0)
	if sp.ID() != 0 {
		t.Fatalf("inert span id = %d", sp.ID())
	}
	sp.SetStr("k", "v")
	sp.SetInt("n", 1)
	sp.Rename("other")
	sp.End()
	sp.End() // double End on inert span must also be safe
}

func TestSpanAbandonedNotRecorded(t *testing.T) {
	st := NewSpanStore(8)
	tr := st.Tracer("t")
	sp := tr.Start("will-abandon", 0)
	_ = sp
	done := tr.Start("done", 0)
	done.End()
	if got := tr.Recorded(); got != 1 {
		t.Fatalf("Recorded = %d, want 1 (abandoned span must not count)", got)
	}
	spans := st.Collect("t")
	if len(spans) != 1 || spans[0].Name != "done" {
		t.Fatalf("Collect = %+v", spans)
	}
}

func TestSpanRename(t *testing.T) {
	st := NewSpanStore(8)
	tr := st.Tracer("t")
	sp := tr.Start("web.query", 0)
	sp.Rename("web.rate_limited")
	sp.End()
	spans := st.Collect("t")
	if len(spans) != 1 || spans[0].Name != "web.rate_limited" {
		t.Fatalf("Collect = %+v", spans)
	}
}

func TestSpanStoreRingTruncates(t *testing.T) {
	st := NewSpanStore(4) // power of two already
	if st.Capacity() != 4 {
		t.Fatalf("Capacity = %d", st.Capacity())
	}
	tr := st.Tracer("t")
	for i := 0; i < 10; i++ {
		sp := tr.Start("s", 0)
		sp.End()
	}
	spans := st.Collect("t")
	if len(spans) != 4 {
		t.Fatalf("Collect kept %d spans, want ring capacity 4", len(spans))
	}
	if tr.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", tr.Recorded())
	}
	// The survivors are the newest 4 (ids 7..10).
	for _, rec := range spans {
		if rec.ID <= 6 {
			t.Fatalf("old span id %d survived the wrap", rec.ID)
		}
	}
}

func TestSpanStoreRoundsCapacityUp(t *testing.T) {
	if got := NewSpanStore(5).Capacity(); got != 8 {
		t.Fatalf("Capacity = %d, want 8", got)
	}
	if got := NewSpanStore(0).Capacity(); got != DefaultSpanCapacity {
		t.Fatalf("default Capacity = %d, want %d", got, DefaultSpanCapacity)
	}
}

func TestSpanStoreIsolatesTraces(t *testing.T) {
	st := NewSpanStore(16)
	a := st.Tracer("a")
	b := st.Tracer("b")
	for i := 0; i < 3; i++ {
		sp := a.Start("x", 0)
		sp.End()
	}
	sp := b.Start("y", 0)
	sp.End()
	if got := len(st.Collect("a")); got != 3 {
		t.Fatalf("trace a has %d spans", got)
	}
	if got := len(st.Collect("b")); got != 1 {
		t.Fatalf("trace b has %d spans", got)
	}
	if got := len(st.Collect("missing")); got != 0 {
		t.Fatalf("missing trace has %d spans", got)
	}
}

func TestSpanAttrOverflowDropped(t *testing.T) {
	st := NewSpanStore(8)
	tr := st.Tracer("t")
	sp := tr.Start("s", 0)
	for i := 0; i < maxSpanAttrs+4; i++ {
		sp.SetInt(fmt.Sprintf("k%d", i), int64(i))
	}
	sp.End()
	spans := st.Collect("t")
	if got := len(spans[0].Attrs()); got != maxSpanAttrs {
		t.Fatalf("kept %d attrs, want %d", got, maxSpanAttrs)
	}
}

func TestSpanConcurrentRecording(t *testing.T) {
	st := NewSpanStore(1 << 12)
	tr := st.Tracer("t")
	var wg sync.WaitGroup
	const G, N = 8, 100
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < N; i++ {
				sp := tr.Start("w", 0)
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Recorded(); got != G*N {
		t.Fatalf("Recorded = %d, want %d", got, G*N)
	}
	if got := len(st.Collect("t")); got != G*N {
		t.Fatalf("Collect = %d spans, want %d", got, G*N)
	}
}

func TestSpanRecordJSONRoundTrip(t *testing.T) {
	st := NewSpanStore(8)
	tr := st.Tracer("deadbeef")
	tr.SetPhase("discover")
	sp := tr.Start("web.query", 3)
	sp.SetStr("store", "autos")
	sp.SetInt("tuples", 42)
	sp.End()
	rec := st.Collect("deadbeef")[0]

	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trace_id":"deadbeef"`, `"name":"web.query"`, `"phase":"discover"`, `"store":"autos"`, `"tuples":42`, `"parent":3`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("marshal missing %s in %s", want, blob)
		}
	}

	var back SpanRecord
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != rec.TraceID || back.ID != rec.ID || back.Parent != rec.Parent ||
		back.Name != rec.Name || back.Phase != rec.Phase {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rec)
	}
	if s, ok := back.AttrStr("store"); !ok || s != "autos" {
		t.Fatalf("store attr lost: %q %v", s, ok)
	}
	if n, ok := back.AttrInt("tuples"); !ok || n != 42 {
		t.Fatalf("tuples attr lost: %d %v", n, ok)
	}
	if got := back.Start.UnixMicro(); got != rec.Start.UnixMicro() {
		t.Fatalf("start µs %d vs %d", got, rec.Start.UnixMicro())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	st := NewSpanStore(16)
	tr := st.Tracer("t")
	root := tr.Start("job", 0)
	time.Sleep(time.Millisecond)
	a := tr.Start("web.query", root.ID())
	a.SetInt("tuples", 5)
	a.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, st.Collect("t")); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid chrome trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Ts <= 0 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
	// The child overlaps the root interval, so it must land on a
	// different lane.
	if doc.TraceEvents[0].Tid == doc.TraceEvents[1].Tid {
		t.Fatalf("overlapping spans share tid %d", doc.TraceEvents[0].Tid)
	}
	if doc.TraceEvents[1].Args["tuples"] != float64(5) {
		t.Fatalf("args = %+v", doc.TraceEvents[1].Args)
	}
}

func TestSummarizeSpan(t *testing.T) {
	rec := SpanRecord{Name: "web.query", Phase: "discover", Duration: 1500 * time.Microsecond}
	rec.setStr("store", "s")
	rec.setInt("tuples", 3)
	got := SummarizeSpan(&rec)
	for _, want := range []string{"web.query", "[discover]", "store=s", "tuples=3"} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary %q missing %q", got, want)
		}
	}
}

// TestSpanRecordZeroAlloc pins the acceptance contract: recording a
// fully annotated span on the query hot path costs 0 heap allocs/op.
// The name matches CI's 'Alloc' run filter.
func TestSpanRecordZeroAlloc(t *testing.T) {
	st := NewSpanStore(1 << 10)
	tr := st.Tracer("t")
	tr.SetPhase("discover")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("web.query", 1)
		sp.SetStr("store", "s")
		sp.SetInt("tuples", 9)
		sp.SetInt("status", 200)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("span record path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestNilTracerZeroAlloc pins the other side: untraced runs pay nothing.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("web.query", 1)
		sp.SetInt("tuples", 9)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	st := NewSpanStore(1 << 12)
	tr := st.Tracer("bench")
	tr.SetPhase("discover")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := tr.Start("web.query", 1)
			sp.SetStr("store", "s")
			sp.SetInt("tuples", 9)
			sp.End()
		}
	})
}
