package qcache

// The retained reference implementation of the cache. This is the
// seed's single-global-mutex design, kept verbatim so that
//
//   - the parity suites can prove the sharded cache observationally
//     identical (same answers, same exact hit/miss/coalesced
//     accounting) under concurrent load, and
//   - the perf harness (cmd/skyperf, scripts/bench.sh) can measure the
//     sharded cache against the exact "before" it replaced: one mutex
//     serializing every lookup, LRU move and stats bump; a strconv
//     string key and a canonical-box allocation per lookup; and the
//     defensive result copy performed while holding the lock.
//
// It is not used by any serving path.

import (
	"strconv"
	"sync"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// RefCache is the seed's shared memo store: one mutex over everything.
type RefCache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*entry
	inflight map[string]*call
	head     *entry // most recently used
	tail     *entry // least recently used
	stats    Stats

	bindings []refBinding
	nextID   uint64
}

// refBinding ties a wrapped backend to its keyspace id (linear scan —
// the O(bindings) lookup the sharded cache's map replaced).
type refBinding struct {
	db Backend
	id uint64
}

// NewRef returns an empty reference cache.
func NewRef(cfg Config) *RefCache {
	max := cfg.MaxEntries
	if max == 0 {
		max = DefaultMaxEntries
	}
	return &RefCache{
		max:      max,
		entries:  map[string]*entry{},
		inflight: map[string]*call{},
	}
}

// Stats returns a snapshot of the counters.
func (c *RefCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memoized answers currently held.
func (c *RefCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Wrap returns a view of db that serves repeated queries from the cache.
func (c *RefCache) Wrap(db Backend) *RefDB { return c.WrapAs(db, db) }

// WrapAs is Wrap with an explicit identity (see Cache.WrapAs).
func (c *RefCache) WrapAs(identity, db Backend) *RefDB {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range c.bindings {
		if comparable_(b.db) && b.db == identity {
			return c.bind(b.id, db)
		}
	}
	c.nextID++
	c.bindings = append(c.bindings, refBinding{db: identity, id: c.nextID})
	if len(c.bindings) > maxBindings {
		c.bindings = append(c.bindings[:0:0], c.bindings[1:]...)
	}
	return c.bind(c.nextID, db)
}

func (c *RefCache) bind(id uint64, db Backend) *RefDB {
	m := db.NumAttrs()
	domains := make([]query.Interval, m)
	for i := 0; i < m; i++ {
		domains[i] = db.Domain(i)
	}
	return &RefDB{cache: c, id: id, db: db, domains: domains}
}

// lruFront moves e to the most-recently-used position.
func (c *RefCache) lruFront(e *entry) {
	if c.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// store memoizes res under key, evicting the LRU entry beyond the bound.
func (c *RefCache) store(key string, res hidden.Result) {
	if e, ok := c.entries[key]; ok {
		e.res = res
		c.lruFront(e)
		return
	}
	e := &entry{key: key, res: res}
	c.entries[key] = e
	c.lruFront(e)
	if c.max > 0 && len(c.entries) > c.max {
		lru := c.tail
		if lru != nil {
			if lru.prev != nil {
				lru.prev.next = nil
			}
			c.tail = lru.prev
			if c.head == lru {
				c.head = nil
			}
			delete(c.entries, lru.key)
			c.stats.Evictions++
		}
	}
}

// RefDB is one backend's cached view through the reference cache.
type RefDB struct {
	cache   *RefCache
	id      uint64
	db      Backend
	domains []query.Interval
}

// key renders the query's canonical box as the seed did: a fresh box
// allocation and strconv digit formatting per lookup.
func (d *RefDB) key(q query.Q) string {
	box := q.Canonicalize(d.domains)
	buf := make([]byte, 0, 16+12*len(box.Dims))
	buf = strconv.AppendUint(buf, d.id, 36)
	for _, iv := range box.Dims {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(iv.Lo), 36)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(iv.Hi), 36)
	}
	return string(buf)
}

// Query implements the hidden-database interface with memoization and
// in-flight deduplication, entirely under the one global mutex — the
// defensive copy of a hit runs inside the critical section.
func (d *RefDB) Query(q query.Q) (hidden.Result, error) {
	key := d.key(q)
	c := d.cache

	c.mu.Lock()
	c.stats.Lookups++
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.lruFront(e)
		res := refCopyResult(e.res)
		c.mu.Unlock()
		return res, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return hidden.Result{}, fl.err
		}
		return refCopyResult(fl.res), nil
	}
	fl := &call{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	fl.res, fl.err = d.db.Query(q)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.store(key, fl.res)
	}
	c.mu.Unlock()
	close(fl.done)

	if fl.err != nil {
		return hidden.Result{}, fl.err
	}
	return refCopyResult(fl.res), nil
}

// NumAttrs implements the hidden-database interface.
func (d *RefDB) NumAttrs() int { return d.db.NumAttrs() }

// K implements the hidden-database interface.
func (d *RefDB) K() int { return d.db.K() }

// Cap implements the hidden-database interface.
func (d *RefDB) Cap(i int) hidden.Capability { return d.db.Cap(i) }

// Domain implements the hidden-database interface.
func (d *RefDB) Domain(i int) query.Interval { return d.domains[i] }

// refCopyResult is the seed's per-row deep copy (1+k allocations).
func refCopyResult(r hidden.Result) hidden.Result {
	out := hidden.Result{Overflow: r.Overflow}
	if r.Tuples != nil {
		out.Tuples = make([][]int, len(r.Tuples))
		for i, t := range r.Tuples {
			out.Tuples[i] = append([]int(nil), t...)
		}
	}
	return out
}
