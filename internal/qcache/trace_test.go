package qcache

import (
	"testing"

	"hiddensky/internal/obs"
	"hiddensky/internal/query"
)

// TestTracedLookupSpans checks the span annotations a traced cached
// view records: one "qcache.lookup" span per Query, the right
// outcome, and the correct parent.
func TestTracedLookupSpans(t *testing.T) {
	db := mkDB(t, 50, rqCaps(2), 5, 0)
	c := New(Config{})
	st := obs.NewSpanStore(64)
	tr := st.Tracer("t")
	v := c.Wrap(db).WithTracer(tr, 7)

	q := query.Q{{Attr: 0, Op: query.LT, Value: 10}}
	if _, err := v.Query(q); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := v.Query(q); err != nil { // hit
		t.Fatal(err)
	}
	spans := st.Collect("t")
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	wantOutcomes := []string{"miss", "hit"}
	for i, rec := range spans {
		if rec.Name != "qcache.lookup" {
			t.Fatalf("span %d name = %q", i, rec.Name)
		}
		if rec.Parent != 7 {
			t.Fatalf("span %d parent = %d, want 7", i, rec.Parent)
		}
		if got, _ := rec.AttrStr("outcome"); got != wantOutcomes[i] {
			t.Fatalf("span %d outcome = %q, want %q", i, got, wantOutcomes[i])
		}
		if _, ok := rec.AttrInt("key"); !ok {
			t.Fatalf("span %d has no key fingerprint", i)
		}
	}
	// Both lookups canonicalize to one box: one fingerprint.
	k0, _ := spans[0].AttrInt("key")
	k1, _ := spans[1].AttrInt("key")
	if k0 != k1 {
		t.Fatalf("fingerprints differ: %d vs %d", k0, k1)
	}
}

// TestTracedLookupHitZeroAlloc pins the acceptance contract on the
// cache side: tracing adds no heap allocation to the warmed hit path.
// (The name matches CI's 'Alloc' run filter, which runs without -race.)
func TestTracedLookupHitZeroAlloc(t *testing.T) {
	db := mkDB(t, 50, rqCaps(2), 5, 0)
	c := New(Config{})
	st := obs.NewSpanStore(1 << 10)
	v := c.Wrap(db).WithTracer(st.Tracer("t"), 1)

	q := query.Q{{Attr: 0, Op: query.LT, Value: 10}}
	res, err := v.Query(q) // warm the entry
	if err != nil {
		t.Fatal(err)
	}
	// The hit path's only allocations are the answer copy itself
	// (copyResult: tuple slice + flat backing array — 2, or 0 for an
	// empty answer). The span must not add to that.
	want := 0.0
	if len(res.Tuples) > 0 {
		want = 2.0
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := v.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > want {
		t.Fatalf("traced hit path allocates %.1f allocs/op, want <= %.1f (tracing must add none)", allocs, want)
	}
}
