package qcache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

func mkDB(t testing.TB, n int, caps []hidden.Capability, k, limit int) *hidden.DB {
	t.Helper()
	data := make([][]int, n)
	for i := range data {
		data[i] = []int{i % 17, (i * 7) % 23, (i * 13) % 11}[:len(caps)]
	}
	db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: k, QueryLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func rqCaps(m int) []hidden.Capability {
	out := make([]hidden.Capability, m)
	for i := range out {
		out[i] = hidden.RQ
	}
	return out
}

func TestCanonicallyEqualQueriesShareOneEntry(t *testing.T) {
	db := mkDB(t, 50, rqCaps(2), 5, 0)
	c := New(Config{})
	v := c.Wrap(db)

	// Four spellings of the same box, in different predicate orders.
	queries := []query.Q{
		{{Attr: 0, Op: query.LT, Value: 10}, {Attr: 1, Op: query.GE, Value: 3}},
		{{Attr: 1, Op: query.GE, Value: 3}, {Attr: 0, Op: query.LT, Value: 10}},
		{{Attr: 0, Op: query.LE, Value: 9}, {Attr: 1, Op: query.GT, Value: 2}},
		{{Attr: 1, Op: query.GT, Value: 2}, {Attr: 0, Op: query.LE, Value: 9}, {Attr: 0, Op: query.LE, Value: 12}},
	}
	var first hidden.Result
	for i, q := range queries {
		res, err := v.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if i == 0 {
			first = res
			continue
		}
		if fmt.Sprint(res.Tuples) != fmt.Sprint(first.Tuples) || res.Overflow != first.Overflow {
			t.Fatalf("query %d answered differently from its canonical twin", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 3 {
		t.Fatalf("stats = %+v, want 1 miss + 3 hits", s)
	}
	if db.QueriesIssued() != 1 {
		t.Fatalf("backend served %d queries, want 1", db.QueriesIssued())
	}
	if s.DedupRatio() != 0.75 {
		t.Fatalf("dedup ratio %v, want 0.75", s.DedupRatio())
	}
}

func TestCachedHitsConsumeNoRateLimitBudget(t *testing.T) {
	db := mkDB(t, 50, rqCaps(2), 5, 1) // backend allows exactly one query
	v := New(Config{}).Wrap(db)
	q := query.Q{{Attr: 0, Op: query.LT, Value: 9}}
	if _, err := v.Query(q); err != nil {
		t.Fatalf("first query: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := v.Query(q.Clone()); err != nil {
			t.Fatalf("cached hit %d consumed the rate limit: %v", i, err)
		}
	}
	// A genuinely new query must still hit the exhausted limit.
	if _, err := v.Query(query.Q{{Attr: 0, Op: query.LT, Value: 5}}); !errors.Is(err, hidden.ErrRateLimited) {
		t.Fatalf("new query = %v, want ErrRateLimited", err)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	db := mkDB(t, 50, rqCaps(2), 5, 0)
	v := New(Config{}).Wrap(db)
	bad := query.Q{{Attr: 7, Op: query.LT, Value: 1}}
	if _, err := v.Query(bad); err == nil {
		t.Fatal("expected a bad-query error")
	}
	if _, err := v.Query(bad); err == nil {
		t.Fatal("expected the error again (errors must not be memoized as answers)")
	}
	if got := v.Cache().Len(); got != 0 {
		t.Fatalf("cache holds %d entries after only failed queries", got)
	}
}

func TestLRUEviction(t *testing.T) {
	db := mkDB(t, 60, rqCaps(2), 5, 0)
	c := New(Config{MaxEntries: 4})
	v := c.Wrap(db)
	for i := 0; i < 8; i++ {
		if _, err := v.Query(query.Q{{Attr: 0, Op: query.LE, Value: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, bound is 4", c.Len())
	}
	s := c.Stats()
	if s.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", s.Evictions)
	}
	// The most recent 4 are hits; the evicted ones miss again.
	before := db.QueriesIssued()
	for i := 4; i < 8; i++ {
		if _, err := v.Query(query.Q{{Attr: 0, Op: query.LE, Value: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if db.QueriesIssued() != before {
		t.Fatal("recently used entries were evicted out of LRU order")
	}
	if _, err := v.Query(query.Q{{Attr: 0, Op: query.LE, Value: 0}}); err != nil {
		t.Fatal(err)
	}
	if db.QueriesIssued() != before+1 {
		t.Fatal("oldest entry should have been evicted and re-fetched")
	}
}

// TestShardStats checks the per-shard telemetry view stays consistent
// with the exact global accounting: occupancy sums to Len and evictions
// sum to Stats().Evictions.
func TestShardStats(t *testing.T) {
	db := mkDB(t, 60, rqCaps(2), 5, 0)
	c := New(Config{MaxEntries: 4})
	v := c.Wrap(db)
	for i := 0; i < 8; i++ {
		if _, err := v.Query(query.Q{{Attr: 0, Op: query.LE, Value: i}}); err != nil {
			t.Fatal(err)
		}
	}
	shards := c.ShardStats()
	if len(shards) != c.NumShards() {
		t.Fatalf("ShardStats returned %d shards, cache has %d", len(shards), c.NumShards())
	}
	entries, evictions := 0, 0
	for _, s := range shards {
		entries += s.Entries
		evictions += s.Evictions
	}
	if entries != c.Len() {
		t.Fatalf("shard entries sum to %d, Len() = %d", entries, c.Len())
	}
	if want := c.Stats().Evictions; evictions != want {
		t.Fatalf("shard evictions sum to %d, Stats().Evictions = %d", evictions, want)
	}
	if evictions != 4 {
		t.Fatalf("evictions = %d, want 4", evictions)
	}
}

// blockingBackend parks every Query until released, counting arrivals.
type blockingBackend struct {
	arrived atomic.Int64
	release chan struct{}
}

func (b *blockingBackend) Query(q query.Q) (hidden.Result, error) {
	b.arrived.Add(1)
	<-b.release
	return hidden.Result{Tuples: [][]int{{1, 1}}}, nil
}
func (b *blockingBackend) NumAttrs() int               { return 2 }
func (b *blockingBackend) K() int                      { return 5 }
func (b *blockingBackend) Cap(i int) hidden.Capability { return hidden.RQ }
func (b *blockingBackend) Domain(i int) query.Interval { return query.Interval{Lo: 0, Hi: 99} }

func TestSingleflightCoalescesConcurrentDuplicates(t *testing.T) {
	back := &blockingBackend{release: make(chan struct{})}
	c := New(Config{})
	v := c.Wrap(back)
	q := query.Q{{Attr: 0, Op: query.LT, Value: 42}}

	const askers = 16
	var wg sync.WaitGroup
	for i := 0; i < askers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := v.Query(q.Clone())
			if err != nil || len(res.Tuples) != 1 {
				t.Errorf("coalesced query: res=%v err=%v", res, err)
			}
		}()
	}
	// Wait until the leader reaches the backend, then release everyone.
	for back.arrived.Load() == 0 {
		runtime.Gosched()
	}
	close(back.release)
	wg.Wait()

	if got := back.arrived.Load(); got != 1 {
		t.Fatalf("backend saw %d queries for one box, want 1", got)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Coalesced != askers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d deduped lookups", s, askers-1)
	}
}

func TestWrapReusesKeyspacePerBackendAndSeparatesBackends(t *testing.T) {
	a := mkDB(t, 40, rqCaps(2), 5, 0)
	b := mkDB(t, 70, rqCaps(2), 5, 0)
	c := New(Config{})
	q := query.Q{{Attr: 0, Op: query.LT, Value: 9}}

	va1, va2, vb := c.Wrap(a), c.Wrap(a), c.Wrap(b)
	if _, err := va1.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := va2.Query(q.Clone()); err != nil {
		t.Fatal(err)
	}
	if a.QueriesIssued() != 1 {
		t.Fatalf("re-wrapping the same backend lost its keyspace: %d backend queries", a.QueriesIssued())
	}
	resB, err := vb.Query(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if b.QueriesIssued() != 1 {
		t.Fatalf("distinct backend was served from another backend's cache (%d queries)", b.QueriesIssued())
	}
	wantB, _ := b.Query(q.Clone())
	if fmt.Sprint(resB.Tuples) != fmt.Sprint(wantB.Tuples) {
		t.Fatal("cached answer differs from the backend's own answer")
	}
}

func TestHitsReturnDefensiveCopies(t *testing.T) {
	db := mkDB(t, 30, rqCaps(2), 5, 0)
	v := New(Config{}).Wrap(db)
	q := query.Q{{Attr: 0, Op: query.LT, Value: 12}}
	r1, err := v.Query(q)
	if err != nil || len(r1.Tuples) == 0 {
		t.Fatalf("res=%v err=%v", r1, err)
	}
	r1.Tuples[0][0] = -999
	r2, err := v.Query(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Tuples[0][0] == -999 {
		t.Fatal("a caller's mutation leaked into the cache")
	}
}
