package qcache

// The sharding parity suite: the N-shard cache must be observationally
// identical to the single-shard configuration (the old global-mutex
// design) under concurrent load — same answers, and exact accounting:
// every lookup classified exactly once, misses equal to the queries the
// backend actually served, hits + coalesced + misses = lookups. Run
// with -race.

import (
	"fmt"
	"sync"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// workloadQueries builds nq distinct two-sided boxes over m attributes,
// wide enough not to collide after domain clamping.
func workloadQueries(nq, m int) []query.Q {
	qs := make([]query.Q, nq)
	for i := range qs {
		qs[i] = query.Q{
			{Attr: i % m, Op: query.LE, Value: 3 + i},
			{Attr: (i + 1) % m, Op: query.GE, Value: i % 5},
		}
	}
	return qs
}

func TestShardedParityWithSingleShard(t *testing.T) {
	const (
		workers = 8
		perG    = 400
		nq      = 64
	)
	mk := func() *hidden.DB {
		data := make([][]int, 500)
		for i := range data {
			data[i] = []int{(i * 131) % 997, (i * 257) % 983, (i * 389) % 971}
		}
		caps := []hidden.Capability{hidden.RQ, hidden.RQ, hidden.RQ}
		db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: 7})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	qs := workloadQueries(nq, 3)

	type run struct {
		stats   Stats
		served  int
		answers []string
		shards  int
	}
	// runWith drives the workload through any cached view (the sharded
	// cache, the single-shard configuration, or the retained seed
	// reference) and snapshots answers + accounting.
	runWith := func(db *hidden.DB, v interface {
		Query(query.Q) (hidden.Result, error)
	}, stats func() Stats, shards int) run {
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					q := qs[(g*37+i)%len(qs)]
					if _, err := v.Query(q.Clone()); err != nil {
						t.Errorf("query failed: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		// Record every box's answer for cross-configuration comparison.
		answers := make([]string, len(qs))
		for i, q := range qs {
			res, err := v.Query(q.Clone())
			if err != nil {
				t.Fatal(err)
			}
			answers[i] = fmt.Sprint(res.Tuples, res.Overflow)
		}
		return run{stats: stats(), served: db.QueriesIssued(), answers: answers, shards: shards}
	}
	runOne := func(shards int) run {
		db := mk()
		c := New(Config{Shards: shards})
		return runWith(db, c.Wrap(db), c.Stats, c.NumShards())
	}
	runRef := func() run {
		db := mk()
		c := NewRef(Config{})
		return runWith(db, c.Wrap(db), c.Stats, 1)
	}

	single := runOne(1)
	sharded := runOne(DefaultShards)
	reference := runRef()
	if single.shards != 1 || sharded.shards != DefaultShards {
		t.Fatalf("shard counts: %d and %d", single.shards, sharded.shards)
	}

	for _, r := range []run{single, sharded, reference} {
		total := workers*perG + nq
		if r.stats.Lookups != total {
			t.Fatalf("shards=%d: %d lookups, want %d", r.shards, r.stats.Lookups, total)
		}
		if got := r.stats.Hits + r.stats.Coalesced + r.stats.Misses; got != r.stats.Lookups {
			t.Fatalf("shards=%d: hits+coalesced+misses = %d, lookups = %d (accounting leaked)",
				r.shards, got, r.stats.Lookups)
		}
		// Exact query accounting: the backend served exactly the misses,
		// and every distinct box missed at least once, at most... exactly
		// once — the first asker pays, everyone else hits or coalesces.
		if r.stats.Misses != r.served {
			t.Fatalf("shards=%d: %d misses but backend served %d", r.shards, r.stats.Misses, r.served)
		}
		if r.stats.Misses != nq {
			t.Fatalf("shards=%d: %d misses for %d distinct boxes", r.shards, r.stats.Misses, nq)
		}
		if r.stats.Evictions != 0 {
			t.Fatalf("shards=%d: unexpected evictions: %+v", r.shards, r.stats)
		}
	}
	for i := range qs {
		if single.answers[i] != sharded.answers[i] || reference.answers[i] != sharded.answers[i] {
			t.Fatalf("box %d answered differently: single %s vs sharded %s vs reference %s",
				i, single.answers[i], sharded.answers[i], reference.answers[i])
		}
	}
	// The hit/coalesced split is timing-dependent (a racer that loses the
	// in-flight window hits the stored entry instead), but the sum — and
	// everything the budget accounting depends on — must agree exactly
	// across all three implementations.
	for _, r := range []run{single, reference} {
		if r.stats.Misses != sharded.stats.Misses ||
			r.stats.Lookups != sharded.stats.Lookups ||
			r.stats.Hits+r.stats.Coalesced != sharded.stats.Hits+sharded.stats.Coalesced {
			t.Fatalf("accounting diverged between configurations:\nother:   %+v\nsharded: %+v", r.stats, sharded.stats)
		}
	}
}

func TestShardCountSelection(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{}, DefaultShards},                     // default bound is large
		{Config{MaxEntries: 4}, 1},                    // tiny cache: exact global LRU
		{Config{MaxEntries: -1}, DefaultShards},       // unbounded
		{Config{MaxEntries: 1 << 20}, DefaultShards},  // large bound
		{Config{Shards: 1}, 1},                        // explicit
		{Config{Shards: 5}, 8},                        // rounded up to a power of two
		{Config{Shards: 16, MaxEntries: 4}, 4},        // capped: >= 1 entry per shard, bound stays exact
		{Config{Shards: 64, MaxEntries: 1 << 16}, 64}, // explicit large
	}
	for _, c := range cases {
		if got := New(c.cfg).NumShards(); got != c.want {
			t.Errorf("New(%+v).NumShards() = %d, want %d", c.cfg, got, c.want)
		}
	}
}

func TestShardedEvictionRespectsGlobalBound(t *testing.T) {
	db := mkDB(t, 60, rqCaps(2), 5, 0)
	// The backend's attribute-0 domain is [0,16], so the sweep below
	// produces 17 distinct canonical boxes; a bound of 8 must evict.
	const bound = 8
	c := New(Config{MaxEntries: bound, Shards: 4})
	v := c.Wrap(db)
	for i := 0; i < 400; i++ {
		if _, err := v.Query(query.Q{{Attr: 0, Op: query.LE, Value: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got > bound {
		t.Fatalf("cache holds %d entries, bound is %d", got, bound)
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("no evictions after overflowing the bound: %+v", s)
	}
}

// TestBinaryKeyDistinguishesBoxes guards the fixed-width binary key:
// boxes that differ in any bound, or belong to different keyspaces,
// must never collide; canonical twins must.
func TestBinaryKeyDistinguishesBoxes(t *testing.T) {
	a := mkDB(t, 40, rqCaps(2), 5, 0)
	b := mkDB(t, 40, rqCaps(2), 5, 0)
	c := New(Config{})
	va, vb := c.Wrap(a), c.Wrap(b)

	// Distinct boxes on one backend: each a miss.
	qs := []query.Q{
		{{Attr: 0, Op: query.LE, Value: 5}},
		{{Attr: 0, Op: query.LE, Value: 6}},
		{{Attr: 1, Op: query.LE, Value: 5}},
		{{Attr: 0, Op: query.GE, Value: 5}},
		{{Attr: 0, Op: query.LE, Value: -3}}, // negative bounds must encode distinctly
	}
	for _, q := range qs {
		if _, err := va.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.QueriesIssued(); got != len(qs) {
		t.Fatalf("distinct boxes collided: backend served %d of %d", got, len(qs))
	}
	// Same box, other keyspace: its own miss.
	if _, err := vb.Query(qs[0].Clone()); err != nil {
		t.Fatal(err)
	}
	if got := b.QueriesIssued(); got != 1 {
		t.Fatalf("keyspaces collided: second backend served %d", got)
	}
	// Canonical twin on the first backend: a hit, no backend traffic.
	before := a.QueriesIssued()
	if _, err := va.Query(query.Q{{Attr: 0, Op: query.LT, Value: 6}}); err != nil { // ≡ LE 5
		t.Fatal(err)
	}
	if a.QueriesIssued() != before {
		t.Fatal("canonical twin missed the cache under the binary key")
	}
}

// TestManyBackendsBindingLookup covers the map-backed binding table: a
// fleet-sized number of backends each keeps its keyspace across
// re-wraps, and answers never cross.
func TestManyBackendsBindingLookup(t *testing.T) {
	c := New(Config{})
	const stores = 200
	dbs := make([]*hidden.DB, stores)
	for i := range dbs {
		dbs[i] = mkDB(t, 30+i, rqCaps(2), 5, 0)
	}
	q := query.Q{{Attr: 0, Op: query.LE, Value: 9}}
	for i, db := range dbs {
		if _, err := c.Wrap(db).Query(q.Clone()); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	// Re-wrapping reuses each keyspace: no backend sees a second query.
	for i, db := range dbs {
		if _, err := c.Wrap(db).Query(q.Clone()); err != nil {
			t.Fatal(err)
		}
		if got := db.QueriesIssued(); got != 1 {
			t.Fatalf("store %d served %d queries after re-wrap, want 1", i, got)
		}
	}
}

func BenchmarkCacheLookupParallel(b *testing.B) {
	for _, shards := range []int{1, DefaultShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db := mkDB(b, 500, rqCaps(3), 7, 0)
			c := New(Config{Shards: shards})
			v := c.Wrap(db)
			qs := workloadQueries(128, 3)
			for _, q := range qs {
				if _, err := v.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := v.Query(qs[i%len(qs)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

func BenchmarkCanonKey(b *testing.B) {
	db := mkDB(b, 100, rqCaps(3), 5, 0)
	v := New(Config{}).Wrap(db)
	q := query.Q{
		{Attr: 0, Op: query.LE, Value: 12},
		{Attr: 1, Op: query.GE, Value: 3},
		{Attr: 2, Op: query.LT, Value: 9},
	}
	var arr [8 + 16*keyStackAttrs]byte
	var ivs [keyStackAttrs]query.Interval
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.appendKey(arr[:0], ivs[:0], q)
	}
}
