// Package qcache is a concurrency-safe memoizing front for hidden-database
// interfaces. Discovery cascades re-ask the same top-k question in many
// syntactic guises — across sibling subtrees, across algorithm phases,
// across repeated runs, and across the members of a federated fleet — and
// every duplicate costs a real (rate-limited, network-priced) web query.
// The cache removes that cost three ways:
//
//   - canonicalization: each conjunctive query is reduced to its canonical
//     box under the backend's advertised domains (multiple predicates per
//     attribute intersect, "A0 < 5" and "A0 <= 4" coincide, predicate order
//     is irrelevant), so syntactically different but semantically identical
//     queries share one cache entry;
//   - memoization: answered boxes are kept in an LRU-bounded store and
//     served back without touching the backend — a cached hit consumes no
//     rate-limit budget;
//   - in-flight deduplication (singleflight): concurrent askers of one box
//     share a single backend query, so a parallel discovery run never pays
//     for the same answer twice even before it is cached.
//
// One Cache may front many backends (a fleet shares one store and one
// entry budget); answers are keyed per backend, so distinct databases
// never cross-contaminate.
package qcache

import (
	"strconv"
	"sync"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// Backend is the minimal querying surface the cache wraps — structurally
// identical to core.Interface (restated here so core can depend on qcache
// without an import cycle).
type Backend interface {
	Query(q query.Q) (hidden.Result, error)
	NumAttrs() int
	K() int
	Cap(i int) hidden.Capability
	Domain(i int) query.Interval
}

// Config tunes a Cache.
type Config struct {
	// MaxEntries bounds the number of memoized answers across all wrapped
	// backends; the least recently used entry is evicted beyond it.
	// Zero picks DefaultMaxEntries; negative means unbounded.
	MaxEntries int
}

// DefaultMaxEntries is the entry bound used when Config.MaxEntries is 0.
const DefaultMaxEntries = 1 << 16

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Lookups counts every Query served through the cache.
	Lookups int
	// Hits counts lookups answered from the memo store.
	Hits int
	// Coalesced counts lookups that shared another caller's in-flight
	// backend query (the singleflight dedup).
	Coalesced int
	// Misses counts lookups that paid a backend query (Lookups - Hits -
	// Coalesced); this is what the backend actually served.
	Misses int
	// Evictions counts entries dropped by the LRU bound.
	Evictions int
}

// DedupRatio is the fraction of lookups answered without a backend query.
func (s Stats) DedupRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(s.Lookups)
}

// entry is one memoized answer, on the LRU list.
type entry struct {
	key        string
	res        hidden.Result
	prev, next *entry
}

// call is one in-flight backend query being shared.
type call struct {
	done chan struct{}
	res  hidden.Result
	err  error
}

// Cache is the shared memo store. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*entry
	inflight map[string]*call
	head     *entry // most recently used
	tail     *entry // least recently used
	stats    Stats

	bindings []binding
	nextID   uint64
}

// binding ties a wrapped backend to its keyspace id so that re-wrapping
// the same backend reuses its cached answers.
type binding struct {
	db Backend
	id uint64
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	max := cfg.MaxEntries
	if max == 0 {
		max = DefaultMaxEntries
	}
	return &Cache{
		max:      max,
		entries:  map[string]*entry{},
		inflight: map[string]*call{},
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memoized answers currently held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Wrap returns a view of db that serves repeated queries from the cache.
// Wrapping the same backend again reuses its keyspace, so answers survive
// across discovery runs; distinct backends never share answers.
func (c *Cache) Wrap(db Backend) *DB { return c.WrapAs(db, db) }

// WrapAs is Wrap with an explicit identity: answers are keyed by identity
// while queries are executed through db. Fleets use it to keep a stable
// keyspace for a store whose querying path is re-wrapped per run (e.g. a
// fresh budget gate each fleet call): identity is the bare store, db the
// gated view. The caller must guarantee db answers exactly as identity
// does (gates and instrumentation are answer-transparent; a different
// database is not).
// maxBindings bounds the remembered backend→keyspace identities. Beyond
// it the oldest binding is forgotten (FIFO): its entries become
// unreachable and age out of the LRU, and re-wrapping that backend simply
// starts a fresh keyspace. This keeps a long-lived shared Cache from
// leaking when it fronts a stream of ephemeral wrappers (e.g. one
// filtered view per request).
const maxBindings = 1024

func (c *Cache) WrapAs(identity, db Backend) *DB {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range c.bindings {
		if comparable_(b.db) && b.db == identity {
			return c.bind(b.id, db)
		}
	}
	c.nextID++
	c.bindings = append(c.bindings, binding{db: identity, id: c.nextID})
	if len(c.bindings) > maxBindings {
		c.bindings = append(c.bindings[:0:0], c.bindings[1:]...)
	}
	return c.bind(c.nextID, db)
}

// comparable_ reports whether the interface value supports ==. Backends
// are normally pointers (always comparable); exotic non-comparable
// implementations just forgo cross-run reuse.
func comparable_(db Backend) bool {
	switch db.(type) {
	case nil:
		return false
	}
	defer func() { _ = recover() }()
	type probe struct{ b Backend }
	return probe{db} == probe{db}
}

func (c *Cache) bind(id uint64, db Backend) *DB {
	m := db.NumAttrs()
	domains := make([]query.Interval, m)
	for i := 0; i < m; i++ {
		domains[i] = db.Domain(i)
	}
	return &DB{cache: c, id: id, db: db, domains: domains}
}

// lruFront moves e to the most-recently-used position.
func (c *Cache) lruFront(e *entry) {
	if c.head == e {
		return
	}
	// unlink
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	// push front
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// store memoizes res under key, evicting the LRU entry beyond the bound.
func (c *Cache) store(key string, res hidden.Result) {
	if e, ok := c.entries[key]; ok {
		e.res = res
		c.lruFront(e)
		return
	}
	e := &entry{key: key, res: res}
	c.entries[key] = e
	c.lruFront(e)
	if c.max > 0 && len(c.entries) > c.max {
		lru := c.tail
		if lru != nil {
			if lru.prev != nil {
				lru.prev.next = nil
			}
			c.tail = lru.prev
			if c.head == lru {
				c.head = nil
			}
			delete(c.entries, lru.key)
			c.stats.Evictions++
		}
	}
}

// DB is one backend's cached view; it implements the same interface as the
// backend it wraps, so discovery algorithms use it unchanged.
type DB struct {
	cache   *Cache
	id      uint64
	db      Backend
	domains []query.Interval
}

// Unwrap returns the backend beneath the cache.
func (d *DB) Unwrap() Backend { return d.db }

// Cache returns the shared store this view draws from.
func (d *DB) Cache() *Cache { return d.cache }

// key renders the query's canonical box in d's keyspace. The box under the
// advertised domains is a complete invariant of the query's semantics on
// this backend (integer attributes), which is what makes memoization safe
// across every capability mixture.
func (d *DB) key(q query.Q) string {
	box := q.Canonicalize(d.domains)
	buf := make([]byte, 0, 16+12*len(box.Dims))
	buf = strconv.AppendUint(buf, d.id, 36)
	for _, iv := range box.Dims {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(iv.Lo), 36)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(iv.Hi), 36)
	}
	return string(buf)
}

// Query implements the hidden-database interface with memoization and
// in-flight deduplication. Cached and coalesced answers never reach the
// backend, so they consume no rate-limit budget.
func (d *DB) Query(q query.Q) (hidden.Result, error) {
	key := d.key(q)
	c := d.cache

	c.mu.Lock()
	c.stats.Lookups++
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.lruFront(e)
		res := copyResult(e.res)
		c.mu.Unlock()
		return res, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return hidden.Result{}, fl.err
		}
		return copyResult(fl.res), nil
	}
	fl := &call{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	fl.res, fl.err = d.db.Query(q)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.store(key, fl.res)
	}
	c.mu.Unlock()
	close(fl.done)

	if fl.err != nil {
		return hidden.Result{}, fl.err
	}
	return copyResult(fl.res), nil
}

// NumAttrs implements the hidden-database interface.
func (d *DB) NumAttrs() int { return d.db.NumAttrs() }

// K implements the hidden-database interface.
func (d *DB) K() int { return d.db.K() }

// Cap implements the hidden-database interface.
func (d *DB) Cap(i int) hidden.Capability { return d.db.Cap(i) }

// Domain implements the hidden-database interface.
func (d *DB) Domain(i int) query.Interval { return d.domains[i] }

// copyResult deep-copies the tuples so concurrent callers can never alias
// each other's (or the cache's) answer.
func copyResult(r hidden.Result) hidden.Result {
	out := hidden.Result{Overflow: r.Overflow}
	if r.Tuples != nil {
		out.Tuples = make([][]int, len(r.Tuples))
		for i, t := range r.Tuples {
			out.Tuples[i] = append([]int(nil), t...)
		}
	}
	return out
}
