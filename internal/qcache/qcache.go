// Package qcache is a concurrency-safe memoizing front for hidden-database
// interfaces. Discovery cascades re-ask the same top-k question in many
// syntactic guises — across sibling subtrees, across algorithm phases,
// across repeated runs, and across the members of a federated fleet — and
// every duplicate costs a real (rate-limited, network-priced) web query.
// The cache removes that cost three ways:
//
//   - canonicalization: each conjunctive query is reduced to its canonical
//     box under the backend's advertised domains (multiple predicates per
//     attribute intersect, "A0 < 5" and "A0 <= 4" coincide, predicate order
//     is irrelevant), so syntactically different but semantically identical
//     queries share one cache entry;
//   - memoization: answered boxes are kept in an LRU-bounded store and
//     served back without touching the backend — a cached hit consumes no
//     rate-limit budget;
//   - in-flight deduplication (singleflight): concurrent askers of one box
//     share a single backend query, so a parallel discovery run never pays
//     for the same answer twice even before it is cached.
//
// The store is sharded for contention-free parallel lookups: entries are
// spread over N independent shards (each with its own mutex, LRU list and
// in-flight table) by a hash of the compact fixed-width binary canonical
// key, and the global hit/miss/coalesced counters are atomics — so the 8-
// or 16-goroutine lookup storms of a parallel discovery run or a fleet
// never serialize on one lock. Accounting stays exact: every lookup is
// classified hit, coalesced or miss under its shard's lock, and the number
// of misses equals the number of queries the backend actually served.
//
// One Cache may front many backends (a fleet shares one store and one
// entry budget); answers are keyed per backend, so distinct databases
// never cross-contaminate.
package qcache

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
)

// Backend is the minimal querying surface the cache wraps — structurally
// identical to core.Interface (restated here so core can depend on qcache
// without an import cycle).
type Backend interface {
	Query(q query.Q) (hidden.Result, error)
	NumAttrs() int
	K() int
	Cap(i int) hidden.Capability
	Domain(i int) query.Interval
}

// Config tunes a Cache.
type Config struct {
	// MaxEntries bounds the number of memoized answers across all wrapped
	// backends; the least recently used entry is evicted beyond it.
	// Zero picks DefaultMaxEntries; negative means unbounded.
	MaxEntries int
	// Shards is the number of independent lock domains the entry store is
	// split across (rounded up to a power of two, and capped so a bounded
	// cache keeps at least one entry per shard — MaxEntries stays an
	// exact global bound). Zero picks DefaultShards for large caches, and
	// a single shard when MaxEntries is small (below DefaultShards
	// entries per shard) — a single shard keeps the LRU eviction order
	// globally exact, which tiny caches care about and huge ones don't.
	Shards int
}

// DefaultMaxEntries is the entry bound used when Config.MaxEntries is 0.
const DefaultMaxEntries = 1 << 16

// DefaultShards is the shard count used when Config.Shards is 0 and the
// cache is large enough to spread: enough lock domains that a 16-worker
// discovery run rarely collides, few enough that the per-shard LRU bound
// stays meaningful.
const DefaultShards = 16

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Lookups counts every Query served through the cache.
	Lookups int
	// Hits counts lookups answered from the memo store.
	Hits int
	// Coalesced counts lookups that shared another caller's in-flight
	// backend query (the singleflight dedup).
	Coalesced int
	// Misses counts lookups that paid a backend query (Lookups - Hits -
	// Coalesced); this is what the backend actually served.
	Misses int
	// Evictions counts entries dropped by the LRU bound.
	Evictions int
}

// DedupRatio is the fraction of lookups answered without a backend query.
func (s Stats) DedupRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(s.Lookups)
}

// entry is one memoized answer, on its shard's LRU list.
type entry struct {
	key        string
	res        hidden.Result
	prev, next *entry
}

// call is one in-flight backend query being shared.
type call struct {
	done chan struct{}
	res  hidden.Result
	err  error
}

// shard is one independent lock domain of the memo store: its own mutex,
// entry map, LRU list, in-flight table and entry bound. Padded so two
// shards' mutexes never share a cache line (false sharing would hand the
// contention right back).
type shard struct {
	mu        sync.Mutex
	max       int // per-shard entry bound; <= 0 means unbounded
	entries   map[string]*entry
	inflight  map[string]*call
	head      *entry // most recently used
	tail      *entry // least recently used
	evictions int64  // entries this shard dropped; guarded by mu
	_         [64]byte
}

// Cache is the shared memo store. Safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64

	// Global counters, atomically bumped under the owning shard's lock —
	// exact totals without a global mutex.
	lookups, hits, coalesced, misses, evictions atomic.Int64

	// bindings ties wrapped backends to keyspace ids so that re-wrapping
	// the same backend reuses its cached answers. Map-keyed on the
	// backend (O(1) per Wrap, however many stores a fleet registers);
	// bindOrder keeps FIFO eviction order for the maxBindings bound.
	bmu       sync.Mutex
	bindings  map[Backend]uint64
	bindOrder []Backend
	nextID    uint64
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	max := cfg.MaxEntries
	if max == 0 {
		max = DefaultMaxEntries
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
		if max > 0 && max < DefaultShards*DefaultShards {
			// A small bounded cache keeps one shard: sharding a tiny LRU
			// would make eviction order depend on key hashes.
			n = 1
		}
	}
	// Round up to a power of two so shard selection is a mask — then cap
	// the count so a bounded cache keeps at least one entry per shard
	// (more shards than entries would silently raise the global bound).
	pow := 1
	for pow < n {
		pow <<= 1
	}
	if max > 0 {
		for pow > 1 && max/pow == 0 {
			pow >>= 1
		}
	}
	c := &Cache{
		shards:   make([]shard, pow),
		mask:     uint64(pow - 1),
		bindings: map[Backend]uint64{},
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.entries = map[string]*entry{}
		sh.inflight = map[string]*call{}
		if max > 0 {
			// Distribute the bound: the first (max % pow) shards take the
			// remainder, so the per-shard bounds sum exactly to max (the
			// cap above guarantees max/pow >= 1).
			sh.max = max / pow
			if i < max%pow {
				sh.max++
			}
		} else {
			sh.max = -1
		}
	}
	return c
}

// NumShards returns the number of independent lock domains.
func (c *Cache) NumShards() int { return len(c.shards) }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:   int(c.lookups.Load()),
		Hits:      int(c.hits.Load()),
		Coalesced: int(c.coalesced.Load()),
		Misses:    int(c.misses.Load()),
		Evictions: int(c.evictions.Load()),
	}
}

// ShardStat is one shard's live occupancy and eviction history —
// the per-lock-domain view behind the global Stats aggregate. A
// lopsided Entries spread means the key hash is clustering; Evictions
// concentrated on few shards means those shards' LRU bounds are the
// ones under pressure.
type ShardStat struct {
	// Entries is the number of memoized answers the shard holds now.
	Entries int `json:"entries"`
	// Evictions counts entries this shard has dropped over its lifetime.
	Evictions int `json:"evictions"`
}

// ShardStats snapshots every shard. Shards are locked one at a time, so
// the snapshot is per-shard exact but not a global atomic cut (fine for
// telemetry; Stats remains the exact global accounting).
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out[i] = ShardStat{Entries: len(sh.entries), Evictions: int(sh.evictions)}
		sh.mu.Unlock()
	}
	return out
}

// ShardStat snapshots one shard without allocating — the form the
// metrics GaugeFuncs use, where ShardStats' slice-per-scrape would
// show up on the sampler's tick path.
func (c *Cache) ShardStat(i int) ShardStat {
	sh := &c.shards[i]
	sh.mu.Lock()
	st := ShardStat{Entries: len(sh.entries), Evictions: int(sh.evictions)}
	sh.mu.Unlock()
	return st
}

// Evictions returns the lifetime eviction total across all shards.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Len returns the number of memoized answers currently held.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Wrap returns a view of db that serves repeated queries from the cache.
// Wrapping the same backend again reuses its keyspace, so answers survive
// across discovery runs; distinct backends never share answers.
func (c *Cache) Wrap(db Backend) *DB { return c.WrapAs(db, db) }

// WrapAs is Wrap with an explicit identity: answers are keyed by identity
// while queries are executed through db. Fleets use it to keep a stable
// keyspace for a store whose querying path is re-wrapped per run (e.g. a
// fresh budget gate each fleet call): identity is the bare store, db the
// gated view. The caller must guarantee db answers exactly as identity
// does (gates and instrumentation are answer-transparent; a different
// database is not).
// maxBindings bounds the remembered backend→keyspace identities. Beyond
// it the oldest binding is forgotten (FIFO): its entries become
// unreachable and age out of the LRU, and re-wrapping that backend simply
// starts a fresh keyspace. This keeps a long-lived shared Cache from
// leaking when it fronts a stream of ephemeral wrappers (e.g. one
// filtered view per request).
const maxBindings = 1024

func (c *Cache) WrapAs(identity, db Backend) *DB {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	ok := comparable_(identity)
	if ok {
		if id, found := c.bindings[identity]; found {
			return c.bind(id, db)
		}
	}
	c.nextID++
	id := c.nextID
	if ok {
		// Non-comparable backends are not remembered (they could never be
		// found again); they simply forgo cross-run keyspace reuse.
		c.bindings[identity] = id
		c.bindOrder = append(c.bindOrder, identity)
		if len(c.bindOrder) > maxBindings {
			oldest := c.bindOrder[0]
			c.bindOrder = append(c.bindOrder[:0:0], c.bindOrder[1:]...)
			delete(c.bindings, oldest)
		}
	}
	return c.bind(id, db)
}

// comparable_ reports whether the interface value supports ==. Backends
// are normally pointers (always comparable); exotic non-comparable
// implementations just forgo cross-run reuse.
func comparable_(db Backend) (ok bool) {
	switch db.(type) {
	case nil:
		return false
	}
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	type probe struct{ b Backend }
	return probe{db} == probe{db}
}

func (c *Cache) bind(id uint64, db Backend) *DB {
	m := db.NumAttrs()
	domains := make([]query.Interval, m)
	for i := 0; i < m; i++ {
		domains[i] = db.Domain(i)
	}
	return &DB{cache: c, id: id, db: db, domains: domains}
}

// fnv64 hashes key with FNV-1a. It doubles as the compact fingerprint
// a traced lookup records as its "key" span attribute.
func fnv64(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// shardFor picks the lock domain of a key: FNV-1a over the key bytes,
// masked to the (power-of-two) shard count.
func (c *Cache) shardFor(key []byte) *shard {
	return &c.shards[fnv64(key)&c.mask]
}

// lruFront moves e to the shard's most-recently-used position. Callers
// hold sh.mu.
func (sh *shard) lruFront(e *entry) {
	if sh.head == e {
		return
	}
	// unlink
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if sh.tail == e {
		sh.tail = e.prev
	}
	// push front
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// store memoizes res under key, evicting the shard's LRU entry beyond
// its bound. Callers hold sh.mu; the eviction counter is global.
func (sh *shard) store(c *Cache, key string, res hidden.Result) {
	if e, ok := sh.entries[key]; ok {
		e.res = res
		sh.lruFront(e)
		return
	}
	e := &entry{key: key, res: res}
	sh.entries[key] = e
	sh.lruFront(e)
	if sh.max > 0 && len(sh.entries) > sh.max {
		lru := sh.tail
		if lru != nil {
			if lru.prev != nil {
				lru.prev.next = nil
			}
			sh.tail = lru.prev
			if sh.head == lru {
				sh.head = nil
			}
			delete(sh.entries, lru.key)
			sh.evictions++
			c.evictions.Add(1)
		}
	}
}

// DB is one backend's cached view; it implements the same interface as the
// backend it wraps, so discovery algorithms use it unchanged.
type DB struct {
	cache   *Cache
	id      uint64
	db      Backend
	domains []query.Interval
	tracer  *obs.Tracer // nil: untraced lookups
	parent  uint64      // span id lookup spans hang under
}

// Unwrap returns the backend beneath the cache.
func (d *DB) Unwrap() Backend { return d.db }

// Cache returns the shared store this view draws from.
func (d *DB) Cache() *Cache { return d.cache }

// WithTracer returns a view of this cached backend whose lookups each
// record one "qcache.lookup" span under parent, annotated with the
// canonical key's fingerprint and the outcome (hit / miss /
// coalesced). The view shares the store and keyspace, so a serving
// layer hands each job a traced handle without re-binding the backend.
// Tracing adds no heap allocation to the hit path.
func (d *DB) WithTracer(t *obs.Tracer, parent uint64) *DB {
	v := *d
	v.tracer = t
	v.parent = parent
	return &v
}

// keyStackAttrs is the attribute count up to which key derivation runs
// entirely on the stack (scratch intervals + key bytes). Wider schemas
// fall back to heap buffers; 16 covers every dataset in the repository.
const keyStackAttrs = 16

// appendKey renders the query's canonical box in d's keyspace as a
// compact fixed-width binary key: 8 big-endian bytes of keyspace id,
// then 16 bytes (Lo, Hi as big-endian two's-complement) per attribute.
// No strconv digit formatting, no separators — width is fixed by the
// schema, so the encoding is trivially prefix-free. The box under the
// advertised domains is a complete invariant of the query's semantics on
// this backend (integer attributes), which is what makes memoization
// safe across every capability mixture.
func (d *DB) appendKey(dst []byte, scratch []query.Interval, q query.Q) []byte {
	box := q.CanonicalizeInto(scratch, d.domains)
	dst = binary.BigEndian.AppendUint64(dst, d.id)
	for _, iv := range box.Dims {
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(iv.Lo)))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(iv.Hi)))
	}
	return dst
}

// Query implements the hidden-database interface with memoization and
// in-flight deduplication. Cached and coalesced answers never reach the
// backend, so they consume no rate-limit budget. The hot path (a hit) is
// allocation-free: the key is built into stack buffers and map lookups
// use the no-copy string view of those bytes.
func (d *DB) Query(q query.Q) (hidden.Result, error) {
	var keyArr [8 + 16*keyStackAttrs]byte
	var ivArr [keyStackAttrs]query.Interval
	var key []byte
	if len(d.domains) <= keyStackAttrs {
		key = d.appendKey(keyArr[:0], ivArr[:0], q)
	} else {
		key = d.appendKey(make([]byte, 0, 8+16*len(d.domains)), nil, q)
	}
	c := d.cache
	h := fnv64(key)
	sh := &c.shards[h&c.mask]
	sp := d.tracer.Start("qcache.lookup", d.parent)
	sp.SetInt("key", int64(h))

	sh.mu.Lock()
	c.lookups.Add(1)
	if e, ok := sh.entries[string(key)]; ok {
		c.hits.Add(1)
		sh.lruFront(e)
		res := e.res
		sh.mu.Unlock()
		sp.SetStr("outcome", "hit")
		sp.End()
		// Copy outside the critical section: the snapshot's backing
		// arrays are never mutated (entries are replaced wholesale and
		// callers only ever receive copies), so the lock protects just
		// the map/LRU bookkeeping — the hot hit path holds it for tens
		// of nanoseconds.
		return copyResult(res), nil
	}
	if fl, ok := sh.inflight[string(key)]; ok {
		c.coalesced.Add(1)
		sh.mu.Unlock()
		<-fl.done
		sp.SetStr("outcome", "coalesced")
		sp.End()
		if fl.err != nil {
			return hidden.Result{}, fl.err
		}
		return copyResult(fl.res), nil
	}
	fl := &call{done: make(chan struct{})}
	skey := string(key) // the one allocation, on the miss path only
	sh.inflight[skey] = fl
	c.misses.Add(1)
	sh.mu.Unlock()
	sp.SetStr("outcome", "miss")

	fl.res, fl.err = d.db.Query(q)

	sh.mu.Lock()
	delete(sh.inflight, skey)
	if fl.err == nil {
		sh.store(c, skey, fl.res)
	}
	sh.mu.Unlock()
	close(fl.done)
	sp.End()

	if fl.err != nil {
		return hidden.Result{}, fl.err
	}
	return copyResult(fl.res), nil
}

// NumAttrs implements the hidden-database interface.
func (d *DB) NumAttrs() int { return d.db.NumAttrs() }

// K implements the hidden-database interface.
func (d *DB) K() int { return d.db.K() }

// Cap implements the hidden-database interface.
func (d *DB) Cap(i int) hidden.Capability { return d.db.Cap(i) }

// Domain implements the hidden-database interface.
func (d *DB) Domain(i int) query.Interval { return d.domains[i] }

// copyResult deep-copies the tuples so concurrent callers can never alias
// each other's (or the cache's) answer. The rows share one flat backing
// array (two allocations instead of 1+k), capped so a caller's append
// cannot cross into the next row.
func copyResult(r hidden.Result) hidden.Result {
	out := hidden.Result{Overflow: r.Overflow}
	if r.Tuples != nil {
		out.Tuples = make([][]int, len(r.Tuples))
		width := 0
		for _, t := range r.Tuples {
			width += len(t)
		}
		flat := make([]int, 0, width)
		for i, t := range r.Tuples {
			start := len(flat)
			flat = append(flat, t...)
			out.Tuples[i] = flat[start:len(flat):len(flat)]
		}
	}
	return out
}
