package answer

// The parity suite: the arena/columnar fast path (TopK / TopKAppend)
// must be observationally identical — byte for byte, including float
// bit patterns and tie-breaks — to the retained naive reference
// (ReferenceTopK) on randomized stores across the full request grid:
// weights (including zeros), k (including k > band and k > store),
// filters (none, selective, empty, unbounded), and normalization.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// parityStore builds a randomized store.
func parityStore(rng *rand.Rand) *Store {
	n := 30 + rng.Intn(400)
	m := 2 + rng.Intn(4)
	domain := 5 + rng.Intn(60) // small domains force score ties
	bandK := 1 + rng.Intn(8)
	shard := 1 + rng.Intn(128)
	s, err := Build(genData(rng, n, m, domain), Options{BandK: bandK, ShardSize: shard})
	if err != nil {
		panic(err)
	}
	return s
}

// parityQuery builds a randomized request against s, sometimes invalid.
func parityQuery(rng *rand.Rand, s *Store) TopKQuery {
	m := s.NumAttrs()
	w := make([]float64, m)
	for a := range w {
		switch rng.Intn(4) {
		case 0: // exact zero weights exercise the skipped-column path
		default:
			w[a] = rng.Float64() * 4
		}
	}
	if rng.Intn(8) > 0 { // usually make it valid
		w[rng.Intn(m)] += 0.5
	}
	q := TopKQuery{
		Weights:    w,
		K:          1 + rng.Intn(s.Len()+10),
		Normalized: rng.Intn(2) == 0,
	}
	switch rng.Intn(3) {
	case 0: // unfiltered
	case 1: // one or two selective ranges
		for f := 0; f <= rng.Intn(2); f++ {
			a := rng.Intn(m)
			lo := rng.Intn(70) - 5
			q.Filter = append(q.Filter, Range{Attr: a, Lo: lo, Hi: lo + rng.Intn(40)})
		}
	case 2: // unbounded range (matches everything on that attribute)
		q.Filter = append(q.Filter, Unbounded(rng.Intn(m)))
	}
	return q
}

func checkParity(t *testing.T, s *Store, q TopKQuery) {
	t.Helper()
	got, gotErr := s.TopK(q)
	want, wantErr := s.ReferenceTopK(q)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error parity broken: arena err=%v reference err=%v (q=%+v)", gotErr, wantErr, q)
	}
	if gotErr != nil {
		return
	}
	if got.Exact != want.Exact {
		t.Fatalf("exactness parity broken: arena %v, reference %v (q=%+v)", got.Exact, want.Exact, q)
	}
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatalf("answer parity broken for q=%+v:\narena:     %v\nreference: %v", q, got.Items, want.Items)
	}
}

// TestTopKParityRandomized sweeps randomized stores × the request grid.
func TestTopKParityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		s := parityStore(rng)
		for rep := 0; rep < 25; rep++ {
			checkParity(t, s, parityQuery(rng, s))
		}
	}
}

// TestTopKParityQuick drives the same property through testing/quick's
// generator on one fixed store: any (weights, k, normalized, filter
// window) combination answers identically on both paths.
func TestTopKParityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s, err := Build(genData(rng, 300, 3, 25), Options{BandK: 5, ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(w0, w1, w2 float64, k uint8, normalized bool, fAttr uint8, fLo int8, fSpan uint8) bool {
		abs := func(v float64) float64 {
			if v < 0 {
				return -v
			}
			return v
		}
		q := TopKQuery{
			Weights:    []float64{abs(w0), abs(w1), abs(w2) + 0.01},
			K:          1 + int(k),
			Normalized: normalized,
		}
		if fSpan > 0 {
			q.Filter = []Range{{Attr: int(fAttr) % 3, Lo: int(fLo), Hi: int(fLo) + int(fSpan)}}
		}
		got, gotErr := s.TopK(q)
		want, wantErr := s.ReferenceTopK(q)
		if (gotErr == nil) != (wantErr == nil) {
			return false
		}
		if gotErr != nil {
			return true
		}
		return got.Exact == want.Exact && reflect.DeepEqual(got.Items, want.Items)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKParityParallelPath forces the goroutine fan-out (candidates
// beyond the spawn threshold, many shards) and checks it against the
// reference, which shards at its own (smaller) threshold.
func TestTopKParityParallelPath(t *testing.T) {
	if testing.Short() {
		t.Skip("large store")
	}
	rng := rand.New(rand.NewSource(43))
	n := minParallelCandidates + 4000
	s, err := Build(genData(rng, n, 3, 1000000), Options{BandK: 4, ShardSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() <= minParallelCandidates {
		t.Fatalf("store too small to exercise the parallel path: %d", s.Len())
	}
	// An unbounded filter admits every tuple, so the candidate set is the
	// whole store — well past the spawn threshold. k stays small (the
	// serving shape); selection cost is O(candidates · k).
	for rep := 0; rep < 6; rep++ {
		q := parityQuery(rng, s)
		q.K = 1 + rng.Intn(64)
		q.Filter = []Range{Unbounded(rng.Intn(3))}
		checkParity(t, s, q)
	}
}

// TestTopKAppendReusesBuffer pins the zero-allocation contract: a caller
// reusing its result slice and issuing the same shaped request must not
// allocate on the unfiltered path.
func TestTopKAppendReusesBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomizes sync.Pool; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(44))
	s, err := Build(genData(rng, 2000, 3, 500), Options{BandK: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 0.5, 2}
	var dst []Ranked
	// Warm the scratch pool and the destination buffer.
	res, err := s.TopKAppend(TopKQuery{Weights: w, K: 8}, dst)
	if err != nil {
		t.Fatal(err)
	}
	dst = res.Items
	allocs := testing.AllocsPerRun(200, func() {
		r, err := s.TopKAppend(TopKQuery{Weights: w, K: 8}, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		dst = r.Items
	})
	if allocs != 0 {
		t.Fatalf("unfiltered TopKAppend allocates %v per op, want 0", allocs)
	}
}
