package answer

// The retained reference implementation of TopK. This is the seed's
// row-major, allocating hot path, kept verbatim so that
//
//   - the parity suites (answer parity tests, run under -race) can
//     prove the arena/columnar fast path observationally identical on
//     randomized stores, and
//   - the perf harness (internal/perf, cmd/skyperf, scripts/bench.sh)
//     can measure the fast path against the exact "before" it replaced
//     — same store, same request, same machine.
//
// It is not called by any serving path.

// ReferenceTopK answers a top-k request exactly like TopK, via the
// naive pre-arena implementation: per-request candidate append loops,
// row-major per-tuple scoring, and a final re-scoring of the winners.
// TopK must return byte-identical results.
func (s *Store) ReferenceTopK(q TopKQuery) (TopKResult, error) {
	if err := s.checkQuery(&q); err != nil {
		return TopKResult{}, err
	}
	var cand []int
	if len(q.Filter) == 0 {
		for l := 0; l < s.numLevels() && l < q.K; l++ {
			cand = append(cand, s.levelSlice(l)...)
		}
	} else {
		cand = s.filtered(q.Filter)
	}
	items := s.refSelectTopK(cand, q, q.K)
	exact := len(q.Filter) == 0 && q.K <= s.bandK
	return TopKResult{Items: items, Exact: exact}, nil
}

// refScore computes the request's score of tuple i row-major, the way
// the seed did.
func (s *Store) refScore(q *TopKQuery, i int) float64 {
	sum := 0.0
	if q.Normalized {
		for a, w := range q.Weights {
			sum += w * s.norm[a][i]
		}
		return sum
	}
	t := s.tuples[i]
	for a, w := range q.Weights {
		sum += w * float64(t[a])
	}
	return sum
}

// refSelectTopK is the seed's selectTopK: spawn a goroutine per shard
// whenever the candidate set exceeds one shard, merge, and re-rank.
func (s *Store) refSelectTopK(cand []int, q TopKQuery, k int) []Ranked {
	if len(cand) == 0 {
		return nil
	}
	if k > len(cand) {
		k = len(cand)
	}
	if len(cand) <= s.shard {
		return s.refRank(s.refLocalTopK(cand, &q, k), &q)
	}
	shards := (len(cand) + s.shard - 1) / s.shard
	locals := make([][]int, shards)
	done := make(chan int, shards)
	for sh := 0; sh < shards; sh++ {
		from := sh * s.shard
		to := from + s.shard
		if to > len(cand) {
			to = len(cand)
		}
		go func(sh int, part []int) {
			locals[sh] = s.refLocalTopK(part, &q, k)
			done <- sh
		}(sh, cand[from:to])
	}
	for i := 0; i < shards; i++ {
		<-done
	}
	var merged []int
	for _, l := range locals {
		merged = append(merged, l...)
	}
	return s.refRank(s.refLocalTopK(merged, &q, k), &q)
}

// refLocalTopK is the seed's localTopK: insertion into a small ordered
// window, allocating the window per request and scoring row-major.
func (s *Store) refLocalTopK(cand []int, q *TopKQuery, k int) []int {
	best := make([]int, 0, k)
	scores := make([]float64, 0, k)
	for _, i := range cand {
		sc := s.refScore(q, i)
		if len(best) == k && !s.better(sc, i, scores[k-1], best[k-1]) {
			continue
		}
		pos := len(best)
		for pos > 0 && s.better(sc, i, scores[pos-1], best[pos-1]) {
			pos--
		}
		if len(best) < k {
			best = append(best, 0)
			scores = append(scores, 0)
		}
		copy(best[pos+1:], best[pos:])
		copy(scores[pos+1:], scores[pos:])
		best[pos], scores[pos] = i, sc
	}
	return best
}

// refRank is the seed's rank: it re-scores every winner (the
// double-scoring the arena path eliminates by threading scores
// through the selection window).
func (s *Store) refRank(idx []int, q *TopKQuery) []Ranked {
	out := make([]Ranked, len(idx))
	for x, i := range idx {
		out[x] = Ranked{Tuple: s.tuples[i], Score: s.refScore(q, i), Level: s.level[i]}
	}
	return out
}
