// Binary columnar snapshots: the Store's arena layout, serialized as-is.
//
// Build is O(L·n²) skyline peeling plus per-attribute sorts — cheap next
// to discovery, expensive next to a daemon restart that replays it for
// every published index. AppendBinary writes the *built* arenas (level
// offsets, level arena, tuple arena, projections, raw and normalized
// columns) in one versioned, length-prefixed, checksummed block, so
// LoadBinary recovers a store by decoding slices instead of re-indexing:
// read, checksum, slice. The JSON job snapshot remains the durable
// source of truth — a missing or corrupt binary (wrong magic, version,
// checksum, or section shape) only costs a fallback to Build.
//
// Format (all integers little-endian; ints as two's-complement uint64):
//
//	[0:8)   magic "HSKYANS1"
//	[8:12)  uint32 format version
//	[12:16) uint32 CRC-32C (Castagnoli) of everything after this header
//	[16:)   uint64 n, m, bandK, shard, then length-prefixed sections
//	        (uint64 count + count×8 bytes each) in fixed order:
//	        levelOff, levelArena, level, flat (n×m), lo (m), hi (m),
//	        proj (m×n, concatenated), cols (m×n float64), norm (m×n).
package answer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	binaryMagic = "HSKYANS1"
	// BinaryVersion is the snapshot format version. LoadBinary rejects
	// any other value: a format change means re-indexing from JSON, not
	// guessing at an old layout.
	BinaryVersion uint32 = 1

	binaryHeaderLen = 16
)

// ErrBadBinary reports a snapshot LoadBinary refused: truncated, wrong
// magic or version, checksum mismatch, or inconsistent section shapes.
var ErrBadBinary = errors.New("answer: bad binary snapshot")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendBinary appends the store's binary snapshot to dst and returns
// the extended slice. The encoding is deterministic: the same store
// always serializes to the same bytes.
func (s *Store) AppendBinary(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, binaryMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, BinaryVersion)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // checksum placeholder
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(s.tuples)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.m))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(s.bandK)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(s.shard)))
	dst = appendIntSection(dst, s.levelOff)
	dst = appendIntSection(dst, s.levelArena)
	dst = appendIntSection(dst, s.level)
	dst = appendIntSection(dst, s.flat)
	dst = appendIntSection(dst, s.lo)
	dst = appendIntSection(dst, s.hi)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.m*len(s.tuples)))
	for _, p := range s.proj {
		for _, v := range p {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(v)))
		}
	}
	dst = appendFloatSection(dst, s.cols, len(s.tuples))
	dst = appendFloatSection(dst, s.norm, len(s.tuples))
	sum := crc32.Checksum(dst[start+binaryHeaderLen:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start+12:start+binaryHeaderLen], sum)
	return dst
}

func appendIntSection(dst []byte, vals []int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(v)))
	}
	return dst
}

func appendFloatSection(dst []byte, cols [][]float64, n int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(cols)*n))
	for _, col := range cols {
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// binReader walks a snapshot payload with bounds checking; any overrun
// trips bad() exactly once and sticks.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) bad(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadBinary, fmt.Sprintf(format, args...))
	}
}

func (r *binReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.bad("truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *binReader) intVal() int { return int(int64(r.u64())) }

// intSection decodes a length-prefixed int section, requiring exactly
// want entries (want < 0: any count).
func (r *binReader) intSection(name string, want int) []int {
	count := r.u64()
	if r.err != nil {
		return nil
	}
	if want >= 0 && count != uint64(want) {
		r.bad("section %s has %d entries, want %d", name, count, want)
		return nil
	}
	if count > uint64(len(r.data)-r.off)/8 {
		r.bad("section %s overruns the snapshot", name)
		return nil
	}
	out := make([]int, count)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(r.data[r.off:])))
		r.off += 8
	}
	return out
}

func (r *binReader) floatSection(name string, want int) []float64 {
	count := r.u64()
	if r.err != nil {
		return nil
	}
	if count != uint64(want) {
		r.bad("section %s has %d entries, want %d", name, count, want)
		return nil
	}
	if count > uint64(len(r.data)-r.off)/8 {
		r.bad("section %s overruns the snapshot", name)
		return nil
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
		r.off += 8
	}
	return out
}

// LoadBinary reconstructs a store from an AppendBinary snapshot without
// re-running any of Build's indexing: the decoded sections *are* the
// in-memory arenas. It verifies magic, version, checksum, section
// shapes, and index bounds, so a torn or doctored file returns
// ErrBadBinary instead of a corrupt store. The returned store has no
// metrics attached (see SetMetrics).
func LoadBinary(data []byte) (*Store, error) {
	if len(data) < binaryHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrBadBinary, len(data))
	}
	if string(data[:8]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadBinary, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != BinaryVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrBadBinary, v, BinaryVersion)
	}
	want := binary.LittleEndian.Uint32(data[12:16])
	if got := crc32.Checksum(data[binaryHeaderLen:], castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrBadBinary, got, want)
	}
	r := &binReader{data: data, off: binaryHeaderLen}
	n := r.intVal()
	m := r.intVal()
	bandK := r.intVal()
	shard := r.intVal()
	if r.err == nil && (n <= 0 || m <= 0 || bandK <= 0 || shard <= 0) {
		r.bad("non-positive dimensions n=%d m=%d bandK=%d shard=%d", n, m, bandK, shard)
	}
	if r.err != nil {
		return nil, r.err
	}
	s := &Store{m: m, bandK: bandK, shard: shard}
	s.levelOff = r.intSection("levelOff", -1)
	s.levelArena = r.intSection("levelArena", n)
	s.level = r.intSection("level", n)
	s.flat = r.intSection("flat", n*m)
	s.lo = r.intSection("lo", m)
	s.hi = r.intSection("hi", m)
	projFlat := r.intSection("proj", n*m)
	colsFlat := r.floatSection("cols", n*m)
	normFlat := r.floatSection("norm", n*m)
	if r.err == nil && r.off != len(data) {
		r.bad("%d trailing bytes", len(data)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	// Structural invariants the query paths index by without checking.
	if len(s.levelOff) < 2 || s.levelOff[0] != 0 || s.levelOff[len(s.levelOff)-1] != n {
		return nil, fmt.Errorf("%w: level offsets do not cover the arena", ErrBadBinary)
	}
	for i := 1; i < len(s.levelOff); i++ {
		if s.levelOff[i] < s.levelOff[i-1] {
			return nil, fmt.Errorf("%w: level offsets decrease at %d", ErrBadBinary, i)
		}
	}
	levels := len(s.levelOff) - 1
	for i, l := range s.level {
		if l < 0 || l >= levels {
			return nil, fmt.Errorf("%w: tuple %d on level %d of %d", ErrBadBinary, i, l, levels)
		}
	}
	for _, idx := range [2][]int{s.levelArena, projFlat} {
		for _, i := range idx {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("%w: tuple index %d out of range [0,%d)", ErrBadBinary, i, n)
			}
		}
	}
	s.tuples = make([][]int, n)
	for i := range s.tuples {
		s.tuples[i] = s.flat[i*m : (i+1)*m : (i+1)*m]
	}
	s.proj = make([][]int, m)
	s.cols = make([][]float64, m)
	s.norm = make([][]float64, m)
	for a := 0; a < m; a++ {
		s.proj[a] = projFlat[a*n : (a+1)*n : (a+1)*n]
		s.cols[a] = colsFlat[a*n : (a+1)*n : (a+1)*n]
		s.norm[a] = normFlat[a*n : (a+1)*n : (a+1)*n]
	}
	return s, nil
}
