package answer

// Batch parity: TopKBatch must be observationally identical to a loop
// of single TopKAppend calls — same Items (bit-for-bit scores, same
// tie-breaks), same Exact flags — across the randomized request grid,
// filtered and unfiltered, on both sides of the goroutine-spawn
// threshold. The batch path shares selectWindow and accumulates in the
// same attribute order as scoreInto, so equality is exact, not
// approximate.

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// batchQueries builds a batch of valid randomized queries, biased so
// several members share a filter (exercising group formation) and
// several are unfiltered with different K (exercising the shared-prefix
// group).
func batchQueries(rng *rand.Rand, s *Store, b int) []TopKQuery {
	qs := make([]TopKQuery, 0, b)
	for len(qs) < b {
		q := parityQuery(rng, s)
		if s.CheckQuery(q) != nil {
			continue
		}
		qs = append(qs, q)
		// Sometimes clone the filter (not the weights) onto the next
		// member so filtered groups have >1 member.
		if len(q.Filter) > 0 && len(qs) < b && rng.Intn(2) == 0 {
			q2 := parityQuery(rng, s)
			q2.Filter = q.Filter
			if s.CheckQuery(q2) == nil {
				qs = append(qs, q2)
			}
		}
	}
	return qs
}

func checkBatchParity(t *testing.T, s *Store, qs []TopKQuery) {
	t.Helper()
	got, err := s.TopKBatch(qs)
	if err != nil {
		t.Fatalf("TopKBatch: %v", err)
	}
	if len(got) != len(qs) {
		t.Fatalf("TopKBatch returned %d results for %d queries", len(got), len(qs))
	}
	for i, q := range qs {
		want, err := s.TopKAppend(q, nil)
		if err != nil {
			t.Fatalf("single query %d: %v", i, err)
		}
		if got[i].Exact != want.Exact {
			t.Fatalf("batch member %d exactness: batch %v, single %v (q=%+v)", i, got[i].Exact, want.Exact, q)
		}
		if !reflect.DeepEqual(got[i].Items, want.Items) {
			t.Fatalf("batch member %d diverges for q=%+v:\nbatch:  %v\nsingle: %v", i, q, got[i].Items, want.Items)
		}
	}
}

// TestTopKBatchParityRandomized sweeps randomized stores × randomized
// batches (including B=1 and batches far larger than the store).
func TestTopKBatchParityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		s := parityStore(rng)
		for rep := 0; rep < 6; rep++ {
			checkBatchParity(t, s, batchQueries(rng, s, 1+rng.Intn(40)))
		}
	}
}

// TestTopKBatchParityQuick drives batch-vs-single equality through
// testing/quick on a fixed store: two arbitrary queries (one possibly
// filtered) plus their swap must answer identically both ways.
func TestTopKBatchParityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	s, err := Build(genData(rng, 300, 3, 25), Options{BandK: 5, ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	prop := func(w0, w1, w2, v0, v1, v2 float64, k0, k1 uint8, norm0, norm1 bool, fAttr uint8, fLo int8, fSpan uint8) bool {
		qa := TopKQuery{Weights: []float64{abs(w0), abs(w1), abs(w2) + 0.01}, K: 1 + int(k0), Normalized: norm0}
		qb := TopKQuery{Weights: []float64{abs(v0), abs(v1), abs(v2) + 0.01}, K: 1 + int(k1), Normalized: norm1}
		if fSpan > 0 {
			qb.Filter = []Range{{Attr: int(fAttr) % 3, Lo: int(fLo), Hi: int(fLo) + int(fSpan)}}
		}
		for _, qs := range [][]TopKQuery{{qa, qb}, {qb, qa}, {qb, qb, qa}} {
			got, err := s.TopKBatch(qs)
			if err != nil {
				return false
			}
			for i, q := range qs {
				want, err := s.TopKAppend(q, nil)
				if err != nil || got[i].Exact != want.Exact || !reflect.DeepEqual(got[i].Items, want.Items) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKBatchParallelPath forces the fan-out arms (range-parallel
// scoring, member-parallel selection) on a store past the spawn
// threshold and checks batch == single there too.
func TestTopKBatchParallelPath(t *testing.T) {
	if testing.Short() {
		t.Skip("large store")
	}
	rng := rand.New(rand.NewSource(53))
	n := minParallelCandidates + 4000
	s, err := Build(genData(rng, n, 3, 1000000), Options{BandK: 4, ShardSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() <= minParallelCandidates {
		t.Fatalf("store too small to exercise the parallel path: %d", s.Len())
	}
	qs := make([]TopKQuery, 0, 12)
	for len(qs) < cap(qs) {
		q := parityQuery(rng, s)
		q.K = 1 + rng.Intn(48)
		// An unbounded filter admits every tuple: the group candidate
		// set is the whole store, well past the threshold. Half the
		// members stay unfiltered to cover the prefix group as well.
		if len(qs)%2 == 0 {
			q.Filter = []Range{Unbounded(rng.Intn(3))}
		} else {
			q.Filter = nil
		}
		if s.CheckQuery(q) != nil {
			continue
		}
		qs = append(qs, q)
	}
	checkBatchParity(t, s, qs)
}

// TestTopKBatchValidation pins the all-or-nothing contract: one bad
// member fails the whole batch, names its index, and CheckQuery agrees
// with what the batch rejects.
func TestTopKBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	s, err := Build(genData(rng, 100, 3, 50), Options{BandK: 4})
	if err != nil {
		t.Fatal(err)
	}
	good := TopKQuery{Weights: []float64{1, 0, 2}, K: 3}
	bad := TopKQuery{Weights: []float64{0, 0, 0}, K: 3}
	if err := s.CheckQuery(good); err != nil {
		t.Fatalf("CheckQuery rejects a valid query: %v", err)
	}
	if err := s.CheckQuery(bad); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("CheckQuery on all-zero weights: %v", err)
	}
	_, err = s.TopKBatch([]TopKQuery{good, bad, good})
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("batch with a bad member: %v", err)
	}
	if !strings.Contains(err.Error(), "query 1") {
		t.Fatalf("batch error does not name the offending index: %v", err)
	}
	if _, err := s.TopKBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestTopKBatchReusesBuffers pins the steady-state zero-allocation
// contract of TopKBatchInto: with a warmed result slice (and warmed
// pooled scratch) a same-shaped batch must not allocate.
func TestTopKBatchReusesBuffers(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomizes sync.Pool; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(55))
	s, err := Build(genData(rng, 2000, 3, 500), Options{BandK: 8})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]TopKQuery, 16)
	for i := range qs {
		qs[i] = TopKQuery{Weights: []float64{1 + float64(i), 0.5, 2}, K: 8}
		if i%4 == 3 {
			qs[i].Normalized = true
		}
	}
	out, err := s.TopKBatchInto(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		out, err = s.TopKBatchInto(qs, out)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state TopKBatchInto allocates %v per op, want 0", allocs)
	}
}
