package answer

// Round-trip parity for the binary snapshot: a store reloaded through
// AppendBinary/LoadBinary must be observationally identical to the
// original (TopK, TopKBatch, SubspaceSkyline, Dominates), and the
// encoding itself must be deterministic — reload and re-encode yields
// the same bytes. Corruption anywhere in the block must be rejected
// with ErrBadBinary, never a panic or a silently wrong store.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
)

// TestBinaryRoundTripParity reuses the randomized parity harness: every
// answer the reloaded store gives must equal the original's, and the
// reloaded store must re-encode to the identical byte block.
func TestBinaryRoundTripParity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		s := parityStore(rng)
		data := s.AppendBinary(nil)
		if again := s.AppendBinary(nil); !bytes.Equal(data, again) {
			t.Fatal("AppendBinary is not deterministic")
		}
		r, err := LoadBinary(data)
		if err != nil {
			t.Fatalf("LoadBinary: %v", err)
		}
		if !bytes.Equal(data, r.AppendBinary(nil)) {
			t.Fatal("reloaded store re-encodes to different bytes")
		}
		if s.Stats() != r.Stats() {
			t.Fatalf("stats diverge: %+v vs %+v", s.Stats(), r.Stats())
		}
		for rep := 0; rep < 20; rep++ {
			q := parityQuery(rng, s)
			got, gotErr := r.TopK(q)
			want, wantErr := s.TopK(q)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("error parity broken after reload: %v vs %v (q=%+v)", gotErr, wantErr, q)
			}
			if gotErr != nil {
				continue
			}
			if got.Exact != want.Exact || !reflect.DeepEqual(got.Items, want.Items) {
				t.Fatalf("TopK diverges after reload for q=%+v:\nreloaded: %v\noriginal: %v", q, got.Items, want.Items)
			}
		}
		checkBatchParity(t, r, batchQueries(rng, r, 8))
		for _, attrs := range [][]int{nil, {0}, {0, 1}} {
			got, gotErr := r.SubspaceSkyline(attrs)
			want, wantErr := s.SubspaceSkyline(attrs)
			if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(got, want) {
				t.Fatalf("SubspaceSkyline(%v) diverges after reload", attrs)
			}
		}
		for rep := 0; rep < 10; rep++ {
			probe := make([]int, s.NumAttrs())
			for a := range probe {
				probe[a] = rng.Intn(80)
			}
			gotOK, gotW, _ := r.Dominates(probe)
			wantOK, wantW, _ := s.Dominates(probe)
			if gotOK != wantOK || !reflect.DeepEqual(gotW, wantW) {
				t.Fatalf("Dominates(%v) diverges after reload", probe)
			}
		}
	}
}

// TestLoadBinaryRejectsCorruption flips, truncates, and doctors the
// block; every mutation must return ErrBadBinary.
func TestLoadBinaryRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	s, err := Build(genData(rng, 200, 3, 40), Options{BandK: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := s.AppendBinary(nil)
	if _, err := LoadBinary(data); err != nil {
		t.Fatalf("pristine block rejected: %v", err)
	}
	reject := func(name string, b []byte) {
		t.Helper()
		if _, err := LoadBinary(b); !errors.Is(err, ErrBadBinary) {
			t.Fatalf("%s: want ErrBadBinary, got %v", name, err)
		}
	}
	reject("empty", nil)
	reject("truncated header", data[:10])
	reject("truncated payload", data[:len(data)/2])
	reject("trailing garbage", append(append([]byte(nil), data...), 0xAA))

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	reject("bad magic", bad)

	bad = append([]byte(nil), data...)
	bad[8]++ // version
	reject("future version", bad)

	// Flip one byte at a spread of payload offsets: the checksum must
	// catch every one.
	for i := 16; i < len(data); i += 1 + len(data)/37 {
		bad = append([]byte(nil), data...)
		bad[i] ^= 0x10
		reject("bit flip", bad)
	}

	// A consistent checksum over an inconsistent payload (doctored after
	// re-checksumming) must fail the structural checks, not panic.
	bad = append([]byte(nil), data...)
	// n field is the first u64 of the payload; double it.
	for i := 16; i < 24; i++ {
		bad[i] = 0
	}
	bad[16] = 0xFF
	rechecksum(bad)
	reject("doctored dimensions", bad)
}

// rechecksum recomputes the header CRC so structural validation — not
// the checksum — is what rejects the block.
func rechecksum(b []byte) {
	binary.LittleEndian.PutUint32(b[12:16], crc32.Checksum(b[binaryHeaderLen:], castagnoli))
}
