// Package answer is the read side of the repository: a materialized,
// immutable answer store built from a discovered skyline or K-skyband.
//
// The write side (discovery, packages core and service) spends upstream
// queries to extract the band from a hidden web database; this package
// spends none. Build precomputes everything a serving layer needs to
// answer user rankings at memory speed:
//
//   - layered skyline levels (level 0 = the skyline of the stored
//     tuples, level i = the skyline of what remains after peeling
//     levels < i), flattened into one contiguous arena with prefix
//     offsets, so the candidate set of an unfiltered top-k request is
//     a zero-copy sub-slice of the arena — no per-request copying,
//   - per-attribute sorted projections, so range-constrained requests
//     scan the most selective attribute's slice instead of the store,
//   - column-major attribute columns (raw values widened to float64
//     and unit-normalized), so scoring is a fused per-column sweep
//     over contiguous memory instead of a row-pointer chase,
//   - contiguous shards, so very large candidate scans fan out across
//     goroutines with a deterministic merge.
//
// The serving hot path is allocation-free at steady state: scratch
// buffers (candidate lists, score columns, selection windows) are
// reused through a sync.Pool, winner scores are threaded from
// selection to the answer instead of being recomputed, and TopKAppend
// lets a caller reuse its result slice across requests. Requests below
// a calibrated candidate threshold never spawn a goroutine.
//
// A Store is immutable after Build; every method is safe for unbounded
// concurrent use. Handle adds the lock-free hot-swap used by skylined:
// readers atomically load the current store while a completed discovery
// job swaps in a fresh one.
//
// Exactness: the top-k of any monotone scoring function over the full
// hidden database lies inside its K-skyband (Gong et al., the identity
// skyline.TopKMonotone is built on). A store materialized from a
// complete K-skyband therefore answers unfiltered top-k requests with
// k <= BandK exactly as a brute-force scan of the original data would;
// larger k and range-filtered requests are answered best-effort over
// the materialized tuples and reported with Exact=false.
//
// The contract lives at value level — the paper's general positioning
// of distinct value combinations, which band discovery itself assumes
// (see core.BandResult): tuples with identical ranking-attribute
// values are indistinguishable through a top-k value interface, so
// Build deduplicates and a value combination appears at most once in
// an answer. A database with duplicate rows has its duplicates
// collapsed on both the discovery and the answer side.
package answer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"hiddensky/internal/obs"
	"hiddensky/internal/skyline"
)

// Errors returned by Build and the query methods.
var (
	// ErrEmpty: Build was handed no tuples.
	ErrEmpty = errors.New("answer: no tuples to materialize")
	// ErrBadQuery: the request is malformed (weight length, negative
	// weights, attribute out of range, ...).
	ErrBadQuery = errors.New("answer: bad query")
)

// Options tunes Build.
type Options struct {
	// BandK is the skyband level of the source tuples: the store was
	// built from (at least) the K-skyband of the original data. It is
	// the largest k for which unfiltered top-k answers are exact.
	// <= 0 means 1 (a plain skyline).
	BandK int
	// ShardSize bounds how many tuples one goroutine scores during a
	// scan (<= 0: a default of 2048). Candidate sets smaller than one
	// shard — or smaller than the goroutine-spawn threshold below —
	// are scored inline.
	ShardSize int
}

// minParallelCandidates is the calibrated candidate-count threshold
// below which selectTopK never spawns goroutines: under ~8k candidates
// the fused column sweep finishes in single-digit microseconds, so the
// goroutine + WaitGroup machinery costs more than it saves (measured
// by BenchmarkStoreTopKUnfiltered / internal/perf). Candidate sets
// must exceed both this and Options.ShardSize to fan out.
const minParallelCandidates = 1 << 13

// Store is the immutable materialized answer index.
type Store struct {
	tuples [][]int // deduplicated row views into one contiguous arena
	flat   []int   // the row arena backing tuples; never mutated
	m      int
	bandK  int
	shard  int

	level []int // level[i] = skyline layer of tuples[i]
	// The layered levels, flattened: levelArena[levelOff[l]:levelOff[l+1]]
	// holds the tuple indices of layer l. An unfiltered top-k request's
	// candidate set is the zero-copy prefix levelArena[:levelOff[min(k,L)]].
	levelArena []int
	levelOff   []int
	proj       [][]int // proj[a] = indices sorted ascending by attribute a
	lo, hi     []int   // per-attribute value range over the stored tuples
	// Column-major scoring columns: cols[a][i] = float64(tuples[i][a]),
	// norm[a][i] the unit-scaled value. Scoring sweeps these columns
	// sequentially instead of chasing row pointers.
	cols [][]float64
	norm [][]float64

	metrics *Metrics // nil: uninstrumented (see SetMetrics)
}

// Metrics instruments a Store's read path. All fields are optional.
// Recording is two monotonic-clock reads and three atomic adds per
// request — the instrumented hot path stays allocation-free (enforced
// by TestInstrumentedTopKZeroAlloc).
type Metrics struct {
	// TopKSeconds observes TopK/TopKAppend latency.
	TopKSeconds *obs.Histogram
	// SkylineSeconds observes SubspaceSkyline latency.
	SkylineSeconds *obs.Histogram
	// DominatesSeconds observes Dominates latency.
	DominatesSeconds *obs.Histogram
	// BatchSeconds observes whole-batch TopKBatch latency (one
	// observation per batch, not per vector).
	BatchSeconds *obs.Histogram
	// BatchSize observes the vector count of each batch, recorded as a
	// dimensionless duration (1ns == 1 vector) so the power-of-two
	// histogram's quantiles read directly as batch sizes.
	BatchSize *obs.Histogram
}

// SetMetrics attaches metrics to the store. Call it right after Build,
// before the store is shared; the bundle may be shared by many stores
// (a daemon aggregates every published index into one set of series).
func (s *Store) SetMetrics(m *Metrics) { s.metrics = m }

// Info summarizes a store for health/listing endpoints.
type Info struct {
	Tuples int `json:"tuples"`
	Attrs  int `json:"attrs"`
	BandK  int `json:"band_k"`
	Levels int `json:"levels"`
}

// Build materializes the answer index. Tuples must be non-empty and of
// uniform width; duplicates are dropped. Build is O(L·n²) dominance
// work in the worst case (L layers of skyline peeling) — it runs once
// per discovery, off the read path.
func Build(tuples [][]int, opt Options) (*Store, error) {
	if len(tuples) == 0 {
		return nil, ErrEmpty
	}
	m := len(tuples[0])
	if m == 0 {
		return nil, fmt.Errorf("%w: zero-width tuples", ErrBadQuery)
	}
	seen := map[string]bool{}
	data := make([][]int, 0, len(tuples))
	for _, t := range tuples {
		if len(t) != m {
			return nil, fmt.Errorf("%w: ragged tuple widths (%d vs %d)", ErrBadQuery, len(t), m)
		}
		key := fmt.Sprint(t)
		if seen[key] {
			continue
		}
		seen[key] = true
		data = append(data, t)
	}
	// Copy the deduplicated rows into one contiguous arena; tuples
	// become capped views so no caller append can cross rows.
	flat := make([]int, len(data)*m)
	rows := make([][]int, len(data))
	for i, t := range data {
		row := flat[i*m : (i+1)*m : (i+1)*m]
		copy(row, t)
		rows[i] = row
	}
	s := &Store{tuples: rows, flat: flat, m: m, bandK: opt.BandK, shard: opt.ShardSize}
	if s.bandK <= 0 {
		s.bandK = 1
	}
	if s.shard <= 0 {
		s.shard = 2048
	}
	s.buildLevels()
	s.buildProjections()
	s.buildColumns()
	return s, nil
}

// buildLevels peels the stored tuples into skyline layers and flattens
// them into the level arena.
func (s *Store) buildLevels() {
	s.level = make([]int, len(s.tuples))
	remaining := make([]int, len(s.tuples))
	for i := range remaining {
		remaining[i] = i
	}
	s.levelArena = make([]int, 0, len(s.tuples))
	s.levelOff = []int{0}
	for l := 0; len(remaining) > 0; l++ {
		sub := make([][]int, len(remaining))
		for i, j := range remaining {
			sub[i] = s.tuples[j]
		}
		var layer []int
		next := remaining[:0]
		for _, li := range skyline.Compute(sub) {
			layer = append(layer, remaining[li])
		}
		onLayer := map[int]bool{}
		for _, j := range layer {
			onLayer[j] = true
			s.level[j] = l
		}
		for _, j := range remaining {
			if !onLayer[j] {
				next = append(next, j)
			}
		}
		s.levelArena = append(s.levelArena, layer...)
		s.levelOff = append(s.levelOff, len(s.levelArena))
		remaining = next
	}
}

func (s *Store) buildProjections() {
	s.proj = make([][]int, s.m)
	s.lo = make([]int, s.m)
	s.hi = make([]int, s.m)
	for a := 0; a < s.m; a++ {
		idx := make([]int, len(s.tuples))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool {
			vx, vy := s.tuples[idx[x]][a], s.tuples[idx[y]][a]
			if vx != vy {
				return vx < vy
			}
			return idx[x] < idx[y]
		})
		s.proj[a] = idx
		s.lo[a] = s.tuples[idx[0]][a]
		s.hi[a] = s.tuples[idx[len(idx)-1]][a]
	}
}

func (s *Store) buildColumns() {
	s.cols = make([][]float64, s.m)
	s.norm = make([][]float64, s.m)
	for a := 0; a < s.m; a++ {
		raw := make([]float64, len(s.tuples))
		col := make([]float64, len(s.tuples))
		span := float64(s.hi[a] - s.lo[a])
		for i, t := range s.tuples {
			raw[i] = float64(t[a])
			if span > 0 {
				col[i] = float64(t[a]-s.lo[a]) / span
			}
		}
		s.cols[a] = raw
		s.norm[a] = col
	}
}

// numLevels returns the number of skyline layers.
func (s *Store) numLevels() int { return len(s.levelOff) - 1 }

// levelSlice returns the tuple indices of layer l (a view, not a copy).
func (s *Store) levelSlice(l int) []int {
	return s.levelArena[s.levelOff[l]:s.levelOff[l+1]]
}

// Len returns the number of materialized tuples.
func (s *Store) Len() int { return len(s.tuples) }

// NumAttrs returns the tuple width.
func (s *Store) NumAttrs() int { return s.m }

// BandK returns the skyband level the store was built from.
func (s *Store) BandK() int { return s.bandK }

// Stats returns the store summary.
func (s *Store) Stats() Info {
	return Info{Tuples: len(s.tuples), Attrs: s.m, BandK: s.bandK, Levels: s.numLevels()}
}

// Skyline returns the store's level-0 tuples (the skyline of the
// materialized set, which for a complete discovery is the skyline of
// the original database).
func (s *Store) Skyline() [][]int {
	l0 := s.levelSlice(0)
	out := make([][]int, len(l0))
	for i, j := range l0 {
		out[i] = s.tuples[j]
	}
	return out
}

// Range is one closed per-attribute constraint of a filtered request.
// Lo/Hi bounds beyond the stored value range are equivalent to
// math.MinInt / math.MaxInt (unbounded on that side).
type Range struct {
	Attr int
	Lo   int
	Hi   int
}

// Unbounded builds a Range matching every value of the attribute.
func Unbounded(attr int) Range { return Range{Attr: attr, Lo: math.MinInt, Hi: math.MaxInt} }

// TopKQuery is one top-k request.
type TopKQuery struct {
	// Weights is the client's linear ranking: score(t) = Σ w[a]·t[a],
	// lower is better. Weights must be non-negative (the monotonicity
	// the skyband identity needs) and at least one must be positive.
	Weights []float64
	// K is how many tuples to return.
	K int
	// Normalized scores unit-scaled columns instead of raw values:
	// score(t) = Σ w[a]·(t[a]-lo[a])/(hi[a]-lo[a]). Normalization is a
	// per-attribute increasing map, so monotonicity (and the band
	// identity) is preserved.
	Normalized bool
	// Filter restricts the request to tuples inside every Range.
	// Filtered answers are best-effort over the materialized band (a
	// constraint can exclude a tuple's dominators from the band while
	// the true filtered top-k lies outside it) and are never marked
	// Exact.
	Filter []Range
}

// Ranked is one answered tuple.
type Ranked struct {
	Tuple []int   `json:"tuple"`
	Score float64 `json:"score"`
	// Level is the tuple's skyline layer in the store (0 = skyline).
	Level int `json:"level"`
}

// TopKResult is a top-k answer.
type TopKResult struct {
	Items []Ranked
	// Exact reports that the answer provably equals brute-force top-k
	// over the original database (at value level: duplicate rows are
	// collapsed, see the package comment): the request was unfiltered
	// and asked for at most BandK tuples of a band-complete store.
	Exact bool
}

// scratch is the per-request working set, pooled so a steady serving
// load allocates nothing: the candidate buffer (filtered requests),
// the score column, the selection window, and the shard-merge area.
type scratch struct {
	cand     []int
	scores   []float64
	win      []int
	winSc    []float64
	merged   []int
	mergedSc []float64
	counts   []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// growInts returns b with length n (reallocating only beyond capacity).
func growInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// TopK answers a top-k request. Ties are broken by tuple values
// (lexicographically) for determinism regardless of sharding.
func (s *Store) TopK(q TopKQuery) (TopKResult, error) {
	return s.TopKAppend(q, nil)
}

// TopKAppend is TopK appending the answer onto dst (which may be a
// retained buffer from a previous request; its length is reset first).
// With cap(dst) >= k the unfiltered hot path performs no allocation:
// candidates are a zero-copy arena slice, scoring and selection run in
// pooled scratch, and the returned Ranked tuples alias the store's
// immutable rows. The timing wrapper is an explicit call, not a
// deferred closure, so instrumentation keeps the path at 0 allocs/op.
func (s *Store) TopKAppend(q TopKQuery, dst []Ranked) (TopKResult, error) {
	m := s.metrics
	if m == nil || m.TopKSeconds == nil {
		return s.topKAppend(q, dst)
	}
	t0 := time.Now()
	res, err := s.topKAppend(q, dst)
	m.TopKSeconds.Observe(time.Since(t0))
	return res, err
}

func (s *Store) topKAppend(q TopKQuery, dst []Ranked) (TopKResult, error) {
	if err := s.checkQuery(&q); err != nil {
		return TopKResult{}, err
	}
	sc := scratchPool.Get().(*scratch)
	var cand []int
	if len(q.Filter) == 0 {
		// The top-k of a monotone score lies in the first k layers: every
		// layer-l tuple is dominated by a chain of l strictly better ones.
		last := q.K
		if last > s.numLevels() {
			last = s.numLevels()
		}
		cand = s.levelArena[:s.levelOff[last]]
	} else {
		sc.cand = s.filteredInto(sc.cand[:0], q.Filter)
		cand = sc.cand
	}
	idx, scores := s.selectTopK(cand, &q, q.K, sc)
	items := dst[:0]
	for x, i := range idx {
		items = append(items, Ranked{Tuple: s.tuples[i], Score: scores[x], Level: s.level[i]})
	}
	scratchPool.Put(sc)
	if len(items) == 0 {
		items = nil
	}
	exact := len(q.Filter) == 0 && q.K <= s.bandK
	return TopKResult{Items: items, Exact: exact}, nil
}

// checkQuery validates a full request: weights, k, and filter ranges.
// Shared by the arena path and the retained reference so the two can
// never diverge on what they reject.
func (s *Store) checkQuery(q *TopKQuery) error {
	if err := s.checkWeights(q.Weights); err != nil {
		return err
	}
	if q.K <= 0 {
		return fmt.Errorf("%w: k must be >= 1, got %d", ErrBadQuery, q.K)
	}
	for _, r := range q.Filter {
		if r.Attr < 0 || r.Attr >= s.m {
			return fmt.Errorf("%w: filter attribute %d out of range [0,%d)", ErrBadQuery, r.Attr, s.m)
		}
		if r.Lo > r.Hi {
			return fmt.Errorf("%w: filter on attribute %d has lo %d > hi %d", ErrBadQuery, r.Attr, r.Lo, r.Hi)
		}
	}
	return nil
}

func (s *Store) checkWeights(w []float64) error {
	if len(w) != s.m {
		return fmt.Errorf("%w: %d weights for %d attributes", ErrBadQuery, len(w), s.m)
	}
	positive := false
	for a, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: weight %v on attribute %d (want finite, >= 0)", ErrBadQuery, v, a)
		}
		if v > 0 {
			positive = true
		}
	}
	if !positive {
		return fmt.Errorf("%w: at least one weight must be positive", ErrBadQuery)
	}
	return nil
}

// scoreInto computes the request's score for every candidate as a fused
// column sweep: one pass per positively-weighted attribute over a
// contiguous float64 column. dst[j] receives the score of cand[j].
// Summation runs in ascending attribute order, exactly like the
// row-major reference, so results are bit-identical (skipped zero
// weights contribute +0.0, which never changes a non-negative sum).
// cols is s.cols or s.norm; weights is passed bare (not *TopKQuery) so
// the parallel fan-out's goroutines never force the request struct to
// escape — the inline hot path must stay allocation-free.
func scoreInto(dst []float64, cand []int, weights []float64, cols [][]float64) {
	for j := range dst {
		dst[j] = 0
	}
	for a, w := range weights {
		if w == 0 {
			continue
		}
		col := cols[a]
		for j, i := range cand {
			dst[j] += w * col[i]
		}
	}
}

// filtered returns the candidate indices matching every range. It scans
// the most selective constrained attribute's sorted projection slice
// (found by binary search) and checks the remaining constraints there.
func (s *Store) filtered(filter []Range) []int {
	return s.filteredInto(nil, filter)
}

// filteredInto is filtered appending into a reusable buffer.
func (s *Store) filteredInto(out []int, filter []Range) []int {
	bestAttr, bestFrom, bestTo := -1, 0, len(s.tuples)
	for _, r := range filter {
		p := s.proj[r.Attr]
		from := sort.Search(len(p), func(i int) bool { return s.tuples[p[i]][r.Attr] >= r.Lo })
		to := sort.Search(len(p), func(i int) bool { return s.tuples[p[i]][r.Attr] > r.Hi })
		if bestAttr < 0 || to-from < bestTo-bestFrom {
			bestAttr, bestFrom, bestTo = r.Attr, from, to
		}
	}
	for _, i := range s.proj[bestAttr][bestFrom:bestTo] {
		ok := true
		for _, r := range filter {
			if v := s.tuples[i][r.Attr]; v < r.Lo || v > r.Hi {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// selectTopK scores the candidates and keeps the best k, fanning very
// large candidate sets out across shard goroutines. The returned index
// and score slices are views into sc and parallel to each other. The
// merge is deterministic: ties are broken by tuple value, then index.
func (s *Store) selectTopK(cand []int, q *TopKQuery, k int, sc *scratch) ([]int, []float64) {
	if len(cand) == 0 {
		return nil, nil
	}
	if k > len(cand) {
		k = len(cand)
	}
	cols := s.cols
	if q.Normalized {
		cols = s.norm
	}
	threshold := s.shard
	if threshold < minParallelCandidates {
		threshold = minParallelCandidates
	}
	if len(cand) <= threshold {
		sc.scores = growFloats(sc.scores, len(cand))
		scoreInto(sc.scores, cand, q.Weights, cols)
		sc.win = growInts(sc.win, k)
		sc.winSc = growFloats(sc.winSc, k)
		return s.selectWindow(cand, sc.scores, k, sc.win[:0], sc.winSc[:0])
	}
	return s.selectTopKParallel(cand, q.Weights, cols, k, sc)
}

// selectTopKParallel is the fan-out arm of selectTopK, kept out of the
// inline path so its goroutine closures cannot force the request or a
// WaitGroup to escape on small (the overwhelmingly common) requests.
func (s *Store) selectTopKParallel(cand []int, weights []float64, cols [][]float64, k int, sc *scratch) ([]int, []float64) {
	shards := (len(cand) + s.shard - 1) / s.shard
	sc.merged = growInts(sc.merged, shards*k)
	sc.mergedSc = growFloats(sc.mergedSc, shards*k)
	sc.counts = growInts(sc.counts, shards)
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		from := sh * s.shard
		to := from + s.shard
		if to > len(cand) {
			to = len(cand)
		}
		wg.Add(1)
		go func(sh int, part []int) {
			defer wg.Done()
			local := scratchPool.Get().(*scratch)
			local.scores = growFloats(local.scores, len(part))
			scoreInto(local.scores, part, weights, cols)
			local.win = growInts(local.win, k)
			local.winSc = growFloats(local.winSc, k)
			win, winSc := s.selectWindow(part, local.scores, k, local.win[:0], local.winSc[:0])
			sc.counts[sh] = copy(sc.merged[sh*k:sh*k+k], win)
			copy(sc.mergedSc[sh*k:sh*k+k], winSc)
			scratchPool.Put(local)
		}(sh, cand[from:to])
	}
	wg.Wait()
	// Compact the per-shard winners (already scored — no re-scoring) and
	// run one final selection over them.
	n := 0
	for sh := 0; sh < shards; sh++ {
		n += copy(sc.merged[n:], sc.merged[sh*k:sh*k+sc.counts[sh]])
		copy(sc.mergedSc[n-sc.counts[sh]:], sc.mergedSc[sh*k:sh*k+sc.counts[sh]])
	}
	sc.win = growInts(sc.win, k)
	sc.winSc = growFloats(sc.winSc, k)
	return s.selectWindow(sc.merged[:n], sc.mergedSc[:n], k, sc.win[:0], sc.winSc[:0])
}

// selectWindow keeps the (up to) k best of the pre-scored candidates by
// insertion into a small ordered window — O(n·k) with k tiny, no
// allocation (win/winSc must have capacity k and length 0). The winner
// scores ride along, so nothing downstream re-scores.
func (s *Store) selectWindow(cand []int, scores []float64, k int, win []int, winSc []float64) ([]int, []float64) {
	for j, i := range cand {
		sc := scores[j]
		if len(win) == k && !s.better(sc, i, winSc[k-1], win[k-1]) {
			continue
		}
		pos := len(win)
		for pos > 0 && s.better(sc, i, winSc[pos-1], win[pos-1]) {
			pos--
		}
		if len(win) < k {
			win = append(win, 0)
			winSc = append(winSc, 0)
		}
		copy(win[pos+1:], win[pos:])
		copy(winSc[pos+1:], winSc[pos:])
		win[pos], winSc[pos] = i, sc
	}
	return win, winSc
}

// better reports whether candidate (sc, i) outranks (so, j): smaller
// score first, then lexicographically smaller tuple, then index.
func (s *Store) better(sc float64, i int, so float64, j int) bool {
	if sc != so {
		return sc < so
	}
	a, b := s.tuples[i], s.tuples[j]
	for x := range a {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return i < j
}

// SubspaceSkyline returns the tuples whose projection onto attrs is not
// strictly dominated by any other stored tuple's projection. attrs must
// be distinct and in range; an empty attrs means every attribute (the
// full skyline). Tuples are returned in full width, sorted by the
// projected values for determinism. Every layer is scanned: a tuple off
// the full-space skyline can survive in a subspace by tying its
// dominator there.
func (s *Store) SubspaceSkyline(attrs []int) ([][]int, error) {
	m := s.metrics
	if m == nil || m.SkylineSeconds == nil {
		return s.subspaceSkyline(attrs)
	}
	t0 := time.Now()
	out, err := s.subspaceSkyline(attrs)
	m.SkylineSeconds.Observe(time.Since(t0))
	return out, err
}

func (s *Store) subspaceSkyline(attrs []int) ([][]int, error) {
	if len(attrs) == 0 {
		return s.Skyline(), nil
	}
	seen := map[int]bool{}
	for _, a := range attrs {
		if a < 0 || a >= s.m {
			return nil, fmt.Errorf("%w: attribute %d out of range [0,%d)", ErrBadQuery, a, s.m)
		}
		if seen[a] {
			return nil, fmt.Errorf("%w: duplicate attribute %d", ErrBadQuery, a)
		}
		seen[a] = true
	}
	// SFS over the projection: in ascending projected-sum order a tuple
	// can only be dominated by an already-kept one.
	order := make([]int, len(s.tuples))
	sums := make([]int, len(s.tuples))
	for i := range order {
		order[i] = i
		for _, a := range attrs {
			sums[i] += s.tuples[i][a]
		}
	}
	sort.SliceStable(order, func(x, y int) bool { return sums[order[x]] < sums[order[y]] })
	var keep []int
	for _, i := range order {
		dominated := false
		for _, j := range keep {
			if sums[j] >= sums[i] {
				break // kept in sum order; equal sums cannot dominate
			}
			if skyline.DominatesOnSubset(s.tuples[j], s.tuples[i], attrs) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, i)
		}
	}
	sort.Slice(keep, func(x, y int) bool {
		a, b := s.tuples[keep[x]], s.tuples[keep[y]]
		for _, at := range attrs {
			if a[at] != b[at] {
				return a[at] < b[at]
			}
		}
		return keep[x] < keep[y]
	})
	out := make([][]int, len(keep))
	for x, i := range keep {
		out[x] = s.tuples[i]
	}
	return out, nil
}

// Dominates reports whether any stored tuple dominates t, returning one
// witness. Only level 0 is scanned: by transitivity, a dominator on a
// deeper layer implies one on the skyline.
func (s *Store) Dominates(t []int) (bool, []int, error) {
	m := s.metrics
	if m == nil || m.DominatesSeconds == nil {
		return s.dominates(t)
	}
	t0 := time.Now()
	ok, witness, err := s.dominates(t)
	m.DominatesSeconds.Observe(time.Since(t0))
	return ok, witness, err
}

func (s *Store) dominates(t []int) (bool, []int, error) {
	if len(t) != s.m {
		return false, nil, fmt.Errorf("%w: tuple width %d, store has %d attributes", ErrBadQuery, len(t), s.m)
	}
	for _, i := range s.levelSlice(0) {
		if skyline.Dominates(s.tuples[i], t) {
			return true, append([]int(nil), s.tuples[i]...), nil
		}
	}
	return false, nil, nil
}
