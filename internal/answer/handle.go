package answer

import "sync/atomic"

// Handle is the lock-free publication point of a store: readers Load
// the current immutable snapshot (nil until the first Swap) while a
// writer atomically swaps in a freshly built one. This is how skylined
// hot-swaps a store's answer index the moment a discovery job
// completes — in-flight requests finish against the snapshot they
// loaded; new requests see the new index.
type Handle struct {
	p atomic.Pointer[Store]
}

// Load returns the current store, or nil when none has been published.
func (h *Handle) Load() *Store { return h.p.Load() }

// Swap publishes s (which must not be mutated afterwards) and returns
// the previous store, if any.
func (h *Handle) Swap(s *Store) *Store { return h.p.Swap(s) }
