//go:build !race

package answer

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
