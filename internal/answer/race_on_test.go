//go:build race

package answer

// raceEnabled reports whether the race detector is active. Under race,
// sync.Pool deliberately drops items at random (to surface races), so
// pool-backed zero-allocation assertions are meaningless and skipped.
const raceEnabled = true
