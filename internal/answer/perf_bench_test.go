package answer

// The named hot-path benchmarks of the read stack (run with -benchmem;
// CI compiles them every push). BenchmarkStoreTopKUnfiltered must stay
// at 0 allocs/op — that is the arena path's contract. The *Reference
// variants measure the retained seed implementation on the same store,
// so the before/after gap is visible from `go test -bench` alone (the
// committed BENCH_PR5.json numbers come from cmd/skyperf, which drives
// the same pairs under concurrent load).

import (
	"math/rand"
	"testing"

	"hiddensky/internal/obs"
)

func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	s, err := Build(bandOf(genData(rng, n, 4, 1000), 10), Options{BandK: 10})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStoreTopKUnfiltered(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

func BenchmarkStoreTopKUnfilteredReference(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReferenceTopK(TopKQuery{Weights: w, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestInstrumentedTopKZeroAlloc is the observability parity contract:
// attaching latency metrics must not cost the arena path its 0
// allocs/op. If the wrapper ever grows a closure or boxes a value,
// this fails before any daemon regresses.
func TestInstrumentedTopKZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomizes sync.Pool; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(77))
	s, err := Build(bandOf(genData(rng, 20000, 4, 1000), 10), Options{BandK: 10})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.SetMetrics(&Metrics{
		TopKSeconds:      reg.Histogram("answer_topk_seconds", ""),
		SkylineSeconds:   reg.Histogram("answer_skyline_seconds", ""),
		DominatesSeconds: reg.Histogram("answer_dominates_seconds", ""),
	})
	w := []float64{1, 0.5, 2, 0.25}
	dst := make([]Ranked, 0, 10)
	allocs := testing.AllocsPerRun(200, func() {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10}, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		dst = res.Items[:0]
	})
	if allocs != 0 {
		t.Fatalf("instrumented TopKAppend allocates %.1f allocs/op, want 0", allocs)
	}
	if got := reg.Snapshots(); len(got) == 0 || got[len(got)-1].Histogram == nil {
		t.Fatal("metrics registry recorded nothing")
	}
}

// BenchmarkStoreTopKUnfilteredInstrumented is BenchmarkStoreTopKUnfiltered
// with metrics attached — the two must report identical allocs/op (0).
func BenchmarkStoreTopKUnfilteredInstrumented(b *testing.B) {
	s := benchStore(b, 20000)
	s.SetMetrics(&Metrics{TopKSeconds: obs.NewRegistry().Histogram("answer_topk_seconds", "")})
	w := []float64{1, 0.5, 2, 0.25}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

func BenchmarkStoreTopKFiltered(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	f := []Range{{Attr: 0, Lo: 0, Hi: 500}}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10, Filter: f}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

func BenchmarkStoreTopKFilteredReference(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	f := []Range{{Attr: 0, Lo: 0, Hi: 500}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReferenceTopK(TopKQuery{Weights: w, K: 10, Filter: f}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreTopKSharded drives the goroutine fan-out: a store
// larger than the spawn threshold with a filter admitting every tuple.
func BenchmarkStoreTopKSharded(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	s, err := Build(genData(rng, minParallelCandidates+4000, 3, 1000000), Options{BandK: 4, ShardSize: 2048})
	if err != nil {
		b.Fatal(err)
	}
	w := []float64{1, 0.5, 2}
	f := []Range{Unbounded(0)}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10, Filter: f}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

// batchBenchWeights builds B distinct weight vectors (the skyperf
// rotation: deterministic, all positive, no two collinear).
func batchBenchWeights(m, bsz int) [][]float64 {
	rng := rand.New(rand.NewSource(79))
	ws := make([][]float64, bsz)
	for i := range ws {
		w := make([]float64, m)
		for a := range w {
			w[a] = 0.05 + rng.Float64()*4
		}
		ws[i] = w
	}
	return ws
}

// BenchmarkStoreTopKBatch is the headline batch figure: one op answers
// B=16 distinct weight vectors in one fused sweep. Compare ns/op with
// BenchmarkStoreTopKBatchSingleLoop (the same 16 vectors as 16
// TopKAppend calls) — the acceptance floor is a 3x gap.
func BenchmarkStoreTopKBatch(b *testing.B) {
	for _, bsz := range []int{1, 16, 256} {
		b.Run(sizeName(bsz), func(b *testing.B) {
			s := benchStore(b, 20000)
			ws := batchBenchWeights(4, bsz)
			qs := make([]TopKQuery, bsz)
			for i := range qs {
				qs[i] = TopKQuery{Weights: ws[i], K: 10}
			}
			var out []TopKResult
			var err error
			out, err = s.TopKBatchInto(qs, out)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err = s.TopKBatchInto(qs, out)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bsz*b.N)/b.Elapsed().Seconds(), "vectors/s")
		})
	}
}

// BenchmarkStoreTopKBatchSingleLoop answers the same 16 vectors as 16
// independent single-vector calls: the "before" row of the batch figure.
func BenchmarkStoreTopKBatchSingleLoop(b *testing.B) {
	const bsz = 16
	s := benchStore(b, 20000)
	ws := batchBenchWeights(4, bsz)
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10}, dst[:0])
			if err != nil {
				b.Fatal(err)
			}
			dst = res.Items
		}
	}
	b.ReportMetric(float64(bsz*b.N)/b.Elapsed().Seconds(), "vectors/s")
}

func sizeName(bsz int) string {
	switch bsz {
	case 1:
		return "B1"
	case 16:
		return "B16"
	default:
		return "B256"
	}
}
