package answer

// The named hot-path benchmarks of the read stack (run with -benchmem;
// CI compiles them every push). BenchmarkStoreTopKUnfiltered must stay
// at 0 allocs/op — that is the arena path's contract. The *Reference
// variants measure the retained seed implementation on the same store,
// so the before/after gap is visible from `go test -bench` alone (the
// committed BENCH_PR5.json numbers come from cmd/skyperf, which drives
// the same pairs under concurrent load).

import (
	"math/rand"
	"testing"

	"hiddensky/internal/obs"
)

func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	s, err := Build(bandOf(genData(rng, n, 4, 1000), 10), Options{BandK: 10})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStoreTopKUnfiltered(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

func BenchmarkStoreTopKUnfilteredReference(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReferenceTopK(TopKQuery{Weights: w, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestInstrumentedTopKZeroAlloc is the observability parity contract:
// attaching latency metrics must not cost the arena path its 0
// allocs/op. If the wrapper ever grows a closure or boxes a value,
// this fails before any daemon regresses.
func TestInstrumentedTopKZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomizes sync.Pool; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(77))
	s, err := Build(bandOf(genData(rng, 20000, 4, 1000), 10), Options{BandK: 10})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.SetMetrics(&Metrics{
		TopKSeconds:      reg.Histogram("answer_topk_seconds", ""),
		SkylineSeconds:   reg.Histogram("answer_skyline_seconds", ""),
		DominatesSeconds: reg.Histogram("answer_dominates_seconds", ""),
	})
	w := []float64{1, 0.5, 2, 0.25}
	dst := make([]Ranked, 0, 10)
	allocs := testing.AllocsPerRun(200, func() {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10}, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		dst = res.Items[:0]
	})
	if allocs != 0 {
		t.Fatalf("instrumented TopKAppend allocates %.1f allocs/op, want 0", allocs)
	}
	if got := reg.Snapshots(); len(got) == 0 || got[len(got)-1].Histogram == nil {
		t.Fatal("metrics registry recorded nothing")
	}
}

// BenchmarkStoreTopKUnfilteredInstrumented is BenchmarkStoreTopKUnfiltered
// with metrics attached — the two must report identical allocs/op (0).
func BenchmarkStoreTopKUnfilteredInstrumented(b *testing.B) {
	s := benchStore(b, 20000)
	s.SetMetrics(&Metrics{TopKSeconds: obs.NewRegistry().Histogram("answer_topk_seconds", "")})
	w := []float64{1, 0.5, 2, 0.25}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

func BenchmarkStoreTopKFiltered(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	f := []Range{{Attr: 0, Lo: 0, Hi: 500}}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10, Filter: f}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

func BenchmarkStoreTopKFilteredReference(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	f := []Range{{Attr: 0, Lo: 0, Hi: 500}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReferenceTopK(TopKQuery{Weights: w, K: 10, Filter: f}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreTopKSharded drives the goroutine fan-out: a store
// larger than the spawn threshold with a filter admitting every tuple.
func BenchmarkStoreTopKSharded(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	s, err := Build(genData(rng, minParallelCandidates+4000, 3, 1000000), Options{BandK: 4, ShardSize: 2048})
	if err != nil {
		b.Fatal(err)
	}
	w := []float64{1, 0.5, 2}
	f := []Range{Unbounded(0)}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10, Filter: f}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}
