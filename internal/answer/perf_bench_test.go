package answer

// The named hot-path benchmarks of the read stack (run with -benchmem;
// CI compiles them every push). BenchmarkStoreTopKUnfiltered must stay
// at 0 allocs/op — that is the arena path's contract. The *Reference
// variants measure the retained seed implementation on the same store,
// so the before/after gap is visible from `go test -bench` alone (the
// committed BENCH_PR5.json numbers come from cmd/skyperf, which drives
// the same pairs under concurrent load).

import (
	"math/rand"
	"testing"
)

func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	s, err := Build(bandOf(genData(rng, n, 4, 1000), 10), Options{BandK: 10})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStoreTopKUnfiltered(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

func BenchmarkStoreTopKUnfilteredReference(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReferenceTopK(TopKQuery{Weights: w, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreTopKFiltered(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	f := []Range{{Attr: 0, Lo: 0, Hi: 500}}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10, Filter: f}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}

func BenchmarkStoreTopKFilteredReference(b *testing.B) {
	s := benchStore(b, 20000)
	w := []float64{1, 0.5, 2, 0.25}
	f := []Range{{Attr: 0, Lo: 0, Hi: 500}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReferenceTopK(TopKQuery{Weights: w, K: 10, Filter: f}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreTopKSharded drives the goroutine fan-out: a store
// larger than the spawn threshold with a filter admitting every tuple.
func BenchmarkStoreTopKSharded(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	s, err := Build(genData(rng, minParallelCandidates+4000, 3, 1000000), Options{BandK: 4, ShardSize: 2048})
	if err != nil {
		b.Fatal(err)
	}
	w := []float64{1, 0.5, 2}
	f := []Range{Unbounded(0)}
	var dst []Ranked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.TopKAppend(TopKQuery{Weights: w, K: 10, Filter: f}, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}
