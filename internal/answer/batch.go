// Batch top-k: score B weight vectors in one fused pass over the
// candidate columns instead of B independent sweeps.
//
// The single-request path (TopKAppend) pays three full-width memory
// walks per request: a gather per positively-weighted column (load the
// candidate index, load the column value), a score write, and a
// selection read over score data that large candidate sets have long
// evicted by the time scoring finishes. The batch path blocks the sweep
// over the candidates so everything stays cache-resident: per block it
// gathers each attribute once (or slices the store columns directly
// when the candidate set covers the whole store — the common full-band
// case, where no gather happens at all), runs one contiguous
// multiply-add pass per member per attribute, and immediately folds the
// block's scores into each member's selection window while they are
// still in L1. The gather — the part that misses cache — is amortized
// across the whole batch, and the selection pass never touches cold
// memory.
//
// Queries are grouped by candidate set before scoring: all unfiltered
// queries share the level-arena prefix of the largest K (each member
// selects only over its own prefix, so answers stay bit-identical with
// the single path), and filtered queries share a sweep exactly when
// their Filter clauses are equal. Scores accumulate in ascending
// attribute order, exactly like scoreInto, so a batch answer equals a
// loop of TopKAppend calls bit for bit — selection uses the same
// deterministic total order (score, then tuple, then index), which
// makes it independent of candidate iteration order.
//
// The whole batch runs in one pooled scratch block; with a reused
// result slice the steady-state path is allocation-free below the same
// goroutine-spawn threshold as the single path, and fans out across
// candidate ranges above it (each range keeps per-member windows that
// merge deterministically, like the single path's shard merge).
package answer

import (
	"fmt"
	"sync"
	"time"
)

// batchBlockElems is the candidate-block width of the fused sweep: one
// block of every attribute column plus one member's score segment stay
// cache-resident across the whole member loop.
const batchBlockElems = 1024

// batchScratch is the pooled working set of one TopKBatch call.
type batchScratch struct {
	done    []bool // query already claimed by a group
	members []int  // query indices of the current group
	lens    []int  // per-member candidate prefix length
	useNorm []bool // per-member column selection
	full    []bool // member's prefix covers the whole group: fused selection
	fast    []bool // eligible for the register kernel (m==4, full, no zero weights)
	kEff    []int  // per-member effective k (min(K, prefix))
	cand    []int  // filtered-group candidate buffer

	wflat []float64 // transposed weight block (B×m)
	rows  []float64 // per-member score rows (B×n)

	// Fused selection windows, one per (range, member), kMax entries
	// each: winIdx/winSc hold the entries, winLen the fill levels.
	winIdx []int
	winSc  []float64
	winLen []int

	// identity marks a group whose candidate set covers every stored
	// tuple: scores index by tuple id and the sweep reads the store
	// columns directly — no gather at all.
	identity bool
	kMax     int  // fused window capacity of the current group
	ranges   int  // fan-out width of the current group (1 = inline)
	fastRaw  bool // some fast member reads the raw columns
	fastNorm bool // some fast member reads the normalized columns
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}

// CheckQuery validates q against the store — weights, k, filter ranges —
// without answering it. The service coalescer uses it to reject a
// malformed request individually before folding the rest of a window
// into one batch (TopKBatchInto is all-or-nothing on validation).
func (s *Store) CheckQuery(q TopKQuery) error { return s.checkQuery(&q) }

// TopKBatch answers every query in one fused column sweep per candidate
// group. The result is positionally parallel to qs and each entry is
// exactly what TopKAppend would have returned for that query alone.
func (s *Store) TopKBatch(qs []TopKQuery) ([]TopKResult, error) {
	return s.TopKBatchInto(qs, nil)
}

// TopKBatchInto is TopKBatch reusing out (and each out[i].Items) as
// append buffers, the batch analogue of TopKAppend: with capacities from
// a previous call the steady-state path performs no allocation.
// Validation is all-or-nothing — if any query is malformed the whole
// batch fails with the offending index and nothing is scored.
func (s *Store) TopKBatchInto(qs []TopKQuery, out []TopKResult) ([]TopKResult, error) {
	m := s.metrics
	if m == nil || m.BatchSeconds == nil {
		return s.topKBatchInto(qs, out)
	}
	t0 := time.Now()
	res, err := s.topKBatchInto(qs, out)
	m.BatchSeconds.Observe(time.Since(t0))
	if m.BatchSize != nil {
		m.BatchSize.Observe(time.Duration(len(qs)))
	}
	return res, err
}

func (s *Store) topKBatchInto(qs []TopKQuery, out []TopKResult) ([]TopKResult, error) {
	for i := range qs {
		if err := s.checkQuery(&qs[i]); err != nil {
			return out, fmt.Errorf("batch query %d: %w", i, err)
		}
	}
	if cap(out) >= len(qs) {
		out = out[:len(qs)]
	} else {
		out = append(out[:cap(out)], make([]TopKResult, len(qs)-cap(out))...)
	}
	if len(qs) == 0 {
		return out, nil
	}
	bs := batchScratchPool.Get().(*batchScratch)
	bs.done = growBools(bs.done, len(qs))
	for i := range bs.done {
		bs.done[i] = false
	}
	// Group 1: every unfiltered query shares the level-arena prefix of
	// the largest K; members select only over their own prefix.
	bs.members = bs.members[:0]
	bs.lens = bs.lens[:0]
	maxLast := 0
	for i := range qs {
		if len(qs[i].Filter) != 0 {
			continue
		}
		bs.done[i] = true
		bs.members = append(bs.members, i)
		last := qs[i].K
		if last > s.numLevels() {
			last = s.numLevels()
		}
		bs.lens = append(bs.lens, s.levelOff[last])
		if last > maxLast {
			maxLast = last
		}
	}
	if len(bs.members) > 0 {
		s.batchGroup(qs, out, s.levelArena[:s.levelOff[maxLast]], bs)
	}
	// Remaining groups: filtered queries, one sweep per distinct filter.
	for i := range qs {
		if bs.done[i] {
			continue
		}
		bs.members = bs.members[:0]
		bs.lens = bs.lens[:0]
		bs.cand = s.filteredInto(bs.cand[:0], qs[i].Filter)
		for j := i; j < len(qs); j++ {
			if bs.done[j] || !equalFilter(qs[i].Filter, qs[j].Filter) {
				continue
			}
			bs.done[j] = true
			bs.members = append(bs.members, j)
			bs.lens = append(bs.lens, len(bs.cand))
		}
		s.batchGroup(qs, out, bs.cand, bs)
	}
	batchScratchPool.Put(bs)
	return out, nil
}

// equalFilter reports clause-for-clause equality — the grouping key of a
// shared filtered sweep. Queries spelling the same predicate in a
// different clause order land in separate groups, which only costs a
// sweep, never correctness.
func equalFilter(a, b []Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchGroup scores one candidate group (bs.members / bs.lens against
// cand) and writes each member's answer into out.
func (s *Store) batchGroup(qs []TopKQuery, out []TopKResult, cand []int, bs *batchScratch) {
	n := len(cand)
	if n == 0 {
		for _, qi := range bs.members {
			// Mirror topKAppend on an empty candidate set: nil items,
			// and a filtered answer is never exact.
			out[qi] = TopKResult{Exact: len(qs[qi].Filter) == 0 && qs[qi].K <= s.bandK}
		}
		return
	}
	m := s.m
	bcount := len(bs.members)
	bs.identity = n == len(s.tuples)
	needRaw, needNorm := false, false
	bs.useNorm = growBools(bs.useNorm, bcount)
	bs.full = growBools(bs.full, bcount)
	bs.fast = growBools(bs.fast, bcount)
	bs.kEff = growInts(bs.kEff, bcount)
	bs.kMax = 0
	bs.fastRaw, bs.fastNorm = false, false
	for bi, qi := range bs.members {
		bs.useNorm[bi] = qs[qi].Normalized
		if qs[qi].Normalized {
			needNorm = true
		} else {
			needRaw = true
		}
		k := qs[qi].K
		if k > bs.lens[bi] {
			k = bs.lens[bi]
		}
		bs.kEff[bi] = k
		// A member whose candidate prefix covers the whole group feeds
		// the fused selection windows during the sweep; a shorter
		// prefix selects post hoc over its score row.
		bs.full[bi] = bs.lens[bi] == n
		if bs.full[bi] && k > bs.kMax {
			bs.kMax = k
		}
		// The register kernel needs the full prefix (no score row is
		// materialized) and no zero weights: with every weight nonzero
		// the full dot-product chain is the same addition sequence the
		// zero-skipping generic path produces, so exactness holds.
		bs.fast[bi] = bs.full[bi] && m == 4
		if bs.fast[bi] {
			for _, w := range qs[qi].Weights {
				if w == 0 {
					bs.fast[bi] = false
					break
				}
			}
		}
		if bs.fast[bi] {
			if bs.useNorm[bi] {
				bs.fastNorm = true
			} else {
				bs.fastRaw = true
			}
		}
	}
	bs.wflat = growFloats(bs.wflat, bcount*m)
	for bi, qi := range bs.members {
		copy(bs.wflat[bi*m:(bi+1)*m], qs[qi].Weights)
	}
	bs.rows = growFloats(bs.rows, bcount*n)

	threshold := s.shard
	if threshold < minParallelCandidates {
		threshold = minParallelCandidates
	}
	bs.ranges = 1
	if n > threshold {
		bs.ranges = (n + s.shard - 1) / s.shard
	}
	bs.winIdx = growInts(bs.winIdx, bs.ranges*bcount*bs.kMax)
	bs.winSc = growFloats(bs.winSc, bs.ranges*bcount*bs.kMax)
	bs.winLen = growInts(bs.winLen, bs.ranges*bcount)
	for i := range bs.winLen {
		bs.winLen[i] = 0
	}
	if bs.ranges == 1 {
		s.batchScoreRange(bs, cand, needRaw, needNorm, 0, n, 0)
		for bi := range bs.members {
			s.batchEmit(qs, out, cand, bs, bi)
		}
		return
	}
	s.batchScoreParallel(bs, cand, needRaw, needNorm)
	s.batchEmitParallel(qs, out, cand, bs)
}

// batchScoreParallel is the fan-out arm of the sweep, split out of
// batchGroup (like selectTopKParallel) so its goroutine closures cannot
// force the WaitGroup or loop state to escape on small inline batches.
// It reuses the single path's rule: contiguous candidate ranges of one
// shard each. Score rows and per-range windows are disjoint slices of
// the shared scratch, so no locking.
func (s *Store) batchScoreParallel(bs *batchScratch, cand []int, needRaw, needNorm bool) {
	n := len(cand)
	var wg sync.WaitGroup
	for r := 0; r < bs.ranges; r++ {
		from := r * s.shard
		to := from + s.shard
		if to > n {
			to = n
		}
		wg.Add(1)
		go func(r, from, to int) {
			defer wg.Done()
			s.batchScoreRange(bs, cand, needRaw, needNorm, from, to, r)
		}(r, from, to)
	}
	wg.Wait()
}

// batchEmitParallel fans answer assembly out across members: merging
// range windows is cheap, but post-hoc prefix selection is O(n) per
// member, and even the merges add up at large B. Members write disjoint
// out entries.
func (s *Store) batchEmitParallel(qs []TopKQuery, out []TopKResult, cand []int, bs *batchScratch) {
	var wg sync.WaitGroup
	workers := len(bs.members)
	if max := 2 * s.shardWorkers(); workers > max {
		workers = max
	}
	chunk := (len(bs.members) + workers - 1) / workers
	for lo := 0; lo < len(bs.members); lo += chunk {
		hi := lo + chunk
		if hi > len(bs.members) {
			hi = len(bs.members)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for bi := lo; bi < hi; bi++ {
				s.batchEmit(qs, out, cand, bs, bi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// shardWorkers approximates the single path's fan-out width for one
// full-arena sweep; the member-parallel emit arm uses it to bound
// goroutine count.
func (s *Store) shardWorkers() int {
	w := (len(s.tuples) + s.shard - 1) / s.shard
	if w < 1 {
		w = 1
	}
	return w
}

// batchScoreRange runs the fused sweep for candidates [from, to) of
// range r, one cache-resident block at a time: gather each needed
// attribute block once (or slice the store columns directly in identity
// mode), one contiguous multiply-add pass per member per attribute,
// then fold the block's scores into the member's selection window while
// they are still hot. Scores accumulate in ascending attribute order —
// the same addition sequence as scoreInto, including the implicit
// leading zero — so batch results are bit-identical with the single
// path (skipped zero weights contribute +0.0, which never changes a
// sum initialized at +0.0).
func (s *Store) batchScoreRange(bs *batchScratch, cand []int, needRaw, needNorm bool, from, to, r int) {
	m := s.m
	n := len(cand)
	bcount := len(bs.members)
	// Gather buffers come from the request scratch pool (two spare
	// float columns) so the fan-out goroutines never share or allocate.
	var local *scratch
	var rawBuf, normBuf []float64
	if !bs.identity {
		local = scratchPool.Get().(*scratch)
		if needRaw {
			local.scores = growFloats(local.scores, m*batchBlockElems)
			rawBuf = local.scores
		}
		if needNorm {
			local.mergedSc = growFloats(local.mergedSc, m*batchBlockElems)
			normBuf = local.mergedSc
		}
	}
	for lo := from; lo < to; lo += batchBlockElems {
		hi := lo + batchBlockElems
		if hi > to {
			hi = to
		}
		if !bs.identity {
			for a := 0; a < m; a++ {
				if needRaw {
					col, g := s.cols[a], rawBuf[a*batchBlockElems:]
					for j := lo; j < hi; j++ {
						g[j-lo] = col[cand[j]]
					}
				}
				if needNorm {
					col, g := s.norm[a], normBuf[a*batchBlockElems:]
					for j := lo; j < hi; j++ {
						g[j-lo] = col[cand[j]]
					}
				}
			}
		}
		// Register-kernel members first: no score row, selection
		// threshold in a register, the window touched only by the few
		// candidates that beat it.
		for pass := 0; pass < 2; pass++ {
			wantNorm := pass == 1
			if (wantNorm && !bs.fastNorm) || (!wantNorm && !bs.fastRaw) {
				continue
			}
			var b0, b1, b2, b3 []float64
			switch {
			case bs.identity && wantNorm:
				b0, b1, b2, b3 = s.norm[0][lo:hi], s.norm[1][lo:hi], s.norm[2][lo:hi], s.norm[3][lo:hi]
			case bs.identity:
				b0, b1, b2, b3 = s.cols[0][lo:hi], s.cols[1][lo:hi], s.cols[2][lo:hi], s.cols[3][lo:hi]
			case wantNorm:
				b0, b1 = normBuf[0:], normBuf[batchBlockElems:]
				b2, b3 = normBuf[2*batchBlockElems:], normBuf[3*batchBlockElems:]
			default:
				b0, b1 = rawBuf[0:], rawBuf[batchBlockElems:]
				b2, b3 = rawBuf[2*batchBlockElems:], rawBuf[3*batchBlockElems:]
			}
			for bi := 0; bi < bcount; bi++ {
				if bs.fast[bi] && bs.useNorm[bi] == wantNorm {
					s.fusedBlock4(bs, cand, lo, hi, r, bi, b0, b1, b2, b3)
				}
			}
		}
		for bi := 0; bi < bcount; bi++ {
			if bs.fast[bi] {
				continue
			}
			end := hi
			// In identity mode every member scores the full range (a
			// short-prefix member selects post hoc); in gather mode a
			// member only needs its own candidate prefix.
			if !bs.identity {
				if bs.lens[bi] <= lo {
					continue
				}
				if end > bs.lens[bi] {
					end = bs.lens[bi]
				}
			}
			row := bs.rows[bi*n+lo : bi*n+end]
			useN := bs.useNorm[bi]
			for a, w := range bs.wflat[bi*m : bi*m+m] {
				var blk []float64
				switch {
				case bs.identity && useN:
					blk = s.norm[a][lo:hi]
				case bs.identity:
					blk = s.cols[a][lo:hi]
				case useN:
					blk = normBuf[a*batchBlockElems:]
				default:
					blk = rawBuf[a*batchBlockElems:]
				}
				blk = blk[:len(row)]
				if a == 0 {
					// First pass assigns instead of zero-then-add; the
					// explicit +0 reproduces the single path's 0 + w·v
					// addition bit for bit (it turns a -0.0 product
					// into the +0.0 a zeroed row would have given).
					for j := range blk {
						row[j] = w*blk[j] + 0
					}
				} else if w != 0 {
					for j, v := range blk {
						row[j] += w * v
					}
				}
			}
			if bs.full[bi] {
				// Fold the hot block into this member's range window.
				k := bs.kEff[bi]
				off := (r*bcount + bi) * bs.kMax
				fill := bs.winLen[r*bcount+bi]
				win := bs.winIdx[off : off+fill : off+bs.kMax]
				winSc := bs.winSc[off : off+fill : off+bs.kMax]
				if bs.identity {
					win, winSc = s.selectWindowSeq(lo, end, row, k, win, winSc)
				} else {
					win, winSc = s.selectWindow(cand[lo:end], row, k, win, winSc)
				}
				bs.winLen[r*bcount+bi] = len(win)
			}
		}
	}
	if local != nil {
		scratchPool.Put(local)
	}
}

// fusedBlock4 is the register kernel of the sweep, for full-prefix
// members on 4-attribute stores with no zero weights: the dot product
// and the selection threshold both live in registers, so a candidate
// that cannot enter the window (the overwhelming majority once the
// window fills) costs four multiply-adds and one compare — no score row
// is stored and no second selection pass runs. The candidate loop is
// unrolled by two so the two dot-product chains overlap.
//
// Unlike selectWindow, the kernel keeps its window UNSORTED: an
// accepted candidate overwrites the worst entry and a k-wide rescan
// refreshes the threshold — no memmove, no ordered insertion walk.
// The window is a set, and the top-k set under better()'s strict total
// order is the same whatever order candidates arrive or entries sit
// in; batchEmit runs one final k-wide selectWindow over the window to
// produce the sorted answer, so results stay bit-identical with the
// single path.
//
// Exactness of the score: with every weight nonzero the full chain
// w0·v0 + 0 + w1·v1 + w2·v2 + w3·v3 is the same left-associated
// addition sequence scoreInto produces (the +0 restores the +0.0 a
// zero-initialized row gives when the first product is -0.0, and
// x+0 == 0+x bitwise for any non-NaN x). The threshold test only skips
// candidates with sc > worst score, which better() already rejects;
// ties re-check the full total order before replacing.
func (s *Store) fusedBlock4(bs *batchScratch, cand []int, lo, hi, r, bi int, b0, b1, b2, b3 []float64) {
	cnt := hi - lo
	b0, b1, b2, b3 = b0[:cnt], b1[:cnt], b2[:cnt], b3[:cnt]
	bcount := len(bs.members)
	k := bs.kEff[bi]
	off := (r*bcount + bi) * bs.kMax
	fill := bs.winLen[r*bcount+bi]
	win := bs.winIdx[off : off+k]
	winSc := bs.winSc[off : off+k]
	u0, u1, u2, u3 := bs.wflat[bi*4], bs.wflat[bi*4+1], bs.wflat[bi*4+2], bs.wflat[bi*4+3]
	j := 0
	// Fill phase: the first k candidates always enter.
	for ; fill < k && j < cnt; j++ {
		id := lo + j
		if !bs.identity {
			id = cand[lo+j]
		}
		win[fill] = id
		winSc[fill] = u0*b0[j] + 0 + u1*b1[j] + u2*b2[j] + u3*b3[j]
		fill++
	}
	bs.winLen[r*bcount+bi] = fill
	if j == cnt {
		return
	}
	// Steady state: worst entry and its score live in registers.
	wp := s.worstOf(win, winSc)
	thr := winSc[wp]
	// Two-level loop: the inner scan is call-free (a call in the loop
	// body would force the weights and threshold out of registers —
	// amd64 has no callee-saved float registers) and breaks out only for
	// the rare candidate that ties or beats the threshold. The scan
	// handles two candidates per iteration: each keeps its own
	// left-associated chain (so scores stay bit-identical with the
	// single path) but the two chains are independent, halving the loop
	// overhead per candidate and keeping both in flight across the FP
	// units instead of serializing on one chain's latency.
	for {
		var sc0, sc1 float64
		for ; j+2 <= cnt; j += 2 {
			sc0 = u0*b0[j] + 0 + u1*b1[j] + u2*b2[j] + u3*b3[j]
			sc1 = u0*b0[j+1] + 0 + u1*b1[j+1] + u2*b2[j+1] + u3*b3[j+1]
			if sc0 <= thr || sc1 <= thr {
				break
			}
		}
		if j+2 > cnt {
			// Tail: at most one candidate left.
			if j < cnt {
				if sc := u0*b0[j] + 0 + u1*b1[j] + u2*b2[j] + u3*b3[j]; sc <= thr {
					s.fusedReplace(bs, cand, win, winSc, wp, lo+j, sc)
				}
			}
			return
		}
		// One (or both) of the pair ties or beats the threshold. Replays
		// run in candidate order, and the second compare uses the
		// threshold the first replace may have moved — the same sequence
		// a one-at-a-time scan performs.
		if sc0 <= thr {
			wp, thr = s.fusedReplace(bs, cand, win, winSc, wp, lo+j, sc0)
		}
		if sc1 <= thr {
			wp, thr = s.fusedReplace(bs, cand, win, winSc, wp, lo+j+1, sc1)
		}
		j += 2
	}
}

// fusedReplace is fusedBlock4's slow path: candidate pos (an identity
// offset, mapped through cand in gather mode) tied or beat the window's
// worst score. Re-check the full total order, overwrite the worst
// entry, rescan for the new worst.
func (s *Store) fusedReplace(bs *batchScratch, cand, win []int, winSc []float64, wp, pos int, sc float64) (int, float64) {
	id := pos
	if !bs.identity {
		id = cand[pos]
	}
	// sc <= winSc[wp] held at the call site; only an exact score tie
	// needs the full total order to decide.
	if sc == winSc[wp] && !s.better(sc, id, sc, win[wp]) {
		return wp, winSc[wp]
	}
	win[wp], winSc[wp] = id, sc
	wp = s.worstOf(win, winSc)
	return wp, winSc[wp]
}

// worstOf returns the index of the window's worst entry under the
// selection total order (largest score, ties to larger tuple/index).
func (s *Store) worstOf(win []int, winSc []float64) int {
	wp := 0
	for x := 1; x < len(winSc); x++ {
		if winSc[x] > winSc[wp] {
			wp = x
		} else if winSc[x] == winSc[wp] && s.better(winSc[wp], win[wp], winSc[x], win[x]) {
			wp = x
		}
	}
	return wp
}

// selectWindowSeq is selectWindow for identity mode: candidate ids are
// the consecutive range [from, to) and scores sits at scores[i-from].
// The window's total order (score, tuple, index) is a total order, so
// the result never depends on candidate iteration order — the same
// property the shard merge relies on.
func (s *Store) selectWindowSeq(from, to int, scores []float64, k int, win []int, winSc []float64) ([]int, []float64) {
	for i := from; i < to; i++ {
		sc := scores[i-from]
		if len(win) == k && !s.better(sc, i, winSc[k-1], win[k-1]) {
			continue
		}
		pos := len(win)
		for pos > 0 && s.better(sc, i, winSc[pos-1], win[pos-1]) {
			pos--
		}
		if len(win) < k {
			win = append(win, 0)
			winSc = append(winSc, 0)
		}
		copy(win[pos+1:], win[pos:])
		copy(winSc[pos+1:], winSc[pos:])
		win[pos], winSc[pos] = i, sc
	}
	return win, winSc
}

// selectWindowByID is selectWindow with id-indexed scores: candidate
// cand[j]'s score lives at rowByID[cand[j]]. Used by the post-hoc
// selection of identity-mode members with a short candidate prefix.
func (s *Store) selectWindowByID(cand []int, rowByID []float64, k int, win []int, winSc []float64) ([]int, []float64) {
	for _, i := range cand {
		sc := rowByID[i]
		if len(win) == k && !s.better(sc, i, winSc[k-1], win[k-1]) {
			continue
		}
		pos := len(win)
		for pos > 0 && s.better(sc, i, winSc[pos-1], win[pos-1]) {
			pos--
		}
		if len(win) < k {
			win = append(win, 0)
			winSc = append(winSc, 0)
		}
		copy(win[pos+1:], win[pos:])
		copy(winSc[pos+1:], winSc[pos:])
		win[pos], winSc[pos] = i, sc
	}
	return win, winSc
}

// batchEmit assembles one member's answer: merge its per-range fused
// windows (or run post-hoc prefix selection for a short-prefix member)
// and write the result, reusing out[qi].Items as the append buffer.
// Safe to call concurrently for distinct members.
func (s *Store) batchEmit(qs []TopKQuery, out []TopKResult, cand []int, bs *batchScratch, bi int) {
	qi := bs.members[bi]
	q := &qs[qi]
	n := len(cand)
	bcount := len(bs.members)
	k := bs.kEff[bi]
	var idx []int
	var scores []float64
	local := scratchPool.Get().(*scratch)
	switch {
	case !bs.full[bi]:
		// Short-prefix member: select over its own candidate prefix.
		nb := bs.lens[bi]
		local.win = growInts(local.win, k)
		local.winSc = growFloats(local.winSc, k)
		if bs.identity {
			idx, scores = s.selectWindowByID(cand[:nb], bs.rows[bi*n:(bi+1)*n], k, local.win[:0], local.winSc[:0])
		} else {
			idx, scores = s.selectWindow(cand[:nb], bs.rows[bi*n:bi*n+nb], k, local.win[:0], local.winSc[:0])
		}
	case bs.ranges == 1 && !bs.fast[bi]:
		// selectWindow kept this window sorted; it is the answer as-is.
		off := bi * bs.kMax
		fill := bs.winLen[bi]
		idx = bs.winIdx[off : off+fill]
		scores = bs.winSc[off : off+fill]
	default:
		// Merge the per-range windows (and order the register kernel's
		// unsorted ones): compact the already-scored entries and run one
		// final selection over them.
		local.merged = local.merged[:0]
		local.mergedSc = local.mergedSc[:0]
		for r := 0; r < bs.ranges; r++ {
			off := (r*bcount + bi) * bs.kMax
			fill := bs.winLen[r*bcount+bi]
			local.merged = append(local.merged, bs.winIdx[off:off+fill]...)
			local.mergedSc = append(local.mergedSc, bs.winSc[off:off+fill]...)
		}
		local.win = growInts(local.win, k)
		local.winSc = growFloats(local.winSc, k)
		idx, scores = s.selectWindow(local.merged, local.mergedSc, k, local.win[:0], local.winSc[:0])
	}
	items := out[qi].Items[:0]
	for x, i := range idx {
		items = append(items, Ranked{Tuple: s.tuples[i], Score: scores[x], Level: s.level[i]})
	}
	scratchPool.Put(local)
	if len(items) == 0 {
		items = nil
	}
	out[qi] = TopKResult{Items: items, Exact: len(q.Filter) == 0 && q.K <= s.bandK}
}
