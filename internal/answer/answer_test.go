package answer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hiddensky/internal/skyline"
)

// genData generates n random m-wide tuples.
func genData(rng *rand.Rand, n, m, domain int) [][]int {
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		data[i] = t
	}
	return data
}

// bandOf materializes the K-skyband of data as tuples.
func bandOf(data [][]int, k int) [][]int {
	var out [][]int
	for _, i := range skyline.Skyband(data, k) {
		out = append(out, data[i])
	}
	return out
}

// bruteTopK returns the k best scores over the whole dataset under a
// linear weighting (lower is better).
func bruteTopK(data [][]int, w []float64, k int) []float64 {
	scores := make([]float64, len(data))
	for i, t := range data {
		for a, wa := range w {
			scores[i] += wa * float64(t[a])
		}
	}
	sort.Float64s(scores)
	if k > len(scores) {
		k = len(scores)
	}
	return scores[:k]
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("empty build should fail")
	}
	if _, err := Build([][]int{{1, 2}, {1}}, Options{}); err == nil {
		t.Fatal("ragged build should fail")
	}
	s, err := Build([][]int{{1, 2}, {1, 2}, {2, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("duplicates not dropped: %d tuples", s.Len())
	}
	if s.BandK() != 1 || s.Stats().Levels < 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestTopKValidation(t *testing.T) {
	s, _ := Build([][]int{{1, 2}, {2, 1}}, Options{})
	for _, q := range []TopKQuery{
		{Weights: []float64{1}, K: 1},                                 // wrong width
		{Weights: []float64{1, -1}, K: 1},                             // negative
		{Weights: []float64{0, 0}, K: 1},                              // all zero
		{Weights: []float64{1, math.NaN()}, K: 1},                     // NaN
		{Weights: []float64{1, 1}, K: 0},                              // k
		{Weights: []float64{1, 1}, K: 1, Filter: []Range{{Attr: 9}}},  // attr
		{Weights: []float64{1, 1}, K: 1, Filter: []Range{{0, 5, 2}}},  // lo>hi
		{Weights: []float64{1, 1}, K: 1, Filter: []Range{{Attr: -1}}}, // attr
		{Weights: []float64{math.Inf(1), 1}, K: 1},                    // inf
	} {
		if _, err := s.TopK(q); err == nil {
			t.Errorf("query %+v should be rejected", q)
		}
	}
}

// The store's raison d'être: unfiltered top-k over a band-built store
// equals brute-force top-k over the full original data for arbitrary
// non-negative weight vectors, for every k up to the band level.
func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 20 + rng.Intn(300)
		m := 2 + rng.Intn(3)
		// The skyband identity lives in the paper's general positioning
		// (distinct value combinations): duplicate rows inflate domination
		// counts and would shrink the band below what dedup'd ground truth
		// expects.
		data := dedupTuples(genData(rng, n, m, 40))
		bandK := 1 + rng.Intn(8)
		s, err := Build(bandOf(data, bandK), Options{BandK: bandK, ShardSize: 1 + rng.Intn(64)})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 4; rep++ {
			w := make([]float64, m)
			for a := range w {
				w[a] = rng.Float64() * 3
			}
			w[rng.Intn(m)] += 0.1 // at least one positive
			k := 1 + rng.Intn(bandK)
			res, err := s.TopK(TopKQuery{Weights: w, K: k})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatalf("trial %d: unfiltered k=%d <= bandK=%d should be exact", trial, k, bandK)
			}
			want := bruteTopK(data, w, k)
			if len(res.Items) != len(want) {
				t.Fatalf("trial %d: got %d items, want %d", trial, len(res.Items), len(want))
			}
			for i, it := range res.Items {
				if math.Abs(it.Score-want[i]) > 1e-9 {
					t.Fatalf("trial %d rank %d: store score %v, brute force %v (w=%v k=%d)",
						trial, i, it.Score, want[i], w, k)
				}
			}
		}
	}
}

func dedupTuples(data [][]int) [][]int {
	seen := map[string]bool{}
	var out [][]int
	for _, t := range data {
		k := fmt.Sprint(t)
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// Ordering and determinism: scores non-decreasing, ties broken by tuple
// value, independent of shard size.
func TestTopKDeterministicAcrossShardSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := genData(rng, 500, 3, 6) // tiny domain: many score ties
	band := bandOf(data, 10)
	w := []float64{1, 1, 1}
	var ref []Ranked
	for _, shard := range []int{1, 7, 64, 100000} {
		s, err := Build(band, Options{BandK: 10, ShardSize: shard})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.TopK(TopKQuery{Weights: w, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Items); i++ {
			if res.Items[i].Score < res.Items[i-1].Score {
				t.Fatalf("shard %d: scores out of order at %d", shard, i)
			}
		}
		if ref == nil {
			ref = res.Items
			continue
		}
		if fmt.Sprint(res.Items) != fmt.Sprint(ref) {
			t.Fatalf("shard %d: answer differs:\n%v\nvs\n%v", shard, res.Items, ref)
		}
	}
}

func TestTopKFiltered(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := genData(rng, 400, 3, 30)
	band := bandOf(data, 6)
	s, err := Build(band, Options{BandK: 6})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{2, 1, 0.5}
	filter := []Range{{Attr: 0, Lo: 5, Hi: 20}, {Attr: 2, Lo: math.MinInt, Hi: 15}}
	res, err := s.TopK(TopKQuery{Weights: w, K: 5, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("filtered answers must not claim exactness")
	}
	// Reference: brute force over the materialized tuples.
	var want []float64
	stored := dedupTuples(band)
	for _, tu := range stored {
		if tu[0] < 5 || tu[0] > 20 || tu[2] > 15 {
			continue
		}
		want = append(want, 2*float64(tu[0])+float64(tu[1])+0.5*float64(tu[2]))
	}
	sort.Float64s(want)
	if len(want) > 5 {
		want = want[:5]
	}
	if len(res.Items) != len(want) {
		t.Fatalf("got %d items, want %d", len(res.Items), len(want))
	}
	for i, it := range res.Items {
		if tu := it.Tuple; tu[0] < 5 || tu[0] > 20 || tu[2] > 15 {
			t.Fatalf("item %d violates filter: %v", i, tu)
		}
		if math.Abs(it.Score-want[i]) > 1e-9 {
			t.Fatalf("rank %d: score %v, want %v", i, it.Score, want[i])
		}
	}
	// An impossible filter answers empty, not an error.
	res, err = s.TopK(TopKQuery{Weights: w, K: 3, Filter: []Range{{Attr: 1, Lo: 1000, Hi: 2000}}})
	if err != nil || len(res.Items) != 0 {
		t.Fatalf("impossible filter: %v items, err %v", len(res.Items), err)
	}
}

func TestTopKNormalized(t *testing.T) {
	// Attribute 1's raw scale dwarfs attribute 0's; normalized weights
	// rebalance them.
	tuples := [][]int{{0, 9000}, {9, 1000}, {5, 5000}}
	s, err := Build(tuples, Options{BandK: 3})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.TopK(TopKQuery{Weights: []float64{1, 1}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Items[0].Tuple[1] != 1000 {
		t.Fatalf("raw scoring should be dominated by the large attribute: %v", raw.Items[0])
	}
	norm, err := s.TopK(TopKQuery{Weights: []float64{1, 1}, K: 3, Normalized: true})
	if err != nil {
		t.Fatal(err)
	}
	// Normalized: {0,9000}->0+1=1, {9,1000}->1+0=1, {5,5000}->0.5555+0.5=1.0555
	if norm.Items[2].Tuple[0] != 5 {
		t.Fatalf("normalized order wrong: %v", norm.Items)
	}
	for i := 1; i < len(norm.Items); i++ {
		if norm.Items[i].Score < norm.Items[i-1].Score {
			t.Fatal("normalized scores out of order")
		}
	}
}

func TestSubspaceSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data := genData(rng, 300, 3, 12)
	band := bandOf(data, 5)
	s, err := Build(band, Options{BandK: 5})
	if err != nil {
		t.Fatal(err)
	}
	stored := dedupTuples(band)
	for _, attrs := range [][]int{{0}, {1, 2}, {0, 2}, {0, 1, 2}} {
		got, err := s.SubspaceSkyline(attrs)
		if err != nil {
			t.Fatal(err)
		}
		// Definition check against the materialized tuples.
		want := 0
		for _, a := range stored {
			dominated := false
			for _, b := range stored {
				if skyline.DominatesOnSubset(b, a, attrs) {
					dominated = true
					break
				}
			}
			if !dominated {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("attrs %v: %d tuples, want %d", attrs, len(got), want)
		}
		for _, a := range got {
			for _, b := range stored {
				if skyline.DominatesOnSubset(b, a, attrs) {
					t.Fatalf("attrs %v: %v is dominated by %v", attrs, a, b)
				}
			}
		}
	}
	// Empty subset = full skyline; bad subsets rejected.
	full, err := s.SubspaceSkyline(nil)
	if err != nil || len(full) != len(s.Skyline()) {
		t.Fatalf("empty attrs: %d tuples, err %v", len(full), err)
	}
	if _, err := s.SubspaceSkyline([]int{0, 0}); err == nil {
		t.Fatal("duplicate attr accepted")
	}
	if _, err := s.SubspaceSkyline([]int{7}); err == nil {
		t.Fatal("out-of-range attr accepted")
	}
}

func TestDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data := genData(rng, 200, 3, 15)
	band := bandOf(data, 4)
	s, err := Build(band, Options{BandK: 4})
	if err != nil {
		t.Fatal(err)
	}
	stored := dedupTuples(band)
	for trial := 0; trial < 200; trial++ {
		cand := []int{rng.Intn(15), rng.Intn(15), rng.Intn(15)}
		got, witness, err := s.Dominates(cand)
		if err != nil {
			t.Fatal(err)
		}
		want := false
		for _, u := range stored {
			if skyline.Dominates(u, cand) {
				want = true
				break
			}
		}
		if got != want {
			t.Fatalf("Dominates(%v) = %v, want %v", cand, got, want)
		}
		if got && !skyline.Dominates(witness, cand) {
			t.Fatalf("witness %v does not dominate %v", witness, cand)
		}
	}
	if _, _, err := s.Dominates([]int{1}); err == nil {
		t.Fatal("wrong-width candidate accepted")
	}
}

// Hot-swap safety: hammer a Handle with concurrent queries while
// another goroutine swaps fresh stores in (run with -race).
func TestHandleHotSwapConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var h Handle
	if h.Load() != nil {
		t.Fatal("fresh handle should be empty")
	}
	first, err := Build(genData(rng, 200, 3, 20), Options{BandK: 3})
	if err != nil {
		t.Fatal(err)
	}
	h.Swap(first)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Load()
				w := []float64{rng.Float64() + 0.1, rng.Float64(), rng.Float64()}
				res, err := s.TopK(TopKQuery{Weights: w, K: 3})
				if err != nil || len(res.Items) == 0 {
					t.Errorf("query against snapshot failed: %v", err)
					return
				}
				if _, _, err := s.Dominates([]int{1, 1, 1}); err != nil {
					t.Errorf("dominates failed: %v", err)
					return
				}
			}
		}(int64(100 + g))
	}
	for i := 0; i < 20; i++ {
		next, err := Build(genData(rng, 150+i, 3, 20), Options{BandK: 2})
		if err != nil {
			t.Fatal(err)
		}
		if old := h.Swap(next); old == nil {
			t.Error("swap lost the previous store")
		}
	}
	close(stop)
	wg.Wait()
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	band := bandOf(genData(rng, 20000, 4, 1000), 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(band, Options{BandK: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKBand(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	data := genData(rng, 20000, 4, 1000)
	s, err := Build(bandOf(data, 10), Options{BandK: 10})
	if err != nil {
		b.Fatal(err)
	}
	w := []float64{1, 0.5, 2, 0.25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK(TopKQuery{Weights: w, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKFullScanBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	data := genData(rng, 20000, 4, 1000)
	w := []float64{1, 0.5, 2, 0.25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bruteTopK(data, w, 10)
	}
}

func BenchmarkTopKFiltered(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	data := genData(rng, 20000, 4, 1000)
	s, err := Build(bandOf(data, 10), Options{BandK: 10})
	if err != nil {
		b.Fatal(err)
	}
	w := []float64{1, 0.5, 2, 0.25}
	f := []Range{{Attr: 0, Lo: 0, Hi: 500}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK(TopKQuery{Weights: w, K: 10, Filter: f}); err != nil {
			b.Fatal(err)
		}
	}
}
