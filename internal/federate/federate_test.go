package federate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/skyline"
)

func storeOf(t *testing.T, name string, data [][]int, caps []hidden.Capability, k int) Store {
	t.Helper()
	db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: k})
	if err != nil {
		t.Fatal(err)
	}
	return Store{Name: name, DB: db}
}

func capsRQ(m int) []hidden.Capability {
	out := make([]hidden.Capability, m)
	for i := range out {
		out[i] = hidden.RQ
	}
	return out
}

func randData(rng *rand.Rand, n, m, domain int) [][]int {
	data := make([][]int, n)
	for i := range data {
		tup := make([]int, m)
		for j := range tup {
			tup[j] = rng.Intn(domain)
		}
		data[i] = tup
	}
	return data
}

func TestFederatedFrontierMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		nStores := 2 + rng.Intn(3)
		m := 2 + rng.Intn(2)
		var stores []Store
		var union [][]int
		for s := 0; s < nStores; s++ {
			data := randData(rng, 30+rng.Intn(150), m, 20)
			union = append(union, data...)
			caps := capsRQ(m)
			if s%2 == 1 {
				for i := range caps {
					caps[i] = hidden.SQ
				}
			}
			stores = append(stores, storeOf(t, fmt.Sprintf("s%d", s), data, caps, 1+rng.Intn(5)))
		}
		res, err := Discover(stores, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatal("unbudgeted discovery not complete")
		}
		want := map[string]bool{}
		for _, i := range skyline.Compute(union) {
			want[fmt.Sprint(union[i])] = true
		}
		got := map[string]bool{}
		for _, o := range res.Frontier {
			got[fmt.Sprint(o.Tuple)] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: frontier %d distinct values, union skyline %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: frontier misses %s", trial, k)
			}
		}
		// Per-store accounting adds up.
		total := 0
		for _, st := range res.PerStore {
			total += st.Queries
		}
		if total != res.Queries {
			t.Fatalf("query accounting: %d vs %d", total, res.Queries)
		}
	}
}

func TestCrossStoreTiesAllKept(t *testing.T) {
	a := storeOf(t, "a", [][]int{{1, 5}, {9, 9}}, capsRQ(2), 2)
	b := storeOf(t, "b", [][]int{{1, 5}, {5, 1}}, capsRQ(2), 2)
	res, err := Discover([]Store{a, b}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// (1,5) appears in both stores: both copies survive (interchangeable
	// offers); (5,1) survives; (9,9) is dominated.
	if len(res.Frontier) != 3 {
		t.Fatalf("frontier %v", res.Frontier)
	}
	stores := map[string]int{}
	for _, o := range res.Frontier {
		stores[o.Store]++
	}
	if stores["a"] != 1 || stores["b"] != 2 {
		t.Fatalf("per-store frontier split %v", stores)
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	a := storeOf(t, "a", [][]int{{1, 2}}, capsRQ(2), 1)
	b := storeOf(t, "b", [][]int{{1, 2, 3}}, capsRQ(3), 1)
	if _, err := Discover([]Store{a, b}, core.Options{}); err == nil {
		t.Fatal("mismatched schemas accepted")
	}
	if _, err := Discover(nil, core.Options{}); err == nil {
		t.Fatal("empty store list accepted")
	}
}

func TestBudgetedStoreStillContributes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	big := randData(rng, 800, 3, 40)
	small := [][]int{{0, 5, 5}, {5, 0, 5}}
	a := Store{Name: "limited", DB: hidden.MustNew(hidden.Config{
		Data: big, Caps: capsRQ(3), K: 1, QueryLimit: 4,
	})}
	b := storeOf(t, "fine", small, capsRQ(3), 5)
	res, err := Discover([]Store{a, b}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("result should be marked incomplete")
	}
	for _, st := range res.PerStore {
		if st.Store == "fine" && !st.Complete {
			t.Fatal("unlimited store marked incomplete")
		}
		if st.Store == "limited" && st.Complete {
			t.Fatal("rate-limited store marked complete")
		}
	}
	// The small store's tuples must be present unless dominated.
	found := 0
	for _, o := range res.Frontier {
		if o.Store == "fine" {
			found++
		}
	}
	if found == 0 {
		t.Fatal("anytime contribution lost")
	}
}

// Property: the optimum of any positive-weighted scoring over the union of
// all stores is found on the federated frontier.
func TestMonotonicOptimumOnFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var stores []Store
	var union [][]int
	for s := 0; s < 3; s++ {
		data := randData(rng, 120, 3, 25)
		union = append(union, data...)
		stores = append(stores, storeOf(t, fmt.Sprintf("s%d", s), data, capsRQ(3), 3))
	}
	res, err := Discover(stores, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(w1, w2, w3 uint8) bool {
		weights := []float64{float64(w1%31) + 0.5, float64(w2%31) + 0.5, float64(w3%31) + 0.5}
		score, err := WeightedScorer(weights)
		if err != nil {
			return false
		}
		best, ok := res.Best(score)
		if !ok {
			return false
		}
		for _, u := range union {
			if score(u) < score(best.Tuple)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestWeightedScorerValidation(t *testing.T) {
	if _, err := WeightedScorer([]float64{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := WeightedScorer([]float64{1, -2}); err == nil {
		t.Error("negative weight accepted")
	}
	s, err := WeightedScorer([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s([]int{1, 1}) != 5 {
		t.Error("scoring arithmetic wrong")
	}
}

func TestRankLimit(t *testing.T) {
	res := Result{Frontier: []Offer{
		{Store: "a", Tuple: []int{3, 1}},
		{Store: "b", Tuple: []int{1, 3}},
		{Store: "c", Tuple: []int{2, 2}},
	}}
	score, _ := WeightedScorer([]float64{1, 1.01})
	top := res.Rank(score, 2)
	if len(top) != 2 {
		t.Fatalf("limit ignored: %v", top)
	}
	all := res.Rank(score, 0)
	if len(all) != 3 {
		t.Fatalf("limit 0 should return all: %v", all)
	}
	if _, ok := res.Best(score); !ok {
		t.Fatal("Best on non-empty frontier failed")
	}
	empty := Result{}
	if _, ok := empty.Best(score); ok {
		t.Fatal("Best on empty frontier succeeded")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var stores []Store
	for s := 0; s < 4; s++ {
		data := randData(rng, 150, 3, 15)
		stores = append(stores, storeOf(t, fmt.Sprintf("s%d", s), data, capsRQ(3), 3))
	}
	seq, err := Discover(stores, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh interfaces for the parallel pass (counters are per-DB).
	rng = rand.New(rand.NewSource(9))
	var stores2 []Store
	for s := 0; s < 4; s++ {
		data := randData(rng, 150, 3, 15)
		stores2 = append(stores2, storeOf(t, fmt.Sprintf("s%d", s), data, capsRQ(3), 3))
	}
	par, err := DiscoverParallel(stores2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Queries != seq.Queries || len(par.Frontier) != len(seq.Frontier) {
		t.Fatalf("parallel %d/%d vs sequential %d/%d",
			par.Queries, len(par.Frontier), seq.Queries, len(seq.Frontier))
	}
	a := map[string]bool{}
	for _, o := range seq.Frontier {
		a[o.Store+fmt.Sprint(o.Tuple)] = true
	}
	for _, o := range par.Frontier {
		if !a[o.Store+fmt.Sprint(o.Tuple)] {
			t.Fatalf("parallel frontier diverges at %v", o)
		}
	}
	for i := range par.PerStore {
		if par.PerStore[i] != seq.PerStore[i] {
			t.Fatalf("per-store stats diverge: %+v vs %+v", par.PerStore[i], seq.PerStore[i])
		}
	}
}

func TestParallelValidation(t *testing.T) {
	if _, err := DiscoverParallel(nil, core.Options{}); err == nil {
		t.Fatal("empty store list accepted")
	}
	a := storeOf(t, "a", [][]int{{1, 2}}, capsRQ(2), 1)
	b := storeOf(t, "b", [][]int{{1, 2, 3}}, capsRQ(3), 1)
	if _, err := DiscoverParallel([]Store{a, b}, core.Options{}); err == nil {
		t.Fatal("mismatched schemas accepted")
	}
}
