// Package federate implements the paper's motivating third-party
// application (§1): a meta-search service that discovers the skyline of
// several hidden web databases — each with its own interface capabilities
// and proprietary ranking — merges them into one global Pareto frontier,
// and then answers arbitrary user-defined monotonic ranking queries
// locally, with zero further web queries.
//
// The correctness hinge is a classical skyline identity: the skyline of a
// union is contained in the union of the skylines, so per-store discovery
// followed by a local merge loses nothing. And because the top-1 tuple of
// every monotonic scoring function is on the skyline (a dominated tuple
// scores strictly worse than its dominator), the merged frontier answers
// every such top-1 — and, via the K-skyband, every top-k — exactly.
package federate

import (
	"errors"
	"fmt"
	"sort"

	"hiddensky/internal/core"
	"hiddensky/internal/engine"
	"hiddensky/internal/qcache"
	"hiddensky/internal/skyline"
)

// Store is one participating hidden database.
type Store struct {
	// Name identifies the store in results ("Blue Nile", ...).
	Name string
	// DB is the store's top-k search interface.
	DB core.Interface
}

// Offer is one Pareto-optimal tuple together with its origin.
type Offer struct {
	// Store names the database the tuple came from.
	Store string
	// Tuple holds the integer-coded ranking attributes (smaller better).
	Tuple []int
}

// Result is the outcome of a federated discovery.
type Result struct {
	// Frontier holds the global skyline across every store: offers not
	// dominated by any offer of any store. Ties across stores (equal
	// value vectors) are all kept — they are genuinely interchangeable.
	Frontier []Offer
	// PerStore records each store's own skyline size and query cost.
	PerStore []StoreStats
	// Queries is the total number of web queries across all stores.
	Queries int
	// Complete is false when at least one store's discovery was cut short
	// (its partial skyline still contributes — the anytime property).
	Complete bool
}

// StoreStats summarizes one store's discovery run.
type StoreStats struct {
	Store    string
	Skyline  int
	Queries  int
	Complete bool
}

// Discover runs skyline discovery against every store (dispatching on each
// store's interface mixture) and merges the results into the global
// frontier. Stores must agree on the ranking-attribute schema: same
// attribute order and preferential encoding. A per-store budget error is
// tolerated and surfaced through Result.Complete.
func Discover(stores []Store, opt core.Options) (Result, error) {
	if len(stores) == 0 {
		return Result{}, fmt.Errorf("federate: no stores")
	}
	m := stores[0].DB.NumAttrs()
	for _, s := range stores[1:] {
		if s.DB.NumAttrs() != m {
			return Result{}, fmt.Errorf("federate: store %q has %d attributes, want %d (schemas must align)",
				s.Name, s.DB.NumAttrs(), m)
		}
	}
	out := Result{Complete: true}
	var all []Offer
	for _, s := range stores {
		// Each store is planned individually: the same request may
		// resolve to different algorithms per interface mixture, and an
		// unsatisfiable store surfaces a typed error before any query.
		plan, err := core.Plan(s.DB, core.Request{})
		if err != nil {
			return out, fmt.Errorf("federate: store %q: %w", s.Name, err)
		}
		res, err := plan.Run(opt)
		if err != nil && !errors.Is(err, core.ErrBudget) {
			return out, fmt.Errorf("federate: store %q: %w", s.Name, err)
		}
		out.Queries += res.Queries
		out.Complete = out.Complete && res.Complete
		out.PerStore = append(out.PerStore, StoreStats{
			Store:    s.Name,
			Skyline:  len(res.Skyline),
			Queries:  res.Queries,
			Complete: res.Complete,
		})
		for _, t := range res.Skyline {
			all = append(all, Offer{Store: s.Name, Tuple: t})
		}
	}
	out.Frontier = mergeOffers(all)
	return out, nil
}

// mergeOffers keeps every offer not strictly dominated by another; equal
// value vectors from different stores all survive.
func mergeOffers(offers []Offer) []Offer {
	var out []Offer
	for i, o := range offers {
		dominated := false
		for j, p := range offers {
			if i == j {
				continue
			}
			if skyline.Dominates(p.Tuple, o.Tuple) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, o)
		}
	}
	return out
}

// Scorer is a user-defined monotonic scoring function: lower is better,
// and it must be non-decreasing in every attribute (the library cannot
// verify this; Rank panics on nil).
type Scorer func(tuple []int) float64

// WeightedScorer builds the common linear scorer from positive weights.
func WeightedScorer(weights []float64) (Scorer, error) {
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("federate: weights must be positive for monotonicity, got %v", w)
		}
	}
	ws := append([]float64(nil), weights...)
	return func(t []int) float64 {
		if len(t) != len(ws) {
			return 0
		}
		s := 0.0
		for i, v := range t {
			s += ws[i] * float64(v)
		}
		return s
	}, nil
}

// Rank orders the frontier under a user-defined monotonic scorer and
// returns the best `limit` offers (all of them when limit <= 0). No web
// queries are issued: the frontier provably contains the optimum of every
// monotonic scoring function.
func (r Result) Rank(score Scorer, limit int) []Offer {
	if score == nil {
		panic("federate: nil scorer")
	}
	ranked := append([]Offer(nil), r.Frontier...)
	sort.SliceStable(ranked, func(a, b int) bool {
		return score(ranked[a].Tuple) < score(ranked[b].Tuple)
	})
	if limit > 0 && limit < len(ranked) {
		ranked = ranked[:limit]
	}
	return ranked
}

// Best returns the single top offer under the scorer.
func (r Result) Best(score Scorer) (Offer, bool) {
	top := r.Rank(score, 1)
	if len(top) == 0 {
		return Offer{}, false
	}
	return top[0], true
}

// DiscoverParallel is Discover with every store queried concurrently —
// stores are independent services, so their rate limits and latencies
// don't serialize. Results are merged identically to Discover; per-store
// statistics keep the stores' input order. It is DiscoverFleet with no
// fleet bound, budget or cache.
func DiscoverParallel(stores []Store, opt core.Options) (Result, error) {
	return DiscoverFleet(stores, opt, FleetOptions{})
}

// FleetOptions tunes a federated fleet run beyond the per-store discovery
// options.
type FleetOptions struct {
	// MaxStores bounds how many stores are discovered concurrently
	// (<= 0: all at once).
	MaxStores int
	// Request is the discovery request compiled per store (the zero
	// value: automatic algorithm dispatch, full skyline). An explicit
	// algorithm or a conjunctive filter applies to every store; band
	// and resumable requests are rejected — the fleet merges skylines,
	// and a multi-store checkpoint does not exist.
	Request core.Request
	// GlobalBudget, when positive, is the total number of web queries the
	// whole fleet may spend, shared atomically across stores. A store that
	// hits the exhausted budget stops with its partial (anytime) skyline
	// and the merged result is marked incomplete — exactly like a
	// per-store budget, but fleet-wide. Cached answers consume none of it.
	GlobalBudget int
	// Cache, when non-nil, fronts every store with the shared memoizing
	// query cache: repeated runs (and canonically equal queries inside one
	// run) are answered without touching the stores. Per-store answers are
	// keyed separately — stores never see each other's tuples.
	Cache *qcache.Cache
	// OnStoreDone, when non-nil, is invoked as each store's discovery
	// finishes (cleanly or with its anytime partial result) with the
	// store's input index and stats — the hook a serving layer uses to
	// stream fleet-job progress. Calls come from concurrent fleet workers
	// (never two for the same store) and must be concurrency-safe. Stores
	// that fail hard do not report.
	OnStoreDone func(i int, st StoreStats)
}

// DiscoverFleet orchestrates a fleet of discovery runs across the stores
// on the bounded engine executor: at most MaxStores discoveries in flight,
// one shared global query budget, and one shared memoizing cache. Each
// store's own run additionally honors opt.Parallelism, so a fleet of m
// stores with per-run parallelism p keeps up to m*p queries in flight.
func DiscoverFleet(stores []Store, opt core.Options, fleet FleetOptions) (Result, error) {
	if len(stores) == 0 {
		return Result{}, fmt.Errorf("federate: no stores")
	}
	m := stores[0].DB.NumAttrs()
	for _, s := range stores[1:] {
		if s.DB.NumAttrs() != m {
			return Result{}, fmt.Errorf("federate: store %q has %d attributes, want %d (schemas must align)",
				s.Name, s.DB.NumAttrs(), m)
		}
	}
	if fleet.Request.Band > 0 {
		return Result{}, fmt.Errorf("federate: fleet discovery merges skylines; K-skyband requests are not supported")
	}
	if fleet.Request.Resumable || fleet.Request.Session != nil {
		return Result{}, fmt.Errorf("federate: fleet discovery is not resumable")
	}
	budget := engine.NewBudget(fleet.GlobalBudget)
	type outcome struct {
		res core.Result
		err error
	}
	jobs := make([]func() outcome, len(stores))
	for i, s := range stores {
		db := s.DB
		if fleet.GlobalBudget > 0 {
			// The budget gate sits below the cache so cached hits consume
			// no budget; exhaustion surfaces as the rate-limit error the
			// algorithms already map to their anytime ErrBudget.
			db = engine.Limit(db, budget)
		}
		if fleet.Cache != nil {
			// Keyed by the bare store (not the per-call gate) so one warm
			// cache keeps serving the store across fleet runs.
			db = fleet.Cache.WrapAs(s.DB, db)
		}
		// Compile the fleet request per store before any query is spent:
		// stores may mix interface capabilities, so one store planning
		// to RQ-DB-SKY and its neighbor to MQ-DB-SKY is the normal case,
		// and a store that cannot satisfy the request (say a filter
		// operator its interface rejects) fails the fleet fast.
		plan, err := core.Plan(db, fleet.Request)
		if err != nil {
			return Result{}, fmt.Errorf("federate: store %q: %w", s.Name, err)
		}
		jobs[i] = func() outcome {
			res, err := plan.Run(opt)
			if fleet.OnStoreDone != nil && (err == nil || errors.Is(err, core.ErrBudget)) {
				fleet.OnStoreDone(i, StoreStats{
					Store:    stores[i].Name,
					Skyline:  len(res.Skyline),
					Queries:  res.Queries,
					Complete: res.Complete,
				})
			}
			return outcome{res: res, err: err}
		}
	}
	outcomes := engine.Fleet(fleet.MaxStores, jobs)

	out := Result{Complete: true}
	var all []Offer
	for i, s := range stores {
		oc := outcomes[i]
		if oc.err != nil && !errors.Is(oc.err, core.ErrBudget) {
			return out, fmt.Errorf("federate: store %q: %w", s.Name, oc.err)
		}
		out.Queries += oc.res.Queries
		out.Complete = out.Complete && oc.res.Complete
		out.PerStore = append(out.PerStore, StoreStats{
			Store:    s.Name,
			Skyline:  len(oc.res.Skyline),
			Queries:  oc.res.Queries,
			Complete: oc.res.Complete,
		})
		for _, t := range oc.res.Skyline {
			all = append(all, Offer{Store: s.Name, Tuple: t})
		}
	}
	out.Frontier = mergeOffers(all)
	return out, nil
}
