package federate

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
)

// countingDB instruments a store backend with a mutating shared counter so
// -race exercises the fleet's access pattern and tests can assert exact
// accounting.
type countingDB struct {
	db core.Interface

	mu     sync.Mutex
	served int
}

func (c *countingDB) Query(q query.Q) (hidden.Result, error) {
	res, err := c.db.Query(q)
	if err == nil {
		c.mu.Lock()
		c.served++
		c.mu.Unlock()
	}
	return res, err
}
func (c *countingDB) NumAttrs() int               { return c.db.NumAttrs() }
func (c *countingDB) K() int                      { return c.db.K() }
func (c *countingDB) Cap(i int) hidden.Capability { return c.db.Cap(i) }
func (c *countingDB) Domain(i int) query.Interval { return c.db.Domain(i) }

func (c *countingDB) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.served
}

func fleetStores(t *testing.T, seed int64, n int) ([]Store, []*countingDB) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var stores []Store
	var counters []*countingDB
	for s := 0; s < n; s++ {
		data := make([][]int, 300)
		for i := range data {
			data[i] = []int{rng.Intn(50), rng.Intn(50), rng.Intn(50)}
		}
		db, err := hidden.New(hidden.Config{
			Data: data,
			Caps: []hidden.Capability{hidden.RQ, hidden.RQ, hidden.RQ},
			K:    5,
		})
		if err != nil {
			t.Fatal(err)
		}
		cdb := &countingDB{db: db}
		counters = append(counters, cdb)
		stores = append(stores, Store{Name: string(rune('A' + s)), DB: cdb})
	}
	return stores, counters
}

// TestFleetMatchesSequentialWithExactAccounting: the engine-orchestrated
// fleet must produce the same frontier as the sequential Discover, with no
// query lost or double-counted across stores — even with per-store
// parallelism layered on top.
func TestFleetMatchesSequentialWithExactAccounting(t *testing.T) {
	seqStores, _ := fleetStores(t, 5, 4)
	seq, err := Discover(seqStores, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	stores, counters := fleetStores(t, 5, 4)
	res, err := DiscoverFleet(stores, core.Options{Parallelism: 3}, FleetOptions{MaxStores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("fleet result not marked complete")
	}
	if len(res.Frontier) != len(seq.Frontier) {
		t.Fatalf("fleet frontier has %d offers, sequential %d", len(res.Frontier), len(seq.Frontier))
	}
	want := map[string]bool{}
	for _, o := range seq.Frontier {
		want[o.Store+":"+fmt.Sprint(o.Tuple)] = true
	}
	for _, o := range res.Frontier {
		if !want[o.Store+":"+fmt.Sprint(o.Tuple)] {
			t.Fatalf("fleet frontier holds unexpected offer %v from %s", o.Tuple, o.Store)
		}
	}

	total := 0
	for i, c := range counters {
		if got := res.PerStore[i].Queries; got != c.count() {
			t.Fatalf("store %d reported %d queries, backend served %d", i, got, c.count())
		}
		total += c.count()
	}
	if res.Queries != total {
		t.Fatalf("fleet reported %d total queries, backends served %d", res.Queries, total)
	}
}

// TestFleetGlobalBudget: the shared budget is a fleet-wide cap with exact
// accounting; stores that hit it contribute partial skylines (anytime).
func TestFleetGlobalBudget(t *testing.T) {
	// Establish the unbudgeted cost first.
	stores, counters := fleetStores(t, 9, 3)
	full, err := DiscoverFleet(stores, core.Options{}, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	budget := full.Queries / 2
	if budget < 1 {
		t.Skipf("workload too cheap to budget (%d queries)", full.Queries)
	}
	for _, c := range counters {
		c.mu.Lock()
		c.served = 0
		c.mu.Unlock()
	}

	stores2, counters2 := fleetStores(t, 9, 3)
	res, err := DiscoverFleet(stores2, core.Options{Parallelism: 2}, FleetOptions{GlobalBudget: budget})
	if err != nil {
		t.Fatalf("a budget stop must surface as an incomplete result, not an error: %v", err)
	}
	if res.Complete {
		t.Fatalf("fleet completed under a budget of %d (full cost %d)", budget, full.Queries)
	}
	total := 0
	for _, c := range counters2 {
		total += c.count()
	}
	if total > budget {
		t.Fatalf("backends served %d queries, global budget was %d", total, budget)
	}
	if res.Queries != total {
		t.Fatalf("fleet reported %d queries, backends served %d", res.Queries, total)
	}
}

// TestFleetSharedCache: one cache fronts every store; re-running the fleet
// answers from memory (dedup ratio > 0) without changing the frontier, and
// cached answers stay per-store.
func TestFleetSharedCache(t *testing.T) {
	stores, counters := fleetStores(t, 13, 3)
	cache := qcache.New(qcache.Config{})
	first, err := DiscoverFleet(stores, core.Options{}, FleetOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	served := make([]int, len(counters))
	for i, c := range counters {
		served[i] = c.count()
	}
	second, err := DiscoverFleet(stores, core.Options{}, FleetOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Frontier) != len(first.Frontier) {
		t.Fatalf("cached re-run changed the frontier: %d vs %d offers", len(second.Frontier), len(first.Frontier))
	}
	if s := cache.Stats(); s.DedupRatio() <= 0 {
		t.Fatalf("shared cache never deduplicated: %+v", s)
	}
	for i, c := range counters {
		if c.count() != served[i] {
			// Re-wrapping a store reuses its keyspace only when the fleet
			// passes the same backend value; countingDB pointers are stable
			// here, so the second run must be fully cached.
			t.Fatalf("store %d re-paid %d backend queries on a warm cache", i, c.count()-served[i])
		}
	}
}

// TestFleetBudgetBelowCacheIsNotChargedForHits: with a warm shared cache,
// a tiny global budget still lets the fleet finish — cached answers are
// free, which is the whole point of putting the budget gate beneath the
// cache.
func TestFleetBudgetBelowCacheIsNotChargedForHits(t *testing.T) {
	stores, _ := fleetStores(t, 17, 2)
	cache := qcache.New(qcache.Config{})
	if _, err := DiscoverFleet(stores, core.Options{}, FleetOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverFleet(stores, core.Options{}, FleetOptions{Cache: cache, GlobalBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("warm-cache fleet run should complete without touching the 1-query budget")
	}
}

// TestFleetOnStoreDone: the per-store completion hook fires exactly once
// per store, from concurrent workers, with the store's own stats.
func TestFleetOnStoreDone(t *testing.T) {
	stores, _ := fleetStores(t, 9, 4)
	var mu sync.Mutex
	got := map[int]StoreStats{}
	res, err := DiscoverFleet(stores, core.Options{}, FleetOptions{
		MaxStores: 2,
		OnStoreDone: func(i int, st StoreStats) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[i]; dup {
				t.Errorf("store %d reported twice", i)
			}
			got[i] = st
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stores) {
		t.Fatalf("%d stores reported, want %d", len(got), len(stores))
	}
	for i, ps := range res.PerStore {
		st := got[i]
		if st.Store != ps.Store || st.Queries != ps.Queries || st.Skyline != ps.Skyline || st.Complete != ps.Complete {
			t.Fatalf("store %d hook stats %+v differ from result stats %+v", i, st, ps)
		}
	}
}
