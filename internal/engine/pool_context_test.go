package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolContextDropsUnstartedTasks: once the context is cancelled,
// queued tasks are accounted for but never executed, and Wait reports
// the context error.
func TestPoolContextDropsUnstartedTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := NewPoolContext(ctx, 2)
	defer p.Close()

	var started atomic.Int64
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		p.Spawn(func() error {
			started.Add(1)
			<-release
			return nil
		})
	}
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		p.Spawn(func() error {
			ran.Add(1)
			return nil
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never picked up the blocking tasks")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)

	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d queued tasks ran after cancellation", n)
	}
}

// TestPoolContextHealthyRun: an un-cancelled context changes nothing.
func TestPoolContextHealthyRun(t *testing.T) {
	p := NewPoolContext(context.Background(), 4)
	defer p.Close()
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		p.Spawn(func() error { ran.Add(1); return nil })
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", ran.Load())
	}
}
