package engine

import (
	"sync"

	"hiddensky/internal/obs"
)

// Budget is a concurrency-safe shared query allowance. Many discovery runs
// (or many goroutines of one parallel run) draw from the same Budget, so a
// fleet of runs can be held to one global web-query total with exact
// accounting: TryAcquire reserves a unit before the query is sent and
// Release refunds it if the query failed, so Used counts successfully
// answered queries only and never exceeds the limit.
type Budget struct {
	mu    sync.Mutex
	limit int // <= 0: unlimited
	used  int
	// spent, when instrumented, mirrors the net units consumed — a
	// gauge, because Release refunds. Deltas (not sets) let concurrent
	// budgets share one series.
	spent *obs.Gauge
}

// NewBudget returns a budget of `limit` queries; limit <= 0 is unlimited.
func NewBudget(limit int) *Budget {
	return &Budget{limit: limit}
}

// Instrument mirrors the budget's consumption into a gauge: +1 per
// successful TryAcquire, -1 per Release refund. Set it before the
// budget is shared across goroutines.
func (b *Budget) Instrument(spent *obs.Gauge) *Budget {
	b.spent = spent
	return b
}

// TryAcquire reserves one unit, reporting false when the budget is spent.
func (b *Budget) TryAcquire() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && b.used >= b.limit {
		return false
	}
	b.used++
	if b.spent != nil {
		b.spent.Add(1)
	}
	return true
}

// Release refunds one previously acquired unit (the query it paid for
// failed and was not answered).
func (b *Budget) Release() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used > 0 {
		b.used--
		if b.spent != nil {
			b.spent.Add(-1)
		}
	}
}

// Used returns the number of units currently consumed.
func (b *Budget) Used() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Remaining returns the units left, or -1 when the budget is unlimited.
func (b *Budget) Remaining() int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit <= 0 {
		return -1
	}
	return b.limit - b.used
}
