package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

func TestPoolRunsEverySpawnedTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		p.Spawn(func() error {
			ran.Add(1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", ran.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var cur, peak atomic.Int64
	var spawn func(depth int)
	spawn = func(depth int) {
		p.Spawn(func() error {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			if depth > 0 {
				spawn(depth - 1)
				spawn(depth - 1)
			}
			cur.Add(-1)
			return nil
		})
	}
	spawn(7) // 2^8-1 tasks via recursive spawning
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", got, workers)
	}
}

func TestPoolFirstErrorWinsAndDropsQueuedTasks(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	boom := errors.New("boom")
	var after atomic.Int64
	p.Spawn(func() error { return boom })
	for i := 0; i < 10; i++ {
		p.Spawn(func() error {
			after.Add(1)
			return fmt.Errorf("later error %d", i)
		})
	}
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	if after.Load() != 0 {
		t.Fatalf("%d tasks ran after the first error on a single worker", after.Load())
	}
	// Wait is a phase barrier: it hands the error to the caller and
	// resets, so a handled failure doesn't poison the next phase.
	if err := p.Err(); err != nil {
		t.Fatalf("Err = %v after Wait, want nil (cleared)", err)
	}
	var recovered atomic.Int64
	for i := 0; i < 5; i++ {
		p.Spawn(func() error { recovered.Add(1); return nil })
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("recovery phase: %v", err)
	}
	if recovered.Load() != 5 {
		t.Fatalf("recovery phase ran %d of 5 tasks", recovered.Load())
	}
}

func TestPoolWaitIsAReusableBarrier(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var phase1, phase2 atomic.Int64
	for i := 0; i < 10; i++ {
		p.Spawn(func() error { phase1.Add(1); return nil })
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait 1: %v", err)
	}
	if phase1.Load() != 10 {
		t.Fatalf("phase 1 ran %d of 10", phase1.Load())
	}
	for i := 0; i < 10; i++ {
		p.Spawn(func() error { phase2.Add(1); return nil })
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait 2: %v", err)
	}
	if phase2.Load() != 10 {
		t.Fatalf("phase 2 ran %d of 10", phase2.Load())
	}
}

func TestBudgetExactUnderConcurrency(t *testing.T) {
	const limit = 100
	b := NewBudget(limit)
	var granted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.TryAcquire() {
					granted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if granted.Load() != limit {
		t.Fatalf("granted %d units of a %d budget", granted.Load(), limit)
	}
	if b.Used() != limit || b.Remaining() != 0 {
		t.Fatalf("used=%d remaining=%d, want %d/0", b.Used(), b.Remaining(), limit)
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("released unit was not re-acquirable")
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0)
	for i := 0; i < 1000; i++ {
		if !b.TryAcquire() {
			t.Fatal("unlimited budget refused a unit")
		}
	}
	if b.Remaining() != -1 {
		t.Fatalf("Remaining = %d, want -1 (unlimited)", b.Remaining())
	}
	var nilB *Budget
	if !nilB.TryAcquire() || nilB.Used() != 0 {
		t.Fatal("nil budget must behave as unlimited")
	}
}

// fakeBackend answers every query with one fixed tuple.
type fakeBackend struct {
	queries atomic.Int64
	fail    atomic.Bool
}

func (f *fakeBackend) Query(q query.Q) (hidden.Result, error) {
	if f.fail.Load() {
		return hidden.Result{}, errors.New("backend down")
	}
	f.queries.Add(1)
	return hidden.Result{Tuples: [][]int{{1, 2}}}, nil
}
func (f *fakeBackend) NumAttrs() int               { return 2 }
func (f *fakeBackend) K() int                      { return 10 }
func (f *fakeBackend) Cap(i int) hidden.Capability { return hidden.RQ }
func (f *fakeBackend) Domain(i int) query.Interval { return query.Interval{Lo: 0, Hi: 9} }

func TestLimitGatesAndRefunds(t *testing.T) {
	back := &fakeBackend{}
	b := NewBudget(3)
	db := Limit(back, b)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, err := db.Query(nil); !errors.Is(err, hidden.ErrRateLimited) {
		t.Fatalf("over-budget query = %v, want ErrRateLimited", err)
	}
	if back.queries.Load() != 3 {
		t.Fatalf("backend served %d queries, want 3", back.queries.Load())
	}

	// A failed backend query must refund its unit.
	back2 := &fakeBackend{}
	back2.fail.Store(true)
	b2 := NewBudget(1)
	db2 := Limit(back2, b2)
	if _, err := db2.Query(nil); err == nil {
		t.Fatal("expected backend error")
	}
	if b2.Used() != 0 {
		t.Fatalf("failed query consumed %d budget units", b2.Used())
	}
	back2.fail.Store(false)
	if _, err := db2.Query(nil); err != nil {
		t.Fatalf("refunded unit unusable: %v", err)
	}
}

func TestFleetKeepsInputOrderAndBound(t *testing.T) {
	var cur, peak atomic.Int64
	jobs := make([]func() int, 20)
	for i := range jobs {
		jobs[i] = func() int {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			defer cur.Add(-1)
			return i * i
		}
	}
	out := Fleet(4, jobs)
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if peak.Load() > 4 {
		t.Fatalf("observed %d concurrent jobs, bound is 4", peak.Load())
	}
	if got := Fleet(3, []func() string(nil)); len(got) != 0 {
		t.Fatalf("empty fleet returned %d results", len(got))
	}
}
