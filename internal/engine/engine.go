// Package engine is the execution layer beneath the discovery algorithms:
// a bounded-worker task pool for running the independent branches of the
// divide-and-conquer query cascades concurrently, a concurrency-safe
// shared query budget for fleets of discovery runs, and a generic
// bounded-fan-out helper for orchestrating many runs at once.
//
// The package deliberately knows nothing about the algorithms themselves:
// internal/core decomposes its recursions into tasks and schedules them
// here, and internal/federate uses Fleet + Budget to run many stores under
// one global web-query allowance. Keeping engine algorithm-free is what
// lets core depend on it without an import cycle.
package engine

import (
	"fmt"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// Backend is the querying surface the engine wraps and gates — structurally
// identical to core.Interface (engine cannot import core, so the interface
// is restated here; Go's structural typing makes the two interchangeable).
type Backend interface {
	// Query executes a top-k conjunctive query.
	Query(q query.Q) (hidden.Result, error)
	// NumAttrs returns the number of ranking attributes.
	NumAttrs() int
	// K returns the top-k output limit.
	K() int
	// Cap returns the predicate capability of attribute i.
	Cap(i int) hidden.Capability
	// Domain returns the advertised value range of attribute i.
	Domain(i int) query.Interval
}

// limited gates every backend query through a shared Budget.
type limited struct {
	Backend
	budget *Budget
}

// Limit wraps db so that every query consumes one unit of the shared
// budget b. An exhausted budget surfaces as hidden.ErrRateLimited — exactly
// what a real rate-limited service answers — which the discovery algorithms
// already map to their anytime ErrBudget. Failed backend queries refund
// their unit, so the budget counts successfully answered queries only.
func Limit(db Backend, b *Budget) Backend {
	if b == nil {
		return db
	}
	return &limited{Backend: db, budget: b}
}

func (l *limited) Query(q query.Q) (hidden.Result, error) {
	if !l.budget.TryAcquire() {
		return hidden.Result{}, fmt.Errorf("%w: shared engine budget exhausted", hidden.ErrRateLimited)
	}
	res, err := l.Backend.Query(q)
	if err != nil {
		l.budget.Release()
	}
	return res, err
}
