package engine

import (
	"context"
	"sync"
	"time"

	"hiddensky/internal/obs"
)

// PoolMetrics instruments a Pool: scheduling depth, task throughput
// and task latency. All fields are optional (nil fields are skipped);
// records are atomic, so metrics add no allocation and no extra lock
// to the task path.
type PoolMetrics struct {
	// Tasks counts tasks executed to completion.
	Tasks *obs.Counter
	// Dropped counts tasks skipped after an error or cancellation.
	Dropped *obs.Counter
	// Depth tracks tasks queued or executing right now.
	Depth *obs.Gauge
	// TaskSeconds is the per-task execution latency.
	TaskSeconds *obs.Histogram
}

// Pool is a bounded-worker executor for dynamically spawned, mutually
// independent tasks. It is built for tree recursions: a task may Spawn the
// tasks for its subtrees and return without waiting for them, so workers
// never block on each other and a bounded worker count cannot deadlock.
//
// Error handling follows the discovery algorithms' anytime contract: the
// first task error is retained, every task not yet started is dropped
// without running (its work would be wasted once the budget is gone), and
// Wait returns the retained error after the in-flight tasks drain.
//
// A Pool is reusable: Wait is a barrier, not a shutdown, so multi-phase
// algorithms can Spawn/Wait repeatedly. Close releases the idle workers
// when the run is over.
type Pool struct {
	ctx     context.Context // nil: never cancelled (see NewPoolContext)
	metrics *PoolMetrics    // nil: uninstrumented (see Instrument)
	tracer  *obs.Tracer     // nil: untraced (see Trace)
	parent  uint64          // span id task spans hang under

	mu       sync.Mutex
	taskCond *sync.Cond // signals workers: queue non-empty or closing
	doneCond *sync.Cond // signals waiters: pending reached zero
	queue    []func() error
	max      int // worker cap
	started  int // worker goroutines launched
	idle     int // workers parked on taskCond
	pending  int // tasks queued or executing
	closed   bool
	err      error
}

// NewPool returns a pool running at most `workers` tasks concurrently
// (minimum 1). Workers are started lazily on demand.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{max: workers}
	p.taskCond = sync.NewCond(&p.mu)
	p.doneCond = sync.NewCond(&p.mu)
	return p
}

// NewPoolContext is NewPool with a cancellation context: once ctx is
// cancelled, tasks that have not started yet are dropped without running
// (they are still accounted for, so Wait does not hang) and the context's
// error is recorded as the pool error. Tasks already executing are not
// interrupted — they observe the same context through their own work
// (e.g. a discovery task checks it before every query) and drain promptly.
func NewPoolContext(ctx context.Context, workers int) *Pool {
	p := NewPool(workers)
	p.ctx = ctx
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.max }

// Instrument attaches metrics to the pool. Call it before the first
// Spawn; the shared bundle may be reused across many pools (a serving
// daemon aggregates every job's pool into one set of series).
func (p *Pool) Instrument(m *PoolMetrics) *Pool {
	p.metrics = m
	return p
}

// Trace records one "engine.task" span per executed task under parent.
// Call it before the first Spawn. A nil tracer leaves the pool
// untraced (and costs nothing on the task path).
func (p *Pool) Trace(t *obs.Tracer, parent uint64) *Pool {
	p.tracer = t
	p.parent = parent
	return p
}

// addDepth moves the pending-task gauge by delta. Deltas (not
// absolute sets) let many concurrent pools share one gauge: the
// series then reads as the total scheduling depth across every live
// run.
func (p *Pool) addDepth(delta int64) {
	if p.metrics != nil && p.metrics.Depth != nil {
		p.metrics.Depth.Add(delta)
	}
}

// Spawn schedules fn for execution. Safe for concurrent use, including
// from inside running tasks. After the pool has recorded an error,
// scheduled tasks are accounted for but never run.
func (p *Pool) Spawn(fn func() error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("engine: Spawn on a closed Pool")
	}
	p.pending++
	p.addDepth(1)
	p.queue = append(p.queue, fn)
	if p.idle == 0 && p.started < p.max {
		p.started++
		go p.worker()
	}
	p.taskCond.Signal()
	p.mu.Unlock()
}

func (p *Pool) worker() {
	p.mu.Lock()
	for {
		for len(p.queue) == 0 && !p.closed {
			p.idle++
			p.taskCond.Wait()
			p.idle--
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return // closed and drained
		}
		fn := p.queue[0]
		p.queue = p.queue[1:]
		skip := p.err != nil
		if !skip && p.ctx != nil {
			if cerr := p.ctx.Err(); cerr != nil {
				p.err = cerr
				skip = true
			}
		}
		p.mu.Unlock()

		var err error
		if !skip {
			sp := p.tracer.Start("engine.task", p.parent)
			if m := p.metrics; m != nil && (m.Tasks != nil || m.TaskSeconds != nil) {
				t0 := time.Now()
				err = fn()
				if m.TaskSeconds != nil {
					m.TaskSeconds.Observe(time.Since(t0))
				}
				if m.Tasks != nil {
					m.Tasks.Inc()
				}
			} else {
				err = fn()
			}
			if err != nil {
				sp.SetStr("outcome", "error")
			}
			sp.End()
		} else if m := p.metrics; m != nil && m.Dropped != nil {
			m.Dropped.Inc()
		}

		p.mu.Lock()
		if err != nil && p.err == nil {
			p.err = err
		}
		p.pending--
		p.addDepth(-1)
		if p.pending == 0 {
			p.doneCond.Broadcast()
		}
	}
}

// Wait blocks until every spawned task (including tasks spawned while
// waiting) has finished or been dropped, and returns the first task error.
// The pool stays usable: Wait is a phase barrier, and it clears the
// recorded error so a caller that handles a failed phase starts the next
// one with a healthy pool (tasks of the failed phase have all finished or
// been dropped by the time Wait returns).
func (p *Pool) Wait() error {
	p.mu.Lock()
	for p.pending > 0 {
		p.doneCond.Wait()
	}
	err := p.err
	p.err = nil
	p.mu.Unlock()
	return err
}

// Err returns the first task error recorded so far (nil while healthy).
// Tasks use it to stop scheduling doomed work early.
func (p *Pool) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Close terminates the idle workers. The pool must not be used afterwards.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.taskCond.Broadcast()
	p.mu.Unlock()
}
