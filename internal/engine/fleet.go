package engine

import "sync"

// Fleet runs every job with at most `workers` in flight (all at once when
// workers <= 0) and returns the results in input order. Unlike Pool it is
// for static fan-out — a known list of independent jobs such as one
// discovery run per database in a federation — and each job produces a
// value instead of an error: a fleet member's failure is data to the
// orchestrator (a partial frontier still merges), not a reason to abandon
// the other members.
func Fleet[T any](workers int, jobs []func() T) []T {
	out := make([]T, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	if workers <= 0 || workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job func() T) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = job()
		}(i, job)
	}
	wg.Wait()
	return out
}
