// Package skyline implements in-memory skyline and K-skyband computation
// over integer-coded tuples where smaller values are preferred on every
// ranking attribute. It provides the ground truth for the hidden-database
// discovery algorithms and the local extraction step of the crawling
// baseline.
package skyline

// Dominates reports whether tuple a dominates tuple b: a is no worse than b
// on every attribute and strictly better on at least one. Smaller is better.
// Tuples must have the same length; extra attributes of the longer tuple are
// ignored (comparison runs over the shorter prefix).
func Dominates(a, b []int) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	strict := false
	for i := 0; i < n; i++ {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] < b[i]:
			strict = true
		}
	}
	return strict
}

// DominatesOnSubset is Dominates restricted to the given attribute indices.
func DominatesOnSubset(a, b []int, attrs []int) bool {
	strict := false
	for _, i := range attrs {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] < b[i]:
			strict = true
		}
	}
	return strict
}

// WeakDominatesOnSubset reports a[i] <= b[i] for every attribute index in
// attrs (equality everywhere counts). Used for range-domination pruning in
// the mixed-interface algorithm.
func WeakDominatesOnSubset(a, b []int, attrs []int) bool {
	for _, i := range attrs {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two tuples agree on every attribute.
func Equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DominationCount returns, for each tuple, the number of other tuples in
// data that dominate it. O(n^2); intended for ground truth and tests.
func DominationCount(data [][]int) []int {
	counts := make([]int, len(data))
	for i, t := range data {
		for j, u := range data {
			if i != j && Dominates(u, t) {
				counts[i]++
			}
		}
	}
	return counts
}
