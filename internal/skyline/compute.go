package skyline

import "sort"

// BNL computes the skyline with the block-nested-loops algorithm of
// Börzsönyi et al. It returns the indices (into data) of skyline tuples, in
// ascending index order. Duplicate value combinations are all kept (none of
// them dominates the other).
func BNL(data [][]int) []int {
	var window []int // indices of current mutually non-dominated candidates
	for i, t := range data {
		// Window members are mutually non-dominated, so if some member
		// dominates t, transitivity guarantees t dominates no member:
		// the window is left untouched.
		dominated := false
		for _, j := range window {
			if Dominates(data[j], t) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		keep := window[:0]
		for _, j := range window {
			if !Dominates(t, data[j]) {
				keep = append(keep, j)
			}
		}
		window = append(keep, i)
	}
	sort.Ints(window)
	return window
}

// SFS computes the skyline with sort-filter-skyline (Chomicki et al.):
// tuples are scanned in ascending order of attribute sum (a topological
// order of the dominance partial order), so every scanned tuple is either
// dominated by an already-kept tuple or is itself on the skyline. Since
// kept tuples are appended in that same order, the inner scan stops at
// the first kept tuple whose sum is not strictly smaller — a dominator
// must win strictly on at least one attribute and lose on none, so its
// sum is strictly smaller than its victim's.
func SFS(data [][]int) []int {
	order, sums := sumOrder(data)
	var sky []int
	for _, i := range order {
		t := data[i]
		dominated := false
		for _, j := range sky {
			if sums[j] >= sums[i] {
				break
			}
			if Dominates(data[j], t) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	sort.Ints(sky)
	return sky
}

// sumOrder returns the tuple indices sorted ascending by attribute sum,
// plus the per-tuple sums — the shared presort of SFS and Skyband.
func sumOrder(data [][]int) (order, sums []int) {
	order = make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	sums = make([]int, len(data))
	for i, t := range data {
		s := 0
		for _, v := range t {
			s += v
		}
		sums[i] = s
	}
	sort.SliceStable(order, func(a, b int) bool { return sums[order[a]] < sums[order[b]] })
	return order, sums
}

// Compute is the default skyline routine (SFS).
func Compute(data [][]int) []int { return SFS(data) }

// ComputeTuples returns the skyline as tuple values rather than indices.
func ComputeTuples(data [][]int) [][]int {
	idx := Compute(data)
	out := make([][]int, len(idx))
	for i, j := range idx {
		out[i] = data[j]
	}
	return out
}

// DivideConquer computes the skyline by median-split divide and conquer on
// the first attribute, merging partial skylines. Provided as an independent
// implementation for cross-checking; results match BNL/SFS.
func DivideConquer(data [][]int) []int {
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	res := dcRec(data, idx)
	sort.Ints(res)
	return res
}

func dcRec(data [][]int, idx []int) []int {
	if len(idx) <= 32 {
		return filterLocal(data, idx)
	}
	// Split by median of attribute 0.
	vals := make([]int, len(idx))
	for i, j := range idx {
		vals[i] = data[j][0]
	}
	sort.Ints(vals)
	med := vals[len(vals)/2]
	var lo, hi []int
	for _, j := range idx {
		if data[j][0] < med {
			lo = append(lo, j)
		} else {
			hi = append(hi, j)
		}
	}
	if len(lo) == 0 || len(hi) == 0 {
		return filterLocal(data, idx)
	}
	sl := dcRec(data, lo)
	sh := dcRec(data, hi)
	// Every tuple in sl is on the skyline of lo∪hi (nothing in hi can
	// dominate it on attribute 0 unless equal... values >= med there, lo
	// values < med, so hi cannot dominate lo). Filter sh against sl.
	out := append([]int(nil), sl...)
	for _, j := range sh {
		dominated := false
		for _, i := range sl {
			if Dominates(data[i], data[j]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, j)
		}
	}
	return out
}

func filterLocal(data [][]int, idx []int) []int {
	var out []int
	for _, i := range idx {
		dominated := false
		for _, j := range idx {
			if i != j && Dominates(data[j], data[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// Skyband returns the indices of tuples dominated by fewer than kBand other
// tuples (the K-skyband). Skyband(data, 1) equals the skyline.
//
// Candidates are presorted by attribute sum: a dominator's sum is strictly
// smaller than its victim's, so each tuple's dominators are confined to the
// strictly-smaller-sum prefix of the order, and counting early-terminates
// the moment kBand dominators are found — replacing the all-pairs
// DominationCount scan. On band-friendly data (small bands, large n) the
// prefix scan stops after a handful of comparisons per excluded tuple.
func Skyband(data [][]int, kBand int) []int {
	if kBand < 1 {
		return nil
	}
	order, sums := sumOrder(data)
	var out []int
	for pos, i := range order {
		count := 0
		for _, j := range order[:pos] {
			if sums[j] >= sums[i] {
				break // the rest of the prefix ties on sum: no dominators there
			}
			if Dominates(data[j], data[i]) {
				count++
				if count >= kBand {
					break
				}
			}
		}
		if count < kBand {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// IsSkyline reports whether tuple t is on the skyline of data ∪ {t} — i.e.,
// no tuple in data dominates it.
func IsSkyline(data [][]int, t []int) bool {
	for _, u := range data {
		if Dominates(u, t) {
			return false
		}
	}
	return true
}

// Merge adds tuple t (by value) to a skyline set maintained as a slice of
// tuples: if t is dominated it is discarded; otherwise t is added and every
// tuple t dominates is removed. Returns the updated set and whether t was
// kept. Duplicates of an existing tuple are not re-added.
func Merge(sky [][]int, t []int) ([][]int, bool) {
	for _, u := range sky {
		if Dominates(u, t) || Equal(u, t) {
			return sky, false
		}
	}
	out := sky[:0]
	for _, u := range sky {
		if !Dominates(t, u) {
			out = append(out, u)
		}
	}
	return append(out, t), true
}
