package skyline

import (
	"math/rand"
	"testing"
)

// benchData generates the workload shared by the skyline/skyband
// benchmarks: independent 4-attribute tuples, the regime the presorted
// early-terminating scans are built for.
func benchData(n int) [][]int {
	rng := rand.New(rand.NewSource(99))
	data := make([][]int, n)
	for i := range data {
		data[i] = []int{rng.Intn(1000), rng.Intn(1000), rng.Intn(1000), rng.Intn(1000)}
	}
	return data
}

// skybandAllPairs is the pre-optimization reference implementation
// (full DominationCount scan), kept here to quantify the presort +
// early-termination win: compare BenchmarkSkyband with
// BenchmarkSkybandAllPairs.
func skybandAllPairs(data [][]int, kBand int) []int {
	if kBand < 1 {
		return nil
	}
	counts := DominationCount(data)
	var out []int
	for i, c := range counts {
		if c < kBand {
			out = append(out, i)
		}
	}
	return out
}

func BenchmarkSkyline(b *testing.B) {
	data := benchData(8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(data)
	}
}

func BenchmarkSkyband(b *testing.B) {
	data := benchData(8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Skyband(data, 10)
	}
}

func BenchmarkSkybandAllPairs(b *testing.B) {
	data := benchData(8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skybandAllPairs(data, 10)
	}
}

// The optimized Skyband must agree with the all-pairs reference on
// random inputs (including heavy value ties).
func TestSkybandMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(300)
		m := 1 + rng.Intn(4)
		domain := 2 + rng.Intn(12) // small domains: many equal sums
		data := make([][]int, n)
		for i := range data {
			tup := make([]int, m)
			for j := range tup {
				tup[j] = rng.Intn(domain)
			}
			data[i] = tup
		}
		for _, kBand := range []int{1, 2, 5, 11} {
			got := Skyband(data, kBand)
			want := skybandAllPairs(data, kBand)
			if len(got) != len(want) {
				t.Fatalf("trial %d K=%d: %d vs %d members", trial, kBand, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d K=%d: index %d differs (%d vs %d)", trial, kBand, i, got[i], want[i])
				}
			}
		}
	}
}
