package skyline

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property (Gong et al., the identity the answer store is built on):
// for any monotone weight vector, restricting top-k scoring to the
// K-skyband loses nothing — the score sequence equals brute-force
// top-k over the full data. Randomized over datasets, weights and k
// with testing/quick; tuples are deduplicated (the paper's general
// positioning of distinct value combinations).
func TestBandTopKIdentityProperty(t *testing.T) {
	type seedArgs struct {
		Seed int64
		N    uint16
		K    uint8
	}
	f := func(a seedArgs) bool {
		rng := rand.New(rand.NewSource(a.Seed))
		n := 2 + int(a.N%400)
		m := 2 + rng.Intn(3)
		domain := 2 + rng.Intn(30)
		seen := map[string]bool{}
		var data [][]int
		for i := 0; i < n; i++ {
			tup := make([]int, m)
			for j := range tup {
				tup[j] = rng.Intn(domain)
			}
			if key := fmt.Sprint(tup); !seen[key] {
				seen[key] = true
				data = append(data, tup)
			}
		}
		k := 1 + int(a.K%10)
		w := make([]float64, m)
		for j := range w {
			w[j] = rng.Float64() * 4
		}
		w[rng.Intn(m)] += 0.05 // monotone, not identically zero
		score := func(tup []int) float64 {
			s := 0.0
			for j, v := range tup {
				s += w[j] * float64(v)
			}
			return s
		}

		// Band side: score only K-skyband members (TopKMonotone).
		band := TopKMonotone(data, score, k)
		// Brute-force side: score everything.
		all := make([]float64, len(data))
		for i, tup := range data {
			all[i] = score(tup)
		}
		sort.Float64s(all)
		want := all
		if k < len(want) {
			want = want[:k]
		}
		if len(band) != len(want) {
			return false
		}
		for i, idx := range band {
			if diff := score(data[idx]) - want[i]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
