package skyline

import "sort"

// MonotoneScore is a scoring function that is non-decreasing in every
// attribute (lower scores are better). Every positive-weighted sum — and
// every ranking function a hidden web database may legally use — is one.
type MonotoneScore func(tuple []int) float64

// TopKMonotone returns the indices of the k best tuples under a monotone
// scoring function, exploiting the skyband identity the paper cites from
// Gong et al. [11]: the top-k of any monotone aggregate lies inside the
// K-skyband, so only band members need scoring. Ties are broken by index
// for determinism. This is the local building block behind "discover the
// band once, answer every user ranking for free".
func TopKMonotone(data [][]int, score MonotoneScore, k int) []int {
	if k <= 0 || len(data) == 0 {
		return nil
	}
	if k > len(data) {
		k = len(data)
	}
	band := Skyband(data, k)
	sort.SliceStable(band, func(a, b int) bool {
		sa, sb := score(data[band[a]]), score(data[band[b]])
		if sa != sb {
			return sa < sb
		}
		return band[a] < band[b]
	})
	if len(band) > k {
		band = band[:k]
	}
	return band
}

// Sum is the canonical monotone score: the attribute total.
func Sum(tuple []int) float64 {
	s := 0.0
	for _, v := range tuple {
		s += float64(v)
	}
	return s
}
