package skyline

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	for _, tc := range []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{2, 3}, true},
		{[]int{1, 2}, []int{1, 3}, true},
		{[]int{1, 2}, []int{1, 2}, false}, // equal: no strict improvement
		{[]int{2, 1}, []int{1, 2}, false}, // incomparable
		{[]int{1, 2}, []int{1, 1}, false},
		{[]int{0}, []int{5}, true},
	} {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v, %v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestDominatesProperties(t *testing.T) {
	// Irreflexive, antisymmetric and transitive (spot-checked).
	gen := func(seed int64) [][]int {
		rng := rand.New(rand.NewSource(seed))
		data := make([][]int, 60)
		for i := range data {
			data[i] = []int{rng.Intn(5), rng.Intn(5), rng.Intn(5)}
		}
		return data
	}
	data := gen(1)
	for _, a := range data {
		if Dominates(a, a) {
			t.Fatalf("%v dominates itself", a)
		}
	}
	for _, a := range data {
		for _, b := range data {
			if Dominates(a, b) && Dominates(b, a) {
				t.Fatalf("mutual domination: %v, %v", a, b)
			}
			for _, c := range data {
				if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
					t.Fatalf("transitivity broken: %v > %v > %v", a, b, c)
				}
			}
		}
	}
}

func TestDominatesOnSubset(t *testing.T) {
	a, b := []int{1, 9, 1}, []int{2, 0, 2}
	if !DominatesOnSubset(a, b, []int{0, 2}) {
		t.Error("should dominate on {0,2}")
	}
	if DominatesOnSubset(a, b, []int{0, 1}) {
		t.Error("should not dominate on {0,1}")
	}
	if DominatesOnSubset(a, a, []int{0, 1, 2}) {
		t.Error("equal tuples: no strict domination")
	}
	if !WeakDominatesOnSubset(a, a, []int{0, 1, 2}) {
		t.Error("equal tuples weakly dominate")
	}
	if WeakDominatesOnSubset(a, b, []int{1}) {
		t.Error("9 should not weakly dominate 0")
	}
}

// All three skyline algorithms must agree on random inputs.
func TestAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(400)
		m := 1 + rng.Intn(4)
		domain := 2 + rng.Intn(30)
		data := make([][]int, n)
		for i := range data {
			tup := make([]int, m)
			for j := range tup {
				tup[j] = rng.Intn(domain)
			}
			data[i] = tup
		}
		bnl := BNL(data)
		sfs := SFS(data)
		dc := DivideConquer(data)
		if fmt.Sprint(bnl) != fmt.Sprint(sfs) || fmt.Sprint(sfs) != fmt.Sprint(dc) {
			t.Fatalf("trial %d (n=%d m=%d): BNL=%v SFS=%v DC=%v", trial, n, m, bnl, sfs, dc)
		}
		// Verify against the definition.
		want := map[int]bool{}
		for i, tup := range data {
			dominated := false
			for j, other := range data {
				if i != j && Dominates(other, tup) {
					dominated = true
					break
				}
			}
			if !dominated {
				want[i] = true
			}
		}
		if len(want) != len(bnl) {
			t.Fatalf("trial %d: %d skyline indices, want %d", trial, len(bnl), len(want))
		}
		for _, i := range bnl {
			if !want[i] {
				t.Fatalf("trial %d: index %d is not skyline", trial, i)
			}
		}
	}
}

func TestSkybandDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([][]int, 200)
	for i := range data {
		data[i] = []int{rng.Intn(10), rng.Intn(10)}
	}
	counts := DominationCount(data)
	for _, kBand := range []int{1, 2, 4} {
		got := Skyband(data, kBand)
		want := 0
		for _, c := range counts {
			if c < kBand {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("K=%d: %d tuples, want %d", kBand, len(got), want)
		}
		for _, i := range got {
			if counts[i] >= kBand {
				t.Fatalf("K=%d: index %d has count %d", kBand, i, counts[i])
			}
		}
	}
	if Skyband(data, 0) != nil {
		t.Error("K=0 band should be nil")
	}
	band1 := Skyband(data, 1)
	sky := Compute(data)
	if fmt.Sprint(band1) != fmt.Sprint(sky) {
		t.Error("1-band must equal the skyline")
	}
}

func TestMerge(t *testing.T) {
	var sky [][]int
	var kept bool
	sky, kept = Merge(sky, []int{5, 5})
	if !kept || len(sky) != 1 {
		t.Fatal("first insert")
	}
	sky, kept = Merge(sky, []int{5, 5})
	if kept || len(sky) != 1 {
		t.Fatal("duplicate should be rejected")
	}
	sky, kept = Merge(sky, []int{6, 6})
	if kept {
		t.Fatal("dominated insert accepted")
	}
	sky, kept = Merge(sky, []int{4, 6})
	if !kept || len(sky) != 2 {
		t.Fatal("incomparable insert")
	}
	sky, kept = Merge(sky, []int{3, 3})
	if !kept || len(sky) != 1 {
		t.Fatalf("dominating insert should displace both: %v", sky)
	}
}

// Property: merging tuples one by one equals batch computation.
func TestMergeEqualsBatch(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var data [][]int
		for i := 0; i+1 < len(raw); i += 2 {
			data = append(data, []int{int(raw[i] % 16), int(raw[i+1] % 16)})
		}
		var sky [][]int
		for _, t := range data {
			sky, _ = Merge(sky, t)
		}
		// Batch: distinct skyline values.
		want := map[string]bool{}
		for _, i := range Compute(data) {
			want[fmt.Sprint(data[i])] = true
		}
		got := map[string]bool{}
		for _, t := range sky {
			got[fmt.Sprint(t)] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsSkyline(t *testing.T) {
	data := [][]int{{1, 5}, {5, 1}}
	if !IsSkyline(data, []int{2, 2}) {
		t.Error("incomparable tuple is skyline")
	}
	if IsSkyline(data, []int{2, 6}) {
		t.Error("dominated tuple is not skyline")
	}
}

func TestComputeTuples(t *testing.T) {
	data := [][]int{{3, 3}, {1, 1}, {2, 2}}
	got := ComputeTuples(data)
	if len(got) != 1 || got[0][0] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]int{1, 2}, []int{1, 2}) || Equal([]int{1, 2}, []int{1, 3}) || Equal([]int{1}, []int{1, 2}) {
		t.Error("Equal broken")
	}
}

func TestSkylineSortedOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([][]int, 300)
	for i := range data {
		data[i] = []int{rng.Intn(20), rng.Intn(20)}
	}
	for name, fn := range map[string]func([][]int) []int{"BNL": BNL, "SFS": SFS, "DC": DivideConquer} {
		idx := fn(data)
		if !sort.IntsAreSorted(idx) {
			t.Errorf("%s output not sorted", name)
		}
	}
}

// TopKMonotone must agree with brute-force scoring of the whole table for
// any positive weighting — the skyband shortcut loses nothing.
func TestTopKMonotoneMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(200)
		data := make([][]int, n)
		seen := map[string]bool{}
		for i := range data {
			for {
				tup := []int{rng.Intn(30), rng.Intn(30), rng.Intn(30)}
				if !seen[fmt.Sprint(tup)] {
					seen[fmt.Sprint(tup)] = true
					data[i] = tup
					break
				}
			}
		}
		w := []float64{0.5 + rng.Float64(), 0.5 + rng.Float64(), 0.5 + rng.Float64()}
		score := func(tup []int) float64 {
			return w[0]*float64(tup[0]) + w[1]*float64(tup[1]) + w[2]*float64(tup[2])
		}
		k := 1 + rng.Intn(6)
		got := TopKMonotone(data, score, k)

		brute := make([]int, n)
		for i := range brute {
			brute[i] = i
		}
		sort.SliceStable(brute, func(a, b int) bool {
			sa, sb := score(data[brute[a]]), score(data[brute[b]])
			if sa != sb {
				return sa < sb
			}
			return brute[a] < brute[b]
		})
		brute = brute[:k]
		if len(got) != k {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), k)
		}
		for i := range brute {
			if score(data[got[i]]) != score(data[brute[i]]) {
				t.Fatalf("trial %d rank %d: skyband top-k %v (score %v) vs brute %v (score %v)",
					trial, i, data[got[i]], score(data[got[i]]), data[brute[i]], score(data[brute[i]]))
			}
		}
	}
}

func TestTopKMonotoneEdges(t *testing.T) {
	data := [][]int{{3}, {1}, {2}}
	if TopKMonotone(nil, Sum, 3) != nil || TopKMonotone(data, Sum, 0) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
	all := TopKMonotone(data, Sum, 99)
	if len(all) != 3 || data[all[0]][0] != 1 {
		t.Fatalf("k > n should return all sorted: %v", all)
	}
	if Sum([]int{2, 3}) != 5 {
		t.Fatal("Sum broken")
	}
}
