package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNormalizeFillsDefaults(t *testing.T) {
	p := Policy{}.Normalize()
	if p.Attempts != DefaultAttempts {
		t.Fatalf("Attempts = %d, want %d", p.Attempts, DefaultAttempts)
	}
	if p.BaseBackoff != DefaultBaseBackoff || p.MaxBackoff != DefaultMaxBackoff {
		t.Fatalf("backoff defaults wrong: %v / %v", p.BaseBackoff, p.MaxBackoff)
	}
	if p.Multiplier != DefaultMultiplier || p.Jitter != DefaultJitter {
		t.Fatalf("growth defaults wrong: %v / %v", p.Multiplier, p.Jitter)
	}
	if p.RetryAfterCap != DefaultRetryAfterCap {
		t.Fatalf("RetryAfterCap = %v", p.RetryAfterCap)
	}
}

func TestNormalizeKeepsExplicitValues(t *testing.T) {
	p := Policy{Attempts: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		Multiplier: 3, Jitter: 0.5, PerAttemptTimeout: time.Second, RetryAfterCap: time.Minute}.Normalize()
	if p.Attempts != 1 || p.BaseBackoff != time.Millisecond || p.MaxBackoff != 2*time.Millisecond ||
		p.Multiplier != 3 || p.Jitter != 0.5 || p.PerAttemptTimeout != time.Second || p.RetryAfterCap != time.Minute {
		t.Fatalf("explicit fields clobbered: %+v", p)
	}
}

func TestNormalizeNoJitter(t *testing.T) {
	p := Policy{NoJitter: true}.Normalize()
	if p.Jitter != 0 {
		t.Fatalf("NoJitter left Jitter = %v", p.Jitter)
	}
}

func TestBackoffExponentialSchedule(t *testing.T) {
	p := Policy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		Multiplier: 2, NoJitter: true}.Normalize()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond}
	for i, w := range want {
		if got := p.Backoff(i+1, 0, nil); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	p := Policy{BaseBackoff: time.Millisecond, RetryAfterCap: 2 * time.Second, NoJitter: true}.Normalize()
	if got := p.Backoff(1, 700*time.Millisecond, nil); got != 700*time.Millisecond {
		t.Fatalf("hint not honored: %v", got)
	}
	// A hint beyond the cap is clamped, not obeyed verbatim.
	if got := p.Backoff(3, time.Hour, nil); got != 2*time.Second {
		t.Fatalf("hint not capped: %v", got)
	}
}

func TestBackoffJitterOnlyShortens(t *testing.T) {
	p := Policy{BaseBackoff: 100 * time.Millisecond, Jitter: 0.5}.Normalize()
	rnd := func() float64 { return 1 } // worst-case shave
	if got := p.Backoff(1, 0, rnd); got != 50*time.Millisecond {
		t.Fatalf("full shave = %v, want 50ms", got)
	}
	rnd = func() float64 { return 0 }
	if got := p.Backoff(1, 0, rnd); got != 100*time.Millisecond {
		t.Fatalf("zero shave = %v, want 100ms", got)
	}
}

type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string                 { return "hinted" }
func (e *hintedErr) Unwrap() error                 { return ErrUnavailable }
func (e *hintedErr) RetryAfterHint() time.Duration { return e.after }

func TestAfterHintWalksChain(t *testing.T) {
	base := &hintedErr{after: 3 * time.Second}
	wrapped := fmt.Errorf("outer: %w", base)
	if got := AfterHint(wrapped); got != 3*time.Second {
		t.Fatalf("AfterHint = %v", got)
	}
	if got := AfterHint(errors.New("plain")); got != 0 {
		t.Fatalf("AfterHint on plain error = %v", got)
	}
}

func TestTransient(t *testing.T) {
	if !Transient(fmt.Errorf("wrap: %w", ErrUnavailable)) {
		t.Fatal("wrapped ErrUnavailable not transient")
	}
	if Transient(errors.New("fatal")) {
		t.Fatal("plain error reported transient")
	}
}

func TestSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under cancelled ctx = %v", err)
	}
	if err := Sleep(nil, 0); err != nil {
		t.Fatalf("zero Sleep errored: %v", err)
	}
}
