// Package retry holds the shared retry policy used by every consumer of a
// hostile upstream: exponential backoff with deterministic jitter, a hard
// attempt cap, per-attempt timeouts, and first-class handling of server
// Retry-After hints. It sits below web and chaos (importing only stdlib)
// so both the HTTP client and the in-process hardening wrapper speak the
// same policy, and tests can assert exact backoff schedules.
package retry

import (
	"context"
	"errors"
	"time"
)

// ErrUnavailable marks a transient upstream failure — a 5xx answer, a
// connection reset, a truncated body, a per-attempt timeout. It is the
// transient sibling of hidden.ErrRateLimited: both are recoverable by
// waiting and retrying, but only rate limits carry the anytime-budget
// semantics the discovery algorithms understand. Errors that wrap
// ErrUnavailable are safe to retry because the upstream never answered;
// no state changed.
var ErrUnavailable = errors.New("upstream transiently unavailable")

// AfterHinter is implemented by errors that carry a server-suggested
// wait (an injected chaos fault, a parsed Retry-After header). Policy
// backoff always honors the hint, capped by RetryAfterCap.
type AfterHinter interface {
	RetryAfterHint() time.Duration
}

// AfterHint extracts a Retry-After hint from err's chain (0 when absent).
func AfterHint(err error) time.Duration {
	var h AfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0
}

// Defaults for zero-valued Policy fields.
const (
	DefaultAttempts      = 4
	DefaultBaseBackoff   = 250 * time.Millisecond
	DefaultMaxBackoff    = 5 * time.Second
	DefaultMultiplier    = 2.0
	DefaultJitter        = 0.2
	DefaultRetryAfterCap = 5 * time.Second
)

// Policy describes how a consumer retries transient upstream failures.
// The zero value means "use every default"; individual fields can be
// overridden independently. A Policy is an immutable value — share it
// freely across goroutines.
type Policy struct {
	// Attempts is the total number of tries (first attempt included).
	// 1 disables retries entirely; <= 0 means DefaultAttempts.
	Attempts int
	// BaseBackoff is the wait after the first failed attempt
	// (<= 0: DefaultBaseBackoff).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (<= 0: DefaultMaxBackoff).
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor between attempts
	// (< 1: DefaultMultiplier).
	Multiplier float64
	// Jitter is the fraction of each computed backoff that is randomly
	// shaved off (0 <= Jitter <= 1), de-synchronizing client herds
	// without ever waiting longer than the deterministic schedule.
	// Negative means DefaultJitter; set NoJitter for exact waits.
	Jitter float64
	// NoJitter forces fully deterministic backoff (tests, reproducible
	// chaos runs) without fighting the zero-value-means-default rule.
	NoJitter bool
	// PerAttemptTimeout bounds each individual try (0 = unbounded).
	// Consumers apply it to the request context; a timeout counts as a
	// transient failure unless the parent context is done.
	PerAttemptTimeout time.Duration
	// RetryAfterCap caps how long a server-provided Retry-After hint is
	// honored, so a misbehaving upstream cannot stall discovery
	// (<= 0: DefaultRetryAfterCap).
	RetryAfterCap time.Duration
}

// Normalize returns p with every unset field replaced by its default.
func (p Policy) Normalize() Policy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.NoJitter {
		p.Jitter = 0
	} else if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = DefaultJitter
	}
	if p.RetryAfterCap <= 0 {
		p.RetryAfterCap = DefaultRetryAfterCap
	}
	return p
}

// Backoff computes the wait after failed attempt number `attempt`
// (1-based) on a normalized policy. A positive retryAfter hint (from a
// Retry-After header or an AfterHinter error) always wins, capped at
// RetryAfterCap. Otherwise the wait is BaseBackoff·Multiplier^(attempt-1)
// capped at MaxBackoff, minus a random shave of up to Jitter·wait taken
// from rnd (may be nil when Jitter is 0). The jittered wait is therefore
// never longer than the deterministic schedule.
func (p Policy) Backoff(attempt int, retryAfter time.Duration, rnd func() float64) time.Duration {
	if retryAfter > 0 {
		if retryAfter > p.RetryAfterCap {
			return p.RetryAfterCap
		}
		return retryAfter
	}
	wait := float64(p.BaseBackoff)
	for i := 1; i < attempt; i++ {
		wait *= p.Multiplier
		if wait >= float64(p.MaxBackoff) {
			wait = float64(p.MaxBackoff)
			break
		}
	}
	if p.Jitter > 0 && rnd != nil {
		wait -= p.Jitter * wait * rnd()
	}
	d := time.Duration(wait)
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Transient reports whether err is worth another attempt under this
// policy: anything wrapping ErrUnavailable. Rate limits are judged by
// the caller (they carry distinct give-up semantics).
func Transient(err error) bool {
	return errors.Is(err, ErrUnavailable)
}

// Sleep waits for d or until ctx (when non-nil) is done, returning the
// context's error in the latter case.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
