package perf

import (
	"os"
	"path/filepath"
	"testing"
)

func f(v float64) *float64 { return &v }

func sloReport() *Report {
	return &Report{
		Label: "test",
		Results: []Result{
			{Name: "fast_path", QPS: 100000, P99Micros: 20, AllocsPerOp: 0.001},
			{Name: "slow_path", QPS: 5000, P99Micros: 8000, AllocsPerOp: 60},
		},
	}
}

func TestEvaluatePassing(t *testing.T) {
	spec := &SLOSpec{SLOs: []SLO{
		{Name: "fast_path", MinQPS: 10000, MaxP99Micros: 500, MaxAllocsPerOp: f(0.5)},
		{Name: "slow_path", MinQPS: 1000, MaxP99Micros: 100000, MaxAllocsPerOp: f(120)},
	}}
	if v := spec.Evaluate(sloReport()); len(v) != 0 {
		t.Fatalf("violations on a passing report: %v", v)
	}
}

// TestEvaluateCatchesP99Regression is the CI contract: doctoring a p99
// upward past its ceiling must produce a violation.
func TestEvaluateCatchesP99Regression(t *testing.T) {
	spec := &SLOSpec{SLOs: []SLO{
		{Name: "fast_path", MinQPS: 10000, MaxP99Micros: 500, MaxAllocsPerOp: f(0.5)},
	}}
	r := sloReport()
	r.Results[0].P99Micros = 9500 // injected regression
	v := spec.Evaluate(r)
	if len(v) != 1 {
		t.Fatalf("want exactly the p99 violation, got %v", v)
	}
	if v[0].Name != "fast_path" {
		t.Fatalf("violation names %q", v[0].Name)
	}
	if got := v[0].String(); got != "fast_path: p99 9500.0us above ceiling 500.0us" {
		t.Fatalf("violation reads %q", got)
	}
}

func TestEvaluateCatchesEveryBound(t *testing.T) {
	spec := &SLOSpec{SLOs: []SLO{
		{Name: "fast_path", MinQPS: 200000, MaxP99Micros: 10, MaxAllocsPerOp: f(0.0001)},
	}}
	if v := spec.Evaluate(sloReport()); len(v) != 3 {
		t.Fatalf("want qps+p99+allocs violations, got %v", v)
	}
}

func TestEvaluateZeroAllocContract(t *testing.T) {
	// An explicit MaxAllocsPerOp of 0 is enforceable (the pointer keeps
	// it distinguishable from "unbounded").
	spec := &SLOSpec{SLOs: []SLO{{Name: "fast_path", MaxAllocsPerOp: f(0)}}}
	if v := spec.Evaluate(sloReport()); len(v) != 1 {
		t.Fatalf("0.001 allocs/op must violate a max of 0: %v", v)
	}
	spec = &SLOSpec{SLOs: []SLO{{Name: "fast_path", MinQPS: 1}}}
	if v := spec.Evaluate(sloReport()); len(v) != 0 {
		t.Fatalf("nil MaxAllocsPerOp must not bound allocs: %v", v)
	}
}

func TestEvaluateMissingScenarioIsViolation(t *testing.T) {
	spec := &SLOSpec{SLOs: []SLO{{Name: "renamed_path", MinQPS: 1}}}
	v := spec.Evaluate(sloReport())
	if len(v) != 1 || v[0].Name != "renamed_path" {
		t.Fatalf("missing scenario must violate: %v", v)
	}
}

// TestEvaluateRatioBounds pins the relative bounds: fast_path is 20x
// slow_path's QPS and 1/400th its p50, so ratio floors and ceilings on
// either side of those marks must pass and fail accordingly — and a
// ratio whose baseline scenario is missing must itself violate.
func TestEvaluateRatioBounds(t *testing.T) {
	r := sloReport()
	r.Results[0].P50Micros = 10
	r.Results[1].P50Micros = 4000
	pass := &SLOSpec{SLOs: []SLO{
		{Name: "fast_path", MinQPSRatio: 4, QPSRatioOf: "slow_path",
			MaxP50Ratio: 0.5, P50RatioOf: "slow_path"},
	}}
	if v := pass.Evaluate(r); len(v) != 0 {
		t.Fatalf("20x qps / 0.0025x p50 must satisfy 4x / 0.5x: %v", v)
	}
	fail := &SLOSpec{SLOs: []SLO{
		{Name: "fast_path", MinQPSRatio: 50, QPSRatioOf: "slow_path",
			MaxP50Ratio: 0.001, P50RatioOf: "slow_path"},
	}}
	if v := fail.Evaluate(r); len(v) != 2 {
		t.Fatalf("want the qps-ratio and p50-ratio violations, got %v", v)
	}
	missing := &SLOSpec{SLOs: []SLO{
		{Name: "fast_path", MinQPSRatio: 2, QPSRatioOf: "gone_path"},
	}}
	v := missing.Evaluate(r)
	if len(v) != 1 || v[0].Name != "fast_path" {
		t.Fatalf("missing ratio baseline must violate: %v", v)
	}
}

func TestParseSLOSpecRejectsVacuousShapes(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"slos":[]}`,
		`{"slos":[{"min_qps":1}]}`,
		`{"slos":[{"name":"x"}]}`,
		`{"slos":[{"name":"x","min_qps_ratio":2}]}`,
		`{"slos":[{"name":"x","qps_ratio_of":"y"}]}`,
		`{"slos":[{"name":"x","max_p50_ratio":0.5}]}`,
		`{"slos":[{"name":"x","p50_ratio_of":"y"}]}`,
	} {
		if _, err := ParseSLOSpec([]byte(bad)); err == nil {
			t.Errorf("ParseSLOSpec(%s) accepted a vacuous spec", bad)
		}
	}
	s, err := ParseSLOSpec([]byte(`{"slos":[{"name":"x","max_allocs_per_op":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.SLOs[0].MaxAllocsPerOp == nil || *s.SLOs[0].MaxAllocsPerOp != 0 {
		t.Fatal("explicit max_allocs_per_op: 0 lost in parsing")
	}
}

func TestReadSLOSpecRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(path, []byte(`{"note":"n","slos":[{"name":"x","min_qps":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSLOSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Note != "n" || len(s.SLOs) != 1 || s.SLOs[0].MinQPS != 5 {
		t.Fatalf("spec round trip: %+v", s)
	}
}

// TestCommittedBaselineMeetsSLOs replays the repository's own gate: the
// committed spec against both committed trajectory files. If this fails
// the CI gate fails too — fix the regression or recalibrate the spec
// deliberately.
func TestCommittedBaselineMeetsSLOs(t *testing.T) {
	spec, err := ReadSLOSpec("../../scripts/slo.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range []string{"../../BENCH_PR9.json", "../../BENCH_PR9.quick.json"} {
		r, err := ReadReport(bench)
		if os.IsNotExist(err) {
			t.Skipf("%s not committed", bench)
		}
		if err != nil {
			t.Fatal(err)
		}
		if v := spec.Evaluate(r); len(v) != 0 {
			t.Errorf("committed baseline %s violates the spec: %v", bench, v)
		}
	}
}
