package perf

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCountsEveryOperation(t *testing.T) {
	var calls atomic.Int64
	res := Run(Options{Name: "count", Concurrency: 4, Ops: 1000, Warmup: 1}, func(w, i int) {
		calls.Add(1)
	})
	if res.Ops != 1000 {
		t.Fatalf("ops = %d, want 1000", res.Ops)
	}
	// warmup (1 per worker) + measured ops all reach fn.
	if got := calls.Load(); got != 1000+4 {
		t.Fatalf("fn called %d times, want 1004", got)
	}
	if res.QPS <= 0 || res.Seconds <= 0 {
		t.Fatalf("degenerate timing: %+v", res)
	}
	if res.Concurrency != 4 {
		t.Fatalf("concurrency = %d", res.Concurrency)
	}
}

func TestRunWorkerIndexesAreStable(t *testing.T) {
	seen := make([]atomic.Int64, 3)
	Run(Options{Concurrency: 3, Ops: 300, Warmup: 1}, func(w, i int) {
		seen[w].Add(1)
	})
	for w := range seen {
		if seen[w].Load() == 0 {
			t.Fatalf("worker %d never ran", w)
		}
	}
}

func TestRunMeasuresLatencyAndPercentileOrder(t *testing.T) {
	res := Run(Options{Concurrency: 2, Ops: 200, Warmup: 1}, func(w, i int) {
		time.Sleep(50 * time.Microsecond)
	})
	if res.P50Micros <= 0 || res.P99Micros < res.P50Micros {
		t.Fatalf("percentiles inconsistent: p50=%v p99=%v", res.P50Micros, res.P99Micros)
	}
}

func TestRunSeesAllocations(t *testing.T) {
	var sink atomic.Pointer[[]byte]
	res := Run(Options{Concurrency: 1, Ops: 2000}, func(w, i int) {
		b := make([]byte, 4096)
		sink.Store(&b)
	})
	// Each op allocates ≥ 4096 bytes; the harness must see it.
	if res.BytesPerOp < 4096 {
		t.Fatalf("bytes/op = %v, want >= 4096", res.BytesPerOp)
	}
	if res.AllocsPerOp < 1 {
		t.Fatalf("allocs/op = %v, want >= 1", res.AllocsPerOp)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0); q != 1 {
		t.Fatalf("q0 = %d", q)
	}
	if q := quantile(sorted, 1); q != 10 {
		t.Fatalf("q1 = %d", q)
	}
	if q := quantile(sorted, 0.5); q != 5 {
		t.Fatalf("q50 = %d", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := NewReport("test")
	r.Add(nil, Options{Name: "a", Ops: 100}, func(w, i int) {})
	r.Add(nil, Options{Name: "b", Ops: 100, Concurrency: 2}, func(w, i int) {})
	if _, ok := r.Find("b"); !ok {
		t.Fatal("Find lost a result")
	}
	if _, ok := r.Find("zzz"); ok {
		t.Fatal("Find invented a result")
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Label != "test" || len(back.Results) != 2 || back.NumCPU == 0 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestCaptureRuntime: the runtime block records real machine pressure
// and survives the JSON round trip, so BENCH_*.json carries it.
func TestCaptureRuntime(t *testing.T) {
	r := NewReport("rt")
	// A scenario that allocates, so the heap high-water mark is real.
	var sink [][]byte
	r.Add(nil, Options{Name: "alloc", Ops: 200}, func(w, i int) {
		sink = append(sink, make([]byte, 4096))
	})
	_ = sink
	ri := r.CaptureRuntime()
	if ri == nil || r.Runtime != ri {
		t.Fatal("CaptureRuntime did not attach the block")
	}
	if ri.PeakHeapBytes == 0 || ri.HeapAllocBytes == 0 || ri.Goroutines < 1 {
		t.Fatalf("implausible runtime block: %+v", ri)
	}
	if ri.PeakHeapBytes < ri.HeapAllocBytes {
		t.Fatalf("peak %d below current heap %d", ri.PeakHeapBytes, ri.HeapAllocBytes)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Runtime == nil || back.Runtime.PeakHeapBytes != ri.PeakHeapBytes {
		t.Fatalf("runtime block lost in round trip: %+v", back.Runtime)
	}
}
