// Package perf is the repository's load-measurement harness: it drives
// a closed-loop workload at a fixed concurrency and reports the three
// numbers every read-path optimization in this codebase is judged by —
// throughput (QPS), tail latency (p50/p99), and steady-state allocation
// rate (allocs/op, bytes/op).
//
// It complements (not replaces) testing.B: Go benchmarks measure one
// goroutine's ns/op with statistical rigor; this harness measures a
// *serving* shape — N concurrent callers hammering one shared structure
// — which is where lock contention and allocation pressure actually
// show up. cmd/skyperf uses it to emit the committed BENCH_*.json
// trajectory (see scripts/bench.sh), so every PR's claimed speedup is a
// number a reviewer can regenerate, not an adjective.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"hiddensky/internal/obs"
)

// Options describes one measured scenario.
type Options struct {
	// Name labels the result ("answer_topk_unfiltered_arena").
	Name string
	// Concurrency is the number of closed-loop workers (default 1).
	Concurrency int
	// Ops is the total number of measured operations across all workers
	// (default 10000). Each worker runs Ops/Concurrency operations.
	Ops int
	// Warmup operations run per worker before measurement starts, to
	// fill pools, caches and the branch predictor (default: one worker
	// share, capped at 1000).
	Warmup int
}

// Result is one scenario's measurement.
type Result struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	Ops         int     `json:"ops"`
	Seconds     float64 `json:"seconds"`
	QPS         float64 `json:"qps"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Latency is the full distribution of the measured operations —
	// the same fixed-bucket histogram the daemons expose on /metrics,
	// so a committed BENCH_*.json and a live scrape are comparable
	// shapes, not just matching quantile pairs.
	Latency *obs.HistogramSnapshot `json:"latency,omitempty"`
}

func (r Result) String() string {
	return fmt.Sprintf("%-42s c=%-3d ops=%-8d %10.0f qps  p50=%8.1fus  p99=%8.1fus  %7.2f allocs/op  %9.1f B/op",
		r.Name, r.Concurrency, r.Ops, r.QPS, r.P50Micros, r.P99Micros, r.AllocsPerOp, r.BytesPerOp)
}

// Run drives fn in a closed loop and measures it. fn receives the
// worker index (0..Concurrency-1) and the worker-local operation
// number; it must be safe for concurrent use across workers. Every
// worker gets a stable index so callers can give each worker its own
// scratch (the idiomatic way to measure a zero-allocation path).
func Run(opt Options, fn func(worker, op int)) Result {
	conc := opt.Concurrency
	if conc <= 0 {
		conc = 1
	}
	ops := opt.Ops
	if ops <= 0 {
		ops = 10000
	}
	perWorker := ops / conc
	if perWorker == 0 {
		perWorker = 1
	}
	ops = perWorker * conc
	warmup := opt.Warmup
	if warmup <= 0 {
		warmup = perWorker
		if warmup > 1000 {
			warmup = 1000
		}
	}

	// Warm pools/caches outside the measured window.
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < warmup; i++ {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()

	lats := make([][]int64, conc)
	for w := range lats {
		lats[w] = make([]int64, perWorker)
	}

	// Allocation accounting: settle the heap, then diff the global
	// malloc counters around the measured window. Timer and harness
	// overhead is a few words per *worker*, amortized to ~0 per op.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	start := make(chan struct{})
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := lats[w]
			<-start
			for i := 0; i < perWorker; i++ {
				t0 := time.Now()
				fn(w, i)
				rec[i] = int64(time.Since(t0))
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)

	all := make([]int64, 0, ops)
	var hist obs.Histogram
	for _, rec := range lats {
		all = append(all, rec...)
		for _, ns := range rec {
			hist.Observe(time.Duration(ns))
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	snap := hist.Snapshot()

	res := Result{
		Name:        opt.Name,
		Concurrency: conc,
		Ops:         ops,
		Seconds:     elapsed.Seconds(),
		QPS:         float64(ops) / elapsed.Seconds(),
		P50Micros:   float64(quantile(all, 0.50)) / 1e3,
		P99Micros:   float64(quantile(all, 0.99)) / 1e3,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
		Latency:     &snap,
	}
	return res
}

// quantile returns the q-th quantile (nearest-rank) of sorted samples.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// RuntimeInfo captures the process's machine pressure at the end of a
// benchmark run, so a BENCH_*.json records not just how fast the
// scenarios were but what they cost the runtime: a QPS win that
// doubled peak heap or tripled GC cycles is a trade, not a win.
type RuntimeInfo struct {
	// PeakHeapBytes is the largest live heap observed across the run's
	// scenario boundaries (HeapAlloc high-water mark; the true peak
	// between measurements may be higher).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// HeapAllocBytes is the live heap at capture time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// GCCycles counts completed GC cycles over the process lifetime.
	GCCycles uint32 `json:"gc_cycles"`
	// PauseTotalMicros is the cumulative GC stop-the-world pause time.
	PauseTotalMicros float64 `json:"pause_total_us"`
	// Goroutines is the live goroutine count at capture time.
	Goroutines int `json:"goroutines"`
}

// Report is a committed benchmark trajectory point: the machine it ran
// on and every scenario result. cmd/skyperf emits it as BENCH_*.json.
type Report struct {
	Label      string   `json:"label"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Notes      []string `json:"notes,omitempty"`
	// Runtime is the end-of-run machine pressure (CaptureRuntime).
	Runtime *RuntimeInfo `json:"runtime,omitempty"`
	Results []Result     `json:"results"`

	peakHeap uint64 // high-water HeapAlloc, updated after every Add
}

// NewReport stamps the runtime environment.
func NewReport(label string) *Report {
	return &Report{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// Add runs one scenario, appends its result, and echoes it to w (pass
// nil to stay quiet).
func (r *Report) Add(w io.Writer, opt Options, fn func(worker, op int)) Result {
	res := Run(opt, fn)
	r.Results = append(r.Results, res)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > r.peakHeap {
		r.peakHeap = ms.HeapAlloc
	}
	if w != nil {
		fmt.Fprintln(w, res)
	}
	return res
}

// CaptureRuntime stamps the report with the process's current machine
// pressure. Call it after the last Add, before writing the report.
func (r *Report) CaptureRuntime() *RuntimeInfo {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > r.peakHeap {
		r.peakHeap = ms.HeapAlloc
	}
	r.Runtime = &RuntimeInfo{
		PeakHeapBytes:    r.peakHeap,
		HeapAllocBytes:   ms.HeapAlloc,
		GCCycles:         ms.NumGC,
		PauseTotalMicros: float64(ms.PauseTotalNs) / 1e3,
		Goroutines:       runtime.NumGoroutine(),
	}
	return r.Runtime
}

// Find returns the named result.
func (r *Report) Find(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
